#include "src/cluster/migration_planner.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

MigrationPlanner::MigrationPlanner(std::vector<HostControl*> hosts, const CostModel& cost,
                                   const HostIndex* index)
    : hosts_(std::move(hosts)), cost_(cost), index_(index) {
  assert(!hosts_.empty());
}

std::vector<size_t> MigrationPlanner::RankDestinations(
    size_t src_host, const std::vector<Replica>& replicas, uint64_t unit_bytes,
    size_t wanted) const {
  {
    MutexLock lock(&mu_);
    ++plans_considered_;
  }
  struct Candidate {
    size_t idx;
    bool fits_all;
    bool dep_populated;
    bool snap_restorable;
    size_t restores_in_flight;
    uint64_t committed;
  };
  std::vector<Candidate> cands;
  for (size_t i = 0; i < replicas.size(); ++i) {
    const size_t h = replicas[i].host;
    if (h == src_host) {
      continue;
    }
    if (index_ != nullptr) {
      // Indexed: the cached row answers the filter (draining/headroom)
      // and the committed score; only the residency/channel dimensions —
      // narrow O(1) reads — go live to the host.
      const HostIndex::HostRow row = index_->row(h);
      if (row.draining || row.available() < unit_bytes) {
        continue;  // Cannot take even one instance's commitment.
      }
      const HostControl* hc = hosts_[h];
      cands.push_back(Candidate{i, row.available() >= wanted * unit_bytes,
                                hc->DepImagePopulated(replicas[i].local_fn),
                                hc->SnapshotRestorableFor(replicas[i].local_fn),
                                hc->RestoresInFlight(), row.committed});
      continue;
    }
    const HostSnapshot s = hosts_[h]->Snapshot(replicas[i].local_fn);
    if (s.draining || s.available < unit_bytes) {
      continue;  // Cannot take even one instance's commitment.
    }
    cands.push_back(Candidate{i, s.available >= wanted * unit_bytes, s.dep_image_populated,
                              s.snapshot_restorable, s.restores_in_flight, s.committed});
  }
  // Bin-pack flavor, same as placement: pack the incoming state onto the
  // most committed host that still fits the whole move, partial fits
  // after, keeping the fleet tail free for spikes.  Within each class,
  // destinations holding the dependency image warm come first (the move
  // skips deps_bytes on the wire there), then destinations able to
  // restore the function's snapshot recording (only the delta beyond the
  // recording crosses the wire there) — both dimensions are always false
  // without the respective registry, so the pre-cache/pre-snapshot
  // orderings are preserved bit-identically.  Destinations already
  // serving bulk restores rank behind idle-channel peers of the same
  // class: each host serializes RestoreWorkingSet prefetches, so landing
  // on a busy channel queues behind the in-flight transfers (always 0
  // without a registry — ordering unchanged then).  stable_sort keeps
  // exact ties at the lowest host index (deterministic).
  std::stable_sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.fits_all != b.fits_all) {
      return a.fits_all;
    }
    if (a.dep_populated != b.dep_populated) {
      return a.dep_populated;
    }
    if (a.snap_restorable != b.snap_restorable) {
      return a.snap_restorable;
    }
    if (a.restores_in_flight != b.restores_in_flight) {
      return a.restores_in_flight < b.restores_in_flight;
    }
    return a.committed > b.committed;
  });
  std::vector<size_t> ranked;
  ranked.reserve(cands.size());
  for (const Candidate& c : cands) {
    ranked.push_back(c.idx);
  }
  return ranked;
}

int MigrationPlanner::MostPressuredHost(size_t min_pending) const {
  if (index_ != nullptr) {
    // The by-pressure tree's first non-draining entry IS the scan winner:
    // max pending, ties to the lowest host index, -1 below the threshold.
    return index_->MostPressured(min_pending);
  }
  int victim = -1;
  size_t worst = 0;
  for (size_t h = 0; h < hosts_.size(); ++h) {
    const HostSnapshot s = hosts_[h]->Snapshot();
    // A host qualifies when it is not draining and meets the threshold —
    // with min_pending == 0 that is every non-draining host (the old
    // `worst = min_pending - 1` seed silently turned 0 into 1 and could
    // return -1 from an all-idle fleet that should have yielded host 0).
    if (s.draining || s.pending_scaleups < min_pending) {
      continue;
    }
    if (victim < 0 || s.pending_scaleups > worst) {
      worst = s.pending_scaleups;
      victim = static_cast<int>(h);
    }
  }
  return victim;
}

StateTransferCost MigrationPlanner::TransferCost(const ReplicaMigrationState& state,
                                                 bool dep_cache_hit,
                                                 bool snapshot_hit) const {
  StateTransferCost c = cost_.StateTransfer(state.transfer_bytes(),
                                            cost_.migrate_dirty_frac * state.busy_fraction);
  if (dep_cache_hit) {
    // Attach the destination-resident image instead of shipping it.
    c.precopy += cost_.dep_cache_hit_fixed;
  }
  if (snapshot_hit) {
    // The caller moved the recorded portion out of state_bytes: the wire
    // carries only the delta, and the destination re-creates the recorded
    // bytes from the cluster snapshot store (fixed restore setup plus a
    // bulk prefetch at snapshot speed, overlapping the pre-copy phase).
    c.precopy += cost_.SnapshotAttach(state.recorded_bytes);
  }
  return c;
}

}  // namespace squeezy
