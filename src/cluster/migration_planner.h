// Live replica migration planning (the fleet's maintenance decision plane).
//
// When a host drains — or sits under sustained memory pressure — its warm
// replicas hold exactly the state the paper works to keep cheap: faulted
// working sets and hot dependency caches.  PR 2's drain path reaped them
// and paid cold starts elsewhere.  The MigrationPlanner instead selects
// victim replicas and destination hosts, judging every candidate from one
// consistent HostControl::Snapshot with the same bin-pack scoring the
// scheduler uses for placement (most committed host that still fits, ties
// to the lowest index), and prices the move with the CostModel's pre-copy
// state-transfer model: cost scales with the replica's touched footprint
// and its dirty rate (busy fraction at capture), not a flat constant.
//
// The planner only decides; the Cluster executes — EvictReplica on the
// source (commitment returns through the source's reclaim driver, so a
// Squeezy donor frees memory at Squeezy speed) and AdoptReplica on the
// destination (admission through the normal CanAdmit sizing).
#ifndef SQUEEZY_CLUSTER_MIGRATION_PLANNER_H_
#define SQUEEZY_CLUSTER_MIGRATION_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/cluster/scheduler.h"
#include "src/faas/host_control.h"
#include "src/sim/cost_model.h"

namespace squeezy {

// One executed replica move, recorded by the Cluster for metrics/tests.
struct MigrationRecord {
  int cluster_fn = -1;
  size_t src_host = 0;
  size_t dst_host = 0;
  size_t captured = 0;        // Warm instances captured at the source.
  size_t adopted = 0;         // Instances the destination admitted.
  uint64_t bytes_sent = 0;    // Wire bytes incl. resent dirty state.
  DurationNs downtime = 0;    // Stop-and-copy pause.
  TimeNs started_at = 0;
  TimeNs done_at = 0;         // Instant the adopted instances turn warm.
};

class MigrationPlanner {
 public:
  // `hosts` must outlive the planner (same contract as ClusterScheduler).
  // With a non-null `index` (same lifetime/mirroring contract) the
  // ranking filters and scores from the incrementally-maintained
  // HostIndex rows plus narrow residency reads instead of materializing a
  // HostSnapshot per candidate; decisions are identical.
  MigrationPlanner(std::vector<HostControl*> hosts, const CostModel& cost,
                   const HostIndex* index = nullptr);

  // Destination candidates for migrating `wanted` warm instances (of
  // `unit_bytes` each) off `src_host`: indices into `replicas` (the
  // function's replica set), best first.  Reuses the bin-pack scoring
  // through one Snapshot per candidate — non-draining hosts other than
  // the source with headroom for at least one unit; hosts that fit the
  // whole move before partial fits, then hosts holding the function's
  // dependency image warm (HostSnapshot::dep_image_populated — the move
  // skips deps_bytes on the wire there), then hosts able to restore the
  // function's snapshot recording (HostSnapshot::snapshot_restorable —
  // only the delta beyond the recording crosses the wire), most
  // committed first within each class, ties to the lowest host index.
  // The caller walks the
  // ranking and settles on the first host that actually adopts (a
  // well-placed candidate can still be concurrency-saturated —
  // AdoptableReplicas decides, not the snapshot).  With a snapshot
  // registry attached, AdoptableReplicas sizes each adopted unit from the
  // driver's RestoredCommitment, so a working-set-sized destination
  // admits more warm replicas than its raw plug-unit headroom suggests.
  std::vector<size_t> RankDestinations(size_t src_host,
                                       const std::vector<Replica>& replicas,
                                       uint64_t unit_bytes, size_t wanted) const
      SQZ_EXCLUDES(mu_);

  // The non-draining host with the most memory-starved scale-ups right
  // now (at least `min_pending` of them; min_pending == 0 admits any
  // non-draining host, most pending first); -1 when no host qualifies.
  // Ties go to the lowest host index.  The victim of pressure-triggered
  // migration: moving its warm-but-idle replicas elsewhere frees
  // commitment for the scale-ups it is starving on, without throwing the
  // warm state away.
  int MostPressuredHost(size_t min_pending) const;

  // Prices one state transfer: pre-copy + stop-and-copy over the touched
  // footprint, the per-round redirty fraction scaled by the replica's
  // busy fraction at capture.  On a dep-cache hit the caller has already
  // zeroed state.deps_bytes; the transfer additionally pays the fixed
  // image-attach cost (CostModel::dep_cache_hit_fixed) — strictly
  // cheaper than shipping the image whenever deps_bytes outweighs it.
  // On a snapshot hit the caller has already moved the recorded portion
  // out of state.state_bytes (only the delta pre-copies); the transfer
  // additionally pays CostModel::SnapshotAttach(state.recorded_bytes) —
  // the destination re-creating those bytes from the cluster store at
  // snapshot-prefetch speed, strictly cheaper than the wire whenever the
  // recording outweighs the fixed restore setup.
  StateTransferCost TransferCost(const ReplicaMigrationState& state,
                                 bool dep_cache_hit = false,
                                 bool snapshot_hit = false) const;

  uint64_t plans_considered() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return plans_considered_;
  }

 private:
  const std::vector<HostControl*> hosts_;  // Pointer set fixed at construction.
  const CostModel cost_;                   // Immutable after construction.
  const HostIndex* const index_;           // Null => full-scan reference path.
  // Guards the decision counter (the planner's only mutable state; the
  // ranking itself is a pure function of the snapshots it takes).
  mutable Mutex mu_;
  mutable uint64_t plans_considered_ SQZ_GUARDED_BY(mu_) = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_MIGRATION_PLANNER_H_
