// Incrementally-maintained placement candidate indexes (the scale-out
// decision plane).
//
// Before this subsystem every routing decision re-scanned a HostSnapshot
// of every candidate host — O(invocations x hosts) total, measured as the
// dominant wall cost of the fig12 sharded sweep beyond 256 hosts.  The
// HostIndex keeps the quantities those scans ranked on in ordered
// structures that hosts update as their state changes, so the deciders
// (`ClusterScheduler::PlaceFunction`/`Route`, `MigrationPlanner::
// RankDestinations`/`MostPressuredHost`) pick from a tree in O(log hosts)
// instead of materializing snapshots:
//   * per-host rows      — cached (committed, capacity, pending, draining),
//     refreshed through HostStateListener deltas (host_control.h) fired at
//     the books' choke points (HostMemory commit observer, pending queue,
//     drain flag);
//   * by_available_      — (available, host) ascending: PlaceFunction
//     gathers every host that fits a boot footprint from one lower_bound;
//   * by_pressure_       — (pending desc, host asc): MostPressuredHost is
//     the first non-draining entry;
//   * per-function trees — (committed, replica) ascending over the
//     function's replica hosts: bin-pack routing walks committed groups
//     descending (ties ascending replica index — the scan's first-match
//     semantics), least-committed routing takes the first eligible group.
//
// Exactness contract: every query reproduces the retained full-scan
// reference BIT-IDENTICALLY — same candidate sets, same tie-breaks
// (lowest host / replica index), same all-draining fallbacks.  The cached
// values are maintained, never recomputed, so the contract holds only if
// every mutation of committed/pending/draining notifies; the
// IndexedVsScanPlacementFuzzTest replays churn through both paths and
// asserts identical decision streams, and the fig12 gate compares whole
// sweeps.
//
// Determinism: every ordered structure is keyed by absolute values
// (bytes, counts, stable indices) — never pointers or hashes — so the
// index contents are a pure function of the host states regardless of
// update arrival order across shard threads (tools/determinism_lint.py
// rejects unordered or pointer-keyed containers in index-named state).
//
// Lock discipline: the index self-locks (`mu_`), a LEAF in the cluster
// ordering (src/base/mutex.h): updates arrive from host layers below the
// scheduler (possibly from shard threads mid-epoch), queries from the
// decision layers above, and no method ever calls out of the class while
// holding `mu_`.
#ifndef SQUEEZY_CLUSTER_HOST_INDEX_H_
#define SQUEEZY_CLUSTER_HOST_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace squeezy {

// Bench-visible counters.  Deterministic: update counts are a pure
// function of the simulated event stream (identical at any thread count
// and under either placement_impl, since the index is maintained in both
// modes), so they belong in BENCH_*.json.
struct HostIndexStats {
  uint64_t updates = 0;        // Delta notifications absorbed.
  uint64_t functions = 0;      // Per-function trees registered.
  size_t max_fn_replicas = 0;  // Widest per-function tree (its depth is
                               // ceil(log2) of this).
};

class HostIndex {
 public:
  explicit HostIndex(size_t nr_hosts);

  HostIndex(const HostIndex&) = delete;
  HostIndex& operator=(const HostIndex&) = delete;

  // Cached mirror of one host's decision-relevant state.
  struct HostRow {
    uint64_t committed = 0;
    uint64_t capacity = 0;
    size_t pending = 0;
    bool draining = false;

    uint64_t available() const { return capacity - committed; }
  };

  // One PlaceFunction candidate: host plus the cached quantities the
  // placement comparators rank on (read under one lock).
  struct Candidate {
    size_t host = 0;
    uint64_t committed = 0;
    uint64_t available = 0;
  };

  // --- Maintenance ---------------------------------------------------------------
  // Seeds host's row before any delta can arrive (cluster construction).
  void InitHost(size_t host, uint64_t committed, uint64_t capacity, size_t pending,
                bool draining) SQZ_EXCLUDES(mu_);
  // Absorbs one delta notification (HostStateListener).  Any subset of
  // the fields may have changed; capacity is fixed at InitHost.
  void Update(size_t host, uint64_t committed, size_t pending, bool draining)
      SQZ_EXCLUDES(mu_);
  // Registers cluster function `fn`'s replica hosts (replica order).
  // Calls must happen in cluster-function-index order, right after
  // placement — before any routing decision for `fn`.
  void RegisterFunction(int fn, const std::vector<size_t>& replica_hosts)
      SQZ_EXCLUDES(mu_);

  // --- Queries (each reproduces its scan counterpart bit-identically) -------------
  HostRow row(size_t host) const SQZ_EXCLUDES(mu_);

  // Non-draining hosts with available >= need, ascending host index, each
  // carrying the cached values the placement comparators sort on
  // (PlaceFunction's candidate filter).
  std::vector<Candidate> CandidatesByAvailable(uint64_t need) const SQZ_EXCLUDES(mu_);

  // Bin-pack routing: first replica of `fn` in (committed descending,
  // replica index ascending) order for which `can_admit(replica)` holds;
  // -1 when none admits.  `can_admit` is invoked WITHOUT `mu_` held (it
  // calls into the host layer), against an order fixed before the first
  // probe — admission checks are const, so the probe order alone
  // determines the pick, exactly like the scan's max-committed
  // first-match loop.
  int FirstAdmittingByCommittedDesc(int fn,
                                    const std::function<bool(size_t)>& can_admit) const
      SQZ_EXCLUDES(mu_);

  // Least-committed routing: the scan's tied set — replicas of the least
  // committed eligible group (non-draining, unless every replica drains),
  // ascending replica index.  Never empty for a registered non-empty fn.
  std::vector<size_t> LeastCommittedTied(int fn) const SQZ_EXCLUDES(mu_);

  // Round-robin routing: non-draining replica count of `fn`, and the
  // k-th non-draining replica (k < EligibleCount(fn)).
  size_t EligibleCount(int fn) const SQZ_EXCLUDES(mu_);
  size_t EligibleAt(int fn, size_t k) const SQZ_EXCLUDES(mu_);

  // The non-draining host with the most pending scale-ups (at least
  // `min_pending`), ties to the lowest host index; -1 when none
  // qualifies (MostPressuredHost's max-scan).
  int MostPressured(size_t min_pending) const SQZ_EXCLUDES(mu_);

  size_t host_count() const { return nr_hosts_; }
  HostIndexStats stats() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  // One function's replica tree: (committed, replica index) ascending —
  // natural pair order gives committed groups ascending with replica
  // order inside each group, walked forward for least-committed and
  // backward (group-reversed) for bin-pack.
  struct FnIndex {
    std::vector<size_t> hosts;  // replica index -> host.
    std::set<std::pair<uint64_t, size_t>> by_committed;
    size_t draining_replicas = 0;
  };

  void ApplyRow(size_t host, uint64_t committed, size_t pending, bool draining)
      SQZ_REQUIRES(mu_);

  const size_t nr_hosts_;  // Set at construction, immutable after.
  mutable Mutex mu_;
  std::vector<HostRow> rows_ SQZ_GUARDED_BY(mu_);
  // (available, host) ascending.
  std::set<std::pair<uint64_t, size_t>> by_available_ SQZ_GUARDED_BY(mu_);
  // (pending desc, host asc): begin() is the pressure-scan winner.
  struct PressureOrder {
    bool operator()(const std::pair<size_t, size_t>& a,
                    const std::pair<size_t, size_t>& b) const {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    }
  };
  std::set<std::pair<size_t, size_t>, PressureOrder> by_pressure_ SQZ_GUARDED_BY(mu_);
  std::vector<FnIndex> fns_ SQZ_GUARDED_BY(mu_);
  // host -> (fn, replica index) memberships, so one host delta updates
  // every tree it appears in.
  std::vector<std::vector<std::pair<size_t, size_t>>> host_fns_ SQZ_GUARDED_BY(mu_);
  HostIndexStats stats_ SQZ_GUARDED_BY(mu_);
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_HOST_INDEX_H_
