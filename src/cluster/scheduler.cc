#include "src/cluster/scheduler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace squeezy {

const char* PlacementPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin:
      return "RoundRobin";
    case PlacementPolicy::kLeastCommitted:
      return "LeastCommitted";
    case PlacementPolicy::kMemoryAwareBinPack:
      return "MemBinPack";
    case PlacementPolicy::kHintedBinPack:
      return "HintedBinPack";
  }
  return "?";
}

const char* MigrationModeName(MigrationMode m) {
  switch (m) {
    case MigrationMode::kReapOnDrain:
      return "ReapOnDrain";
    case MigrationMode::kMigrateOnDrain:
      return "MigrateOnDrain";
  }
  return "?";
}

const char* PlacementImplName(PlacementImpl impl) {
  switch (impl) {
    case PlacementImpl::kDefault:
      return "Default";
    case PlacementImpl::kScan:
      return "Scan";
    case PlacementImpl::kIndexed:
      return "Indexed";
  }
  return "?";
}

ClusterScheduler::ClusterScheduler(PlacementPolicy policy, std::vector<HostControl*> hosts,
                                   const HostIndex* index)
    : policy_(policy), hosts_(std::move(hosts)), index_(index) {
  assert(!hosts_.empty());
}

std::vector<size_t> ClusterScheduler::PlaceFunction(uint64_t boot_commit,
                                                    uint64_t plug_unit,
                                                    size_t replicas) {
  MutexLock lock(&mu_);
  fn_plug_unit_.push_back(plug_unit);
  replicas = std::min(std::max<size_t>(replicas, 1), hosts_.size());
  // Hard admission: only non-draining hosts that can commit the VM's boot
  // footprint are candidates.  Fewer candidates than requested replicas
  // degrades the replica count; zero candidates means the function is
  // unplaceable (the cluster then rejects its invocations instead of
  // crashing a host).  The indexed path pulls the candidate set from one
  // by-available lower_bound; the scan reference judges every host from
  // one snapshot each.  Both yield the same hosts in ascending index
  // order with the same committed/available values.
  std::vector<size_t> order;
  std::vector<uint64_t> committed(hosts_.size(), 0);
  std::vector<uint64_t> available(hosts_.size(), 0);
  if (index_ != nullptr) {
    for (const HostIndex::Candidate& c : index_->CandidatesByAvailable(boot_commit)) {
      order.push_back(c.host);
      committed[c.host] = c.committed;
      available[c.host] = c.available;
    }
  } else {
    for (size_t h = 0; h < hosts_.size(); ++h) {
      const HostSnapshot s = hosts_[h]->Snapshot();
      if (!s.draining && s.available >= boot_commit) {
        order.push_back(h);
        committed[h] = s.committed;
        available[h] = s.available;
      }
    }
  }
  if (order.empty()) {
    return order;
  }

  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      // Next `replicas` candidates cyclically from the registration
      // cursor, which lives in stable host-index space: start from the
      // first candidate host >= cursor (wrapping), and continue after the
      // last host actually chosen.  Rotating by cursor % order.size()
      // over the FILTERED list made the cursor land on different hosts
      // across calls whenever any host was full or draining, skewing
      // placement toward low-index hosts.
      const size_t start = place_cursor_ % hosts_.size();
      auto first = std::lower_bound(order.begin(), order.end(), start);
      if (first == order.end()) {
        first = order.begin();  // Every candidate is below the cursor: wrap.
      }
      std::rotate(order.begin(), first, order.end());
      const size_t chosen = std::min(replicas, order.size());
      place_cursor_ = (order[chosen - 1] + 1) % hosts_.size();
      break;
    }
    case PlacementPolicy::kLeastCommitted:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return committed[a] < committed[b];
      });
      break;
    case PlacementPolicy::kMemoryAwareBinPack:
    case PlacementPolicy::kHintedBinPack: {
      // Most committed host that still fits boot + one instance, so VM
      // bases pack tightly and whole hosts stay free; boot-only hosts sort
      // last (most available first, to degrade gracefully).
      const uint64_t need = boot_commit + plug_unit;
      auto fits = [&](size_t h) { return available[h] >= need; };
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const bool fa = fits(a);
        const bool fb = fits(b);
        if (fa != fb) {
          return fa;
        }
        if (fa) {
          return committed[a] > committed[b];
        }
        return committed[a] < committed[b];
      });
      break;
    }
  }
  if (order.size() > replicas) {
    order.resize(replicas);
  }
  return order;
}

size_t& ClusterScheduler::RouteCursor(int cluster_fn) {
  if (route_cursor_.size() <= static_cast<size_t>(cluster_fn)) {
    route_cursor_.resize(static_cast<size_t>(cluster_fn) + 1, 0);
  }
  return route_cursor_[static_cast<size_t>(cluster_fn)];
}

size_t ClusterScheduler::LeastCommittedOf(const std::vector<Replica>& replicas,
                                          const std::vector<HostSnapshot>& snaps,
                                          int cluster_fn) {
  // Draining hosts take no new work while any alternative exists.
  bool any_live = false;
  for (const HostSnapshot& s : snaps) {
    any_live = any_live || !s.draining;
  }
  auto eligible = [&](size_t i) { return any_live ? !snaps[i].draining : true; };

  uint64_t min_committed = 0;
  bool seeded = false;
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (!eligible(i)) {
      continue;
    }
    if (!seeded || snaps[i].committed < min_committed) {
      min_committed = snaps[i].committed;
      seeded = true;
    }
  }
  // Exact ties are common (hosts idle at their boot commitment); breaking
  // them toward a fixed host would make the policy de facto sticky, so
  // tied hosts are rotated per function instead (still deterministic).
  std::vector<size_t> tied;
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (eligible(i) && snaps[i].committed == min_committed) {
      tied.push_back(i);
    }
  }
  return tied[RouteCursor(cluster_fn)++ % tied.size()];
}

const Replica& ClusterScheduler::RouteIndexed(int cluster_fn,
                                              const std::vector<Replica>& replicas) {
  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      // Spread over the non-draining replicas (all of them when every
      // host drains — routing must return something).  The index knows
      // the eligible count and k-th member without touching a host.
      const size_t eligible = index_->EligibleCount(cluster_fn);
      if (eligible == 0) {
        return replicas[RouteCursor(cluster_fn)++ % replicas.size()];
      }
      const size_t k = RouteCursor(cluster_fn)++ % eligible;
      return replicas[index_->EligibleAt(cluster_fn, k)];
    }
    case PlacementPolicy::kLeastCommitted: {
      const std::vector<size_t> tied = index_->LeastCommittedTied(cluster_fn);
      return replicas[tied[RouteCursor(cluster_fn)++ % tied.size()]];
    }
    case PlacementPolicy::kMemoryAwareBinPack:
    case PlacementPolicy::kHintedBinPack: {
      // Most committed replica that can admit, probed in the index's
      // (committed desc, replica asc) order — the scan's max-committed
      // first-match — with only the narrow CanAdmitNow read going live to
      // a host, and only until the first hit.
      const int best = index_->FirstAdmittingByCommittedDesc(
          cluster_fn, [&](size_t i) {
            return hosts_[replicas[i].host]->CanAdmitNow(replicas[i].local_fn);
          });
      if (best < 0) {
        // No replica admits: overflow onto the least committed one (its
        // reclamation backlog is the smallest, so it unblocks first).
        const std::vector<size_t> tied = index_->LeastCommittedTied(cluster_fn);
        const size_t donor = tied[RouteCursor(cluster_fn)++ % tied.size()];
        if (policy_ == PlacementPolicy::kHintedBinPack) {
          const uint64_t unit = fn_plug_unit_[static_cast<size_t>(cluster_fn)];
          hosts_[replicas[donor].host]->ProactiveReclaim(unit);
          ++hints_fired_;
        }
        return replicas[donor];
      }
      return replicas[static_cast<size_t>(best)];
    }
  }
  return replicas[0];
}

const Replica& ClusterScheduler::Route(int cluster_fn,
                                       const std::vector<Replica>& replicas) {
  assert(!replicas.empty());
  MutexLock lock(&mu_);
  ++decisions_;

  if (index_ != nullptr) {
    return RouteIndexed(cluster_fn, replicas);
  }

  // One consistent snapshot per replica for this whole decision: committed,
  // pressure and admissibility are read together, never torn.  The
  // admission check walks instance state, so only the bin-packing
  // policies (the ones that read can_admit) pay for it.
  const bool wants_admit = policy_ == PlacementPolicy::kMemoryAwareBinPack ||
                           policy_ == PlacementPolicy::kHintedBinPack;
  std::vector<HostSnapshot> snaps;
  snaps.reserve(replicas.size());
  for (const Replica& r : replicas) {
    snaps.push_back(hosts_[r.host]->Snapshot(wants_admit ? r.local_fn : -1));
  }

  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      // Spread over the non-draining replicas (all of them when every
      // host drains — routing must return something).
      std::vector<size_t> eligible;
      for (size_t i = 0; i < replicas.size(); ++i) {
        if (!snaps[i].draining) {
          eligible.push_back(i);
        }
      }
      if (eligible.empty()) {
        return replicas[RouteCursor(cluster_fn)++ % replicas.size()];
      }
      return replicas[eligible[RouteCursor(cluster_fn)++ % eligible.size()]];
    }
    case PlacementPolicy::kLeastCommitted:
      return replicas[LeastCommittedOf(replicas, snaps, cluster_fn)];
    case PlacementPolicy::kMemoryAwareBinPack:
    case PlacementPolicy::kHintedBinPack: {
      // Most committed replica that can admit without waiting on
      // reclamation; when none can, fall back to the least committed one
      // (its reclamation backlog is the smallest, so it unblocks first).
      int best = -1;
      for (size_t i = 0; i < replicas.size(); ++i) {
        if (!snaps[i].can_admit) {
          continue;
        }
        if (best < 0 || snaps[i].committed > snaps[static_cast<size_t>(best)].committed) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) {
        const size_t donor = LeastCommittedOf(replicas, snaps, cluster_fn);
        if (policy_ == PlacementPolicy::kHintedBinPack) {
          // Co-design: the burst outran reclamation everywhere.  Tell the
          // donor host to start reclaiming one plug unit NOW (evict +
          // unplug) instead of waiting for its next pressure tick, so the
          // scale-up this route triggers is served sooner.
          const uint64_t unit = fn_plug_unit_[static_cast<size_t>(cluster_fn)];
          hosts_[replicas[donor].host]->ProactiveReclaim(unit);
          ++hints_fired_;
        }
        return replicas[donor];
      }
      return replicas[static_cast<size_t>(best)];
    }
  }
  return replicas[0];
}

}  // namespace squeezy
