#include "src/cluster/scheduler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace squeezy {

const char* PlacementPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin:
      return "RoundRobin";
    case PlacementPolicy::kLeastCommitted:
      return "LeastCommitted";
    case PlacementPolicy::kMemoryAwareBinPack:
      return "MemBinPack";
  }
  return "?";
}

ClusterScheduler::ClusterScheduler(PlacementPolicy policy, std::vector<FaasRuntime*> hosts)
    : policy_(policy), hosts_(std::move(hosts)) {
  assert(!hosts_.empty());
}

std::vector<size_t> ClusterScheduler::PlaceFunction(uint64_t boot_commit,
                                                    uint64_t plug_unit,
                                                    size_t replicas) {
  replicas = std::min(std::max<size_t>(replicas, 1), hosts_.size());
  // Hard admission: only hosts that can commit the VM's boot footprint are
  // candidates.  Fewer candidates than requested replicas degrades the
  // replica count; zero candidates means the function is unplaceable (the
  // cluster then rejects its invocations instead of crashing a host).
  std::vector<size_t> order;
  for (size_t h = 0; h < hosts_.size(); ++h) {
    if (hosts_[h]->host().available() >= boot_commit) {
      order.push_back(h);
    }
  }
  if (order.empty()) {
    return order;
  }

  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      // Next `replicas` candidates cyclically from the registration cursor.
      std::rotate(order.begin(),
                  order.begin() + static_cast<long>(place_cursor_ % order.size()),
                  order.end());
      place_cursor_ += replicas;
      break;
    case PlacementPolicy::kLeastCommitted:
      std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        return hosts_[a]->committed() < hosts_[b]->committed();
      });
      break;
    case PlacementPolicy::kMemoryAwareBinPack: {
      // Most committed host that still fits boot + one instance, so VM
      // bases pack tightly and whole hosts stay free; boot-only hosts sort
      // last (most available first, to degrade gracefully).
      const uint64_t need = boot_commit + plug_unit;
      auto fits = [&](size_t h) { return hosts_[h]->host().available() >= need; };
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const bool fa = fits(a);
        const bool fb = fits(b);
        if (fa != fb) {
          return fa;
        }
        if (fa) {
          return hosts_[a]->committed() > hosts_[b]->committed();
        }
        return hosts_[a]->committed() < hosts_[b]->committed();
      });
      break;
    }
  }
  if (order.size() > replicas) {
    order.resize(replicas);
  }
  return order;
}

size_t ClusterScheduler::LeastCommittedOf(const std::vector<Replica>& replicas,
                                          int cluster_fn) {
  uint64_t min_committed = hosts_[replicas[0].host]->committed();
  for (size_t i = 1; i < replicas.size(); ++i) {
    min_committed = std::min(min_committed, hosts_[replicas[i].host]->committed());
  }
  // Exact ties are common (hosts idle at their boot commitment); breaking
  // them toward a fixed host would make the policy de facto sticky, so
  // tied hosts are rotated per function instead (still deterministic).
  std::vector<size_t> tied;
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (hosts_[replicas[i].host]->committed() == min_committed) {
      tied.push_back(i);
    }
  }
  if (route_cursor_.size() <= static_cast<size_t>(cluster_fn)) {
    route_cursor_.resize(static_cast<size_t>(cluster_fn) + 1, 0);
  }
  return tied[route_cursor_[static_cast<size_t>(cluster_fn)]++ % tied.size()];
}

const Replica& ClusterScheduler::Route(int cluster_fn,
                                       const std::vector<Replica>& replicas) {
  assert(!replicas.empty());
  ++decisions_;
  if (route_cursor_.size() <= static_cast<size_t>(cluster_fn)) {
    route_cursor_.resize(static_cast<size_t>(cluster_fn) + 1, 0);
  }
  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      return replicas[route_cursor_[static_cast<size_t>(cluster_fn)]++ %
                      replicas.size()];
    case PlacementPolicy::kLeastCommitted:
      return replicas[LeastCommittedOf(replicas, cluster_fn)];
    case PlacementPolicy::kMemoryAwareBinPack: {
      // Most committed replica that can admit without waiting on
      // reclamation; when none can, fall back to the least committed one
      // (its reclamation backlog is the smallest, so it unblocks first).
      int best = -1;
      for (size_t i = 0; i < replicas.size(); ++i) {
        const Replica& r = replicas[i];
        if (!hosts_[r.host]->CanAdmit(r.local_fn)) {
          continue;
        }
        if (best < 0 || hosts_[r.host]->committed() >
                            hosts_[replicas[static_cast<size_t>(best)].host]->committed()) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) {
        return replicas[LeastCommittedOf(replicas, cluster_fn)];
      }
      return replicas[static_cast<size_t>(best)];
    }
  }
  return replicas[0];
}

}  // namespace squeezy
