// Multi-host FaaS cluster (tentpole subsystem).
//
// Owns K FaasRuntime hosts driven by ONE shared EventQueue — a single
// virtual clock totally orders the whole fleet, so cluster runs are as
// bit-deterministic as single-host ones.  A ClusterScheduler routes
// function registration (replica VM placement) and every invocation
// (picked at arrival time against live per-host committed memory) across
// the hosts; see src/cluster/scheduler.h for the policies.
//
// Layering: sim → mm/guest/hotplug → core → host/faas(+policy) → cluster.
// The scheduler sees hosts only through the HostControl plane
// (src/faas/host_control.h); the Cluster additionally owns the concrete
// FaasRuntime objects and exposes them for metrics/tests, so every
// single-host experiment keeps working unchanged.
//
// Maintenance: DrainHost(h) flips host h into draining — the scheduler
// stops routing to its replicas, and its live replicas are either reaped
// in place (kReapOnDrain, PR 2 behavior) or live-migrated to destination
// hosts picked by the MigrationPlanner (kMigrateOnDrain): warm state is
// captured and evicted on the source (commitment returns through the
// source's reclaim driver), priced by the CostModel's pre-copy transfer
// model, and re-created warm at the destination through the normal
// CanAdmit admission sizing.  UndrainHost reverses the drain.
#ifndef SQUEEZY_CLUSTER_CLUSTER_H_
#define SQUEEZY_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/cluster/dep_cache.h"
#include "src/cluster/host_index.h"
#include "src/cluster/migration_planner.h"
#include "src/cluster/scheduler.h"
#include "src/faas/runtime.h"
#include "src/snapshot/snapshot_store.h"
#include "src/metrics/fleet.h"
#include "src/sim/event_queue.h"
#include "src/sim/sharded_event_queue.h"
#include "src/trace/trace_gen.h"

namespace squeezy {

struct ClusterConfig {
  size_t nr_hosts = 4;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  // Template for every host's runtime.  Host h runs with
  // seed = TraceStreamSeed(host.seed, h) (trace_gen.h scheme), so hosts'
  // internal randomness is decorrelated yet reproducible from one seed.
  RuntimeConfig host;
  // Replica VMs per function; 0 = one replica on every host.
  size_t replicas_per_function = 0;
  // What happens to a draining/pressured host's warm replicas.
  MigrationMode migration = MigrationMode::kReapOnDrain;
  // MigratePressured: minimum pending scale-ups before a host is treated
  // as under sustained pressure.
  size_t pressure_migrate_min_pending = 4;
  // Cluster-wide shared dependency cache (src/cluster/dep_cache.h): deps
  // regions charged once per host per image for sharing drivers, cold
  // starts fetch peer-resident images at wire speed, and migrations to a
  // populated destination skip deps_bytes on the wire.  Off by default —
  // every existing experiment is bit-identical with it off.
  bool shared_dep_cache = false;
  // Cluster-wide snapshot registry (src/snapshot/snapshot_store.h): each
  // function's first fully-warm idle records its touched-page working set;
  // later cold starts restore it as one bulk prefetch, and drivers with
  // SnapshotRestoreSupported() (Squeezy) size host commitment from the
  // restored working set instead of the full plug unit.  Off by default —
  // every existing experiment is bit-identical with it off.
  bool shared_snapshots = false;
  // Event-queue implementation for the shared fleet clock.  The timer
  // wheel is the default; kBinaryHeap preserves the pre-wheel single
  // priority queue so benches can A/B the kernel at fleet scale.
  // kSharded gives every host its own wheel plus a cross-shard mailbox,
  // driven by the Cluster in deterministic lockstep epochs
  // (src/sim/sharded_event_queue.h).  All three fire events in identical
  // order (locked by tests and the property fuzz), so this knob never
  // changes results — only wall-clock speed.
  EventQueue::Impl queue_impl = EventQueue::Impl::kTimerWheel;
  // Thread-pool width for kSharded parallel epochs (coordinator thread
  // included).  0 = read SQUEEZY_SIM_THREADS from the environment
  // (defaulting to 1 when unset); ignored by the single-queue impls.
  // Any value yields bit-identical results — threads only change
  // wall-clock.
  size_t sim_threads = 0;
  // Placement decision implementation: the incrementally-maintained
  // HostIndex (kIndexed — O(log hosts) per route) or the original
  // full-snapshot scan (kScan) retained as the bit-identical reference.
  // kDefault resolves SQUEEZY_PLACEMENT_IMPL from the environment
  // ("scan"/"indexed", defaulting to indexed).  Decisions are IDENTICAL
  // either way (locked by IndexedVsScanPlacementFuzzTest and the fig12
  // 256-host gate) — the knob only changes wall-clock.
  PlacementImpl placement_impl = PlacementImpl::kDefault;
};

// Lock discipline: the cluster self-locks (`mu_`) around its routing and
// migration book.  `mu_` is the TOP of the cluster lock ordering
// (src/base/mutex.h): cluster methods call down into the scheduler,
// planner, registries, hosts and the event queue while holding it, and
// none of those layers ever calls back up into the Cluster — event
// handlers the cluster schedules re-acquire `mu_` themselves (the queue
// invokes them with its own lock released).
class Cluster : private HostStateListener {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  // Registers `spec` on scheduler-chosen hosts; returns the cluster-level
  // function index used by SubmitTrace traces.  Under constrained memory
  // the function may get fewer replicas than configured — or none at all
  // (replicas(fn).empty()), in which case its invocations are rejected and
  // counted as unplaced.  That is the fleet-capacity lever: a reclaim
  // policy that hoards commitment (kStatic) loses registrable functions.
  int AddFunction(const FunctionSpec& spec, uint32_t max_concurrency)
      SQZ_EXCLUDES(mu_);

  // Schedules the merged fleet trace (Invocation::function is a cluster
  // function index).  Routing happens per invocation at its arrival time.
  void SubmitTrace(const std::vector<Invocation>& trace) SQZ_EXCLUDES(mu_);

  // Under kSharded these drive the epoch coordinator: advance all shards
  // to the next cross-shard barrier in parallel, merge the barrier
  // instant in (when, seq) order, repeat.  Single-queue impls just run.
  void RunUntil(TimeNs t) {
    if (sharded_ != nullptr) {
      sharded_->RunUntil(t);
    } else {
      events_->RunUntil(t);
    }
  }
  void RunAll() {
    if (sharded_ != nullptr) {
      sharded_->RunAll();
    } else {
      events_->RunAll();
    }
  }

  // --- Accessors -----------------------------------------------------------------
  // The fleet-level queue: the single global queue, or — under kSharded —
  // the cross-shard mailbox (dispatch, churn, migration completions).
  // Fleet-sequential contexts (tests, benches, Cluster handlers) schedule
  // here; per-host machinery runs on host_queue(h).
  EventQueue& events() { return *events_; }
  // The queue host h's runtime and agents fire on: its shard under
  // kSharded, the global queue otherwise.
  EventQueue& host_queue(size_t h) {
    return sharded_ != nullptr ? sharded_->shard(h) : *events_;
  }
  // Null unless queue_impl == kSharded.
  const ShardedEventQueue* sharded() const { return sharded_.get(); }
  // Events executed across the whole kernel (all shards + mailbox under
  // kSharded) — the bench throughput numerator.
  uint64_t processed_events() const {
    return sharded_ != nullptr ? sharded_->processed_events()
                               : events_->processed_events();
  }
  size_t host_count() const { return hosts_.size(); }
  FaasRuntime& host(size_t h) { return *hosts_[h]; }
  const FaasRuntime& host(size_t h) const { return *hosts_[h]; }
  ClusterScheduler& scheduler() { return *scheduler_; }
  // The placement candidate indexes (always maintained, in BOTH
  // placement_impl modes — so index stats are impl-independent and the
  // BENCH artifact byte-diffs across the CI placement legs).
  const HostIndex& host_index() const { return *host_index_; }
  // The implementation actually deciding placements after kDefault
  // resolution (construction-time; fixed for the cluster's lifetime).
  PlacementImpl placement_impl() const { return placement_impl_; }
  size_t function_count() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return functions_.size();
  }
  // Returns a reference into the (locked) function table; callers run at
  // quiescence (tests/benches between Run* calls) — under sharding this
  // accessor is an epoch-barrier read.
  const std::vector<Replica>& replicas(int cluster_fn) const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return functions_[static_cast<size_t>(cluster_fn)];
  }

  // --- Maintenance (the HostControl plane, fleet-side) -----------------------------
  // Under kMigrateOnDrain, live-migrates the host's warm replicas to
  // planner-chosen destinations before flipping it into draining.
  void DrainHost(size_t h) SQZ_EXCLUDES(mu_);
  void UndrainHost(size_t h) { hosts_[h]->Undrain(); }
  // One pressure-relief pass (kMigrateOnDrain only): if some host is
  // starving scale-ups (>= config.pressure_migrate_min_pending pending),
  // migrate its warm-but-idle replicas to hosts with headroom, freeing the
  // donor's commitment for the work it is actually serving.  Returns the
  // migrations started.
  size_t MigratePressured() SQZ_EXCLUDES(mu_);

  // --- Shared dependency cache ------------------------------------------------------
  // Null unless ClusterConfig::shared_dep_cache.
  const DepCache* dep_cache() const { return dep_cache_.get(); }

  // --- Shared snapshot registry -----------------------------------------------------
  // Null unless ClusterConfig::shared_snapshots.  Recordings live in
  // content-addressed shared storage, so one slot serves every host.
  const SnapshotStore* snapshot_store() const { return snapshot_store_.get(); }
  // Aggregated deps-file read accounting across every replica VM: how the
  // fleet's dependency bytes were actually served.
  struct DepIoTotals {
    uint64_t disk_read_bytes = 0;    // Cold backing-store IO paid.
    uint64_t remote_read_bytes = 0;  // Fetched from a peer host's image.
    uint64_t adopted_bytes = 0;      // Mapped from a host-resident image.
    // Bytes that would have been cold IO without the cache.
    uint64_t cold_io_avoided() const { return remote_read_bytes + adopted_bytes; }
  };
  DepIoTotals DepIo() const;

  // --- Migration introspection ------------------------------------------------------
  MigrationPlanner& planner() { return *planner_; }
  // Reference into the locked migration log — same quiescence contract
  // as replicas().
  const std::vector<MigrationRecord>& migrations() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return migrations_;
  }
  // Transfers started whose completion instant has not passed yet.
  uint64_t migrations_in_flight() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return in_flight_migrations_;
  }
  // Warm instances that landed on (were admitted by) destination hosts.
  uint64_t migrated_instances() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return migrated_instances_;
  }
  // Warm instances captured off donors but dropped (no destination fit or
  // the destination's admission ran out) — these cost future cold starts.
  uint64_t migration_reaped_instances() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return migration_reaped_instances_;
  }

  // Invocations routed to host h so far.
  uint64_t routed_to(size_t h) const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return routed_[h];
  }
  // Invocations rejected because their function has no replica anywhere.
  uint64_t unplaced_invocations() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return unplaced_;
  }
  // Order-sensitive FNV-1a digest of every routing decision; equal hashes
  // across runs mean identical placement streams (determinism tests).
  uint64_t routing_hash() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return routing_hash_;
  }

  // --- Fleet metrics ---------------------------------------------------------------
  // Pointwise sum of per-host committed-memory series.
  StepSeries FleetCommittedSeries() const;
  // Fleet rollup over [0, horizon] (latency percentiles merge every
  // replica's recorder; totals sum across hosts).
  FleetSummary Summarize(TimeNs horizon) const SQZ_EXCLUDES(mu_);

 private:
  // Event-handler entry point (locks mu_ itself; the queue invokes
  // handlers with its own lock released).
  void Dispatch(int cluster_fn) SQZ_EXCLUDES(mu_);
  // Migrates every warm replica off host `src`; returns transfers started.
  size_t MigrateOff(size_t src) SQZ_REQUIRES(mu_);
  // HostStateListener: hosts push (committed, pending, draining) deltas
  // here at their mutation choke points.  Forwards straight into the
  // leaf-locked HostIndex WITHOUT taking Cluster::mu_ — this runs from
  // host context below the cluster in the lock order (often while a
  // cluster method already holds mu_ further up the stack).
  void OnHostState(size_t host, uint64_t committed, size_t pending_scaleups,
                   bool draining) override {
    host_index_->Update(host, committed, pending_scaleups, draining);
  }

  const ClusterConfig config_;  // Immutable after construction.
  const PlacementImpl placement_impl_;  // kDefault resolved; immutable.
  // Exactly one of the two kernels below is live.  kSharded builds the
  // per-host shard array + mailbox; every other impl builds one global
  // queue.  `events_` always points at the fleet-level queue (the
  // mailbox under kSharded) so the scheduling sites read uniformly.
  std::unique_ptr<ShardedEventQueue> sharded_;
  std::unique_ptr<EventQueue> single_;
  EventQueue* events_;  // Never null; &sharded_->global() or single_.get().
  // The unique_ptr targets below are installed once in the constructor
  // and never reseated; the pointed-to objects self-lock.
  std::unique_ptr<DepCache> dep_cache_;  // Null unless shared_dep_cache.
  std::unique_ptr<SnapshotStore> snapshot_store_;  // Null unless shared_snapshots.
  // Declared BEFORE hosts_: hosts notify the index through the listener,
  // so it must outlive them (members destroy in reverse order).
  std::unique_ptr<HostIndex> host_index_;
  std::vector<std::unique_ptr<FaasRuntime>> hosts_;
  std::unique_ptr<ClusterScheduler> scheduler_;
  std::unique_ptr<MigrationPlanner> planner_;

  // Guards the routing/migration book below.
  mutable Mutex mu_;
  std::vector<std::vector<Replica>> functions_ SQZ_GUARDED_BY(mu_);
  // Destination sizing per function.
  std::vector<uint64_t> fn_plug_unit_ SQZ_GUARDED_BY(mu_);
  // Registry image per function.
  std::vector<DepImageId> fn_dep_image_ SQZ_GUARDED_BY(mu_);
  std::vector<uint64_t> routed_ SQZ_GUARDED_BY(mu_);
  std::vector<MigrationRecord> migrations_ SQZ_GUARDED_BY(mu_);
  uint64_t in_flight_migrations_ SQZ_GUARDED_BY(mu_) = 0;
  uint64_t migrated_instances_ SQZ_GUARDED_BY(mu_) = 0;
  uint64_t migration_reaped_instances_ SQZ_GUARDED_BY(mu_) = 0;
  uint64_t unplaced_ SQZ_GUARDED_BY(mu_) = 0;
  // FNV-1a offset basis.
  uint64_t routing_hash_ SQZ_GUARDED_BY(mu_) = 0xcbf29ce484222325ULL;
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_CLUSTER_H_
