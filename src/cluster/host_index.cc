#include "src/cluster/host_index.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

HostIndex::HostIndex(size_t nr_hosts) : nr_hosts_(nr_hosts) {
  assert(nr_hosts_ > 0);
  MutexLock lock(&mu_);
  rows_.resize(nr_hosts_);
  host_fns_.resize(nr_hosts_);
}

void HostIndex::InitHost(size_t host, uint64_t committed, uint64_t capacity,
                         size_t pending, bool draining) {
  MutexLock lock(&mu_);
  assert(host < nr_hosts_);
  HostRow& row = rows_[host];
  // Idempotent re-seed: drop any prior keys before inserting the new ones.
  by_available_.erase({row.available(), host});
  by_pressure_.erase({row.pending, host});
  row.capacity = capacity;
  ApplyRow(host, committed, pending, draining);
}

void HostIndex::Update(size_t host, uint64_t committed, size_t pending,
                       bool draining) {
  MutexLock lock(&mu_);
  assert(host < nr_hosts_);
  HostRow& row = rows_[host];
  ++stats_.updates;
  if (row.committed == committed && row.pending == pending &&
      row.draining == draining) {
    return;  // Spurious notification; every tree is already exact.
  }
  by_available_.erase({row.available(), host});
  by_pressure_.erase({row.pending, host});
  if (row.committed != committed) {
    for (const auto& [fn, replica] : host_fns_[host]) {
      fns_[fn].by_committed.erase({row.committed, replica});
    }
  }
  if (row.draining != draining) {
    for (const auto& [fn, replica] : host_fns_[host]) {
      fns_[fn].draining_replicas += draining ? 1 : -1;
    }
  }
  const uint64_t old_committed = row.committed;
  ApplyRow(host, committed, pending, draining);
  if (old_committed != committed) {
    for (const auto& [fn, replica] : host_fns_[host]) {
      fns_[fn].by_committed.insert({committed, replica});
    }
  }
}

void HostIndex::ApplyRow(size_t host, uint64_t committed, size_t pending,
                         bool draining) {
  HostRow& row = rows_[host];
  row.committed = committed;
  row.pending = pending;
  row.draining = draining;
  by_available_.insert({row.available(), host});
  by_pressure_.insert({pending, host});
}

void HostIndex::RegisterFunction(int fn, const std::vector<size_t>& replica_hosts) {
  MutexLock lock(&mu_);
  assert(fn >= 0);
  assert(static_cast<size_t>(fn) == fns_.size());  // Cluster-fn order.
  fns_.emplace_back();
  FnIndex& idx = fns_.back();
  idx.hosts = replica_hosts;
  for (size_t replica = 0; replica < replica_hosts.size(); ++replica) {
    const size_t host = replica_hosts[replica];
    assert(host < nr_hosts_);
    idx.by_committed.insert({rows_[host].committed, replica});
    if (rows_[host].draining) {
      ++idx.draining_replicas;
    }
    host_fns_[host].push_back({static_cast<size_t>(fn), replica});
  }
  ++stats_.functions;
  stats_.max_fn_replicas = std::max(stats_.max_fn_replicas, replica_hosts.size());
}

HostIndex::HostRow HostIndex::row(size_t host) const {
  MutexLock lock(&mu_);
  assert(host < nr_hosts_);
  return rows_[host];
}

std::vector<HostIndex::Candidate> HostIndex::CandidatesByAvailable(
    uint64_t need) const {
  MutexLock lock(&mu_);
  std::vector<Candidate> out;
  for (auto it = by_available_.lower_bound({need, 0}); it != by_available_.end();
       ++it) {
    const size_t host = it->second;
    if (rows_[host].draining) {
      continue;
    }
    out.push_back({host, rows_[host].committed, it->first});
  }
  // The scan visits hosts in ascending index; restore that order so every
  // downstream stable_sort and cursor computation sees the same sequence.
  std::sort(out.begin(), out.end(),
            [](const Candidate& a, const Candidate& b) { return a.host < b.host; });
  return out;
}

int HostIndex::FirstAdmittingByCommittedDesc(
    int fn, const std::function<bool(size_t)>& can_admit) const {
  // Snapshot the probe order under the lock, probe without it: can_admit
  // reaches into the host layer and must not run below `mu_`.
  std::vector<size_t> order;
  {
    MutexLock lock(&mu_);
    assert(static_cast<size_t>(fn) < fns_.size());
    const FnIndex& idx = fns_[fn];
    order.reserve(idx.hosts.size());
    auto it = idx.by_committed.rbegin();
    std::vector<size_t> group;
    while (it != idx.by_committed.rend()) {
      const uint64_t committed = it->first;
      group.clear();
      for (; it != idx.by_committed.rend() && it->first == committed; ++it) {
        group.push_back(it->second);  // Descending replica index.
      }
      order.insert(order.end(), group.rbegin(), group.rend());  // Ascending.
    }
  }
  for (size_t replica : order) {
    if (can_admit(replica)) {
      return static_cast<int>(replica);
    }
  }
  return -1;
}

std::vector<size_t> HostIndex::LeastCommittedTied(int fn) const {
  MutexLock lock(&mu_);
  assert(static_cast<size_t>(fn) < fns_.size());
  const FnIndex& idx = fns_[fn];
  // The scan treats every replica as eligible when ALL of them drain.
  const bool all_draining = idx.draining_replicas == idx.hosts.size();
  std::vector<size_t> tied;
  auto it = idx.by_committed.begin();
  while (it != idx.by_committed.end()) {
    const uint64_t committed = it->first;
    tied.clear();
    for (; it != idx.by_committed.end() && it->first == committed; ++it) {
      const size_t replica = it->second;
      if (all_draining || !rows_[idx.hosts[replica]].draining) {
        tied.push_back(replica);  // Ascending replica index (pair order).
      }
    }
    if (!tied.empty()) {
      return tied;  // First group with an eligible member == the scan's min.
    }
  }
  return tied;
}

size_t HostIndex::EligibleCount(int fn) const {
  MutexLock lock(&mu_);
  assert(static_cast<size_t>(fn) < fns_.size());
  return fns_[fn].hosts.size() - fns_[fn].draining_replicas;
}

size_t HostIndex::EligibleAt(int fn, size_t k) const {
  MutexLock lock(&mu_);
  assert(static_cast<size_t>(fn) < fns_.size());
  const FnIndex& idx = fns_[fn];
  if (idx.draining_replicas == 0) {
    return k;  // Every replica eligible: identity mapping, O(1).
  }
  for (size_t replica = 0; replica < idx.hosts.size(); ++replica) {
    if (rows_[idx.hosts[replica]].draining) {
      continue;
    }
    if (k == 0) {
      return replica;
    }
    --k;
  }
  assert(false && "EligibleAt: k out of range");
  return 0;
}

int HostIndex::MostPressured(size_t min_pending) const {
  MutexLock lock(&mu_);
  for (const auto& [pending, host] : by_pressure_) {
    if (rows_[host].draining) {
      continue;
    }
    // First non-draining entry has the max pending (ties lowest host);
    // the scan returns -1 when even the max misses min_pending.
    return pending >= min_pending ? static_cast<int>(host) : -1;
  }
  return -1;
}

}  // namespace squeezy
