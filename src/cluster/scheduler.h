// Cluster-level placement policies (the fleet's decision plane).
//
// Two decisions are routed through the scheduler:
//   * registration placement — which hosts get a replica VM when a
//     function is registered (Cluster::AddFunction);
//   * invocation routing — which replica serves an arriving request,
//     decided at arrival time against live host state.
//
// The scheduler sees hosts ONLY through HostControl (src/faas/
// host_control.h): each candidate is judged from a single HostSnapshot —
// one consistent committed/pressure/admit read per decision — and the
// co-design policies drive reclamation through the same interface.
//
// Policies:
//   kRoundRobin        — classic load spreading, memory-blind.
//   kLeastCommitted    — route to the replica whose host has the least
//                        committed memory (balances the admission book).
//   kMemoryAwareBinPack— first-fit-decreasing flavor: among replicas that
//                        can admit one more instance *right now* (warm
//                        instance, reusable plugged memory, or free
//                        commitment headroom), pick the MOST committed
//                        host.  Packing onto busy-but-admitting hosts
//                        keeps the tail of the fleet unloaded for spikes.
//                        The policy leans directly on reclamation speed:
//                        the faster unplug returns committed memory
//                        (Squeezy vs vanilla virtio-mem), the fresher the
//                        packing signal and the higher the achievable
//                        density — which is how rapid reclamation becomes
//                        a fleet-level capacity lever.
//   kHintedBinPack     — placement–reclaim co-design on top of the
//                        bin-packer: when NO replica can admit (a burst
//                        outran reclamation), the scheduler fires
//                        ProactiveReclaim(plug_unit) at the donor host it
//                        is about to overflow onto, so eviction + unplug
//                        start NOW instead of at the host's next pressure
//                        tick.  With a fast reclaim driver the donor's
//                        memory is back before the burst's tail arrives.
//
// Draining hosts (HostSnapshot::draining) receive no new replicas and no
// routes while any non-draining replica exists.
//
// Admission sizing: HostSnapshot::can_admit flows through the host's
// HasMemoryForFresh, which with a snapshot registry attached sizes a
// fresh plug from the driver's RestoredCommitment (working-set-sized for
// Squeezy) instead of the full plug unit — so the bin-packers see the
// extra density that snapshot restore buys without any scheduler change.
//
// Every decision is a deterministic function of (policy, host snapshots,
// per-function round-robin cursor); ties break toward the lowest host
// index so cluster runs are bit-reproducible for a given seed.
#ifndef SQUEEZY_CLUSTER_SCHEDULER_H_
#define SQUEEZY_CLUSTER_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/cluster/host_index.h"
#include "src/faas/host_control.h"

namespace squeezy {

// Which implementation backs the placement decisions:
//   kScan    — the original full pass over every candidate HostSnapshot
//              per decision, retained as the bit-identical reference;
//   kIndexed — the incrementally-maintained HostIndex (O(log hosts) per
//              decision; identical decisions, locked by fuzz + fig12).
//   kDefault — resolve from the SQUEEZY_PLACEMENT_IMPL environment
//              variable ("scan"/"indexed"), defaulting to kIndexed.
enum class PlacementImpl : uint8_t {
  kDefault,
  kScan,
  kIndexed,
};

const char* PlacementImplName(PlacementImpl impl);

enum class PlacementPolicy : uint8_t {
  kRoundRobin,
  kLeastCommitted,
  kMemoryAwareBinPack,
  kHintedBinPack,
};

const char* PlacementPolicyName(PlacementPolicy p);

// What happens to a draining (or pressured) host's live replicas:
//   kReapOnDrain    — evict them in place; their warm state is lost and
//                     re-routed invocations pay cold starts elsewhere.
//   kMigrateOnDrain — live-migrate warm replicas to destination hosts
//                     picked by the MigrationPlanner (bin-pack scoring
//                     over HostControl snapshots); the donor's commitment
//                     still drains at its reclaim driver's speed, but the
//                     warm state survives and post-drain invocations stay
//                     warm.  Also enables pressure-triggered migration
//                     (Cluster::MigratePressured).
enum class MigrationMode : uint8_t {
  kReapOnDrain,
  kMigrateOnDrain,
};

const char* MigrationModeName(MigrationMode m);

// One replica of a cluster function: the VM registered on hosts[host] as
// local function index local_fn.
struct Replica {
  size_t host = 0;
  int local_fn = -1;
};

// Lock discipline: the scheduler self-locks (`mu_`) around its decision
// state (cursors, per-function plug units, counters).  HostControl
// snapshots are taken while holding `mu_` — hosts sit BELOW the
// scheduler in the cluster lock ordering (src/base/mutex.h) and never
// call back up into it.
class ClusterScheduler {
 public:
  // `hosts` must outlive the scheduler.  With a non-null `index` (which
  // must also outlive the scheduler and mirror these hosts) decisions run
  // against the incrementally-maintained HostIndex instead of scanning a
  // HostSnapshot per candidate — same decisions, O(log hosts) per route.
  ClusterScheduler(PlacementPolicy policy, std::vector<HostControl*> hosts,
                   const HostIndex* index = nullptr);

  // Registration: picks up to `replicas` distinct hosts for a function
  // whose VM commits `boot_commit` bytes at boot and `plug_unit` bytes per
  // instance.  Hosts that cannot commit the boot footprint (or are
  // draining) are never chosen; the result may have fewer entries than
  // requested (or be empty when no host fits — the caller rejects the
  // function's invocations).  Calls must happen in cluster-function-index
  // order: the plug unit is recorded per function for routing hints.
  std::vector<size_t> PlaceFunction(uint64_t boot_commit, uint64_t plug_unit,
                                    size_t replicas) SQZ_EXCLUDES(mu_);

  // Routing: picks the serving replica for one invocation of cluster
  // function `cluster_fn` arriving now.  `replicas` is non-empty.
  const Replica& Route(int cluster_fn, const std::vector<Replica>& replicas)
      SQZ_EXCLUDES(mu_);

  PlacementPolicy policy() const { return policy_; }
  uint64_t decisions() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return decisions_;
  }
  // ProactiveReclaim hints fired at donor hosts (kHintedBinPack only).
  uint64_t hints_fired() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return hints_fired_;
  }

 private:
  // Index into `replicas`/`snaps` of the least-committed non-draining host
  // (all hosts when every one drains); exact ties rotate per function (see
  // .cc) to avoid sticky-host herding.
  size_t LeastCommittedOf(const std::vector<Replica>& replicas,
                          const std::vector<HostSnapshot>& snaps, int cluster_fn)
      SQZ_REQUIRES(mu_);
  // Index-backed Route body: no snapshot vector is materialized — the
  // candidate order comes from the HostIndex trees and only the narrow
  // live reads a decision still needs (CanAdmitNow probes) touch hosts.
  const Replica& RouteIndexed(int cluster_fn, const std::vector<Replica>& replicas)
      SQZ_REQUIRES(mu_);
  size_t& RouteCursor(int cluster_fn) SQZ_REQUIRES(mu_);

  const PlacementPolicy policy_;           // Immutable after construction.
  const std::vector<HostControl*> hosts_;  // Pointer set fixed at construction.
  const HostIndex* const index_;           // Null => full-scan reference path.
  mutable Mutex mu_;
  // Registration round-robin cursor, in STABLE host-index space: it
  // names the next host to start from, never a position in the filtered
  // candidate list (which shifts whenever a host is full or draining and
  // skews placement toward low-index hosts).
  size_t place_cursor_ SQZ_GUARDED_BY(mu_) = 0;
  // Per-function routing round-robin.
  std::vector<size_t> route_cursor_ SQZ_GUARDED_BY(mu_);
  // Per-function plug unit (hint sizing).
  std::vector<uint64_t> fn_plug_unit_ SQZ_GUARDED_BY(mu_);
  uint64_t decisions_ SQZ_GUARDED_BY(mu_) = 0;
  uint64_t hints_fired_ SQZ_GUARDED_BY(mu_) = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_SCHEDULER_H_
