// Cluster-level placement policies (tentpole of the multi-host layer).
//
// Two decisions are routed through the scheduler:
//   * registration placement — which hosts get a replica VM when a
//     function is registered (Cluster::AddFunction);
//   * invocation routing — which replica serves an arriving request,
//     decided at arrival time against live host state.
//
// Policies:
//   kRoundRobin        — classic load spreading, memory-blind.
//   kLeastCommitted    — route to the replica whose host has the least
//                        committed memory (balances the admission book).
//   kMemoryAwareBinPack— first-fit-decreasing flavor: among replicas that
//                        can admit one more instance *right now* (warm
//                        instance, reusable plugged memory, or free
//                        commitment headroom), pick the MOST committed
//                        host.  Packing onto busy-but-admitting hosts
//                        keeps the tail of the fleet unloaded for spikes.
//                        The policy leans directly on reclamation speed:
//                        the faster unplug returns committed memory
//                        (Squeezy vs vanilla virtio-mem), the fresher the
//                        packing signal and the higher the achievable
//                        density — which is how rapid reclamation becomes
//                        a fleet-level capacity lever.
//
// Every decision is a deterministic function of (policy, host state,
// per-function round-robin cursor); ties break toward the lowest host
// index so cluster runs are bit-reproducible for a given seed.
#ifndef SQUEEZY_CLUSTER_SCHEDULER_H_
#define SQUEEZY_CLUSTER_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/faas/runtime.h"

namespace squeezy {

enum class PlacementPolicy : uint8_t {
  kRoundRobin,
  kLeastCommitted,
  kMemoryAwareBinPack,
};

const char* PlacementPolicyName(PlacementPolicy p);

// One replica of a cluster function: the VM registered on hosts[host] as
// local function index local_fn.
struct Replica {
  size_t host = 0;
  int local_fn = -1;
};

class ClusterScheduler {
 public:
  // `hosts` must outlive the scheduler.
  ClusterScheduler(PlacementPolicy policy, std::vector<FaasRuntime*> hosts);

  // Registration: picks up to `replicas` distinct hosts for a function
  // whose VM commits `boot_commit` bytes at boot and `plug_unit` bytes per
  // instance.  Hosts that cannot commit the boot footprint are never
  // chosen; the result may have fewer entries than requested (or be empty
  // when no host fits — the caller rejects the function's invocations).
  std::vector<size_t> PlaceFunction(uint64_t boot_commit, uint64_t plug_unit,
                                    size_t replicas);

  // Routing: picks the serving replica for one invocation of cluster
  // function `cluster_fn` arriving now.  `replicas` is non-empty.
  const Replica& Route(int cluster_fn, const std::vector<Replica>& replicas);

  PlacementPolicy policy() const { return policy_; }
  uint64_t decisions() const { return decisions_; }

 private:
  // Index into `replicas` of the least-committed host; exact ties rotate
  // per function (see .cc) to avoid sticky-host herding.
  size_t LeastCommittedOf(const std::vector<Replica>& replicas, int cluster_fn);

  PlacementPolicy policy_;
  std::vector<FaasRuntime*> hosts_;
  size_t place_cursor_ = 0;            // Registration round-robin.
  std::vector<size_t> route_cursor_;   // Per-function routing round-robin.
  uint64_t decisions_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_SCHEDULER_H_
