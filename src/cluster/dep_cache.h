// Cluster-wide shared dependency-image cache (the TrEnv-X direction).
//
// file_deps_bytes dominates replica footprint (up to 820 MiB for Bert in
// the paper's function set) yet, before this registry, every VM boot
// committed its own copy of the deps region, every cold start paid cold
// backing-store IO for it, and every migration shipped it over the wire —
// even when the destination host already held the identical image.
//
// The DepCache is the fleet's single source of truth for image residency:
//   * residency  — which hosts charge the image's block-rounded region to
//     their commitment book (once per host per image; FaasRuntime pins at
//     VM boot through the DepImageRegistry interface and skips the charge
//     for VMs that join an already-resident image);
//   * population — which hosts actually hold the bytes warm, so a cold
//     start elsewhere fetches them at wire speed (CostModel::
//     dep_fetch_byte_x1000) instead of cold IO (io_byte_x1000), and a
//     migration to a populated destination skips deps_bytes on the wire
//     entirely (priced as CostModel::dep_cache_hit_fixed);
//   * refcounts  — live instances per (host, image); a zero-ref image is
//     reclaimable: on host drain or under memory pressure the residency
//     is released and its commitment flows back through the host's
//     active ReclaimDriver, conserving the fleet book.
//
// Only drivers with SharedDepsSupported() participate (Squeezy — its
// shared read-only partition already models exactly this payload);
// Static/VirtioMem hosts never touch the registry and stay bit-identical.
//
// Modeling approximation: host frames are deduplicated through the
// population flag — once a host is marked populated, sibling VMs adopt
// the image without populating new frames.  Two sibling VMs cold-starting
// in the sub-second window between an image (re-)charge and the first
// instance-idle population signal can each fault their own copy; the
// block-rounded residency charge absorbs this in practice.
#ifndef SQUEEZY_CLUSTER_DEP_CACHE_H_
#define SQUEEZY_CLUSTER_DEP_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/faas/dep_registry.h"

namespace squeezy {

// Fleet-level registry counters (benches report these as headline
// metrics; tests assert their conservation).
struct DepCacheStats {
  uint64_t images = 0;            // Distinct images interned.
  uint64_t pins = 0;              // PinImage calls (VM boots + re-charges).
  uint64_t boot_dedup_hits = 0;   // Pins that joined a resident image.
  uint64_t boot_bytes_saved = 0;  // Commitment never charged thanks to dedup.
  uint64_t evictions = 0;         // Residencies released (drain/pressure).
  uint64_t evicted_bytes = 0;     // Commitment flowed back through drivers.
  uint64_t wire_hits = 0;         // Migrations that skipped deps on the wire.
  uint64_t wire_bytes_saved = 0;  // deps_bytes that never crossed the wire.
};

class DepCache : public DepImageRegistry {
 public:
  explicit DepCache(size_t nr_hosts);

  // --- DepImageRegistry ------------------------------------------------------------
  DepImageId Intern(const std::string& key, uint64_t region_bytes) override;
  uint64_t region_bytes(DepImageId img) const override;
  bool PinImage(size_t host, DepImageId img) override;
  uint64_t EvictImage(size_t host, DepImageId img) override;
  bool Resident(size_t host, DepImageId img) const override;
  void AddRef(size_t host, DepImageId img) override;
  void ReleaseRef(size_t host, DepImageId img) override;
  uint64_t RefCount(size_t host, DepImageId img) const override;
  void MarkPopulated(size_t host, DepImageId img) override;
  bool Populated(size_t host, DepImageId img) const override;
  bool PopulatedElsewhere(size_t host, DepImageId img) const override;

  // --- Fleet-side bookkeeping --------------------------------------------------------
  // A migration to a populated destination skipped `bytes` on the wire.
  void RecordWireHit(uint64_t bytes);

  size_t image_count() const { return images_.size(); }
  size_t host_count() const { return hosts_.size(); }
  // Commitment currently charged for resident images on `host` (the
  // host's book at quiescence is boot bases + plugged units + this).
  uint64_t charged_bytes(size_t host) const;
  const DepCacheStats& stats() const { return stats_; }

 private:
  struct Residency {
    bool resident = false;
    bool populated = false;
    uint64_t refs = 0;
  };
  struct Image {
    std::string key;
    uint64_t region_bytes = 0;
  };

  Residency& at(size_t host, DepImageId img);
  const Residency& at(size_t host, DepImageId img) const;

  std::vector<Image> images_;
  std::unordered_map<std::string, DepImageId> by_key_;
  // hosts_[host][img] — images are few (one per function spec), so a
  // dense per-host vector keeps lookups allocation-free on the hot path.
  std::vector<std::vector<Residency>> hosts_;
  DepCacheStats stats_;
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_DEP_CACHE_H_
