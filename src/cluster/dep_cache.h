// Cluster-wide shared dependency-image cache (the TrEnv-X direction).
//
// file_deps_bytes dominates replica footprint (up to 820 MiB for Bert in
// the paper's function set) yet, before this registry, every VM boot
// committed its own copy of the deps region, every cold start paid cold
// backing-store IO for it, and every migration shipped it over the wire —
// even when the destination host already held the identical image.
//
// The DepCache is the fleet's single source of truth for image residency:
//   * residency  — which hosts charge the image's block-rounded region to
//     their commitment book (once per host per image; FaasRuntime pins at
//     VM boot through the DepImageRegistry interface and skips the charge
//     for VMs that join an already-resident image);
//   * population — which hosts actually hold the bytes warm, so a cold
//     start elsewhere fetches them at wire speed (CostModel::
//     dep_fetch_byte_x1000) instead of cold IO (io_byte_x1000), and a
//     migration to a populated destination skips deps_bytes on the wire
//     entirely (priced as CostModel::dep_cache_hit_fixed);
//   * refcounts  — live instances per (host, image); a zero-ref image is
//     reclaimable: on host drain or under memory pressure the residency
//     is released and its commitment flows back through the host's
//     active ReclaimDriver, conserving the fleet book.
//
// Only drivers with SharedDepsSupported() participate (Squeezy — its
// shared read-only partition already models exactly this payload);
// Static/VirtioMem hosts never touch the registry and stay bit-identical.
//
// Modeling approximation: host frames are deduplicated through the
// population flag — once a host is marked populated, sibling VMs adopt
// the image without populating new frames.  Two sibling VMs cold-starting
// in the sub-second window between an image (re-)charge and the first
// instance-idle population signal can each fault their own copy; the
// block-rounded residency charge absorbs this in practice.
#ifndef SQUEEZY_CLUSTER_DEP_CACHE_H_
#define SQUEEZY_CLUSTER_DEP_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/faas/dep_registry.h"

namespace squeezy {

// Fleet-level registry counters (benches report these as headline
// metrics; tests assert their conservation).
struct DepCacheStats {
  uint64_t images = 0;            // Distinct images interned.
  uint64_t pins = 0;              // PinImage calls (VM boots + re-charges).
  uint64_t boot_dedup_hits = 0;   // Pins that joined a resident image.
  uint64_t boot_bytes_saved = 0;  // Commitment never charged thanks to dedup.
  uint64_t evictions = 0;         // Residencies released (drain/pressure).
  uint64_t evicted_bytes = 0;     // Commitment flowed back through drivers.
  uint64_t wire_hits = 0;         // Migrations that skipped deps on the wire.
  uint64_t wire_bytes_saved = 0;  // deps_bytes that never crossed the wire.
};

// Lock discipline: the cache self-locks (`mu_`) — it is exactly the
// cross-host shared state the per-host queue sharding will contend on.
// Methods never call out of the class while holding `mu_`, so the lock
// is a leaf in the cluster ordering (see src/base/mutex.h).
class DepCache : public DepImageRegistry {
 public:
  explicit DepCache(size_t nr_hosts);

  // --- DepImageRegistry ------------------------------------------------------------
  DepImageId Intern(const std::string& key, uint64_t region_bytes) override
      SQZ_EXCLUDES(mu_);
  uint64_t region_bytes(DepImageId img) const override SQZ_EXCLUDES(mu_);
  bool PinImage(size_t host, DepImageId img) override SQZ_EXCLUDES(mu_);
  uint64_t EvictImage(size_t host, DepImageId img) override SQZ_EXCLUDES(mu_);
  bool Resident(size_t host, DepImageId img) const override SQZ_EXCLUDES(mu_);
  void AddRef(size_t host, DepImageId img) override SQZ_EXCLUDES(mu_);
  void ReleaseRef(size_t host, DepImageId img) override SQZ_EXCLUDES(mu_);
  uint64_t RefCount(size_t host, DepImageId img) const override SQZ_EXCLUDES(mu_);
  void MarkPopulated(size_t host, DepImageId img) override SQZ_EXCLUDES(mu_);
  bool Populated(size_t host, DepImageId img) const override SQZ_EXCLUDES(mu_);
  bool PopulatedElsewhere(size_t host, DepImageId img) const override
      SQZ_EXCLUDES(mu_);

  // --- Fleet-side bookkeeping --------------------------------------------------------
  // A migration to a populated destination skipped `bytes` on the wire.
  void RecordWireHit(uint64_t bytes) SQZ_EXCLUDES(mu_);

  size_t image_count() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return images_.size();
  }
  size_t host_count() const { return nr_hosts_; }
  // Commitment currently charged for resident images on `host` (the
  // host's book at quiescence is boot bases + plugged units + this).
  uint64_t charged_bytes(size_t host) const SQZ_EXCLUDES(mu_);
  // (key, region_bytes) of every image resident on `host`, in key order.
  // Sim-visible dump path (stats tables, bench rows): iteration runs over
  // the ordered key index, NEVER a hash table, so the output is a pure
  // function of the inserted set — insertion order cannot leak into it
  // (locked by tests/determinism_order_test.cc).
  std::vector<std::pair<std::string, uint64_t>> ChargedImages(size_t host) const
      SQZ_EXCLUDES(mu_);
  DepCacheStats stats() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  struct Residency {
    bool resident = false;
    bool populated = false;
    uint64_t refs = 0;
  };
  struct Image {
    std::string key;
    uint64_t region_bytes = 0;
  };

  Residency& at(size_t host, DepImageId img) SQZ_REQUIRES(mu_);
  const Residency& at(size_t host, DepImageId img) const SQZ_REQUIRES(mu_);

  const size_t nr_hosts_;  // Set at construction, immutable after.
  mutable Mutex mu_;
  std::vector<Image> images_ SQZ_GUARDED_BY(mu_);
  // Ordered key index: Intern() is lookup-dominated and off the hot path,
  // and an ordered map makes every future key iteration (dumps, eviction
  // sweeps) deterministic BY CONSTRUCTION instead of by audit.
  std::map<std::string, DepImageId> by_key_ SQZ_GUARDED_BY(mu_);
  // hosts_[host][img] — images are few (one per function spec), so a
  // dense per-host vector keeps lookups allocation-free on the hot path.
  std::vector<std::vector<Residency>> hosts_ SQZ_GUARDED_BY(mu_);
  DepCacheStats stats_ SQZ_GUARDED_BY(mu_);
};

}  // namespace squeezy

#endif  // SQUEEZY_CLUSTER_DEP_CACHE_H_
