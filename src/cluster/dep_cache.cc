#include "src/cluster/dep_cache.h"

#include <cassert>

namespace squeezy {

DepCache::DepCache(size_t nr_hosts) : nr_hosts_(nr_hosts), hosts_(nr_hosts) {
  assert(nr_hosts > 0);
}

DepImageId DepCache::Intern(const std::string& key, uint64_t region_bytes) {
  MutexLock lock(&mu_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    assert(images_[static_cast<size_t>(it->second)].region_bytes == region_bytes &&
           "one key, one image size");
    return it->second;
  }
  const DepImageId img = static_cast<DepImageId>(images_.size());
  images_.push_back(Image{key, region_bytes});
  by_key_.emplace(key, img);
  for (auto& h : hosts_) {
    h.resize(images_.size());
  }
  ++stats_.images;
  return img;
}

uint64_t DepCache::region_bytes(DepImageId img) const {
  MutexLock lock(&mu_);
  return images_[static_cast<size_t>(img)].region_bytes;
}

DepCache::Residency& DepCache::at(size_t host, DepImageId img) {
  assert(host < hosts_.size());
  assert(img >= 0 && static_cast<size_t>(img) < images_.size());
  return hosts_[host][static_cast<size_t>(img)];
}

const DepCache::Residency& DepCache::at(size_t host, DepImageId img) const {
  return const_cast<DepCache*>(this)->at(host, img);
}

bool DepCache::PinImage(size_t host, DepImageId img) {
  MutexLock lock(&mu_);
  Residency& r = at(host, img);
  ++stats_.pins;
  if (r.resident) {
    ++stats_.boot_dedup_hits;
    stats_.boot_bytes_saved += images_[static_cast<size_t>(img)].region_bytes;
    return true;
  }
  r.resident = true;
  return false;
}

uint64_t DepCache::EvictImage(size_t host, DepImageId img) {
  MutexLock lock(&mu_);
  Residency& r = at(host, img);
  if (!r.resident) {
    return 0;
  }
  assert(r.refs == 0 && "only unreferenced images are evictable");
  r.resident = false;
  r.populated = false;
  ++stats_.evictions;
  const uint64_t bytes = images_[static_cast<size_t>(img)].region_bytes;
  stats_.evicted_bytes += bytes;
  return bytes;
}

bool DepCache::Resident(size_t host, DepImageId img) const {
  MutexLock lock(&mu_);
  return at(host, img).resident;
}

void DepCache::AddRef(size_t host, DepImageId img) {
  MutexLock lock(&mu_);
  Residency& r = at(host, img);
  assert(r.resident && "references only on resident images");
  ++r.refs;
}

void DepCache::ReleaseRef(size_t host, DepImageId img) {
  MutexLock lock(&mu_);
  Residency& r = at(host, img);
  assert(r.refs > 0);
  --r.refs;
}

uint64_t DepCache::RefCount(size_t host, DepImageId img) const {
  MutexLock lock(&mu_);
  return at(host, img).refs;
}

void DepCache::MarkPopulated(size_t host, DepImageId img) {
  MutexLock lock(&mu_);
  Residency& r = at(host, img);
  assert(r.resident && "population implies residency");
  r.populated = true;
}

bool DepCache::Populated(size_t host, DepImageId img) const {
  MutexLock lock(&mu_);
  return at(host, img).populated;
}

bool DepCache::PopulatedElsewhere(size_t host, DepImageId img) const {
  MutexLock lock(&mu_);
  for (size_t h = 0; h < hosts_.size(); ++h) {
    if (h != host && hosts_[h][static_cast<size_t>(img)].populated) {
      return true;
    }
  }
  return false;
}

void DepCache::RecordWireHit(uint64_t bytes) {
  MutexLock lock(&mu_);
  ++stats_.wire_hits;
  stats_.wire_bytes_saved += bytes;
}

uint64_t DepCache::charged_bytes(size_t host) const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (size_t i = 0; i < images_.size(); ++i) {
    if (hosts_[host][i].resident) {
      total += images_[i].region_bytes;
    }
  }
  return total;
}

std::vector<std::pair<std::string, uint64_t>> DepCache::ChargedImages(
    size_t host) const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  // by_key_ is ordered: the dump is key-sorted no matter what order the
  // images were interned in.
  for (const auto& [key, img] : by_key_) {
    if (hosts_[host][static_cast<size_t>(img)].resident) {
      out.emplace_back(key, images_[static_cast<size_t>(img)].region_bytes);
    }
  }
  return out;
}

}  // namespace squeezy
