#include "src/cluster/cluster.h"

#include <cassert>

namespace squeezy {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  assert(config_.nr_hosts > 0);
  // The scheduler gets the narrow control plane, not the runtimes.
  std::vector<HostControl*> raw;
  raw.reserve(config_.nr_hosts);
  for (size_t h = 0; h < config_.nr_hosts; ++h) {
    RuntimeConfig host_cfg = config_.host;
    host_cfg.seed = TraceStreamSeed(config_.host.seed, static_cast<int32_t>(h));
    hosts_.push_back(std::make_unique<FaasRuntime>(host_cfg, &events_));
    raw.push_back(hosts_.back().get());
  }
  routed_.assign(config_.nr_hosts, 0);
  scheduler_ = std::make_unique<ClusterScheduler>(config_.placement, std::move(raw));
}

Cluster::~Cluster() = default;

int Cluster::AddFunction(const FunctionSpec& spec, uint32_t max_concurrency) {
  const int cluster_fn = static_cast<int>(functions_.size());
  const uint64_t boot_commit =
      FaasRuntime::BootCommitment(config_.host, spec, max_concurrency);
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const size_t replicas_wanted = config_.replicas_per_function == 0
                                     ? hosts_.size()
                                     : config_.replicas_per_function;
  const std::vector<size_t> placed =
      scheduler_->PlaceFunction(boot_commit, plug_unit, replicas_wanted);

  std::vector<Replica> replicas;
  replicas.reserve(placed.size());
  for (const size_t h : placed) {
    replicas.push_back(Replica{h, hosts_[h]->AddFunction(spec, max_concurrency)});
  }
  functions_.push_back(std::move(replicas));
  return cluster_fn;
}

void Cluster::SubmitTrace(const std::vector<Invocation>& trace) {
  for (const Invocation& inv : trace) {
    const int cluster_fn = inv.function;
    assert(cluster_fn >= 0 && static_cast<size_t>(cluster_fn) < functions_.size());
    events_.ScheduleAt(inv.at, [this, cluster_fn] { Dispatch(cluster_fn); });
  }
}

void Cluster::Dispatch(int cluster_fn) {
  if (functions_[static_cast<size_t>(cluster_fn)].empty()) {
    ++unplaced_;  // No host could ever fit this function's VM.
    return;
  }
  const Replica& r =
      scheduler_->Route(cluster_fn, functions_[static_cast<size_t>(cluster_fn)]);
  ++routed_[r.host];
  // FNV-1a over (function, host) pairs: any divergence in any decision
  // changes the digest.
  routing_hash_ ^= static_cast<uint64_t>(cluster_fn) * 131 + r.host + 1;
  routing_hash_ *= 0x100000001b3ULL;
  hosts_[r.host]->agent(r.local_fn).Submit();
}

StepSeries Cluster::FleetCommittedSeries() const {
  std::vector<const StepSeries*> parts;
  parts.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    parts.push_back(&h->host().committed_series());
  }
  return SumSeries(parts);
}

FleetSummary Cluster::Summarize(TimeNs horizon) const {
  FleetSummary s;
  s.hosts = hosts_.size();
  std::vector<const LatencyRecorder*> recorders;
  for (const auto& h : hosts_) {
    for (size_t fn = 0; fn < h->function_count(); ++fn) {
      const Agent& agent = h->agent(static_cast<int>(fn));
      recorders.push_back(&agent.latencies());
      s.completed_requests += agent.requests().size();
      s.cold_starts += agent.cold_starts().size();
      s.evictions += agent.total_evictions();
    }
    s.pending_scaleups_total += h->total_pending_scaleups();
    s.unplug_failures += h->total_unplug_failures();
  }
  s.unplaced_invocations = unplaced_;
  const LatencyRecorder fleet = MergeLatencies(recorders);
  if (!fleet.empty()) {
    s.latency_p50 = fleet.Percentile(50);
    s.latency_p99 = fleet.Percentile(99);
    s.latency_mean = fleet.Mean();
  }
  const StepSeries committed = FleetCommittedSeries();
  s.committed_peak = static_cast<uint64_t>(committed.Max());
  s.committed_gib_seconds =
      committed.IntegralSec(0, horizon) / static_cast<double>(GiB(1));
  return s;
}

}  // namespace squeezy
