#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string_view>

namespace squeezy {

namespace {

// Pool width for kSharded: the config value, or — when 0 — the
// SQUEEZY_SIM_THREADS environment knob (the CI matrix leg drives this),
// defaulting to 1.  Clamped to at least the coordinator thread.
size_t ResolveSimThreads(size_t configured) {
  if (configured > 0) {
    return configured;
  }
  const char* env = std::getenv("SQUEEZY_SIM_THREADS");
  if (env == nullptr) {
    return 1;
  }
  const long parsed = std::atol(env);
  return parsed > 1 ? static_cast<size_t>(parsed) : 1;
}

// Placement implementation for kDefault: the SQUEEZY_PLACEMENT_IMPL
// environment knob (the CI matrix leg drives this), defaulting to the
// indexed path.  Same resolution shape as ResolveSimThreads.
PlacementImpl ResolvePlacementImpl(PlacementImpl configured) {
  if (configured != PlacementImpl::kDefault) {
    return configured;
  }
  const char* env = std::getenv("SQUEEZY_PLACEMENT_IMPL");
  if (env != nullptr && std::string_view(env) == "scan") {
    return PlacementImpl::kScan;
  }
  return PlacementImpl::kIndexed;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), placement_impl_(ResolvePlacementImpl(config.placement_impl)) {
  assert(config_.nr_hosts > 0);
  if (config_.queue_impl == EventQueue::Impl::kSharded) {
    // Hosts sharing a registry (dep cache / snapshot store) can touch
    // cross-host state from shard-local handlers, so every event must be
    // its own barrier — serial lockstep replays the exact single-queue
    // order.  Registry-free fleets run the parallel epoch fast path.
    const bool serial = config_.shared_dep_cache || config_.shared_snapshots;
    sharded_ = std::make_unique<ShardedEventQueue>(
        config_.nr_hosts, ResolveSimThreads(config_.sim_threads), serial);
    events_ = &sharded_->global();
  } else {
    single_ = std::make_unique<EventQueue>(config_.queue_impl);
    events_ = single_.get();
  }
  if (config_.shared_dep_cache) {
    dep_cache_ = std::make_unique<DepCache>(config_.nr_hosts);
  }
  if (config_.shared_snapshots) {
    snapshot_store_ = std::make_unique<SnapshotStore>(SnapshotStoreConfig{});
  }
  // The candidate indexes are maintained in BOTH placement modes (hosts
  // always notify), so index stats stay impl-independent — but only the
  // indexed mode lets the deciders read them.
  host_index_ = std::make_unique<HostIndex>(config_.nr_hosts);
  const HostIndex* decide_index =
      placement_impl_ == PlacementImpl::kIndexed ? host_index_.get() : nullptr;
  // The scheduler gets the narrow control plane, not the runtimes.
  std::vector<HostControl*> raw;
  raw.reserve(config_.nr_hosts);
  for (size_t h = 0; h < config_.nr_hosts; ++h) {
    RuntimeConfig host_cfg = config_.host;
    host_cfg.seed = TraceStreamSeed(config_.host.seed, static_cast<int32_t>(h));
    hosts_.push_back(std::make_unique<FaasRuntime>(host_cfg, &host_queue(h)));
    if (dep_cache_ != nullptr) {
      hosts_.back()->AttachDepRegistry(dep_cache_.get(), h);
    }
    if (snapshot_store_ != nullptr) {
      hosts_.back()->AttachSnapshotRegistry(snapshot_store_.get());
    }
    host_index_->InitHost(h, hosts_.back()->committed(),
                          hosts_.back()->host_capacity(),
                          hosts_.back()->pending_scaleups(),
                          hosts_.back()->draining());
    hosts_.back()->AttachStateListener(this, h);
    raw.push_back(hosts_.back().get());
  }
  routed_.assign(config_.nr_hosts, 0);
  scheduler_ = std::make_unique<ClusterScheduler>(config_.placement, raw, decide_index);
  planner_ =
      std::make_unique<MigrationPlanner>(std::move(raw), config_.host.cost, decide_index);
}

Cluster::~Cluster() = default;

int Cluster::AddFunction(const FunctionSpec& spec, uint32_t max_concurrency) {
  MutexLock lock(&mu_);
  const int cluster_fn = static_cast<int>(functions_.size());
  const uint64_t boot_commit =
      FaasRuntime::BootCommitment(config_.host, spec, max_concurrency);
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const size_t replicas_wanted = config_.replicas_per_function == 0
                                     ? hosts_.size()
                                     : config_.replicas_per_function;
  const std::vector<size_t> placed =
      scheduler_->PlaceFunction(boot_commit, plug_unit, replicas_wanted);

  std::vector<Replica> replicas;
  replicas.reserve(placed.size());
  DepImageId img = kNoDepImage;
  for (const size_t h : placed) {
    replicas.push_back(Replica{h, hosts_[h]->AddFunction(spec, max_concurrency)});
    if (img == kNoDepImage) {
      img = hosts_[h]->dep_image(replicas.back().local_fn);
    }
  }
  functions_.push_back(std::move(replicas));
  fn_plug_unit_.push_back(plug_unit);
  fn_dep_image_.push_back(img);
  // Register the replica set with the candidate indexes before any
  // routing decision for this function can arrive.
  host_index_->RegisterFunction(cluster_fn, placed);
  return cluster_fn;
}

void Cluster::DrainHost(size_t h) {
  // One lock scope for the whole drain decision: the old code read
  // draining() and called Drain() outside mu_, so two racing DrainHost
  // calls could both see !draining() and run the migration sweep twice.
  // Holding mu_ end-to-end makes the drain idempotent — check, migrate,
  // drain are one atomic step (lock order Cluster::mu_ → host runtime,
  // per src/base/mutex.h).
  MutexLock lock(&mu_);
  if (hosts_[h]->draining()) {
    return;  // Already draining: nothing to migrate, nothing to re-drain.
  }
  if (config_.migration == MigrationMode::kMigrateOnDrain) {
    MigrateOff(h);
  }
  hosts_[h]->Drain();
}

size_t Cluster::MigratePressured() {
  if (config_.migration != MigrationMode::kMigrateOnDrain) {
    return 0;
  }
  const int victim = planner_->MostPressuredHost(config_.pressure_migrate_min_pending);
  if (victim < 0) {
    return 0;
  }
  MutexLock lock(&mu_);
  return MigrateOff(static_cast<size_t>(victim));
}

size_t Cluster::MigrateOff(size_t src) {
  size_t started = 0;
  for (size_t fn = 0; fn < functions_.size(); ++fn) {
    const std::vector<Replica>& reps = functions_[fn];
    int src_idx = -1;
    for (size_t i = 0; i < reps.size(); ++i) {
      if (reps[i].host == src) {
        // Placement gives a function at most one replica per host
        // (PlaceFunction draws distinct hosts), so the first match IS the
        // source replica.  The old scan silently kept the LAST match —
        // correct only by that same uniqueness, and unchecked.
        assert(src_idx < 0 && "one replica per host per function");
        src_idx = static_cast<int>(i);
      }
    }
    if (src_idx < 0) {
      continue;
    }
    // Source half: capture + evict the warm state.  The donor's committed
    // book starts shrinking NOW through its reclaim driver, concurrently
    // with the transfer — exactly like pre-copy with the VM still up.
    const ReplicaMigrationState state =
        hosts_[src]->EvictReplica(reps[static_cast<size_t>(src_idx)].local_fn);
    if (state.warm_instances == 0) {
      continue;
    }
    // Walk the planner's ranking until a destination actually adopts: a
    // well-scored host can still be concurrency-saturated, and only what
    // it will REALLY take gets sized, priced and shipped — dropped
    // instances never inflate the transfer time or the wire bytes.
    // Destinations holding the function's dependency image warm rank
    // first: the move then skips deps_bytes on the wire entirely.
    const std::vector<size_t> ranked = planner_->RankDestinations(
        src, reps, fn_plug_unit_[fn], state.warm_instances);
    // Whether the dep cache is in play for this function at all (a
    // cache-on cluster running a non-sharing policy never registers an
    // image and migrates at full price).
    const bool dep_active = dep_cache_ != nullptr &&
                            fn_dep_image_[fn] != kNoDepImage && state.deps_bytes > 0;
    // Snapshot freshness gate: the recording reproduces recorded_bytes of
    // the captured state; once the un-recorded tail outgrows the store's
    // staleness threshold (the same stale_tail_fraction that governs
    // re-recording) the recording is a poor proxy for the live state and
    // the move falls back to a full transfer.
    const uint64_t snap_tail = state.state_bytes - state.recorded_bytes;
    const bool snap_fresh =
        snapshot_store_ != nullptr && state.recorded_bytes > 0 &&
        static_cast<double>(snap_tail) <=
            snapshot_store_->config().stale_tail_fraction *
                static_cast<double>(state.recorded_bytes);
    size_t adopted = 0;
    for (const size_t dst_idx : ranked) {
      const Replica& dst = reps[dst_idx];
      const size_t planned =
          hosts_[dst.host]->AdoptableReplicas(dst.local_fn, state.warm_instances);
      if (planned == 0) {
        continue;
      }
      // Dep-cache hit: the destination already holds the identical image,
      // so only the anonymous state crosses the wire — priced as a fixed
      // attach cost instead of shipping up to hundreds of MiB of deps.
      const bool dep_hit = dep_active && dep_cache_->Populated(dst.host, fn_dep_image_[fn]);
      // Snapshot hit: the destination can re-create the recorded portion
      // of the anonymous state from the cluster store, so only the dirty
      // delta beyond the recording crosses the wire — priced as a fixed
      // restore setup plus a bulk prefetch at snapshot speed.
      const bool snap_hit =
          snap_fresh && hosts_[dst.host]->Snapshot(dst.local_fn).snapshot_restorable;
      // Sizes the transfer for `n` of the captured instances, applying
      // the dep/snapshot discounts the chosen destination earns.
      const auto sized = [&](size_t n) {
        ReplicaMigrationState s = state;
        s.warm_instances = n;
        s.state_bytes = state.state_bytes * n / state.warm_instances;
        s.recorded_bytes = 0;
        if (dep_hit) {
          s.deps_bytes = 0;
        }
        if (snap_hit) {
          s.recorded_bytes = std::min(state.recorded_bytes * n / state.warm_instances,
                                      s.state_bytes);
          s.state_bytes -= s.recorded_bytes;  // Only the delta ships.
        }
        return s;
      };
      ReplicaMigrationState subset = sized(planned);
      StateTransferCost cost = planner_->TransferCost(subset, dep_hit, snap_hit);
      const TimeNs done_at = events_->now() + cost.total();
      adopted = hosts_[dst.host]->AdoptReplica(dst.local_fn, subset, done_at);
      if (adopted == 0) {
        continue;
      }
      // AdoptableReplicas CONTRACT (host_control.h): same books, no
      // intervening event — the adoption admits exactly what the query
      // quoted, so the priced transfer IS the shipped transfer.
      assert(adopted == planned && "AdoptReplica diverged from its AdoptableReplicas quote");
      if (adopted != planned) {
        // Never expected (asserted above); keep the release-build record
        // honest anyway by re-pricing the wire for what actually moved.
        // available_at stays at the quoted done_at — conservative: the
        // instances turn warm no earlier than promised.
        subset = sized(adopted);
        cost = planner_->TransferCost(subset, dep_hit, snap_hit);
      }
      if (dep_hit) {
        dep_cache_->RecordWireHit(state.deps_bytes);
      } else if (dep_active && dep_cache_->Resident(dst.host, fn_dep_image_[fn])) {
        // The transfer ships the image; the destination holds the bytes
        // only once it lands — the landing event materializes them into
        // the destination VM's page cache (real host frames) and records
        // the population, so neither a concurrent migration nor a peer
        // cold start can hit bytes still on the wire.
        const size_t dst_host = dst.host;
        const int dst_fn = dst.local_fn;
        events_->ScheduleAt(done_at, [this, dst_host, dst_fn] {
          hosts_[dst_host]->MaterializeImage(dst_fn);
        });
      }
      if (snap_hit) {
        // The recorded portion skipped the wire; the adopted instances
        // bulk-restore it from the store on arrival (AdoptReplica path).
        snapshot_store_->RecordMigrationHit(subset.recorded_bytes, adopted);
      }
      MigrationRecord rec;
      rec.cluster_fn = static_cast<int>(fn);
      rec.src_host = src;
      rec.dst_host = dst.host;
      rec.captured = state.warm_instances;
      rec.adopted = adopted;
      rec.bytes_sent = cost.bytes_sent;
      rec.downtime = cost.downtime;
      rec.started_at = events_->now();
      rec.done_at = done_at;
      migrations_.push_back(rec);
      ++in_flight_migrations_;
      events_->ScheduleAt(done_at, [this] {
        MutexLock handler_lock(&mu_);
        --in_flight_migrations_;
      });
      ++started;
      break;
    }
    migrated_instances_ += adopted;
    migration_reaped_instances_ += state.warm_instances - adopted;
  }
  return started;
}

void Cluster::SubmitTrace(const std::vector<Invocation>& trace) {
  MutexLock lock(&mu_);
  for (const Invocation& inv : trace) {
    const int cluster_fn = inv.function;
    assert(cluster_fn >= 0 && static_cast<size_t>(cluster_fn) < functions_.size());
    events_->ScheduleAt(inv.at, [this, cluster_fn] { Dispatch(cluster_fn); });
  }
}

void Cluster::Dispatch(int cluster_fn) {
  MutexLock lock(&mu_);
  if (functions_[static_cast<size_t>(cluster_fn)].empty()) {
    ++unplaced_;  // No host could ever fit this function's VM.
    return;
  }
  const Replica& r =
      scheduler_->Route(cluster_fn, functions_[static_cast<size_t>(cluster_fn)]);
  ++routed_[r.host];
  // FNV-1a over (function, host) pairs: any divergence in any decision
  // changes the digest.
  routing_hash_ ^= static_cast<uint64_t>(cluster_fn) * 131 + r.host + 1;
  routing_hash_ *= 0x100000001b3ULL;
  hosts_[r.host]->agent(r.local_fn).Submit();
}

Cluster::DepIoTotals Cluster::DepIo() const {
  DepIoTotals t;
  for (const auto& h : hosts_) {
    for (size_t fn = 0; fn < h->function_count(); ++fn) {
      const int32_t file = h->agent(static_cast<int>(fn)).deps_file();
      const GuestKernel& guest =
          static_cast<const FaasRuntime&>(*h).guest(static_cast<int>(fn));
      const PageCache& pc = guest.page_cache();
      t.disk_read_bytes += pc.disk_read_bytes(file);
      t.remote_read_bytes += pc.remote_read_bytes(file);
      t.adopted_bytes += pc.adopted_bytes(file);
    }
  }
  return t;
}

StepSeries Cluster::FleetCommittedSeries() const {
  std::vector<const StepSeries*> parts;
  parts.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    parts.push_back(&h->host().committed_series());
  }
  return SumSeries(parts);
}

FleetSummary Cluster::Summarize(TimeNs horizon) const {
  FleetSummary s;
  s.hosts = hosts_.size();
  std::vector<const LatencyRecorder*> recorders;
  for (const auto& h : hosts_) {
    for (size_t fn = 0; fn < h->function_count(); ++fn) {
      const Agent& agent = h->agent(static_cast<int>(fn));
      recorders.push_back(&agent.latencies());
      s.completed_requests += agent.requests().size();
      s.cold_starts += agent.cold_starts().size();
      s.evictions += agent.total_evictions();
    }
    s.pending_scaleups_total += h->total_pending_scaleups();
    s.unplug_failures += h->total_unplug_failures();
  }
  {
    MutexLock lock(&mu_);
    s.unplaced_invocations = unplaced_;
    s.migrations = migrations_.size();
    s.migrated_instances = migrated_instances_;
  }
  const LatencyRecorder fleet = MergeLatencies(recorders);
  if (!fleet.empty()) {
    s.latency_p50 = fleet.Percentile(50);
    s.latency_p99 = fleet.Percentile(99);
    s.latency_mean = fleet.Mean();
  }
  const StepSeries committed = FleetCommittedSeries();
  s.committed_peak = static_cast<uint64_t>(committed.Max());
  s.committed_gib_seconds =
      committed.IntegralSec(0, horizon) / static_cast<double>(GiB(1));
  return s;
}

}  // namespace squeezy
