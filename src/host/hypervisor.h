// Hypervisor (VMM) model: VM registry, VM-exit cost charging, EPT
// population via nested page faults, and madvise-based release.
//
// The real system uses Cloud Hypervisor v38 on KVM; here the hypervisor is
// a cost- and accounting-model.  Guest components call in on the events a
// real VMM would see (first-touch faults, virtio kicks, unplug acks).
#ifndef SQUEEZY_HOST_HYPERVISOR_H_
#define SQUEEZY_HOST_HYPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/host/host_memory.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"
#include "src/sim/time.h"

namespace squeezy {

using VmId = int32_t;

struct VmStats {
  std::string name;
  uint32_t vcpus = 0;
  uint64_t nested_faults = 0;
  uint64_t exits = 0;
  uint64_t populated_bytes = 0;
  DurationNs exit_time = 0;
};

class Hypervisor {
 public:
  // `cpu` (optional, not owned) records host-side thread busy time under
  // the thread name "vmm/<vm-name>".
  Hypervisor(HostMemory* host, const CostModel* cost, CpuAccountant* cpu = nullptr);

  VmId RegisterVm(const std::string& name, uint32_t vcpus);

  // First guest touch of host-unpopulated memory: `extents` exits back
  // `bytes` of guest memory (the guest fault path coalesces touches into
  // host-THP granules).  Returns the fault-side latency charged to the
  // guest vCPU.
  DurationNs NestedFaultPopulate(VmId vm, uint64_t extents, uint64_t bytes, TimeNs now);

  // Host acknowledgement of one unplugged 128 MiB block: VM exit +
  // madvise(MADV_DONTNEED) of the populated span.
  DurationNs AckUnplugBlock(VmId vm, uint64_t populated_bytes, TimeNs now);

  // Balloon inflation report of `pages` guest pages (one exit per batch is
  // charged by the balloon device; this handles release accounting).
  DurationNs BalloonRelease(VmId vm, uint64_t pages, TimeNs now);

  // Host release of an arbitrary populated span in one madvise call
  // (dropping an evicted shared dependency image): VM exit + MADV_DONTNEED.
  DurationNs MadviseRelease(VmId vm, uint64_t populated_bytes, TimeNs now);

  // VM teardown: releases all populated memory (1:1 model scale-down).
  void ReleaseAllPopulated(VmId vm, TimeNs now);

  const VmStats& stats(VmId vm) const { return vms_[static_cast<size_t>(vm)]; }
  HostMemory* host() { return host_; }
  const CostModel& cost() const { return *cost_; }

 private:
  void ChargeHostThread(VmId vm, TimeNs now, DurationNs busy);

  HostMemory* host_;
  const CostModel* cost_;
  CpuAccountant* cpu_;
  std::vector<VmStats> vms_;
};

}  // namespace squeezy

#endif  // SQUEEZY_HOST_HYPERVISOR_H_
