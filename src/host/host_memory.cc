#include "src/host/host_memory.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

HostMemory::HostMemory(uint64_t capacity_bytes) : capacity_(capacity_bytes) {
  assert(capacity_bytes > 0);
}

bool HostMemory::TryReserve(uint64_t bytes, TimeNs now) {
  if (committed_ + bytes > capacity_) {
    return false;
  }
  committed_ += bytes;
  committed_series_.Push(now, static_cast<double>(committed_));
  if (commit_observer_) {
    commit_observer_();
  }
  return true;
}

void HostMemory::ReleaseReservation(uint64_t bytes, TimeNs now) {
  assert(committed_ >= bytes);
  committed_ -= bytes;
  committed_series_.Push(now, static_cast<double>(committed_));
  if (commit_observer_) {
    commit_observer_();
  }
}

void HostMemory::Populate(uint64_t bytes, TimeNs now) {
  populated_ += bytes;
  populated_peak_ = std::max(populated_peak_, populated_);
  populated_series_.Push(now, static_cast<double>(populated_));
}

void HostMemory::Unpopulate(uint64_t bytes, TimeNs now) {
  assert(populated_ >= bytes);
  populated_ -= bytes;
  populated_series_.Push(now, static_cast<double>(populated_));
}

}  // namespace squeezy
