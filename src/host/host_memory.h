// Host physical memory accounting.
//
// Two books are kept, matching how a FaaS provider reasons about memory:
//   * committed: worst-case reservations (a plugged partition may be fully
//     touched, so admission control works on commitments);
//   * populated: bytes actually backed by host frames (EPT-mapped), grown
//     by nested faults and shrunk by madvise(MADV_DONTNEED) on unplug or
//     balloon reports.
#ifndef SQUEEZY_HOST_HOST_MEMORY_H_
#define SQUEEZY_HOST_HOST_MEMORY_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/metrics/time_series.h"
#include "src/sim/time.h"

namespace squeezy {

class HostMemory {
 public:
  explicit HostMemory(uint64_t capacity_bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t committed() const { return committed_; }
  uint64_t populated() const { return populated_; }
  uint64_t available() const { return capacity_ - committed_; }
  uint64_t populated_peak() const { return populated_peak_; }

  // Reserves `bytes` of commitment if they fit; false otherwise.
  bool TryReserve(uint64_t bytes, TimeNs now);
  // Releases commitment (unplug completed / VM shut down).
  void ReleaseReservation(uint64_t bytes, TimeNs now);

  // Fired synchronously after every successful TryReserve and every
  // ReleaseReservation — the committed book's ONLY two mutation points —
  // so an incremental consumer (the cluster HostIndex) tracks committed
  // by delta instead of polling.
  void set_commit_observer(std::function<void()> observer) {
    commit_observer_ = std::move(observer);
  }

  void Populate(uint64_t bytes, TimeNs now);
  void Unpopulate(uint64_t bytes, TimeNs now);

  const StepSeries& committed_series() const { return committed_series_; }
  const StepSeries& populated_series() const { return populated_series_; }

 private:
  uint64_t capacity_;
  uint64_t committed_ = 0;
  uint64_t populated_ = 0;
  uint64_t populated_peak_ = 0;
  StepSeries committed_series_;
  StepSeries populated_series_;
  std::function<void()> commit_observer_;
};

}  // namespace squeezy

#endif  // SQUEEZY_HOST_HOST_MEMORY_H_
