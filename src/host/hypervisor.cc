#include "src/host/hypervisor.h"

#include <cassert>

namespace squeezy {

Hypervisor::Hypervisor(HostMemory* host, const CostModel* cost, CpuAccountant* cpu)
    : host_(host), cost_(cost), cpu_(cpu) {
  assert(host_ != nullptr && cost_ != nullptr);
}

VmId Hypervisor::RegisterVm(const std::string& name, uint32_t vcpus) {
  VmStats s;
  s.name = name;
  s.vcpus = vcpus;
  vms_.push_back(std::move(s));
  return static_cast<VmId>(vms_.size()) - 1;
}

void Hypervisor::ChargeHostThread(VmId vm, TimeNs now, DurationNs busy) {
  if (cpu_ != nullptr) {
    cpu_->AddBusy("vmm/" + vms_[static_cast<size_t>(vm)].name, now, busy);
  }
}

DurationNs Hypervisor::NestedFaultPopulate(VmId vm, uint64_t extents, uint64_t bytes,
                                           TimeNs now) {
  VmStats& s = vms_[static_cast<size_t>(vm)];
  const DurationNs latency = cost_->nested_fault_exit * static_cast<int64_t>(extents);
  s.nested_faults += extents;
  s.exits += extents;
  s.exit_time += latency;
  s.populated_bytes += bytes;
  host_->Populate(bytes, now);
  ChargeHostThread(vm, now, latency);
  return latency;
}

DurationNs Hypervisor::AckUnplugBlock(VmId vm, uint64_t populated_bytes, TimeNs now) {
  VmStats& s = vms_[static_cast<size_t>(vm)];
  const DurationNs latency = cost_->block_unplug_exit;
  s.exits += 1;
  s.exit_time += latency;
  assert(s.populated_bytes >= populated_bytes);
  s.populated_bytes -= populated_bytes;
  host_->Unpopulate(populated_bytes, now);
  ChargeHostThread(vm, now, latency);
  return latency;
}

DurationNs Hypervisor::BalloonRelease(VmId vm, uint64_t pages, TimeNs now) {
  VmStats& s = vms_[static_cast<size_t>(vm)];
  const uint64_t bytes = PagesToBytes(pages);
  const DurationNs latency = cost_->balloon_exit_page * static_cast<int64_t>(pages);
  s.exits += pages / std::max<uint64_t>(1, cost_->balloon_batch_pages);
  s.exit_time += latency;
  assert(s.populated_bytes >= bytes);
  s.populated_bytes -= bytes;
  host_->Unpopulate(bytes, now);
  ChargeHostThread(vm, now, latency);
  return latency;
}

DurationNs Hypervisor::MadviseRelease(VmId vm, uint64_t populated_bytes, TimeNs now) {
  VmStats& s = vms_[static_cast<size_t>(vm)];
  const DurationNs latency = cost_->vm_exit;
  s.exits += 1;
  s.exit_time += latency;
  assert(s.populated_bytes >= populated_bytes);
  s.populated_bytes -= populated_bytes;
  host_->Unpopulate(populated_bytes, now);
  ChargeHostThread(vm, now, latency);
  return latency;
}

void Hypervisor::ReleaseAllPopulated(VmId vm, TimeNs now) {
  VmStats& s = vms_[static_cast<size_t>(vm)];
  host_->Unpopulate(s.populated_bytes, now);
  s.populated_bytes = 0;
}

}  // namespace squeezy
