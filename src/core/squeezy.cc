#include "src/core/squeezy.h"

#include <cassert>

namespace squeezy {

const char* PartitionStateName(PartitionState s) {
  switch (s) {
    case PartitionState::kUnplugged:
      return "Unplugged";
    case PartitionState::kPopulating:
      return "Populating";
    case PartitionState::kReady:
      return "Ready";
    case PartitionState::kAssigned:
      return "Assigned";
  }
  return "?";
}

SqueezyManager::SqueezyManager(GuestKernel* guest, const SqueezyConfig& config)
    : guest_(guest), config_(config) {
  assert(guest_ != nullptr);
  assert(config_.nr_partitions > 0);
  assert(guest_->config().hotplug_region == config_.region_bytes() &&
         "hotplug region must exactly hold the Squeezy layout");

  // Zones are created up front at boot (paper §4.1): N private zone
  // structs plus the shared one.  They link to empty partitions; no
  // physical memory is reserved.
  shared_first_block_ = guest_->hotplug_first_block();
  shared_zone_ = guest_->CreateZone(ZoneType::kSqueezyShared, "SqueezyShared");

  const uint32_t pblocks = static_cast<uint32_t>(config_.partition_blocks());
  BlockIndex next = shared_first_block_ + static_cast<uint32_t>(config_.shared_blocks());
  partitions_.reserve(config_.nr_partitions);
  for (uint32_t i = 0; i < config_.nr_partitions; ++i) {
    Partition part;
    part.id = static_cast<int32_t>(i);
    part.zone = guest_->CreateZone(ZoneType::kSqueezyPrivate,
                                   "SqueezyPart" + std::to_string(i));
    part.first_block = next;
    part.nr_blocks = pblocks;
    next += pblocks;
    partitions_.push_back(part);
  }

  guest_->SetVirtioHooks(this);
  guest_->SetLifecycleObserver(this);
  // File mappings (container rootfs, runtimes) are served from the shared
  // partition (paper §3: "distinguishing shared and private allocations").
  guest_->SetFileZone(shared_zone_);

  // The shared partition is populated at boot.
  if (config_.shared_blocks() > 0) {
    const PlugOutcome boot = guest_->PlugMemory(config_.shared_blocks() * kMemoryBlockBytes, 0);
    assert(boot.complete);
  }
}

int32_t SqueezyManager::PartitionOfBlock(BlockIndex b) const {
  const BlockIndex priv_start =
      shared_first_block_ + static_cast<BlockIndex>(config_.shared_blocks());
  if (b < priv_start) {
    return -1;
  }
  const uint32_t idx = (b - priv_start) / static_cast<uint32_t>(config_.partition_blocks());
  return idx < partitions_.size() ? static_cast<int32_t>(idx) : -1;
}

uint32_t SqueezyManager::ready_partitions() const {
  uint32_t n = 0;
  for (const Partition& p : partitions_) {
    if (p.state == PartitionState::kReady) {
      ++n;
    }
  }
  return n;
}

uint32_t SqueezyManager::populated_partitions() const {
  uint32_t n = 0;
  for (const Partition& p : partitions_) {
    if (p.populated_blocks > 0) {
      ++n;
    }
  }
  return n;
}

// --- Syscall interface ------------------------------------------------------------

void SqueezyManager::Assign(Partition& part, Pid pid) {
  assert(part.state == PartitionState::kReady && part.users == 0);
  part.state = PartitionState::kAssigned;
  part.users = 1;
  Process& proc = guest_->process(pid);
  proc.set_partition_id(part.id);
  proc.set_anon_zone(part.zone);
  ++stats_.assignments;
}

std::optional<int32_t> SqueezyManager::SqueezyEnable(Pid pid) {
  // Scan the partition list for a populated, free partition (the paper
  // scans the zonelist under per-partition locks).
  for (Partition& part : partitions_) {
    if (part.state == PartitionState::kReady) {
      Assign(part, pid);
      return part.id;
    }
  }
  return std::nullopt;
}

void SqueezyManager::SqueezyEnableAsync(Pid pid, std::function<void(int32_t)> on_assigned) {
  if (const std::optional<int32_t> id = SqueezyEnable(pid)) {
    on_assigned(*id);
    return;
  }
  // Park until a plug populates a partition (paper §4.1 waitqueue).  The
  // sandbox setup (cgroups, network) proceeds concurrently in the agent.
  waitqueue_.push_back(Waiter{pid, std::move(on_assigned)});
  ++stats_.waitqueue_parks;
}

bool SqueezyManager::ServeWaitqueue(Partition& part) {
  if (waitqueue_.empty()) {
    return false;
  }
  Waiter waiter = std::move(waitqueue_.front());
  waitqueue_.pop_front();
  Assign(part, waiter.pid);
  waiter.on_assigned(part.id);
  return true;
}

// --- VirtioMemHooks -----------------------------------------------------------------

std::vector<BlockIndex> SqueezyManager::SelectPlugBlocks(uint64_t max_blocks) {
  std::vector<BlockIndex> out;
  // Shared partition first (boot-time plug).
  for (BlockIndex b = shared_first_block_;
       b < shared_first_block_ + config_.shared_blocks() && out.size() < max_blocks; ++b) {
    if (guest_->memmap().block_state(b) == BlockState::kAbsent) {
      out.push_back(b);
    }
  }
  // Then whole unplugged/partially-plugged private partitions, in order.
  for (Partition& part : partitions_) {
    if (out.size() >= max_blocks) {
      break;
    }
    if (part.state != PartitionState::kUnplugged && part.state != PartitionState::kPopulating) {
      continue;
    }
    for (BlockIndex b = part.first_block;
         b < part.first_block + part.nr_blocks && out.size() < max_blocks; ++b) {
      if (guest_->memmap().block_state(b) == BlockState::kAbsent) {
        out.push_back(b);
      }
    }
  }
  return out;
}

Zone* SqueezyManager::OnlineTargetZone(BlockIndex b) {
  const int32_t id = PartitionOfBlock(b);
  return id < 0 ? shared_zone_ : partitions_[static_cast<size_t>(id)].zone;
}

void SqueezyManager::OnBlockOnline(BlockIndex b) {
  const int32_t id = PartitionOfBlock(b);
  if (id < 0) {
    return;  // Shared partition: nothing to track.
  }
  Partition& part = partitions_[static_cast<size_t>(id)];
  assert(part.state == PartitionState::kUnplugged || part.state == PartitionState::kPopulating);
  ++part.populated_blocks;
  if (part.populated_blocks < part.nr_blocks) {
    part.state = PartitionState::kPopulating;
    return;
  }
  // Fully populated: hand it to the longest waiter or mark it ready.
  part.state = PartitionState::kReady;
  ServeWaitqueue(part);
}

std::vector<BlockIndex> SqueezyManager::SelectUnplugBlocks(uint64_t max_blocks) {
  // Only blocks of fully-drained partitions are candidates; they are empty
  // by construction, so unplug involves zero migrations.
  std::vector<BlockIndex> out;
  for (Partition& part : partitions_) {
    if (out.size() >= max_blocks) {
      break;
    }
    if (part.state != PartitionState::kReady || part.populated_blocks == 0) {
      continue;
    }
    assert(part.zone->allocated_pages() == 0 && "ready partition must be empty");
    for (BlockIndex b = part.first_block;
         b < part.first_block + part.nr_blocks && out.size() < max_blocks; ++b) {
      if (guest_->memmap().block_state(b) == BlockState::kOnline) {
        out.push_back(b);
      }
    }
  }
  return out;
}

OfflineOptions SqueezyManager::OfflineOptionsFor(BlockIndex b) {
  (void)b;
  // Squeezy's two unplug-path optimizations (paper §4.1): no migrations
  // are ever needed (enforced, not hoped for), and zeroing of offlining
  // pages is skipped — the host re-zeroes on next allocation anyway.
  return OfflineOptions{/*skip_zeroing=*/true, /*allow_migration=*/false};
}

Zone* SqueezyManager::BlockZone(BlockIndex b) {
  return OnlineTargetZone(b);
}

Zone* SqueezyManager::MigrationTarget(BlockIndex b) {
  (void)b;
  return nullptr;  // Migration is forbidden on the Squeezy unplug path.
}

void SqueezyManager::OnBlockUnplugged(BlockIndex b) {
  const int32_t id = PartitionOfBlock(b);
  assert(id >= 0 && "the shared partition is never unplugged");
  Partition& part = partitions_[static_cast<size_t>(id)];
  assert(part.populated_blocks > 0);
  --part.populated_blocks;
  if (part.populated_blocks == 0) {
    part.state = PartitionState::kUnplugged;
    ++stats_.partitions_reclaimed;
  }
}

// --- ProcessLifecycleObserver ----------------------------------------------------------

void SqueezyManager::OnFork(Process& parent, Process& child) {
  (void)child;
  if (parent.partition_id() == kNoPartition) {
    return;
  }
  Partition& part = partitions_[static_cast<size_t>(parent.partition_id())];
  assert(part.state == PartitionState::kAssigned && part.users > 0);
  ++part.users;
}

void SqueezyManager::OnExit(Process& proc) {
  if (proc.partition_id() == kNoPartition) {
    return;
  }
  Partition& part = partitions_[static_cast<size_t>(proc.partition_id())];
  assert(part.state == PartitionState::kAssigned && part.users > 0);
  --part.users;
  if (part.users > 0) {
    return;
  }
  // Last user gone: the partition is empty again (its anonymous memory was
  // freed on exit) and becomes free — i.e. assignable or reclaimable.
  assert(part.zone->allocated_pages() == 0 && "drained partition must hold no pages");
  part.state = PartitionState::kReady;
  if (ServeWaitqueue(part)) {
    ++stats_.reuse_without_replug;
  }
}

}  // namespace squeezy
