// Squeezy: partition-aware guest memory management (the paper's core
// contribution, §3-§4).
//
// The hot-pluggable region of an N:1 FaaS VM is statically laid out as
//
//   [ shared partition | private partition 0 | ... | private partition N-1 ]
//
// Each private partition is its own zone sized to the function's memory
// limit; the shared partition backs file (page-cache) memory for every
// instance.  Partitions hold no physical memory until plugged; a plug
// event populates exactly the partitions the manager selects, and unplug
// instantly offlines partitions whose user refcount dropped to zero —
// with migration *forbidden* (asserted) and zeroing skipped.
//
// The syscall-like interface (SqueezyEnable) assigns a populated, free
// partition to a process; requests that arrive before a plug completes
// park on a waitqueue (paper §4.1).
#ifndef SQUEEZY_CORE_SQUEEZY_H_
#define SQUEEZY_CORE_SQUEEZY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/guest/guest_kernel.h"
#include "src/hotplug/virtio_mem.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {

struct SqueezyConfig {
  // Rated size of each private partition = the function's user-defined
  // memory limit, rounded up to whole 128 MiB blocks.
  uint64_t partition_bytes = MiB(768);
  // Concurrency factor N: max instances concurrently deployable.
  uint32_t nr_partitions = 8;
  // Shared partition (runtime/language dependencies), plugged at boot.
  uint64_t shared_bytes = MiB(512);

  uint64_t partition_blocks() const { return BytesToBlocks(partition_bytes); }
  uint64_t shared_blocks() const { return BytesToBlocks(shared_bytes); }
  uint64_t region_bytes() const {
    return (shared_blocks() + nr_partitions * partition_blocks()) * kMemoryBlockBytes;
  }
};

enum class PartitionState : uint8_t {
  kUnplugged,   // No blocks online.
  kPopulating,  // Some blocks online (plug in flight).
  kReady,       // Fully populated, no users: assignable AND reclaimable.
  kAssigned,    // Backing one or more live processes.
};

const char* PartitionStateName(PartitionState s);

struct Partition {
  int32_t id = -1;
  PartitionState state = PartitionState::kUnplugged;
  Zone* zone = nullptr;
  BlockIndex first_block = 0;
  uint32_t nr_blocks = 0;
  uint32_t populated_blocks = 0;
  uint32_t users = 0;  // partition_users refcount (processes attached).
};

struct SqueezyStats {
  uint64_t assignments = 0;
  uint64_t waitqueue_parks = 0;    // Requests that had to wait for a plug.
  uint64_t partitions_reclaimed = 0;
  uint64_t reuse_without_replug = 0;  // Drained partition handed straight to a waiter.
};

class SqueezyManager : public VirtioMemHooks, public ProcessLifecycleObserver {
 public:
  // Installs itself as the guest's virtio-mem policy and lifecycle
  // observer, lays out the partitions and plugs the shared partition.
  // Requires guest->config().hotplug_region == config.region_bytes().
  SqueezyManager(GuestKernel* guest, const SqueezyConfig& config);

  // --- Syscall interface (paper §4.1) ---------------------------------------
  // Assigns a populated free partition to `pid` if one exists.
  std::optional<int32_t> SqueezyEnable(Pid pid);
  // Like SqueezyEnable, but parks the request on the waitqueue when no
  // partition is ready; `on_assigned` fires (synchronously, from the plug
  // path) once one is.
  void SqueezyEnableAsync(Pid pid, std::function<void(int32_t)> on_assigned);

  // --- Introspection -----------------------------------------------------------
  const SqueezyConfig& config() const { return config_; }
  const Partition& partition(int32_t id) const { return partitions_[static_cast<size_t>(id)]; }
  size_t partition_count() const { return partitions_.size(); }
  Zone* shared_zone() { return shared_zone_; }
  // Partitions currently kReady (assignable / reclaimable).
  uint32_t ready_partitions() const;
  // Partitions currently holding memory (populated_blocks > 0).
  uint32_t populated_partitions() const;
  size_t waitqueue_depth() const { return waitqueue_.size(); }
  const SqueezyStats& stats() const { return stats_; }

  // Partition owning `b`, or -1 for the shared partition / out of range.
  int32_t PartitionOfBlock(BlockIndex b) const;

  // --- VirtioMemHooks ------------------------------------------------------------
  std::vector<BlockIndex> SelectPlugBlocks(uint64_t max_blocks) override;
  Zone* OnlineTargetZone(BlockIndex b) override;
  void OnBlockOnline(BlockIndex b) override;
  std::vector<BlockIndex> SelectUnplugBlocks(uint64_t max_blocks) override;
  OfflineOptions OfflineOptionsFor(BlockIndex b) override;
  Zone* BlockZone(BlockIndex b) override;
  Zone* MigrationTarget(BlockIndex b) override;
  void OnBlockUnplugged(BlockIndex b) override;

  // --- ProcessLifecycleObserver -----------------------------------------------------
  void OnFork(Process& parent, Process& child) override;
  void OnExit(Process& proc) override;

 private:
  struct Waiter {
    Pid pid;
    std::function<void(int32_t)> on_assigned;
  };

  void Assign(Partition& part, Pid pid);
  // Hands a ready partition to the longest-waiting parked request, if any.
  // Returns true if a waiter consumed it.
  bool ServeWaitqueue(Partition& part);

  GuestKernel* guest_;
  SqueezyConfig config_;
  Zone* shared_zone_ = nullptr;
  BlockIndex shared_first_block_ = 0;
  std::vector<Partition> partitions_;
  std::deque<Waiter> waitqueue_;
  SqueezyStats stats_;
};

}  // namespace squeezy

#endif  // SQUEEZY_CORE_SQUEEZY_H_
