// Fleet-wide metric aggregation (cluster experiments).
//
// Pure combinators over the per-host primitives (LatencyRecorder,
// StepSeries); the cluster layer feeds them with one entry per host so
// benches report fleet p50/p99, a fleet committed-memory series, and
// starvation totals instead of K disconnected host views.
//
// Concurrency contract (machine-checked where there is state to check —
// see src/base/thread_annotations.h): MergeLatencies and SumSeries hold
// NO shared state; each call is a pure function of its inputs, so they
// are safe from any thread PROVIDED the per-host series they read are
// quiescent.  Under the sharded-queue plan that means: call them only at
// an epoch barrier, after every host shard has drained its events for
// the epoch.  They must never grow hidden caches or globals — that would
// silently break this contract (and the determinism lint's ban on
// ambient time/randomness keeps the usual suspects out).
#ifndef SQUEEZY_METRICS_FLEET_H_
#define SQUEEZY_METRICS_FLEET_H_

#include <cstdint>
#include <vector>

#include "src/metrics/latency_recorder.h"
#include "src/metrics/time_series.h"
#include "src/sim/time.h"

namespace squeezy {

// Fleet-level rollup of one cluster run.  Populated by Cluster::Summarize;
// kept here (plain numbers, no faas dependencies) so reporting code can be
// shared by benches and tests.
struct FleetSummary {
  size_t hosts = 0;
  uint64_t completed_requests = 0;  // Requests that finished execution.
  DurationNs latency_p50 = 0;
  DurationNs latency_p99 = 0;
  DurationNs latency_mean = 0;
  uint64_t committed_peak = 0;       // Peak of the summed committed series.
  double committed_gib_seconds = 0;  // Fleet committed integral over the run.
  uint64_t pending_scaleups_total = 0;  // Scale-ups that ever waited for memory.
  uint64_t unplaced_invocations = 0;    // Rejected: function fit on no host.
  uint64_t unplug_failures = 0;
  uint64_t cold_starts = 0;
  uint64_t evictions = 0;
  uint64_t migrations = 0;           // Replica state transfers started.
  uint64_t migrated_instances = 0;   // Warm instances adopted by destinations.
};

// All samples of `parts` in one recorder (fleet percentiles).
LatencyRecorder MergeLatencies(const std::vector<const LatencyRecorder*>& parts);

// Pointwise sum of step series: the result steps at every timestamp where
// any input steps (e.g. per-host committed memory -> fleet committed).
StepSeries SumSeries(const std::vector<const StepSeries*>& parts);

}  // namespace squeezy

#endif  // SQUEEZY_METRICS_FLEET_H_
