// CSV emission for benchmark results (one file per figure series).
#ifndef SQUEEZY_METRICS_CSV_H_
#define SQUEEZY_METRICS_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace squeezy {

// Writes rows to a CSV file.  Creates parent directory "bench_results/"
// lazily.  Cells containing commas/quotes are quoted.
class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.  If the file cannot
  // be opened (e.g. read-only filesystem) the writer degrades to a no-op
  // so benchmarks still run.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void AddRow(const std::vector<std::string>& cells);
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

 private:
  void WriteRow(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  bool ok_ = false;
};

}  // namespace squeezy

#endif  // SQUEEZY_METRICS_CSV_H_
