// Aligned ASCII table printing for benchmark output.
#ifndef SQUEEZY_METRICS_TABLE_H_
#define SQUEEZY_METRICS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace squeezy {

// Collects rows of string cells and prints them with per-column
// alignment.  Numeric-looking cells are right-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Inserts a horizontal rule before the next row.
  void AddRule();

  void Print(std::ostream& os) const;

  // Formatting helpers for cells.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

 private:
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace squeezy

#endif  // SQUEEZY_METRICS_TABLE_H_
