#include "src/metrics/latency_recorder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace squeezy {

void LatencyRecorder::Record(DurationNs sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

void LatencyRecorder::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

DurationNs LatencyRecorder::Min() const {
  assert(!samples_.empty());
  EnsureSorted();
  return sorted_.front();
}

DurationNs LatencyRecorder::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return sorted_.back();
}

DurationNs LatencyRecorder::Mean() const {
  assert(!samples_.empty());
  return sum_ / static_cast<DurationNs>(samples_.size());
}

DurationNs LatencyRecorder::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p > 0.0 && p <= 100.0);
  EnsureSorted();
  const size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[std::min(sorted_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

void LatencyRecorder::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0;
}

double Geomean(const std::vector<double>& values) {
  assert(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    assert(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace squeezy
