#include "src/metrics/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace squeezy {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'x' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddRule() { rows_.push_back(Row{true, {}}); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto print_rule = [&] {
    for (const size_t w : widths) {
      os << '+' << std::string(w + 2, '-');
    }
    os << "+\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << "| ";
      if (LooksNumeric(cell)) {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.rule) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace squeezy
