#include "src/metrics/time_series.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

void StepSeries::Push(TimeNs t, double value) {
  assert(points_.empty() || t >= points_.back().t);
  if (!points_.empty() && points_.back().t == t) {
    points_.back().value = value;  // Same-instant update supersedes.
    return;
  }
  points_.push_back({t, value});
}

size_t StepSeries::FloorIndex(TimeNs t) const {
  // First point with t' > t, then step back.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimeNs lhs, const Point& rhs) { return lhs < rhs.t; });
  if (it == points_.begin()) {
    return static_cast<size_t>(-1);
  }
  return static_cast<size_t>(it - points_.begin()) - 1;
}

double StepSeries::At(TimeNs t) const {
  const size_t idx = FloorIndex(t);
  return idx == static_cast<size_t>(-1) ? 0.0 : points_[idx].value;
}

double StepSeries::Max() const {
  double best = 0.0;
  for (const Point& p : points_) {
    best = std::max(best, p.value);
  }
  return best;
}

double StepSeries::IntegralSec(TimeNs from, TimeNs to) const {
  assert(to >= from);
  if (points_.empty() || to == from) {
    return 0.0;
  }
  double total = 0.0;
  TimeNs cursor = from;
  double value = At(from);
  size_t idx = FloorIndex(from);
  // Walk the change points inside (from, to].
  for (size_t i = (idx == static_cast<size_t>(-1)) ? 0 : idx + 1; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (p.t >= to) {
      break;
    }
    if (p.t > cursor) {
      total += value * ToSec(p.t - cursor);
      cursor = p.t;
    }
    value = p.value;
  }
  total += value * ToSec(to - cursor);
  return total;
}

std::vector<double> StepSeries::Resample(TimeNs from, TimeNs to, DurationNs step) const {
  assert(step > 0);
  std::vector<double> out;
  for (TimeNs t = from; t <= to; t += step) {
    out.push_back(At(t));
  }
  return out;
}

}  // namespace squeezy
