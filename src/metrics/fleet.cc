#include "src/metrics/fleet.h"

#include <algorithm>

namespace squeezy {

LatencyRecorder MergeLatencies(const std::vector<const LatencyRecorder*>& parts) {
  LatencyRecorder merged;
  for (const LatencyRecorder* part : parts) {
    for (const DurationNs sample : part->samples()) {
      merged.Record(sample);
    }
  }
  return merged;
}

StepSeries SumSeries(const std::vector<const StepSeries*>& parts) {
  // Every input timestamp is a step point of the sum.
  std::vector<TimeNs> stamps;
  for (const StepSeries* part : parts) {
    for (const StepSeries::Point& p : part->points()) {
      stamps.push_back(p.t);
    }
  }
  std::sort(stamps.begin(), stamps.end());
  stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());

  StepSeries sum;
  for (const TimeNs t : stamps) {
    double v = 0.0;
    for (const StepSeries* part : parts) {
      v += part->At(t);
    }
    sum.Push(t, v);
  }
  return sum;
}

}  // namespace squeezy
