#include "src/metrics/fleet.h"

#include <algorithm>

namespace squeezy {

LatencyRecorder MergeLatencies(const std::vector<const LatencyRecorder*>& parts) {
  LatencyRecorder merged;
  size_t total = 0;
  for (const LatencyRecorder* part : parts) {
    total += part->count();
  }
  merged.Reserve(total);
  for (const LatencyRecorder* part : parts) {
    for (const DurationNs sample : part->samples()) {
      merged.Record(sample);
    }
  }
  return merged;
}

StepSeries SumSeries(const std::vector<const StepSeries*>& parts) {
  // Every input timestamp is a step point of the sum.  One k-way merge
  // pass: a monotone cursor per part carries its running value forward,
  // so each input point is visited exactly once.  (The old
  // sort-all-stamps + At(t) version binary-searched every part at every
  // stamp — O(total_stamps x parts x log) — which went quadratic-ish on
  // 64-host fleets.)  Per output stamp the part values are added in part
  // order, exactly like the At(t) loop, so the result is bit-identical.
  StepSeries sum;
  const size_t k = parts.size();
  std::vector<size_t> next(k, 0);      // Cursor into each part's points.
  std::vector<double> value(k, 0.0);   // Running value (0 before first point).
  for (;;) {
    // Earliest unconsumed timestamp across the parts.
    TimeNs t = 0;
    bool have = false;
    for (size_t p = 0; p < k; ++p) {
      const std::vector<StepSeries::Point>& pts = parts[p]->points();
      if (next[p] < pts.size() && (!have || pts[next[p]].t < t)) {
        t = pts[next[p]].t;
        have = true;
      }
    }
    if (!have) {
      break;
    }
    for (size_t p = 0; p < k; ++p) {
      const std::vector<StepSeries::Point>& pts = parts[p]->points();
      while (next[p] < pts.size() && pts[next[p]].t == t) {
        value[p] = pts[next[p]].value;
        ++next[p];
      }
    }
    double v = 0.0;
    for (size_t p = 0; p < k; ++p) {
      v += value[p];
    }
    sum.Push(t, v);
  }
  return sum;
}

}  // namespace squeezy
