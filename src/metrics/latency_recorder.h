// Latency sample collection with percentile queries.
#ifndef SQUEEZY_METRICS_LATENCY_RECORDER_H_
#define SQUEEZY_METRICS_LATENCY_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace squeezy {

// Collects duration samples; percentiles use nearest-rank on a lazily
// sorted copy so recording stays O(1).
class LatencyRecorder {
 public:
  void Record(DurationNs sample);
  // Pre-sizes the sample store (fleet merges know the total up front).
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  DurationNs Min() const;
  DurationNs Max() const;
  DurationNs Mean() const;
  // p in (0, 100]; nearest-rank percentile.  P(50), P(99), ...
  DurationNs Percentile(double p) const;
  DurationNs Sum() const { return sum_; }

  const std::vector<DurationNs>& samples() const { return samples_; }
  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<DurationNs> samples_;
  mutable std::vector<DurationNs> sorted_;
  mutable bool sorted_valid_ = false;
  DurationNs sum_ = 0;
};

// Geometric mean of a set of ratios/values (> 0).
double Geomean(const std::vector<double>& values);

}  // namespace squeezy

#endif  // SQUEEZY_METRICS_LATENCY_RECORDER_H_
