// Piecewise-constant time series (memory usage, instance counts).
#ifndef SQUEEZY_METRICS_TIME_SERIES_H_
#define SQUEEZY_METRICS_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace squeezy {

// A step function of time: the value set at time t holds until the next
// sample.  Samples must be pushed in non-decreasing time order.
class StepSeries {
 public:
  void Push(TimeNs t, double value);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Value at time t (0 before the first sample).
  double At(TimeNs t) const;

  // Max value over the whole series.
  double Max() const;

  // Integral of value over [from, to] in value*seconds (e.g. GiB*s when the
  // series holds GiB).
  double IntegralSec(TimeNs from, TimeNs to) const;

  // Resample at fixed `step` intervals over [from, to] inclusive.
  std::vector<double> Resample(TimeNs from, TimeNs to, DurationNs step) const;

  struct Point {
    TimeNs t;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  // Index of the last point with t <= query (or npos).
  size_t FloorIndex(TimeNs t) const;

  std::vector<Point> points_;
};

}  // namespace squeezy

#endif  // SQUEEZY_METRICS_TIME_SERIES_H_
