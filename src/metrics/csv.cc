#include "src/metrics/csv.h"

#include <filesystem>

namespace squeezy {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path);
  ok_ = out_.good();
  if (ok_) {
    WriteRow(header);
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    const std::string& c = cells[i];
    if (c.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (const char ch : c) {
        if (ch == '"') {
          out_ << "\"\"";
        } else {
          out_ << ch;
        }
      }
      out_ << '"';
    } else {
      out_ << c;
    }
  }
  out_ << '\n';
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  if (ok_) {
    WriteRow(cells);
  }
}

}  // namespace squeezy
