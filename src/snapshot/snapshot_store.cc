#include "src/snapshot/snapshot_store.h"

#include <cassert>

namespace squeezy {

SnapshotId SnapshotStore::Intern(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    return it->second;
  }
  const SnapshotId snap = static_cast<SnapshotId>(slots_.size());
  slots_.emplace_back();
  by_key_.emplace(key, snap);
  ++stats_.functions;
  return snap;
}

bool SnapshotStore::Recorded(SnapshotId snap) const {
  MutexLock lock(&mu_);
  return slot(snap).recorded;
}

SnapshotImage SnapshotStore::Image(SnapshotId snap) const {
  MutexLock lock(&mu_);
  assert(slot(snap).recorded);
  return slot(snap).image;
}

uint64_t SnapshotStore::RecordedHeapBytes(SnapshotId snap) const {
  MutexLock lock(&mu_);
  const Slot& s = slot(snap);
  return s.recorded ? s.image.heap_bytes : 0;
}

void SnapshotStore::RecordMigrationHit(uint64_t wire_saved_bytes, uint64_t restores) {
  MutexLock lock(&mu_);
  ++stats_.migration_hits;
  stats_.migration_restores += restores;
  stats_.migration_wire_saved_bytes += wire_saved_bytes;
}

bool SnapshotStore::Record(SnapshotId snap, const SnapshotImage& image) {
  MutexLock lock(&mu_);
  Slot& s = slots_[static_cast<size_t>(snap)];
  if (s.recorded) {
    return false;  // Record-once: a valid recording is never overwritten.
  }
  s.image = image;
  s.recorded = true;
  if (s.ever_recorded) {
    ++stats_.re_recordings;
  } else {
    s.ever_recorded = true;
    ++stats_.recordings;
  }
  return true;
}

void SnapshotStore::InvalidateLocked(SnapshotId snap) {
  Slot& s = slots_[static_cast<size_t>(snap)];
  if (!s.recorded) {
    return;
  }
  s.recorded = false;
  ++stats_.invalidations;
}

void SnapshotStore::Invalidate(SnapshotId snap) {
  MutexLock lock(&mu_);
  InvalidateLocked(snap);
}

void SnapshotStore::NoteRestore(SnapshotId snap, uint64_t prefetch_bytes,
                                uint64_t deps_bytes_zeroed) {
  MutexLock lock(&mu_);
  ++stats_.restores;
  stats_.prefetch_bytes += prefetch_bytes;
  stats_.deps_bytes_zeroed += deps_bytes_zeroed;
  stats_.restored_heap_bytes += slot(snap).image.heap_bytes;
}

bool SnapshotStore::NoteTail(SnapshotId snap, uint64_t tail_bytes) {
  MutexLock lock(&mu_);
  stats_.tail_bytes += tail_bytes;
  const Slot& s = slot(snap);
  if (!s.recorded) {
    return false;  // Already invalidated by a sibling's tail.
  }
  const double threshold =
      config_.stale_tail_fraction * static_cast<double>(s.image.heap_bytes);
  if (static_cast<double>(tail_bytes) <= threshold) {
    return false;
  }
  // The workload shifted past the recording: drop it; the next fully
  // warmed idle re-records the grown working set.
  InvalidateLocked(snap);
  return true;
}

std::vector<std::string> SnapshotStore::RecordedKeys() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  // by_key_ is ordered: key-sorted regardless of Intern() order.
  for (const auto& [key, snap] : by_key_) {
    if (slots_[static_cast<size_t>(snap)].recorded) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace squeezy
