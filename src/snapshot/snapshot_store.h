// Cluster-wide snapshot store: the concrete SnapshotRegistry.
//
// One slot per function image, keyed by spec name + sizes; the first host
// whose VM reaches a fully warmed idle records the touched-page set, every
// later cold start anywhere in the fleet restores from it (REAP snapshots
// are content-addressed files on shared storage — residency is global, not
// per host, unlike the dependency cache's per-host charging).
//
// Staleness policy lives here: a restored instance whose post-restore
// demand-fault tail exceeds `stale_tail_fraction` of the recorded heap
// invalidates the recording (the workload shifted — e.g. a memhog phase
// grew the resident set) and the next fully warmed idle re-records.
#ifndef SQUEEZY_SNAPSHOT_SNAPSHOT_STORE_H_
#define SQUEEZY_SNAPSHOT_SNAPSHOT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/faas/snapshot_registry.h"

namespace squeezy {

struct SnapshotStoreConfig {
  // Post-restore demand-fault tail (fraction of the recorded heap) above
  // which the recording is declared stale and re-recorded.
  double stale_tail_fraction = 0.25;
};

// Fleet-level observability (bench JSON: fig11/fig12 snapshot metrics).
struct SnapshotStats {
  uint64_t functions = 0;          // Interned snapshot slots.
  uint64_t recordings = 0;         // First-time recordings taken.
  uint64_t re_recordings = 0;      // Recordings taken after an invalidation.
  uint64_t invalidations = 0;      // Stale recordings dropped.
  uint64_t restores = 0;           // Cold starts served from a snapshot.
  uint64_t prefetch_bytes = 0;     // Bytes bulk-prefetched across restores.
  uint64_t deps_bytes_zeroed = 0;  // Deps prefetch skipped via dep-cache residency.
  uint64_t tail_bytes = 0;         // Post-restore demand-fault bytes.
  uint64_t restored_heap_bytes = 0;  // Recorded heap summed over restores.
  // Snapshot-hit migration transfers (fig12 drain metrics): a migration
  // to a restore-capable destination ships only the delta beyond the
  // recording; the recorded portion is bulk-restored from the store.
  uint64_t migration_hits = 0;              // Transfers that hit a recording.
  uint64_t migration_restores = 0;          // Instances bulk-restored on arrival.
  uint64_t migration_wire_saved_bytes = 0;  // Recorded bytes that skipped the wire.

  // Demand-fault tail as a percentage of the restored heap (0 when no
  // restore happened): the staleness signal fig12 reports.
  double tail_fault_rate_pct() const {
    return restored_heap_bytes == 0
               ? 0.0
               : 100.0 * static_cast<double>(tail_bytes) /
                     static_cast<double>(restored_heap_bytes);
  }
};

// Lock discipline: the store self-locks (`mu_`) — recordings live on
// shared storage, so every host's runtime reaches into this one object.
// Methods never call out of the class while holding `mu_`; the lock is a
// leaf in the cluster ordering (see src/base/mutex.h).
class SnapshotStore : public SnapshotRegistry {
 public:
  SnapshotStore() = default;
  explicit SnapshotStore(const SnapshotStoreConfig& config) : config_(config) {}

  SnapshotId Intern(const std::string& key) override SQZ_EXCLUDES(mu_);
  bool Recorded(SnapshotId snap) const override SQZ_EXCLUDES(mu_);
  SnapshotImage Image(SnapshotId snap) const override SQZ_EXCLUDES(mu_);
  uint64_t RecordedHeapBytes(SnapshotId snap) const override SQZ_EXCLUDES(mu_);
  bool Record(SnapshotId snap, const SnapshotImage& image) override SQZ_EXCLUDES(mu_);
  void Invalidate(SnapshotId snap) override SQZ_EXCLUDES(mu_);
  void NoteRestore(SnapshotId snap, uint64_t prefetch_bytes,
                   uint64_t deps_bytes_zeroed) override SQZ_EXCLUDES(mu_);
  bool NoteTail(SnapshotId snap, uint64_t tail_bytes) override SQZ_EXCLUDES(mu_);

  // Fleet-side bookkeeping for one snapshot-hit migration transfer
  // (mirrors DepCache::RecordWireHit): `wire_saved_bytes` of recorded
  // state skipped the wire and `restores` adopted instances bulk-restored
  // it from the store at the destination.  Cluster-only — the per-host
  // runtime never prices migrations.
  void RecordMigrationHit(uint64_t wire_saved_bytes, uint64_t restores)
      SQZ_EXCLUDES(mu_);

  SnapshotStats stats() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  const SnapshotStoreConfig& config() const { return config_; }
  // Keys of every currently-valid recording, in key order.  Sim-visible
  // dump path: iteration runs over the ordered key index, never a hash
  // table, so the listing is a pure function of the recorded set
  // (insertion-order invariance locked by tests/determinism_order_test.cc).
  std::vector<std::string> RecordedKeys() const SQZ_EXCLUDES(mu_);

 private:
  struct Slot {
    SnapshotImage image;
    bool recorded = false;       // A valid recording exists right now.
    bool ever_recorded = false;  // Distinguishes re-recordings for stats.
  };

  const Slot& slot(SnapshotId snap) const SQZ_REQUIRES(mu_) {
    return slots_[static_cast<size_t>(snap)];
  }
  // Locked core shared by Invalidate and NoteTail's stale path.
  void InvalidateLocked(SnapshotId snap) SQZ_REQUIRES(mu_);

  const SnapshotStoreConfig config_;  // Set at construction, immutable after.
  mutable Mutex mu_;
  // Ordered key index — same rationale as DepCache::by_key_: key
  // iteration is deterministic by construction, not by audit.
  std::map<std::string, SnapshotId> by_key_ SQZ_GUARDED_BY(mu_);
  std::vector<Slot> slots_ SQZ_GUARDED_BY(mu_);
  SnapshotStats stats_ SQZ_GUARDED_BY(mu_);
};

}  // namespace squeezy

#endif  // SQUEEZY_SNAPSHOT_SNAPSHOT_STORE_H_
