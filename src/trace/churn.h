// Instance churn analysis (paper Fig 2).
//
// Replays an invocation stream against a keep-alive instance pool and
// reports instance creations and evictions per minute — the demand signal
// that motivates sub-second VM memory elasticity.
#ifndef SQUEEZY_TRACE_CHURN_H_
#define SQUEEZY_TRACE_CHURN_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/trace/trace_gen.h"

namespace squeezy {

struct ChurnConfig {
  DurationNs keep_alive = Minutes(5);  // Idle eviction window (paper Fig 2).
  DurationNs exec_time = Sec(1);       // Mean request service time.
};

struct ChurnMinute {
  int64_t minute = 0;
  uint64_t creations = 0;
  uint64_t evictions = 0;
  uint64_t alive = 0;  // Pool size at the end of the minute.
};

// Replays `trace` (sorted by time) with a simple pool: a request grabs an
// idle instance if one exists, otherwise creates one; instances idle
// longer than keep_alive are evicted.
std::vector<ChurnMinute> AnalyzeChurn(const std::vector<Invocation>& trace,
                                      const ChurnConfig& config);

}  // namespace squeezy

#endif  // SQUEEZY_TRACE_CHURN_H_
