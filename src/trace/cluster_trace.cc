#include "src/trace/cluster_trace.h"

#include <cmath>

namespace squeezy {

std::vector<double> ClusterZipfWeights(const ClusterTraceConfig& config) {
  std::vector<double> w(static_cast<size_t>(config.nr_functions));
  double sum = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -config.zipf_s);
    sum += w[i];
  }
  for (double& x : w) {
    x /= sum;
  }
  return w;
}

std::vector<Invocation> GenerateClusterTrace(const ClusterTraceConfig& config,
                                             uint64_t seed) {
  const std::vector<double> weights = ClusterZipfWeights(config);
  const int32_t bursty_count = static_cast<int32_t>(std::ceil(
      config.bursty_fraction * static_cast<double>(config.nr_functions)));

  std::vector<std::vector<Invocation>> streams;
  streams.reserve(weights.size());
  for (int32_t fn = 0; fn < config.nr_functions; ++fn) {
    BurstyTraceConfig bcfg;
    bcfg.duration = config.duration;
    bcfg.function = fn;
    bcfg.base_rate_per_sec =
        config.total_base_rate_per_sec * weights[static_cast<size_t>(fn)];
    if (fn < bursty_count) {
      bcfg.burst_rate_per_sec = bcfg.base_rate_per_sec * config.burst_multiplier;
      bcfg.mean_burst_len = config.mean_burst_len;
      bcfg.mean_gap = config.mean_gap;
    } else {
      // Cold tail: no flash crowds, just the Poisson drizzle.
      bcfg.burst_rate_per_sec = bcfg.base_rate_per_sec;
      bcfg.mean_burst_len = Sec(1);
      bcfg.mean_gap = Minutes(60);
    }
    streams.push_back(GenerateBurstyTrace(bcfg, seed));
    if (config.arrival_quantum > 0) {
      for (Invocation& inv : streams.back()) {
        inv.at -= inv.at % config.arrival_quantum;
      }
    }
  }
  return MergeTraces(std::move(streams));
}

}  // namespace squeezy
