#include "src/trace/memhog.h"

#include <cassert>

namespace squeezy {

Memhog::Memhog(GuestKernel* guest, const MemhogConfig& config) : guest_(guest), config_(config) {
  assert(guest_ != nullptr);
}

bool Memhog::Start(TimeNs now) {
  assert(pid_ == kNoPid);
  pid_ = guest_->CreateProcess();
  if (guest_->TouchAnon(pid_, config_.bytes, now).oom) {
    return false;
  }
  for (uint32_t i = 0; i < config_.warmup_cycles; ++i) {
    if (!Churn(now)) {
      return false;
    }
  }
  return true;
}

bool Memhog::Churn(TimeNs now) {
  assert(pid_ != kNoPid);
  if (!guest_->Alive(pid_)) {
    return false;
  }
  const uint64_t slice = static_cast<uint64_t>(
      static_cast<double>(config_.bytes) * config_.churn_fraction);
  const uint64_t freed = guest_->FreeAnon(pid_, slice);
  return !guest_->TouchAnon(pid_, freed, now).oom;
}

void Memhog::Stop() {
  assert(pid_ != kNoPid);
  if (guest_->Alive(pid_)) {
    guest_->Exit(pid_);
  }
}

bool Memhog::running() const { return pid_ != kNoPid && guest_->Alive(pid_); }

uint64_t Memhog::resident_bytes() const {
  return pid_ == kNoPid ? 0 : guest_->process(pid_).anon_bytes();
}

}  // namespace squeezy
