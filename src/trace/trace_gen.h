// Synthetic invocation trace generation.
//
// The paper drives its FaaS experiments with bursty traces from the Azure
// Functions 2021 collection.  Those traces are not redistributable here,
// so this generator produces seeded synthetic streams with the same
// observable structure: a low Poisson base rate punctuated by heavy
// bursts (flash crowds), which is what exercises scale-up/scale-down.
#ifndef SQUEEZY_TRACE_TRACE_GEN_H_
#define SQUEEZY_TRACE_TRACE_GEN_H_

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace squeezy {

struct Invocation {
  TimeNs at = 0;
  int32_t function = 0;  // Caller-defined function index.
};

struct BurstyTraceConfig {
  DurationNs duration = Minutes(10);
  double base_rate_per_sec = 0.5;   // Poisson arrivals between bursts.
  double burst_rate_per_sec = 12.0; // Arrival rate inside a burst.
  DurationNs mean_burst_len = Sec(20);
  DurationNs mean_gap = Sec(60);    // Mean quiet gap between bursts.
  int32_t function = 0;
};

// --- Seeding scheme ---------------------------------------------------------
// Per-function trace streams are seeded as
//
//     stream_seed = splitmix64(base_seed ^ kGolden * (function + 1))
//
// where base_seed is RuntimeConfig::seed and kGolden is the SplitMix64
// increment (0x9e3779b97f4a7c15).  Each stream owns a private Rng, so a
// function's trace is bit-identical for a given (seed, function) pair no
// matter how many other functions or hosts drew randomness before it was
// generated.  That is what makes cluster traces reproducible: host count
// and generation order cannot perturb any stream.  The legacy shared-Rng
// overload below does NOT have this property (stream i depends on how much
// randomness streams 0..i-1 consumed); new code should pass a seed.
uint64_t TraceStreamSeed(uint64_t base_seed, int32_t function);

// One function's bursty arrival stream, sorted by time, from a private
// Rng(TraceStreamSeed(base_seed, config.function)).
std::vector<Invocation> GenerateBurstyTrace(const BurstyTraceConfig& config,
                                            uint64_t base_seed);

// Legacy shared-Rng variant (single-function experiments; order-dependent
// when one Rng feeds several streams).
std::vector<Invocation> GenerateBurstyTrace(const BurstyTraceConfig& config, Rng& rng);

// Merges per-function streams into one sorted stream.
std::vector<Invocation> MergeTraces(std::vector<std::vector<Invocation>> traces);

}  // namespace squeezy

#endif  // SQUEEZY_TRACE_TRACE_GEN_H_
