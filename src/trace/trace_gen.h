// Synthetic invocation trace generation.
//
// The paper drives its FaaS experiments with bursty traces from the Azure
// Functions 2021 collection.  Those traces are not redistributable here,
// so this generator produces seeded synthetic streams with the same
// observable structure: a low Poisson base rate punctuated by heavy
// bursts (flash crowds), which is what exercises scale-up/scale-down.
#ifndef SQUEEZY_TRACE_TRACE_GEN_H_
#define SQUEEZY_TRACE_TRACE_GEN_H_

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace squeezy {

struct Invocation {
  TimeNs at = 0;
  int32_t function = 0;  // Caller-defined function index.
};

struct BurstyTraceConfig {
  DurationNs duration = Minutes(10);
  double base_rate_per_sec = 0.5;   // Poisson arrivals between bursts.
  double burst_rate_per_sec = 12.0; // Arrival rate inside a burst.
  DurationNs mean_burst_len = Sec(20);
  DurationNs mean_gap = Sec(60);    // Mean quiet gap between bursts.
  int32_t function = 0;
};

// One function's bursty arrival stream, sorted by time.
std::vector<Invocation> GenerateBurstyTrace(const BurstyTraceConfig& config, Rng& rng);

// Merges per-function streams into one sorted stream.
std::vector<Invocation> MergeTraces(std::vector<std::vector<Invocation>> traces);

}  // namespace squeezy

#endif  // SQUEEZY_TRACE_TRACE_GEN_H_
