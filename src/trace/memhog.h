// memhog workload driver (paper §6.1).
//
// memhog repeatedly (de)allocates fixed-size chunks of anonymous memory,
// stressing the allocator and keeping its vCPU busy.  The churn scatters
// its footprint across memory blocks — exactly the fragmentation that
// makes vanilla unplug expensive.
#ifndef SQUEEZY_TRACE_MEMHOG_H_
#define SQUEEZY_TRACE_MEMHOG_H_

#include <cstdint>

#include "src/guest/guest_kernel.h"
#include "src/sim/rng.h"

namespace squeezy {

struct MemhogConfig {
  uint64_t bytes = MiB(512);      // Resident target per instance.
  double churn_fraction = 0.25;   // Fraction re-(de)allocated per cycle.
  uint32_t warmup_cycles = 4;     // Alloc/free cycles to reach steady state.
};

// One memhog instance: a guest process that owns `bytes` of anonymous
// memory and churns part of it to emulate steady-state fragmentation.
class Memhog {
 public:
  Memhog(GuestKernel* guest, const MemhogConfig& config);

  // Spawns the process and reaches the resident target, with churn.
  // Returns false if the guest OOM-killed it.
  bool Start(TimeNs now);
  // One churn cycle: free a random slice, re-touch the same amount.
  bool Churn(TimeNs now);
  // Terminates the process, releasing all memory.
  void Stop();

  Pid pid() const { return pid_; }
  bool running() const;
  uint64_t resident_bytes() const;

 private:
  GuestKernel* guest_;
  MemhogConfig config_;
  Pid pid_ = kNoPid;
};

}  // namespace squeezy

#endif  // SQUEEZY_TRACE_MEMHOG_H_
