#include "src/trace/trace_gen.h"

#include <algorithm>

namespace squeezy {

uint64_t TraceStreamSeed(uint64_t base_seed, int32_t function) {
  // SplitMix64 finalizer over base_seed xor a per-function offset (see the
  // header for why this must not depend on generation order).
  uint64_t z = base_seed ^ (0x9e3779b97f4a7c15ULL *
                            (static_cast<uint64_t>(function) + 1));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<Invocation> GenerateBurstyTrace(const BurstyTraceConfig& config,
                                            uint64_t base_seed) {
  Rng rng(TraceStreamSeed(base_seed, config.function));
  return GenerateBurstyTrace(config, rng);
}

std::vector<Invocation> GenerateBurstyTrace(const BurstyTraceConfig& config, Rng& rng) {
  std::vector<Invocation> out;
  TimeNs t = 0;
  bool in_burst = false;
  TimeNs phase_end = 0;

  // Alternate quiet/burst phases; arrivals are Poisson within each phase.
  while (t < config.duration) {
    if (t >= phase_end) {
      in_burst = !in_burst;
      const DurationNs mean = in_burst ? config.mean_burst_len : config.mean_gap;
      phase_end = t + static_cast<DurationNs>(rng.Exponential(static_cast<double>(mean)));
      continue;
    }
    const double rate = in_burst ? config.burst_rate_per_sec : config.base_rate_per_sec;
    if (rate <= 0.0) {
      t = phase_end;
      continue;
    }
    const DurationNs gap = static_cast<DurationNs>(rng.Exponential(1.0 / rate) * kSecond);
    t += std::max<DurationNs>(gap, 1);
    if (t < config.duration && t < phase_end) {
      out.push_back(Invocation{t, config.function});
    } else if (t >= phase_end) {
      continue;  // Phase flipped; re-evaluate rate.
    }
  }
  return out;
}

std::vector<Invocation> MergeTraces(std::vector<std::vector<Invocation>> traces) {
  std::vector<Invocation> merged;
  size_t total = 0;
  for (const auto& t : traces) {
    total += t.size();
  }
  merged.reserve(total);
  for (auto& t : traces) {
    merged.insert(merged.end(), t.begin(), t.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Invocation& a, const Invocation& b) { return a.at < b.at; });
  return merged;
}

}  // namespace squeezy
