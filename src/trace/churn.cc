#include "src/trace/churn.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace squeezy {

std::vector<ChurnMinute> AnalyzeChurn(const std::vector<Invocation>& trace,
                                      const ChurnConfig& config) {
  if (trace.empty()) {
    return {};
  }
  // Multiset of instances keyed by the time they become idle; an instance
  // whose idle-since exceeds keep_alive is evicted.
  std::multimap<TimeNs, bool> idle_since;  // idle start -> (unused flag)
  uint64_t busy = 0;
  std::multimap<TimeNs, int> busy_until;  // completion time -> count

  std::map<int64_t, ChurnMinute> minutes;
  auto minute_of = [](TimeNs t) { return t / kMinute; };
  auto bump = [&minutes](int64_t m) -> ChurnMinute& {
    ChurnMinute& cm = minutes[m];
    cm.minute = m;
    return cm;
  };

  auto drain_until = [&](TimeNs now) {
    // Retire completed requests into the idle pool.
    while (!busy_until.empty() && busy_until.begin()->first <= now) {
      const TimeNs done = busy_until.begin()->first;
      busy_until.erase(busy_until.begin());
      assert(busy > 0);
      --busy;
      idle_since.insert({done, true});
    }
    // Evict idle instances whose keep-alive expired before `now`.
    while (!idle_since.empty() && idle_since.begin()->first + config.keep_alive <= now) {
      const TimeNs evict_at = idle_since.begin()->first + config.keep_alive;
      idle_since.erase(idle_since.begin());
      bump(minute_of(evict_at)).evictions += 1;
    }
  };

  for (const Invocation& inv : trace) {
    drain_until(inv.at);
    if (!idle_since.empty()) {
      // Reuse the most recently idled instance (LIFO keeps pools small).
      auto it = std::prev(idle_since.end());
      idle_since.erase(it);
    } else {
      bump(minute_of(inv.at)).creations += 1;
    }
    ++busy;
    busy_until.insert({inv.at + config.exec_time, 1});
  }
  // Flush trailing evictions.
  drain_until(trace.back().at + config.keep_alive + config.exec_time + kMinute);

  std::vector<ChurnMinute> out;
  uint64_t alive = 0;
  const int64_t last_minute = minutes.empty() ? 0 : minutes.rbegin()->first;
  for (int64_t m = 0; m <= last_minute; ++m) {
    ChurnMinute cm = minutes.count(m) ? minutes[m] : ChurnMinute{m, 0, 0, 0};
    alive += cm.creations;
    alive -= std::min<uint64_t>(alive, cm.evictions);
    cm.alive = alive;
    out.push_back(cm);
  }
  return out;
}

}  // namespace squeezy
