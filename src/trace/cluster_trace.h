// Multi-function cluster workload generation.
//
// A fleet-level trace in the style of the Azure Functions collection: a
// Zipf-skewed popularity distribution over many functions, where a hot
// subset exhibits flash-crowd churn (bursts far above its base rate) and
// the cold tail drizzles.  This is the workload shape that separates
// placement policies: skew concentrates bursts on a few functions, so a
// scheduler that ignores per-host committed memory keeps routing spikes
// into hosts that are still reclaiming (see src/cluster/).
//
// Determinism: every per-function stream is seeded via
// TraceStreamSeed(seed, function) (see trace_gen.h), so the full cluster
// trace is a pure function of (config, seed) — independent of host count
// or generation order.
#ifndef SQUEEZY_TRACE_CLUSTER_TRACE_H_
#define SQUEEZY_TRACE_CLUSTER_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/trace/trace_gen.h"

namespace squeezy {

struct ClusterTraceConfig {
  DurationNs duration = Minutes(10);
  int32_t nr_functions = 8;
  // Fleet-wide mean arrival rate outside bursts, split across functions by
  // Zipf weight w_i = (i+1)^-zipf_s (function 0 is the most popular).
  double total_base_rate_per_sec = 4.0;
  double zipf_s = 1.0;  // 0 = uniform popularity.
  // The hottest `ceil(bursty_fraction * nr_functions)` functions burst;
  // inside a burst a function's rate is base * burst_multiplier.
  double bursty_fraction = 0.5;
  double burst_multiplier = 25.0;
  DurationNs mean_burst_len = Sec(20);
  DurationNs mean_gap = Sec(90);
  // Round every arrival instant DOWN to a multiple of this quantum
  // (0 = off, the default — existing traces are bit-identical).  Fleet
  // sweeps on the sharded kernel use a coarse quantum (e.g. 1 ms) so
  // arrivals land on few distinct instants: each instant is one epoch
  // barrier, and fewer barriers means fatter parallel phases between
  // them.  Results stay a pure function of (config, seed) — both queue
  // impls consume the same quantized trace.
  DurationNs arrival_quantum = 0;
};

// Zipf popularity weights for `config` (sums to 1, size nr_functions).
std::vector<double> ClusterZipfWeights(const ClusterTraceConfig& config);

// The merged, time-sorted fleet trace.  Invocation::function is the
// cluster-level function index in [0, nr_functions).
std::vector<Invocation> GenerateClusterTrace(const ClusterTraceConfig& config,
                                             uint64_t seed);

}  // namespace squeezy

#endif  // SQUEEZY_TRACE_CLUSTER_TRACE_H_
