#include "src/policy/driver_factory.h"

#include "src/policy/harvest_driver.h"
#include "src/policy/squeezy_driver.h"
#include "src/policy/static_driver.h"
#include "src/policy/virtio_mem_driver.h"

namespace squeezy {

std::unique_ptr<ReclaimDriver> MakeReclaimDriver(const RuntimeConfig& config) {
  switch (config.policy) {
    case ReclaimPolicy::kStatic:
      return std::make_unique<StaticDriver>(config);
    case ReclaimPolicy::kVirtioMem:
      return std::make_unique<VirtioMemDriver>(config);
    case ReclaimPolicy::kSqueezy:
      return std::make_unique<SqueezyDriver>(config);
    case ReclaimPolicy::kHarvestOpts:
      return std::make_unique<HarvestDriver>(config);
  }
  return std::make_unique<SqueezyDriver>(config);
}

}  // namespace squeezy
