// kSqueezy: partition-aware plug/unplug (this paper).  Shares the dynamic
// acquire path with vanilla virtio-mem; differs in device sizing (private
// partitions + shared boot partition managed by SqueezyManager) and in
// unplug semantics — an "incomplete" unplug means the drained partition
// was re-assigned through the waitqueue (reuse-without-replug), so there
// is never spare memory left behind.
#ifndef SQUEEZY_POLICY_SQUEEZY_DRIVER_H_
#define SQUEEZY_POLICY_SQUEEZY_DRIVER_H_

#include "src/policy/virtio_mem_driver.h"

namespace squeezy {

class SqueezyDriver : public VirtioMemDriver {
 public:
  using VirtioMemDriver::VirtioMemDriver;

  ReclaimPolicy policy() const override { return ReclaimPolicy::kSqueezy; }

  uint64_t HotplugRegionBytes(const DriverSizing& s) const override;
  bool UsesSqueezy() const override { return true; }
  // The shared boot partition is exactly a read-only dependency image:
  // cluster-wide sharing is the natural extension of shared_bytes.
  bool SharedDepsSupported() const override { return true; }

  // Partition-confined instances make the recording trustworthy: an
  // instance can never grow past its partition, so committing the
  // block-rounded recorded heap (instead of the full partition) is safe
  // up to the staleness threshold the registry re-records at.  The other
  // drivers' flat movable region gives no such confinement.
  bool SnapshotRestoreSupported() const override { return true; }
  uint64_t RestoredCommitment(const DriverSizing& s,
                              uint64_t working_set_bytes) const override;

  // The SqueezyManager plugs the shared partition in its constructor;
  // nothing further to do at boot.
  void OnVmBoot(int fn, uint64_t hotplug_region, uint64_t deps_region) override;
  // Reuse-without-replug: nothing left over to bank as spare.
  void OnUnplugIncomplete(int fn, uint64_t leftover) override;
};

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_SQUEEZY_DRIVER_H_
