// The single place where a ReclaimPolicy enum value becomes behavior.
#ifndef SQUEEZY_POLICY_DRIVER_FACTORY_H_
#define SQUEEZY_POLICY_DRIVER_FACTORY_H_

#include <memory>

#include "src/faas/runtime_config.h"
#include "src/policy/reclaim_driver.h"

namespace squeezy {

// Resolves config.policy to a concrete driver.  The returned driver is
// unbound (sizing hooks usable immediately); FaasRuntime binds it before
// any lifecycle hook fires.
std::unique_ptr<ReclaimDriver> MakeReclaimDriver(const RuntimeConfig& config);

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_DRIVER_FACTORY_H_
