// kVirtioMem: vanilla virtio-mem unplug on one flat movable region.
// Scale-downs unplug immediately; unplugs migrate + zero pages and can
// time out, leaving spare plugged memory behind.  Also the base class for
// SqueezyDriver and HarvestDriver, which share its dynamic acquire path.
#ifndef SQUEEZY_POLICY_VIRTIO_MEM_DRIVER_H_
#define SQUEEZY_POLICY_VIRTIO_MEM_DRIVER_H_

#include "src/policy/reclaim_driver.h"

namespace squeezy {

class VirtioMemDriver : public ReclaimDriver {
 public:
  using ReclaimDriver::ReclaimDriver;

  ReclaimPolicy policy() const override { return ReclaimPolicy::kVirtioMem; }

  uint64_t HotplugRegionBytes(const DriverSizing& s) const override;
  uint64_t BootCommitment(const DriverSizing& s) const override;

  void OnVmBoot(int fn, uint64_t hotplug_region, uint64_t deps_region) override;
  void Acquire(int fn, std::function<void(DurationNs)> ready) override;
  void Release(int fn) override;

 protected:
  // The shared dynamic scale-up path (kVirtioMem / kSqueezy / kHarvestOpts
  // after its buffer miss): recycle a queued unplug, consume spare, plug
  // the remainder, or park on the pending FIFO.  `starve_room_multiplier`
  // scales the MakeRoom target when starving (HarvestVM over-reclaims 2x).
  void AcquireDynamic(int fn, std::function<void(DurationNs)> ready,
                      uint64_t starve_room_multiplier);
};

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_VIRTIO_MEM_DRIVER_H_
