#include "src/policy/static_driver.h"

#include <cassert>

#include "src/guest/guest_kernel.h"

namespace squeezy {

uint64_t StaticDriver::HotplugRegionBytes(const DriverSizing& s) const {
  return static_cast<uint64_t>(s.max_concurrency) * s.plug_unit + s.deps_region;
}

uint64_t StaticDriver::BootCommitment(const DriverSizing& s) const {
  // Over-provisioned: the whole hotplug region is committed up front.
  return config_.vm_base_memory + HotplugRegionBytes(s);
}

void StaticDriver::OnVmBoot(int fn, uint64_t hotplug_region, uint64_t /*deps_region*/) {
  // Everything plugged up front, and the host backing is warm (a
  // long-running VM) unless the bench wants to watch the footprint grow.
  const PlugOutcome all = host_->guest(fn).PlugMemory(hotplug_region, 0);
  assert(all.complete);
  (void)all;
  if (config_.warm_static_backing) {
    host_->guest(fn).WarmAllHostBacking(0);
  }
}

void StaticDriver::Acquire(int /*fn*/, std::function<void(DurationNs)> ready) {
  // Memory is always there; no VMM work on the cold path.
  ready(0);
}

void StaticDriver::Release(int /*fn*/) {
  // Nothing to reclaim; memory stays with the VM.
}

uint64_t StaticDriver::ProactiveReclaim(uint64_t /*bytes*/) { return 0; }

void StaticDriver::OnDrain() {
  // Routes stop arriving (the scheduler skips draining hosts) but the
  // boot-time commitment is not reclaimable without killing the VM.
}

}  // namespace squeezy
