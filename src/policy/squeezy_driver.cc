#include "src/policy/squeezy_driver.h"

#include "src/core/squeezy.h"

namespace squeezy {

uint64_t SqueezyDriver::HotplugRegionBytes(const DriverSizing& s) const {
  SqueezyConfig scfg;
  scfg.partition_bytes = s.plug_unit;
  scfg.nr_partitions = s.max_concurrency;
  scfg.shared_bytes = s.deps_region;
  return scfg.region_bytes();
}

void SqueezyDriver::OnVmBoot(int /*fn*/, uint64_t /*hotplug_region*/,
                             uint64_t /*deps_region*/) {}

void SqueezyDriver::OnUnplugIncomplete(int /*fn*/, uint64_t /*leftover*/) {}

}  // namespace squeezy
