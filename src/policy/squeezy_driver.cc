#include "src/policy/squeezy_driver.h"

#include <algorithm>

#include "src/core/squeezy.h"
#include "src/sim/cost_model.h"

namespace squeezy {

uint64_t SqueezyDriver::RestoredCommitment(const DriverSizing& s,
                                           uint64_t working_set_bytes) const {
  // Block-rounded recorded heap, never more than the full partition.  The
  // rounding slack (< 1 block) doubles as tail headroom below the
  // staleness threshold that forces a re-record.
  const uint64_t rounded =
      std::max<uint64_t>(kMemoryBlockBytes,
                         BytesToBlocks(working_set_bytes) * kMemoryBlockBytes);
  return std::min(s.plug_unit, rounded);
}

uint64_t SqueezyDriver::HotplugRegionBytes(const DriverSizing& s) const {
  SqueezyConfig scfg;
  scfg.partition_bytes = s.plug_unit;
  scfg.nr_partitions = s.max_concurrency;
  scfg.shared_bytes = s.deps_region;
  return scfg.region_bytes();
}

void SqueezyDriver::OnVmBoot(int /*fn*/, uint64_t /*hotplug_region*/,
                             uint64_t /*deps_region*/) {}

void SqueezyDriver::OnUnplugIncomplete(int /*fn*/, uint64_t /*leftover*/) {}

}  // namespace squeezy
