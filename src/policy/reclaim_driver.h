// Pluggable reclamation-policy drivers (the policy/mechanism split).
//
// The paper's central claim is that reclamation speed is a *policy*
// choice; this layer makes the policy a first-class, swappable component.
// FaasRuntime owns the mechanism — host commitment books, the per-VM
// virtio-mem worker queue, pending scale-up FIFO, idle-instance reaping —
// and exposes it to drivers through the narrow ReclaimHost interface.
// A ReclaimDriver decides WHEN those mechanisms fire:
//   * admission sizing  — how big the VM's hot-pluggable region is and how
//     much host memory its boot commits (HotplugRegionBytes /
//     BootCommitment);
//   * scale-up          — Acquire: where an instance's memory comes from
//     (pre-plugged, recycled, freshly plugged, or waited for);
//   * scale-down        — Release: whether evicted memory is unplugged,
//     buffered as slack, or kept;
//   * pressure tick     — periodic background work (serving starved
//     scale-ups, proactive reclamation);
//   * control plane     — ProactiveReclaim / OnDrain, driven by the
//     cluster scheduler through HostControl (src/faas/host_control.h).
//
// Concrete drivers: StaticDriver, VirtioMemDriver, SqueezyDriver,
// HarvestDriver — resolved from RuntimeConfig::policy by MakeReclaimDriver
// (driver_factory.h).
#ifndef SQUEEZY_POLICY_RECLAIM_DRIVER_H_
#define SQUEEZY_POLICY_RECLAIM_DRIVER_H_

#include <cstdint>
#include <functional>

#include "src/faas/runtime_config.h"
#include "src/policy/policy.h"
#include "src/sim/time.h"

namespace squeezy {

class EventQueue;
class GuestKernel;
class HostMemory;

// Block-rounded per-VM quantities a driver sizes admission against.
struct DriverSizing {
  uint64_t plug_unit = 0;    // Per-instance memory limit, block-rounded.
  uint64_t deps_region = 0;  // Dependency page-cache bytes, block-rounded.
  uint32_t max_concurrency = 0;  // N of the N:1 VM.
};

// Mechanism primitives FaasRuntime lends to its driver.  Everything here
// is policy-free: the driver sequences these verbs, the runtime executes
// them (and keeps the books).
class ReclaimHost {
 public:
  virtual ~ReclaimHost() = default;

  // --- Ambient state ---------------------------------------------------------------
  virtual EventQueue& events() = 0;
  virtual HostMemory& memory() = 0;
  virtual GuestKernel& guest(int fn) = 0;
  virtual size_t vm_count() const = 0;
  virtual bool draining() const = 0;

  // --- Per-VM mechanism state (virtio-mem worker queue + leftovers) ---------------
  virtual uint64_t plug_unit(int fn) const = 0;
  // Memory left plugged (and committed) by timed-out/partial unplugs.
  virtual uint64_t spare_plugged(int fn) const = 0;
  // Consumes up to `max_bytes` of spare; returns the bytes taken.
  virtual uint64_t TakeSpare(int fn, uint64_t max_bytes) = 0;
  virtual void AddSpare(int fn, uint64_t bytes) = 0;
  // True if an unplug for fn is queued behind the worker but not started
  // (its memory is still plugged and committed, so a scale-up can absorb
  // it directly).
  virtual bool HasCancellableUnplug(int fn) const = 0;
  // Absorbs one queued unplug if possible; true on success.
  virtual bool TryCancelQueuedUnplug(int fn) = 0;

  // --- Snapshot-restored commitment (cluster snapshot registry) --------------------
  // Bytes a FRESH plug-grant of fn must reserve on the host book: the full
  // plug unit normally, or the driver's RestoredCommitment() when a
  // recorded snapshot proves the instance touches less (the guest plug
  // itself stays one full unit — Squeezy partitions populate whole — the
  // runtime tracks the shortfall per VM and unwinds it as unplugs
  // complete).  Equal to plug_unit(fn) whenever no registry is attached.
  virtual uint64_t FreshReserveBytes(int fn) const = 0;
  // Records that a fresh plug of one full unit was backed by a reservation
  // `shortfall` bytes smaller (snapshot-restored commitment).
  virtual void NoteUnreservedPlug(int fn, uint64_t shortfall) = 0;

  // --- Mechanism verbs -------------------------------------------------------------
  // Plugs `bytes` into fn's VM and grants the waiting scale-up at plug
  // completion.  Pre-condition: the host reservation succeeded.
  virtual void PlugAndGrant(int fn, uint64_t bytes,
                            std::function<void(DurationNs)> ready) = 0;
  // Unplugs one plug unit from fn's VM (async; releases commitment at
  // completion and then retries pending scale-ups).
  virtual void StartUnplug(int fn) = 0;
  // Parks a memory-starved scale-up on the pending FIFO.
  virtual void EnqueuePending(int fn, std::function<void(DurationNs)> ready) = 0;
  // Arms the periodic pressure tick if it is not already armed.
  virtual void ArmPressureTick() = 0;
  // Serves queued scale-ups that now fit (FIFO with skip).
  virtual void TryServePending() = 0;
  virtual bool PendingEmpty() const = 0;
  // Sum of plug units over the pending FIFO (bytes the fleet is starved of).
  virtual uint64_t PendingPlugBytes() const = 0;
  // Evicts globally-oldest idle instances expected to free >= `needed`
  // bytes; returns the bytes expected from the evictions triggered.
  virtual uint64_t MakeRoom(uint64_t needed) = 0;
  // Evicts EVERY idle instance, regardless of idle age (drain path).
  // Returns the number of instances evicted.
  virtual size_t ReapAllIdle() = 0;
};

class ReclaimDriver {
 public:
  explicit ReclaimDriver(const RuntimeConfig& config) : config_(config) {}
  virtual ~ReclaimDriver() = default;

  ReclaimDriver(const ReclaimDriver&) = delete;
  ReclaimDriver& operator=(const ReclaimDriver&) = delete;

  virtual ReclaimPolicy policy() const = 0;
  const char* name() const { return ReclaimPolicyName(policy()); }

  // Attaches the driver to its runtime.  Sizing hooks work unbound (the
  // cluster admission-checks BootCommitment before any VM exists); all
  // lifecycle hooks require a bound host.
  void Bind(ReclaimHost* host) { host_ = host; }
  bool bound() const { return host_ != nullptr; }

  // --- Admission sizing ------------------------------------------------------------
  // Bytes of hot-pluggable guest region the VM's device must cover.
  virtual uint64_t HotplugRegionBytes(const DriverSizing& s) const = 0;
  // Host memory committed when the VM boots (base RAM + boot-time plug).
  virtual uint64_t BootCommitment(const DriverSizing& s) const = 0;
  // Whether the runtime should attach a SqueezyManager to each VM.
  virtual bool UsesSqueezy() const { return false; }

  // --- Shared dependency images (cluster dep cache) ---------------------------------
  // Whether the driver's deps region is a read-only payload shareable
  // across VMs and hosts.  When true AND a DepImageRegistry is attached
  // to the runtime, DriverSizing::deps_region is charged once per host
  // per image instead of once per VM.  Static/VirtioMem keep their
  // per-VM behavior (and stay bit-identical) by leaving this false.
  virtual bool SharedDepsSupported() const { return false; }
  // The registry pinned fn's image on this host: `already_resident` says
  // whether this VM joined an existing residency (its deps charge was
  // skipped) or established it (the charge is the caller's).  Default:
  // nothing to do.
  virtual void OnImageResident(int fn, uint64_t image_bytes, bool already_resident);
  // The registry released fn's image residency (host drain / zero refs
  // under pressure): return its commitment to the host book.  Default:
  // immediate release, then retry starved scale-ups — the shared region
  // is read-only and clean, so there is nothing to migrate or zero.
  virtual void OnImageEvict(int fn, uint64_t image_bytes);

  // --- REAP-style snapshot restore (cluster snapshot registry) ----------------------
  // Whether the driver can exploit a recorded working set: restored cold
  // starts bulk-prefetch the recording AND commit only RestoredCommitment
  // per instance.  Drivers that leave this false never record, never
  // restore, and stay bit-identical with a registry attached.
  virtual bool SnapshotRestoreSupported() const { return false; }
  // Host commitment one RESTORED instance needs.  The recording proves
  // the instance touches `working_set_bytes` of heap rather than its full
  // memory limit; a driver that can promise sub-unit commitment returns
  // the block-rounded working set, everyone else the full plug unit —
  // this is what the cluster's bin-packing admission sizes against.
  virtual uint64_t RestoredCommitment(const DriverSizing& s,
                                      uint64_t working_set_bytes) const;

  // --- Per-VM lifecycle ------------------------------------------------------------
  // Called once per VM right after guest construction, before the host
  // commitment is reserved; performs the driver's boot-time plug.
  virtual void OnVmBoot(int fn, uint64_t hotplug_region, uint64_t deps_region) = 0;
  // Instance scale-up: secure one plug unit of memory for fn, then invoke
  // `ready(vmm_latency)` — possibly much later under memory pressure.
  virtual void Acquire(int fn, std::function<void(DurationNs)> ready) = 0;
  // Instance evicted: decide what happens to its plug unit.
  virtual void Release(int fn) = 0;
  // An unplug timed out / completed partially, leaving `leftover` bytes
  // plugged and committed.  Default: bank them as spare for the next
  // scale-up of this VM.
  virtual void OnUnplugIncomplete(int fn, uint64_t leftover);
  // Plugged bytes fn could reuse for a scale-up without a new host
  // commitment (spare + cancellable unplugs + driver-specific slack).
  virtual uint64_t ReusablePlugged(int fn) const;
  // Static driver: memory is always there, admission never waits.
  virtual bool AlwaysAdmits() const { return false; }

  // --- Control plane ---------------------------------------------------------------
  // Periodic pressure tick: serve starved scale-ups, proactive work.
  virtual void PressureTick();
  // Cluster hint: try to return >= `bytes` of committed memory soon.
  // Returns the bytes expected from the reclamation triggered.
  virtual uint64_t ProactiveReclaim(uint64_t bytes);
  // Host drain: reclaim everything reclaimable now.
  virtual void OnDrain();

 protected:
  // The ~1 ms grant for memory that is already plugged (recycled unplug,
  // spare, slack buffer): no VMM plug work on the path.
  void GrantFast(std::function<void(DurationNs)> ready);

  const RuntimeConfig config_;
  ReclaimHost* host_ = nullptr;
};

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_RECLAIM_DRIVER_H_
