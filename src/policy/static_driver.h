// kStatic: the over-provisioned baseline (paper §6.2.1).  The whole
// hot-pluggable region is plugged and committed at boot, so scale-ups are
// free and scale-downs reclaim nothing — maximum speed, minimum density.
#ifndef SQUEEZY_POLICY_STATIC_DRIVER_H_
#define SQUEEZY_POLICY_STATIC_DRIVER_H_

#include "src/policy/reclaim_driver.h"

namespace squeezy {

class StaticDriver : public ReclaimDriver {
 public:
  using ReclaimDriver::ReclaimDriver;

  ReclaimPolicy policy() const override { return ReclaimPolicy::kStatic; }

  uint64_t HotplugRegionBytes(const DriverSizing& s) const override;
  uint64_t BootCommitment(const DriverSizing& s) const override;

  void OnVmBoot(int fn, uint64_t hotplug_region, uint64_t deps_region) override;
  void Acquire(int fn, std::function<void(DurationNs)> ready) override;
  void Release(int fn) override;
  bool AlwaysAdmits() const override { return true; }

  // A static VM's memory is permanently plugged: there is nothing the
  // control plane can get back short of killing the VM.
  uint64_t ProactiveReclaim(uint64_t bytes) override;
  void OnDrain() override;
};

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_STATIC_DRIVER_H_
