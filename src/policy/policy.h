// Reclamation-policy identifiers.
//
// The enum is the *name* of a policy; its behavior lives in a ReclaimDriver
// (src/policy/reclaim_driver.h).  RuntimeConfig::policy keeps using this
// enum as a convenience handle that MakeReclaimDriver (driver_factory.h)
// resolves to a concrete driver, so configs, benches and CSVs stay stable
// while the behavior is swappable.
#ifndef SQUEEZY_POLICY_POLICY_H_
#define SQUEEZY_POLICY_POLICY_H_

#include <cstdint>

namespace squeezy {

enum class ReclaimPolicy : uint8_t {
  kStatic,       // Over-provisioned VM, no plugging (§6.2.1 baseline).
  kVirtioMem,    // Vanilla virtio-mem unplug (migrations, timeouts).
  kSqueezy,      // Partition-aware plug/unplug (this paper).
  kHarvestOpts,  // virtio-mem + HarvestVM slack buffers / proactive reclaim.
};

const char* ReclaimPolicyName(ReclaimPolicy p);

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_POLICY_H_
