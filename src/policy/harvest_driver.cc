#include "src/policy/harvest_driver.h"

#include "src/host/host_memory.h"
#include "src/sim/cost_model.h"

namespace squeezy {

uint64_t HarvestDriver::HotplugRegionBytes(const DriverSizing& s) const {
  // Flat region plus room for the pre-plugged slack buffers.
  return VirtioMemDriver::HotplugRegionBytes(s) +
         config_.harvest_buffer_units * s.plug_unit;
}

void HarvestDriver::OnVmBoot(int fn, uint64_t hotplug_region, uint64_t deps_region) {
  buffer_units_.resize(static_cast<size_t>(fn) + 1, 0);
  VirtioMemDriver::OnVmBoot(fn, hotplug_region, deps_region);
}

void HarvestDriver::Acquire(int fn, std::function<void(DurationNs)> ready) {
  uint32_t& buffered = buffer_units_[static_cast<size_t>(fn)];
  if (buffered > 0) {
    // Serve from the pre-plugged slack buffer: near-instant, the whole
    // point of the HarvestVM buffering optimization.
    --buffered;
    GrantFast(std::move(ready));
    return;
  }
  AcquireDynamic(fn, std::move(ready), 2);
}

void HarvestDriver::Release(int fn) {
  uint32_t& buffered = buffer_units_[static_cast<size_t>(fn)];
  if (!host_->draining() && host_->PendingEmpty() &&
      buffered < config_.harvest_buffer_units) {
    // Keep the memory plugged as slack for the next spike (drained by
    // the pressure tick when the host runs low).
    ++buffered;
    return;
  }
  host_->StartUnplug(fn);
}

uint64_t HarvestDriver::ReusablePlugged(int fn) const {
  return VirtioMemDriver::ReusablePlugged(fn) +
         static_cast<uint64_t>(buffer_units_[static_cast<size_t>(fn)]) *
             host_->plug_unit(fn);
}

void HarvestDriver::PressureTick() {
  host_->TryServePending();
  if (!host_->PendingEmpty()) {
    // Proactive over-reclamation (HarvestVM): make room for 2x the
    // starved demand.
    host_->MakeRoom(host_->PendingPlugBytes() * 2);
  }
  const HostMemory& mem = host_->memory();
  const double free_frac =
      static_cast<double>(mem.available()) / static_cast<double>(mem.capacity());
  if (free_frac < config_.harvest_low_memory_frac) {
    // Background proactive reclaim: drop the slack buffers first, then
    // idle instances.
    DrainBuffers();
    host_->MakeRoom(kMemoryBlockBytes * 8);
  }
}

uint64_t HarvestDriver::DrainBuffers() {
  uint64_t expected = 0;
  for (size_t fn = 0; fn < buffer_units_.size(); ++fn) {
    while (buffer_units_[fn] > 0) {
      --buffer_units_[fn];
      expected += host_->plug_unit(static_cast<int>(fn));
      host_->StartUnplug(static_cast<int>(fn));
    }
  }
  return expected;
}

uint64_t HarvestDriver::ProactiveReclaim(uint64_t bytes) {
  // Slack buffers are the cheapest memory to give back: no instance dies.
  const uint64_t from_buffers = DrainBuffers();
  if (from_buffers >= bytes) {
    return from_buffers;
  }
  return from_buffers + host_->MakeRoom(bytes - from_buffers);
}

void HarvestDriver::OnDrain() {
  DrainBuffers();
  host_->ReapAllIdle();
}

}  // namespace squeezy
