// kHarvestOpts: virtio-mem + the HarvestVM optimizations (paper §6.2.2):
// per-VM slack buffers of pre-plugged instances served near-instantly,
// proactive over-reclamation (2x) when scale-ups starve, and background
// buffer draining when host free memory runs low.
#ifndef SQUEEZY_POLICY_HARVEST_DRIVER_H_
#define SQUEEZY_POLICY_HARVEST_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/policy/virtio_mem_driver.h"

namespace squeezy {

class HarvestDriver : public VirtioMemDriver {
 public:
  using VirtioMemDriver::VirtioMemDriver;

  ReclaimPolicy policy() const override { return ReclaimPolicy::kHarvestOpts; }

  uint64_t HotplugRegionBytes(const DriverSizing& s) const override;

  void OnVmBoot(int fn, uint64_t hotplug_region, uint64_t deps_region) override;
  void Acquire(int fn, std::function<void(DurationNs)> ready) override;
  void Release(int fn) override;
  uint64_t ReusablePlugged(int fn) const override;

  void PressureTick() override;
  uint64_t ProactiveReclaim(uint64_t bytes) override;
  void OnDrain() override;

  uint32_t buffer_units(int fn) const {
    return buffer_units_[static_cast<size_t>(fn)];
  }

 private:
  // Unplugs every slack buffer unit; returns the bytes expected back.
  uint64_t DrainBuffers();

  // Slack instances currently plugged+idle, per VM.
  std::vector<uint32_t> buffer_units_;
};

}  // namespace squeezy

#endif  // SQUEEZY_POLICY_HARVEST_DRIVER_H_
