#include "src/policy/virtio_mem_driver.h"

#include <algorithm>
#include <cassert>

#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/sim/event_queue.h"

namespace squeezy {

uint64_t VirtioMemDriver::HotplugRegionBytes(const DriverSizing& s) const {
  // One flat hot-pluggable movable region sized for N instances plus the
  // dependency page cache.
  return static_cast<uint64_t>(s.max_concurrency) * s.plug_unit + s.deps_region;
}

uint64_t VirtioMemDriver::BootCommitment(const DriverSizing& s) const {
  return config_.vm_base_memory + s.deps_region;
}

void VirtioMemDriver::OnVmBoot(int fn, uint64_t /*hotplug_region*/,
                               uint64_t deps_region) {
  const PlugOutcome deps = host_->guest(fn).PlugMemory(deps_region, 0);
  assert(deps.complete);
  (void)deps;
}

void VirtioMemDriver::Acquire(int fn, std::function<void(DurationNs)> ready) {
  AcquireDynamic(fn, std::move(ready), 1);
}

void VirtioMemDriver::AcquireDynamic(int fn, std::function<void(DurationNs)> ready,
                                     uint64_t starve_room_multiplier) {
  if (host_->TryCancelQueuedUnplug(fn)) {
    // An unplug for this VM is queued but not started: absorb it and
    // reuse its (still plugged, still committed) memory directly.
    GrantFast(std::move(ready));
    return;
  }
  // Memory left behind by timed-out/partial unplugs is still plugged
  // and committed: consume it first, plugging only the remainder.
  const uint64_t unit = host_->plug_unit(fn);
  const uint64_t from_spare = std::min(host_->spare_plugged(fn), unit);
  const uint64_t need = unit - from_spare;
  if (need == 0) {
    host_->TakeSpare(fn, unit);
    GrantFast(std::move(ready));
    return;
  }
  // A pure fresh plug (no spare consumed) reserves the snapshot-restored
  // commitment when a recording allows it: FreshReserveBytes == need
  // whenever no snapshot registry is in play.  Spare memory is already
  // committed at full value, so mixed grants keep the full reservation.
  const uint64_t reserve = from_spare == 0 ? host_->FreshReserveBytes(fn) : need;
  if (host_->memory().TryReserve(reserve, host_->events().now())) {
    if (reserve < need) {
      host_->NoteUnreservedPlug(fn, need - reserve);
    }
    host_->TakeSpare(fn, from_spare);
    host_->PlugAndGrant(fn, need, std::move(ready));
    return;
  }
  // Memory-starved: wait for scale-downs to release memory (§6.2.2).
  host_->EnqueuePending(fn, std::move(ready));
  host_->MakeRoom(unit * starve_room_multiplier);
  host_->ArmPressureTick();
}

void VirtioMemDriver::Release(int fn) { host_->StartUnplug(fn); }

}  // namespace squeezy
