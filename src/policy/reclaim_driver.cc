#include "src/policy/reclaim_driver.h"

#include "src/host/host_memory.h"
#include "src/sim/event_queue.h"

namespace squeezy {

void ReclaimDriver::OnImageResident(int /*fn*/, uint64_t /*image_bytes*/,
                                    bool /*already_resident*/) {}

void ReclaimDriver::OnImageEvict(int /*fn*/, uint64_t image_bytes) {
  if (image_bytes == 0) {
    return;
  }
  host_->memory().ReleaseReservation(image_bytes, host_->events().now());
  host_->TryServePending();
}

uint64_t ReclaimDriver::RestoredCommitment(const DriverSizing& s,
                                           uint64_t /*working_set_bytes*/) const {
  // Default: the recording changes nothing about admission — a restored
  // instance is committed like any fresh one.
  return s.plug_unit;
}

void ReclaimDriver::OnUnplugIncomplete(int fn, uint64_t leftover) {
  // Whatever the request failed to reclaim stays plugged (and committed);
  // later scale-ups of this VM consume it directly.
  host_->AddSpare(fn, leftover);
}

uint64_t ReclaimDriver::ReusablePlugged(int fn) const {
  uint64_t reusable = host_->spare_plugged(fn);
  if (host_->HasCancellableUnplug(fn)) {
    reusable += host_->plug_unit(fn);
  }
  return reusable;
}

void ReclaimDriver::PressureTick() {
  host_->TryServePending();
  if (!host_->PendingEmpty()) {
    host_->MakeRoom(host_->PendingPlugBytes());
  }
}

uint64_t ReclaimDriver::ProactiveReclaim(uint64_t bytes) {
  return host_->MakeRoom(bytes);
}

void ReclaimDriver::OnDrain() {
  // Evict every idle instance now; the runtime's drain tick keeps reaping
  // instances as they go idle until the host is empty.
  host_->ReapAllIdle();
}

void ReclaimDriver::GrantFast(std::function<void(DurationNs)> ready) {
  host_->events().ScheduleAfter(Msec(1), [ready = std::move(ready)] { ready(Msec(1)); });
}

}  // namespace squeezy
