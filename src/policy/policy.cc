#include "src/policy/policy.h"

namespace squeezy {

const char* ReclaimPolicyName(ReclaimPolicy p) {
  switch (p) {
    case ReclaimPolicy::kStatic:
      return "Static";
    case ReclaimPolicy::kVirtioMem:
      return "Virtio-mem";
    case ReclaimPolicy::kSqueezy:
      return "Squeezy";
    case ReclaimPolicy::kHarvestOpts:
      return "HarvestVM-opts";
  }
  return "?";
}

}  // namespace squeezy
