#include "src/sim/sharded_event_queue.h"

#include <cassert>

namespace squeezy {

ShardedEventQueue::ShardedEventQueue(size_t nr_shards, size_t threads,
                                     bool serial_lockstep)
    : serial_lockstep_(serial_lockstep), global_(EventQueue::Impl::kTimerWheel) {
  assert(nr_shards > 0);
  shards_.reserve(nr_shards);
  for (size_t i = 0; i < nr_shards; ++i) {
    shards_.push_back(std::make_unique<EventQueue>(EventQueue::Impl::kTimerWheel));
    shards_.back()->SetSequenceSource(&seq_);
  }
  global_.SetSequenceSource(&seq_);
  next_.resize(nr_shards + 1);
  // Serial lockstep never hands work to the pool, so don't spawn one.
  if (!serial_lockstep_ && threads > 1) {
    workers_.reserve(threads - 1);
    for (size_t t = 1; t < threads; ++t) {
      workers_.emplace_back([this, t] { WorkerLoop(t); });
    }
  }
}

ShardedEventQueue::~ShardedEventQueue() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ShardedEventQueue::RefreshChanged() {
  for (size_t q = 0; q < next_.size(); ++q) {
    Next& n = next_[q];
    const uint64_t v = queue(q).change_version();
    if (n.known && n.version == v) {
      continue;  // Unchanged since the last peek: cache still exact.
    }
    n.known = true;
    n.version = v;
    n.valid = queue(q).PeekNext(&n.when, &n.seq);
  }
}

int ShardedEventQueue::EarliestQueue() const {
  int best = -1;
  for (size_t q = 0; q < next_.size(); ++q) {
    const Next& n = next_[q];
    if (!n.valid) {
      continue;
    }
    if (best < 0 || n.when < next_[static_cast<size_t>(best)].when ||
        (n.when == next_[static_cast<size_t>(best)].when &&
         n.seq < next_[static_cast<size_t>(best)].seq)) {
      best = static_cast<int>(q);
    }
  }
  return best;
}

void ShardedEventQueue::RunSerialLockstep(TimeNs deadline) {
  // Every event is its own barrier: replay the exact single-queue
  // (when, seq) order, syncing every clock to the event's instant first
  // (handlers may read or schedule against ANY queue's clock — this is
  // the mode for configurations whose hosts share registries).
  for (;;) {
    RefreshChanged();
    const int q = EarliestQueue();
    if (q < 0 || next_[static_cast<size_t>(q)].when > deadline) {
      break;
    }
    const TimeNs t = next_[static_cast<size_t>(q)].when;
    for (size_t i = 0; i < next_.size(); ++i) {
      queue(i).SyncNow(t);
    }
    queue(static_cast<size_t>(q)).RunOne();
  }
  for (size_t i = 0; i < next_.size(); ++i) {
    queue(i).SyncNow(deadline);
  }
}

void ShardedEventQueue::RunParallelEpochs(TimeNs deadline) {
  for (;;) {
    RefreshChanged();
    // The next cross-shard event is the epoch barrier; the deadline caps
    // the last epoch.
    TimeNs b = deadline;
    const Next& g = next_[shards_.size()];
    if (g.valid && g.when < b) {
      b = g.when;
    }
    // Parallel phase: shards with work strictly before the barrier burn
    // it down concurrently — shard-local by construction.
    phase_shards_.clear();
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (next_[s].valid && next_[s].when < b) {
        phase_shards_.push_back(s);
      }
    }
    if (!phase_shards_.empty()) {
      ParallelPhase(b - 1);
    }
    // Align every clock before the merge: barrier handlers route and
    // adopt into arbitrary shards relative to those shards' clocks.
    for (size_t q = 0; q < next_.size(); ++q) {
      queue(q).SyncNow(b);
    }
    // Barrier merge: run everything pending at exactly `b` — mailbox and
    // shards — one at a time in (when, seq) order.  Handlers may chain
    // zero-delay events at `b` (onto any queue); the loop re-peeks via
    // the version cache until the instant is fully drained.
    for (;;) {
      RefreshChanged();
      const int q = EarliestQueue();
      if (q < 0 || next_[static_cast<size_t>(q)].when > b) {
        break;
      }
      assert(next_[static_cast<size_t>(q)].when == b);
      queue(static_cast<size_t>(q)).RunOne();
    }
    if (b >= deadline) {
      return;
    }
  }
}

void ShardedEventQueue::RunUntil(TimeNs deadline) {
  if (serial_lockstep_) {
    RunSerialLockstep(deadline);
  } else {
    RunParallelEpochs(deadline);
  }
}

void ShardedEventQueue::RunAll() {
  for (;;) {
    RefreshChanged();
    const int q = EarliestQueue();
    if (q < 0) {
      return;
    }
    RunUntil(next_[static_cast<size_t>(q)].when);
  }
}

void ShardedEventQueue::ParallelPhase(TimeNs limit) {
  if (workers_.empty()) {
    for (const size_t s : phase_shards_) {
      shards_[s]->RunUntil(limit);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    phase_limit_ = limit;
    phase_done_ = 0;
    ++phase_gen_;
  }
  pool_cv_.notify_all();
  RunPhaseSlice(0);
  std::unique_lock<std::mutex> lock(pool_mu_);
  ++phase_done_;
  done_cv_.wait(lock, [this] { return phase_done_ == workers_.size() + 1; });
}

void ShardedEventQueue::RunPhaseSlice(size_t slice) {
  const size_t stride = workers_.size() + 1;
  for (size_t i = slice; i < phase_shards_.size(); i += stride) {
    shards_[phase_shards_[i]]->RunUntil(phase_limit_);
  }
}

void ShardedEventQueue::WorkerLoop(size_t slice) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return stop_ || phase_gen_ != seen; });
      if (stop_) {
        return;
      }
      seen = phase_gen_;
    }
    RunPhaseSlice(slice);
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      ++phase_done_;
    }
    done_cv_.notify_one();
  }
}

uint64_t ShardedEventQueue::processed_events() const {
  uint64_t total = global_.processed_events();
  for (const auto& s : shards_) {
    total += s->processed_events();
  }
  return total;
}

std::vector<uint64_t> ShardedEventQueue::ShardProcessed() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& s : shards_) {
    counts.push_back(s->processed_events());
  }
  return counts;
}

}  // namespace squeezy
