#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace squeezy {
namespace {

// Compaction trigger floor: below this the tombstone overhead is noise
// and compacting every few cancels would thrash.
constexpr size_t kCompactMinStored = 64;

}  // namespace

EventQueue::EventQueue(Impl impl) : use_wheel_(impl != Impl::kBinaryHeap) {
  if (use_wheel_) {
    fine_slots_.resize(kFineSlots);
    coarse_slots_.resize(kCoarseSlots);
    super_slots_.resize(kSuperSlots);
  }
}

EventId EventQueue::ScheduleAtLocked(TimeNs when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  const EventId id = next_id_++;
  const uint64_t seq = seq_source_ != nullptr
                           ? seq_source_->fetch_add(1, std::memory_order_relaxed) + 1
                           : next_seq_++;
  Insert(Entry{when, seq, id, std::move(fn)});
  live_.insert(id);
  change_version_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void EventQueue::SetSequenceSource(std::atomic<uint64_t>* source) {
  MutexLock lock(&mu_);
  assert(next_seq_ == 1 && "sequence source must be set before any scheduling");
  seq_source_ = source;
}

EventId EventQueue::ScheduleAt(TimeNs when, std::function<void()> fn) {
  MutexLock lock(&mu_);
  return ScheduleAtLocked(when, std::move(fn));
}

EventId EventQueue::ScheduleAfter(DurationNs delay, std::function<void()> fn) {
  assert(delay >= 0);
  MutexLock lock(&mu_);
  return ScheduleAtLocked(now_ + delay, std::move(fn));
}

void EventQueue::PushFine(Entry e) {
  const uint64_t tick = FineTickOf(e.when);
  if (tick < fine_cursor_) {
    // An event behind the scan position (RunUntil left now_ mid-region):
    // rewind the cursor so the scan cannot miss it.
    fine_cursor_ = tick;
  }
  std::vector<Entry>& slot = fine_slots_[tick & kFineMask];
  slot.push_back(std::move(e));
  std::push_heap(slot.begin(), slot.end(), Later{});
  ++fine_count_;
}

void EventQueue::Insert(Entry e) {
  if (use_wheel_) {
    const uint64_t region = RegionOf(e.when);
    if (region == region_) {
      PushFine(std::move(e));
      return;
    }
    if (region > region_ && region - region_ < kCoarseSlots) {
      // Far future inside the coarse horizon: O(1) unsorted bucket, to
      // be dumped into the fine wheel when the clock reaches its region.
      coarse_slots_[region & kCoarseMask].push_back(std::move(e));
      ++coarse_count_;
      return;
    }
    const uint64_t super = region >> kSuperRegionShift;
    if (super > super_pos_ && super - super_pos_ < kSuperSlots) {
      // Beyond the coarse horizon but inside the super horizon (~26
      // days): O(1) unsorted block bucket, dumped into the coarse
      // window when the clock enters its block.  (super == super_pos_
      // with region > region_ implies region - region_ < kCoarseSlots,
      // so such entries were already taken by the branches above.)
      super_slots_[super & kSuperMask].push_back(std::move(e));
      ++super_count_;
      return;
    }
    // Beyond the super horizon, or behind an already-advanced region:
    // the overflow heap (always consulted by the peek comparison).
  }
  overflow_.push_back(std::move(e));
  std::push_heap(overflow_.begin(), overflow_.end(), Later{});
}

void EventQueue::CascadeOverflow() {
  while (!overflow_.empty()) {
    const uint64_t region = RegionOf(overflow_.front().when);
    if (region < region_ || region - region_ >= kCoarseSlots) {
      break;  // Earliest remaining overflow entry is outside the window.
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Entry e = std::move(overflow_.back());
    overflow_.pop_back();
    if (region == region_) {
      PushFine(std::move(e));
    } else {
      coarse_slots_[region & kCoarseMask].push_back(std::move(e));
      ++coarse_count_;
    }
  }
}

void EventQueue::DumpSuperSlot() {
  std::vector<Entry>& slot = super_slots_[super_pos_ & kSuperMask];
  if (slot.empty()) {
    return;
  }
  super_count_ -= slot.size();
  for (Entry& e : slot) {
    // region_ sits at the block's first region, so every entry's region
    // is within [region_, region_ + kCoarseSlots).
    if (RegionOf(e.when) == region_) {
      PushFine(std::move(e));
    } else {
      coarse_slots_[RegionOf(e.when) & kCoarseMask].push_back(std::move(e));
      ++coarse_count_;
    }
  }
  slot.clear();
}

void EventQueue::MaybeEnterSuperBlock() {
  const uint64_t super = region_ >> kSuperRegionShift;
  if (super != super_pos_) {
    super_pos_ = super;
    DumpSuperSlot();
  }
}

bool EventQueue::RefillFine() {
  for (;;) {
    CascadeOverflow();
    if (fine_count_ > 0) {
      return true;
    }
    if (coarse_count_ > 0) {
      // Slide the region forward; dump the next coarse slot we reach.
      // Every coarse entry lies ahead of region_ and every slot we pass
      // is drained, so the scan meets the earliest one first.  Crossing
      // into a new super block first merges that block's super entries
      // into the coarse window (they share the window with entries
      // inserted after it moved here — no aliasing, same 1024 regions).
      ++region_;
      MaybeEnterSuperBlock();
      fine_cursor_ = region_ << (kCoarseShift - kFineShift);
      std::vector<Entry>& slot = coarse_slots_[region_ & kCoarseMask];
      if (!slot.empty()) {
        coarse_count_ -= slot.size();
        for (Entry& e : slot) {
          PushFine(std::move(e));
        }
        slot.clear();
      }
      continue;  // Cascade again: the window gained a slot at the far end.
    }
    if (super_count_ > 0) {
      // Coarse window fully drained: jump to the next non-empty super
      // slot (blocks cover disjoint, increasing time ranges, so the
      // first non-empty one holds the earliest super entry) and dump it.
      // An overflow entry may lie before this block — the peek always
      // compares the overflow top, so nothing behind is ever lost.
      uint64_t s = super_pos_;
      do {
        ++s;
      } while (super_slots_[s & kSuperMask].empty());
      region_ = s << kSuperRegionShift;
      super_pos_ = s;
      fine_cursor_ = region_ << (kCoarseShift - kFineShift);
      DumpSuperSlot();
      continue;
    }
    if (overflow_.empty()) {
      return false;
    }
    const uint64_t region = RegionOf(overflow_.front().when);
    if (region <= region_) {
      // The overflow's earliest entry is behind the current region; it
      // cannot enter the wheel but wins the peek comparison directly.
      return false;
    }
    // Wheels fully drained and the next work is beyond the super
    // horizon: jump the window to it (nothing behind can be stranded).
    region_ = region;
    super_pos_ = region_ >> kSuperRegionShift;
    fine_cursor_ = region_ << (kCoarseShift - kFineShift);
  }
}

const EventQueue::Entry* EventQueue::PeekEarliestLive() {
  for (;;) {
    // Prune cancelled tombstones off the overflow top.
    while (!overflow_.empty() && !live_.contains(overflow_.front().id)) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      overflow_.pop_back();
    }
    if (!use_wheel_) {
      if (overflow_.empty()) {
        return nullptr;
      }
      peek_overflow_ = true;
      return &overflow_.front();
    }
    if (fine_count_ == 0 && !RefillFine()) {
      // RefillFine() false leaves the wheels empty and overflow
      // untouched, so the (already pruned) overflow top is the answer.
      if (overflow_.empty()) {
        return nullptr;
      }
      peek_overflow_ = true;
      return &overflow_.front();
    }
    // Position the fine cursor at the earliest live fine entry.
    const Entry* fine_top = nullptr;
    while (fine_count_ > 0) {
      std::vector<Entry>& slot = fine_slots_[fine_cursor_ & kFineMask];
      while (!slot.empty() && !live_.contains(slot.front().id)) {
        std::pop_heap(slot.begin(), slot.end(), Later{});
        slot.pop_back();
        --fine_count_;
      }
      if (!slot.empty()) {
        fine_top = &slot.front();
        break;
      }
      ++fine_cursor_;
    }
    if (fine_top == nullptr) {
      continue;  // Tombstones drained the fine wheel: refill and retry.
    }
    // Cascading can expose a cancelled overflow top; restart the prune.
    if (!overflow_.empty() && !live_.contains(overflow_.front().id)) {
      continue;
    }
    if (!overflow_.empty()) {
      const Entry& o = overflow_.front();
      if (o.when < fine_top->when ||
          (o.when == fine_top->when && o.seq < fine_top->seq)) {
        peek_overflow_ = true;
        return &overflow_.front();
      }
    }
    peek_overflow_ = false;
    return fine_top;
  }
}

EventQueue::Entry EventQueue::PopPeeked() {
  if (peek_overflow_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Entry e = std::move(overflow_.back());
    overflow_.pop_back();
    return e;
  }
  std::vector<Entry>& slot = fine_slots_[fine_cursor_ & kFineMask];
  std::pop_heap(slot.begin(), slot.end(), Later{});
  Entry e = std::move(slot.back());
  slot.pop_back();
  --fine_count_;
  return e;
}

bool EventQueue::Cancel(EventId id) {
  MutexLock lock(&mu_);
  // Lazy deletion: forget the id, skip its entry when popped.  Only an
  // issued-and-still-live id cancels; already-run, already-cancelled and
  // never-issued ids (including kInvalidEventId) are no-ops.
  if (!live_.erase(id)) {
    return false;
  }
  change_version_.fetch_add(1, std::memory_order_relaxed);
  // Storage bound: a cancel-heavy workload (keep-alive churn) must not
  // grow the structures — or the closures its tombstones own — without
  // limit.  Compact once tombstones outnumber live entries.
  const size_t stored = StoredEntriesLocked();
  if (stored >= kCompactMinStored && live_.size() * 2 < stored) {
    Compact();
  }
  return true;
}

void EventQueue::Compact() {
  const auto dead = [this](const Entry& e) { return !live_.contains(e.id); };
  for (std::vector<Entry>& slot : fine_slots_) {
    const size_t before = slot.size();
    slot.erase(std::remove_if(slot.begin(), slot.end(), dead), slot.end());
    fine_count_ -= before - slot.size();
    std::make_heap(slot.begin(), slot.end(), Later{});
  }
  for (std::vector<Entry>& slot : coarse_slots_) {
    const size_t before = slot.size();
    slot.erase(std::remove_if(slot.begin(), slot.end(), dead), slot.end());
    coarse_count_ -= before - slot.size();
  }
  for (std::vector<Entry>& slot : super_slots_) {
    const size_t before = slot.size();
    slot.erase(std::remove_if(slot.begin(), slot.end(), dead), slot.end());
    super_count_ -= before - slot.size();
  }
  overflow_.erase(std::remove_if(overflow_.begin(), overflow_.end(), dead),
                  overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), Later{});
}

void EventQueue::AdvanceBy(DurationNs d) {
  assert(d >= 0);
  MutexLock lock(&mu_);
  now_ += d;
}

std::function<void()> EventQueue::TakePeeked() {
  Entry top = PopPeeked();
  live_.erase(top.id);
  if (top.when > now_) {
    now_ = top.when;
  }
  ++processed_;
  change_version_.fetch_add(1, std::memory_order_relaxed);
  return std::move(top.fn);
}

bool EventQueue::PeekNext(TimeNs* when, uint64_t* seq) {
  MutexLock lock(&mu_);
  const Entry* e = PeekEarliestLive();
  if (e == nullptr) {
    return false;
  }
  *when = e->when;
  *seq = e->seq;
  return true;
}

void EventQueue::SyncNow(TimeNs t) {
  MutexLock lock(&mu_);
  if (now_ < t) {
    now_ = t;
  }
}

bool EventQueue::RunOne() {
  std::function<void()> fn;
  {
    MutexLock lock(&mu_);
    if (PeekEarliestLive() == nullptr) {
      return false;
    }
    fn = TakePeeked();
  }
  fn();  // Handler runs unlocked: it may re-enter Schedule*/Cancel.
  return true;
}

void EventQueue::RunUntil(TimeNs deadline) {
  // Peek-then-pop under ONE acquisition per event (RunOne would re-peek
  // what the deadline check already positioned — measurable at
  // fleet-scale event rates), handler invocation outside it.
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(&mu_);
      const Entry* peeked = PeekEarliestLive();
      if (peeked == nullptr || peeked->when > deadline) {
        if (now_ < deadline) {
          now_ = deadline;
        }
        return;
      }
      fn = TakePeeked();
    }
    fn();  // Handler runs unlocked: it may re-enter Schedule*/Cancel.
  }
}

void EventQueue::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (RunOne()) {
    if (++ran >= max_events) {
      assert(false && "EventQueue::RunAll exceeded max_events");
      break;
    }
  }
}

}  // namespace squeezy
