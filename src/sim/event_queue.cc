#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace squeezy {

EventId EventQueue::ScheduleAt(TimeNs when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId EventQueue::ScheduleAfter(DurationNs delay, std::function<void()> fn) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  // Lazy deletion: forget the id, skip its entry when popped.  Only an
  // issued-and-still-live id cancels; already-run, already-cancelled and
  // never-issued ids (including kInvalidEventId) are no-ops.
  return live_.erase(id) > 0;
}

void EventQueue::AdvanceBy(DurationNs d) {
  assert(d >= 0);
  now_ += d;
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (live_.erase(top.id) == 0) {
      continue;  // Cancelled tombstone.
    }
    if (top.when > now_) {
      now_ = top.when;
    }
    top.fn();
    return true;
  }
  return false;
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (live_.count(top.id) == 0) {
      heap_.pop();  // Cancelled tombstone.
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void EventQueue::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (RunOne()) {
    if (++ran >= max_events) {
      assert(false && "EventQueue::RunAll exceeded max_events");
      break;
    }
  }
}

}  // namespace squeezy
