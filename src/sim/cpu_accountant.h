// Per-thread CPU busy-time accounting over fixed windows.
//
// Kernel threads (balloon, virtio-mem worker, Squeezy) and host-side VMM
// threads register busy intervals; the accountant buckets them into
// fixed-size windows so experiments can print utilization timelines
// (paper Fig 7) and compute interference factors (paper Fig 9).
#ifndef SQUEEZY_SIM_CPU_ACCOUNTANT_H_
#define SQUEEZY_SIM_CPU_ACCOUNTANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace squeezy {

class CpuAccountant {
 public:
  explicit CpuAccountant(DurationNs window = Sec(1));

  // Records that `thread` was busy for [start, start + busy).
  void AddBusy(const std::string& thread, TimeNs start, DurationNs busy);

  // Utilization (0..100) of `thread` in the window containing `t`.
  double UtilizationAt(const std::string& thread, TimeNs t) const;

  // Full utilization series for `thread`: one value per window, from
  // window 0 to the last window with any activity across all threads.
  std::vector<double> Series(const std::string& thread) const;

  // Total busy time recorded for a thread.
  DurationNs TotalBusy(const std::string& thread) const;

  DurationNs window() const { return window_; }
  std::vector<std::string> threads() const;

 private:
  DurationNs window_;
  int64_t max_window_ = -1;
  std::map<std::string, std::map<int64_t, DurationNs>> busy_;  // thread -> window -> ns.
};

}  // namespace squeezy

#endif  // SQUEEZY_SIM_CPU_ACCOUNTANT_H_
