// Discrete-event simulation kernel.
//
// A single-threaded event queue with a virtual clock.  Events scheduled
// for the same instant fire in scheduling order (stable), which keeps
// every experiment bit-deterministic for a given seed.
//
// Storage is a hierarchical timer wheel:
//   * fine wheel  — ~2.1 ms ticks over the current ~2.1 s region; the
//     hot path (grant latencies, unplug completions, pressure ticks)
//     inserts and pops here in O(log slot) with tiny slots;
//   * coarse wheel — ~2.1 s slots over the next ~36 min; bulk far-future
//     work (upfront trace arrivals, keep-alive timers) lands here O(1)
//     and cascades into the fine wheel one region at a time, lazily, as
//     the clock reaches it;
//   * super wheel — ~36.6 min slots over the next ~26 days; multi-hour
//     traces (the sharded fleet sweeps) land their far arrivals here
//     O(1) and each slot is dumped into the coarse window when the
//     clock enters its block, so long traces no longer pile the whole
//     tail onto the overflow heap;
//   * overflow heap — anything beyond the super horizon, plus entries
//     scheduled behind an already-advanced region; rare, and always
//     consulted by the peek so order can never be lost.
// Firing order is a pure function of (timestamp, global scheduling
// sequence), so the wheel is bit-identical to the single binary heap it
// replaced; the old heap survives as Impl::kBinaryHeap for A/B
// benchmarking and as the reference model for the property tests.
#ifndef SQUEEZY_SIM_EVENT_QUEUE_H_
#define SQUEEZY_SIM_EVENT_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/sim/time.h"

namespace squeezy {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Open-addressed set of live event ids (linear probing, backward-shift
// deletion, power-of-two capacity).  Every event pays one insert, one
// liveness check and one erase here — on the wheel AND heap paths — so
// this is the queue's shared constant factor; a flat uint64 table with
// one multiply-mix hash beats std::unordered_set's node allocations by a
// wide margin.  EventIds are never 0 (kInvalidEventId), so 0 marks an
// empty slot and no tombstones are needed.
class EventIdSet {
 public:
  EventIdSet() : table_(kMinCapacity, 0) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(EventId id) const {
    size_t i = Hash(id) & Mask();
    while (table_[i] != 0) {
      if (table_[i] == id) {
        return true;
      }
      i = (i + 1) & Mask();
    }
    return false;
  }

  void insert(EventId id) {
    if ((size_ + 1) * 2 > table_.size()) {
      Grow();
    }
    size_t i = Hash(id) & Mask();
    while (table_[i] != 0) {
      if (table_[i] == id) {
        return;
      }
      i = (i + 1) & Mask();
    }
    table_[i] = id;
    ++size_;
  }

  bool erase(EventId id) {
    if (id == kInvalidEventId) {
      return false;  // 0 is the empty sentinel, never a stored id.
    }
    size_t i = Hash(id) & Mask();
    while (table_[i] != id) {
      if (table_[i] == 0) {
        return false;
      }
      i = (i + 1) & Mask();
    }
    // Backward-shift deletion: pull displaced probe-chain members back
    // over the hole so lookups never need tombstone markers (this set is
    // erase-heavy — one erase per event ever scheduled).
    size_t hole = i;
    for (size_t j = (i + 1) & Mask(); table_[j] != 0; j = (j + 1) & Mask()) {
      const size_t home = Hash(table_[j]) & Mask();
      if (((j - home) & Mask()) >= ((j - hole) & Mask())) {
        table_[hole] = table_[j];
        hole = j;
      }
    }
    table_[hole] = 0;
    --size_;
    return true;
  }

 private:
  static constexpr size_t kMinCapacity = 64;
  static uint64_t Hash(uint64_t x) {
    // splitmix64 finalizer: sequential ids spread over the whole table.
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  }
  size_t Mask() const { return table_.size() - 1; }
  void Grow() {
    std::vector<uint64_t> old = std::move(table_);
    table_.assign(old.size() * 2, 0);
    for (const uint64_t id : old) {
      if (id != 0) {
        size_t i = Hash(id) & Mask();
        while (table_[i] != 0) {
          i = (i + 1) & Mask();
        }
        table_[i] = id;
      }
    }
  }

  std::vector<uint64_t> table_;
  size_t size_ = 0;
};

// Lock discipline: the queue self-locks (`mu_`), and event handlers are
// ALWAYS invoked with `mu_` released — a handler may freely call
// ScheduleAt/ScheduleAfter/Cancel back into the queue (the simulator does
// this constantly).  Today a single thread drives the queue; once the
// per-host sharding lands, `mu_` is the shard's serialization point and
// the discipline below is already machine-checked by clang.
class EventQueue {
 public:
  enum class Impl {
    kTimerWheel,  // Hierarchical wheel + overflow heap (default).
    kBinaryHeap,  // The pre-wheel single priority queue (bench baseline).
    // Per-host wheel shards driven in deterministic lockstep epochs.
    // Interpreted by the Cluster (src/sim/sharded_event_queue.h), not by
    // EventQueue itself — a queue constructed with kSharded is a plain
    // wheel (each shard of a ShardedEventQueue is one).
    kSharded,
  };

  EventQueue() : EventQueue(Impl::kTimerWheel) {}
  explicit EventQueue(Impl impl);
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  TimeNs now() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return now_;
  }

  // Schedules `fn` to run at absolute virtual time `when` (clamped to now).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn) SQZ_EXCLUDES(mu_);

  // Schedules `fn` to run `delay` after the current virtual time.
  EventId ScheduleAfter(DurationNs delay, std::function<void()> fn) SQZ_EXCLUDES(mu_);

  // Cancels a pending event.  Returns false if it already ran, was
  // cancelled, or was never issued.  Cancelling kInvalidEventId is a
  // no-op.  Cancellation is lazy (the stored entry becomes a tombstone),
  // but storage stays bounded: once live entries fall below half of the
  // stored ones, the tombstones — and the closures they own — are
  // compacted away instead of lingering until naturally popped.
  bool Cancel(EventId id) SQZ_EXCLUDES(mu_);

  // Advances the clock without running events (used by synchronous cost
  // accounting: an operation that "takes" 5 ms simply advances time).
  // Events that become due are NOT run; call Run* to drain them.
  void AdvanceBy(DurationNs d) SQZ_EXCLUDES(mu_);

  // Runs events until the queue is empty or the clock passes `deadline`.
  // The clock ends at max(deadline, last event time <= deadline).
  void RunUntil(TimeNs deadline) SQZ_EXCLUDES(mu_);

  // Runs every pending event (including ones scheduled while draining).
  // `max_events` guards against runaway self-rescheduling loops.
  void RunAll(uint64_t max_events = 50'000'000) SQZ_EXCLUDES(mu_);

  // --- Sharded-coordinator primitives (src/sim/sharded_event_queue.h) ------
  // The earliest live event's (when, seq) without running it; false when
  // drained.  Prunes tombstones and positions the scan cursor, so
  // repeated peeks on an unchanged queue are cheap (pair with
  // change_version() to skip re-peeking unchanged shards entirely).
  bool PeekNext(TimeNs* when, uint64_t* seq) SQZ_EXCLUDES(mu_);
  // Pops and runs the earliest live event (handler invoked unlocked);
  // false when drained.  The coordinator's (when, seq) merge primitive.
  bool RunOne() SQZ_EXCLUDES(mu_);
  // Advances the clock to `t` when behind, without running events — the
  // epoch-barrier clock sync.  Unlike AdvanceBy it is idempotent and
  // never moves the clock backwards.  Contract: the caller has already
  // drained every event earlier than `t` (the coordinator's RunUntil(t-1)
  // phase); events pending at exactly `t` still fire normally.
  void SyncNow(TimeNs t) SQZ_EXCLUDES(mu_);
  // Draws scheduling sequence numbers from `source` instead of the
  // internal counter.  Every shard of a ShardedEventQueue shares one
  // source, so (when, seq) totally orders events fleet-wide and the
  // barrier merge is deterministic.  Set before any event is scheduled.
  void SetSequenceSource(std::atomic<uint64_t>* source) SQZ_EXCLUDES(mu_);
  // Monotone counter bumped by every mutation that can change the
  // earliest pending event (schedule, cancel, pop).  The coordinator
  // caches PeekNext() per shard and re-peeks only on a version change.
  uint64_t change_version() const {
    return change_version_.load(std::memory_order_relaxed);
  }

  bool empty() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.empty();
  }
  size_t pending() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.size();
  }
  // Entries physically stored (live + not-yet-compacted tombstones);
  // the cancel-heavy-workload bound locked by tests/sim_test.cc.
  size_t stored_entries() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return StoredEntriesLocked();
  }
  // Events actually executed so far (bench throughput accounting).
  uint64_t processed_events() const SQZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return processed_;
  }

 private:
  struct Entry {
    TimeNs when;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Wheel geometry.  Fine: 2^21 ns (~2.1 ms) ticks, 1024 slots — one
  // region spans 2^31 ns (~2.15 s).  Coarse: one slot per region, 1024
  // slots (~36.6 min horizon).  Super: one slot per 1024-region block
  // (2^41 ns ≈ 36.6 min each), 1024 slots — ~26 day horizon.  The fine
  // region always covers exactly the coarse tick `region_`, and the
  // coarse window always starts inside the super block `super_pos_`.
  static constexpr int kFineShift = 21;
  static constexpr int kCoarseShift = 31;
  static constexpr int kSuperShift = 41;
  static constexpr uint64_t kFineSlots = 1024;
  static constexpr uint64_t kFineMask = kFineSlots - 1;
  static constexpr uint64_t kCoarseSlots = 1024;
  static constexpr uint64_t kCoarseMask = kCoarseSlots - 1;
  static constexpr uint64_t kSuperSlots = 1024;
  static constexpr uint64_t kSuperMask = kSuperSlots - 1;
  // Regions per super block: super index = region >> kSuperRegionShift.
  static constexpr int kSuperRegionShift = kSuperShift - kCoarseShift;
  static uint64_t FineTickOf(TimeNs when) {
    return static_cast<uint64_t>(when) >> kFineShift;
  }
  static uint64_t RegionOf(TimeNs when) {
    return static_cast<uint64_t>(when) >> kCoarseShift;
  }

  // Issues the id and stores the entry; the locked core of ScheduleAt
  // (ScheduleAfter reads now_ under the same acquisition, so it cannot
  // re-lock through the public entry point).
  EventId ScheduleAtLocked(TimeNs when, std::function<void()> fn) SQZ_REQUIRES(mu_);
  void Insert(Entry e) SQZ_REQUIRES(mu_);
  // Slot-heap push into the fine wheel (rewinds the scan cursor).
  void PushFine(Entry e) SQZ_REQUIRES(mu_);
  // Moves overflow entries that entered the coarse window into their
  // slots (current-region entries go straight to the fine wheel).
  // Entries *before* the window stay put — the peek comparison finds
  // them there.
  void CascadeOverflow() SQZ_REQUIRES(mu_);
  // Refills the empty fine wheel: cascades overflow, then advances (or
  // jumps) the region to the next non-empty coarse slot and dumps it;
  // when the coarse window drains too, jumps to the next non-empty super
  // slot and dumps that block into the coarse window first.  Returns
  // whether the fine wheel is non-empty afterwards; false means the only
  // remaining entries (if any) sit in the overflow heap.
  bool RefillFine() SQZ_REQUIRES(mu_);
  // Dumps super slot `super_pos_` into the fine/coarse window.  Caller
  // has just positioned region_ at the block's first region, so every
  // entry in the slot fits the coarse window (or the fine region).
  void DumpSuperSlot() SQZ_REQUIRES(mu_);
  // After region_ advanced: if it crossed into a new super block, move
  // super_pos_ with it and dump the block's slot into the window.
  void MaybeEnterSuperBlock() SQZ_REQUIRES(mu_);
  // Prunes cancelled tombstones, positions the fine cursor at the
  // wheel's earliest entry, and returns the earliest live entry (wheel
  // vs overflow decided by (when, seq)) — or nullptr when drained.
  // Sets peek_overflow_ for PopPeeked.
  const Entry* PeekEarliestLive() SQZ_REQUIRES(mu_);
  Entry PopPeeked() SQZ_REQUIRES(mu_);
  // Pops the entry PeekEarliestLive just positioned, retires its id,
  // advances the clock and returns its closure — which the CALLER must
  // invoke after releasing mu_ (handlers re-enter the queue).
  std::function<void()> TakePeeked() SQZ_REQUIRES(mu_);
  // Drops every tombstone from the wheels and overflow (storage bound).
  void Compact() SQZ_REQUIRES(mu_);
  size_t StoredEntriesLocked() const SQZ_REQUIRES(mu_) {
    return fine_count_ + coarse_count_ + super_count_ + overflow_.size();
  }

  // Guards every piece of queue state below.  mutable: const observers
  // (now, pending, ...) take it too — a torn read is still a race.
  mutable Mutex mu_;
  TimeNs now_ SQZ_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ SQZ_GUARDED_BY(mu_) = 1;
  // Shared fleet-wide sequence source (sharded mode); null = next_seq_.
  std::atomic<uint64_t>* seq_source_ SQZ_GUARDED_BY(mu_) = nullptr;
  EventId next_id_ SQZ_GUARDED_BY(mu_) = 1;
  uint64_t processed_ SQZ_GUARDED_BY(mu_) = 0;
  // Bumped on schedule/cancel/pop; read unlocked by the coordinator
  // between epochs (never concurrently with this shard's phase).
  std::atomic<uint64_t> change_version_{0};
  const bool use_wheel_ = true;  // Set at construction, immutable after.
  bool peek_overflow_ SQZ_GUARDED_BY(mu_) = false;
  // Coarse tick covered by the fine wheel.
  uint64_t region_ SQZ_GUARDED_BY(mu_) = 0;
  // Super block containing region_ (invariant: region_ >> kSuperRegionShift).
  uint64_t super_pos_ SQZ_GUARDED_BY(mu_) = 0;
  // Fine-tick scan position within region_.
  uint64_t fine_cursor_ SQZ_GUARDED_BY(mu_) = 0;
  size_t fine_count_ SQZ_GUARDED_BY(mu_) = 0;    // Entries across fine slots.
  size_t coarse_count_ SQZ_GUARDED_BY(mu_) = 0;  // Entries across coarse slots.
  size_t super_count_ SQZ_GUARDED_BY(mu_) = 0;   // Entries across super slots.
  // Min-heaps by (when, seq).
  std::vector<std::vector<Entry>> fine_slots_ SQZ_GUARDED_BY(mu_);
  // Unsorted buckets.
  std::vector<std::vector<Entry>> coarse_slots_ SQZ_GUARDED_BY(mu_);
  // Unsorted buckets, one per 1024-region block.
  std::vector<std::vector<Entry>> super_slots_ SQZ_GUARDED_BY(mu_);
  // Min-heap by (when, seq).
  std::vector<Entry> overflow_ SQZ_GUARDED_BY(mu_);
  // Ids issued and neither run nor cancelled yet.  Ids are unique and
  // never reused, so a stored entry whose id is absent here is a
  // cancellation tombstone — no separate cancelled set that could leak
  // entries for already-run or never-issued ids.
  EventIdSet live_ SQZ_GUARDED_BY(mu_);
};

// One persistent closure re-armed in place.  Per-host periodic work
// (pressure ticks, drain ticks) fires thousands of times per run; a
// repeating timer keeps ONE stored callback and schedules only a
// pointer-sized trampoline per period instead of rebuilding the closure
// every time.  The callback returns whether to re-arm for another
// period; Start() during the callback (or any time while disarmed)
// schedules the next firing immediately, exactly like the ad-hoc
// armed-flag pattern it replaces.
class RepeatingTimer {
 public:
  RepeatingTimer(EventQueue* events, DurationNs period, std::function<bool()> fn)
      : events_(events), period_(period), fn_(std::move(fn)) {}
  ~RepeatingTimer() { Stop(); }
  RepeatingTimer(const RepeatingTimer&) = delete;
  RepeatingTimer& operator=(const RepeatingTimer&) = delete;

  // Arms the next firing one period from now; no-op while already armed.
  void Start() {
    if (pending_ == kInvalidEventId) {
      pending_ = events_->ScheduleAfter(period_, [this] { Fire(); });
    }
  }
  // Cancels the pending firing (no-op while disarmed).
  void Stop() {
    if (pending_ != kInvalidEventId) {
      events_->Cancel(pending_);
      pending_ = kInvalidEventId;
    }
  }
  bool armed() const { return pending_ != kInvalidEventId; }

 private:
  void Fire() {
    pending_ = kInvalidEventId;  // The callback may Start() mid-body.
    if (fn_()) {
      Start();
    }
  }

  EventQueue* events_;
  DurationNs period_;
  std::function<bool()> fn_;
  EventId pending_ = kInvalidEventId;
};

}  // namespace squeezy

#endif  // SQUEEZY_SIM_EVENT_QUEUE_H_
