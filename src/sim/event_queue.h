// Discrete-event simulation kernel.
//
// A single-threaded event queue with a virtual clock.  Events scheduled
// for the same instant fire in scheduling order (stable), which keeps
// every experiment bit-deterministic for a given seed.
#ifndef SQUEEZY_SIM_EVENT_QUEUE_H_
#define SQUEEZY_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace squeezy {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `when` (clamped to now).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after the current virtual time.
  EventId ScheduleAfter(DurationNs delay, std::function<void()> fn);

  // Cancels a pending event.  Returns false if it already ran, was
  // cancelled, or was never issued.  Cancelling kInvalidEventId is a
  // no-op.
  bool Cancel(EventId id);

  // Advances the clock without running events (used by synchronous cost
  // accounting: an operation that "takes" 5 ms simply advances time).
  // Events that become due are NOT run; call Run* to drain them.
  void AdvanceBy(DurationNs d);

  // Runs events until the queue is empty or the clock passes `deadline`.
  // The clock ends at max(deadline, last event time <= deadline).
  void RunUntil(TimeNs deadline);

  // Runs every pending event (including ones scheduled while draining).
  // `max_events` guards against runaway self-rescheduling loops.
  void RunAll(uint64_t max_events = 50'000'000);

  bool empty() const { return live_.empty(); }
  size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    TimeNs when;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the earliest event; returns false when empty.
  bool RunOne();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids issued and neither run nor cancelled yet.  Ids are unique and
  // never reused, so a popped heap entry whose id is absent here is a
  // cancellation tombstone — no separate cancelled set that could leak
  // entries for already-run or never-issued ids.
  std::unordered_set<EventId> live_;
};

}  // namespace squeezy

#endif  // SQUEEZY_SIM_EVENT_QUEUE_H_
