#include "src/sim/cpu_accountant.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

CpuAccountant::CpuAccountant(DurationNs window) : window_(window) { assert(window > 0); }

void CpuAccountant::AddBusy(const std::string& thread, TimeNs start, DurationNs busy) {
  assert(busy >= 0 && start >= 0);
  auto& windows = busy_[thread];
  TimeNs cursor = start;
  DurationNs remaining = busy;
  while (remaining > 0) {
    const int64_t w = cursor / window_;
    const TimeNs window_end = (w + 1) * window_;
    const DurationNs chunk = std::min<DurationNs>(remaining, window_end - cursor);
    windows[w] += chunk;
    max_window_ = std::max(max_window_, w);
    cursor += chunk;
    remaining -= chunk;
  }
  // Zero-length markers still extend the timeline.
  if (busy == 0) {
    max_window_ = std::max(max_window_, start / window_);
  }
}

double CpuAccountant::UtilizationAt(const std::string& thread, TimeNs t) const {
  const auto it = busy_.find(thread);
  if (it == busy_.end()) {
    return 0.0;
  }
  const auto wit = it->second.find(t / window_);
  if (wit == it->second.end()) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(wit->second) / static_cast<double>(window_);
}

std::vector<double> CpuAccountant::Series(const std::string& thread) const {
  std::vector<double> out(static_cast<size_t>(max_window_ + 1), 0.0);
  const auto it = busy_.find(thread);
  if (it != busy_.end()) {
    for (const auto& [w, ns] : it->second) {
      out[static_cast<size_t>(w)] = 100.0 * static_cast<double>(ns) / static_cast<double>(window_);
    }
  }
  return out;
}

DurationNs CpuAccountant::TotalBusy(const std::string& thread) const {
  const auto it = busy_.find(thread);
  if (it == busy_.end()) {
    return 0;
  }
  DurationNs total = 0;
  for (const auto& [w, ns] : it->second) {
    (void)w;
    total += ns;
  }
  return total;
}

std::vector<std::string> CpuAccountant::threads() const {
  std::vector<std::string> names;
  names.reserve(busy_.size());
  for (const auto& [name, windows] : busy_) {
    (void)windows;
    names.push_back(name);
  }
  return names;
}

}  // namespace squeezy
