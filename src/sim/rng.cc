#include "src/sim/rng.h"

#include <cmath>

namespace squeezy {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    return static_cast<int64_t>(Next());  // Full 64-bit range requested.
  }
  // Rejection-free Lemire-style mapping is overkill here; modulo bias is
  // negligible for the span sizes the simulator uses (< 2^32).
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction.
  const double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mean, double cv) {
  // Solve for the underlying normal parameters.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(Normal(mu, std::sqrt(sigma2)));
}

bool Rng::Chance(double p) { return NextDouble() < p; }

}  // namespace squeezy
