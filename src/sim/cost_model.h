// Calibrated latency model for every hardware/hypervisor-dependent cost.
//
// The paper's absolute numbers come from a dual-socket Xeon E5-2630 with
// Cloud Hypervisor v38 (KVM).  This struct gathers every such constant in
// one place so experiments can (a) reproduce the paper's figure *shapes*
// with the defaults below and (b) run sensitivity sweeps by overriding
// individual entries.  Calibration rationale is documented per field and
// in DESIGN.md §4.
#ifndef SQUEEZY_SIM_COST_MODEL_H_
#define SQUEEZY_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/sim/time.h"

namespace squeezy {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kMemoryBlockBytes = 128ull << 20;  // Linux x86 hotplug block.
inline constexpr uint32_t kPagesPerBlock = kMemoryBlockBytes / kPageSize;  // 32768.
inline constexpr uint32_t kMaxPageOrder = 10;  // Buddy MAX_ORDER: 4 MiB chunks.
inline constexpr uint32_t kThpOrder = 9;       // 2 MiB transparent huge folio.

inline constexpr uint64_t BytesToPages(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }
inline constexpr uint64_t PagesToBytes(uint64_t pages) { return pages * kPageSize; }
inline constexpr uint64_t BytesToBlocks(uint64_t bytes) {
  return (bytes + kMemoryBlockBytes - 1) / kMemoryBlockBytes;
}

inline constexpr uint64_t MiB(uint64_t n) { return n << 20; }
inline constexpr uint64_t GiB(uint64_t n) { return n << 30; }

// Cost of one live replica state transfer between hosts (pre-copy
// migration).  Produced by CostModel::StateTransfer.
struct StateTransferCost {
  DurationNs precopy = 0;   // Iterative copy rounds; the source keeps serving.
  DurationNs downtime = 0;  // Final stop-and-copy pause.
  uint64_t bytes_sent = 0;  // Total wire bytes including resent dirty state.
  uint32_t rounds = 0;      // Pre-copy rounds actually run.

  DurationNs total() const { return precopy + downtime; }
};

struct CostModel {
  // --- Balloon (virtio-balloon) -------------------------------------------
  // The balloon driver reserves guest pages one by one and reports each to
  // the hypervisor.  Fig 5: reclaiming 2 GiB takes 5-6 s, ~81% of which is
  // VM-exit/host-side work.
  DurationNs balloon_guest_page = Usec(1.6);  // Guest-side alloc + queueing.
  DurationNs balloon_exit_page = Usec(8.2);   // Exit + host release per page.
  // Pages reported per virtqueue kick (1 models the paper's per-page
  // pathology; raising it is the "batching" ablation).
  uint32_t balloon_batch_pages = 1;

  // --- Guest page operations ----------------------------------------------
  // Migration: copy 4 KiB + rmap/PTE updates.  Fig 5: 61.5% of vanilla
  // virtio-mem unplug latency.
  DurationNs migrate_page = Usec(2.6);
  // Fixed per-folio overhead (locking, rmap walk) on top of per-page copy.
  DurationNs migrate_folio_fixed = Usec(4.0);
  // Zeroing a 4 KiB page (init_on_alloc=1 hardening).  Fig 5: 24% of
  // vanilla unplug latency (~3.9 GB/s effective memset).
  DurationNs zero_page = Usec(1.0);
  // Scanning/isolating a page during offline ("rest" slice of Fig 5).
  DurationNs isolate_page = Usec(0.05);
  // Minor fault service (guest-side bookkeeping), charged per folio.
  DurationNs fault_folio_fixed = Usec(1.1);
  // Fault cost proportional to folio size (clearing, map setup).
  DurationNs fault_page = Usec(0.35);

  // --- Hot(un)plug block costs --------------------------------------------
  // Hot-add: allocate+init memmap (struct page array) for one 128 MiB block.
  DurationNs block_hotadd = Msec(0.9);
  // Online: release the block's pages to the allocator.
  DurationNs block_online = Msec(0.3);
  // Offline/hot-remove fixed metadata cost per block.
  DurationNs block_offline_fixed = Msec(3.3);
  // Host-side unplug acknowledgement: VM exit + madvise(MADV_DONTNEED) of a
  // 128 MiB chunk (paper §8: ~3 ms per chunk).
  DurationNs block_unplug_exit = Msec(3.0);
  // Fixed cost per plug *request* (virtio-mem negotiation + device ack);
  // with block_hotadd this yields the paper's 35-45 ms for 0.75-1.5 GiB.
  DurationNs plug_request_fixed = Msec(28.0);
  // Fixed cost per unplug *request*.
  DurationNs unplug_request_fixed = Msec(2.0);

  // --- Virtualization ------------------------------------------------------
  // Nested (EPT) page fault: first guest touch of host-unpopulated memory.
  // Freshly plugged (previously madvised) regions repopulate at base-page
  // granularity, which is what makes cold starts on a dynamically resized
  // VM 3-35% slower than on a warm static VM (§6.2.1).
  DurationNs nested_fault_exit = Usec(2.0);
  uint64_t host_thp_bytes = kPageSize;  // Backing granule per exit.
  // Plain VM exit round-trip (interrupt, config access).
  DurationNs vm_exit = Usec(1.8);

  // --- 1:1 microVM model (Fig 11) -----------------------------------------
  DurationNs microvm_boot = Msec(950);        // Boot + guest init to agent-ready.
  DurationNs microvm_shutdown = Msec(120);
  uint64_t microvm_base_footprint = 170ull << 20;  // Guest OS + FaaS agent RSS.

  // --- Live migration (replica state transfer between hosts) ---------------
  // Pre-copy live migration: iterative rounds stream the replica's touched
  // state over the wire while it keeps running; state redirtied during a
  // round is resent in the next, and a final stop-and-copy round pauses the
  // source.  Cost scales with the bytes actually touched (the committed
  // footprint), matching the snapshot-transfer measurements of Ustiugov et
  // al. — NOT with the VM's configured size.
  DurationNs migrate_net_byte_x1000 = 400;  // ns per 1000 wire bytes (~2.5 GB/s).
  DurationNs migrate_round_fixed = Msec(2); // Per-round control RTT + setup.
  uint32_t migrate_precopy_rounds = 2;      // Iterative rounds before stop-and-copy.
  // Fraction of transferred state redirtied per round when every instance
  // is busy; scaled down by the replica's busy fraction at capture time.
  double migrate_dirty_frac = 0.25;

  // --- Cross-host shared dependency cache (TrEnv-X-style) -------------------
  // Fetching dependency bytes from a peer host's resident image over the
  // wire: network speed (~2.5 GB/s, same fabric as migration) instead of
  // the ~600 MB/s cold backing-store read — the cold-IO-skip path.
  DurationNs dep_fetch_byte_x1000 = 400;
  // Dep-cache hit on migration: the destination already holds the image,
  // so deps_bytes never crosses the wire; the transfer pays only this
  // fixed registry-lookup + mapping-attach cost.
  DurationNs dep_cache_hit_fixed = Msec(1);

  // --- REAP-style snapshot restore (cluster snapshot registry) --------------
  // Restoring a recorded working set replaces the serial demand-fault storm
  // of a cold start with ONE bulk prefetch of exactly the recorded pages
  // (Ustiugov et al.: record-and-prefetch removes most cold-start latency).
  // Fixed setup: open the snapshot, install the recorded mappings.
  DurationNs snapshot_restore_fixed = Msec(5);
  // Sequential read-out of the snapshot file per 1000 bytes (~1.2 GB/s):
  // faster than the ~600 MB/s random cold IO it replaces, and it amortizes
  // the per-page fault fixed costs the demand path pays 4 KiB at a time.
  DurationNs snapshot_prefetch_byte_x1000 = 850;

  // --- Misc -----------------------------------------------------------------
  // Reading container rootfs / dependencies from backing store when the
  // page cache misses (cold IO), per byte.  ~600 MB/s effective.
  DurationNs io_byte_x1000 = 1700;  // ns per 1000 bytes (avoids sub-ns units).

  // Derived helpers ----------------------------------------------------------
  DurationNs BalloonPerPage() const { return balloon_guest_page + balloon_exit_page; }
  DurationNs MigrateFolio(uint32_t pages) const {
    return migrate_folio_fixed + migrate_page * pages;
  }
  DurationNs ZeroPages(uint64_t pages) const { return zero_page * static_cast<int64_t>(pages); }
  DurationNs IoBytes(uint64_t bytes) const {
    return static_cast<DurationNs>(bytes) * io_byte_x1000 / 1000;
  }
  DurationNs NetBytes(uint64_t bytes) const {
    return static_cast<DurationNs>(bytes) * migrate_net_byte_x1000 / 1000;
  }
  DurationNs DepFetchBytes(uint64_t bytes) const {
    return static_cast<DurationNs>(bytes) * dep_fetch_byte_x1000 / 1000;
  }
  DurationNs SnapshotPrefetchBytes(uint64_t bytes) const {
    return static_cast<DurationNs>(bytes) * snapshot_prefetch_byte_x1000 / 1000;
  }
  // Snapshot-hit on migration: the destination re-creates the recorded
  // portion of the replica's anonymous state from the cluster snapshot
  // store instead of receiving it over the wire — fixed restore setup
  // plus the recorded bytes read out at snapshot-prefetch speed (the
  // wire then carries only the delta beyond the recording).
  DurationNs SnapshotAttach(uint64_t recorded_bytes) const {
    return snapshot_restore_fixed + SnapshotPrefetchBytes(recorded_bytes);
  }
  // One pre-copy state transfer of `state_bytes` of touched replica state.
  // `dirty_frac` is the per-round redirty fraction for THIS transfer
  // (typically migrate_dirty_frac scaled by the replica's busy fraction);
  // 0 collapses to a single copy round plus an empty stop-and-copy.  Each
  // round pays the control fixed cost, the per-page read-out (the same
  // copy primitive as in-guest migration) and the wire time.
  StateTransferCost StateTransfer(uint64_t state_bytes, double dirty_frac) const {
    StateTransferCost c;
    if (dirty_frac < 0) {
      dirty_frac = 0;
    } else if (dirty_frac > 0.95) {
      dirty_frac = 0.95;  // Never diverge: cap at near-total redirtying.
    }
    auto round_cost = [this](uint64_t bytes) {
      return migrate_round_fixed + NetBytes(bytes) +
             migrate_page * static_cast<DurationNs>(BytesToPages(bytes));
    };
    uint64_t remaining = state_bytes;
    for (uint32_t r = 0; r < migrate_precopy_rounds && remaining > 0; ++r) {
      c.precopy += round_cost(remaining);
      c.bytes_sent += remaining;
      ++c.rounds;
      remaining = static_cast<uint64_t>(static_cast<double>(remaining) * dirty_frac);
    }
    c.downtime = round_cost(remaining);
    c.bytes_sent += remaining;
    return c;
  }

  // The paper's default model.
  static CostModel Default() { return CostModel{}; }
  // Zeroing-on-alloc disabled in the guest kernel (Fig 6 isolates migration
  // cost this way; also an ablation).
  static CostModel NoZeroing() {
    CostModel m;
    m.zero_page = 0;
    return m;
  }
};

}  // namespace squeezy

#endif  // SQUEEZY_SIM_COST_MODEL_H_
