// Deterministic random number generation.
//
// We avoid <random> distribution objects because their output is
// implementation-defined; every distribution here is hand-rolled so a
// given seed produces identical streams on every platform.
#ifndef SQUEEZY_SIM_RNG_H_
#define SQUEEZY_SIM_RNG_H_

#include <cstdint>
#include <utility>

namespace squeezy {

// xoshiro256** seeded via SplitMix64.  Fast, high quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Poisson with the given mean (>= 0).  Uses inversion for small means
  // and a normal approximation for large ones.
  int64_t Poisson(double mean);

  // Normal via Box-Muller (deterministic variant consuming two uniforms).
  double Normal(double mean, double stddev);

  // Log-normal parameterized by the mean/cv of the *resulting* variable.
  double LogNormal(double mean, double cv);

  // Bernoulli.
  bool Chance(double p);

  // Fisher-Yates shuffle of [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    const auto n = last - first;
    for (auto i = n - 1; i > 0; --i) {
      const auto j = UniformInt(0, i);
      using std::swap;
      swap(first[i], first[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace squeezy

#endif  // SQUEEZY_SIM_RNG_H_
