#include "src/sim/time.h"

#include <cmath>
#include <cstdio>

namespace squeezy {

std::string FormatDuration(DurationNs d) {
  char buf[64];
  const double abs = std::fabs(static_cast<double>(d));
  if (abs >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ToSec(d));
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ToMsec(d));
  } else if (abs >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ToUsec(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace squeezy
