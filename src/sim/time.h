// Simulated-time primitives.
//
// All simulation latencies and timestamps are expressed in integer
// nanoseconds of *virtual* time.  Using a plain integer (instead of
// std::chrono) keeps the event queue and metrics code trivially
// serializable and bit-deterministic across platforms.
#ifndef SQUEEZY_SIM_TIME_H_
#define SQUEEZY_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace squeezy {

// A point in virtual time, in nanoseconds since simulation start.
using TimeNs = int64_t;
// A span of virtual time, in nanoseconds.
using DurationNs = int64_t;

inline constexpr DurationNs kNanosecond = 1;
inline constexpr DurationNs kMicrosecond = 1000;
inline constexpr DurationNs kMillisecond = 1000 * kMicrosecond;
inline constexpr DurationNs kSecond = 1000 * kMillisecond;
inline constexpr DurationNs kMinute = 60 * kSecond;

// Construct durations from scalar values.
constexpr DurationNs Usec(double us) { return static_cast<DurationNs>(us * kMicrosecond); }
constexpr DurationNs Msec(double ms) { return static_cast<DurationNs>(ms * kMillisecond); }
constexpr DurationNs Sec(double s) { return static_cast<DurationNs>(s * kSecond); }
constexpr DurationNs Minutes(double m) { return static_cast<DurationNs>(m * kMinute); }

// Convert durations to floating-point scalar units (for reporting).
constexpr double ToUsec(DurationNs d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double ToMsec(DurationNs d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSec(DurationNs d) { return static_cast<double>(d) / kSecond; }

// Human-readable rendering, e.g. "1.27 s", "617 ms", "35.4 us".
std::string FormatDuration(DurationNs d);

}  // namespace squeezy

#endif  // SQUEEZY_SIM_TIME_H_
