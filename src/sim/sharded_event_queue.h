// Per-host event-queue shards driven in deterministic lockstep epochs.
//
// One wheel (EventQueue) per host plus one cross-shard mailbox queue for
// fleet-level events (trace dispatch, migration completions — everything
// scheduled from a sequential coordinator context).  All queues draw
// their scheduling sequence numbers from ONE shared atomic counter, so
// (when, seq) totally orders events fleet-wide exactly as the single
// global queue would have ordered them.
//
// Epoch algorithm (parallel mode):
//   1. Pick the next barrier B = min(earliest mailbox event, deadline).
//   2. Every shard with work before B runs RunUntil(B - 1) on the thread
//      pool — shard-local events only; hosts cannot touch each other
//      between barriers, so the phases are embarrassingly parallel.
//   3. Sync every queue's clock to B, then run ALL events at exactly B
//      (mailbox + shards) one at a time in (when, seq) merge order — the
//      cross-shard events (route, migrate-off/adopt, peer image fetch,
//      snapshot restore from the global store) all fire here, in the
//      same sequential context and the same order as the single queue.
//   4. Repeat until the deadline.
//
// Why the result is bit-identical to the single queue at any thread
// count: per-shard firing order is (when, seq) by construction; events
// *scheduled* during a parallel phase take racing counter values, but
// (a) they stay inside their shard, (b) every sequentially-assigned seq
// lies outside the phase's counter window [pre, post), so ordering
// against any sequential event is unchanged, and (c) the phase consumes
// exactly as many counter ticks as the single-queue run would, so later
// sequential events get the exact single-queue values.  Two
// phase-scheduled events on different shards can swap seq values between
// runs — but they never interact (different hosts, no shared registry),
// so no observable state depends on that order.
//
// Serial-lockstep mode (shared DepCache / SnapshotStore attached): host
// handlers DO touch cross-host state, so every event is its own barrier
// — the coordinator replays the exact single-queue order one event at a
// time.  Degenerate (threads idle) but correct; the fast path is for the
// registry-free fleet sweeps where the scale lives.
#ifndef SQUEEZY_SIM_SHARDED_EVENT_QUEUE_H_
#define SQUEEZY_SIM_SHARDED_EVENT_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace squeezy {

class ShardedEventQueue {
 public:
  // `nr_shards` per-host wheels + one mailbox queue; `threads` is the
  // total parallelism including the coordinator thread (1 = no workers,
  // phases run inline).  `serial_lockstep` selects the every-event-is-a-
  // barrier replay for configurations whose host handlers share state.
  ShardedEventQueue(size_t nr_shards, size_t threads, bool serial_lockstep);
  ~ShardedEventQueue();
  ShardedEventQueue(const ShardedEventQueue&) = delete;
  ShardedEventQueue& operator=(const ShardedEventQueue&) = delete;

  // The shard a host's FaasRuntime/Agent schedules on (shard-local
  // RepeatingTimer ticks, grant latencies, keep-alive churn).
  EventQueue& shard(size_t i) { return *shards_[i]; }
  const EventQueue& shard(size_t i) const { return *shards_[i]; }
  // The cross-shard mailbox: dispatch, migration completions, anything
  // posted from the sequential coordinator context.
  EventQueue& global() { return global_; }
  const EventQueue& global() const { return global_; }

  size_t nr_shards() const { return shards_.size(); }
  size_t threads() const { return workers_.size() + 1; }
  bool serial_lockstep() const { return serial_lockstep_; }

  // The fleet clock (the mailbox queue's clock; all queues agree at
  // every quiescent point).
  TimeNs now() const { return global_.now(); }

  // Runs every event with when <= deadline across all queues, leaving
  // every clock at max(deadline, last event time).
  void RunUntil(TimeNs deadline);
  // Runs until every queue is drained.
  void RunAll();

  // Events executed across all queues (bench throughput accounting).
  uint64_t processed_events() const;
  // Per-shard executed-event counts (mailbox excluded) — the shard
  // balance the bench reports.
  std::vector<uint64_t> ShardProcessed() const;

 private:
  // Cached earliest-pending view of one queue, invalidated by the
  // queue's change_version.
  struct Next {
    bool known = false;   // Cache entry populated at least once.
    bool valid = false;   // Queue had a pending event at last peek.
    TimeNs when = 0;
    uint64_t seq = 0;
    uint64_t version = 0;
  };

  // Queue q: shards for q < nr_shards(), the mailbox at nr_shards().
  EventQueue& queue(size_t q) {
    return q < shards_.size() ? *shards_[q] : global_;
  }
  // Re-peeks every queue whose version moved since the cache was taken.
  void RefreshChanged();
  // Index of the queue holding the fleet-earliest (when, seq) live
  // event per the cache, or -1 when everything is drained.  Call
  // RefreshChanged() first.
  int EarliestQueue() const;

  // Parallel-epoch helpers.  Each phase statically stripes the listed
  // shards over {coordinator, workers}: slice t runs shards t, t+T,
  // t+2T, ...  Static striping (vs a shared work-stealing cursor) means
  // no cross-phase cursor reuse, and the coordinator waits for every
  // worker each phase, so phase state is never re-armed under a
  // straggler.  Shard->slice assignment only affects wall-clock, never
  // results (shards are independent within a phase).
  void ParallelPhase(TimeNs limit);  // Listed shards RunUntil(limit) on the pool.
  void RunPhaseSlice(size_t slice);
  void WorkerLoop(size_t slice);
  void RunSerialLockstep(TimeNs deadline);
  void RunParallelEpochs(TimeNs deadline);

  const bool serial_lockstep_;
  // Fleet-wide scheduling sequence; shared by every queue via
  // EventQueue::SetSequenceSource.
  std::atomic<uint64_t> seq_{0};
  std::vector<std::unique_ptr<EventQueue>> shards_;
  EventQueue global_;
  std::vector<Next> next_;  // One per shard + one for the mailbox.

  // Persistent worker pool.  The pool only ever runs shard-local
  // RunUntil phases; all cross-shard work happens on the coordinator
  // thread between phases (pool_mu_ hand-offs give the happens-before
  // edges for the coordinator's reads of shard state).
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;  // Coordinator -> workers: new phase.
  std::condition_variable done_cv_;  // Workers -> coordinator: slice done.
  std::vector<size_t> phase_shards_;  // Shard ids of the current phase.
  TimeNs phase_limit_ = 0;            // RunUntil bound for the phase.
  size_t phase_done_ = 0;             // Finished slices (under pool_mu_).
  uint64_t phase_gen_ = 0;            // Bumped per phase (under pool_mu_).
  bool stop_ = false;                 // Pool shutdown (under pool_mu_).
};

}  // namespace squeezy

#endif  // SQUEEZY_SIM_SHARDED_EVENT_QUEUE_H_
