// Guest process model (the simulator's mm_struct + task).
//
// A process owns anonymous folios (tracked by slot so migration can patch
// locations in O(1)) and maps shared files through the page cache.  A
// Squeezy-enabled process carries the partition id the syscall interface
// assigned (paper §4.1: a new mm_struct field).
#ifndef SQUEEZY_GUEST_PROCESS_H_
#define SQUEEZY_GUEST_PROCESS_H_

#include <cstdint>
#include <vector>

#include "src/mm/page.h"
#include "src/sim/cost_model.h"

namespace squeezy {

class Zone;

using Pid = int32_t;
inline constexpr Pid kNoPid = -1;
inline constexpr int32_t kNoPartition = -1;

enum class ProcessState : uint8_t {
  kRunning,
  kExited,
  kOomKilled,  // Exceeded its partition / ran the VM out of memory.
};

class Process {
 public:
  Process(Pid pid, Pid parent) : pid_(pid), parent_(parent) {}

  Pid pid() const { return pid_; }
  Pid parent() const { return parent_; }
  ProcessState state() const { return state_; }
  void set_state(ProcessState s) { state_ = s; }

  // Squeezy attachment (set by the syscall path).
  int32_t partition_id() const { return partition_id_; }
  void set_partition_id(int32_t id) { partition_id_ = id; }
  Zone* anon_zone() const { return anon_zone_; }
  void set_anon_zone(Zone* z) { anon_zone_ = z; }

  // --- Anonymous folio table -------------------------------------------------
  // Returns the slot index to pass to Zone::Alloc as owner_slot.
  uint32_t ReserveSlot();
  void CommitSlot(uint32_t slot, Pfn head, uint8_t order);
  // Returns a committed slot's folio to the free pool (caller frees pages).
  void ReleaseSlot(uint32_t slot);
  // Returns a never-committed slot (allocation failed).
  void AbandonSlot(uint32_t slot);
  void Relocate(uint32_t slot, Pfn new_head) { folios_[slot].head = new_head; }

  const std::vector<FolioRef>& folios() const { return folios_; }
  uint64_t anon_pages() const { return anon_pages_; }
  uint64_t anon_bytes() const { return PagesToBytes(anon_pages_); }

  // Pops an arbitrary live folio (most recently allocated first), for
  // partial frees.  Returns false when none remain.
  bool PopFolio(FolioRef* out);

  // --- File mappings ------------------------------------------------------------
  void MapFile(int32_t file_id) { files_.push_back(file_id); }
  const std::vector<int32_t>& files() const { return files_; }

 private:
  Pid pid_;
  Pid parent_;
  ProcessState state_ = ProcessState::kRunning;
  int32_t partition_id_ = kNoPartition;
  Zone* anon_zone_ = nullptr;

  std::vector<FolioRef> folios_;     // Slot-indexed; head==kInvalidPfn when free.
  std::vector<uint32_t> free_slots_;
  uint64_t anon_pages_ = 0;
  std::vector<int32_t> files_;
};

}  // namespace squeezy

#endif  // SQUEEZY_GUEST_PROCESS_H_
