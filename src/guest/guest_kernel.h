// The guest OS kernel facade.
//
// Owns the memory map, zones, allocator fault paths, page cache, process
// table and the hot(un)plug devices of one VM.  Implements the *vanilla*
// Linux policies (ZONE_MOVABLE onlining, occupancy-ranked unplug with
// migration); the Squeezy extension (src/core) overrides them through the
// VirtioMemHooks indirection and the process-lifecycle observer.
#ifndef SQUEEZY_GUEST_GUEST_KERNEL_H_
#define SQUEEZY_GUEST_GUEST_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/guest/process.h"
#include "src/host/hypervisor.h"
#include "src/hotplug/balloon.h"
#include "src/hotplug/hotplug.h"
#include "src/hotplug/virtio_mem.h"
#include "src/mm/memmap.h"
#include "src/mm/migration.h"
#include "src/mm/page_cache.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"
#include "src/sim/rng.h"

namespace squeezy {

// Squeezy (or any other MM extension) observes process lifecycle events
// to maintain partition refcounts (paper §4.1: fork handling).
class ProcessLifecycleObserver {
 public:
  virtual ~ProcessLifecycleObserver() = default;
  virtual void OnFork(Process& parent, Process& child) = 0;
  virtual void OnExit(Process& proc) = 0;
};

// Vanilla unplug candidate ordering.  Linux virtio-mem walks the device
// region by address (highest block first); ranking by occupancy is a
// hypothetical smarter baseline kept for the ablation study.
enum class UnplugSelection : uint8_t {
  kAddressDescending,  // Linux behaviour (default).
  kEmptiestFirst,      // Fewest occupied pages first.
};

struct GuestConfig {
  std::string name = "vm";
  uint32_t vcpus = 1;
  // Boot RAM: kernel + unmovable allocations (ZONE_NORMAL).
  uint64_t base_memory = MiB(512);
  // virtio-mem device region size (hot-pluggable span above base memory).
  uint64_t hotplug_region = GiB(8);
  UnplugSelection unplug_selection = UnplugSelection::kAddressDescending;
  // Virtual time at which the VM boots (microVMs boot mid-simulation).
  TimeNs boot_time = 0;
  // Emulate steady-state allocator scatter (see Zone).  The paper's Fig 6
  // attributes vanilla unplug jitter to exactly this randomness.
  bool shuffle_allocator = true;
  uint64_t seed = 1;
  DurationNs unplug_timeout = Sec(5);
};

struct TouchResult {
  uint64_t bytes = 0;        // Bytes actually faulted in.
  DurationNs latency = 0;    // Guest fault time + nested-fault (EPT) time.
  DurationNs nested = 0;     // Portion spent in nested page faults.
  bool oom = false;          // Allocation failed; process was OOM-killed.
};

// Result of a snapshot working-set restore (RestoreWorkingSet).
struct RestoreOutcome {
  uint64_t file_bytes = 0;  // Dependency-file bytes mapped from the snapshot.
  uint64_t anon_bytes = 0;  // Anonymous heap bytes restored to the process.
  DurationNs nested = 0;    // One bulk EPT populate for the whole span.
  bool oom = false;         // Allocation failed; process was OOM-killed.
};

class GuestKernel : public OwnerRegistry, public VirtioMemHooks {
 public:
  GuestKernel(const GuestConfig& config, Hypervisor* hv, CpuAccountant* cpu = nullptr);
  ~GuestKernel() override;

  // --- Topology --------------------------------------------------------------
  MemMap& memmap() { return *memmap_; }
  const MemMap& memmap() const { return *memmap_; }
  Zone& normal_zone() { return *normal_zone_; }
  Zone& movable_zone() { return *movable_zone_; }
  // Creates an extra zone (Squeezy partitions).  The kernel owns it.
  Zone* CreateZone(ZoneType type, const std::string& name);
  HotplugManager& hotplug() { return *hotplug_; }
  VirtioMemDevice& virtio_mem() { return *virtio_; }
  BalloonDevice& balloon() { return *balloon_; }
  PageCache& page_cache() { return page_cache_; }
  const PageCache& page_cache() const { return page_cache_; }
  Hypervisor& hypervisor() { return *hv_; }
  VmId vm_id() const { return vm_; }
  const GuestConfig& config() const { return config_; }
  const CostModel& cost() const { return hv_->cost(); }
  Rng& rng() { return rng_; }

  // First block index of the hot-pluggable device region.
  BlockIndex hotplug_first_block() const { return hotplug_first_block_; }
  uint32_t hotplug_nr_blocks() const { return hotplug_nr_blocks_; }

  // Replaces the hot(un)plug policy (installed by SqueezyManager).
  void SetVirtioHooks(VirtioMemHooks* hooks) { override_hooks_ = hooks; }
  void SetLifecycleObserver(ProcessLifecycleObserver* obs) { lifecycle_ = obs; }

  // --- Processes ---------------------------------------------------------------
  Pid CreateProcess();
  Pid Fork(Pid parent);
  Process& process(Pid pid) { return *processes_[static_cast<size_t>(pid)]; }
  bool Alive(Pid pid) const;
  // Terminates the process, freeing all its anonymous memory.
  void Exit(Pid pid);
  size_t live_process_count() const { return live_processes_; }

  // --- Fault paths ---------------------------------------------------------------
  // Demand-faults `bytes` of anonymous memory (THP folios when possible).
  // On allocation failure the process is OOM-killed (result.oom).
  TouchResult TouchAnon(Pid pid, uint64_t bytes, TimeNs now);
  // Reads `bytes` from the head of `file_id`: page-cache hits are remapped
  // cheaply, misses pay the file's backing read (cold backing-store IO,
  // or the page cache's per-file override — e.g. a peer-host fetch when
  // the cluster dependency cache holds the image warm) + allocation.
  // File pages are shared across processes.
  TouchResult TouchFile(Pid pid, int32_t file_id, uint64_t bytes, TimeNs now);

  // --- Snapshot restore (cluster snapshot registry) ---------------------------
  // Maps a recorded working set populated in one step (REAP-style restore):
  // the first `file_pages` of `file_id` enter the page cache and
  // `anon_bytes` of heap are committed to the process, with NO per-page
  // fault or backing-read charges — the caller prices the whole prefetch
  // once via the cost model's snapshot terms — and ONE bulk EPT populate
  // (single extent) backs every new page on the host.  Pages already
  // cached are skipped; anything beyond the recording demand-faults
  // normally afterwards (the tail).  On allocation failure the process is
  // OOM-killed, like any fault path.
  RestoreOutcome RestoreWorkingSet(Pid pid, int32_t file_id, uint64_t file_pages,
                                   uint64_t anon_bytes, TimeNs now);

  // --- Shared dependency image adoption/eviction (cluster dep cache) ---------
  // Maps `file_id`'s not-yet-cached pages straight out of a host-held
  // copy of the image: guest pages are allocated and inserted into the
  // page cache at fault cost with no backing read.  `populate_host`
  // distinguishes the two sources — false when a sibling VM's frames
  // already back the image (sharing, no new host memory), true when the
  // bytes just arrived from another host (a migration landed them; they
  // need frames of their own).  Returns the bytes adopted; stops early
  // (partial adoption) if the file zone fills.
  TouchResult AdoptFileCache(int32_t file_id, TimeNs now, bool populate_host = false);
  // Drops every cached page of `file_id` (the registry evicted the
  // image): page-cache entries are removed, their guest pages freed, and
  // their host backing released in one madvise span.  The next touch
  // faults the file back in cold.  Returns the bytes dropped.
  uint64_t DropFileCache(int32_t file_id, TimeNs now);
  // Frees up to `bytes` of the process's anonymous memory (LIFO).
  uint64_t FreeAnon(Pid pid, uint64_t bytes);

  int32_t CreateFile(const std::string& name, uint64_t size_bytes);

  // Zone used for anonymous faults of `proc` (partition override or
  // movable, with normal fallback handled inside the fault path).
  Zone* AnonZoneFor(const Process& proc);
  // Zone used for file (page-cache) faults; Squeezy points this at the
  // shared partition.
  void SetFileZone(Zone* zone) { file_zone_ = zone; }
  Zone* file_zone() { return file_zone_; }

  // --- Memory elasticity ----------------------------------------------------------
  PlugOutcome PlugMemory(uint64_t bytes, TimeNs now);
  UnplugOutcome UnplugMemory(uint64_t bytes, TimeNs now);
  BalloonOutcome BalloonReclaim(uint64_t bytes, TimeNs now);

  // Marks every present frame host-populated (models a long-running,
  // warmed-up VM whose memory the host already backs — the §6.2.1 static
  // over-provisioned baseline).
  void WarmAllHostBacking(TimeNs now);

  // --- Accounting -------------------------------------------------------------------
  // Total allocated bytes across all zones (the guest's view in Fig 1).
  uint64_t allocated_bytes() const;
  // Total bytes the guest currently has online (normal + movable + extra).
  uint64_t online_bytes() const;

  // --- OwnerRegistry ------------------------------------------------------------------
  void RelocateFolio(PageKind kind, int32_t owner, uint32_t owner_slot, Pfn new_head) override;

  // --- VirtioMemHooks (vanilla policy; delegates when overridden) ----------------------
  std::vector<BlockIndex> SelectPlugBlocks(uint64_t max_blocks) override;
  Zone* OnlineTargetZone(BlockIndex b) override;
  void OnBlockOnline(BlockIndex b) override;
  std::vector<BlockIndex> SelectUnplugBlocks(uint64_t max_blocks) override;
  OfflineOptions OfflineOptionsFor(BlockIndex b) override;
  Zone* BlockZone(BlockIndex b) override;
  Zone* MigrationTarget(BlockIndex b) override;
  void OnBlockUnplugged(BlockIndex b) override;

 private:
  // Backs [head, head+pages) with host memory where missing; returns the
  // nested-fault latency (one exit per host-THP granule).
  DurationNs PopulateHostBacking(Pfn head, uint32_t pages, TimeNs now);
  void OomKill(Pid pid);

  GuestConfig config_;
  Hypervisor* hv_;
  CpuAccountant* cpu_;
  VmId vm_;
  Rng rng_;

  std::unique_ptr<MemMap> memmap_;
  std::vector<std::unique_ptr<Zone>> zones_;
  Zone* normal_zone_ = nullptr;
  Zone* movable_zone_ = nullptr;
  Zone* file_zone_ = nullptr;

  std::unique_ptr<HotplugManager> hotplug_;
  std::unique_ptr<VirtioMemDevice> virtio_;
  std::unique_ptr<BalloonDevice> balloon_;
  PageCache page_cache_;

  BlockIndex hotplug_first_block_ = 0;
  uint32_t hotplug_nr_blocks_ = 0;

  std::vector<std::unique_ptr<Process>> processes_;
  size_t live_processes_ = 0;

  VirtioMemHooks* override_hooks_ = nullptr;
  ProcessLifecycleObserver* lifecycle_ = nullptr;
};

}  // namespace squeezy

#endif  // SQUEEZY_GUEST_GUEST_KERNEL_H_
