#include "src/guest/guest_kernel.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

GuestKernel::GuestKernel(const GuestConfig& config, Hypervisor* hv, CpuAccountant* cpu)
    : config_(config), hv_(hv), cpu_(cpu), rng_(config.seed) {
  assert(hv_ != nullptr);
  assert(config_.base_memory % kMemoryBlockBytes == 0 && "base memory must be block-aligned");
  assert(config_.hotplug_region % kMemoryBlockBytes == 0 && "hotplug region must be block-aligned");

  vm_ = hv_->RegisterVm(config_.name, config_.vcpus);
  memmap_ = std::make_unique<MemMap>(config_.base_memory + config_.hotplug_region);

  Rng* shuffle = config_.shuffle_allocator ? &rng_ : nullptr;
  zones_.push_back(std::make_unique<Zone>(0, ZoneType::kNormal, "Normal", memmap_.get(), shuffle));
  normal_zone_ = zones_.back().get();
  zones_.push_back(
      std::make_unique<Zone>(1, ZoneType::kMovable, "Movable", memmap_.get(), shuffle));
  movable_zone_ = zones_.back().get();
  file_zone_ = movable_zone_;

  // Boot RAM comes online into ZONE_NORMAL without the hotplug pipeline.
  const uint32_t base_blocks = static_cast<uint32_t>(config_.base_memory / kMemoryBlockBytes);
  for (BlockIndex b = 0; b < base_blocks; ++b) {
    memmap_->InitBlock(b);
    normal_zone_->AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
    memmap_->set_block_state(b, BlockState::kOnline);
  }
  hotplug_first_block_ = base_blocks;
  hotplug_nr_blocks_ = static_cast<uint32_t>(config_.hotplug_region / kMemoryBlockBytes);

  hotplug_ = std::make_unique<HotplugManager>(memmap_.get(), &hv_->cost(), hv_, vm_, this);

  VirtioMemConfig vcfg;
  vcfg.first_block = hotplug_first_block_;
  vcfg.nr_blocks = hotplug_nr_blocks_;
  vcfg.unplug_timeout = config_.unplug_timeout;
  vcfg.guest_thread = config_.name + "/virtio_mem-guest";
  vcfg.host_thread = config_.name + "/virtio_mem-host";
  virtio_ = std::make_unique<VirtioMemDevice>(vcfg, hotplug_.get(), this, cpu_);

  balloon_ = std::make_unique<BalloonDevice>(memmap_.get(), &hv_->cost(), hv_, vm_, cpu_,
                                             config_.name + "/balloon-guest",
                                             config_.name + "/balloon-host");

  // The kernel's own footprint: pinned, unmovable, host-backed at boot.
  const uint64_t kernel_bytes = std::min<uint64_t>(MiB(96), config_.base_memory / 4);
  uint64_t kernel_pages = BytesToPages(kernel_bytes);
  while (kernel_pages > 0) {
    const uint8_t order = static_cast<uint8_t>(
        std::min<uint64_t>(kMaxPageOrder, 63 - __builtin_clzll(kernel_pages)));
    const Pfn pfn = normal_zone_->Alloc(order, PageKind::kKernel, kNoOwner, 0);
    assert(pfn != kInvalidPfn);
    PopulateHostBacking(pfn, 1u << order, config_.boot_time);
    kernel_pages -= 1u << order;
  }
}

GuestKernel::~GuestKernel() = default;

Zone* GuestKernel::CreateZone(ZoneType type, const std::string& name) {
  const int16_t id = static_cast<int16_t>(zones_.size());
  zones_.push_back(std::make_unique<Zone>(id, type, name, memmap_.get(), nullptr));
  return zones_.back().get();
}

// --- Processes ----------------------------------------------------------------

Pid GuestKernel::CreateProcess() {
  const Pid pid = static_cast<Pid>(processes_.size());
  processes_.push_back(std::make_unique<Process>(pid, kNoPid));
  ++live_processes_;
  return pid;
}

Pid GuestKernel::Fork(Pid parent_pid) {
  Process& parent = process(parent_pid);
  assert(parent.state() == ProcessState::kRunning);
  const Pid pid = static_cast<Pid>(processes_.size());
  processes_.push_back(std::make_unique<Process>(pid, parent_pid));
  Process& child = *processes_.back();
  ++live_processes_;
  // The child joins the parent's Squeezy partition (paper §4.1) and shares
  // its file mappings.  Anonymous memory is not duplicated (we model a
  // fork+exec/CoW-light worker, the common container pattern).
  child.set_partition_id(parent.partition_id());
  child.set_anon_zone(parent.anon_zone());
  for (const int32_t f : parent.files()) {
    child.MapFile(f);
  }
  if (lifecycle_ != nullptr) {
    lifecycle_->OnFork(parent, child);
  }
  return pid;
}

bool GuestKernel::Alive(Pid pid) const {
  return processes_[static_cast<size_t>(pid)]->state() == ProcessState::kRunning;
}

void GuestKernel::Exit(Pid pid) {
  Process& proc = process(pid);
  assert(proc.state() == ProcessState::kRunning);
  proc.set_state(ProcessState::kExited);
  FolioRef folio;
  while (proc.PopFolio(&folio)) {
    Zone& zone = *zones_[static_cast<size_t>(memmap_->page(folio.head).zone_id)];
    zone.Free(folio.head);
  }
  assert(live_processes_ > 0);
  --live_processes_;
  if (lifecycle_ != nullptr) {
    lifecycle_->OnExit(proc);
  }
}

void GuestKernel::OomKill(Pid pid) {
  Exit(pid);
  process(pid).set_state(ProcessState::kOomKilled);
}

// --- Fault paths -----------------------------------------------------------------

DurationNs GuestKernel::PopulateHostBacking(Pfn head, uint32_t pages, TimeNs now) {
  const uint32_t granule_pages = static_cast<uint32_t>(cost().host_thp_bytes / kPageSize);
  const Pfn first_granule = head / granule_pages;
  const Pfn last_granule = (head + pages - 1) / granule_pages;
  uint64_t extents = 0;
  uint64_t new_pages = 0;
  for (Pfn g = first_granule; g <= last_granule; ++g) {
    const Pfn start = g * granule_pages;
    bool any_new = false;
    for (Pfn pfn = start; pfn < start + granule_pages; ++pfn) {
      Page& p = memmap_->page(pfn);
      if (!p.host_populated) {
        // Host THP backs the whole aligned granule on first touch.
        p.host_populated = true;
        any_new = true;
        ++new_pages;
      }
    }
    if (any_new) {
      ++extents;
    }
  }
  if (extents == 0) {
    return 0;
  }
  return hv_->NestedFaultPopulate(vm_, extents, PagesToBytes(new_pages), now);
}

Zone* GuestKernel::AnonZoneFor(const Process& proc) {
  return proc.anon_zone() != nullptr ? proc.anon_zone() : movable_zone_;
}

TouchResult GuestKernel::TouchAnon(Pid pid, uint64_t bytes, TimeNs now) {
  TouchResult result;
  Process& proc = process(pid);
  assert(proc.state() == ProcessState::kRunning);
  Zone* primary = AnonZoneFor(proc);
  // Squeezy processes are confined to their partition; vanilla movable
  // allocations may spill into ZONE_NORMAL like Linux's zonelist fallback.
  Zone* fallback = (proc.anon_zone() == nullptr) ? normal_zone_ : nullptr;

  uint64_t remaining = BytesToPages(bytes);
  while (remaining > 0) {
    uint8_t order = static_cast<uint8_t>(
        std::min<uint64_t>(kThpOrder, 63 - __builtin_clzll(remaining)));
    Pfn head = kInvalidPfn;
    Zone* zone = nullptr;
    for (;;) {
      const uint32_t slot = proc.ReserveSlot();
      head = primary->Alloc(order, PageKind::kAnon, pid, slot);
      zone = primary;
      if (head == kInvalidPfn && fallback != nullptr) {
        head = fallback->Alloc(order, PageKind::kAnon, pid, slot);
        zone = fallback;
      }
      if (head != kInvalidPfn) {
        proc.CommitSlot(slot, head, order);
        break;
      }
      proc.AbandonSlot(slot);  // Nothing was allocated into it.
      if (order == 0) {
        break;
      }
      --order;  // Fall back to smaller folios under fragmentation.
    }
    if (head == kInvalidPfn) {
      // Out of memory: the partition cap (or the VM) was exhausted.  The
      // OOM killer reaps the process (paper §4.1).
      OomKill(pid);
      result.oom = true;
      return result;
    }
    (void)zone;
    const uint32_t folio_pages = 1u << order;
    result.latency += cost().fault_folio_fixed + cost().fault_page * folio_pages;
    const DurationNs nested = PopulateHostBacking(head, folio_pages, now);
    result.nested += nested;
    result.latency += nested;
    result.bytes += PagesToBytes(folio_pages);
    remaining -= folio_pages;
  }
  return result;
}

TouchResult GuestKernel::TouchFile(Pid pid, int32_t file_id, uint64_t bytes, TimeNs now) {
  TouchResult result;
  Process& proc = process(pid);
  assert(proc.state() == ProcessState::kRunning);
  const uint64_t pages = std::min<uint64_t>(BytesToPages(bytes), page_cache_.FilePages(file_id));

  // Fast path: fully cached prefix -> pure remap cost, no per-page walk.
  if (page_cache_.cached_pages(file_id) == page_cache_.FilePages(file_id)) {
    result.latency += cost().fault_page * static_cast<int64_t>(pages);
    result.bytes = PagesToBytes(pages);
    return result;
  }

  // Misses read from the file's backing source: cold backing-store IO by
  // default, or the per-file override (a peer host's resident image
  // served at wire speed) installed by the cluster dependency cache.
  const DurationNs backing_x1000 = page_cache_.backing_cost(file_id);
  const DurationNs miss_read =
      backing_x1000 < 0 ? cost().IoBytes(kPageSize)
                        : backing_x1000 * static_cast<DurationNs>(kPageSize) / 1000;
  for (uint64_t idx = 0; idx < pages; ++idx) {
    if (page_cache_.Cached(file_id, idx)) {
      result.latency += cost().fault_page;
      continue;
    }
    Zone* zone = file_zone_;
    Pfn pfn = zone->Alloc(0, PageKind::kFile, file_id, static_cast<uint32_t>(idx));
    if (pfn == kInvalidPfn && proc.anon_zone() == nullptr && zone != normal_zone_) {
      zone = normal_zone_;
      pfn = zone->Alloc(0, PageKind::kFile, file_id, static_cast<uint32_t>(idx));
    }
    if (pfn == kInvalidPfn) {
      OomKill(pid);
      result.oom = true;
      return result;
    }
    page_cache_.Insert(file_id, idx, pfn);
    result.latency += cost().fault_folio_fixed + cost().fault_page + miss_read;
    if (backing_x1000 < 0) {
      page_cache_.CountDiskRead(file_id, kPageSize);
    } else {
      page_cache_.CountRemoteRead(file_id, kPageSize);
    }
    const DurationNs nested = PopulateHostBacking(pfn, 1, now);
    result.nested += nested;
    result.latency += nested;
  }
  result.bytes = PagesToBytes(pages);
  return result;
}

RestoreOutcome GuestKernel::RestoreWorkingSet(Pid pid, int32_t file_id,
                                              uint64_t file_pages, uint64_t anon_bytes,
                                              TimeNs now) {
  RestoreOutcome out;
  Process& proc = process(pid);
  assert(proc.state() == ProcessState::kRunning);
  uint64_t populate_pages = 0;
  auto mark_populated = [this, &populate_pages](Pfn head, uint32_t pages) {
    for (Pfn pfn = head; pfn < head + pages; ++pfn) {
      Page& p = memmap_->page(pfn);
      if (!p.host_populated) {
        p.host_populated = true;
        ++populate_pages;
      }
    }
  };

  // Recorded file pages: straight into the page cache, no backing read —
  // the snapshot file carries their contents.
  const uint64_t pages = std::min(file_pages, page_cache_.FilePages(file_id));
  for (uint64_t idx = 0; idx < pages; ++idx) {
    if (page_cache_.Cached(file_id, idx)) {
      continue;
    }
    Zone* zone = file_zone_;
    Pfn pfn = zone->Alloc(0, PageKind::kFile, file_id, static_cast<uint32_t>(idx));
    if (pfn == kInvalidPfn && proc.anon_zone() == nullptr && zone != normal_zone_) {
      pfn = normal_zone_->Alloc(0, PageKind::kFile, file_id, static_cast<uint32_t>(idx));
    }
    if (pfn == kInvalidPfn) {
      break;  // Partial restore; the rest demand-faults as tail.
    }
    page_cache_.Insert(file_id, idx, pfn);
    mark_populated(pfn, 1);
    out.file_bytes += kPageSize;
  }
  page_cache_.CountRestored(file_id, out.file_bytes);

  // Recorded heap: committed to the process under the same placement rules
  // as TouchAnon (partition confinement with vanilla normal-zone spill),
  // without the per-folio fault charges the demand path pays.
  uint64_t remaining = BytesToPages(anon_bytes);
  Zone* primary = AnonZoneFor(proc);
  Zone* fallback = (proc.anon_zone() == nullptr) ? normal_zone_ : nullptr;
  while (remaining > 0) {
    uint8_t order = static_cast<uint8_t>(
        std::min<uint64_t>(kThpOrder, 63 - __builtin_clzll(remaining)));
    Pfn head = kInvalidPfn;
    for (;;) {
      const uint32_t slot = proc.ReserveSlot();
      head = primary->Alloc(order, PageKind::kAnon, pid, slot);
      if (head == kInvalidPfn && fallback != nullptr) {
        head = fallback->Alloc(order, PageKind::kAnon, pid, slot);
      }
      if (head != kInvalidPfn) {
        proc.CommitSlot(slot, head, order);
        break;
      }
      proc.AbandonSlot(slot);
      if (order == 0) {
        break;
      }
      --order;
    }
    if (head == kInvalidPfn) {
      OomKill(pid);
      out.oom = true;
      return out;
    }
    const uint32_t folio_pages = 1u << order;
    mark_populated(head, folio_pages);
    out.anon_bytes += PagesToBytes(folio_pages);
    remaining -= folio_pages;
  }

  // One bulk EPT populate for the whole prefetched span: the host backs
  // the restore with a single large read, not one exit per granule — the
  // entire point of prefetching over demand faulting.
  if (populate_pages > 0) {
    out.nested = hv_->NestedFaultPopulate(vm_, 1, PagesToBytes(populate_pages), now);
  }
  return out;
}

TouchResult GuestKernel::AdoptFileCache(int32_t file_id, TimeNs now, bool populate_host) {
  TouchResult result;
  const uint64_t pages = page_cache_.FilePages(file_id);
  for (uint64_t idx = 0; idx < pages; ++idx) {
    if (page_cache_.Cached(file_id, idx)) {
      continue;
    }
    const Pfn pfn = file_zone_->Alloc(0, PageKind::kFile, file_id, static_cast<uint32_t>(idx));
    if (pfn == kInvalidPfn) {
      break;  // Partial adoption; the remainder faults in normally.
    }
    page_cache_.Insert(file_id, idx, pfn);
    // Fault cost, no backing read.  Sibling sharing (populate_host ==
    // false) adds no host frames — the host already backs the image for
    // another VM; migration-landed bytes need frames of their own.
    result.latency += cost().fault_folio_fixed + cost().fault_page;
    if (populate_host) {
      const DurationNs nested = PopulateHostBacking(pfn, 1, now);
      result.nested += nested;
      result.latency += nested;
    }
    result.bytes += kPageSize;
  }
  page_cache_.CountAdopted(file_id, result.bytes);
  return result;
}

uint64_t GuestKernel::DropFileCache(int32_t file_id, TimeNs now) {
  uint64_t dropped_pages = 0;
  uint64_t unpop_pages = 0;
  const uint64_t pages = page_cache_.FilePages(file_id);
  for (uint64_t idx = 0; idx < pages; ++idx) {
    if (!page_cache_.Cached(file_id, idx)) {
      continue;
    }
    const Pfn pfn = page_cache_.Remove(file_id, idx);
    Page& p = memmap_->page(pfn);
    if (p.host_populated) {
      p.host_populated = false;
      ++unpop_pages;
    }
    zones_[static_cast<size_t>(p.zone_id)]->Free(pfn);
    ++dropped_pages;
  }
  if (unpop_pages > 0) {
    hv_->MadviseRelease(vm_, PagesToBytes(unpop_pages), now);
  }
  return PagesToBytes(dropped_pages);
}

uint64_t GuestKernel::FreeAnon(Pid pid, uint64_t bytes) {
  Process& proc = process(pid);
  uint64_t freed = 0;
  FolioRef folio;
  while (freed < bytes && proc.PopFolio(&folio)) {
    Zone& zone = *zones_[static_cast<size_t>(memmap_->page(folio.head).zone_id)];
    zone.Free(folio.head);
    freed += PagesToBytes(folio.pages());
  }
  return freed;
}

int32_t GuestKernel::CreateFile(const std::string& name, uint64_t size_bytes) {
  return page_cache_.RegisterFile(name, size_bytes);
}

// --- Memory elasticity ---------------------------------------------------------

PlugOutcome GuestKernel::PlugMemory(uint64_t bytes, TimeNs now) {
  return virtio_->Plug(bytes, now);
}

UnplugOutcome GuestKernel::UnplugMemory(uint64_t bytes, TimeNs now) {
  return virtio_->Unplug(bytes, now);
}

BalloonOutcome GuestKernel::BalloonReclaim(uint64_t bytes, TimeNs now) {
  return balloon_->Inflate(bytes, movable_zone_, now);
}

void GuestKernel::WarmAllHostBacking(TimeNs now) {
  uint64_t new_pages = 0;
  for (BlockIndex b = 0; b < memmap_->block_count(); ++b) {
    if (!memmap_->BlockMaterialized(b)) {
      continue;  // Nothing but default holes: no backing to warm.
    }
    const Pfn start = MemMap::BlockStart(b);
    for (Pfn pfn = start; pfn < start + kPagesPerBlock; ++pfn) {
      Page& p = memmap_->page(pfn);
      if (p.state != PageState::kHole && !p.host_populated) {
        p.host_populated = true;
        ++new_pages;
      }
    }
  }
  if (new_pages > 0) {
    hv_->NestedFaultPopulate(vm_, 0, PagesToBytes(new_pages), now);
  }
}

// --- Accounting -------------------------------------------------------------------

uint64_t GuestKernel::allocated_bytes() const {
  uint64_t pages = 0;
  for (const auto& z : zones_) {
    pages += z->allocated_pages();
  }
  return PagesToBytes(pages);
}

uint64_t GuestKernel::online_bytes() const {
  uint64_t pages = 0;
  for (const auto& z : zones_) {
    pages += z->managed_pages();
  }
  return PagesToBytes(pages);
}

// --- OwnerRegistry ------------------------------------------------------------------

void GuestKernel::RelocateFolio(PageKind kind, int32_t owner, uint32_t owner_slot, Pfn new_head) {
  if (kind == PageKind::kAnon) {
    process(owner).Relocate(owner_slot, new_head);
  } else if (kind == PageKind::kFile) {
    page_cache_.Relocate(owner, owner_slot, new_head);
  }
}

// --- VirtioMemHooks: vanilla Linux policy -----------------------------------------

std::vector<BlockIndex> GuestKernel::SelectPlugBlocks(uint64_t max_blocks) {
  if (override_hooks_ != nullptr) {
    return override_hooks_->SelectPlugBlocks(max_blocks);
  }
  // Vanilla: lowest absent blocks of the device region first.
  std::vector<BlockIndex> out;
  for (BlockIndex b = hotplug_first_block_;
       b < hotplug_first_block_ + hotplug_nr_blocks_ && out.size() < max_blocks; ++b) {
    if (memmap_->block_state(b) == BlockState::kAbsent) {
      out.push_back(b);
    }
  }
  return out;
}

Zone* GuestKernel::OnlineTargetZone(BlockIndex b) {
  if (override_hooks_ != nullptr) {
    return override_hooks_->OnlineTargetZone(b);
  }
  // Vanilla: hot-plugged memory onlines into ZONE_MOVABLE so it stays
  // (theoretically) offlinable.
  return movable_zone_;
}

void GuestKernel::OnBlockOnline(BlockIndex b) {
  if (override_hooks_ != nullptr) {
    override_hooks_->OnBlockOnline(b);
  }
}

std::vector<BlockIndex> GuestKernel::SelectUnplugBlocks(uint64_t max_blocks) {
  if (override_hooks_ != nullptr) {
    return override_hooks_->SelectUnplugBlocks(max_blocks);
  }
  // Vanilla policy: every online block of the device region is a
  // candidate.  Linux virtio-mem walks by address, highest block first;
  // the emptiest-first variant (fewest pages to migrate) is a smarter
  // hypothetical baseline evaluated in the block-selection ablation.
  std::vector<BlockIndex> candidates;
  for (BlockIndex b = hotplug_first_block_; b < hotplug_first_block_ + hotplug_nr_blocks_; ++b) {
    if (memmap_->block_state(b) == BlockState::kOnline) {
      candidates.push_back(b);
    }
  }
  if (config_.unplug_selection == UnplugSelection::kEmptiestFirst) {
    std::stable_sort(candidates.begin(), candidates.end(), [this](BlockIndex a, BlockIndex b) {
      return memmap_->BlockOccupied(a) < memmap_->BlockOccupied(b);
    });
  } else {
    std::reverse(candidates.begin(), candidates.end());
  }
  (void)max_blocks;  // The driver stops when the request is met.
  return candidates;
}

OfflineOptions GuestKernel::OfflineOptionsFor(BlockIndex b) {
  if (override_hooks_ != nullptr) {
    return override_hooks_->OfflineOptionsFor(b);
  }
  return OfflineOptions{/*skip_zeroing=*/false, /*allow_migration=*/true};
}

Zone* GuestKernel::BlockZone(BlockIndex b) {
  if (override_hooks_ != nullptr) {
    return override_hooks_->BlockZone(b);
  }
  const Page& first = memmap_->page(MemMap::BlockStart(b));
  assert(first.zone_id >= 0);
  return zones_[static_cast<size_t>(first.zone_id)].get();
}

Zone* GuestKernel::MigrationTarget(BlockIndex b) {
  if (override_hooks_ != nullptr) {
    return override_hooks_->MigrationTarget(b);
  }
  return movable_zone_;
}

void GuestKernel::OnBlockUnplugged(BlockIndex b) {
  if (override_hooks_ != nullptr) {
    override_hooks_->OnBlockUnplugged(b);
  }
}

}  // namespace squeezy
