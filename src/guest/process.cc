#include "src/guest/process.h"

#include <cassert>

namespace squeezy {

uint32_t Process::ReserveSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  folios_.push_back(FolioRef{});
  return static_cast<uint32_t>(folios_.size()) - 1;
}

void Process::CommitSlot(uint32_t slot, Pfn head, uint8_t order) {
  assert(folios_[slot].head == kInvalidPfn);
  folios_[slot] = FolioRef{head, order};
  anon_pages_ += 1u << order;
}

void Process::ReleaseSlot(uint32_t slot) {
  assert(folios_[slot].head != kInvalidPfn);
  anon_pages_ -= folios_[slot].pages();
  folios_[slot] = FolioRef{};
  free_slots_.push_back(slot);
}

void Process::AbandonSlot(uint32_t slot) {
  assert(folios_[slot].head == kInvalidPfn);
  free_slots_.push_back(slot);
}

bool Process::PopFolio(FolioRef* out) {
  while (!folios_.empty()) {
    const FolioRef last = folios_.back();
    if (last.head == kInvalidPfn) {
      // Dead slot at the tail: drop it and compact free_slots_ lazily.
      folios_.pop_back();
      for (size_t i = 0; i < free_slots_.size(); ++i) {
        if (free_slots_[i] == folios_.size()) {
          free_slots_[i] = free_slots_.back();
          free_slots_.pop_back();
          break;
        }
      }
      continue;
    }
    *out = last;
    anon_pages_ -= last.pages();
    folios_.pop_back();
    return true;
  }
  return false;
}

}  // namespace squeezy
