// FaasRuntime configuration, split out of runtime.h so the policy layer
// (src/policy/) can read runtime knobs without depending on the runtime
// class itself (faas → policy → runtime_config is acyclic).
#ifndef SQUEEZY_FAAS_RUNTIME_CONFIG_H_
#define SQUEEZY_FAAS_RUNTIME_CONFIG_H_

#include <cstdint>

#include "src/policy/policy.h"
#include "src/sim/cost_model.h"
#include "src/sim/time.h"

namespace squeezy {

struct RuntimeConfig {
  uint64_t host_capacity = GiB(256);
  // Convenience handle: resolved to a concrete ReclaimDriver by
  // MakeReclaimDriver (src/policy/driver_factory.h) at runtime
  // construction.  Benches and configs keep naming policies by enum.
  ReclaimPolicy policy = ReclaimPolicy::kSqueezy;
  DurationNs keep_alive = Minutes(2);
  uint64_t seed = 1;
  uint64_t vm_base_memory = MiB(512);
  DurationNs unplug_timeout = Sec(5);
  // kStatic only: mark the over-provisioned VM's memory host-backed at
  // boot (a long-running warm VM).  Disable to watch the host footprint
  // grow to its high watermark (Fig 1).
  bool warm_static_backing = true;
  // Pressure check cadence (serves pending scale-ups, harvest proactive).
  DurationNs pressure_check_period = Sec(1);
  // HarvestVM-opts knobs (paper §6.2.2): slack instances kept plugged per
  // VM, and the free-memory fraction below which idle instances are
  // proactively reclaimed.
  uint32_t harvest_buffer_units = 2;
  double harvest_low_memory_frac = 0.12;
  // Cost model (copied; benches tweak fields before constructing).
  CostModel cost = CostModel::Default();
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_RUNTIME_CONFIG_H_
