// The narrow surface a host runtime sees of the cluster-wide shared
// dependency-image registry (TrEnv-X-style cross-host dependency cache).
//
// A dependency image is the read-only file_deps_bytes payload of one
// function spec (container rootfs + language runtime + model files).  The
// registry tracks, per host, whether the image is RESIDENT (its
// block-rounded region is charged to the host commitment book — once per
// host per image, not once per VM) and whether it is POPULATED (some VM
// on the host has actually faulted the bytes in, so peers can fetch them
// over the wire instead of paying cold backing-store IO).
//
// Layering: src/faas/ sees only this interface; the concrete registry
// (src/cluster/dep_cache.h) lives with the fleet, mirroring how the
// scheduler sees hosts only through HostControl.  A runtime without an
// attached registry (every single-host experiment, and any driver whose
// SharedDepsSupported() is false) behaves bit-identically to before the
// registry existed.
#ifndef SQUEEZY_FAAS_DEP_REGISTRY_H_
#define SQUEEZY_FAAS_DEP_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace squeezy {

using DepImageId = int32_t;
inline constexpr DepImageId kNoDepImage = -1;

class DepImageRegistry {
 public:
  virtual ~DepImageRegistry() = default;

  // Interns `key` (spec name + image size) as an image of `region_bytes`
  // (the block-rounded deps region a residency charges).  Idempotent.
  virtual DepImageId Intern(const std::string& key, uint64_t region_bytes) = 0;
  virtual uint64_t region_bytes(DepImageId img) const = 0;

  // Makes the image resident on `host` (the caller has charged — or is
  // about to charge — region_bytes to its commitment book).  Returns
  // true when it already was resident: the caller then skips its charge,
  // which is exactly the once-per-host-per-image accounting.
  virtual bool PinImage(size_t host, DepImageId img) = 0;
  // Drops the residency (host drain / refcount-zero under pressure).
  // Returns region_bytes when the image was resident — the commitment
  // the caller must now flow back through its reclaim driver — else 0.
  virtual uint64_t EvictImage(size_t host, DepImageId img) = 0;
  virtual bool Resident(size_t host, DepImageId img) const = 0;

  // Live-instance reference counting on `host` (one AddRef per granted
  // instance, one ReleaseRef per eviction/OOM).  An image with zero refs
  // is cached-but-unreferenced: reclaimable under pressure.
  virtual void AddRef(size_t host, DepImageId img) = 0;
  virtual void ReleaseRef(size_t host, DepImageId img) = 0;
  virtual uint64_t RefCount(size_t host, DepImageId img) const = 0;

  // Content residency: `host` holds the image bytes warm (first cold
  // start completed there).  PopulatedElsewhere is the cold-IO-skip
  // signal — some OTHER host can serve the bytes at wire speed.
  virtual void MarkPopulated(size_t host, DepImageId img) = 0;
  virtual bool Populated(size_t host, DepImageId img) const = 0;
  virtual bool PopulatedElsewhere(size_t host, DepImageId img) const = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_DEP_REGISTRY_H_
