// The narrow surface a host runtime sees of the per-function snapshot
// registry (REAP-style record-and-prefetch, Ustiugov et al.).
//
// A snapshot image is the touched-page set of one function's first fully
// warmed boot: the dependency-file pages it faulted plus the anonymous
// heap it touched through its first execution.  Subsequent cold starts
// restore that working set as ONE bulk prefetch (priced by the CostModel's
// snapshot terms) instead of serial demand faults, and a driver that can
// exploit the recording commits only working-set-sized memory for the
// restored instance (ReclaimDriver::RestoredCommitment).
//
// Layering mirrors DepImageRegistry/DepCache: src/faas/ sees only this
// interface; the concrete registry (src/snapshot/snapshot_store.h) lives
// outside the host.  A runtime without an attached registry — every
// locked sweep, and any driver whose SnapshotRestoreSupported() is false
// — behaves bit-identically to before the registry existed.
#ifndef SQUEEZY_FAAS_SNAPSHOT_REGISTRY_H_
#define SQUEEZY_FAAS_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <string>

namespace squeezy {

using SnapshotId = int32_t;
inline constexpr SnapshotId kNoSnapshot = -1;

// The recorded working set of one function's first fully warmed boot.
struct SnapshotImage {
  uint64_t working_set_pages = 0;  // deps_pages + heap pages, total prefetch.
  uint64_t deps_pages = 0;         // Dependency-file pages in the recording.
  uint64_t heap_bytes = 0;         // Anonymous bytes touched through first exec.
};

class SnapshotRegistry {
 public:
  virtual ~SnapshotRegistry() = default;

  // Interns `key` (spec name + sizes) as a snapshot slot.  Idempotent;
  // cluster-wide: one recording serves every host's restores.
  virtual SnapshotId Intern(const std::string& key) = 0;

  // Whether a valid recording exists (false before the first record and
  // after an Invalidate, until re-recorded).
  virtual bool Recorded(SnapshotId snap) const = 0;
  virtual SnapshotImage Image(SnapshotId snap) const = 0;
  // Recorded anonymous working-set bytes of `snap`, or 0 when no valid
  // recording exists (safe on unrecorded slots, unlike Image()).  This is
  // the migration-sizing query: the portion of a migrating replica's warm
  // state a destination can restore from the recording instead of
  // receiving over the wire (ReplicaMigrationState::recorded_bytes).
  virtual uint64_t RecordedHeapBytes(SnapshotId snap) const = 0;

  // Records the working set observed at first fully-warm idle.  A no-op
  // while a valid recording exists (record-once); after an Invalidate the
  // next call re-records.  Returns true when the recording was taken.
  virtual bool Record(SnapshotId snap, const SnapshotImage& image) = 0;
  // Drops the recording (stale working set); restores stop until the next
  // Record.
  virtual void Invalidate(SnapshotId snap) = 0;

  // --- Restore accounting + stale-recording policy --------------------------------
  // One restore happened: `prefetch_bytes` were bulk-prefetched,
  // `deps_bytes_zeroed` of the deps portion were skipped because the
  // cluster dependency cache already holds the image.
  virtual void NoteRestore(SnapshotId snap, uint64_t prefetch_bytes,
                           uint64_t deps_bytes_zeroed) = 0;
  // Post-restore demand-fault tail of one restored instance (bytes the
  // recording did NOT cover).  Returns true when the tail exceeded the
  // registry's staleness threshold and the recording was invalidated —
  // the caller's next fully-warm idle re-records (the workload shifted).
  virtual bool NoteTail(SnapshotId snap, uint64_t tail_bytes) = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_SNAPSHOT_REGISTRY_H_
