#include "src/faas/function.h"

namespace squeezy {

FunctionSpec HtmlSpec() {
  FunctionSpec s;
  s.name = "Html";
  s.vcpu_shares = 0.25;
  s.memory_limit = MiB(768);
  s.anon_working_set = MiB(240);
  s.file_deps_bytes = MiB(260);
  s.container_init_cpu = Msec(550);
  s.function_init_cpu = Msec(650);
  s.exec_cpu_mean = Msec(140);
  s.exec_cv = 0.25;
  s.rootfs_fraction = 0.35;  // Web stacks are rootfs-heavy.
  s.init_anon_fraction = 0.55;
  s.exec_file_fraction = 0.06;
  return s;
}

FunctionSpec CnnSpec() {
  FunctionSpec s;
  s.name = "Cnn";
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(768);
  s.anon_working_set = MiB(340);
  s.file_deps_bytes = MiB(380);  // Framework + model weights.
  s.container_init_cpu = Msec(600);
  s.function_init_cpu = Msec(1150);
  s.exec_cpu_mean = Msec(450);
  s.exec_cv = 0.20;
  s.rootfs_fraction = 0.25;
  s.init_anon_fraction = 0.65;
  s.exec_file_fraction = 0.05;
  return s;
}

FunctionSpec BfsSpec() {
  FunctionSpec s;
  s.name = "BFS";
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(768);
  s.anon_working_set = MiB(520);  // Graph lives in anonymous memory.
  s.file_deps_bytes = MiB(140);
  s.container_init_cpu = Msec(560);
  s.function_init_cpu = Msec(480);
  s.exec_cpu_mean = Msec(750);
  s.exec_cv = 0.15;
  s.rootfs_fraction = 0.45;
  s.init_anon_fraction = 0.35;  // Most anon is the per-request graph.
  s.exec_file_fraction = 0.02;
  return s;
}

FunctionSpec BertSpec() {
  FunctionSpec s;
  s.name = "Bert";
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(1536);
  s.anon_working_set = MiB(620);
  s.file_deps_bytes = MiB(820);  // Large language-model weights.
  s.container_init_cpu = Msec(650);
  s.function_init_cpu = Msec(2350);
  s.exec_cpu_mean = Msec(850);
  s.exec_cv = 0.18;
  s.rootfs_fraction = 0.15;
  s.init_anon_fraction = 0.7;
  s.exec_file_fraction = 0.04;
  return s;
}

std::vector<FunctionSpec> PaperFunctions() {
  return {HtmlSpec(), CnnSpec(), BfsSpec(), BertSpec()};
}

}  // namespace squeezy
