// Host-side FaaS runtime (OpenWhisk-style, paper §4.2/§6.2).
//
// Owns the host memory book, the hypervisor, one N:1 VM per function and
// its in-VM agent.  Orchestrates memory elasticity:
//   * scale-up: admission against host memory, plug, then instance start;
//     under memory pressure scale-ups wait for scale-downs to free memory
//     (paper §6.2.2);
//   * scale-down: keep-alive eviction triggers unplug per the configured
//     reclamation policy.
//
// Policies:
//   kStatic     — over-provisioned VM, no plugging (the §6.2.1 baseline).
//   kVirtioMem  — vanilla virtio-mem unplug (migrations, timeouts).
//   kSqueezy    — partition-aware plug/unplug (this paper).
//   kHarvestOpts— virtio-mem + HarvestVM optimizations: per-VM slack
//                 buffers and proactive idle reclamation (paper §6.2.2).
#ifndef SQUEEZY_FAAS_RUNTIME_H_
#define SQUEEZY_FAAS_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/squeezy.h"
#include "src/faas/agent.h"
#include "src/faas/function.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace_gen.h"

namespace squeezy {

enum class ReclaimPolicy : uint8_t {
  kStatic,
  kVirtioMem,
  kSqueezy,
  kHarvestOpts,
};

const char* ReclaimPolicyName(ReclaimPolicy p);

struct RuntimeConfig {
  uint64_t host_capacity = GiB(256);
  ReclaimPolicy policy = ReclaimPolicy::kSqueezy;
  DurationNs keep_alive = Minutes(2);
  uint64_t seed = 1;
  uint64_t vm_base_memory = MiB(512);
  DurationNs unplug_timeout = Sec(5);
  // kStatic only: mark the over-provisioned VM's memory host-backed at
  // boot (a long-running warm VM).  Disable to watch the host footprint
  // grow to its high watermark (Fig 1).
  bool warm_static_backing = true;
  // Pressure check cadence (serves pending scale-ups, harvest proactive).
  DurationNs pressure_check_period = Sec(1);
  // HarvestVM-opts knobs (paper §6.2.2): slack instances kept plugged per
  // VM, and the free-memory fraction below which idle instances are
  // proactively reclaimed.
  uint32_t harvest_buffer_units = 2;
  double harvest_low_memory_frac = 0.12;
  // Cost model (copied; benches tweak fields before constructing).
  CostModel cost = CostModel::Default();
};

class FaasRuntime {
 public:
  // Standalone runtime: owns its own event queue.
  explicit FaasRuntime(const RuntimeConfig& config);
  // Cluster member: shares `events` with sibling hosts so one virtual
  // clock orders the whole fleet (src/cluster/).  `events` must outlive
  // the runtime.
  FaasRuntime(const RuntimeConfig& config, EventQueue* events);
  ~FaasRuntime();

  // Registers one N:1 VM hosting `spec` with concurrency factor N.
  // Returns the function index used by SubmitTrace.
  int AddFunction(const FunctionSpec& spec, uint32_t max_concurrency);

  // Host memory AddFunction would commit at boot for this VM (base RAM
  // plus the boot-time plug).  Cluster placement admission-checks a host
  // against this before registering a replica there.
  static uint64_t BootCommitment(const RuntimeConfig& config, const FunctionSpec& spec,
                                 uint32_t max_concurrency);

  // Schedules every invocation of the merged trace (Invocation::function
  // indexes functions in AddFunction order).
  void SubmitTrace(const std::vector<Invocation>& trace);

  void RunUntil(TimeNs t) { events_->RunUntil(t); }
  void RunAll() { events_->RunAll(); }

  // --- Accessors -----------------------------------------------------------------
  EventQueue& events() { return *events_; }
  HostMemory& host() { return host_; }
  const HostMemory& host() const { return host_; }
  Hypervisor& hypervisor() { return *hv_; }
  CpuAccountant& cpu() { return cpu_; }
  size_t function_count() const { return vms_.size(); }
  Agent& agent(int fn) { return *vms_[static_cast<size_t>(fn)]->agent; }
  const Agent& agent(int fn) const { return *vms_[static_cast<size_t>(fn)]->agent; }
  GuestKernel& guest(int fn) { return *vms_[static_cast<size_t>(fn)]->guest; }
  SqueezyManager* squeezy(int fn) { return vms_[static_cast<size_t>(fn)]->sqz.get(); }
  const FunctionSpec& spec(int fn) const { return vms_[static_cast<size_t>(fn)]->spec; }
  const RuntimeConfig& config() const { return config_; }

  // Reclamation throughput achieved by fn's VM so far (MiB/s); 0 if the VM
  // never unplugged (Fig 8).
  double ReclaimThroughputMiBps(int fn) const;
  // Pending (memory-starved) scale-up requests right now.
  size_t pending_scaleups() const { return pending_.size(); }
  // Scale-ups that ever had to wait for memory (cumulative; the fleet-level
  // starvation signal aggregated by src/metrics/fleet.*).
  uint64_t total_pending_scaleups() const { return pending_total_; }
  uint64_t total_unplug_failures() const { return unplug_incomplete_; }

  // --- Cluster introspection hooks -------------------------------------------------
  // Memory signals a cluster scheduler places against (committed is the
  // admission-control book, so it is the bin-packing quantity).
  uint64_t committed() const { return host_.committed(); }
  uint64_t host_capacity() const { return host_.capacity(); }
  // Whether one more invocation of fn can start without waiting on
  // reclamation: a warm instance is free, reusable plugged memory exists
  // (queued-unplug cancellation / spare from partial unplugs / harvest
  // slack), or the host can commit a fresh plug unit right now.
  bool CanAdmit(int fn) const;

 private:
  struct VmBundle {
    FunctionSpec spec;
    uint32_t max_concurrency = 0;
    uint64_t plug_unit = 0;  // Block-rounded memory limit.
    std::unique_ptr<GuestKernel> guest;
    std::unique_ptr<SqueezyManager> sqz;
    std::unique_ptr<Agent> agent;
    uint32_t buffer_units = 0;  // HarvestVM slack currently plugged+idle.
    // The single virtio-mem worker processes unplug requests serially;
    // queued requests start when the previous one finishes.  A scale-up
    // arriving while unplugs are queued cancels one and reuses its memory
    // directly (the runtime coordinates plug and recycle events, §4.2).
    TimeNs unplug_busy_until = 0;
    uint32_t queued_unplugs = 0;
    uint32_t cancelled_unplugs = 0;
    // Memory left plugged by timed-out/partial unplugs: still committed,
    // reused by the next scale-up of this VM without a new reservation
    // (the paper's "forced to use the maximum memory available").
    uint64_t spare_plugged = 0;
  };

  struct PendingScaleUp {
    int fn;
    std::function<void(DurationNs)> ready;
  };

  VmBundle& vm(int fn) { return *vms_[static_cast<size_t>(fn)]; }

  // Agent callbacks.
  void AcquireMemory(int fn, std::function<void(DurationNs)> ready);
  void ReleaseInstanceMemory(int fn);

  // Plugs `bytes` for fn and schedules `ready` at plug completion.
  // Pre-condition: the host reservation for `bytes` succeeded.
  void PlugAndGrant(int fn, uint64_t bytes, std::function<void(DurationNs)> ready);
  // Unplugs one unit from fn's VM; releases the host reservation at
  // completion.
  void StartUnplug(int fn);
  // Serves queued scale-ups that now fit (FIFO with skip).
  void TryServePending();
  // Evicts globally-oldest idle instances expected to free >= `needed`
  // bytes.  Returns the bytes expected from the evictions triggered.
  uint64_t MakeRoom(uint64_t needed);
  // Periodic: serve pending, harvest proactive reclaim / buffer refill.
  void PressureTick();

  RuntimeConfig config_;
  CostModel cost_;
  std::unique_ptr<EventQueue> owned_events_;  // Null when the queue is injected.
  EventQueue* events_;
  CpuAccountant cpu_;
  HostMemory host_;
  std::unique_ptr<Hypervisor> hv_;
  std::vector<std::unique_ptr<VmBundle>> vms_;
  std::deque<PendingScaleUp> pending_;
  uint64_t pending_total_ = 0;
  uint64_t unplug_incomplete_ = 0;
  bool tick_armed_ = false;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_RUNTIME_H_
