// Host-side FaaS runtime (OpenWhisk-style, paper §4.2/§6.2).
//
// Owns the host memory book, the hypervisor, one N:1 VM per function and
// its in-VM agent.  Orchestrates memory elasticity:
//   * scale-up: admission against host memory, plug, then instance start;
//     under memory pressure scale-ups wait for scale-downs to free memory
//     (paper §6.2.2);
//   * scale-down: keep-alive eviction triggers unplug per the configured
//     reclamation driver.
//
// Policy/mechanism split: the runtime is pure mechanism (commitment books,
// the per-VM virtio-mem worker queue, pending FIFO, idle reaping); WHAT
// happens on acquire/release/pressure is decided by a pluggable
// ReclaimDriver (src/policy/) resolved from RuntimeConfig::policy.
//
// Control plane: the runtime implements HostControl — a cluster scheduler
// reads one consistent Snapshot per decision and can drive
// ProactiveReclaim / Drain on this host (src/cluster/).
#ifndef SQUEEZY_FAAS_RUNTIME_H_
#define SQUEEZY_FAAS_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/squeezy.h"
#include "src/faas/agent.h"
#include "src/faas/dep_registry.h"
#include "src/faas/function.h"
#include "src/faas/host_control.h"
#include "src/faas/runtime_config.h"
#include "src/faas/snapshot_registry.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/policy/reclaim_driver.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace_gen.h"

namespace squeezy {

class FaasRuntime : public HostControl, private ReclaimHost {
 public:
  // Standalone runtime: owns its own event queue.
  explicit FaasRuntime(const RuntimeConfig& config);
  // Cluster member: shares `events` with sibling hosts so one virtual
  // clock orders the whole fleet (src/cluster/).  `events` must outlive
  // the runtime.
  FaasRuntime(const RuntimeConfig& config, EventQueue* events);
  ~FaasRuntime() override;

  // Attaches the cluster's shared dependency-image registry (the host is
  // `host_id` in it).  Must precede every AddFunction call.  Only takes
  // effect for drivers with SharedDepsSupported(): their deps_region is
  // then charged once per host per image, cold starts fetch peer-resident
  // images at wire speed instead of cold IO, and evicted residencies flow
  // their commitment back through the driver.
  void AttachDepRegistry(DepImageRegistry* registry, size_t host_id);

  // Attaches the cluster's snapshot registry (REAP-style record-and-
  // prefetch).  Must precede every AddFunction call.  Only takes effect
  // for drivers with SnapshotRestoreSupported(): their functions record
  // the touched working set at first fully-warm idle, later cold starts
  // restore it as one bulk prefetch, and each restored instance is
  // committed at the driver's RestoredCommitment() instead of a full plug
  // unit.  Other drivers stay bit-identical with the registry attached.
  void AttachSnapshotRegistry(SnapshotRegistry* registry);

  // Registers one N:1 VM hosting `spec` with concurrency factor N.
  // Returns the function index used by SubmitTrace.
  int AddFunction(const FunctionSpec& spec, uint32_t max_concurrency);

  // Host memory AddFunction would commit at boot for this VM (base RAM
  // plus the boot-time plug).  Cluster placement admission-checks a host
  // against this before registering a replica there.
  static uint64_t BootCommitment(const RuntimeConfig& config, const FunctionSpec& spec,
                                 uint32_t max_concurrency);

  // Schedules every invocation of the merged trace (Invocation::function
  // indexes functions in AddFunction order).
  void SubmitTrace(const std::vector<Invocation>& trace);

  void RunUntil(TimeNs t) { events_->RunUntil(t); }
  void RunAll() { events_->RunAll(); }

  // --- Accessors -----------------------------------------------------------------
  EventQueue& events() override { return *events_; }
  HostMemory& host() { return host_; }
  const HostMemory& host() const { return host_; }
  Hypervisor& hypervisor() { return *hv_; }
  CpuAccountant& cpu() { return cpu_; }
  size_t function_count() const { return vms_.size(); }
  Agent& agent(int fn) { return *vms_[static_cast<size_t>(fn)]->agent; }
  const Agent& agent(int fn) const { return *vms_[static_cast<size_t>(fn)]->agent; }
  GuestKernel& guest(int fn) override { return *vms_[static_cast<size_t>(fn)]->guest; }
  const GuestKernel& guest(int fn) const { return *vms_[static_cast<size_t>(fn)]->guest; }
  SqueezyManager* squeezy(int fn) { return vms_[static_cast<size_t>(fn)]->sqz.get(); }
  const FunctionSpec& spec(int fn) const { return vms_[static_cast<size_t>(fn)]->spec; }
  const RuntimeConfig& config() const { return config_; }
  const ReclaimDriver& driver() const { return *driver_; }
  // The registered dependency image of fn's VM (kNoDepImage without an
  // attached registry / sharing driver).
  DepImageId dep_image(int fn) const { return vms_[static_cast<size_t>(fn)]->dep_image; }
  // The registered snapshot slot of fn's VM (kNoSnapshot without an
  // attached registry / restore-capable driver).
  SnapshotId snapshot_id(int fn) const { return vms_[static_cast<size_t>(fn)]->snapshot; }

  // Reclamation throughput achieved by fn's VM so far (MiB/s); 0 if the VM
  // never unplugged (Fig 8).
  double ReclaimThroughputMiBps(int fn) const;
  // Pending (memory-starved) scale-up requests right now.
  size_t pending_scaleups() const { return pending_.size(); }
  // Scale-ups that ever had to wait for memory (cumulative; the fleet-level
  // starvation signal aggregated by src/metrics/fleet.*).
  uint64_t total_pending_scaleups() const { return pending_total_; }
  uint64_t total_unplug_failures() const { return unplug_incomplete_; }
  // ProactiveReclaim calls received from the control plane (co-design
  // observability: did the scheduler's hints actually fire?).
  uint64_t total_proactive_reclaims() const { return proactive_reclaims_; }

  // --- Cluster introspection hooks -------------------------------------------------
  // Memory signals a cluster scheduler places against (committed is the
  // admission-control book, so it is the bin-packing quantity).
  uint64_t committed() const { return host_.committed(); }
  uint64_t host_capacity() const { return host_.capacity(); }
  // Whether one more invocation of fn can start without waiting on
  // reclamation: a warm instance is free, reusable plugged memory exists
  // (queued-unplug cancellation / spare from partial unplugs / harvest
  // slack), or the host can commit a fresh plug unit right now.  Always
  // false while draining.
  bool CanAdmit(int fn) const;
  bool draining() const override { return draining_; }

  // --- HostControl (the cluster-facing control plane) ------------------------------
  using HostControl::Snapshot;
  HostSnapshot Snapshot(int local_fn) const override;
  // Narrow single-field reads: direct O(1) mirrors of the Snapshot fields
  // the indexed placement path still checks live per decision.
  bool CanAdmitNow(int local_fn) const override {
    return local_fn >= 0 && CanAdmit(local_fn);
  }
  bool DepImagePopulated(int local_fn) const override;
  bool SnapshotRestorableFor(int local_fn) const override;
  size_t RestoresInFlight() const override { return restores_in_flight(); }
  // Subscribes the cluster's state listener; fires one delta per change
  // of committed/pending/draining from then on (NotifyHostState at the
  // books' choke points plus the HostMemory commit observer).
  void AttachStateListener(HostStateListener* listener, size_t host_id) override;
  uint64_t ProactiveReclaim(uint64_t bytes) override;
  void Drain() override;
  void Undrain() override;
  // Migration source: captures fn's warm idle state and evicts those
  // instances, so their commitment flows back through the active reclaim
  // driver (a Squeezy donor frees memory at Squeezy speed).
  ReplicaMigrationState EvictReplica(int local_fn) override;
  // How many of `wanted` warm instances could be adopted right now:
  // concurrency headroom, then plug units payable from the driver's
  // reusable plugged pool plus free commitment (same books AdoptReplica
  // consumes, without mutating them).
  size_t AdoptableReplicas(int local_fn, size_t wanted) const override;
  // Migration destination: re-creates up to state.warm_instances warm
  // instances, each sized through the normal fresh-instance admission
  // check (no warm-reuse shortcut — adoption always needs new memory).
  // Returns the number actually admitted.
  size_t AdoptReplica(int local_fn, const ReplicaMigrationState& state,
                      TimeNs available_at) override;
  // Warm instances adopted from migrations so far (destination side).
  uint64_t total_adopted_instances() const { return adopted_instances_; }
  // Migration landing: the wire transfer delivered fn's dependency image
  // — materialize it into the VM's page cache (new host frames) and
  // record the population.  No-op when no registry/image is attached or
  // the residency was evicted while the transfer was in flight.
  void MaterializeImage(int local_fn);

 private:
  struct VmBundle {
    FunctionSpec spec;
    uint32_t max_concurrency = 0;
    uint64_t plug_unit = 0;    // Block-rounded memory limit.
    uint64_t deps_region = 0;  // Block-rounded dependency image size.
    DepImageId dep_image = kNoDepImage;  // Registry image (sharing drivers only).
    SnapshotId snapshot = kNoSnapshot;   // Snapshot slot (restore-capable drivers).
    // Plugged-but-unreserved bytes from snapshot-restored grants (each
    // fresh plug is one full unit, its reservation only the restored
    // commitment); unwound against unplug completions so the book never
    // over-releases.
    uint64_t snapshot_unreserved = 0;
    std::unique_ptr<GuestKernel> guest;
    std::unique_ptr<SqueezyManager> sqz;
    std::unique_ptr<Agent> agent;
    // The single virtio-mem worker processes unplug requests serially;
    // queued requests start when the previous one finishes.  A scale-up
    // arriving while unplugs are queued cancels one and reuses its memory
    // directly (the runtime coordinates plug and recycle events, §4.2).
    TimeNs unplug_busy_until = 0;
    uint32_t queued_unplugs = 0;
    uint32_t cancelled_unplugs = 0;
    // Memory left plugged by timed-out/partial unplugs: still committed,
    // reused by the next scale-up of this VM without a new reservation
    // (the paper's "forced to use the maximum memory available").
    uint64_t spare_plugged = 0;
  };

  struct PendingScaleUp {
    int fn;
    std::function<void(DurationNs)> ready;
  };

  VmBundle& vm(int fn) { return *vms_[static_cast<size_t>(fn)]; }

  // --- ReclaimHost: mechanism primitives lent to the driver ------------------------
  HostMemory& memory() override { return host_; }
  size_t vm_count() const override { return vms_.size(); }
  uint64_t plug_unit(int fn) const override {
    return vms_[static_cast<size_t>(fn)]->plug_unit;
  }
  uint64_t spare_plugged(int fn) const override {
    return vms_[static_cast<size_t>(fn)]->spare_plugged;
  }
  uint64_t FreshReserveBytes(int fn) const override;
  void NoteUnreservedPlug(int fn, uint64_t shortfall) override;
  uint64_t TakeSpare(int fn, uint64_t max_bytes) override;
  void AddSpare(int fn, uint64_t bytes) override;
  bool HasCancellableUnplug(int fn) const override;
  bool TryCancelQueuedUnplug(int fn) override;
  // Plugs `bytes` for fn and schedules `ready` at plug completion.
  // Pre-condition: the host reservation for `bytes` succeeded.
  void PlugAndGrant(int fn, uint64_t bytes,
                    std::function<void(DurationNs)> ready) override;
  // Unplugs one unit from fn's VM; releases the host reservation at
  // completion.
  void StartUnplug(int fn) override;
  void EnqueuePending(int fn, std::function<void(DurationNs)> ready) override;
  void ArmPressureTick() override;
  // Serves queued scale-ups that now fit (FIFO with skip).
  void TryServePending() override;
  bool PendingEmpty() const override { return pending_.empty(); }
  uint64_t PendingPlugBytes() const override;
  // Evicts globally-oldest idle instances expected to free >= `needed`
  // bytes.  Returns the bytes expected from the evictions triggered.
  uint64_t MakeRoom(uint64_t needed) override;
  size_t ReapAllIdle() override;

  // Whether a NEW instance of fn could secure its plug unit right now
  // (pre-plugged, reusable plugged memory, or free commitment headroom) —
  // CanAdmit minus the warm-reuse shortcut; the adoption admission check.
  bool HasMemoryForFresh(int fn) const;

  // --- Shared dependency images (attached registry only) ----------------------------
  // Instance memory front door: ensures fn's image residency is charged
  // (re-pinning an evicted image, or parking the scale-up until the
  // charge fits), counts image references at grant time, and adopts a
  // host-resident image straight into a cold VM's page cache.  Falls
  // through to the driver untouched when fn has no registered image.
  void AcquireInstanceMemory(int fn, std::function<void(DurationNs)> ready);
  void ReleaseInstanceMemory(int fn);
  // Commitment fn's image still needs on this host (deps_region when the
  // image is registered but not resident; 0 otherwise).
  uint64_t ImageChargeNeeded(int fn) const;
  // Re-establishes fn's image residency for a charge the caller has
  // already reserved on the host book.
  void ChargeImage(int fn, uint64_t image_bytes);
  // Grant-time tail: AddRef + sibling-cache adoption, then `ready`.
  void OnInstanceGranted(int fn, DurationNs vmm_latency,
                         const std::function<void(DurationNs)>& ready);
  void MarkImagePopulatedIfWarm(int fn);
  // Drops zero-reference image residencies while draining or starved;
  // their commitment flows back through the driver (OnImageEvict).
  void MaybeEvictImages();

  // --- Snapshot record/restore (attached registry only) -----------------------------
  // Records fn's snapshot at the first fully-warm idle after no valid
  // recording exists (first boot, or after a staleness invalidation).
  void MaybeRecordSnapshot(int fn);
  // Cold-start front door: bulk-prefetches the recorded working set into
  // the fresh process (deps portion zeroed when the dep cache holds the
  // image) and prices it with the cost model's snapshot terms.  Returns
  // restored == false when no valid recording exists.
  SnapshotRestorePlan TryRestoreSnapshot(int fn, Pid pid);
  // Staleness signal from a restored instance's first execution.
  void NoteRestoreTail(int fn, uint64_t tail_bytes);
  // One bulk-prefetch channel per host: concurrent RestoreWorkingSet
  // transfers (cold-start restores and migration landings) serialize.
  // Reserves the channel for `busy` time starting now; returns the
  // queueing delay before this transfer can begin (0 when free).
  DurationNs ReserveRestoreChannel(DurationNs busy);
  // Restores still occupying or queued on the channel right now (the
  // planner's destination-contention penalty signal).
  size_t restores_in_flight() const;

  // Periodic tick bodies, driven by the coalesced per-host repeating
  // timers below (one persistent closure each, re-armed in place).  The
  // return value is the timer contract: keep firing while work remains.
  bool PressureTick();
  // Drain loop: reap newly-idle instances until the host is empty.
  bool DrainTick();
  bool AnyLiveInstances() const;

  // Pushes the current (committed, pending, draining) triple to the
  // attached state listener.  Called at every choke point that mutates
  // one of the three books: the HostMemory commit observer, the
  // pending-queue push/erase, and Drain/Undrain.
  void NotifyHostState();

  RuntimeConfig config_;
  CostModel cost_;
  std::unique_ptr<EventQueue> owned_events_;  // Null when the queue is injected.
  EventQueue* events_;
  CpuAccountant cpu_;
  HostMemory host_;
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<ReclaimDriver> driver_;
  DepImageRegistry* dep_registry_ = nullptr;  // Null outside a dep-cache cluster.
  size_t host_id_ = 0;                        // This host's index in the registry.
  SnapshotRegistry* snap_registry_ = nullptr;  // Null outside a snapshot cluster.
  std::vector<std::unique_ptr<VmBundle>> vms_;
  std::deque<PendingScaleUp> pending_;
  uint64_t pending_total_ = 0;
  uint64_t unplug_incomplete_ = 0;
  uint64_t proactive_reclaims_ = 0;
  uint64_t adopted_instances_ = 0;
  // Restore-channel book: the instant the channel next frees, plus the
  // end instants of reserved transfers (pruned lazily) backing the
  // restores_in_flight count.
  TimeNs restore_busy_until_ = 0;
  std::vector<TimeNs> restore_ends_;
  bool draining_ = false;
  HostStateListener* state_listener_ = nullptr;  // Null outside a cluster.
  size_t listener_host_ = 0;  // This host's index at the listener.
  // Per-host periodic work, coalesced: each timer owns its closure once
  // and re-arms in place every pressure_check_period instead of
  // scheduling a fresh closure per tick per host (the fleet-scale event
  // churn the timer wheel exists to absorb).
  RepeatingTimer pressure_timer_;
  RepeatingTimer drain_timer_;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_RUNTIME_H_
