// The 1:1 (single-container-per-microVM) model, paper §6.3.
//
// Every function instance gets its own microVM: scale-up boots a fresh VM
// (cold page cache, cold host backing), scale-down shuts one down and
// releases its whole footprint instantly.  This is the AWS-Lambda-style
// baseline Squeezy's N:1 elasticity is compared against in Fig 11.
#ifndef SQUEEZY_FAAS_MICROVM_H_
#define SQUEEZY_FAAS_MICROVM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/faas/agent.h"
#include "src/faas/function.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/sim/event_queue.h"

namespace squeezy {

struct MicroVmPoolConfig {
  DurationNs keep_alive = Minutes(2);
  uint64_t seed = 1;
};

class MicroVmPool {
 public:
  MicroVmPool(EventQueue* events, Hypervisor* hv, HostMemory* host, FunctionSpec spec,
              const MicroVmPoolConfig& config);

  // One invocation: reuses a warm microVM or boots a new one.
  void Submit();

  // --- Metrics -----------------------------------------------------------------
  // Per-cold-start breakdowns (vmm = boot latency).
  std::vector<ColdStartBreakdown> ColdStarts() const;
  LatencyRecorder Latencies() const;
  // Host-populated bytes of the i-th microVM (per-instance footprint,
  // Fig 11b).  Meaningful after its first request completed.
  uint64_t InstanceFootprint(size_t i) const;
  size_t vm_count() const { return vms_.size(); }
  size_t live_vms() const;
  uint64_t boots() const { return boots_; }
  uint64_t shutdowns() const { return shutdowns_; }

 private:
  struct MicroVm {
    VmId vm_id = -1;
    std::unique_ptr<GuestKernel> guest;
    std::unique_ptr<Agent> agent;
    bool alive = true;
    uint64_t committed = 0;
    uint64_t peak_populated = 0;  // Captured before shutdown releases it.
  };

  void BootNewVm();

  EventQueue* events_;
  Hypervisor* hv_;
  HostMemory* host_;
  FunctionSpec spec_;
  MicroVmPoolConfig config_;
  std::vector<std::unique_ptr<MicroVm>> vms_;
  uint64_t boots_ = 0;
  uint64_t shutdowns_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_MICROVM_H_
