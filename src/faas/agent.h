// The in-VM dispatcher ("Agent", paper §4.2/§6.2).
//
// Receives invocations for one function, reuses idle instances
// (keep-alive), spawns new instances on demand (cold start), evicts idle
// ones when the keep-alive window expires, and shares the VM's vCPUs
// among running work using a processor-sharing model.  Kernel threads
// (the virtio-mem worker migrating pages during unplug) register their
// demand here, which is how unplug interference reaches request latency
// (paper Fig 9).
#ifndef SQUEEZY_FAAS_AGENT_H_
#define SQUEEZY_FAAS_AGENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/squeezy.h"
#include "src/faas/function.h"
#include "src/guest/guest_kernel.h"
#include "src/metrics/latency_recorder.h"
#include "src/metrics/time_series.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace squeezy {

struct ColdStartBreakdown {
  DurationNs vmm = 0;             // Plug latency (N:1) or microVM boot (1:1).
  DurationNs container_init = 0;  // Sandbox setup (wall, incl. contention).
  DurationNs function_init = 0;   // Runtime/model init.
  DurationNs first_exec = 0;      // First request execution.

  DurationNs total() const { return vmm + container_init + function_init + first_exec; }
};

struct RequestRecord {
  TimeNs arrival = 0;
  TimeNs done = 0;
  bool cold = false;

  DurationNs latency() const { return done - arrival; }
};

enum class InstanceState : uint8_t {
  kWaitingMemory,  // Scale-up admitted, waiting for plug/boot.
  kColdStart,      // Running container/function init.
  kIdle,
  kBusy,
  kEvicted,
};

struct AgentConfig {
  uint32_t max_concurrency = 8;       // N of the N:1 VM.
  uint32_t vcpus = 8;
  DurationNs keep_alive = Minutes(2); // Paper §6.2: 2-minute window.
  bool use_squeezy = false;           // Assign instances to Squeezy partitions.
};

// The runtime's answer to a snapshot-restore attempt at cold-start time.
struct SnapshotRestorePlan {
  bool restored = false;     // A recording existed and was bulk-prefetched.
  bool oom = false;          // Restore allocation failed; process OOM-killed.
  DurationNs latency = 0;    // Fixed + prefetch + bulk-populate time.
  uint64_t heap_bytes = 0;   // Anonymous bytes the restore already touched.
};

// Runtime-side hooks: memory acquisition/release crosses the VM boundary.
struct AgentCallbacks {
  // Secure memory for one new instance (admission + plug).  Must invoke
  // `ready(vmm_latency)` once the memory is available — possibly much
  // later under host memory pressure.
  std::function<void(std::function<void(DurationNs)> ready)> acquire_memory;
  // An instance was evicted and its process exited; reclaim its memory.
  std::function<void()> release_memory;
  // Optional: an instance went idle (cold start or request just
  // finished).  The runtime uses it to observe that the VM's dependency
  // image is now fully faulted (cluster dep-cache population signal) and
  // to record the function's snapshot at first fully-warm idle.
  std::function<void()> instance_idle;
  // Optional (snapshot registry attached): attempt a REAP-style restore
  // for the cold-starting process — the runtime maps the recorded working
  // set and returns the bulk-prefetch latency, replacing the serial
  // container/function-init phases.  restored == false falls back to them.
  std::function<SnapshotRestorePlan(Pid)> try_restore;
  // Optional: a restored instance finished its first execution having
  // demand-faulted `tail_bytes` outside the recording (the staleness
  // signal the registry's re-record policy consumes).
  std::function<void(uint64_t tail_bytes)> restore_tail;
  // Optional: reserve the host's single restore-prefetch channel for
  // `busy` time starting now; returns the queueing delay before this
  // transfer can begin (0 when the channel is free).  Concurrent
  // RestoreWorkingSet bulk prefetches on one host — migration landings
  // and cold-start restores — serialize through it.
  std::function<DurationNs(DurationNs busy)> restore_channel;
};

class Agent {
 public:
  Agent(EventQueue* events, GuestKernel* guest, SqueezyManager* sqz, FunctionSpec spec,
        const AgentConfig& config, AgentCallbacks callbacks, uint64_t seed);

  // One invocation arriving now.
  void Submit();

  // Registers kernel-thread CPU demand (e.g. the virtio-mem worker doing
  // unplug migrations) for `duration` starting now: running requests slow
  // down proportionally.
  void AddKernelInterference(DurationNs duration);

  // Evicts the longest-idle instance immediately (proactive reclamation /
  // memory pressure).  Returns false if no instance is idle.
  bool EvictOldestIdle();

  // --- Live migration (replica state capture / restore) ---------------------------
  // Warm state of every idle instance: how many there are and the
  // anonymous bytes they had touched (fully-warmed instances count their
  // whole working set).  fully_warm counts the instances past their first
  // execution — the ones whose state a cluster snapshot recording covers,
  // which is what the snapshot-hit migration path sizes its recorded
  // portion from.
  struct WarmCapture {
    size_t instances = 0;
    size_t fully_warm = 0;
    uint64_t anon_bytes = 0;
  };
  // Captures the warm state and evicts those instances in one step
  // (migration source path); each eviction releases memory through the
  // normal release callback, so the commitment flows back at the host's
  // reclaim-driver speed.  Busy instances are untouched.
  WarmCapture CaptureAndEvictIdle();
  // Re-creates one warm instance from migrated state (destination path):
  // memory is acquired through the normal admission path, `anon_bytes` of
  // transferred state are faulted back in, and the instance goes idle
  // with its first execution already done — no cold-start phases — no
  // earlier than `available_at` (the state-transfer completion instant).
  // On a snapshot-hit transfer `recorded_bytes` of the state did NOT
  // cross the wire: they are bulk-restored from the cluster snapshot
  // store (GuestKernel::RestoreWorkingSet — one nested populate) while
  // `anon_bytes` holds only the shipped delta; 0 keeps the pre-snapshot
  // demand-fault path bit-identical.
  void AdoptWarmInstance(uint64_t anon_bytes, uint64_t recorded_bytes,
                         TimeNs available_at);
  void AdoptWarmInstance(uint64_t anon_bytes, TimeNs available_at) {
    AdoptWarmInstance(anon_bytes, 0, available_at);
  }

  // Idle-since time of the longest-idle instance, or -1 if none is idle.
  TimeNs OldestIdleSince() const;

  // --- Introspection ------------------------------------------------------------
  size_t idle_instances() const;
  size_t busy_instances() const;
  size_t live_instances() const;  // idle + busy + starting.
  // Instances whose memory grant landed (cold-starting, idle or busy) —
  // the population the dep-cache image refcount tracks; excludes spawns
  // still waiting on memory.
  size_t memory_granted_instances() const;
  size_t queued_requests() const { return queue_.size(); }
  const FunctionSpec& spec() const { return spec_; }
  const AgentConfig& config() const { return config_; }
  // The shared dependency file backing this VM's page-cache image.
  int32_t deps_file() const { return deps_file_; }
  // Largest anonymous footprint among fully warmed instances (first exec
  // done), or 0 when none is — what a snapshot recording captures as the
  // function's heap working set.
  uint64_t MaxWarmAnonBytes() const;

  // --- Metrics --------------------------------------------------------------------
  const std::vector<RequestRecord>& requests() const { return records_; }
  LatencyRecorder& latencies() { return latencies_; }
  const LatencyRecorder& latencies() const { return latencies_; }
  const std::vector<ColdStartBreakdown>& cold_starts() const { return cold_starts_; }
  const StepSeries& instance_series() const { return instance_series_; }
  uint64_t total_evictions() const { return evictions_; }
  uint64_t total_spawns() const { return spawns_; }

 private:
  struct Instance {
    int32_t id = -1;
    InstanceState state = InstanceState::kWaitingMemory;
    Pid pid = kNoPid;
    TimeNs idle_since = 0;
    EventId keepalive_event = kInvalidEventId;
    ColdStartBreakdown cold;
    bool first_exec_done = false;
    bool restored = false;  // Cold start served from a snapshot recording.
    uint64_t anon_touched = 0;
  };

  struct WorkItem {
    double share = 1.0;    // vCPU demand while running.
    double remaining = 0;  // Seconds of wall-work left at rate 1.
    TimeNs last_update = 0;
    EventId completion = kInvalidEventId;
    std::function<void()> on_done;
  };

  // --- Scheduler -----------------------------------------------------------------
  // Current progress rate for instance work: min(1, cpus_left / demand).
  double CurrentRate() const;
  // Applies the current rate to every item's remaining work and cancels
  // their pending completion events (call before any demand change).
  void UpdateProgressAndCancel();
  // Schedules fresh completion events under the current rate.
  void RescheduleAll();
  uint64_t StartWork(double share, DurationNs work, std::function<void()> on_done);
  void CompleteWork(uint64_t id);

  // --- Lifecycle -----------------------------------------------------------------
  void MaybeSpawn();
  void OnMemoryReady(int32_t instance_id, DurationNs vmm_latency);
  void RunColdPhases(int32_t instance_id);
  void BecomeIdle(int32_t instance_id);
  void DispatchQueue();
  void StartExec(int32_t instance_id, TimeNs arrival);
  void ScheduleKeepAlive(int32_t instance_id);
  void Evict(int32_t instance_id);
  void RestoreWarmState(int32_t instance_id, uint64_t anon_bytes,
                        uint64_t recorded_bytes, TimeNs available_at);

  Instance& instance(int32_t id) { return *instances_[static_cast<size_t>(id)]; }

  EventQueue* events_;
  GuestKernel* guest_;
  SqueezyManager* sqz_;  // Null for vanilla / static VMs.
  FunctionSpec spec_;
  AgentConfig config_;
  AgentCallbacks callbacks_;
  Rng rng_;
  int32_t deps_file_ = -1;

  std::vector<std::unique_ptr<Instance>> instances_;
  std::deque<TimeNs> queue_;  // Arrival times of waiting requests.
  size_t spawning_ = 0;

  // Processor-sharing state.
  std::map<uint64_t, WorkItem> work_;
  uint64_t next_work_id_ = 1;
  double instance_demand_ = 0;  // Sum of shares of running work items.
  int kernel_threads_busy_ = 0;

  // Metrics.
  std::vector<RequestRecord> records_;
  LatencyRecorder latencies_;
  std::vector<ColdStartBreakdown> cold_starts_;
  StepSeries instance_series_;
  uint64_t evictions_ = 0;
  uint64_t spawns_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_AGENT_H_
