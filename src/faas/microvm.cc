#include "src/faas/microvm.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

MicroVmPool::MicroVmPool(EventQueue* events, Hypervisor* hv, HostMemory* host, FunctionSpec spec,
                         const MicroVmPoolConfig& config)
    : events_(events), hv_(hv), host_(host), spec_(std::move(spec)), config_(config) {
  assert(events_ != nullptr && hv_ != nullptr && host_ != nullptr);
}

void MicroVmPool::Submit() {
  // Reuse a warm microVM if one idles.
  for (auto& mv : vms_) {
    if (mv->alive && mv->agent->idle_instances() > 0) {
      mv->agent->Submit();
      return;
    }
  }
  BootNewVm();
}

void MicroVmPool::BootNewVm() {
  const size_t index = vms_.size();
  auto mv = std::make_unique<MicroVm>();

  // The microVM is provisioned with exactly the function's memory limit
  // plus the guest OS base (paper §6.3: "minimum memory required").
  GuestConfig gcfg;
  gcfg.name = spec_.name + "-uvm" + std::to_string(index);
  gcfg.vcpus = 1;
  gcfg.base_memory =
      (BytesToBlocks(spec_.memory_limit) + BytesToBlocks(hv_->cost().microvm_base_footprint) +
       BytesToBlocks(spec_.file_deps_bytes)) *
      kMemoryBlockBytes;
  gcfg.hotplug_region = kMemoryBlockBytes;  // Unused; device wants >= 1 block.
  gcfg.seed = config_.seed + index * 7919;
  gcfg.boot_time = events_->now();
  mv->guest = std::make_unique<GuestKernel>(gcfg, hv_);
  mv->committed = gcfg.base_memory + gcfg.hotplug_region;
  const bool ok = host_->TryReserve(mv->committed, events_->now());
  assert(ok && "Fig 11 experiments run with abundant host memory");
  (void)ok;

  AgentConfig acfg;
  acfg.max_concurrency = 1;  // 1:1 model by definition.
  acfg.vcpus = 1;
  acfg.keep_alive = config_.keep_alive;
  acfg.use_squeezy = false;

  AgentCallbacks callbacks;
  // Scale-up memory acquisition == booting the microVM.
  callbacks.acquire_memory = [this](std::function<void(DurationNs)> ready) {
    const DurationNs boot = hv_->cost().microvm_boot;
    ++boots_;
    events_->ScheduleAfter(boot, [ready = std::move(ready), boot] { ready(boot); });
  };
  // Scale-down == VM shutdown: the whole footprint is released at once
  // (the 1:1 model's resource-agility advantage, §2.1).
  callbacks.release_memory = [this, index] {
    MicroVm& dead = *vms_[index];
    dead.alive = false;
    dead.peak_populated = hv_->stats(dead.vm_id).populated_bytes;
    ++shutdowns_;
    events_->ScheduleAfter(hv_->cost().microvm_shutdown, [this, index] {
      MicroVm& m = *vms_[index];
      hv_->ReleaseAllPopulated(m.guest->vm_id(), events_->now());
      host_->ReleaseReservation(m.committed, events_->now());
    });
  };

  // The per-VM FaaS agent + runtime daemons occupy memory beyond the
  // kernel's own tax — state the N:1 model would share across instances.
  const Pid daemon = mv->guest->CreateProcess();
  const uint64_t kernel_tax = PagesToBytes(mv->guest->normal_zone().allocated_pages());
  if (hv_->cost().microvm_base_footprint > kernel_tax) {
    mv->guest->TouchAnon(daemon, hv_->cost().microvm_base_footprint - kernel_tax,
                         events_->now());
  }

  mv->agent = std::make_unique<Agent>(events_, mv->guest.get(), nullptr, spec_, acfg,
                                      std::move(callbacks), gcfg.seed ^ 0x10afULL);
  mv->vm_id = mv->guest->vm_id();
  vms_.push_back(std::move(mv));
  vms_.back()->agent->Submit();
}

std::vector<ColdStartBreakdown> MicroVmPool::ColdStarts() const {
  std::vector<ColdStartBreakdown> out;
  for (const auto& mv : vms_) {
    for (const ColdStartBreakdown& c : mv->agent->cold_starts()) {
      out.push_back(c);
    }
  }
  return out;
}

LatencyRecorder MicroVmPool::Latencies() const {
  LatencyRecorder rec;
  for (const auto& mv : vms_) {
    for (const RequestRecord& r : mv->agent->requests()) {
      rec.Record(r.latency());
    }
  }
  return rec;
}

uint64_t MicroVmPool::InstanceFootprint(size_t i) const {
  const MicroVm& mv = *vms_[i];
  return std::max(mv.peak_populated, hv_->stats(mv.vm_id).populated_bytes);
}

size_t MicroVmPool::live_vms() const {
  size_t n = 0;
  for (const auto& mv : vms_) {
    n += mv->alive;
  }
  return n;
}

}  // namespace squeezy
