#include "src/faas/agent.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

Agent::Agent(EventQueue* events, GuestKernel* guest, SqueezyManager* sqz, FunctionSpec spec,
             const AgentConfig& config, AgentCallbacks callbacks, uint64_t seed)
    : events_(events),
      guest_(guest),
      sqz_(sqz),
      spec_(std::move(spec)),
      config_(config),
      callbacks_(std::move(callbacks)),
      rng_(seed) {
  assert(events_ != nullptr && guest_ != nullptr);
  assert(!config_.use_squeezy || sqz_ != nullptr);
  deps_file_ = guest_->CreateFile(spec_.name + "-deps", spec_.file_deps_bytes);
}

// --- Processor-sharing scheduler ---------------------------------------------

double Agent::CurrentRate() const {
  if (instance_demand_ <= 0) {
    return 1.0;
  }
  // Kernel threads preempt instance work: they run at full priority, so
  // instances share what is left of the vCPUs.
  const double available =
      std::max(0.05, static_cast<double>(config_.vcpus) - kernel_threads_busy_);
  return std::min(1.0, available / instance_demand_);
}

void Agent::UpdateProgressAndCancel() {
  const double rate = CurrentRate();
  const TimeNs now = events_->now();
  for (auto& [id, item] : work_) {
    (void)id;
    item.remaining -= ToSec(now - item.last_update) * rate;
    if (item.remaining < 0) {
      item.remaining = 0;
    }
    item.last_update = now;
    if (item.completion != kInvalidEventId) {
      events_->Cancel(item.completion);
      item.completion = kInvalidEventId;
    }
  }
}

void Agent::RescheduleAll() {
  const double rate = CurrentRate();
  for (auto& [id, item] : work_) {
    assert(item.completion == kInvalidEventId);
    const DurationNs eta = Sec(item.remaining / rate);
    const uint64_t wid = id;
    item.completion = events_->ScheduleAfter(std::max<DurationNs>(eta, 0),
                                             [this, wid] { CompleteWork(wid); });
  }
}

uint64_t Agent::StartWork(double share, DurationNs work, std::function<void()> on_done) {
  UpdateProgressAndCancel();
  const uint64_t id = next_work_id_++;
  WorkItem item;
  item.share = share;
  item.remaining = ToSec(std::max<DurationNs>(work, 0));
  item.last_update = events_->now();
  item.on_done = std::move(on_done);
  work_.emplace(id, std::move(item));
  instance_demand_ += share;
  RescheduleAll();
  return id;
}

void Agent::CompleteWork(uint64_t id) {
  auto it = work_.find(id);
  assert(it != work_.end());
  it->second.completion = kInvalidEventId;  // Our event just fired.
  UpdateProgressAndCancel();
  std::function<void()> on_done = std::move(it->second.on_done);
  instance_demand_ -= it->second.share;
  if (instance_demand_ < 1e-12) {
    instance_demand_ = 0;
  }
  work_.erase(it);
  RescheduleAll();
  on_done();
}

void Agent::AddKernelInterference(DurationNs duration) {
  if (duration <= 0) {
    return;
  }
  UpdateProgressAndCancel();
  ++kernel_threads_busy_;
  RescheduleAll();
  events_->ScheduleAfter(duration, [this] {
    UpdateProgressAndCancel();
    --kernel_threads_busy_;
    RescheduleAll();
  });
}

// --- Instance lifecycle -----------------------------------------------------------

size_t Agent::idle_instances() const {
  size_t n = 0;
  for (const auto& inst : instances_) {
    n += (inst->state == InstanceState::kIdle);
  }
  return n;
}

size_t Agent::busy_instances() const {
  size_t n = 0;
  for (const auto& inst : instances_) {
    n += (inst->state == InstanceState::kBusy);
  }
  return n;
}

size_t Agent::live_instances() const {
  size_t n = 0;
  for (const auto& inst : instances_) {
    n += (inst->state != InstanceState::kEvicted);
  }
  return n;
}

size_t Agent::memory_granted_instances() const {
  size_t n = 0;
  for (const auto& inst : instances_) {
    n += (inst->state == InstanceState::kColdStart || inst->state == InstanceState::kIdle ||
          inst->state == InstanceState::kBusy);
  }
  return n;
}

void Agent::Submit() {
  queue_.push_back(events_->now());
  DispatchQueue();
  MaybeSpawn();
}

void Agent::MaybeSpawn() {
  while (spawning_ < queue_.size() && live_instances() < config_.max_concurrency) {
    const int32_t id = static_cast<int32_t>(instances_.size());
    instances_.push_back(std::make_unique<Instance>());
    instance(id).id = id;
    instance(id).state = InstanceState::kWaitingMemory;
    ++spawning_;
    ++spawns_;
    instance_series_.Push(events_->now(), static_cast<double>(live_instances()));
    // Ask the host runtime for memory (admission + plug); the reply may
    // arrive much later when host memory is scarce.
    callbacks_.acquire_memory(
        [this, id](DurationNs vmm_latency) { OnMemoryReady(id, vmm_latency); });
  }
}

void Agent::OnMemoryReady(int32_t instance_id, DurationNs vmm_latency) {
  Instance& inst = instance(instance_id);
  assert(inst.state == InstanceState::kWaitingMemory);
  inst.cold.vmm = vmm_latency;
  inst.state = InstanceState::kColdStart;
  inst.pid = guest_->CreateProcess();
  guest_->process(inst.pid).MapFile(deps_file_);
  if (config_.use_squeezy) {
    // The syscall interface: park on the waitqueue if the plug has not
    // populated a partition yet (§4.1).  The runtime couples plug events
    // with spawns, so in practice this fires immediately.
    sqz_->SqueezyEnableAsync(inst.pid, [this, instance_id](int32_t) {
      RunColdPhases(instance_id);
    });
  } else {
    RunColdPhases(instance_id);
  }
}

void Agent::RunColdPhases(int32_t instance_id) {
  Instance& inst = instance(instance_id);
  if (callbacks_.try_restore) {
    const SnapshotRestorePlan plan = callbacks_.try_restore(inst.pid);
    if (plan.oom) {
      inst.state = InstanceState::kEvicted;
      assert(spawning_ > 0);
      --spawning_;
      callbacks_.release_memory();
      MaybeSpawn();
      return;
    }
    if (plan.restored) {
      // Snapshot restore replaces the serial container/function-init
      // phases with one bulk prefetch; the first execution still runs
      // cold and demand-faults whatever the recording missed (the tail).
      inst.restored = true;
      inst.anon_touched = plan.heap_bytes;
      const TimeNs restore_start = events_->now();
      StartWork(1.0, plan.latency, [this, instance_id, restore_start] {
        Instance& i = instance(instance_id);
        i.cold.function_init = events_->now() - restore_start;
        assert(spawning_ > 0);
        --spawning_;
        BecomeIdle(instance_id);
      });
      return;
    }
  }
  const TimeNs container_start = events_->now();

  // Container init: sandbox setup + rootfs reads.  In the N:1 model the
  // rootfs is usually already in the shared guest page cache — that is
  // where the paper's 1.33x container-init speedup comes from.
  const uint64_t rootfs_bytes =
      static_cast<uint64_t>(static_cast<double>(spec_.file_deps_bytes) * spec_.rootfs_fraction);
  const TouchResult rootfs = guest_->TouchFile(inst.pid, deps_file_, rootfs_bytes, container_start);
  StartWork(1.0, spec_.container_init_cpu + rootfs.latency, [this, instance_id, container_start] {
    Instance& i = instance(instance_id);
    i.cold.container_init = events_->now() - container_start;

    // Function init: language runtime + model load + initial anon faults.
    const TimeNs init_start = events_->now();
    const TouchResult deps = guest_->TouchFile(i.pid, deps_file_, spec_.file_deps_bytes, init_start);
    const uint64_t init_anon = static_cast<uint64_t>(
        static_cast<double>(spec_.anon_working_set) * spec_.init_anon_fraction);
    const TouchResult anon = guest_->TouchAnon(i.pid, init_anon, init_start);
    if (anon.oom) {
      // The instance blew its partition / the VM: reap it.
      i.state = InstanceState::kEvicted;
      assert(spawning_ > 0);
      --spawning_;
      callbacks_.release_memory();
      MaybeSpawn();
      return;
    }
    i.anon_touched = anon.bytes;
    StartWork(1.0, spec_.function_init_cpu + deps.latency + anon.latency,
              [this, instance_id, init_start] {
                Instance& j = instance(instance_id);
                j.cold.function_init = events_->now() - init_start;
                assert(spawning_ > 0);
                --spawning_;
                BecomeIdle(instance_id);
              });
  });
}

void Agent::BecomeIdle(int32_t instance_id) {
  Instance& inst = instance(instance_id);
  inst.state = InstanceState::kIdle;
  inst.idle_since = events_->now();
  ScheduleKeepAlive(instance_id);
  instance_series_.Push(events_->now(), static_cast<double>(live_instances()));
  if (callbacks_.instance_idle) {
    callbacks_.instance_idle();
  }
  DispatchQueue();
}

void Agent::DispatchQueue() {
  while (!queue_.empty()) {
    // Most recently idled instance first (warm caches).
    int32_t best = -1;
    for (const auto& inst : instances_) {
      if (inst->state == InstanceState::kIdle &&
          (best < 0 || inst->idle_since > instance(best).idle_since)) {
        best = inst->id;
      }
    }
    if (best < 0) {
      return;
    }
    const TimeNs arrival = queue_.front();
    queue_.pop_front();
    StartExec(best, arrival);
  }
}

void Agent::StartExec(int32_t instance_id, TimeNs arrival) {
  Instance& inst = instance(instance_id);
  assert(inst.state == InstanceState::kIdle);
  if (inst.keepalive_event != kInvalidEventId) {
    events_->Cancel(inst.keepalive_event);
    inst.keepalive_event = kInvalidEventId;
  }
  inst.state = InstanceState::kBusy;

  const TimeNs exec_start = events_->now();
  DurationNs work = static_cast<DurationNs>(
      rng_.LogNormal(static_cast<double>(spec_.exec_cpu_mean), spec_.exec_cv));
  const bool cold = !inst.first_exec_done;
  if (cold) {
    // First execution touches the rest of the anonymous working set (an
    // oversized stale recording can exceed it; nothing is left then).
    const uint64_t rest = spec_.anon_working_set > inst.anon_touched
                              ? spec_.anon_working_set - inst.anon_touched
                              : 0;
    const TouchResult anon = guest_->TouchAnon(inst.pid, rest, exec_start);
    if (anon.oom) {
      inst.state = InstanceState::kEvicted;
      callbacks_.release_memory();
      return;
    }
    work += anon.latency;
    if (inst.restored && callbacks_.restore_tail) {
      // Everything demand-faulted past the recording is staleness signal.
      callbacks_.restore_tail(anon.bytes);
    }
  }
  // Hot-path file pages re-read per request (cached: remap cost only).
  const uint64_t exec_file = static_cast<uint64_t>(
      static_cast<double>(spec_.file_deps_bytes) * spec_.exec_file_fraction);
  work += guest_->TouchFile(inst.pid, deps_file_, exec_file, exec_start).latency;

  StartWork(spec_.vcpu_shares, work, [this, instance_id, arrival, exec_start, cold] {
    Instance& i = instance(instance_id);
    RequestRecord rec;
    rec.arrival = arrival;
    rec.done = events_->now();
    rec.cold = cold;
    records_.push_back(rec);
    latencies_.Record(rec.latency());
    if (cold) {
      i.first_exec_done = true;
      i.cold.first_exec = events_->now() - exec_start;
      cold_starts_.push_back(i.cold);
    }
    BecomeIdle(instance_id);
  });
}

void Agent::ScheduleKeepAlive(int32_t instance_id) {
  Instance& inst = instance(instance_id);
  inst.keepalive_event = events_->ScheduleAfter(config_.keep_alive, [this, instance_id] {
    Instance& i = instance(instance_id);
    i.keepalive_event = kInvalidEventId;
    if (i.state == InstanceState::kIdle) {
      Evict(instance_id);
    }
  });
}

void Agent::Evict(int32_t instance_id) {
  Instance& inst = instance(instance_id);
  assert(inst.state == InstanceState::kIdle);
  if (inst.keepalive_event != kInvalidEventId) {
    events_->Cancel(inst.keepalive_event);
    inst.keepalive_event = kInvalidEventId;
  }
  guest_->Exit(inst.pid);
  inst.state = InstanceState::kEvicted;
  ++evictions_;
  instance_series_.Push(events_->now(), static_cast<double>(live_instances()));
  callbacks_.release_memory();
}

Agent::WarmCapture Agent::CaptureAndEvictIdle() {
  WarmCapture cap;
  for (const auto& inst : instances_) {
    if (inst->state != InstanceState::kIdle) {
      continue;
    }
    ++cap.instances;
    // A fully-warmed instance's transferable state is its whole working
    // set; one still in its first lifetime has only touched the init part.
    if (inst->first_exec_done) {
      ++cap.fully_warm;
      cap.anon_bytes += spec_.anon_working_set;
    } else {
      cap.anon_bytes += inst->anon_touched;
    }
  }
  while (EvictOldestIdle()) {
  }
  return cap;
}

void Agent::AdoptWarmInstance(uint64_t anon_bytes, uint64_t recorded_bytes,
                              TimeNs available_at) {
  const int32_t id = static_cast<int32_t>(instances_.size());
  instances_.push_back(std::make_unique<Instance>());
  instance(id).id = id;
  instance(id).state = InstanceState::kWaitingMemory;
  ++spawns_;
  instance_series_.Push(events_->now(), static_cast<double>(live_instances()));
  callbacks_.acquire_memory(
      [this, id, anon_bytes, recorded_bytes, available_at](DurationNs vmm_latency) {
        Instance& inst = instance(id);
        assert(inst.state == InstanceState::kWaitingMemory);
        inst.cold.vmm = vmm_latency;
        inst.state = InstanceState::kColdStart;  // Transient: restoring state.
        inst.pid = guest_->CreateProcess();
        guest_->process(inst.pid).MapFile(deps_file_);
        if (config_.use_squeezy) {
          sqz_->SqueezyEnableAsync(
              inst.pid,
              [this, id, anon_bytes, recorded_bytes, available_at](int32_t) {
                RestoreWarmState(id, anon_bytes, recorded_bytes, available_at);
              });
        } else {
          RestoreWarmState(id, anon_bytes, recorded_bytes, available_at);
        }
      });
}

void Agent::RestoreWarmState(int32_t instance_id, uint64_t anon_bytes,
                             uint64_t recorded_bytes, TimeNs available_at) {
  Instance& inst = instance(instance_id);
  // Snapshot-hit arrival: the recorded portion never crossed the wire —
  // bulk-restore it from the cluster snapshot store (one nested populate,
  // no per-page demand faults).  Zero outside the snapshot path, keeping
  // the plain migration landing bit-identical.
  uint64_t restored_bytes = 0;
  DurationNs restore_latency = 0;
  if (recorded_bytes > 0) {
    const RestoreOutcome rest = guest_->RestoreWorkingSet(
        inst.pid, deps_file_, /*file_pages=*/0, recorded_bytes, events_->now());
    if (rest.oom) {
      inst.state = InstanceState::kEvicted;
      instance_series_.Push(events_->now(), static_cast<double>(live_instances()));
      callbacks_.release_memory();
      return;
    }
    restored_bytes = rest.anon_bytes;
    restore_latency = rest.nested;
    // The bulk populate rides the host's single restore channel: when
    // several snapshot-hit migrations land in the same window, each waits
    // out the transfers queued ahead of it.
    if (callbacks_.restore_channel) {
      restore_latency += callbacks_.restore_channel(rest.nested);
    }
  }
  // Fault the transferred anonymous state back in; dependency pages come
  // through the shared guest page cache as for any instance.
  const TouchResult anon = guest_->TouchAnon(inst.pid, anon_bytes, events_->now());
  if (anon.oom) {
    inst.state = InstanceState::kEvicted;
    instance_series_.Push(events_->now(), static_cast<double>(live_instances()));
    callbacks_.release_memory();
    return;
  }
  inst.anon_touched = restored_bytes + anon.bytes;
  inst.first_exec_done = true;  // Warm: the next request is NOT a cold start.
  const TimeNs ready =
      std::max(events_->now() + restore_latency + anon.latency, available_at);
  events_->ScheduleAt(ready, [this, instance_id] { BecomeIdle(instance_id); });
}

uint64_t Agent::MaxWarmAnonBytes() const {
  // A fully warmed instance has touched its whole working set (same
  // convention as CaptureAndEvictIdle); one mid-first-lifetime has not
  // finished faulting and is not a recordable state.
  for (const auto& inst : instances_) {
    if (inst->state != InstanceState::kEvicted && inst->first_exec_done) {
      return spec_.anon_working_set;
    }
  }
  return 0;
}

TimeNs Agent::OldestIdleSince() const {
  TimeNs best = -1;
  for (const auto& inst : instances_) {
    if (inst->state == InstanceState::kIdle && (best < 0 || inst->idle_since < best)) {
      best = inst->idle_since;
    }
  }
  return best;
}

bool Agent::EvictOldestIdle() {
  int32_t oldest = -1;
  for (const auto& inst : instances_) {
    if (inst->state == InstanceState::kIdle &&
        (oldest < 0 || inst->idle_since < instance(oldest).idle_since)) {
      oldest = inst->id;
    }
  }
  if (oldest < 0) {
    return false;
  }
  Evict(oldest);
  return true;
}

}  // namespace squeezy
