// Serverless function specifications (paper Table 1).
#ifndef SQUEEZY_FAAS_FUNCTION_H_
#define SQUEEZY_FAAS_FUNCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/time.h"

namespace squeezy {

// One function's resource limits and execution profile.  CPU times are
// wall-clock on an uncontended vCPU; the agent's scheduler stretches them
// under contention.  Memory/IO costs (page faults, dependency reads) are
// charged by the guest kernel on top.
struct FunctionSpec {
  std::string name;
  double vcpu_shares = 1.0;           // Table 1.
  uint64_t memory_limit = MiB(768);   // Table 1; Squeezy partition rated size.

  uint64_t anon_working_set = MiB(300);  // Anonymous bytes an instance touches.
  uint64_t file_deps_bytes = MiB(200);   // Container rootfs + runtime + models.

  DurationNs container_init_cpu = Msec(600);  // Sandbox setup CPU time.
  DurationNs function_init_cpu = Msec(800);   // Runtime/model initialization.
  DurationNs exec_cpu_mean = Msec(300);       // Warm request execution.
  double exec_cv = 0.20;                      // Lognormal CV of exec time.

  // Fraction of file deps read during container init (rootfs); the rest is
  // read during function init (runtime, models).
  double rootfs_fraction = 0.25;
  // Fraction of the anonymous working set faulted during function init;
  // the rest is touched on the first request execution.
  double init_anon_fraction = 0.6;
  // Fraction of file deps re-read per request (hot path pages).
  double exec_file_fraction = 0.05;
};

// The paper's evaluation functions (Table 1): one FunctionBench workload
// (CNN) and three real-world functions (HTML, BFS, Bert).  Profiles are
// calibrated so cold-start totals and footprints land in the ranges of
// Fig 11; memory limits and vCPU shares are verbatim from Table 1.
FunctionSpec HtmlSpec();  // Web service:       0.25 vCPU, 768 MiB, file-heavy.
FunctionSpec CnnSpec();   // JPEG classify:     1.0 vCPU, 768 MiB, model file + anon.
FunctionSpec BfsSpec();   // Breadth-first:     1.0 vCPU, 768 MiB, anon-heavy.
FunctionSpec BertSpec();  // ML inference:      1.0 vCPU, 1536 MiB, biggest deps.

// All four, in the paper's column order.
std::vector<FunctionSpec> PaperFunctions();

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_FUNCTION_H_
