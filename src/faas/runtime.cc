#include "src/faas/runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/policy/driver_factory.h"

namespace squeezy {
namespace {

DriverSizing SizingFor(const FunctionSpec& spec, uint32_t max_concurrency) {
  DriverSizing s;
  s.plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  s.deps_region = BytesToBlocks(spec.file_deps_bytes) * kMemoryBlockBytes;
  s.max_concurrency = max_concurrency;
  return s;
}

}  // namespace

FaasRuntime::FaasRuntime(const RuntimeConfig& config)
    : FaasRuntime(config, nullptr) {}

FaasRuntime::FaasRuntime(const RuntimeConfig& config, EventQueue* events)
    : config_(config),
      cost_(config.cost),
      owned_events_(events ? nullptr : std::make_unique<EventQueue>()),
      events_(events ? events : owned_events_.get()),
      cpu_(Sec(1)),
      host_(config.host_capacity),
      driver_(MakeReclaimDriver(config)),
      pressure_timer_(events_, config.pressure_check_period,
                      [this] { return PressureTick(); }),
      drain_timer_(events_, config.pressure_check_period,
                   [this] { return DrainTick(); }) {
  hv_ = std::make_unique<Hypervisor>(&host_, &cost_, &cpu_);
  driver_->Bind(this);
}

FaasRuntime::~FaasRuntime() = default;

uint64_t FaasRuntime::BootCommitment(const RuntimeConfig& config, const FunctionSpec& spec,
                                     uint32_t max_concurrency) {
  // A throwaway unbound driver: sizing hooks are pure functions of
  // (config, spec), usable before any runtime exists.  Placement checks
  // against the full (undeduped) commitment; a host joining an
  // already-resident image commits less at registration.
  return MakeReclaimDriver(config)->BootCommitment(SizingFor(spec, max_concurrency));
}

void FaasRuntime::AttachDepRegistry(DepImageRegistry* registry, size_t host_id) {
  assert(vms_.empty() && "attach the registry before any AddFunction");
  dep_registry_ = registry;
  host_id_ = host_id;
}

void FaasRuntime::AttachSnapshotRegistry(SnapshotRegistry* registry) {
  assert(vms_.empty() && "attach the registry before any AddFunction");
  snap_registry_ = registry;
}

int FaasRuntime::AddFunction(const FunctionSpec& spec, uint32_t max_concurrency) {
  const int fn = static_cast<int>(vms_.size());
  auto bundle = std::make_unique<VmBundle>();
  bundle->spec = spec;
  bundle->max_concurrency = max_concurrency;
  const DriverSizing sizing = SizingFor(spec, max_concurrency);
  bundle->plug_unit = sizing.plug_unit;

  GuestConfig gcfg;
  gcfg.name = spec.name;
  gcfg.vcpus = static_cast<uint32_t>(
      std::max(1.0, std::ceil(spec.vcpu_shares * static_cast<double>(max_concurrency))));
  gcfg.base_memory = config_.vm_base_memory;
  gcfg.seed = config_.seed * 977 + static_cast<uint64_t>(fn) * 131;
  gcfg.unplug_timeout = config_.unplug_timeout;
  gcfg.shuffle_allocator = true;
  gcfg.hotplug_region = driver_->HotplugRegionBytes(sizing);

  bundle->guest = std::make_unique<GuestKernel>(gcfg, hv_.get(), &cpu_);
  if (driver_->UsesSqueezy()) {
    SqueezyConfig scfg;
    scfg.partition_bytes = sizing.plug_unit;
    scfg.nr_partitions = max_concurrency;
    scfg.shared_bytes = sizing.deps_region;
    assert(scfg.region_bytes() == gcfg.hotplug_region);
    // Plugs the shared partition at boot.
    bundle->sqz = std::make_unique<SqueezyManager>(bundle->guest.get(), scfg);
  }
  bundle->deps_region = sizing.deps_region;
  vms_.push_back(std::move(bundle));

  // Host commitment at boot: base RAM plus the driver's boot-time plug
  // (everything for static VMs, shared partition / dependency cache for
  // the dynamic drivers).
  driver_->OnVmBoot(fn, gcfg.hotplug_region, sizing.deps_region);
  uint64_t boot_commit = driver_->BootCommitment(sizing);
  if (dep_registry_ != nullptr && driver_->SharedDepsSupported() && sizing.deps_region > 0) {
    // Cluster dep cache: the read-only dependency image is charged once
    // per host per image — a VM joining an already-resident image skips
    // its deps share of the boot commitment.
    const DepImageId img = dep_registry_->Intern(
        spec.name + "/" + std::to_string(spec.file_deps_bytes), sizing.deps_region);
    vm(fn).dep_image = img;
    const bool already = dep_registry_->PinImage(host_id_, img);
    driver_->OnImageResident(fn, sizing.deps_region, already);
    if (already) {
      assert(boot_commit >= sizing.deps_region);
      boot_commit -= sizing.deps_region;
    }
  }
  if (snap_registry_ != nullptr && driver_->SnapshotRestoreSupported()) {
    // Snapshot slots are cluster-global (content-addressed files on
    // shared storage): the first host to warm the function records, every
    // host restores.  Keyed by sizes too, so distinct workloads under one
    // name never share a recording.
    vm(fn).snapshot = snap_registry_->Intern(spec.name + "/" +
                                             std::to_string(spec.file_deps_bytes) + "/" +
                                             std::to_string(spec.anon_working_set));
  }
  const bool reserved = host_.TryReserve(boot_commit, 0);
  assert(reserved && "host must fit the boot-time footprint of every VM");
  (void)reserved;

  AgentConfig acfg;
  acfg.max_concurrency = max_concurrency;
  acfg.vcpus = gcfg.vcpus;
  acfg.keep_alive = config_.keep_alive;
  acfg.use_squeezy = driver_->UsesSqueezy();
  AgentCallbacks callbacks;
  callbacks.acquire_memory = [this, fn](std::function<void(DurationNs)> ready) {
    AcquireInstanceMemory(fn, std::move(ready));
  };
  callbacks.release_memory = [this, fn] { ReleaseInstanceMemory(fn); };
  if (vm(fn).dep_image != kNoDepImage || vm(fn).snapshot != kNoSnapshot) {
    // Population signal: the first idle transition follows the cold
    // start that faulted the whole image in — peers can fetch it now.
    // The same transition is the snapshot recording point: a fully
    // warmed instance exists exactly when its working set is observable.
    callbacks.instance_idle = [this, fn] {
      if (vm(fn).dep_image != kNoDepImage) {
        MarkImagePopulatedIfWarm(fn);
      }
      MaybeRecordSnapshot(fn);
    };
  }
  if (vm(fn).snapshot != kNoSnapshot) {
    callbacks.try_restore = [this, fn](Pid pid) { return TryRestoreSnapshot(fn, pid); };
    callbacks.restore_tail = [this, fn](uint64_t tail) { NoteRestoreTail(fn, tail); };
    callbacks.restore_channel = [this](DurationNs busy) {
      return ReserveRestoreChannel(busy);
    };
  }
  VmBundle& b = vm(fn);
  b.agent = std::make_unique<Agent>(events_, b.guest.get(), b.sqz.get(), spec, acfg,
                                    std::move(callbacks), gcfg.seed ^ 0x5eedULL);
  if (b.dep_image != kNoDepImage) {
    // Cold misses on the deps file ask the live registry at fault time:
    // wire speed exactly while some peer holds the image warm, cold
    // backing-store IO otherwise — the answer can never go stale.
    b.guest->page_cache().SetBackingResolver(b.agent->deps_file(), [this, fn]() -> DurationNs {
      const VmBundle& v = *vms_[static_cast<size_t>(fn)];
      return dep_registry_->PopulatedElsewhere(host_id_, v.dep_image)
                 ? cost_.dep_fetch_byte_x1000
                 : -1;
    });
  }
  return fn;
}

void FaasRuntime::SubmitTrace(const std::vector<Invocation>& trace) {
  for (const Invocation& inv : trace) {
    const int fn = inv.function;
    assert(fn >= 0 && static_cast<size_t>(fn) < vms_.size());
    events_->ScheduleAt(inv.at, [this, fn] { agent(fn).Submit(); });
  }
}

// --- Shared dependency images ------------------------------------------------------

uint64_t FaasRuntime::ImageChargeNeeded(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  if (dep_registry_ == nullptr || b.dep_image == kNoDepImage ||
      dep_registry_->Resident(host_id_, b.dep_image)) {
    return 0;
  }
  return b.deps_region;
}

void FaasRuntime::ChargeImage(int fn, uint64_t image_bytes) {
  dep_registry_->PinImage(host_id_, vm(fn).dep_image);
  driver_->OnImageResident(fn, image_bytes, false);
}

void FaasRuntime::AcquireInstanceMemory(int fn, std::function<void(DurationNs)> ready) {
  VmBundle& b = vm(fn);
  if (b.dep_image == kNoDepImage) {
    driver_->Acquire(fn, std::move(ready));
    return;
  }
  MarkImagePopulatedIfWarm(fn);
  // Grant-time tail: count the image reference and adopt a host-resident
  // copy into this VM's cold page cache.
  std::function<void(DurationNs)> wrapped =
      [this, fn, cb = std::move(ready)](DurationNs vmm_latency) {
        OnInstanceGranted(fn, vmm_latency, cb);
      };
  const uint64_t image_need = ImageChargeNeeded(fn);
  if (image_need > 0) {
    // The image was evicted; its commitment must be back on the book
    // before any instance can map it.
    if (host_.TryReserve(image_need, events_->now())) {
      ChargeImage(fn, image_need);
    } else {
      // Park the whole scale-up: TryServePending re-charges image + plug
      // unit together once reclamation frees room.
      EnqueuePending(fn, std::move(wrapped));
      MakeRoom(b.plug_unit + image_need);
      ArmPressureTick();
      return;
    }
  }
  driver_->Acquire(fn, std::move(wrapped));
}

void FaasRuntime::OnInstanceGranted(int fn, DurationNs vmm_latency,
                                    const std::function<void(DurationNs)>& ready) {
  VmBundle& b = vm(fn);
  assert(dep_registry_->Resident(host_id_, b.dep_image) &&
         "a referenced image cannot have been evicted");
  dep_registry_->AddRef(host_id_, b.dep_image);
  DurationNs adopt_latency = 0;
  const int32_t file = b.agent->deps_file();
  PageCache& pc = b.guest->page_cache();
  if (dep_registry_->Populated(host_id_, b.dep_image) &&
      pc.cached_pages(file) < pc.FilePages(file)) {
    // The host already holds the image warm (a sibling VM, or bytes a
    // migration shipped here): map it into this VM's page cache — no
    // backing read, no new host frames.
    adopt_latency = b.guest->AdoptFileCache(file, events_->now()).latency;
  }
  ready(vmm_latency + adopt_latency);
}

void FaasRuntime::ReleaseInstanceMemory(int fn) {
  VmBundle& b = vm(fn);
  if (b.dep_image == kNoDepImage) {
    driver_->Release(fn);
    return;
  }
  MarkImagePopulatedIfWarm(fn);
  dep_registry_->ReleaseRef(host_id_, b.dep_image);
  driver_->Release(fn);
  MaybeEvictImages();
}

void FaasRuntime::MaterializeImage(int local_fn) {
  VmBundle& b = vm(local_fn);
  if (dep_registry_ == nullptr || b.dep_image == kNoDepImage ||
      !dep_registry_->Resident(host_id_, b.dep_image)) {
    return;  // Evicted while the transfer was in flight: bytes dropped.
  }
  b.guest->AdoptFileCache(b.agent->deps_file(), events_->now(), /*populate_host=*/true);
  dep_registry_->MarkPopulated(host_id_, b.dep_image);
}

void FaasRuntime::MarkImagePopulatedIfWarm(int fn) {
  VmBundle& b = vm(fn);
  if (dep_registry_->Populated(host_id_, b.dep_image)) {
    return;
  }
  const int32_t file = b.agent->deps_file();
  const PageCache& pc = b.guest->page_cache();
  if (pc.cached_pages(file) == pc.FilePages(file)) {
    dep_registry_->MarkPopulated(host_id_, b.dep_image);
  }
}

void FaasRuntime::MaybeEvictImages() {
  if (dep_registry_ == nullptr) {
    return;
  }
  if (!draining_ && pending_.empty()) {
    return;  // Images are evicted under drain or memory pressure only.
  }
  for (size_t i = 0; i < vms_.size(); ++i) {
    const DepImageId img = vms_[i]->dep_image;
    if (img == kNoDepImage || !dep_registry_->Resident(host_id_, img) ||
        dep_registry_->RefCount(host_id_, img) != 0) {
      continue;
    }
    // An in-flight grant (spawn waiting on memory, parked scale-up,
    // adopted replica mid-transfer) will reference the image: keep it.
    bool grant_in_flight = false;
    for (const auto& b : vms_) {
      if (b->dep_image == img &&
          b->agent->live_instances() != b->agent->memory_granted_instances()) {
        grant_in_flight = true;
        break;
      }
    }
    if (grant_in_flight) {
      continue;
    }
    // Release the residency: every pinned VM drops its cached image pages
    // (guest pages freed, host backing madvised away), and the charged
    // commitment flows back through the active driver.
    const uint64_t charged = dep_registry_->EvictImage(host_id_, img);
    for (const auto& b : vms_) {
      if (b->dep_image == img) {
        b->guest->DropFileCache(b->agent->deps_file(), events_->now());
      }
    }
    driver_->OnImageEvict(static_cast<int>(i), charged);
  }
}

// --- Snapshot record/restore -------------------------------------------------------

void FaasRuntime::MaybeRecordSnapshot(int fn) {
  VmBundle& b = vm(fn);
  if (snap_registry_ == nullptr || b.snapshot == kNoSnapshot ||
      snap_registry_->Recorded(b.snapshot)) {
    return;
  }
  const uint64_t heap = b.agent->MaxWarmAnonBytes();
  if (heap == 0) {
    return;  // No fully warmed instance yet; nothing recordable.
  }
  const PageCache& pc = b.guest->page_cache();
  SnapshotImage img;
  img.deps_pages = pc.cached_pages(b.agent->deps_file());
  img.heap_bytes = heap;
  img.working_set_pages = img.deps_pages + BytesToPages(heap);
  snap_registry_->Record(b.snapshot, img);
}

SnapshotRestorePlan FaasRuntime::TryRestoreSnapshot(int fn, Pid pid) {
  SnapshotRestorePlan plan;
  VmBundle& b = vm(fn);
  if (snap_registry_ == nullptr || b.snapshot == kNoSnapshot ||
      !snap_registry_->Recorded(b.snapshot)) {
    return plan;  // Serial cold phases run.
  }
  const SnapshotImage img = snap_registry_->Image(b.snapshot);
  const RestoreOutcome out = b.guest->RestoreWorkingSet(
      pid, b.agent->deps_file(), img.deps_pages, img.heap_bytes, events_->now());
  if (out.oom) {
    plan.oom = true;
    return plan;
  }
  // The deps portion rides the snapshot prefetch only when nobody else
  // holds the image: a host-populated copy was already adopted at grant
  // time (out.file_bytes == 0 then), and a peer-resident one is served
  // through the dependency cache, not the snapshot file.
  uint64_t prefetch = out.file_bytes + out.anon_bytes;
  uint64_t deps_zeroed = 0;
  if (out.file_bytes > 0 && dep_registry_ != nullptr && b.dep_image != kNoDepImage &&
      (dep_registry_->Populated(host_id_, b.dep_image) ||
       dep_registry_->PopulatedElsewhere(host_id_, b.dep_image))) {
    deps_zeroed = out.file_bytes;
    prefetch -= deps_zeroed;
  }
  plan.restored = true;
  plan.heap_bytes = out.anon_bytes;
  // The prefetch + populate work occupies the host's single restore
  // channel; a restore landing while another is in flight queues behind
  // it, so concurrent bulk prefetches pay serialized (not overlapped)
  // transfer time.  With the channel free the delay is 0 and the latency
  // is exactly the pre-channel pricing.
  const DurationNs busy = cost_.SnapshotPrefetchBytes(prefetch) + out.nested;
  plan.latency = cost_.snapshot_restore_fixed + ReserveRestoreChannel(busy) + busy;
  snap_registry_->NoteRestore(b.snapshot, prefetch, deps_zeroed);
  return plan;
}

void FaasRuntime::NoteRestoreTail(int fn, uint64_t tail_bytes) {
  VmBundle& b = vm(fn);
  if (snap_registry_ == nullptr || b.snapshot == kNoSnapshot) {
    return;
  }
  // Above the threshold the registry invalidates; the next fully-warm
  // idle of this VM re-records the grown working set.
  snap_registry_->NoteTail(b.snapshot, tail_bytes);
}

DurationNs FaasRuntime::ReserveRestoreChannel(DurationNs busy) {
  const TimeNs now = events_->now();
  // Prune completed transfers so restores_in_flight stays a live count.
  restore_ends_.erase(std::remove_if(restore_ends_.begin(), restore_ends_.end(),
                                     [now](TimeNs end) { return end <= now; }),
                      restore_ends_.end());
  const TimeNs start = std::max(now, restore_busy_until_);
  restore_busy_until_ = start + busy;
  restore_ends_.push_back(restore_busy_until_);
  return start - now;
}

size_t FaasRuntime::restores_in_flight() const {
  const TimeNs now = events_->now();
  size_t live = 0;
  for (const TimeNs end : restore_ends_) {
    live += end > now ? 1 : 0;
  }
  return live;
}

// --- Mechanism primitives (ReclaimHost) --------------------------------------------

uint64_t FaasRuntime::FreshReserveBytes(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  if (snap_registry_ == nullptr || b.snapshot == kNoSnapshot ||
      !snap_registry_->Recorded(b.snapshot)) {
    return b.plug_unit;
  }
  DriverSizing s;
  s.plug_unit = b.plug_unit;
  s.deps_region = b.deps_region;
  s.max_concurrency = b.max_concurrency;
  const uint64_t heap = snap_registry_->Image(b.snapshot).heap_bytes;
  return std::min(b.plug_unit, driver_->RestoredCommitment(s, heap));
}

void FaasRuntime::NoteUnreservedPlug(int fn, uint64_t shortfall) {
  vm(fn).snapshot_unreserved += shortfall;
}

uint64_t FaasRuntime::TakeSpare(int fn, uint64_t max_bytes) {
  VmBundle& b = vm(fn);
  const uint64_t taken = std::min(b.spare_plugged, max_bytes);
  b.spare_plugged -= taken;
  return taken;
}

void FaasRuntime::AddSpare(int fn, uint64_t bytes) { vm(fn).spare_plugged += bytes; }

bool FaasRuntime::HasCancellableUnplug(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  return b.queued_unplugs > b.cancelled_unplugs;
}

bool FaasRuntime::TryCancelQueuedUnplug(int fn) {
  if (!HasCancellableUnplug(fn)) {
    return false;
  }
  ++vm(fn).cancelled_unplugs;
  return true;
}

void FaasRuntime::PlugAndGrant(int fn, uint64_t bytes, std::function<void(DurationNs)> ready) {
  VmBundle& b = vm(fn);
  const PlugOutcome out = b.guest->PlugMemory(bytes, events_->now());
  assert(out.complete && "device region must be sized for max concurrency");
  events_->ScheduleAfter(out.latency,
                        [ready = std::move(ready), lat = out.latency] { ready(lat); });
}

void FaasRuntime::StartUnplug(int fn) {
  VmBundle& b = vm(fn);
  // One virtio-mem worker per VM: requests issued while a previous unplug
  // is still migrating/offlining queue up behind it.
  if (events_->now() < b.unplug_busy_until) {
    ++b.queued_unplugs;
    events_->ScheduleAt(b.unplug_busy_until, [this, fn] {
      VmBundle& vb = vm(fn);
      --vb.queued_unplugs;
      if (vb.cancelled_unplugs > 0) {
        --vb.cancelled_unplugs;  // A scale-up already reused this memory.
        return;
      }
      StartUnplug(fn);
    });
    return;
  }
  const UnplugOutcome out = b.guest->UnplugMemory(b.plug_unit, events_->now());
  if (!out.complete) {
    ++unplug_incomplete_;
    // Squeezy: an "incomplete" unplug means the drained partition was
    // already re-assigned through the waitqueue (reuse-without-replug);
    // vanilla drivers bank the leftover as spare.  The driver decides.
    driver_->OnUnplugIncomplete(fn, b.plug_unit - out.bytes_unplugged);
  }
  b.unplug_busy_until = events_->now() + out.latency();
  // The virtio-mem worker's guest-side CPU time (migrations, zeroing)
  // competes with running instances (Fig 9).
  b.agent->AddKernelInterference(out.breakdown.total() - out.breakdown.vm_exits);
  const uint64_t released = out.bytes_unplugged;
  events_->ScheduleAfter(out.latency(), [this, fn, released] {
    // A snapshot-restored plug reserved less than the unit it plugged
    // (working-set-sized commitment); the shortfall pool absorbs the
    // un-reserved part of the release so the books never go negative.
    VmBundle& vb = vm(fn);
    const uint64_t take = std::min(vb.snapshot_unreserved, released);
    vb.snapshot_unreserved -= take;
    if (released > take) {
      host_.ReleaseReservation(released - take, events_->now());
    }
    TryServePending();
  });
}

void FaasRuntime::EnqueuePending(int fn, std::function<void(DurationNs)> ready) {
  ++pending_total_;
  pending_.push_back(PendingScaleUp{fn, std::move(ready)});
  NotifyHostState();
}

void FaasRuntime::ArmPressureTick() { pressure_timer_.Start(); }

void FaasRuntime::TryServePending() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    VmBundle& b = vm(it->fn);
    // A scale-up whose dependency image lost its residency while parked
    // (or was parked for exactly that reason) must re-charge the image
    // together with its plug unit — one atomic reservation, no torn book.
    const uint64_t image_need = ImageChargeNeeded(it->fn);
    // Snapshot-recorded functions reserve their restored commitment
    // (working-set-sized), not the full plug unit — same discount the
    // fresh-plug path applies.
    const uint64_t unit_need = FreshReserveBytes(it->fn);
    if (host_.TryReserve(unit_need + image_need, events_->now())) {
      if (image_need > 0) {
        ChargeImage(it->fn, image_need);
      }
      if (unit_need < b.plug_unit) {
        NoteUnreservedPlug(it->fn, b.plug_unit - unit_need);
      }
      std::function<void(DurationNs)> ready = std::move(it->ready);
      const int fn = it->fn;
      it = pending_.erase(it);
      NotifyHostState();
      PlugAndGrant(fn, vm(fn).plug_unit, std::move(ready));
    } else {
      ++it;  // FIFO with skip: smaller requests behind may still fit.
    }
  }
}

uint64_t FaasRuntime::PendingPlugBytes() const {
  uint64_t needed = 0;
  for (const PendingScaleUp& p : pending_) {
    needed += vms_[static_cast<size_t>(p.fn)]->plug_unit;
  }
  return needed;
}

uint64_t FaasRuntime::MakeRoom(uint64_t needed) {
  uint64_t expected = 0;
  while (expected < needed) {
    // Globally oldest idle instance across all VMs.  Instances that only
    // just went idle are spared: reaping them would immediately force a
    // re-spawn of the same function (the premature-reclamation pathology
    // the paper observes for aggressive policies, §6.2.2).
    int best = -1;
    TimeNs best_since = 0;
    for (size_t i = 0; i < vms_.size(); ++i) {
      const TimeNs since = vms_[i]->agent->OldestIdleSince();
      if (since >= 0 && since + Sec(2) <= events_->now() &&
          (best < 0 || since < best_since)) {
        best = static_cast<int>(i);
        best_since = since;
      }
    }
    if (best < 0) {
      break;  // Nothing idle to reclaim; pending scale-ups must wait.
    }
    // Eviction triggers the agent's release callback -> driver Release ->
    // unplug (async commitment release).
    vm(best).agent->EvictOldestIdle();
    expected += vm(best).plug_unit;
  }
  return expected;
}

size_t FaasRuntime::ReapAllIdle() {
  size_t evicted = 0;
  for (auto& b : vms_) {
    while (b->agent->EvictOldestIdle()) {
      ++evicted;
    }
  }
  return evicted;
}

bool FaasRuntime::PressureTick() {
  // Zero-ref images are reclaimable under pressure even when the last
  // release predated it (the release-path check saw an empty FIFO);
  // freeing them first gives the driver's tick room to serve with.
  MaybeEvictImages();
  driver_->PressureTick();
  return !pending_.empty();
}

bool FaasRuntime::HasMemoryForFresh(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  if (driver_->AlwaysAdmits()) {
    return true;  // Everything is pre-plugged.
  }
  // An evicted dependency image must be re-charged alongside the plug
  // unit; 0 whenever the registry/image machinery is not in play.
  const uint64_t image_need = ImageChargeNeeded(fn);
  // Plugged-but-uncommitted-elsewhere memory this VM can reuse instantly.
  const uint64_t reusable = driver_->ReusablePlugged(fn);
  if (reusable >= b.plug_unit && image_need == 0) {
    return true;
  }
  // A pure fresh plug (no reuse) for a snapshot-recorded function only
  // reserves its restored commitment; partial reuse keeps the full unit
  // (matching the acquire path, which discounts only when from_spare == 0).
  const uint64_t need = reusable > 0 ? b.plug_unit - std::min(reusable, b.plug_unit)
                                     : FreshReserveBytes(fn);
  return host_.available() >= need + image_need;
}

bool FaasRuntime::CanAdmit(int fn) const {
  if (draining_) {
    return false;  // A draining host takes no new work.
  }
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  if (b.agent->idle_instances() > 0) {
    return true;  // Warm reuse: no new memory needed.
  }
  if (b.agent->live_instances() >= b.max_concurrency) {
    return false;  // The N:1 VM is saturated; the request would queue.
  }
  return HasMemoryForFresh(fn);
}

// --- HostControl -------------------------------------------------------------------

HostSnapshot FaasRuntime::Snapshot(int local_fn) const {
  HostSnapshot s;
  s.committed = host_.committed();
  s.capacity = host_.capacity();
  s.available = host_.available();
  s.pending_scaleups = pending_.size();
  s.draining = draining_;
  s.can_admit = local_fn >= 0 && CanAdmit(local_fn);
  s.restores_in_flight = restores_in_flight();
  if (local_fn >= 0 && dep_registry_ != nullptr) {
    const DepImageId img = vms_[static_cast<size_t>(local_fn)]->dep_image;
    s.dep_image_populated = img != kNoDepImage && dep_registry_->Populated(host_id_, img);
  }
  if (local_fn >= 0 && snap_registry_ != nullptr) {
    // b.snapshot is only interned when the reclaim driver supports
    // restores, so a valid id already implies restore capability here.
    const SnapshotId snap = vms_[static_cast<size_t>(local_fn)]->snapshot;
    s.snapshot_restorable = snap != kNoSnapshot && snap_registry_->Recorded(snap);
  }
  return s;
}

bool FaasRuntime::DepImagePopulated(int local_fn) const {
  if (local_fn < 0 || dep_registry_ == nullptr) {
    return false;
  }
  const DepImageId img = vms_[static_cast<size_t>(local_fn)]->dep_image;
  return img != kNoDepImage && dep_registry_->Populated(host_id_, img);
}

bool FaasRuntime::SnapshotRestorableFor(int local_fn) const {
  if (local_fn < 0 || snap_registry_ == nullptr) {
    return false;
  }
  const SnapshotId snap = vms_[static_cast<size_t>(local_fn)]->snapshot;
  return snap != kNoSnapshot && snap_registry_->Recorded(snap);
}

void FaasRuntime::AttachStateListener(HostStateListener* listener, size_t host_id) {
  state_listener_ = listener;
  listener_host_ = host_id;
  // Committed mutates ONLY inside HostMemory::TryReserve/
  // ReleaseReservation; its observer turns both into deltas.
  host_.set_commit_observer([this] { NotifyHostState(); });
  NotifyHostState();  // Seed the listener with the current state.
}

void FaasRuntime::NotifyHostState() {
  if (state_listener_ != nullptr) {
    state_listener_->OnHostState(listener_host_, host_.committed(), pending_.size(),
                                 draining_);
  }
}

uint64_t FaasRuntime::ProactiveReclaim(uint64_t bytes) {
  ++proactive_reclaims_;
  return driver_->ProactiveReclaim(bytes);
}

void FaasRuntime::Drain() {
  if (draining_) {
    return;
  }
  draining_ = true;
  NotifyHostState();
  driver_->OnDrain();
  // Unreferenced dependency images go with the drain (instances still
  // finishing keep theirs referenced until the drain tick reaps them and
  // the release path re-checks).
  MaybeEvictImages();
  drain_timer_.Start();
}

void FaasRuntime::Undrain() {
  draining_ = false;
  NotifyHostState();
}

ReplicaMigrationState FaasRuntime::EvictReplica(int local_fn) {
  VmBundle& b = vm(local_fn);
  ReplicaMigrationState s;
  s.busy_fraction = b.max_concurrency > 0
                        ? static_cast<double>(b.agent->busy_instances()) /
                              static_cast<double>(b.max_concurrency)
                        : 0.0;
  const Agent::WarmCapture cap = b.agent->CaptureAndEvictIdle();
  s.warm_instances = cap.instances;
  s.state_bytes = cap.anon_bytes;
  // The shared dependency image crosses the wire once per replica, and
  // only when there is warm state worth moving at all.
  s.deps_bytes = cap.instances > 0 ? b.spec.file_deps_bytes : 0;
  // Recorded-vs-delta split: the cluster snapshot recording reproduces
  // the stable prefix of every FULLY-warm instance's working set (an
  // instance mid-first-lifetime has no recording-shaped state yet), so a
  // snapshot-hit transfer needs to ship only what lies beyond it.  Zero
  // without an attached registry / restore-capable driver / valid
  // recording — the capture is bit-identical to the pre-snapshot path.
  if (snap_registry_ != nullptr && b.snapshot != kNoSnapshot && cap.fully_warm > 0) {
    const uint64_t per_instance = std::min(
        snap_registry_->RecordedHeapBytes(b.snapshot), b.spec.anon_working_set);
    s.recorded_bytes =
        std::min(per_instance * static_cast<uint64_t>(cap.fully_warm), s.state_bytes);
  }
  return s;
}

size_t FaasRuntime::AdoptableReplicas(int local_fn, size_t wanted) const {
  if (draining_ || wanted == 0) {
    return 0;
  }
  const VmBundle& b = *vms_[static_cast<size_t>(local_fn)];
  const size_t live = b.agent->live_instances();
  if (live >= b.max_concurrency) {
    return 0;
  }
  const size_t cap = std::min<size_t>(wanted, b.max_concurrency - live);
  if (driver_->AlwaysAdmits()) {
    return cap;
  }
  // Walk the same books the adoption loop will consume: the driver's
  // reusable plugged pool first (spare, cancellable unplugs, slack
  // buffers), then free commitment for the remainder of each unit.  An
  // evicted dependency image is re-charged up front, before any unit.
  uint64_t reusable = driver_->ReusablePlugged(local_fn);
  uint64_t avail = host_.available();
  const uint64_t image_need = ImageChargeNeeded(local_fn);
  if (avail < image_need) {
    return 0;
  }
  avail -= image_need;
  size_t n = 0;
  while (n < cap) {
    const uint64_t from_reuse = std::min(reusable, b.plug_unit);
    // Mirror HasMemoryForFresh: a pure fresh plug for a snapshot-recorded
    // function reserves only its restored commitment.
    const uint64_t need =
        from_reuse > 0 ? b.plug_unit - from_reuse : FreshReserveBytes(local_fn);
    if (avail < need) {
      break;
    }
    reusable -= from_reuse;
    avail -= need;
    ++n;
  }
  return n;
}

size_t FaasRuntime::AdoptReplica(int local_fn, const ReplicaMigrationState& state,
                                 TimeNs available_at) {
  if (draining_ || state.warm_instances == 0) {
    return 0;
  }
  VmBundle& b = vm(local_fn);
  const uint64_t per_instance = state.state_bytes / state.warm_instances;
  // Snapshot-hit transfer: state_bytes holds only the shipped delta;
  // each instance additionally bulk-restores its share of the recorded
  // portion from the cluster store on arrival.  0 on a full transfer.
  const uint64_t per_recorded = state.recorded_bytes / state.warm_instances;
  size_t adopted = 0;
  // Each adoption is admission-checked like a fresh scale-up (the
  // warm-reuse shortcut does not apply: an adopted instance always needs
  // its own plug unit) and then acquires through the driver, which
  // reserves host commitment synchronously — so the loop condition stays
  // accurate as instances land.
  while (adopted < state.warm_instances &&
         b.agent->live_instances() < b.max_concurrency && HasMemoryForFresh(local_fn)) {
    b.agent->AdoptWarmInstance(per_instance, per_recorded, available_at);
    ++adopted;
  }
  adopted_instances_ += adopted;
  return adopted;
}

bool FaasRuntime::DrainTick() {
  if (!draining_) {
    return false;
  }
  // Busy instances finish their requests, go idle, and are reaped on the
  // next tick; keep ticking until the host is empty (or undrained).
  ReapAllIdle();
  return AnyLiveInstances();
}

bool FaasRuntime::AnyLiveInstances() const {
  for (const auto& b : vms_) {
    if (b->agent->live_instances() > 0) {
      return true;
    }
  }
  return false;
}

double FaasRuntime::ReclaimThroughputMiBps(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  const DurationNs busy = b.guest->virtio_mem().total_unplug_time();
  if (busy <= 0) {
    return 0.0;
  }
  const double mib = static_cast<double>(b.guest->virtio_mem().total_unplugged_bytes()) /
                     static_cast<double>(MiB(1));
  return mib / ToSec(busy);
}

}  // namespace squeezy
