#include "src/faas/runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace squeezy {
namespace {

// Flat (non-Squeezy) hot-pluggable region: N instances + dependency page
// cache + harvest slack.  Shared by AddFunction's device sizing and
// BootCommitment's static-policy book so the two can never diverge.
uint64_t FlatHotplugRegion(const RuntimeConfig& config, uint64_t plug_unit,
                           uint64_t deps_region, uint32_t max_concurrency) {
  const uint64_t slack = config.policy == ReclaimPolicy::kHarvestOpts
                             ? config.harvest_buffer_units * plug_unit
                             : 0;
  return static_cast<uint64_t>(max_concurrency) * plug_unit + deps_region + slack;
}

}  // namespace

const char* ReclaimPolicyName(ReclaimPolicy p) {
  switch (p) {
    case ReclaimPolicy::kStatic:
      return "Static";
    case ReclaimPolicy::kVirtioMem:
      return "Virtio-mem";
    case ReclaimPolicy::kSqueezy:
      return "Squeezy";
    case ReclaimPolicy::kHarvestOpts:
      return "HarvestVM-opts";
  }
  return "?";
}

FaasRuntime::FaasRuntime(const RuntimeConfig& config)
    : FaasRuntime(config, nullptr) {}

FaasRuntime::FaasRuntime(const RuntimeConfig& config, EventQueue* events)
    : config_(config),
      cost_(config.cost),
      owned_events_(events ? nullptr : std::make_unique<EventQueue>()),
      events_(events ? events : owned_events_.get()),
      cpu_(Sec(1)),
      host_(config.host_capacity) {
  hv_ = std::make_unique<Hypervisor>(&host_, &cost_, &cpu_);
}

FaasRuntime::~FaasRuntime() = default;

uint64_t FaasRuntime::BootCommitment(const RuntimeConfig& config, const FunctionSpec& spec,
                                     uint32_t max_concurrency) {
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const uint64_t deps_region = BytesToBlocks(spec.file_deps_bytes) * kMemoryBlockBytes;
  if (config.policy == ReclaimPolicy::kStatic) {
    // Over-provisioned: the whole hotplug region is committed up front.
    return config.vm_base_memory +
           FlatHotplugRegion(config, plug_unit, deps_region, max_concurrency);
  }
  return config.vm_base_memory + deps_region;
}

int FaasRuntime::AddFunction(const FunctionSpec& spec, uint32_t max_concurrency) {
  const int fn = static_cast<int>(vms_.size());
  auto bundle = std::make_unique<VmBundle>();
  bundle->spec = spec;
  bundle->max_concurrency = max_concurrency;
  bundle->plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const uint64_t deps_region = BytesToBlocks(spec.file_deps_bytes) * kMemoryBlockBytes;

  GuestConfig gcfg;
  gcfg.name = spec.name;
  gcfg.vcpus = static_cast<uint32_t>(
      std::max(1.0, std::ceil(spec.vcpu_shares * static_cast<double>(max_concurrency))));
  gcfg.base_memory = config_.vm_base_memory;
  gcfg.seed = config_.seed * 977 + static_cast<uint64_t>(fn) * 131;
  gcfg.unplug_timeout = config_.unplug_timeout;
  gcfg.shuffle_allocator = true;

  SqueezyConfig scfg;
  const bool use_squeezy = config_.policy == ReclaimPolicy::kSqueezy;
  if (use_squeezy) {
    scfg.partition_bytes = bundle->plug_unit;
    scfg.nr_partitions = max_concurrency;
    scfg.shared_bytes = deps_region;
    gcfg.hotplug_region = scfg.region_bytes();
  } else {
    // Vanilla/harvest/static: one flat hot-pluggable movable region sized
    // for N instances + dependency page cache (+ harvest slack).
    gcfg.hotplug_region =
        FlatHotplugRegion(config_, bundle->plug_unit, deps_region, max_concurrency);
  }

  bundle->guest = std::make_unique<GuestKernel>(gcfg, hv_.get(), &cpu_);
  if (use_squeezy) {
    // Plugs the shared partition at boot.
    bundle->sqz = std::make_unique<SqueezyManager>(bundle->guest.get(), scfg);
  }

  // Host commitment at boot: base RAM plus the boot-time plug (shared
  // partition / dependency cache region).
  const uint64_t boot_commit = BootCommitment(config_, spec, max_concurrency);
  if (config_.policy == ReclaimPolicy::kStatic) {
    // Over-provisioned: everything plugged and committed up front, and the
    // host backing is warm (long-running VM).
    const PlugOutcome all = bundle->guest->PlugMemory(gcfg.hotplug_region, 0);
    assert(all.complete);
    if (config_.warm_static_backing) {
      bundle->guest->WarmAllHostBacking(0);
    }
  } else if (!use_squeezy) {
    const PlugOutcome deps = bundle->guest->PlugMemory(deps_region, 0);
    assert(deps.complete);
  }
  const bool reserved = host_.TryReserve(boot_commit, 0);
  assert(reserved && "host must fit the boot-time footprint of every VM");
  (void)reserved;

  AgentConfig acfg;
  acfg.max_concurrency = max_concurrency;
  acfg.vcpus = gcfg.vcpus;
  acfg.keep_alive = config_.keep_alive;
  acfg.use_squeezy = use_squeezy;
  AgentCallbacks callbacks;
  callbacks.acquire_memory = [this, fn](std::function<void(DurationNs)> ready) {
    AcquireMemory(fn, std::move(ready));
  };
  callbacks.release_memory = [this, fn] { ReleaseInstanceMemory(fn); };
  bundle->agent = std::make_unique<Agent>(events_, bundle->guest.get(), bundle->sqz.get(),
                                          spec, acfg, std::move(callbacks),
                                          gcfg.seed ^ 0x5eedULL);
  vms_.push_back(std::move(bundle));
  return fn;
}

void FaasRuntime::SubmitTrace(const std::vector<Invocation>& trace) {
  for (const Invocation& inv : trace) {
    const int fn = inv.function;
    assert(fn >= 0 && static_cast<size_t>(fn) < vms_.size());
    events_->ScheduleAt(inv.at, [this, fn] { agent(fn).Submit(); });
  }
}

// --- Memory orchestration ----------------------------------------------------------

void FaasRuntime::AcquireMemory(int fn, std::function<void(DurationNs)> ready) {
  VmBundle& b = vm(fn);
  switch (config_.policy) {
    case ReclaimPolicy::kStatic:
      // Memory is always there; no VMM work on the cold path.
      ready(0);
      return;
    case ReclaimPolicy::kHarvestOpts:
      if (b.buffer_units > 0) {
        // Serve from the pre-plugged slack buffer: near-instant, the whole
        // point of the HarvestVM buffering optimization.
        --b.buffer_units;
        events_->ScheduleAfter(Msec(1), [ready = std::move(ready)] { ready(Msec(1)); });
        return;
      }
      [[fallthrough]];
    case ReclaimPolicy::kVirtioMem:
    case ReclaimPolicy::kSqueezy: {
      if (b.queued_unplugs > b.cancelled_unplugs) {
        // An unplug for this VM is queued but not started: absorb it and
        // reuse its (still plugged, still committed) memory directly.
        ++b.cancelled_unplugs;
        events_->ScheduleAfter(Msec(1), [ready = std::move(ready)] { ready(Msec(1)); });
        return;
      }
      // Memory left behind by timed-out/partial unplugs is still plugged
      // and committed: consume it first, plugging only the remainder.
      const uint64_t from_spare = std::min(b.spare_plugged, b.plug_unit);
      const uint64_t need = b.plug_unit - from_spare;
      if (need == 0) {
        b.spare_plugged -= b.plug_unit;
        events_->ScheduleAfter(Msec(1), [ready = std::move(ready)] { ready(Msec(1)); });
        return;
      }
      if (host_.TryReserve(need, events_->now())) {
        b.spare_plugged -= from_spare;
        PlugAndGrant(fn, need, std::move(ready));
        return;
      }
      // Memory-starved: wait for scale-downs to release memory (§6.2.2).
      ++pending_total_;
      pending_.push_back(PendingScaleUp{fn, std::move(ready)});
      MakeRoom(b.plug_unit * (config_.policy == ReclaimPolicy::kHarvestOpts ? 2 : 1));
      if (!tick_armed_) {
        tick_armed_ = true;
        events_->ScheduleAfter(config_.pressure_check_period, [this] { PressureTick(); });
      }
      return;
    }
  }
}

void FaasRuntime::PlugAndGrant(int fn, uint64_t bytes, std::function<void(DurationNs)> ready) {
  VmBundle& b = vm(fn);
  const PlugOutcome out = b.guest->PlugMemory(bytes, events_->now());
  assert(out.complete && "device region must be sized for max concurrency");
  events_->ScheduleAfter(out.latency,
                        [ready = std::move(ready), lat = out.latency] { ready(lat); });
}

void FaasRuntime::ReleaseInstanceMemory(int fn) {
  VmBundle& b = vm(fn);
  switch (config_.policy) {
    case ReclaimPolicy::kStatic:
      return;  // Nothing to reclaim; memory stays with the VM.
    case ReclaimPolicy::kHarvestOpts: {
      if (pending_.empty() && b.buffer_units < config_.harvest_buffer_units) {
        // Keep the memory plugged as slack for the next spike (drained by
        // the pressure tick when the host runs low).
        ++b.buffer_units;
        return;
      }
      StartUnplug(fn);
      return;
    }
    case ReclaimPolicy::kVirtioMem:
    case ReclaimPolicy::kSqueezy:
      StartUnplug(fn);
      return;
  }
}

void FaasRuntime::StartUnplug(int fn) {
  VmBundle& b = vm(fn);
  // One virtio-mem worker per VM: requests issued while a previous unplug
  // is still migrating/offlining queue up behind it.
  if (events_->now() < b.unplug_busy_until) {
    ++b.queued_unplugs;
    events_->ScheduleAt(b.unplug_busy_until, [this, fn] {
      VmBundle& vb = vm(fn);
      --vb.queued_unplugs;
      if (vb.cancelled_unplugs > 0) {
        --vb.cancelled_unplugs;  // A scale-up already reused this memory.
        return;
      }
      StartUnplug(fn);
    });
    return;
  }
  const UnplugOutcome out = b.guest->UnplugMemory(b.plug_unit, events_->now());
  if (!out.complete) {
    ++unplug_incomplete_;
    if (config_.policy != ReclaimPolicy::kSqueezy) {
      // Whatever the request failed to reclaim stays plugged (and
      // committed); later scale-ups of this VM consume it directly.
      b.spare_plugged += b.plug_unit - out.bytes_unplugged;
    }
    // Under Squeezy an "incomplete" unplug means the drained partition was
    // already re-assigned through the waitqueue (reuse-without-replug):
    // there is nothing left to reclaim and nothing left over.
  }
  b.unplug_busy_until = events_->now() + out.latency();
  // The virtio-mem worker's guest-side CPU time (migrations, zeroing)
  // competes with running instances (Fig 9).
  b.agent->AddKernelInterference(out.breakdown.total() - out.breakdown.vm_exits);
  const uint64_t released = out.bytes_unplugged;
  events_->ScheduleAfter(out.latency(), [this, released] {
    if (released > 0) {
      host_.ReleaseReservation(released, events_->now());
    }
    TryServePending();
  });
}

void FaasRuntime::TryServePending() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    VmBundle& b = vm(it->fn);
    if (host_.TryReserve(b.plug_unit, events_->now())) {
      std::function<void(DurationNs)> ready = std::move(it->ready);
      const int fn = it->fn;
      it = pending_.erase(it);
      PlugAndGrant(fn, vm(fn).plug_unit, std::move(ready));
    } else {
      ++it;  // FIFO with skip: smaller requests behind may still fit.
    }
  }
}

uint64_t FaasRuntime::MakeRoom(uint64_t needed) {
  uint64_t expected = 0;
  while (expected < needed) {
    // Globally oldest idle instance across all VMs.  Instances that only
    // just went idle are spared: reaping them would immediately force a
    // re-spawn of the same function (the premature-reclamation pathology
    // the paper observes for aggressive policies, §6.2.2).
    int best = -1;
    TimeNs best_since = 0;
    for (size_t i = 0; i < vms_.size(); ++i) {
      const TimeNs since = vms_[i]->agent->OldestIdleSince();
      if (since >= 0 && since + Sec(2) <= events_->now() &&
          (best < 0 || since < best_since)) {
        best = static_cast<int>(i);
        best_since = since;
      }
    }
    if (best < 0) {
      break;  // Nothing idle to reclaim; pending scale-ups must wait.
    }
    // Eviction triggers ReleaseInstanceMemory -> unplug (async release).
    vm(best).agent->EvictOldestIdle();
    expected += vm(best).plug_unit;
  }
  return expected;
}

void FaasRuntime::PressureTick() {
  tick_armed_ = false;
  TryServePending();
  if (!pending_.empty()) {
    uint64_t needed = 0;
    for (const PendingScaleUp& p : pending_) {
      needed += vm(p.fn).plug_unit;
    }
    if (config_.policy == ReclaimPolicy::kHarvestOpts) {
      needed *= 2;  // Proactive over-reclamation (HarvestVM).
    }
    MakeRoom(needed);
  }
  if (config_.policy == ReclaimPolicy::kHarvestOpts) {
    const double free_frac =
        static_cast<double>(host_.available()) / static_cast<double>(host_.capacity());
    if (free_frac < config_.harvest_low_memory_frac) {
      // Background proactive reclaim: drop the slack buffers first, then
      // idle instances.
      for (auto& b : vms_) {
        while (b->buffer_units > 0) {
          --b->buffer_units;
          const int fn = static_cast<int>(&b - &vms_[0]);
          StartUnplug(fn);
        }
      }
      MakeRoom(kMemoryBlockBytes * 8);
    }
  }
  if (!pending_.empty()) {
    tick_armed_ = true;
    events_->ScheduleAfter(config_.pressure_check_period, [this] { PressureTick(); });
  }
}

bool FaasRuntime::CanAdmit(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  if (b.agent->idle_instances() > 0) {
    return true;  // Warm reuse: no new memory needed.
  }
  if (b.agent->live_instances() >= b.max_concurrency) {
    return false;  // The N:1 VM is saturated; the request would queue.
  }
  if (config_.policy == ReclaimPolicy::kStatic) {
    return true;  // Everything is pre-plugged.
  }
  // Plugged-but-uncommitted-elsewhere memory this VM can reuse instantly.
  uint64_t reusable = b.spare_plugged;
  if (b.queued_unplugs > b.cancelled_unplugs) {
    reusable += b.plug_unit;
  }
  if (config_.policy == ReclaimPolicy::kHarvestOpts) {
    reusable += static_cast<uint64_t>(b.buffer_units) * b.plug_unit;
  }
  if (reusable >= b.plug_unit) {
    return true;
  }
  return host_.available() >= b.plug_unit - std::min(reusable, b.plug_unit);
}

double FaasRuntime::ReclaimThroughputMiBps(int fn) const {
  const VmBundle& b = *vms_[static_cast<size_t>(fn)];
  const DurationNs busy = b.guest->virtio_mem().total_unplug_time();
  if (busy <= 0) {
    return 0.0;
  }
  const double mib = static_cast<double>(b.guest->virtio_mem().total_unplugged_bytes()) /
                     static_cast<double>(MiB(1));
  return mib / ToSec(busy);
}

}  // namespace squeezy
