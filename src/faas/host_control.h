// The narrow control-plane surface a cluster scheduler sees of one host.
//
// Placement–reclaim co-design happens through this interface: the
// scheduler reads ONE consistent HostSnapshot per routing decision (no
// torn committed/admit reads), and can drive reclamation on the data
// plane — ProactiveReclaim before routing a burst at a donor host,
// Drain/Undrain for maintenance, and the EvictReplica/AdoptReplica pair
// for live replica migration (src/cluster/migration_planner.h).
// FaasRuntime implements it; the cluster layer (src/cluster/) holds hosts
// only through HostControl*, so alternative host implementations (remote
// agents, mocks) slot in.
#ifndef SQUEEZY_FAAS_HOST_CONTROL_H_
#define SQUEEZY_FAAS_HOST_CONTROL_H_

#include <cstddef>
#include <cstdint>

#include "src/sim/time.h"

namespace squeezy {

// Warm state captured off a replica by EvictReplica — everything a
// migration needs to size the transfer and re-create the instances at the
// destination.  state_bytes is the anonymous state the live instances had
// actually touched (the committed footprint that must cross the wire) and
// deps_bytes the shared dependency/page-cache image transferred once per
// replica; busy_fraction at capture time is the dirty-rate proxy the
// CostModel scales its per-round redirty fraction by.
struct ReplicaMigrationState {
  size_t warm_instances = 0;
  uint64_t state_bytes = 0;
  uint64_t deps_bytes = 0;
  // Anonymous bytes reproducible from the cluster snapshot recording
  // (<= state_bytes at capture; 0 without an attached registry or a valid
  // recording).  On a snapshot-hit transfer the cluster moves this
  // portion OUT of state_bytes — only the delta beyond the recording
  // crosses the wire, and the destination bulk-restores recorded_bytes
  // from the store on arrival (GuestKernel::RestoreWorkingSet).
  uint64_t recorded_bytes = 0;
  double busy_fraction = 0;

  uint64_t transfer_bytes() const { return state_bytes + deps_bytes; }
};

// One consistent view of a host at a routing instant.
struct HostSnapshot {
  uint64_t committed = 0;   // Admission-control book (bin-packing quantity).
  uint64_t capacity = 0;
  uint64_t available = 0;   // capacity - committed.
  size_t pending_scaleups = 0;  // Memory-starved scale-ups right now (pressure).
  bool draining = false;
  // Whether one more invocation of the queried function can start without
  // waiting on reclamation.  Only meaningful when Snapshot() was passed a
  // local function index; false otherwise (and always false while
  // draining).
  bool can_admit = false;
  // Whether the queried function's dependency image is held warm by this
  // host in the cluster dep cache (a migration here skips deps_bytes on
  // the wire).  Only meaningful with a local function index and an
  // attached DepImageRegistry; false otherwise.
  bool dep_image_populated = false;
  // Whether the queried function has a valid cluster snapshot recording
  // this host can restore from (attached registry + restore-capable
  // driver + recorded) — a migration here ships only the delta beyond
  // the recording.  Only meaningful with a local function index; false
  // otherwise.
  bool snapshot_restorable = false;
  // Bulk working-set restores (cold-start prefetches and migration
  // landings) still occupying or queued on this host's single restore
  // channel.  Each host serializes concurrent RestoreWorkingSet bulk
  // prefetches, so a destination already restoring delays new arrivals —
  // the planner penalizes it (function-agnostic; 0 without a registry).
  size_t restores_in_flight = 0;
};

// Receives one delta per host-state change instead of polling snapshots.
// A host fires it synchronously after ANY change to its committed book,
// pending scale-up queue, or draining flag — the three quantities routing
// ranks on — carrying the new absolute values (deltas are idempotent and
// order-free to absorb).  This runs BELOW the cluster layers in the lock
// order (src/base/mutex.h): implementations must only touch leaf-locked
// state (the placement HostIndex) and never call back into the host.
class HostStateListener {
 public:
  virtual ~HostStateListener() = default;
  virtual void OnHostState(size_t host, uint64_t committed,
                           size_t pending_scaleups, bool draining) = 0;
};

class HostControl {
 public:
  virtual ~HostControl() = default;

  // One consistent committed/pressure/admit read.  `local_fn` is the
  // host-local function index to admission-check, or -1 for a
  // function-agnostic snapshot.
  virtual HostSnapshot Snapshot(int local_fn) const = 0;
  HostSnapshot Snapshot() const { return Snapshot(-1); }

  // --- Narrow single-field reads (the incremental-index fast path) ----------
  // Each must equal the corresponding HostSnapshot field read at the same
  // instant; the defaults derive them from Snapshot() so alternative
  // HostControl implementations (mocks, remote agents) stay correct
  // without overriding.  FaasRuntime overrides them with direct O(1)
  // reads — the indexed placement path asks only for the fields a
  // decision still needs live (admission probes, residency bits) after
  // the HostIndex has pre-narrowed the candidates.
  virtual bool CanAdmitNow(int local_fn) const {
    return Snapshot(local_fn).can_admit;
  }
  virtual bool DepImagePopulated(int local_fn) const {
    return Snapshot(local_fn).dep_image_populated;
  }
  virtual bool SnapshotRestorableFor(int local_fn) const {
    return Snapshot(local_fn).snapshot_restorable;
  }
  virtual size_t RestoresInFlight() const {
    return Snapshot(-1).restores_in_flight;
  }

  // Subscribes `listener` to this host's state deltas as `host_id` (one
  // listener per host; the host immediately fires one delta with its
  // current state so the listener starts exact).  Default: snapshots-only
  // hosts simply never notify.
  virtual void AttachStateListener(HostStateListener* listener, size_t host_id) {
    if (listener != nullptr) {
      const HostSnapshot snap = Snapshot(-1);
      listener->OnHostState(host_id, snap.committed, snap.pending_scaleups,
                            snap.draining);
    }
  }

  // Hint: return >= `bytes` of committed memory soon (evict idle
  // instances, drop slack buffers).  Returns the bytes expected from the
  // reclamation triggered; 0 when nothing is reclaimable.
  virtual uint64_t ProactiveReclaim(uint64_t bytes) = 0;

  // Maintenance drain: the host stops admitting (Snapshot().draining,
  // can_admit == false) and reclaims aggressively until Undrain().
  virtual void Drain() = 0;
  virtual void Undrain() = 0;

  // --- Live replica migration (source / destination halves) ----------------
  // Source half: captures the warm (idle) state of local function
  // `local_fn` and evicts those instances, so the commitment they held
  // flows back through the host's active reclaim driver (Squeezy donors
  // free memory at Squeezy speed).  Busy instances are left to finish —
  // only idle state migrates.
  virtual ReplicaMigrationState EvictReplica(int local_fn) = 0;
  // How many of `wanted` warm instances of `local_fn` this host could
  // admit right now (concurrency headroom + memory, mirroring the
  // AdoptReplica loop).  A pure query: the planner sizes and prices the
  // transfer against the instances that will actually move, and skips
  // hosts that would adopt nothing.  CONTRACT: an AdoptReplica call
  // immediately after (same books, no intervening event) admits exactly
  // this many — the transfer priced on the query is the transfer that
  // ships (locked by cluster_migration_test.cc).
  virtual size_t AdoptableReplicas(int local_fn, size_t wanted) const = 0;
  // Destination half: re-creates up to `state.warm_instances` warm
  // instances of `local_fn`, each admitted through the host's normal
  // CanAdmit sizing (memory reserved and plugged NOW, like any scale-up).
  // The instances become serveable only at `available_at` — the instant
  // the state transfer completes.  Returns how many instances the host
  // actually admitted (fewer when memory or concurrency run out; the
  // remainder stays evicted and costs a future cold start).
  virtual size_t AdoptReplica(int local_fn, const ReplicaMigrationState& state,
                              TimeNs available_at) = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_HOST_CONTROL_H_
