// The narrow control-plane surface a cluster scheduler sees of one host.
//
// Placement–reclaim co-design happens through this interface: the
// scheduler reads ONE consistent HostSnapshot per routing decision (no
// torn committed/admit reads), and can drive reclamation on the data
// plane — ProactiveReclaim before routing a burst at a donor host,
// Drain/Undrain for maintenance.  FaasRuntime implements it; the cluster
// layer (src/cluster/) holds hosts only through HostControl*, so
// alternative host implementations (remote agents, mocks) slot in.
#ifndef SQUEEZY_FAAS_HOST_CONTROL_H_
#define SQUEEZY_FAAS_HOST_CONTROL_H_

#include <cstddef>
#include <cstdint>

namespace squeezy {

// One consistent view of a host at a routing instant.
struct HostSnapshot {
  uint64_t committed = 0;   // Admission-control book (bin-packing quantity).
  uint64_t capacity = 0;
  uint64_t available = 0;   // capacity - committed.
  size_t pending_scaleups = 0;  // Memory-starved scale-ups right now (pressure).
  bool draining = false;
  // Whether one more invocation of the queried function can start without
  // waiting on reclamation.  Only meaningful when Snapshot() was passed a
  // local function index; false otherwise (and always false while
  // draining).
  bool can_admit = false;
};

class HostControl {
 public:
  virtual ~HostControl() = default;

  // One consistent committed/pressure/admit read.  `local_fn` is the
  // host-local function index to admission-check, or -1 for a
  // function-agnostic snapshot.
  virtual HostSnapshot Snapshot(int local_fn) const = 0;
  HostSnapshot Snapshot() const { return Snapshot(-1); }

  // Hint: return >= `bytes` of committed memory soon (evict idle
  // instances, drop slack buffers).  Returns the bytes expected from the
  // reclamation triggered; 0 when nothing is reclaimable.
  virtual uint64_t ProactiveReclaim(uint64_t bytes) = 0;

  // Maintenance drain: the host stops admitting (Snapshot().draining,
  // can_admit == false) and reclaims aggressively until Undrain().
  virtual void Drain() = 0;
  virtual void Undrain() = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_FAAS_HOST_CONTROL_H_
