// Clang Thread Safety Analysis macros (the SQZ_ prefix keeps them out of
// the way of any system headers that define the bare names).
//
// The simulator is single-threaded today, but the ROADMAP's sharded
// event-queue direction puts the cross-host shared structures (DepCache,
// SnapshotStore, the scheduler snapshot plane, the fleet metrics rollup)
// one thread pool away from concurrent access.  These annotations let the
// compiler machine-check the lock discipline NOW — `-Wthread-safety
// -Werror` on every clang build — so the sharding PR inherits proven
// invariants instead of discovering races at runtime.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing; the annotated code compiles identically.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef SQUEEZY_BASE_THREAD_ANNOTATIONS_H_
#define SQUEEZY_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SQZ_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SQZ_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

// Class attribute: the type is a lockable capability ("mutex").
#define SQZ_CAPABILITY(x) SQZ_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// Class attribute: RAII object that acquires on construction / releases
// on destruction (MutexLock).
#define SQZ_SCOPED_CAPABILITY SQZ_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Data member attribute: reads and writes require holding `x`.
#define SQZ_GUARDED_BY(x) SQZ_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// Data member attribute: the pointed-to data is guarded by `x` (the
// pointer itself may be read freely).
#define SQZ_PT_GUARDED_BY(x) SQZ_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Function attribute: caller must hold the capabilities (exclusively).
#define SQZ_REQUIRES(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

// Function attribute: caller must hold the capabilities (shared).
#define SQZ_REQUIRES_SHARED(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// Function attribute: acquires the capability (exclusively / shared).
#define SQZ_ACQUIRE(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define SQZ_ACQUIRE_SHARED(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

// Function attribute: releases the capability.
#define SQZ_RELEASE(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define SQZ_RELEASE_SHARED(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

// Function attribute: acquires on success (`b` = returned success value).
#define SQZ_TRY_ACQUIRE(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// Function attribute: caller must NOT hold the capabilities (deadlock
// guard for public entry points of self-locking classes).
#define SQZ_EXCLUDES(...) SQZ_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Function attribute: returns a reference to the named capability.
#define SQZ_RETURN_CAPABILITY(x) SQZ_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Lock-ordering declarations (documented acquisition order between
// capability members; clang checks declared pairs).
#define SQZ_ACQUIRED_BEFORE(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define SQZ_ACQUIRED_AFTER(...) \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// Function attribute: opt out of the analysis (use sparingly; every use
// needs a written justification, same policy as the determinism lint's
// inline escape hatch).
#define SQZ_NO_THREAD_SAFETY_ANALYSIS \
  SQZ_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SQUEEZY_BASE_THREAD_ANNOTATIONS_H_
