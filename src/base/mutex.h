// Annotated mutex wrapper: std::mutex carrying clang thread-safety
// capability attributes, plus the RAII MutexLock.
//
// Every class that the sharded-queue direction will make concurrently
// accessed (EventQueue, Cluster, ClusterScheduler, MigrationPlanner,
// DepCache, SnapshotStore) self-locks through these types, so clang's
// `-Wthread-safety` proves the lock discipline at compile time while the
// code is still single-threaded, and TSan has real acquire/release edges
// to check the day threads arrive.
//
// Lock ordering (acquired top to bottom; a lower lock never takes a
// higher one):
//   Cluster::mu_  →  ClusterScheduler::mu_ / MigrationPlanner::mu_
//                 →  DepCache::mu_ / SnapshotStore::mu_
//                 →  EventQueue::mu_
// EventQueue invokes event handlers with its lock RELEASED, so handler
// code may re-enter any layer without inverting the order.
//
// Sharded kernel (src/sim/sharded_event_queue.*) refinements:
//   * Shard-local: during a parallel epoch each worker touches ONLY its
//     own shards' EventQueue::mu_ — two shard locks are never held at
//     once, so shard queues need no order among themselves.
//   * Cross-shard mail: events targeting another host are never pushed
//     into the destination shard mid-epoch; they go to the mailbox
//     queue (ShardedEventQueue::global()), which the coordinator drains
//     alone at epoch barriers.  Mailbox EventQueue::mu_ therefore ranks
//     with EventQueue::mu_ above and is only ever taken from sequential
//     (single-thread) context — never while holding a shard's lock.
//   * ShardedEventQueue::pool_mu_ (phase handoff) sits BELOW every
//     EventQueue::mu_: it is taken only between phases, with no queue
//     lock held, and no queue operation happens while holding it.
//
// Placement index (src/cluster/host_index.*) refinement:
//   * HostIndex::mu_ is a LEAF: it ranks below every lock above (it may
//     be acquired while Cluster::mu_, a scheduler/planner mu_, or host
//     machinery is held — hosts push state deltas into the index from
//     their mutation choke points, and the deciders query it mid-
//     decision), and HostIndex never calls ANY other component while
//     holding it, so no cycle is possible.
#ifndef SQUEEZY_BASE_MUTEX_H_
#define SQUEEZY_BASE_MUTEX_H_

#include <mutex>

#include "src/base/thread_annotations.h"

namespace squeezy {

class SQZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SQZ_ACQUIRE() { mu_.lock(); }
  void Unlock() SQZ_RELEASE() { mu_.unlock(); }
  bool TryLock() SQZ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped lock: acquires in the constructor, releases in the destructor.
class SQZ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SQZ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SQZ_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace squeezy

#endif  // SQUEEZY_BASE_MUTEX_H_
