#include "src/hotplug/balloon.h"

#include <algorithm>
#include <cassert>

namespace squeezy {

BalloonDevice::BalloonDevice(MemMap* memmap, const CostModel* cost, Hypervisor* hv, VmId vm,
                             CpuAccountant* cpu, std::string guest_thread,
                             std::string host_thread)
    : memmap_(memmap),
      cost_(cost),
      hv_(hv),
      vm_(vm),
      cpu_(cpu),
      guest_thread_(std::move(guest_thread)),
      host_thread_(std::move(host_thread)) {
  assert(memmap_ != nullptr && cost_ != nullptr && hv_ != nullptr);
}

BalloonOutcome BalloonDevice::Inflate(uint64_t bytes, Zone* zone, TimeNs now) {
  BalloonOutcome out;
  const uint64_t want = BytesToPages(bytes);
  std::vector<Pfn> batch;
  batch.reserve(cost_->balloon_batch_pages);

  auto report_batch = [&] {
    if (batch.empty()) {
      return;
    }
    // The host releases each reported page; only host-populated frames
    // actually shrink the host's footprint, but every report pays the
    // exit-side latency.
    uint64_t populated = 0;
    for (const Pfn pfn : batch) {
      Page& q = memmap_->page(pfn);
      if (q.host_populated) {
        q.host_populated = false;
        ++populated;
      }
    }
    out.breakdown.vm_exits +=
        hv_->BalloonRelease(vm_, populated, now) +
        cost_->balloon_exit_page * static_cast<int64_t>(batch.size() - populated);
    batch.clear();
  };

  while (out.pages < want) {
    // The driver pins pages it inflates: they become unmovable kernel
    // allocations until deflation.
    const Pfn pfn = zone->Alloc(/*order=*/0, PageKind::kKernel, kNoOwner, 0);
    if (pfn == kInvalidPfn) {
      break;  // Zone exhausted; inflation stalls (complete=false).
    }
    held_.push_back(pfn);
    ++out.pages;
    out.breakdown.rest += cost_->balloon_guest_page;

    // With batch size 1 every page pays a VM exit; larger batches amortize
    // the kick (the batching ablation) but the host still releases
    // per-page (MADV_DONTNEED on 4 KiB).
    batch.push_back(pfn);
    if (batch.size() >= cost_->balloon_batch_pages) {
      report_batch();
    }
  }
  report_batch();

  out.complete = out.pages >= want;
  if (cpu_ != nullptr) {
    if (out.breakdown.rest > 0) {
      cpu_->AddBusy(guest_thread_, now, out.breakdown.rest);
    }
    if (out.breakdown.vm_exits > 0) {
      cpu_->AddBusy(host_thread_, now, out.breakdown.vm_exits);
    }
  }
  return out;
}

DurationNs BalloonDevice::Deflate(uint64_t bytes, MemMap& memmap, Zone* zone) {
  (void)memmap;  // Used only by the assert below in debug builds.
  const uint64_t want = std::min<uint64_t>(BytesToPages(bytes), held_.size());
  DurationNs latency = 0;
  for (uint64_t i = 0; i < want; ++i) {
    const Pfn pfn = held_.back();
    held_.pop_back();
    assert(memmap.page(pfn).state == PageState::kAllocated);
    zone->Free(pfn);
    latency += cost_->balloon_guest_page;
  }
  return latency;
}

}  // namespace squeezy
