#include "src/hotplug/virtio_mem.h"

#include <cassert>

namespace squeezy {

VirtioMemDevice::VirtioMemDevice(const VirtioMemConfig& config, HotplugManager* hotplug,
                                 VirtioMemHooks* hooks, CpuAccountant* cpu)
    : config_(config), hotplug_(hotplug), hooks_(hooks), cpu_(cpu) {
  assert(hotplug_ != nullptr && hooks_ != nullptr);
  assert(config_.nr_blocks > 0);
}

PlugOutcome VirtioMemDevice::Plug(uint64_t bytes, TimeNs now) {
  PlugOutcome out;
  const uint64_t want = BytesToBlocks(bytes);
  MemMap* mm = hotplug_->memmap();
  (void)mm;  // Used only by the assert below in debug builds.

  out.latency += hotplug_->cost().plug_request_fixed;
  for (const BlockIndex b : hooks_->SelectPlugBlocks(want)) {
    if (out.blocks.size() >= want) {
      break;
    }
    assert(mm->block_state(b) == BlockState::kAbsent);
    out.latency += hotplug_->HotAddBlock(b);
    Zone* zone = hooks_->OnlineTargetZone(b);
    assert(zone != nullptr);
    out.latency += hotplug_->OnlineBlock(b, zone);
    hooks_->OnBlockOnline(b);
    out.blocks.push_back(b);
    ++plugged_blocks_;
  }
  out.bytes_plugged = out.blocks.size() * kMemoryBlockBytes;
  out.complete = out.blocks.size() == want;
  if (cpu_ != nullptr && out.latency > 0) {
    cpu_->AddBusy(config_.guest_thread, now, out.latency);
  }
  return out;
}

UnplugOutcome VirtioMemDevice::Unplug(uint64_t bytes, TimeNs now) {
  UnplugOutcome out;
  const uint64_t want = BytesToBlocks(bytes);
  out.breakdown.rest += hotplug_->cost().unplug_request_fixed;

  // The driver asks the policy for candidates.  Vanilla Linux scans the
  // device region; Squeezy hands back the blocks of empty partitions.
  const std::vector<BlockIndex> candidates = hooks_->SelectUnplugBlocks(want);
  for (const BlockIndex b : candidates) {
    if (out.blocks_unplugged >= want) {
      break;
    }
    if (out.breakdown.total() > config_.unplug_timeout) {
      out.timed_out = true;
      break;
    }
    Zone* zone = hooks_->BlockZone(b);
    const OfflineOptions opts = hooks_->OfflineOptionsFor(b);
    Zone* target = opts.allow_migration ? hooks_->MigrationTarget(b) : zone;
    const OfflineResult res = hotplug_->OfflineBlock(b, zone, target, opts, now);
    out.breakdown.Add(res.breakdown);
    out.pages_migrated += res.pages_migrated;
    if (!res.ok) {
      continue;  // Try the next candidate (Linux behaves the same way).
    }
    // The guest-side offline succeeded; tear down and acknowledge.
    hotplug_->HotRemoveBlock(b, &out.breakdown, now);
    hooks_->OnBlockUnplugged(b);
    ++out.blocks_unplugged;
    assert(plugged_blocks_ > 0);
    --plugged_blocks_;
  }

  out.bytes_unplugged = out.blocks_unplugged * kMemoryBlockBytes;
  out.complete = out.blocks_unplugged >= want;
  total_unplugged_bytes_ += out.bytes_unplugged;
  total_unplug_time_ += out.breakdown.total();

  if (cpu_ != nullptr) {
    // Guest kernel thread: everything except the host-side exit slice.
    const DurationNs guest_busy = out.breakdown.total() - out.breakdown.vm_exits;
    if (guest_busy > 0) {
      cpu_->AddBusy(config_.guest_thread, now, guest_busy);
    }
    if (out.breakdown.vm_exits > 0) {
      cpu_->AddBusy(config_.host_thread, now + guest_busy, out.breakdown.vm_exits);
    }
  }
  return out;
}

}  // namespace squeezy
