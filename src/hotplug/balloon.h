// virtio-balloon device model.
//
// Inflation reclaims guest memory a page at a time: the driver allocates
// guest pages (pinning them, so they are unmovable) and reports each to
// the hypervisor, which releases the backing.  The per-page VM exits
// dominate (81% in the paper's Fig 5) and the cost scales linearly with
// the reclaimed size — the pathology Squeezy avoids.
#ifndef SQUEEZY_HOTPLUG_BALLOON_H_
#define SQUEEZY_HOTPLUG_BALLOON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/host/hypervisor.h"
#include "src/hotplug/hotplug.h"
#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"

namespace squeezy {

struct BalloonOutcome {
  uint64_t pages = 0;
  UnplugBreakdown breakdown;  // vm_exits = host side; rest = guest alloc side.
  bool complete = false;

  DurationNs latency() const { return breakdown.total(); }
  uint64_t bytes() const { return PagesToBytes(pages); }
};

class BalloonDevice {
 public:
  BalloonDevice(MemMap* memmap, const CostModel* cost, Hypervisor* hv, VmId vm,
                CpuAccountant* cpu = nullptr, std::string guest_thread = "balloon/guest",
                std::string host_thread = "balloon/host");

  // Inflates by `bytes`: allocates order-0 pages from `zone` and reports
  // them.  Stops early if the zone runs dry (complete=false).
  BalloonOutcome Inflate(uint64_t bytes, Zone* zone, TimeNs now);

  // Deflates by `bytes` (most recently inflated first), returning pages to
  // their zones.  Returns guest-side latency.
  DurationNs Deflate(uint64_t bytes, MemMap& memmap, Zone* zone);

  uint64_t held_pages() const { return held_.size(); }
  uint64_t held_bytes() const { return PagesToBytes(held_.size()); }

 private:
  MemMap* memmap_;
  const CostModel* cost_;
  Hypervisor* hv_;
  VmId vm_;
  CpuAccountant* cpu_;
  std::string guest_thread_;
  std::string host_thread_;
  std::vector<Pfn> held_;
};

}  // namespace squeezy

#endif  // SQUEEZY_HOTPLUG_BALLOON_H_
