// Memory hot(un)plug core: the Linux add/online/offline/remove pipeline.
//
// Hotplugging a 128 MiB block: hot-add (init memmap) + online (release the
// pages to a zone).  Hotunplugging: offline (isolate free pages, migrate
// occupied folios out, retire the range) + hot-remove (tear down memmap,
// acknowledge to the hypervisor, which madvises the backing away).
//
// Latency is accounted per the calibrated cost model and broken down into
// the paper's Fig 5 slices: zeroing / migration / VM exits / rest.
#ifndef SQUEEZY_HOTPLUG_HOTPLUG_H_
#define SQUEEZY_HOTPLUG_HOTPLUG_H_

#include <cstdint>

#include "src/host/hypervisor.h"
#include "src/mm/memmap.h"
#include "src/mm/migration.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {

struct UnplugBreakdown {
  DurationNs zeroing = 0;    // init_on_alloc zeroing of offlining pages.
  DurationNs migration = 0;  // Evacuating occupied folios.
  DurationNs vm_exits = 0;   // Host-side exit + madvise work.
  DurationNs rest = 0;       // Isolation scans, metadata, fixed costs.

  DurationNs total() const { return zeroing + migration + vm_exits + rest; }
  void Add(const UnplugBreakdown& o) {
    zeroing += o.zeroing;
    migration += o.migration;
    vm_exits += o.vm_exits;
    rest += o.rest;
  }
};

struct OfflineOptions {
  // Squeezy: skip zeroing of offlining pages (deferred to the host, which
  // zeroes on re-allocation anyway).
  bool skip_zeroing = false;
  // Squeezy partitions are empty by construction; unplug asserts that no
  // migration is ever needed instead of silently doing it.
  bool allow_migration = true;
};

struct OfflineResult {
  bool ok = false;
  UnplugBreakdown breakdown;
  uint64_t pages_migrated = 0;
  uint64_t folios_migrated = 0;
};

class HotplugManager {
 public:
  // `owners` (nullable) receives folio relocation callbacks during
  // offline-driven migration.
  HotplugManager(MemMap* memmap, const CostModel* cost, Hypervisor* hv, VmId vm,
                 OwnerRegistry* owners);

  // --- Plug ---------------------------------------------------------------
  // kAbsent -> kPresent.  Returns latency (memmap init).
  DurationNs HotAddBlock(BlockIndex b);
  // kPresent -> kOnline: pages join `zone`'s buddy.
  DurationNs OnlineBlock(BlockIndex b, Zone* zone);

  // --- Unplug -------------------------------------------------------------
  // kOnline -> kOffline.  On failure (unmovable page / no migration room /
  // migration forbidden) the block is restored to kOnline and ok=false.
  // `now` anchors host-population accounting for migration copies.
  OfflineResult OfflineBlock(BlockIndex b, Zone* zone, Zone* migration_target,
                             const OfflineOptions& opts, TimeNs now = 0);
  // kOffline -> kAbsent + host acknowledgement (exit + madvise).  Returns
  // total latency; the breakdown's vm_exits slice grows by the host part.
  DurationNs HotRemoveBlock(BlockIndex b, UnplugBreakdown* breakdown, TimeNs now);

  // Lifetime totals (across all operations).
  uint64_t blocks_added() const { return blocks_added_; }
  uint64_t blocks_removed() const { return blocks_removed_; }
  uint64_t total_pages_migrated() const { return total_pages_migrated_; }

  MemMap* memmap() { return memmap_; }
  const CostModel& cost() const { return *cost_; }

 private:
  MemMap* memmap_;
  const CostModel* cost_;
  Hypervisor* hv_;
  VmId vm_;
  OwnerRegistry* owners_;
  uint64_t blocks_added_ = 0;
  uint64_t blocks_removed_ = 0;
  uint64_t total_pages_migrated_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_HOTPLUG_HOTPLUG_H_
