#include "src/hotplug/hotplug.h"

#include <cassert>

namespace squeezy {

HotplugManager::HotplugManager(MemMap* memmap, const CostModel* cost, Hypervisor* hv, VmId vm,
                               OwnerRegistry* owners)
    : memmap_(memmap), cost_(cost), hv_(hv), vm_(vm), owners_(owners) {
  assert(memmap_ != nullptr && cost_ != nullptr && hv_ != nullptr);
}

DurationNs HotplugManager::HotAddBlock(BlockIndex b) {
  assert(memmap_->block_state(b) == BlockState::kAbsent);
  memmap_->InitBlock(b);
  ++blocks_added_;
  return cost_->block_hotadd;
}

DurationNs HotplugManager::OnlineBlock(BlockIndex b, Zone* zone) {
  assert(memmap_->block_state(b) == BlockState::kPresent);
  zone->AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
  memmap_->set_block_state(b, BlockState::kOnline);
  return cost_->block_online;
}

OfflineResult HotplugManager::OfflineBlock(BlockIndex b, Zone* zone, Zone* migration_target,
                                           const OfflineOptions& opts, TimeNs now) {
  OfflineResult result;
  assert(memmap_->block_state(b) == BlockState::kOnline);
  memmap_->set_block_state(b, BlockState::kGoingOffline);

  const Pfn start = MemMap::BlockStart(b);

  // 1. Pull every free page out of the allocator.  The generic allocator
  //    path zeroes pages it hands out (init_on_alloc hardening), and it is
  //    oblivious to the fact that these pages are about to be unplugged —
  //    the waste Squeezy's skip_zeroing eliminates.
  const uint64_t isolated = zone->IsolateFreeRange(start, kPagesPerBlock);
  result.breakdown.rest += cost_->isolate_page * static_cast<int64_t>(kPagesPerBlock);
  if (!opts.skip_zeroing) {
    result.breakdown.zeroing += cost_->ZeroPages(isolated);
  }

  // 2. Evacuate occupied folios.
  const uint64_t occupied = kPagesPerBlock - isolated;
  if (occupied > 0) {
    if (!opts.allow_migration) {
      zone->UndoIsolation(start, kPagesPerBlock);
      memmap_->set_block_state(b, BlockState::kOnline);
      result.ok = false;
      return result;
    }
    const MigrateOutcome mig = MigrateOutOfRange(*memmap_, *zone, *migration_target, start,
                                                 kPagesPerBlock, *cost_, owners_);
    result.pages_migrated += mig.pages_moved;
    result.folios_migrated += mig.folios_moved;
    result.breakdown.migration += mig.cost;
    if (mig.pages_newly_backed > 0) {
      // Copies into previously-unbacked frames grew the host footprint;
      // the fault latency is already inside migrate_page.
      hv_->NestedFaultPopulate(vm_, /*extents=*/0, PagesToBytes(mig.pages_newly_backed), now);
    }
    if (!opts.skip_zeroing) {
      // The vacated frames also flow through the zeroing-on-isolation path.
      result.breakdown.zeroing += cost_->ZeroPages(mig.pages_moved);
    }
    if (!mig.ok) {
      zone->UndoIsolation(start, kPagesPerBlock);
      memmap_->set_block_state(b, BlockState::kOnline);
      result.ok = false;
      return result;
    }
  }
  total_pages_migrated_ += result.pages_migrated;

  // 3. Retire the fully-isolated range.
  zone->RetireRange(start, kPagesPerBlock);
  memmap_->set_block_state(b, BlockState::kOffline);
  result.breakdown.rest += cost_->block_offline_fixed;
  result.ok = true;
  return result;
}

DurationNs HotplugManager::HotRemoveBlock(BlockIndex b, UnplugBreakdown* breakdown, TimeNs now) {
  assert(memmap_->block_state(b) == BlockState::kOffline);

  // Count and clear host backing: the hypervisor madvises it away.
  const Pfn start = MemMap::BlockStart(b);
  uint64_t populated = 0;
  for (Pfn pfn = start; pfn < start + kPagesPerBlock; ++pfn) {
    Page& p = memmap_->page(pfn);
    if (p.host_populated) {
      ++populated;
      p.host_populated = false;
    }
  }
  memmap_->TeardownBlock(b);
  ++blocks_removed_;

  const DurationNs host_side = hv_->AckUnplugBlock(vm_, PagesToBytes(populated), now);
  if (breakdown != nullptr) {
    breakdown->vm_exits += host_side;
  }
  return host_side;
}

}  // namespace squeezy
