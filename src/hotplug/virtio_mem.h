// virtio-mem device + guest driver model.
//
// The device owns a contiguous hot(un)pluggable region of guest physical
// space, sliced into 128 MiB blocks.  The hypervisor adjusts the device's
// requested size; the guest driver plugs or unplugs whole blocks to
// converge, using the kernel hot(un)plug pipeline (HotplugManager).
//
// Policy differences between vanilla Linux and Squeezy are expressed via
// VirtioMemHooks: which zone a freshly plugged block onlines into, which
// blocks are candidates for unplug, and whether offline may migrate.
#ifndef SQUEEZY_HOTPLUG_VIRTIO_MEM_H_
#define SQUEEZY_HOTPLUG_VIRTIO_MEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hotplug/hotplug.h"
#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"

namespace squeezy {

class VirtioMemHooks {
 public:
  virtual ~VirtioMemHooks() = default;

  // Up to `max_blocks` plug candidates, in order (must be kAbsent).
  // Vanilla picks the lowest absent blocks; Squeezy returns the blocks of
  // the partitions it wants populated.
  virtual std::vector<BlockIndex> SelectPlugBlocks(uint64_t max_blocks) = 0;
  // Zone a freshly hot-added block should online into.
  virtual Zone* OnlineTargetZone(BlockIndex b) = 0;
  // Notification after the block is online (Squeezy: populate partition,
  // wake waiters).
  virtual void OnBlockOnline(BlockIndex /*b*/) {}

  // Up to `max_blocks` unplug candidates, best-first.  The driver offlines
  // them in order until the request is met.
  virtual std::vector<BlockIndex> SelectUnplugBlocks(uint64_t max_blocks) = 0;
  virtual OfflineOptions OfflineOptionsFor(BlockIndex b) = 0;
  // Zone that owns the block's pages (offline source).
  virtual Zone* BlockZone(BlockIndex b) = 0;
  // Where evacuated folios go (vanilla: same zone; unused when migration
  // is forbidden).
  virtual Zone* MigrationTarget(BlockIndex b) = 0;
  // Notification after a block went offline+removed (Squeezy: mark the
  // partition empty/unplugged).
  virtual void OnBlockUnplugged(BlockIndex /*b*/) {}
};

struct VirtioMemConfig {
  BlockIndex first_block = 0;  // Device region start (block index).
  uint32_t nr_blocks = 0;      // Device region size in blocks.
  // Abort an unplug request once its accumulated latency exceeds this
  // (Linux virtio-mem retries with timeouts; under memory pressure the
  // request completes partially — paper §6.2.2).
  DurationNs unplug_timeout = Sec(5);
  // Thread names for CPU accounting.
  std::string guest_thread = "virtio_mem/guest";
  std::string host_thread = "virtio_mem/host";
};

struct PlugOutcome {
  uint64_t bytes_plugged = 0;
  DurationNs latency = 0;
  std::vector<BlockIndex> blocks;
  bool complete = false;
};

struct UnplugOutcome {
  uint64_t bytes_unplugged = 0;
  uint64_t blocks_unplugged = 0;
  uint64_t pages_migrated = 0;
  UnplugBreakdown breakdown;
  bool complete = false;
  bool timed_out = false;

  DurationNs latency() const { return breakdown.total(); }
};

class VirtioMemDevice {
 public:
  VirtioMemDevice(const VirtioMemConfig& config, HotplugManager* hotplug, VirtioMemHooks* hooks,
                  CpuAccountant* cpu = nullptr);

  // Plug `bytes` (rounded up to whole blocks).  Picks the lowest absent
  // blocks in the device region.  `now` anchors CPU accounting.
  PlugOutcome Plug(uint64_t bytes, TimeNs now);

  // Unplug `bytes` (rounded up to whole blocks).  Offlines candidate
  // blocks until satisfied, the candidates run out, or the timeout hits.
  UnplugOutcome Unplug(uint64_t bytes, TimeNs now);

  uint64_t plugged_bytes() const { return static_cast<uint64_t>(plugged_blocks_) * kMemoryBlockBytes; }
  uint32_t plugged_blocks() const { return plugged_blocks_; }
  uint64_t region_bytes() const { return static_cast<uint64_t>(config_.nr_blocks) * kMemoryBlockBytes; }
  const VirtioMemConfig& config() const { return config_; }

  // Lifetime unplug stats (for throughput reporting).
  uint64_t total_unplugged_bytes() const { return total_unplugged_bytes_; }
  DurationNs total_unplug_time() const { return total_unplug_time_; }

 private:
  VirtioMemConfig config_;
  HotplugManager* hotplug_;
  VirtioMemHooks* hooks_;
  CpuAccountant* cpu_;
  uint32_t plugged_blocks_ = 0;
  uint64_t total_unplugged_bytes_ = 0;
  DurationNs total_unplug_time_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_HOTPLUG_VIRTIO_MEM_H_
