#include "src/mm/memmap.h"

#include <cassert>

namespace squeezy {

MemMap::MemMap(uint64_t span_bytes) {
  const uint64_t blocks = BytesToBlocks(span_bytes);
  assert(blocks > 0);
  assert(blocks * kPagesPerBlock < kInvalidPfn);
  pages_.resize(blocks * kPagesPerBlock);
  blocks_.assign(blocks, BlockState::kAbsent);
  allocated_per_block_.assign(blocks, 0);
}

void MemMap::InitBlock(BlockIndex b) {
  assert(blocks_[b] == BlockState::kAbsent);
  const Pfn start = BlockStart(b);
  for (Pfn pfn = start; pfn < start + kPagesPerBlock; ++pfn) {
    Page& p = pages_[pfn];
    assert(p.state == PageState::kHole);
    p = Page{};
    p.state = PageState::kOffline;
  }
  blocks_[b] = BlockState::kPresent;
}

void MemMap::TeardownBlock(BlockIndex b) {
  assert(blocks_[b] == BlockState::kOffline || blocks_[b] == BlockState::kPresent);
  const Pfn start = BlockStart(b);
  for (Pfn pfn = start; pfn < start + kPagesPerBlock; ++pfn) {
    Page& p = pages_[pfn];
    assert(p.state == PageState::kOffline);
    // Host population survives guest-side teardown only conceptually; the
    // hypervisor clears it via madvise when it reclaims the range.
    const bool populated = p.host_populated;
    p = Page{};
    p.state = PageState::kHole;
    p.host_populated = populated;
  }
  blocks_[b] = BlockState::kAbsent;
}

uint64_t MemMap::CountBlockPages(BlockIndex b, PageState state) const {
  const Pfn start = BlockStart(b);
  uint64_t n = 0;
  for (Pfn pfn = start; pfn < start + kPagesPerBlock; ++pfn) {
    if (pages_[pfn].state == state) {
      ++n;
    }
  }
  return n;
}

Pfn MemMap::FolioHead(Pfn pfn) const {
  // Walk down to the aligned head: heads are naturally aligned, so clear
  // low bits until we find the flagged head page.
  for (uint8_t order = 0; order <= kMaxPageOrder; ++order) {
    const Pfn candidate = pfn & ~((1u << order) - 1);
    if (pages_[candidate].head) {
      return candidate;
    }
  }
  assert(false && "no folio head found");
  return kInvalidPfn;
}

uint32_t MemMap::CountBlocks(BlockState s) const {
  uint32_t n = 0;
  for (const BlockState b : blocks_) {
    if (b == s) {
      ++n;
    }
  }
  return n;
}

}  // namespace squeezy
