#include "src/mm/memmap.h"

#include <cassert>

namespace squeezy {

MemMap::MemMap(uint64_t span_bytes) {
  const uint64_t blocks = BytesToBlocks(span_bytes);
  assert(blocks > 0);
  assert(blocks * kPagesPerBlock < kInvalidPfn);
  span_pages_ = blocks * kPagesPerBlock;
  chunks_.resize(blocks);
  blocks_.assign(blocks, BlockState::kAbsent);
  allocated_per_block_.assign(blocks, 0);
}

const Page& MemMap::HolePage() {
  // Never written: const page() hands it out for absent chunks only, and
  // every mutable access goes through the materializing overload.
  static const Page kHole{};
  return kHole;
}

Page* MemMap::Materialize(BlockIndex b) {
  assert(chunks_[b] == nullptr);
  // Value-initialization: every page starts as Page{} — state kHole,
  // nothing populated — exactly the flat array's initial state.
  chunks_[b] = std::make_unique<Page[]>(kPagesPerBlock);
  ++materialized_;
  materialized_peak_ = materialized_ > materialized_peak_ ? materialized_ : materialized_peak_;
  return chunks_[b].get();
}

void MemMap::InitBlock(BlockIndex b) {
  assert(blocks_[b] == BlockState::kAbsent);
  Page* chunk = chunks_[b] != nullptr ? chunks_[b].get() : Materialize(b);
  for (uint32_t i = 0; i < kPagesPerBlock; ++i) {
    Page& p = chunk[i];
    assert(p.state == PageState::kHole);
    p = Page{};
    p.state = PageState::kOffline;
  }
  blocks_[b] = BlockState::kPresent;
}

void MemMap::TeardownBlock(BlockIndex b) {
  assert(blocks_[b] == BlockState::kOffline || blocks_[b] == BlockState::kPresent);
  // A block in either state went through InitBlock, so its chunk exists.
  Page* chunk = chunks_[b].get();
  assert(chunk != nullptr);
  bool any_populated = false;
  for (uint32_t i = 0; i < kPagesPerBlock; ++i) {
    Page& p = chunk[i];
    assert(p.state == PageState::kOffline);
    // Host population survives guest-side teardown only conceptually; the
    // hypervisor clears it via madvise when it reclaims the range.
    const bool populated = p.host_populated;
    p = Page{};
    p.state = PageState::kHole;
    p.host_populated = populated;
    any_populated = any_populated || populated;
  }
  blocks_[b] = BlockState::kAbsent;
  if (!any_populated) {
    // Every page is back to the default-hole state the const accessor
    // synthesizes — drop the chunk and return its sim memory (the
    // hypervisor's HotRemoveBlock clears host_populated before tearing
    // down, so real unplugs always take this path).
    chunks_[b].reset();
    --materialized_;
  }
}

uint64_t MemMap::CountBlockPages(BlockIndex b, PageState state) const {
  const Page* chunk = chunks_[b].get();
  if (chunk == nullptr) {
    // Unmaterialized: kPagesPerBlock default holes.
    return state == PageState::kHole ? kPagesPerBlock : 0;
  }
  uint64_t n = 0;
  for (uint32_t i = 0; i < kPagesPerBlock; ++i) {
    if (chunk[i].state == state) {
      ++n;
    }
  }
  return n;
}

Pfn MemMap::FolioHead(Pfn pfn) const {
  // Walk down to the aligned head: heads are naturally aligned, so clear
  // low bits until we find the flagged head page.  (Folios never span
  // blocks — kMaxPageOrder < log2(kPagesPerBlock) — so all candidates hit
  // the same chunk; on an absent chunk every candidate reads as an
  // unflagged hole and the walk asserts, same as the flat array.)
  for (uint8_t order = 0; order <= kMaxPageOrder; ++order) {
    const Pfn candidate = pfn & ~((1u << order) - 1);
    if (page(candidate).head) {
      return candidate;
    }
  }
  assert(false && "no folio head found");
  return kInvalidPfn;
}

uint32_t MemMap::CountBlocks(BlockState s) const {
  uint32_t n = 0;
  for (const BlockState b : blocks_) {
    if (b == s) {
      ++n;
    }
  }
  return n;
}

}  // namespace squeezy
