#include "src/mm/page_cache.h"

#include <cassert>

namespace squeezy {

int32_t PageCache::RegisterFile(std::string name, uint64_t size_bytes) {
  File f;
  f.name = std::move(name);
  f.size_bytes = size_bytes;
  f.pages.assign(BytesToPages(size_bytes), kInvalidPfn);
  files_.push_back(std::move(f));
  return static_cast<int32_t>(files_.size()) - 1;
}

uint64_t PageCache::FilePages(int32_t file) const {
  return files_[static_cast<size_t>(file)].pages.size();
}

bool PageCache::Cached(int32_t file, uint64_t page_idx) const {
  return files_[static_cast<size_t>(file)].pages[page_idx] != kInvalidPfn;
}

Pfn PageCache::Lookup(int32_t file, uint64_t page_idx) const {
  return files_[static_cast<size_t>(file)].pages[page_idx];
}

void PageCache::Insert(int32_t file, uint64_t page_idx, Pfn pfn) {
  File& f = files_[static_cast<size_t>(file)];
  assert(f.pages[page_idx] == kInvalidPfn);
  f.pages[page_idx] = pfn;
  ++f.cached;
  ++total_cached_;
}

void PageCache::Relocate(int32_t file, uint64_t page_idx, Pfn new_pfn) {
  File& f = files_[static_cast<size_t>(file)];
  assert(f.pages[page_idx] != kInvalidPfn);
  f.pages[page_idx] = new_pfn;
}

Pfn PageCache::Remove(int32_t file, uint64_t page_idx) {
  File& f = files_[static_cast<size_t>(file)];
  const Pfn old = f.pages[page_idx];
  assert(old != kInvalidPfn);
  f.pages[page_idx] = kInvalidPfn;
  assert(f.cached > 0 && total_cached_ > 0);
  --f.cached;
  --total_cached_;
  return old;
}

}  // namespace squeezy
