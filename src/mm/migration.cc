#include "src/mm/migration.h"

#include <cassert>

namespace squeezy {

MigrateOutcome MigrateOutOfRange(MemMap& memmap, Zone& src_zone, Zone& target_zone, Pfn start,
                                 uint64_t npages, const CostModel& cost, OwnerRegistry* owners) {
  MigrateOutcome outcome;
  const Pfn end = start + npages;
  Pfn pfn = start;
  while (pfn < end) {
    Page& p = memmap.page(pfn);
    if (p.state != PageState::kAllocated) {
      ++pfn;
      continue;
    }
    assert(p.head && "allocated tail encountered before its head in range scan");
    if (p.kind == PageKind::kKernel) {
      // Pinned/unmovable memory: offline cannot proceed.
      outcome.ok = false;
      return outcome;
    }
    const uint8_t order = p.order;
    const PageKind kind = p.kind;
    const int32_t owner = p.owner;
    const uint32_t owner_slot = p.owner_slot;
    const uint32_t folio_pages = 1u << order;

    const Pfn target = target_zone.Alloc(order, kind, owner, owner_slot);
    if (target == kInvalidPfn) {
      outcome.ok = false;  // Nowhere to migrate to (memory pressure).
      return outcome;
    }
    assert(!(target >= start && target < end) && "target allocated inside isolating range");

    // The copy writes every byte of the target folio; the host backs it as
    // a side effect (cost folded into migrate_page).
    for (uint32_t i = 0; i < folio_pages; ++i) {
      Page& tp = memmap.page(target + i);
      if (!tp.host_populated) {
        tp.host_populated = true;
        ++outcome.pages_newly_backed;
      }
    }
    src_zone.FreeIntoIsolation(pfn);
    if (owners != nullptr) {
      owners->RelocateFolio(kind, owner, owner_slot, target);
    }

    outcome.folios_moved += 1;
    outcome.pages_moved += folio_pages;
    outcome.cost += cost.MigrateFolio(folio_pages);
    pfn += folio_pages;
  }
  return outcome;
}

}  // namespace squeezy
