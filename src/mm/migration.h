// Page migration: evacuating occupied folios out of an offlining range.
//
// This is the operation whose cost dominates vanilla virtio-mem unplug in
// the paper (61.5% of unplug latency on average, Fig 5) and whose CPU
// consumption interferes with co-located instances (Fig 7/9).  Squeezy's
// whole point is to never need it on the reclaim path.
#ifndef SQUEEZY_MM_MIGRATION_H_
#define SQUEEZY_MM_MIGRATION_H_

#include <cstdint>

#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {

// Consumers that track folio locations (processes, the page cache)
// implement this so migration can patch their tables in O(1).
class OwnerRegistry {
 public:
  virtual ~OwnerRegistry() = default;
  // The folio identified by (kind, owner, owner_slot) now lives at
  // `new_head`.
  virtual void RelocateFolio(PageKind kind, int32_t owner, uint32_t owner_slot, Pfn new_head) = 0;
};

struct MigrateOutcome {
  bool ok = true;               // False: unmovable page or target exhaustion.
  uint64_t folios_moved = 0;
  uint64_t pages_moved = 0;
  // Target frames that gained host backing during the copies (the caller
  // must charge these to the hypervisor's population books; the latency is
  // already folded into migrate_page).
  uint64_t pages_newly_backed = 0;
  DurationNs cost = 0;          // Guest CPU time consumed by the copies.
};

// Moves every allocated folio in [start, start + npages) into free space
// of `target_zone`.  The range's free pages must already be isolated so
// the target allocation cannot land back inside the range.  Folio frames
// vacated in the range go straight to kIsolated.
//
// On failure the outcome reports the partial progress; the caller decides
// whether to undo the isolation (offline abort).
MigrateOutcome MigrateOutOfRange(MemMap& memmap, Zone& src_zone, Zone& target_zone, Pfn start,
                                 uint64_t npages, const CostModel& cost, OwnerRegistry* owners);

}  // namespace squeezy

#endif  // SQUEEZY_MM_MIGRATION_H_
