// Guest page cache: file -> resident page mapping.
//
// File-backed memory (container rootfs, language runtimes, model files) is
// faulted in once and shared by every instance that maps it.  Under
// Squeezy these pages live in the dedicated shared partition; in a vanilla
// VM they live in ZONE_MOVABLE interleaved with anonymous memory.
#ifndef SQUEEZY_MM_PAGE_CACHE_H_
#define SQUEEZY_MM_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/mm/page.h"
#include "src/sim/cost_model.h"

namespace squeezy {

class PageCache {
 public:
  // Registers a file of `size_bytes`; returns its file id.
  int32_t RegisterFile(std::string name, uint64_t size_bytes);

  uint64_t FilePages(int32_t file) const;
  uint64_t file_size(int32_t file) const { return files_[file].size_bytes; }
  const std::string& file_name(int32_t file) const { return files_[file].name; }
  size_t file_count() const { return files_.size(); }

  bool Cached(int32_t file, uint64_t page_idx) const;
  Pfn Lookup(int32_t file, uint64_t page_idx) const;
  void Insert(int32_t file, uint64_t page_idx, Pfn pfn);
  // Migration callback: page `page_idx` of `file` moved to `new_pfn`.
  void Relocate(int32_t file, uint64_t page_idx, Pfn new_pfn);
  // Forgets the mapping (caller frees the page).  Returns the old pfn.
  Pfn Remove(int32_t file, uint64_t page_idx);

  uint64_t cached_pages(int32_t file) const { return files_[file].cached; }
  uint64_t total_cached_pages() const { return total_cached_; }
  uint64_t total_cached_bytes() const { return PagesToBytes(total_cached_); }

  // --- Backing source (cross-host shared dependency cache) -------------------
  // Per-file resolver of the cold-miss backing cost in ns per 1000 bytes;
  // < 0 means the cost model's backing-store IO rate.  The FaaS runtime
  // installs one on dependency files that answers from the live registry
  // — the network rate exactly while a peer host holds the image warm —
  // so the charge can never go stale between admission and fault time.
  void SetBackingResolver(int32_t file, std::function<DurationNs()> resolver) {
    files_[file].backing_resolver = std::move(resolver);
  }
  DurationNs backing_cost(int32_t file) const {
    const File& f = files_[file];
    return f.backing_resolver ? f.backing_resolver() : -1;
  }
  // Cold-miss read accounting, split by source (disk IO vs. peer fetch vs.
  // pages adopted from a host-resident image without any read at all vs.
  // pages bulk-prefetched out of a recorded snapshot working set).
  void CountDiskRead(int32_t file, uint64_t bytes) { files_[file].disk_read_bytes += bytes; }
  void CountRemoteRead(int32_t file, uint64_t bytes) { files_[file].remote_read_bytes += bytes; }
  void CountAdopted(int32_t file, uint64_t bytes) { files_[file].adopted_bytes += bytes; }
  void CountRestored(int32_t file, uint64_t bytes) { files_[file].restored_bytes += bytes; }
  uint64_t disk_read_bytes(int32_t file) const { return files_[file].disk_read_bytes; }
  uint64_t remote_read_bytes(int32_t file) const { return files_[file].remote_read_bytes; }
  uint64_t adopted_bytes(int32_t file) const { return files_[file].adopted_bytes; }
  uint64_t restored_bytes(int32_t file) const { return files_[file].restored_bytes; }

 private:
  struct File {
    std::string name;
    uint64_t size_bytes = 0;
    uint64_t cached = 0;
    std::function<DurationNs()> backing_resolver;  // Unset: disk IO default.
    uint64_t disk_read_bytes = 0;
    uint64_t remote_read_bytes = 0;
    uint64_t adopted_bytes = 0;
    uint64_t restored_bytes = 0;
    std::vector<Pfn> pages;  // Indexed by page_idx; kInvalidPfn = absent.
  };
  std::vector<File> files_;
  uint64_t total_cached_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_MM_PAGE_CACHE_H_
