#include "src/mm/zone.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace squeezy {

const char* ZoneTypeName(ZoneType t) {
  switch (t) {
    case ZoneType::kNormal:
      return "Normal";
    case ZoneType::kMovable:
      return "Movable";
    case ZoneType::kSqueezyPrivate:
      return "SqueezyPrivate";
    case ZoneType::kSqueezyShared:
      return "SqueezyShared";
  }
  return "?";
}

Zone::Zone(int16_t id, ZoneType type, std::string name, MemMap* memmap, Rng* shuffle_rng)
    : id_(id), type_(type), name_(std::move(name)), memmap_(memmap), shuffle_rng_(shuffle_rng) {
  assert(memmap_ != nullptr);
}

void Zone::ListPushFront(uint8_t order, Pfn pfn) {
  FreeArea& area = areas_[order];
  Page& p = memmap_->page(pfn);
  p.prev_free = kInvalidPfn;
  p.next_free = area.head;
  if (area.head != kInvalidPfn) {
    memmap_->page(area.head).prev_free = pfn;
  } else {
    area.tail = pfn;
  }
  area.head = pfn;
  ++area.nr_free;
}

void Zone::ListPushBack(uint8_t order, Pfn pfn) {
  FreeArea& area = areas_[order];
  Page& p = memmap_->page(pfn);
  p.next_free = kInvalidPfn;
  p.prev_free = area.tail;
  if (area.tail != kInvalidPfn) {
    memmap_->page(area.tail).next_free = pfn;
  } else {
    area.head = pfn;
  }
  area.tail = pfn;
  ++area.nr_free;
}

void Zone::ListRemove(uint8_t order, Pfn pfn) {
  FreeArea& area = areas_[order];
  Page& p = memmap_->page(pfn);
  if (p.prev_free != kInvalidPfn) {
    memmap_->page(p.prev_free).next_free = p.next_free;
  } else {
    assert(area.head == pfn);
    area.head = p.next_free;
  }
  if (p.next_free != kInvalidPfn) {
    memmap_->page(p.next_free).prev_free = p.prev_free;
  } else {
    assert(area.tail == pfn);
    area.tail = p.prev_free;
  }
  p.next_free = kInvalidPfn;
  p.prev_free = kInvalidPfn;
  assert(area.nr_free > 0);
  --area.nr_free;
}

Pfn Zone::ListPopFront(uint8_t order) {
  FreeArea& area = areas_[order];
  if (area.head == kInvalidPfn) {
    return kInvalidPfn;
  }
  const Pfn pfn = area.head;
  ListRemove(order, pfn);
  return pfn;
}

void Zone::StampFreeChunk(Pfn pfn, uint8_t order) {
  const uint32_t n = 1u << order;
  for (uint32_t i = 0; i < n; ++i) {
    Page& p = memmap_->page(pfn + i);
    p.state = PageState::kFree;
    p.kind = PageKind::kNone;
    p.head = (i == 0);
    p.order = order;
    p.zone_id = id_;
    p.owner = kNoOwner;
    p.owner_slot = 0;
  }
}

void Zone::FreeChunk(Pfn pfn, uint8_t order, bool fresh) {
  assert((pfn & ((1u << order) - 1)) == 0 && "chunk must be naturally aligned");
  // Coalesce with the buddy while possible.
  while (order < kMaxPageOrder) {
    const Pfn buddy = pfn ^ (1u << order);
    if (buddy >= memmap_->span_pages()) {
      break;
    }
    const Page& bp = memmap_->page(buddy);
    if (bp.state != PageState::kFree || !bp.head || bp.order != order || bp.zone_id != id_) {
      break;
    }
    ListRemove(order, buddy);
    memmap_->page(buddy).head = false;
    pfn = std::min(pfn, buddy);
    ++order;
  }
  StampFreeChunk(pfn, order);
  // Insertion policy mirrors Linux behaviour closely enough for placement
  // realism: freshly onlined memory queues at the tail (a new zone hands
  // out ascending addresses) — randomized in shuffled zones (the
  // SHUFFLE_PAGE_ALLOCATOR effect) — while runtime frees always go to the
  // head: the kernel reuses recently-freed (host-backed, cache-hot) pages
  // first, which keeps a VM's host footprint near its high watermark
  // instead of creeping across the whole region.
  if (fresh && shuffle_rng_ != nullptr && shuffle_rng_->Chance(0.5)) {
    ListPushFront(order, pfn);
  } else if (fresh) {
    ListPushBack(order, pfn);
  } else {
    ListPushFront(order, pfn);
  }
}

void Zone::AddFreeRange(Pfn start, uint64_t npages) {
  // Attribute pages to this zone first.
  for (Pfn pfn = start; pfn < start + npages; ++pfn) {
    Page& p = memmap_->page(pfn);
    assert(p.state == PageState::kOffline);
    p.zone_id = id_;
  }
  present_pages_ += npages;
  managed_pages_ += npages;
  free_pages_ += npages;

  // Free maximal naturally-aligned chunks.
  std::vector<std::pair<Pfn, uint8_t>> chunks;
  Pfn pfn = start;
  uint64_t remaining = npages;
  while (remaining > 0) {
    uint8_t order = kMaxPageOrder;
    while (order > 0 && (((pfn & ((1u << order) - 1)) != 0) || ((1u << order) > remaining))) {
      --order;
    }
    chunks.push_back({pfn, order});
    pfn += 1u << order;
    remaining -= 1u << order;
  }
  // Linux's shuffle_page_allocator randomizes the free-list order of
  // onlined memory so steady-state allocations scatter across blocks;
  // that scatter is what makes vanilla unplug migrate (paper §2.2).
  if (shuffle_rng_ != nullptr) {
    shuffle_rng_->Shuffle(chunks.begin(), chunks.end());
  }
  for (const auto& [chunk_pfn, chunk_order] : chunks) {
    FreeChunk(chunk_pfn, chunk_order, /*fresh=*/true);
  }
}

Pfn Zone::Alloc(uint8_t order, PageKind kind, int32_t owner, uint32_t owner_slot) {
  assert(order <= kMaxPageOrder);
  // Find the smallest order with a free chunk.
  uint8_t from = order;
  while (from <= kMaxPageOrder && areas_[from].nr_free == 0) {
    ++from;
  }
  if (from > kMaxPageOrder) {
    return kInvalidPfn;
  }
  Pfn chunk = ListPopFront(from);
  assert(chunk != kInvalidPfn);

  // Split down, returning upper halves to the free lists.
  while (from > order) {
    --from;
    const Pfn upper = chunk + (1u << from);
    StampFreeChunk(upper, from);
    ListPushFront(from, upper);
  }

  const uint32_t n = 1u << order;
  for (uint32_t i = 0; i < n; ++i) {
    Page& p = memmap_->page(chunk + i);
    p.state = PageState::kAllocated;
    p.kind = kind;
    p.head = (i == 0);
    p.order = order;
    p.owner = (i == 0) ? owner : kNoOwner;
    p.owner_slot = (i == 0) ? owner_slot : 0;
    p.next_free = kInvalidPfn;
    p.prev_free = kInvalidPfn;
  }
  assert(free_pages_ >= n);
  free_pages_ -= n;
  memmap_->AdjustBlockAllocated(chunk, n);
  return chunk;
}

void Zone::Free(Pfn head) {
  Page& p = memmap_->page(head);
  assert(p.state == PageState::kAllocated && p.head);
  assert(p.zone_id == id_);
  const uint8_t order = p.order;
  free_pages_ += 1u << order;
  memmap_->AdjustBlockAllocated(head, -static_cast<int64_t>(1u << order));
  FreeChunk(head, order);
}

void Zone::FreeIntoIsolation(Pfn head) {
  Page& p = memmap_->page(head);
  assert(p.state == PageState::kAllocated && p.head);
  assert(p.zone_id == id_);
  const uint32_t n = 1u << p.order;
  memmap_->AdjustBlockAllocated(head, -static_cast<int64_t>(n));
  for (uint32_t i = 0; i < n; ++i) {
    Page& q = memmap_->page(head + i);
    q.state = PageState::kIsolated;
    q.kind = PageKind::kNone;
    q.head = false;
    q.order = 0;
    q.owner = kNoOwner;
    q.owner_slot = 0;
  }
  // Isolated pages no longer count as allocatable; they were allocated, so
  // free_pages_ is unchanged.
}

uint64_t Zone::IsolateFreeRange(Pfn start, uint64_t npages) {
  uint64_t isolated = 0;
  Pfn pfn = start;
  const Pfn end = start + npages;
  while (pfn < end) {
    Page& p = memmap_->page(pfn);
    if (p.state == PageState::kFree && p.head) {
      const uint8_t order = p.order;
      const uint32_t n = 1u << order;
      assert(pfn + n <= end && "free chunks never straddle block boundaries");
      ListRemove(order, pfn);
      for (uint32_t i = 0; i < n; ++i) {
        Page& q = memmap_->page(pfn + i);
        q.state = PageState::kIsolated;
        q.head = false;
        q.order = 0;
      }
      isolated += n;
      pfn += n;
    } else {
      assert(p.state != PageState::kFree && "tail free page without a head in range");
      ++pfn;
    }
  }
  assert(free_pages_ >= isolated);
  free_pages_ -= isolated;
  return isolated;
}

void Zone::UndoIsolation(Pfn start, uint64_t npages) {
  // Re-free maximal runs of isolated pages.
  Pfn pfn = start;
  const Pfn end = start + npages;
  while (pfn < end) {
    if (memmap_->page(pfn).state != PageState::kIsolated) {
      ++pfn;
      continue;
    }
    Pfn run_end = pfn;
    while (run_end < end && memmap_->page(run_end).state == PageState::kIsolated) {
      ++run_end;
    }
    uint64_t remaining = run_end - pfn;
    free_pages_ += remaining;
    while (remaining > 0) {
      uint8_t order = kMaxPageOrder;
      while (order > 0 && (((pfn & ((1u << order) - 1)) != 0) || ((1u << order) > remaining))) {
        --order;
      }
      FreeChunk(pfn, order);
      pfn += 1u << order;
      remaining -= 1u << order;
    }
  }
}

void Zone::RetireRange(Pfn start, uint64_t npages) {
  for (Pfn pfn = start; pfn < start + npages; ++pfn) {
    Page& p = memmap_->page(pfn);
    assert(p.state == PageState::kIsolated);
    assert(p.zone_id == id_);
    p.state = PageState::kOffline;
    p.zone_id = -1;
    p.head = false;
    p.order = 0;
  }
  assert(present_pages_ >= npages && managed_pages_ >= npages);
  present_pages_ -= npages;
  managed_pages_ -= npages;
}

void Zone::ShuffleFreeLists(Rng& rng) {
  for (uint8_t order = 0; order <= kMaxPageOrder; ++order) {
    FreeArea& area = areas_[order];
    std::vector<Pfn> chunks;
    chunks.reserve(area.nr_free);
    for (Pfn pfn = area.head; pfn != kInvalidPfn; pfn = memmap_->page(pfn).next_free) {
      chunks.push_back(pfn);
    }
    rng.Shuffle(chunks.begin(), chunks.end());
    area.head = kInvalidPfn;
    area.tail = kInvalidPfn;
    area.nr_free = 0;
    for (const Pfn pfn : chunks) {
      ListPushBack(order, pfn);
    }
  }
}

bool Zone::CheckFreeLists() const {
  uint64_t pages_seen = 0;
  for (uint8_t order = 0; order <= kMaxPageOrder; ++order) {
    const FreeArea& area = areas_[order];
    uint64_t chunks = 0;
    Pfn prev = kInvalidPfn;
    for (Pfn pfn = area.head; pfn != kInvalidPfn; pfn = memmap_->page(pfn).next_free) {
      const Page& p = memmap_->page(pfn);
      if (p.state != PageState::kFree || !p.head || p.order != order || p.zone_id != id_) {
        return false;
      }
      if ((pfn & ((1u << order) - 1)) != 0) {
        return false;  // Misaligned chunk.
      }
      if (p.prev_free != prev) {
        return false;  // Broken back-link.
      }
      prev = pfn;
      ++chunks;
      pages_seen += 1u << order;
      if (chunks > area.nr_free) {
        return false;  // Cycle or counter mismatch.
      }
    }
    if (area.tail != prev || chunks != area.nr_free) {
      return false;
    }
  }
  return pages_seen == free_pages_;
}

}  // namespace squeezy
