// The guest memory map: per-page `struct page` state over the managed
// guest physical span plus the hotplug memory-block state machine (Linux
// adds and removes memory in 128 MiB blocks on x86).
//
// Extent representation: the per-page array is materialized LAZILY, one
// 128 MiB-block chunk at a time, only where pages are actually touched.
// A serverless guest's span is dominated by the hotplug region sized for
// peak concurrency — mostly permanent holes at paper footprints — and the
// flat array made that slack the dominant per-host sim RSS (~205 MiB/host
// at paper sizes, the reason the fig12 shard sweep had to shrink
// functions).  Unmaterialized chunks read as default pages (kHole,
// nothing populated) through the const accessor; the first write
// materializes the chunk (value-initialized, so reads-before-writes see
// exactly the flat array's initial state).  Hot-remove frees a chunk
// again once no host-populated flag survives the teardown, so a VM that
// plugged high and unplugged returns the sim memory too.  Every state
// transition is bit-identical to the flat representation — only RSS
// changes.
//
// Reference stability: `page()` references are invalidated by
// TeardownBlock of that page's block (chunk free), unlike the flat array
// where they stayed valid-but-kHole.  All existing call sites hold Page&
// only within one operation on an online/offline block, never across a
// teardown.
#ifndef SQUEEZY_MM_MEMMAP_H_
#define SQUEEZY_MM_MEMMAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mm/page.h"
#include "src/sim/cost_model.h"

namespace squeezy {

using BlockIndex = uint32_t;

enum class BlockState : uint8_t {
  kAbsent,        // No memory behind the block (never added / removed).
  kPresent,       // Hot-added: memmap initialized, pages offline.
  kOnline,        // Pages released to a zone's allocator.
  kGoingOffline,  // Offlining in progress (pages isolating/migrating).
  kOffline,       // Pages retracted from the allocator, still present.
};

class MemMap {
 public:
  // Creates the map for a guest span of `span_bytes` (rounded up to whole
  // 128 MiB blocks).  All blocks start kAbsent with no chunk materialized.
  explicit MemMap(uint64_t span_bytes);

  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;

  uint64_t span_pages() const { return span_pages_; }
  uint32_t block_count() const { return static_cast<uint32_t>(blocks_.size()); }

  // Mutable access materializes the page's chunk on first touch (fresh
  // pages are value-initialized: kHole, nothing populated — the flat
  // array's initial state).
  Page& page(Pfn pfn) {
    const BlockIndex b = BlockOf(pfn);
    Page* chunk = chunks_[b].get();
    if (chunk == nullptr) {
      chunk = Materialize(b);
    }
    return chunk[pfn - BlockStart(b)];
  }
  // Const access never materializes: an absent chunk reads as the
  // default (hole) page.
  const Page& page(Pfn pfn) const {
    const Page* chunk = chunks_[BlockOf(pfn)].get();
    return chunk != nullptr ? chunk[pfn - BlockStart(BlockOf(pfn))] : HolePage();
  }

  // Whether block b's per-page chunk is currently backed by sim memory.
  // Full-span walkers skip unmaterialized blocks — every page there is a
  // default hole.
  bool BlockMaterialized(BlockIndex b) const { return chunks_[b] != nullptr; }

  BlockState block_state(BlockIndex b) const { return blocks_[b]; }
  void set_block_state(BlockIndex b, BlockState s) { blocks_[b] = s; }

  static BlockIndex BlockOf(Pfn pfn) { return pfn / kPagesPerBlock; }
  static Pfn BlockStart(BlockIndex b) { return b * kPagesPerBlock; }

  // Hot-add: initialize the block's memmap entries (kHole -> kOffline).
  void InitBlock(BlockIndex b);
  // Hot-remove: tear down memmap entries (-> kHole).  Requires every page
  // to be kOffline.  Frees the chunk when no host_populated flag survives
  // (the hypervisor's HotRemoveBlock clears them before tearing down, so
  // real unplugs return the chunk's sim memory).
  void TeardownBlock(BlockIndex b);

  // Number of pages in the block with the given state (O(block) scan; the
  // tests use it to cross-check the incremental counter below).
  uint64_t CountBlockPages(BlockIndex b, PageState state) const;

  // Incrementally maintained count of allocated pages per block, updated
  // by the zone allocator.  O(1); unplug candidate selection depends on it.
  uint32_t BlockOccupied(BlockIndex b) const { return allocated_per_block_[b]; }
  void AdjustBlockAllocated(Pfn head, int64_t delta_pages) {
    const BlockIndex b = BlockOf(head);
    allocated_per_block_[b] = static_cast<uint32_t>(allocated_per_block_[b] + delta_pages);
  }

  // Resolve a folio's head pfn from any of its frames.
  Pfn FolioHead(Pfn pfn) const;

  // Count of blocks in each state (diagnostics).
  uint32_t CountBlocks(BlockState s) const;

  // --- Materialization accounting (the per-host sim-RSS signal) ------------
  static uint64_t ChunkBytes() { return kPagesPerBlock * sizeof(Page); }
  uint32_t materialized_blocks() const { return materialized_; }
  uint32_t materialized_peak_blocks() const { return materialized_peak_; }
  uint64_t materialized_bytes() const { return materialized_ * ChunkBytes(); }
  uint64_t materialized_peak_bytes() const { return materialized_peak_ * ChunkBytes(); }

 private:
  // The shared read-only target const page() resolves absent chunks to.
  static const Page& HolePage();

  Page* Materialize(BlockIndex b);

  uint64_t span_pages_ = 0;
  // One value-initialized Page[kPagesPerBlock] chunk per 128 MiB block,
  // null until first mutable touch.
  std::vector<std::unique_ptr<Page[]>> chunks_;
  std::vector<BlockState> blocks_;
  std::vector<uint32_t> allocated_per_block_;
  uint32_t materialized_ = 0;
  uint32_t materialized_peak_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_MM_MEMMAP_H_
