// The guest memory map: a flat `struct page` array over the managed guest
// physical span plus the hotplug memory-block state machine (Linux adds
// and removes memory in 128 MiB blocks on x86).
#ifndef SQUEEZY_MM_MEMMAP_H_
#define SQUEEZY_MM_MEMMAP_H_

#include <cstdint>
#include <vector>

#include "src/mm/page.h"
#include "src/sim/cost_model.h"

namespace squeezy {

using BlockIndex = uint32_t;

enum class BlockState : uint8_t {
  kAbsent,        // No memory behind the block (never added / removed).
  kPresent,       // Hot-added: memmap initialized, pages offline.
  kOnline,        // Pages released to a zone's allocator.
  kGoingOffline,  // Offlining in progress (pages isolating/migrating).
  kOffline,       // Pages retracted from the allocator, still present.
};

class MemMap {
 public:
  // Creates the map for a guest span of `span_bytes` (rounded up to whole
  // 128 MiB blocks).  All blocks start kAbsent.
  explicit MemMap(uint64_t span_bytes);

  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;

  uint64_t span_pages() const { return pages_.size(); }
  uint32_t block_count() const { return static_cast<uint32_t>(blocks_.size()); }

  Page& page(Pfn pfn) { return pages_[pfn]; }
  const Page& page(Pfn pfn) const { return pages_[pfn]; }

  BlockState block_state(BlockIndex b) const { return blocks_[b]; }
  void set_block_state(BlockIndex b, BlockState s) { blocks_[b] = s; }

  static BlockIndex BlockOf(Pfn pfn) { return pfn / kPagesPerBlock; }
  static Pfn BlockStart(BlockIndex b) { return b * kPagesPerBlock; }

  // Hot-add: initialize the block's memmap entries (kHole -> kOffline).
  void InitBlock(BlockIndex b);
  // Hot-remove: tear down memmap entries (-> kHole).  Requires every page
  // to be kOffline.
  void TeardownBlock(BlockIndex b);

  // Number of pages in the block with the given state (O(block) scan; the
  // tests use it to cross-check the incremental counter below).
  uint64_t CountBlockPages(BlockIndex b, PageState state) const;

  // Incrementally maintained count of allocated pages per block, updated
  // by the zone allocator.  O(1); unplug candidate selection depends on it.
  uint32_t BlockOccupied(BlockIndex b) const { return allocated_per_block_[b]; }
  void AdjustBlockAllocated(Pfn head, int64_t delta_pages) {
    const BlockIndex b = BlockOf(head);
    allocated_per_block_[b] = static_cast<uint32_t>(allocated_per_block_[b] + delta_pages);
  }

  // Resolve a folio's head pfn from any of its frames.
  Pfn FolioHead(Pfn pfn) const;

  // Count of blocks in each state (diagnostics).
  uint32_t CountBlocks(BlockState s) const;

 private:
  std::vector<Page> pages_;
  std::vector<BlockState> blocks_;
  std::vector<uint32_t> allocated_per_block_;
};

}  // namespace squeezy

#endif  // SQUEEZY_MM_MEMMAP_H_
