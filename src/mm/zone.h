// Memory zones with a per-zone binary buddy allocator.
//
// Mirrors the Linux design the paper builds on: hot-plugged memory is
// onlined into ZONE_MOVABLE (or, under Squeezy, into a per-partition
// zone); the buddy allocator serves folios of order 0..kMaxPageOrder from
// intrusive per-order free lists threaded through the memmap.
//
// The offline path uses the isolation primitives: free pages in a range
// are pulled out of the free lists (kIsolated) so concurrent allocations
// cannot land in a block that is going away, occupied folios are migrated
// out, and finally the fully-isolated range is retired (kOffline).
#ifndef SQUEEZY_MM_ZONE_H_
#define SQUEEZY_MM_ZONE_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/mm/memmap.h"
#include "src/mm/page.h"
#include "src/sim/cost_model.h"
#include "src/sim/rng.h"

namespace squeezy {

enum class ZoneType : uint8_t {
  kNormal,          // Boot memory; kernel + unmovable allocations.
  kMovable,         // ZONE_MOVABLE: user/file pages, hot(un)pluggable.
  kSqueezyPrivate,  // One Squeezy partition (anonymous memory of one instance).
  kSqueezyShared,   // The per-VM shared Squeezy partition (file mappings).
};

const char* ZoneTypeName(ZoneType t);

class Zone {
 public:
  // `shuffle_rng` (optional, not owned) randomizes free-list insertion to
  // emulate the steady-state scatter of a long-running kernel allocator
  // (Linux CONFIG_SHUFFLE_PAGE_ALLOCATOR + allocation churn).  Without it
  // the allocator hands out contiguous ascending ranges.
  Zone(int16_t id, ZoneType type, std::string name, MemMap* memmap, Rng* shuffle_rng = nullptr);

  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;

  int16_t id() const { return id_; }
  ZoneType type() const { return type_; }
  const std::string& name() const { return name_; }

  // --- Online/offline -------------------------------------------------------
  // Attributes an offline (hot-added) page range to this zone and frees it
  // into the buddy.  Range must be order-0-aligned; online uses whole blocks.
  void AddFreeRange(Pfn start, uint64_t npages);

  // Removes every *free* page in the range from the buddy (-> kIsolated).
  // Returns the number of pages isolated.
  uint64_t IsolateFreeRange(Pfn start, uint64_t npages);

  // Returns isolated pages in the range to the buddy (offline abort).
  void UndoIsolation(Pfn start, uint64_t npages);

  // Retires a fully-isolated range from the zone (-> kOffline, zone stats
  // shrink).  Every page in the range must be kIsolated.
  void RetireRange(Pfn start, uint64_t npages);

  // --- Allocation ------------------------------------------------------------
  // Allocates a 2^order folio.  Returns the head pfn or kInvalidPfn when the
  // zone cannot satisfy the request.
  Pfn Alloc(uint8_t order, PageKind kind, int32_t owner, uint32_t owner_slot);

  // Frees an allocated folio (by head pfn), coalescing with buddies.
  void Free(Pfn head);

  // Frees an allocated folio whose frames lie in an isolating range: the
  // frames go straight to kIsolated instead of back to the free lists
  // (migration source path).
  void FreeIntoIsolation(Pfn head);

  // --- Stats ------------------------------------------------------------------
  uint64_t free_pages() const { return free_pages_; }
  uint64_t present_pages() const { return present_pages_; }
  uint64_t managed_pages() const { return managed_pages_; }
  uint64_t allocated_pages() const { return managed_pages_ - free_pages_; }
  uint64_t free_chunks(uint8_t order) const { return areas_[order].nr_free; }
  uint64_t free_bytes() const { return PagesToBytes(free_pages_); }

  // Rebuilds every free list in a random order.  Models the steady-state
  // scatter of a long-running kernel (boot-time onlining inserts blocks
  // sequentially; churn and SHUFFLE_PAGE_ALLOCATOR randomize over time).
  // Benches call this once after the boot-time plug of a large region.
  void ShuffleFreeLists(Rng& rng);

  // Debug invariant check: walks the free lists and verifies linkage,
  // alignment, state and the per-order counters.  O(free chunks).
  bool CheckFreeLists() const;

 private:
  struct FreeArea {
    Pfn head = kInvalidPfn;
    Pfn tail = kInvalidPfn;
    uint64_t nr_free = 0;  // Chunks (not pages) in this list.
  };

  void ListPushFront(uint8_t order, Pfn pfn);
  void ListPushBack(uint8_t order, Pfn pfn);
  void ListRemove(uint8_t order, Pfn pfn);
  Pfn ListPopFront(uint8_t order);

  // Frees a chunk (all frames currently not in any list) with coalescing.
  // `fresh` chunks (newly onlined) queue at the tail; runtime frees at the
  // head (hot reuse), unless the shuffle RNG randomizes the side.
  void FreeChunk(Pfn pfn, uint8_t order, bool fresh = false);
  // Marks the frames of a chunk as a free chunk (head/tails).
  void StampFreeChunk(Pfn pfn, uint8_t order);

  int16_t id_;
  ZoneType type_;
  std::string name_;
  MemMap* memmap_;
  Rng* shuffle_rng_;

  std::array<FreeArea, kMaxPageOrder + 1> areas_{};
  uint64_t free_pages_ = 0;
  uint64_t present_pages_ = 0;
  uint64_t managed_pages_ = 0;
};

}  // namespace squeezy

#endif  // SQUEEZY_MM_ZONE_H_
