// Guest physical page model (the simulator's `struct page`).
//
// One Page exists per 4 KiB guest frame of the managed span.  Pages form
// folios (compound pages): an order-N folio covers 2^N contiguous,
// naturally aligned frames; only the head carries ownership metadata.
// Free buddy chunks use the same head/tail scheme plus an intrusive
// doubly-linked free list threaded through the heads.
#ifndef SQUEEZY_MM_PAGE_H_
#define SQUEEZY_MM_PAGE_H_

#include <cstdint>

namespace squeezy {

// Page frame number: index of a 4 KiB frame in guest physical space.
using Pfn = uint32_t;
inline constexpr Pfn kInvalidPfn = 0xffffffffu;

// Owner sentinel for pages not owned by a process or file.
inline constexpr int32_t kNoOwner = -1;

enum class PageState : uint8_t {
  kHole,       // No memory behind this frame (not hot-added).
  kFree,       // In a buddy free list of its zone.
  kAllocated,  // Head or tail of an allocated folio.
  kIsolated,   // Removed from the allocator while its block is offlining.
  kOffline,    // Present (hot-added) but not online in any zone.
};

enum class PageKind : uint8_t {
  kNone,
  kAnon,    // Anonymous process memory (movable).
  kFile,    // Page-cache page (movable).
  kKernel,  // Kernel/pinned allocation (unmovable), incl. balloon-held pages.
};

struct Page {
  PageState state = PageState::kHole;
  PageKind kind = PageKind::kNone;
  uint8_t order = 0;           // Folio/chunk order; valid on heads.
  bool head = false;           // True for folio/chunk head frames.
  bool host_populated = false; // Host (EPT) backing exists for this frame.
  int16_t zone_id = -1;        // Owning zone, -1 while offline/hole.
  int32_t owner = kNoOwner;    // Anon: pid.  File: file id.  (heads only)
  uint32_t owner_slot = 0;     // Anon: index in the owner's folio table.
                               // File: page index within the file.
  Pfn next_free = kInvalidPfn; // Buddy free-list linkage (free heads only).
  Pfn prev_free = kInvalidPfn;
};

struct FolioRef {
  Pfn head = kInvalidPfn;
  uint8_t order = 0;

  uint32_t pages() const { return 1u << order; }
};

}  // namespace squeezy

#endif  // SQUEEZY_MM_PAGE_H_
