// Lint fixture: iterates the unordered member declared in split_decl.h.
#include "split_decl.h"

namespace fixture {

int Registry::Total() const {
  int sum = 0;
  for (const auto& kv : by_key_) {  // BAD: hash-order iteration.
    sum += kv.second;
  }
  return sum;
}

}  // namespace fixture
