// Fixture: std::thread::id as a container key or hash input.  Thread ids
// are OS-assigned and differ run to run, so anything keyed on them (event
// attribution, per-worker stats that feed sim-visible output) diverges.
#include <cstdint>
#include <map>
#include <thread>
#include <unordered_set>

std::map<std::thread::id, uint64_t> events_by_thread;
std::unordered_set<std::thread::id> seen_workers;
using ThreadHasher = std::hash<std::thread::id>;
