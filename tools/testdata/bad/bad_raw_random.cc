// Lint fixture: ambient / unseeded randomness.
#include <cstdlib>
#include <random>

namespace fixture {

int Roll() { return rand() % 6; }  // BAD: libc rand.

void Reseed() { srand(42); }  // BAD: libc srand.

int Entropy() {
  std::random_device rd;  // BAD: nondeterministic source.
  return static_cast<int>(rd());
}

int HiddenSeed() {
  std::mt19937 gen;  // BAD: default-seeded engine (seed not plumbed).
  return static_cast<int>(gen());
}

}  // namespace fixture
