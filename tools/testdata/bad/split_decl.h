// Lint fixture: unordered member declared here, iterated in split_iter.cc
// (exercises the cross-file name pass).
#ifndef FIXTURE_SPLIT_DECL_H_
#define FIXTURE_SPLIT_DECL_H_

#include <string>
#include <unordered_map>

namespace fixture {

class Registry {
 public:
  int Total() const;

 private:
  std::unordered_map<std::string, int> by_key_;
};

}  // namespace fixture

#endif  // FIXTURE_SPLIT_DECL_H_
