// Lint fixture: NOLINT directive without the required justification.
#include <cstdlib>

namespace fixture {

int Roll() {
  return rand() % 6;  // NOLINT(determinism)
}

}  // namespace fixture
