// Lint fixture: ordering/hashing on pointer values.
#include <cstdint>
#include <functional>
#include <map>

namespace fixture {

struct Host {};

std::map<Host*, int> by_host;  // BAD: iterates in address order.

size_t HashIt(Host* h) {
  return std::hash<Host*>{}(h);  // BAD: hashes the address.
}

uint64_t AsInt(Host* h) {
  return reinterpret_cast<uintptr_t>(h);  // BAD: address as integer.
}

}  // namespace fixture
