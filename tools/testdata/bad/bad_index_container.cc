// Fixture: placement/candidate indexes with a nondeterministic shape.
// An index's walk order IS decision order — an unordered container
// decides by hash order, a pointer-keyed one by allocator addresses —
// so both are wrong at the declaration, before anyone even walks them.
// (This file's name also matches the index trigger, like the real
// src/cluster/host_index.h, so every associative declaration here is in
// scope regardless of its variable name.)
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

struct HostRow;

std::unordered_map<uint64_t, int> host_index;       // Unordered, index-named.
std::unordered_set<uint64_t> warm_candidates;       // Unordered, index-named FILE.
std::map<HostRow*, int> index_by_row;               // Pointer-keyed, index-named.
// Ordered over stable value keys: the sanctioned shape, never flagged.
std::map<uint64_t, int> committed_by_host;
