// Lint fixture: raw addresses in output.
#include <cstdio>
#include <iostream>

namespace fixture {

struct Host {};

void Print(Host* h) {
  std::printf("host at %p\n", static_cast<void*>(h));  // BAD: %p format.
}

void Stream(Host* h) {
  std::cout << static_cast<void*>(h) << "\n";  // BAD: streams an address.
}

}  // namespace fixture
