// Fixture: the variable-name trigger alone — this file's name does NOT
// match the index trigger, so only the *index*-named declaration fires.
#include <cstdint>
#include <unordered_map>

std::unordered_map<uint32_t, uint64_t> replica_index;  // Unordered, index-named.
// Same container shape under a neutral name: the declaration alone is
// the unordered-iteration rule's business, not index-container's.
std::unordered_map<uint32_t, uint64_t> replica_lookup;
