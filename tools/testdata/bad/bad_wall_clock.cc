// Lint fixture: ambient clock reads.
#include <chrono>
#include <ctime>

namespace fixture {

long NowNs() {
  const auto t = std::chrono::steady_clock::now();  // BAD: wall clock.
  return t.time_since_epoch().count();
}

long Epoch() { return time(nullptr); }  // BAD: wall clock.

long Fine() {
  struct timespec ts;
  clock_gettime(0, &ts);  // BAD: wall clock.
  return ts.tv_nsec;
}

}  // namespace fixture
