// Fixture: cross-shard mailboxes declared as unordered containers.  The
// drain order of cross-shard mail IS the determinism contract — an
// unordered container is wrong at the declaration, before anyone even
// iterates it (which is all the unordered-iteration rule would catch).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<int, std::vector<int>> shard_mailbox;
std::unordered_set<uint64_t> cross_shard_pending;
// A name with no mail semantics stays the unordered-iteration rule's
// business (declaration alone is fine).
std::unordered_map<int, int> plain_lookup;
