// Lint fixture: iteration over unordered containers (hash order leaks).
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::unordered_map<std::string, int> counts_;
std::unordered_set<int> live_ids;

int SumAll() {
  int sum = 0;
  for (const auto& kv : counts_) {  // BAD: hash-order iteration.
    sum += kv.second;
  }
  return sum;
}

int First() { return *live_ids.begin(); }  // BAD: begin() on unordered.

}  // namespace fixture
