// Lint fixture: wall-clock use carried by the checked-in allowlist
// (tools/testdata/allowlist_good.txt), mirroring bench_util.h WallTimer.
#include <chrono>

namespace fixture {

double WallSeconds() {
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace fixture
