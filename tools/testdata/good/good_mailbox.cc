// Fixture: the sanctioned shapes for cross-shard mail — ordered
// structures drain in a deterministic order by construction.
#include <cstdint>
#include <map>

std::map<uint64_t, int> cross_shard_mailbox;

int DrainMailbox() {
  int sum = 0;
  for (const auto& kv : cross_shard_mailbox) {
    sum += kv.second;
  }
  return sum;
}
