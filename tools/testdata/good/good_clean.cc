// Lint fixture: deterministic idioms that must NOT fire any rule.
#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Ordered map: iteration order is the key order — fine.
std::map<std::string, int> ordered_counts;

// Declaring an unordered map is fine; only ITERATING it is the hazard.
std::unordered_map<std::string, int> lookup_only;

int SumOrdered() {
  int sum = 0;
  for (const auto& kv : ordered_counts) {
    sum += kv.second;
  }
  return sum;
}

// Point lookups into the unordered map are order-free — fine.
int Lookup(const std::string& key) {
  const auto it = lookup_only.find(key);
  return it == lookup_only.end() ? 0 : it->second;
}

// Seeded engine: the stream is a function of the experiment seed — fine.
uint32_t Draw(uint64_t seed) {
  std::mt19937_64 gen(seed);
  return static_cast<uint32_t>(gen());
}

// Sorting by value (not address) before output — fine.
std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace fixture
