// Lint fixture: a justified inline suppression is honored.
#include <cstdlib>

namespace fixture {

int Roll() {
  return rand() % 6;  // NOLINT(determinism): fixture demonstrating a justified escape
}

}  // namespace fixture
