// Fixture: the sanctioned index shapes — ordered containers over stable
// value keys, mirroring src/cluster/host_index.h.  This file's name
// matches the index trigger, so every declaration here is in scope and
// must still pass.
#include <cstdint>
#include <map>
#include <set>
#include <utility>

std::set<std::pair<uint64_t, size_t>> available_index;
std::map<uint64_t, uint32_t> pressure_index;

size_t FirstCandidate() {
  return available_index.empty() ? 0 : available_index.begin()->second;
}
