#!/usr/bin/env python3
"""Self-test for tools/determinism_lint.py against tools/testdata fixtures.

Run directly (python3 tools/determinism_lint_test.py) or through ctest
(registered as determinism_lint_selftest).  Stdlib only.
"""

import contextlib
import io
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import determinism_lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")
EMPTY_ALLOWLIST = os.path.join(TESTDATA, "nonexistent_allowlist.txt")


def run_lint(*argv):
    """Runs the linter, returning (exit_code, stdout_lines)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = determinism_lint.main(list(argv))
    lines = [l for l in out.getvalue().splitlines() if l.strip()]
    return code, lines


def findings(lines):
    """Extracts (path, rule) pairs from 'path:line: [rule] message' output."""
    pairs = []
    for line in lines:
        head, _, rest = line.partition(": [")
        rule = rest.partition("]")[0]
        path = head.rsplit(":", 1)[0]
        pairs.append((path.replace(os.sep, "/"), rule))
    return pairs


class BadFixtures(unittest.TestCase):
    """Every rule fires on its dedicated bad fixture."""

    @classmethod
    def setUpClass(cls):
        cls.code, lines = run_lint(
            "--root", TESTDATA, "--allowlist", EMPTY_ALLOWLIST, "bad")
        cls.found = findings(lines)

    def test_exit_nonzero(self):
        self.assertEqual(self.code, 1)

    def expect(self, path, rule, count):
        hits = [f for f in self.found if f == ("bad/" + path, rule)]
        self.assertEqual(len(hits), count,
                         "%s: wanted %d x %s, got %s" %
                         (path, count, rule, self.found))

    def test_unordered_iteration(self):
        # Range-for plus begin() in the single-file fixture.
        self.expect("bad_unordered_iteration.cc", "unordered-iteration", 2)

    def test_unordered_iteration_cross_file(self):
        # Declared in split_decl.h, iterated in split_iter.cc.
        self.expect("split_iter.cc", "unordered-iteration", 1)

    def test_wall_clock(self):
        # steady_clock::now, time(nullptr), clock_gettime.
        self.expect("bad_wall_clock.cc", "wall-clock", 3)

    def test_raw_random(self):
        # rand, srand, random_device, default-seeded mt19937.
        self.expect("bad_raw_random.cc", "raw-random", 4)

    def test_pointer_order(self):
        # Pointer-keyed map, std::hash<T*>, reinterpret_cast<uintptr_t>.
        self.expect("bad_pointer_order.cc", "pointer-order", 3)

    def test_address_format(self):
        # "%p" format string and streaming a void* cast.
        self.expect("bad_address_format.cc", "address-format", 2)

    def test_thread_id_key(self):
        # thread::id-keyed map, thread::id unordered_set, std::hash over it.
        self.expect("bad_thread_id_key.cc", "thread-id-key", 3)

    def test_unordered_mailbox(self):
        # Flagged at the declaration: no iteration anywhere in the fixture.
        self.expect("bad_unordered_mailbox.cc", "unordered-mailbox", 2)
        self.expect("bad_unordered_mailbox.cc", "unordered-iteration", 0)

    def test_index_container(self):
        # Unordered index-named map, unordered set in an index-named file,
        # pointer-keyed index-named map.  The ordered value-keyed map in
        # the same (index-named) file stays clean.
        self.expect("bad_index_container.cc", "index-container", 3)
        # The pointer-keyed declaration independently trips pointer-order.
        self.expect("bad_index_container.cc", "pointer-order", 1)

    def test_index_container_variable_name_trigger(self):
        # In a file whose name does not match, only the *index*-named
        # variable fires; the neutral-named twin declaration does not.
        self.expect("bad_candidate_tree.cc", "index-container", 1)

    def test_nolint_without_reason_is_rejected(self):
        self.expect("bad_nolint_missing_reason.cc", "nolint-missing-reason", 1)
        # The bare directive must NOT suppress the underlying finding's
        # line silently: the missing-reason finding replaces it.
        self.expect("bad_nolint_missing_reason.cc", "raw-random", 0)


class GoodFixtures(unittest.TestCase):
    def test_clean_file_passes(self):
        code, lines = run_lint(
            "--root", TESTDATA, "--allowlist", EMPTY_ALLOWLIST,
            "good/good_clean.cc")
        self.assertEqual(code, 0, lines)

    def test_ordered_mailbox_passes(self):
        code, lines = run_lint(
            "--root", TESTDATA, "--allowlist", EMPTY_ALLOWLIST,
            "good/good_mailbox.cc")
        self.assertEqual(code, 0, lines)

    def test_ordered_index_passes(self):
        # Ordered value-keyed indexes in an index-named file are the
        # sanctioned shape (the real host_index.h passes the same way).
        code, lines = run_lint(
            "--root", TESTDATA, "--allowlist", EMPTY_ALLOWLIST,
            "good/good_index_container.cc")
        self.assertEqual(code, 0, lines)

    def test_justified_nolint_suppresses(self):
        code, lines = run_lint(
            "--root", TESTDATA, "--allowlist", EMPTY_ALLOWLIST,
            "good/good_nolint.cc")
        self.assertEqual(code, 0, lines)

    def test_allowlist_suppresses(self):
        code, lines = run_lint(
            "--root", TESTDATA,
            "--allowlist", os.path.join(TESTDATA, "allowlist_good.txt"),
            "good")
        self.assertEqual(code, 0, lines)

    def test_allowlisted_file_fails_without_allowlist(self):
        code, lines = run_lint(
            "--root", TESTDATA, "--allowlist", EMPTY_ALLOWLIST,
            "good/good_allowlisted.cc")
        self.assertEqual(code, 1)
        self.assertIn(("good/good_allowlisted.cc", "wall-clock"),
                      findings(lines))


class AllowlistPolicing(unittest.TestCase):
    def test_stale_entry_fails(self):
        code, lines = run_lint(
            "--root", TESTDATA,
            "--allowlist", os.path.join(TESTDATA, "allowlist_stale.txt"),
            "good/good_clean.cc")
        self.assertEqual(code, 1)
        self.assertIn(("good/good_clean.cc", "stale-allowlist"),
                      findings(lines))

    def test_stale_check_skips_unscanned_paths(self):
        # A partial run over bad/ must not flag good/ entries as stale.
        code, lines = run_lint(
            "--root", TESTDATA,
            "--allowlist", os.path.join(TESTDATA, "allowlist_good.txt"),
            "good/good_clean.cc")
        self.assertEqual(code, 0, lines)

    def test_malformed_entry_is_config_error(self):
        code, _ = run_lint(
            "--root", TESTDATA,
            "--allowlist", os.path.join(TESTDATA, "allowlist_malformed.txt"),
            "good")
        self.assertEqual(code, 2)


class RealTree(unittest.TestCase):
    def test_repo_is_lint_clean(self):
        """The checked-in tree must pass its own lint (default paths +
        checked-in allowlist)."""
        code, lines = run_lint()
        self.assertEqual(code, 0, "\n".join(lines))


if __name__ == "__main__":
    unittest.main()
