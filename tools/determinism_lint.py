#!/usr/bin/env python3
"""Determinism lint for the squeezy simulator tree.

Every regression lock in this repo (policy_parity_test, the fig12 pending
121 / admitted 7297 constants, event_queue_determinism_test) depends on
simulation results being a pure function of (config, seed).  This lint
rejects the constructs that silently break that property:

  unordered-iteration  iteration over std::unordered_{map,set,...} —
                       hash-table order is implementation- and
                       insertion-order-defined, so anything it feeds
                       (event scheduling, metrics, BenchJson rows)
                       diverges across runs/toolchains.  Use std::map /
                       std::set or sort before iterating.
  wall-clock           std::chrono::{system,steady,high_resolution}_clock,
                       time(), clock_gettime(), gettimeofday(), clock() —
                       ambient time must never reach sim-visible state.
                       The one sanctioned use is bench wall-time
                       measurement (bench/bench_util.h WallTimer), carried
                       by the allowlist.
  raw-random           rand()/srand(), std::random_device,
                       std::default_random_engine, and default-seeded
                       std::mt19937 — all randomness must flow from the
                       experiment seed through src/sim/rng.h.
  pointer-order        ordering or hashing on pointer values (pointer-keyed
                       map/set/unordered containers, std::hash<T*>,
                       std::less<T*>, reinterpret_cast to an integer) —
                       allocator addresses differ run to run.
  address-format       "%p" in a format string or streaming a void* cast —
                       addresses in sim-visible output are nondeterminism
                       made visible.
  thread-id-key        std::thread::id used as a container key (or
                       std::hash over it) — the OS assigns thread ids,
                       they differ run to run even at a fixed pool size.
                       Key on the shard or slice index instead.
  unordered-mailbox    a cross-shard mailbox/inbox declared as an
                       unordered container — cross-shard events must
                       drain in (when, seq) order or sharded replays
                       diverge from the single-queue reference.  Use an
                       ordered structure (the sharded kernel's mailbox
                       is a full EventQueue for exactly this reason).
  index-container      a placement/candidate index declared as an
                       unordered container or keyed on pointer values —
                       an index's walk order IS decision order
                       (src/cluster/host_index.h picks hosts straight off
                       ordered-tree boundaries), so hash order or
                       allocator addresses anywhere in an *index*-named
                       structure (or any associative container inside an
                       *index*-named file) turn placement into a
                       nondeterministic function.  Flagged at the
                       DECLARATION, like unordered-mailbox: the shape is
                       wrong before anyone walks it.  Use ordered
                       containers over stable value keys (host id,
                       replica index).

Escape hatches (both require a written justification):
  * inline:     ... // NOLINT(determinism): <reason>   (same line)
  * checked in: tools/determinism_allowlist.txt, lines of
                "<path> <rule> <justification...>"; stale entries fail
                the lint so the allowlist can only shrink by itself.

Usage:
  python3 tools/determinism_lint.py [--root DIR] [--allowlist FILE] [paths...]

Defaults: root = repo root (parent of this script's directory), paths =
src bench tests.  Exit 0 when clean, 1 on findings, 2 on usage errors.
Stdlib only; no third-party dependencies.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")
DEFAULT_PATHS = ("src", "bench", "tests")

NOLINT_RE = re.compile(r"NOLINT\(determinism\)(?::\s*(?P<reason>\S.*))?")

# A declaration of an unordered container, capturing the variable name.
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]"
)

WALL_CLOCK_RES = [
    re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"),
    re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\s*\("),
    re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    re.compile(r"\bclock\s*\(\s*\)"),
]

RAW_RANDOM_RES = [
    re.compile(r"\b(?:rand|srand|rand_r|drand48|random)\s*\("),
    re.compile(r"std::random_device"),
    re.compile(r"\bdefault_random_engine\b"),
    # Default-constructed engine: deterministic per the standard, but the
    # implicit seed hides the stream from the experiment seed plumbing.
    re.compile(r"\bmt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}|\(\s*\))"),
]

POINTER_ORDER_RES = [
    re.compile(r"std::hash\s*<[^<>]*\*\s*>"),
    re.compile(r"std::less\s*<[^<>]*\*\s*>"),
    # Pointer-keyed associative containers: ordered ones iterate in
    # address order, unordered ones hash the address.
    re.compile(r"std::(?:map|set|unordered_map|unordered_set)\s*<\s*[^,<>]*\*[^,<>]*[,>]"),
    re.compile(r"reinterpret_cast\s*<\s*(?:std::)?(?:u?intptr_t|size_t|uint64_t)\s*>"),
]

ADDRESS_STREAM_RE = re.compile(r"<<\s*(?:static_cast\s*<\s*(?:const\s+)?void\s*\*\s*>|\(\s*(?:const\s+)?void\s*\*\s*\))")

THREAD_ID_KEY_RES = [
    re.compile(r"std::hash\s*<\s*std::thread::id\s*>"),
    # std::thread::id as the key of any associative container.
    re.compile(
        r"std::(?:map|set|multimap|multiset|unordered_map|unordered_set|"
        r"unordered_multimap|unordered_multiset)\s*<\s*std::thread::id"),
]

# Cross-shard mail must be drained in deterministic order; an unordered
# container under a mailbox-ish name is flagged at the DECLARATION (the
# unordered-iteration rule only fires once someone iterates it — too late
# for a queue whose drain order IS the contract).
MAILBOX_NAME_RE = re.compile(r"mailbox|inbox|cross_shard", re.IGNORECASE)

# Placement/candidate indexes must walk in a deterministic order; flagged
# at the declaration (index-container) when the variable or the file is
# index-named and the container is unordered or pointer-keyed.
INDEX_NAME_RE = re.compile(r"index", re.IGNORECASE)
# Any associative container declaration: kind, template args, variable.
ASSOC_DECL_RE = re.compile(
    r"std::(?P<kind>(?:unordered_)?(?:map|set|multimap|multiset))"
    r"\s*<(?P<args>.*)>\s+(?P<name>\w+)\s*[;={(]"
)

STRING_LITERAL_RE = re.compile(r'"(?:\\.|[^"\\])*"')


def strip_code(line):
    """Returns (code, literals): the line with string literals blanked and
    // comments removed, plus the list of string literal bodies."""
    literals = STRING_LITERAL_RE.findall(line)
    code = STRING_LITERAL_RE.sub('""', line)
    cut = code.find("//")
    if cut >= 0:
        code = code[:cut]
    return code, literals


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.lineno, self.rule, self.message)


def collect_unordered_names(files):
    """First pass: every variable name declared as an unordered container
    anywhere in the tree (members live in headers, iteration in .cc)."""
    names = set()
    for _, lines in files:
        for raw in lines:
            code, _ = strip_code(raw)
            for m in UNORDERED_DECL_RE.finditer(code):
                names.add(m.group(1))
    return names


def lint_file(relpath, lines, unordered_names, findings):
    file_is_index = INDEX_NAME_RE.search(os.path.basename(relpath)) is not None
    iter_res = [
        re.compile(r"for\s*\(.*:\s*&?(?:this->)?(?:%s)\b" % "|".join(map(re.escape, sorted(unordered_names)))),
        re.compile(r"\b(?:%s)\s*\.\s*c?begin\s*\(" % "|".join(map(re.escape, sorted(unordered_names)))),
    ] if unordered_names else []

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        # NOLINT directives are honored (and policed) even inside comments.
        nolint = NOLINT_RE.search(raw)
        if nolint and nolint.group("reason") is None:
            findings.append(Finding(
                relpath, lineno, "nolint-missing-reason",
                "NOLINT(determinism) requires a written justification: "
                "'// NOLINT(determinism): <reason>'"))
            continue

        code, literals = strip_code(raw)
        # Crude but sufficient /* ... */ handling for this codebase.
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        start = code.find("/*")
        if start >= 0:
            end = code.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                code = code[:start]
            else:
                code = code[:start] + code[end + 2:]

        line_findings = []

        for rx in iter_res:
            if rx.search(code):
                line_findings.append((
                    "unordered-iteration",
                    "iteration over an unordered container: hash order is "
                    "not deterministic; use std::map/std::set or sort first"))
                break
        for rx in WALL_CLOCK_RES:
            if rx.search(code):
                line_findings.append((
                    "wall-clock",
                    "ambient clock read: sim results must be a pure function "
                    "of (config, seed); use the EventQueue virtual clock "
                    "(bench wall-timing goes through bench_util.h WallTimer)"))
                break
        for rx in RAW_RANDOM_RES:
            if rx.search(code):
                line_findings.append((
                    "raw-random",
                    "unseeded/ambient randomness: draw from src/sim/rng.h "
                    "seeded by the experiment seed"))
                break
        for rx in POINTER_ORDER_RES:
            if rx.search(code):
                line_findings.append((
                    "pointer-order",
                    "ordering/hashing on a pointer value: allocator addresses "
                    "differ across runs; key on a stable id instead"))
                break
        if any("%p" in lit for lit in literals) or ADDRESS_STREAM_RE.search(code):
            line_findings.append((
                "address-format",
                "formatting a raw address: addresses differ across runs; "
                "print a stable id instead"))
        for rx in THREAD_ID_KEY_RES:
            if rx.search(code):
                line_findings.append((
                    "thread-id-key",
                    "std::thread::id keyed/hashed: the OS assigns thread ids "
                    "and they differ run to run; key on the shard or pool "
                    "slice index instead"))
                break
        for m in UNORDERED_DECL_RE.finditer(code):
            if MAILBOX_NAME_RE.search(m.group(1)):
                line_findings.append((
                    "unordered-mailbox",
                    "cross-shard mailbox declared unordered: cross-shard "
                    "events must drain in (when, seq) order; use an ordered "
                    "structure (an EventQueue, like the sharded kernel's "
                    "mailbox shard)"))
                break
        for m in ASSOC_DECL_RE.finditer(code):
            if not (file_is_index or INDEX_NAME_RE.search(m.group("name"))):
                continue
            unordered = m.group("kind").startswith("unordered_")
            # Crude first-template-argument split: the fixtures and the
            # real index keep key types comma-free.
            pointer_keyed = "*" in m.group("args").split(",")[0]
            if unordered or pointer_keyed:
                line_findings.append((
                    "index-container",
                    "placement/candidate index with a nondeterministic "
                    "shape: an index's walk order IS decision order; use an "
                    "ordered container over stable value keys (host id, "
                    "replica index — see src/cluster/host_index.h), never "
                    "hashes or pointer keys"))
                break

        for rule, message in line_findings:
            if nolint:  # Reason already verified non-empty above.
                continue
            findings.append(Finding(relpath, lineno, rule, message))


def load_allowlist(path):
    """Returns {(relpath, rule): justification}; raises ValueError on
    malformed entries (missing justification)."""
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise ValueError(
                    "%s:%d: allowlist entry needs '<path> <rule> "
                    "<justification...>'" % (path, lineno))
            entries[(parts[0], parts[1])] = parts[2]
    return entries


def gather_files(root, paths):
    files = []
    for p in paths:
        absolute = os.path.join(root, p)
        if os.path.isfile(absolute):
            if absolute.endswith(CXX_EXTENSIONS):
                files.append(os.path.relpath(absolute, root))
            continue
        for dirpath, _, names in os.walk(absolute):
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files)


def main(argv):
    parser = argparse.ArgumentParser(description="squeezy determinism lint")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: tools/determinism_allowlist.txt)")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files/dirs relative to root (default: %s)"
                        % " ".join(DEFAULT_PATHS))
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or list(DEFAULT_PATHS)
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "determinism_allowlist.txt")

    try:
        allowlist = load_allowlist(allowlist_path)
    except ValueError as e:
        print(e, file=sys.stderr)
        return 2

    relpaths = gather_files(root, paths)
    files = []
    for rel in relpaths:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            files.append((rel, f.read().splitlines()))

    unordered_names = collect_unordered_names(files)
    findings = []
    for rel, lines in files:
        lint_file(rel, lines, unordered_names, findings)

    used_allowlist_keys = set()
    reported = []
    for finding in findings:
        key = (finding.path.replace(os.sep, "/"), finding.rule)
        if key in allowlist:
            used_allowlist_keys.add(key)
            continue
        reported.append(finding)

    # The allowlist may only shrink by itself: an entry that no longer
    # matches anything is an error, not a silent leftover.
    for key in sorted(allowlist):
        if key not in used_allowlist_keys:
            # Entries for paths outside the scanned set stay untouched
            # (partial runs, e.g. linting a single file).
            if key[0] in {f.replace(os.sep, "/") for f in relpaths}:
                reported.append(Finding(
                    key[0], 0, "stale-allowlist",
                    "allowlist entry for rule '%s' matches nothing; remove it"
                    % key[1]))

    for finding in reported:
        print(finding)
    if reported:
        print("\ndeterminism lint: %d finding(s) in %d file(s) scanned"
              % (len(reported), len(relpaths)), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
