// Quickstart: the Squeezy lifecycle on one N:1 VM, end to end.
//
//   1. Boot a guest with Squeezy partitions (concurrency factor N=4).
//   2. Plug one partition's worth of memory (a scale-up event).
//   3. SqueezyEnable a process and touch memory (a function instance).
//   4. Exit the process and unplug the drained partition — and observe
//      that the reclaim involved zero page migrations.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"

using namespace squeezy;

int main() {
  // Host with 16 GiB and the default (paper-calibrated) cost model.
  HostMemory host(GiB(16));
  CostModel cost = CostModel::Default();
  Hypervisor hypervisor(&host, &cost);

  // A VM with 4 Squeezy partitions of 768 MiB (one per instance) and a
  // 256 MiB shared partition for file-backed dependencies.
  SqueezyConfig squeezy_cfg;
  squeezy_cfg.partition_bytes = MiB(768);
  squeezy_cfg.nr_partitions = 4;
  squeezy_cfg.shared_bytes = MiB(256);

  GuestConfig guest_cfg;
  guest_cfg.name = "quickstart-vm";
  guest_cfg.vcpus = 4;
  guest_cfg.base_memory = MiB(512);
  guest_cfg.hotplug_region = squeezy_cfg.region_bytes();
  GuestKernel guest(guest_cfg, &hypervisor);
  SqueezyManager squeezy(&guest, squeezy_cfg);

  std::printf("Booted %s: %u partitions x %llu MiB + %llu MiB shared\n",
              guest_cfg.name.c_str(), squeezy_cfg.nr_partitions,
              (unsigned long long)(squeezy_cfg.partition_bytes / MiB(1)),
              (unsigned long long)(squeezy_cfg.shared_bytes / MiB(1)));

  // --- Scale up: plug one partition and deploy an instance ------------------
  const PlugOutcome plug = guest.PlugMemory(squeezy_cfg.partition_bytes, /*now=*/0);
  std::printf("Plugged %llu MiB in %s (paper: 35-45 ms)\n",
              (unsigned long long)(plug.bytes_plugged / MiB(1)),
              FormatDuration(plug.latency).c_str());

  const Pid pid = guest.CreateProcess();
  const auto partition = squeezy.SqueezyEnable(pid);
  std::printf("SqueezyEnable(pid=%d) -> partition %d\n", pid, partition.value());

  const int32_t deps = guest.CreateFile("runtime-deps", MiB(200));
  const TouchResult file_touch = guest.TouchFile(pid, deps, MiB(200), 0);
  const TouchResult anon_touch = guest.TouchAnon(pid, MiB(500), 0);
  std::printf("Faulted %llu MiB file (shared partition) + %llu MiB anon in %s\n",
              (unsigned long long)(file_touch.bytes / MiB(1)),
              (unsigned long long)(anon_touch.bytes / MiB(1)),
              FormatDuration(file_touch.latency + anon_touch.latency).c_str());
  std::printf("Host now backs %llu MiB for this VM\n",
              (unsigned long long)(hypervisor.stats(guest.vm_id()).populated_bytes / MiB(1)));

  // --- Scale down: the instance exits; reclaim its partition ----------------
  guest.Exit(pid);
  const UnplugOutcome unplug = guest.UnplugMemory(squeezy_cfg.partition_bytes, 0);
  std::printf("Unplugged %llu MiB in %s with %llu page migrations "
              "(paper: ~10.9x faster than virtio-mem, zero migrations)\n",
              (unsigned long long)(unplug.bytes_unplugged / MiB(1)),
              FormatDuration(unplug.latency()).c_str(),
              (unsigned long long)unplug.pages_migrated);
  std::printf("Host backing after madvise: %llu MiB\n",
              (unsigned long long)(hypervisor.stats(guest.vm_id()).populated_bytes / MiB(1)));
  std::printf("Partition state: %s; reclaimed partitions so far: %llu\n",
              PartitionStateName(squeezy.partition(partition.value()).state),
              (unsigned long long)squeezy.stats().partitions_reclaimed);
  return 0;
}
