// FaaS autoscaling scenario: an OpenWhisk-style runtime serves a bursty
// trace on one Squeezy-resized N:1 VM, scaling instances (and the VM's
// memory) up and down with the load.
//
// Build & run:  ./build/examples/faas_autoscale
#include <cstdio>

#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/trace/trace_gen.h"

using namespace squeezy;

int main() {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(64);
  cfg.keep_alive = Sec(60);
  FaasRuntime runtime(cfg);

  // Deploy the paper's CNN function with concurrency factor N=12.
  const int fn = runtime.AddFunction(CnnSpec(), /*max_concurrency=*/12);

  // Five minutes of bursty load.
  Rng rng(7);
  BurstyTraceConfig tcfg;
  tcfg.duration = Minutes(5);
  tcfg.base_rate_per_sec = 0.3;
  tcfg.burst_rate_per_sec = 8.0;
  tcfg.mean_burst_len = Sec(20);
  tcfg.mean_gap = Sec(50);
  tcfg.function = fn;
  const auto trace = GenerateBurstyTrace(tcfg, rng);
  runtime.SubmitTrace(trace);
  std::printf("Submitted %zu invocations over 5 minutes (bursty)\n", trace.size());

  // Sample the elastic state every 15 seconds while the trace runs.
  std::printf("%6s %10s %12s %14s %12s\n", "t(s)", "instances", "plugged(MiB)",
              "committed(MiB)", "queued");
  for (TimeNs t = 0; t <= Minutes(7); t += Sec(15)) {
    runtime.events().ScheduleAt(t, [&runtime, fn, t] {
      std::printf("%6lld %10zu %12llu %14llu %12zu\n", (long long)(t / kSecond),
                  runtime.agent(fn).live_instances(),
                  (unsigned long long)(runtime.guest(fn).virtio_mem().plugged_bytes() / MiB(1)),
                  (unsigned long long)(runtime.host().committed() / MiB(1)),
                  runtime.agent(fn).queued_requests());
    });
  }
  runtime.RunUntil(Minutes(7));

  LatencyRecorder& lat = runtime.agent(fn).latencies();
  std::printf("\nServed %zu requests: P50 %s, P99 %s\n", lat.count(),
              FormatDuration(lat.Percentile(50)).c_str(),
              FormatDuration(lat.Percentile(99)).c_str());
  std::printf("Spawns: %llu, evictions: %llu, partitions reclaimed: %llu\n",
              (unsigned long long)runtime.agent(fn).total_spawns(),
              (unsigned long long)runtime.agent(fn).total_evictions(),
              (unsigned long long)runtime.squeezy(fn)->stats().partitions_reclaimed);
  std::printf("Reclaim throughput: %.0f MiB/s; pages migrated on reclaim: %llu (must be 0)\n",
              runtime.ReclaimThroughputMiBps(fn),
              (unsigned long long)runtime.guest(fn).hotplug().total_pages_migrated());
  return 0;
}
