// Memory-pressure scenario (§6.2.2 in miniature): two functions share a
// host too small for both to peak at once.  One function's burst must
// actively reclaim the other's idle instances — reclamation speed decides
// how long the burst's cold starts stall.
//
// Runs the same scenario twice (vanilla virtio-mem vs Squeezy) and prints
// the tail-latency and eviction counts side by side.
//
// Build & run:  ./build/examples/memory_pressure
#include <algorithm>
#include <cstdio>

#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/trace/trace_gen.h"

using namespace squeezy;

namespace {

struct Outcome {
  DurationNs p99_a;
  DurationNs p99_b;
  uint64_t evictions;
  uint64_t unplug_failures;
};

Outcome RunScenario(ReclaimPolicy policy) {
  RuntimeConfig cfg;
  cfg.policy = policy;
  // Tight host: boot footprints + roughly one function's peak.
  cfg.host_capacity = GiB(9);
  cfg.keep_alive = Sec(90);
  cfg.unplug_timeout = Sec(1);
  cfg.pressure_check_period = Msec(500);
  FaasRuntime runtime(cfg);
  const int a = runtime.AddFunction(BfsSpec(), 8);
  const int b = runtime.AddFunction(CnnSpec(), 8);

  // Alternating bursts: A spikes, then B spikes while A idles, repeat.
  std::vector<Invocation> trace;
  Rng rng(3);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const TimeNs base = Minutes(2) * cycle;
    for (int i = 0; i < 60; ++i) {
      trace.push_back({base + static_cast<DurationNs>(rng.Uniform(0, 20e9)), a});
      trace.push_back({base + Minutes(1) + static_cast<DurationNs>(rng.Uniform(0, 20e9)), b});
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const Invocation& x, const Invocation& y) { return x.at < y.at; });
  runtime.SubmitTrace(trace);
  runtime.RunUntil(Minutes(10));

  return Outcome{runtime.agent(a).latencies().Percentile(99),
                 runtime.agent(b).latencies().Percentile(99),
                 runtime.agent(a).total_evictions() + runtime.agent(b).total_evictions(),
                 runtime.total_unplug_failures()};
}

}  // namespace

int main() {
  std::printf("Two functions, 11 GiB host, alternating bursts: every spike must reclaim\n"
              "the other function's idle memory first.\n\n");
  const Outcome vanilla = RunScenario(ReclaimPolicy::kVirtioMem);
  const Outcome squeezy = RunScenario(ReclaimPolicy::kSqueezy);

  std::printf("%-22s %14s %14s %10s %15s\n", "Method", "BFS P99", "CNN P99", "evictions",
              "unplug failures");
  std::printf("%-22s %14s %14s %10llu %15llu\n", "Vanilla virtio-mem",
              FormatDuration(vanilla.p99_a).c_str(), FormatDuration(vanilla.p99_b).c_str(),
              (unsigned long long)vanilla.evictions, (unsigned long long)vanilla.unplug_failures);
  std::printf("%-22s %14s %14s %10llu %15llu\n", "Squeezy",
              FormatDuration(squeezy.p99_a).c_str(), FormatDuration(squeezy.p99_b).c_str(),
              (unsigned long long)squeezy.evictions, (unsigned long long)squeezy.unplug_failures);
  std::printf("\nSqueezy's synchronous sub-100ms reclaim keeps burst cold starts from\n"
              "stalling behind slow migrations (paper §6.2.2).\n");
  return 0;
}
