// Isolation-model comparison (§6.3 in miniature): serve the same five
// cold starts of the Bert function with
//   (a) the 1:1 model — one microVM booted per instance, and
//   (b) the N:1 model — instances deployed into one Squeezy-resized VM,
// and compare cold-start latency and per-instance host footprint.
//
// Build & run:  ./build/examples/model_compare
#include <cstdio>

#include "src/faas/function.h"
#include "src/faas/microvm.h"
#include "src/faas/runtime.h"

using namespace squeezy;

int main() {
  const FunctionSpec spec = BertSpec();
  constexpr int kColdStarts = 5;

  // --- 1:1: a fresh microVM per instance -----------------------------------
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  EventQueue events;
  MicroVmPoolConfig mcfg;
  mcfg.keep_alive = Sec(30);
  MicroVmPool pool(&events, &hv, &host, spec, mcfg);
  for (int i = 0; i < kColdStarts; ++i) {
    events.ScheduleAt(Minutes(2) * i, [&pool] { pool.Submit(); });
  }
  events.RunUntil(Minutes(2 * kColdStarts));

  DurationNs one1_total = 0;
  for (const ColdStartBreakdown& c : pool.ColdStarts()) {
    one1_total += c.total();
  }
  one1_total /= static_cast<DurationNs>(pool.ColdStarts().size());
  uint64_t one1_foot = 0;
  for (size_t i = 0; i < pool.vm_count(); ++i) {
    one1_foot += pool.InstanceFootprint(i);
  }
  one1_foot /= pool.vm_count();

  // --- N:1: instances in one warm Squeezy VM --------------------------------
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(64);
  cfg.keep_alive = Sec(30);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(spec, 4);
  std::vector<Invocation> trace;
  for (int i = 0; i < kColdStarts; ++i) {
    trace.push_back({Minutes(2) * i, fn});
  }
  rt.SubmitTrace(trace);
  rt.RunUntil(Minutes(2 * kColdStarts));

  DurationNs n1_total = 0;
  int counted = 0;
  for (size_t i = 1; i < rt.agent(fn).cold_starts().size(); ++i) {  // Skip cold-cache 1st.
    n1_total += rt.agent(fn).cold_starts()[i].total();
    ++counted;
  }
  n1_total /= counted;

  std::printf("Function: %s (limit %llu MiB, deps %llu MiB)\n\n", spec.name.c_str(),
              (unsigned long long)(spec.memory_limit / MiB(1)),
              (unsigned long long)(spec.file_deps_bytes / MiB(1)));
  std::printf("%-28s %18s %22s\n", "Model", "Cold start (mean)", "Footprint/instance");
  std::printf("%-28s %18s %19llu MiB\n", "1:1 (microVM per instance)",
              FormatDuration(one1_total).c_str(), (unsigned long long)(one1_foot / MiB(1)));
  std::printf("%-28s %18s %19s\n", "N:1 (Squeezy-resized VM)",
              FormatDuration(n1_total).c_str(), "(shared deps + OS)");
  std::printf("\nN:1 cold-start speedup: %.2fx  (paper: 1.6x avg, up to 2.35x)\n",
              static_cast<double>(one1_total) / static_cast<double>(n1_total));
  return 0;
}
