// Unit tests for metrics: latency percentiles, step series, tables, CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/csv.h"
#include "src/metrics/fleet.h"
#include "src/metrics/latency_recorder.h"
#include "src/metrics/table.h"
#include "src/metrics/time_series.h"
#include "src/sim/time.h"

namespace squeezy {
namespace {

// --- LatencyRecorder ----------------------------------------------------------

TEST(LatencyRecorderTest, BasicStats) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) {
    r.Record(Msec(i));
  }
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.Min(), Msec(1));
  EXPECT_EQ(r.Max(), Msec(100));
  EXPECT_EQ(r.Mean(), Msec(50.5));
  EXPECT_EQ(r.Percentile(50), Msec(50));
  EXPECT_EQ(r.Percentile(99), Msec(99));
  EXPECT_EQ(r.Percentile(100), Msec(100));
}

TEST(LatencyRecorderTest, PercentileSingleSample) {
  LatencyRecorder r;
  r.Record(Msec(42));
  EXPECT_EQ(r.Percentile(1), Msec(42));
  EXPECT_EQ(r.Percentile(50), Msec(42));
  EXPECT_EQ(r.Percentile(99), Msec(42));
}

TEST(LatencyRecorderTest, UnsortedInputSortsLazily) {
  LatencyRecorder r;
  r.Record(Msec(30));
  r.Record(Msec(10));
  r.Record(Msec(20));
  EXPECT_EQ(r.Percentile(50), Msec(20));
  r.Record(Msec(5));  // Invalidates the sort cache.
  EXPECT_EQ(r.Min(), Msec(5));
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder r;
  r.Record(1);
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Sum(), 0);
}

TEST(LatencyRecorderTest, GeomeanOfRatios) {
  EXPECT_NEAR(Geomean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(Geomean({1.0, 1.0, 1.0}), 1.0, 1e-9);
  EXPECT_NEAR(Geomean({10.0}), 10.0, 1e-9);
}

// --- StepSeries -----------------------------------------------------------------

TEST(StepSeriesTest, AtReturnsLatestValue) {
  StepSeries s;
  EXPECT_DOUBLE_EQ(s.At(Sec(1)), 0.0);
  s.Push(Sec(1), 10.0);
  s.Push(Sec(3), 20.0);
  EXPECT_DOUBLE_EQ(s.At(0), 0.0);
  EXPECT_DOUBLE_EQ(s.At(Sec(1)), 10.0);
  EXPECT_DOUBLE_EQ(s.At(Sec(2)), 10.0);
  EXPECT_DOUBLE_EQ(s.At(Sec(3)), 20.0);
  EXPECT_DOUBLE_EQ(s.At(Sec(100)), 20.0);
}

TEST(StepSeriesTest, SameInstantSupersedes) {
  StepSeries s;
  s.Push(Sec(1), 10.0);
  s.Push(Sec(1), 15.0);
  EXPECT_DOUBLE_EQ(s.At(Sec(1)), 15.0);
  EXPECT_EQ(s.size(), 1u);
}

TEST(StepSeriesTest, IntegralPiecewise) {
  StepSeries s;
  s.Push(0, 1.0);
  s.Push(Sec(10), 3.0);
  // [0,10): 1.0 * 10 + [10,20): 3.0 * 10 = 40.
  EXPECT_DOUBLE_EQ(s.IntegralSec(0, Sec(20)), 40.0);
  // Sub-range [5, 15): 1*5 + 3*5 = 20.
  EXPECT_DOUBLE_EQ(s.IntegralSec(Sec(5), Sec(15)), 20.0);
  // Range before first point integrates zero.
  StepSeries t;
  t.Push(Sec(10), 5.0);
  EXPECT_DOUBLE_EQ(t.IntegralSec(0, Sec(10)), 0.0);
  EXPECT_DOUBLE_EQ(t.IntegralSec(0, Sec(12)), 10.0);
}

TEST(StepSeriesTest, MaxOverSeries) {
  StepSeries s;
  s.Push(0, 1.0);
  s.Push(Sec(1), 7.0);
  s.Push(Sec(2), 3.0);
  EXPECT_DOUBLE_EQ(s.Max(), 7.0);
}

TEST(StepSeriesTest, ResampleFixedStep) {
  StepSeries s;
  s.Push(0, 1.0);
  s.Push(Sec(2), 2.0);
  const std::vector<double> r = s.Resample(0, Sec(4), Sec(1));
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
  EXPECT_DOUBLE_EQ(r[4], 2.0);
}

// --- Fleet aggregation --------------------------------------------------------------

// Brute-force reference for SumSeries: the pre-merge definition (every
// input stamp is a step point; the value is the part-order sum of At(t)).
// The k-way merge must be BIT-identical to this, not just close.
StepSeries SumSeriesReference(const std::vector<const StepSeries*>& parts) {
  std::vector<TimeNs> stamps;
  for (const StepSeries* part : parts) {
    for (const StepSeries::Point& p : part->points()) {
      stamps.push_back(p.t);
    }
  }
  std::sort(stamps.begin(), stamps.end());
  stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
  StepSeries sum;
  for (const TimeNs t : stamps) {
    double v = 0.0;
    for (const StepSeries* part : parts) {
      v += part->At(t);
    }
    sum.Push(t, v);
  }
  return sum;
}

void ExpectBitIdentical(const StepSeries& got, const StepSeries& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.points()[i].t, want.points()[i].t) << "point " << i;
    // EQ, not NEAR: the merge adds part values in part order, exactly
    // like the reference, so even the floating-point bits must agree.
    EXPECT_EQ(got.points()[i].value, want.points()[i].value) << "point " << i;
  }
}

TEST(SumSeriesTest, PointwiseSumStepsAtEveryInputStamp) {
  StepSeries a;
  a.Push(0, 1.0);
  a.Push(Sec(10), 3.0);
  StepSeries b;
  b.Push(Sec(5), 2.0);
  b.Push(Sec(10), 4.0);  // Shared stamp with a.
  b.Push(Sec(20), 0.5);
  const StepSeries sum = SumSeries({&a, &b});
  ASSERT_EQ(sum.size(), 4u);
  EXPECT_DOUBLE_EQ(sum.At(0), 1.0);
  EXPECT_DOUBLE_EQ(sum.At(Sec(5)), 3.0);
  EXPECT_DOUBLE_EQ(sum.At(Sec(10)), 7.0);
  EXPECT_DOUBLE_EQ(sum.At(Sec(20)), 3.5);
  ExpectBitIdentical(sum, SumSeriesReference({&a, &b}));
}

TEST(SumSeriesTest, EmptyAndSinglePartEdges) {
  EXPECT_TRUE(SumSeries({}).empty());
  StepSeries a;
  EXPECT_TRUE(SumSeries({&a}).empty());
  a.Push(Sec(1), 2.5);
  const StepSeries sum = SumSeries({&a});
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_DOUBLE_EQ(sum.At(Sec(1)), 2.5);
}

TEST(SumSeriesTest, ManyPartsBitIdenticalToReference) {
  // 64 "hosts" with irregular, partially overlapping stamps and values
  // chosen to make float addition order matter if it ever changed.
  std::vector<StepSeries> parts(64);
  uint64_t x = 0x243f6a8885a308d3ull;  // Deterministic LCG-ish stream.
  for (size_t p = 0; p < parts.size(); ++p) {
    TimeNs t = 0;
    const int points = 20 + static_cast<int>(p % 13);
    for (int i = 0; i < points; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      t += Msec(1 + static_cast<int64_t>(x % 977));
      const double v = static_cast<double>((x >> 16) % 1000000) / 3.0;
      parts[p].Push(t, v);
    }
  }
  std::vector<const StepSeries*> ptrs;
  for (const StepSeries& s : parts) {
    ptrs.push_back(&s);
  }
  ExpectBitIdentical(SumSeries(ptrs), SumSeriesReference(ptrs));
}

TEST(MergeLatenciesTest, MergesAllSamplesAcrossParts) {
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder empty;
  for (int i = 1; i <= 50; ++i) {
    a.Record(Msec(i));
    b.Record(Msec(50 + i));
  }
  const LatencyRecorder merged = MergeLatencies({&a, &empty, &b});
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_EQ(merged.Min(), Msec(1));
  EXPECT_EQ(merged.Max(), Msec(100));
  EXPECT_EQ(merged.Percentile(50), Msec(50));
}

// --- TablePrinter -----------------------------------------------------------------

TEST(TablePrinterTest, AlignsAndPrintsAllCells) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1.00"});
  t.AddRule();
  t.AddRow({"beta", "23.50"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("23.50"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
}

// --- CsvWriter ---------------------------------------------------------------------

TEST(CsvWriterTest, WritesHeaderAndRowsWithQuoting) {
  const std::string path = testing::TempDir() + "/squeezy_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.AddRow({"1", "plain"});
    w.AddRow({"2", "has,comma"});
    w.AddRow({"3", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, CreatesParentDirectories) {
  const std::string path = testing::TempDir() + "/squeezy_csv_dir/sub/test.csv";
  CsvWriter w(path, {"x"});
  EXPECT_TRUE(w.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace squeezy
