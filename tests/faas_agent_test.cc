// Unit/integration tests for the in-VM agent: dispatch, cold starts,
// keep-alive, the processor-sharing scheduler, and kernel interference.
#include <gtest/gtest.h>

#include <memory>

#include "src/faas/agent.h"
#include "src/faas/function.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"

namespace squeezy {
namespace {

// A test function profile small enough to reason about analytically.
FunctionSpec TinySpec() {
  FunctionSpec s;
  s.name = "tiny";
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(64);
  s.file_deps_bytes = MiB(32);
  s.container_init_cpu = Msec(100);
  s.function_init_cpu = Msec(200);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;  // Deterministic exec (lognormal with cv=0 is the mean).
  s.rootfs_fraction = 0.5;
  s.init_anon_fraction = 0.5;
  s.exec_file_fraction = 0.0;
  return s;
}

class AgentTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = std::make_unique<HostMemory>(GiB(64));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
    GuestConfig gcfg;
    gcfg.name = "agent-vm";
    gcfg.vcpus = 4;
    gcfg.base_memory = MiB(512);
    gcfg.hotplug_region = GiB(4);
    gcfg.shuffle_allocator = false;
    guest_ = std::make_unique<GuestKernel>(gcfg, hv_.get());
    guest_->PlugMemory(GiB(4), 0);  // Memory statically available.
  }

  std::unique_ptr<Agent> MakeAgent(AgentConfig acfg, DurationNs grant_delay = 0) {
    AgentCallbacks cbs;
    cbs.acquire_memory = [this, grant_delay](std::function<void(DurationNs)> ready) {
      ++acquires_;
      events_.ScheduleAfter(grant_delay,
                            [ready = std::move(ready), grant_delay] { ready(grant_delay); });
    };
    cbs.release_memory = [this] { ++releases_; };
    return std::make_unique<Agent>(&events_, guest_.get(), nullptr, TinySpec(), acfg,
                                   std::move(cbs), 42);
  }

  CostModel cost_ = CostModel::Default();
  EventQueue events_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<GuestKernel> guest_;
  int acquires_ = 0;
  int releases_ = 0;
};

TEST_F(AgentTest, ColdStartThenWarmReuse) {
  AgentConfig acfg;
  acfg.max_concurrency = 4;
  acfg.vcpus = 4;
  acfg.keep_alive = Minutes(2);
  auto agent = MakeAgent(acfg);

  agent->Submit();
  events_.RunUntil(Minutes(1));
  ASSERT_EQ(agent->requests().size(), 1u);
  EXPECT_TRUE(agent->requests()[0].cold);
  EXPECT_EQ(agent->cold_starts().size(), 1u);
  EXPECT_EQ(acquires_, 1);
  EXPECT_EQ(agent->idle_instances(), 1u);

  // A second request inside keep-alive reuses the warm instance.
  agent->Submit();
  events_.RunUntil(Minutes(2));
  ASSERT_EQ(agent->requests().size(), 2u);
  EXPECT_FALSE(agent->requests()[1].cold);
  EXPECT_EQ(acquires_, 1);  // No new instance.
  // Warm latency ~ exec only; cold latency includes init phases.
  EXPECT_LT(agent->requests()[1].latency(), agent->requests()[0].latency() / 2);
}

TEST_F(AgentTest, ColdStartBreakdownPhasesPresent) {
  AgentConfig acfg;
  acfg.max_concurrency = 1;
  acfg.vcpus = 1;
  auto agent = MakeAgent(acfg, /*grant_delay=*/Msec(40));
  agent->Submit();
  events_.RunUntil(Minutes(1));
  ASSERT_EQ(agent->cold_starts().size(), 1u);
  const ColdStartBreakdown& cs = agent->cold_starts()[0];
  EXPECT_EQ(cs.vmm, Msec(40));
  EXPECT_GE(cs.container_init, Msec(100));   // CPU + rootfs IO.
  EXPECT_GE(cs.function_init, Msec(200));    // CPU + deps IO + anon faults.
  EXPECT_GE(cs.first_exec, Msec(100));
  EXPECT_EQ(cs.total(), cs.vmm + cs.container_init + cs.function_init + cs.first_exec);
}

TEST_F(AgentTest, KeepAliveEvictsIdleInstance) {
  AgentConfig acfg;
  acfg.max_concurrency = 2;
  acfg.vcpus = 2;
  acfg.keep_alive = Minutes(2);
  auto agent = MakeAgent(acfg);
  agent->Submit();
  events_.RunUntil(Minutes(1));
  EXPECT_EQ(agent->idle_instances(), 1u);
  events_.RunUntil(Minutes(4));
  EXPECT_EQ(agent->idle_instances(), 0u);
  EXPECT_EQ(agent->live_instances(), 0u);
  EXPECT_EQ(agent->total_evictions(), 1u);
  EXPECT_EQ(releases_, 1);
  // Its guest process exited and its memory was freed.
  EXPECT_EQ(guest_->live_process_count(), 0u);
}

TEST_F(AgentTest, ReuseResetsKeepAlive) {
  AgentConfig acfg;
  acfg.max_concurrency = 1;
  acfg.vcpus = 1;
  acfg.keep_alive = Minutes(2);
  auto agent = MakeAgent(acfg);
  agent->Submit();
  events_.RunUntil(Sec(100));  // Instance idle well before 2 min.
  agent->Submit();             // Re-used at t=100s.
  events_.RunUntil(Sec(215));  // Original keep-alive (from ~t=6s) passed...
  EXPECT_EQ(agent->live_instances(), 1u);  // ...but the reuse reset it.
  events_.RunUntil(Sec(300));
  EXPECT_EQ(agent->live_instances(), 0u);
}

TEST_F(AgentTest, BurstSpawnsUpToConcurrencyLimit) {
  AgentConfig acfg;
  acfg.max_concurrency = 3;
  acfg.vcpus = 3;
  auto agent = MakeAgent(acfg);
  for (int i = 0; i < 8; ++i) {
    agent->Submit();
  }
  EXPECT_EQ(agent->live_instances(), 3u);  // Cap respected.
  EXPECT_EQ(acquires_, 3);
  events_.RunUntil(Minutes(1));
  EXPECT_EQ(agent->requests().size(), 8u);  // Queue drained by the 3.
  EXPECT_EQ(agent->total_spawns(), 3u);
}

TEST_F(AgentTest, ContentionStretchesExecution) {
  // 1 vCPU, 2 concurrent requests => each runs at half speed.
  AgentConfig acfg;
  acfg.max_concurrency = 2;
  acfg.vcpus = 1;
  auto agent = MakeAgent(acfg);
  agent->Submit();
  events_.RunUntil(Minutes(1));
  agent->Submit();  // Warm single request: baseline.
  events_.RunUntil(Minutes(2));
  const DurationNs solo = agent->requests()[1].latency();

  agent->Submit();
  agent->Submit();  // Two warm-ish requests (second needs a cold start).
  events_.RunUntil(Minutes(4));
  ASSERT_EQ(agent->requests().size(), 4u);
  // The two overlapping requests ran slower than the solo one.
  EXPECT_GT(agent->requests()[2].latency(), solo);
}

TEST_F(AgentTest, KernelInterferenceSlowsRequests) {
  AgentConfig acfg;
  acfg.max_concurrency = 1;
  acfg.vcpus = 1;
  auto agent = MakeAgent(acfg);
  agent->Submit();
  events_.RunUntil(Minutes(1));
  agent->Submit();  // Baseline warm exec.
  events_.RunUntil(Minutes(2));
  const DurationNs baseline = agent->requests()[1].latency();

  // A kernel thread (virtio-mem migration worker) hogs the vCPU while the
  // next request runs: with 1 vCPU the request crawls at the 5% floor
  // until the interference ends (paper Fig 9's mechanism).
  agent->Submit();
  agent->AddKernelInterference(Msec(400));
  events_.RunUntil(Minutes(3));
  const DurationNs interfered = agent->requests()[2].latency();
  EXPECT_GT(interfered, baseline + Msec(300));
}

TEST_F(AgentTest, EvictOldestIdlePicksOldest) {
  AgentConfig acfg;
  acfg.max_concurrency = 2;
  acfg.vcpus = 2;
  auto agent = MakeAgent(acfg);
  agent->Submit();
  agent->Submit();
  events_.RunUntil(Minutes(1));
  ASSERT_EQ(agent->idle_instances(), 2u);
  const TimeNs oldest = agent->OldestIdleSince();
  ASSERT_GE(oldest, 0);
  EXPECT_TRUE(agent->EvictOldestIdle());
  EXPECT_EQ(agent->idle_instances(), 1u);
  // The remaining instance idled later.
  EXPECT_GT(agent->OldestIdleSince(), oldest - 1);
  EXPECT_TRUE(agent->EvictOldestIdle());
  EXPECT_FALSE(agent->EvictOldestIdle());
}

TEST_F(AgentTest, InstanceSeriesTracksScaleUpAndDown) {
  AgentConfig acfg;
  acfg.max_concurrency = 4;
  acfg.vcpus = 4;
  acfg.keep_alive = Sec(30);
  auto agent = MakeAgent(acfg);
  for (int i = 0; i < 4; ++i) {
    agent->Submit();
  }
  events_.RunUntil(Minutes(5));
  EXPECT_DOUBLE_EQ(agent->instance_series().Max(), 4.0);
  EXPECT_DOUBLE_EQ(agent->instance_series().At(Minutes(5)), 0.0);
}

TEST_F(AgentTest, MemoryStarvedRequestsWaitForGrant) {
  AgentConfig acfg;
  acfg.max_concurrency = 1;
  acfg.vcpus = 1;
  // The grant arrives after 10 s (host memory pressure).
  auto agent = MakeAgent(acfg, /*grant_delay=*/Sec(10));
  agent->Submit();
  events_.RunUntil(Sec(5));
  EXPECT_EQ(agent->requests().size(), 0u);
  EXPECT_EQ(agent->queued_requests(), 1u);
  events_.RunUntil(Minutes(1));
  ASSERT_EQ(agent->requests().size(), 1u);
  // Latency includes the 10 s wait.
  EXPECT_GT(agent->requests()[0].latency(), Sec(10));
}

}  // namespace
}  // namespace squeezy
