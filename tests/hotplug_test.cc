// Unit tests for the hot(un)plug pipeline: add/online/offline/remove.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/hotplug/hotplug.h"
#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

class HotplugTest : public testing::Test {
 protected:
  void SetUp() override {
    memmap_ = std::make_unique<MemMap>(GiB(1));
    zone_ = std::make_unique<Zone>(0, ZoneType::kMovable, "mv", memmap_.get());
    host_ = std::make_unique<HostMemory>(GiB(8));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
    vm_ = hv_->RegisterVm("vm", 1);
    mgr_ = std::make_unique<HotplugManager>(memmap_.get(), &cost_, hv_.get(), vm_, nullptr);
  }

  void AddOnline(BlockIndex b) {
    mgr_->HotAddBlock(b);
    mgr_->OnlineBlock(b, zone_.get());
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<MemMap> memmap_;
  std::unique_ptr<Zone> zone_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  VmId vm_ = 0;
  std::unique_ptr<HotplugManager> mgr_;
};

TEST_F(HotplugTest, HotAddTransitionsToPresentWithCost) {
  const DurationNs lat = mgr_->HotAddBlock(0);
  EXPECT_EQ(lat, cost_.block_hotadd);
  EXPECT_EQ(memmap_->block_state(0), BlockState::kPresent);
  EXPECT_EQ(mgr_->blocks_added(), 1u);
}

TEST_F(HotplugTest, OnlineReleasesPagesToZone) {
  mgr_->HotAddBlock(0);
  const DurationNs lat = mgr_->OnlineBlock(0, zone_.get());
  EXPECT_EQ(lat, cost_.block_online);
  EXPECT_EQ(memmap_->block_state(0), BlockState::kOnline);
  EXPECT_EQ(zone_->free_pages(), static_cast<uint64_t>(kPagesPerBlock));
}

TEST_F(HotplugTest, OfflineEmptyBlockNoMigrationZeroingChargesFreePages) {
  AddOnline(0);
  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(), OfflineOptions{});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.pages_migrated, 0u);
  EXPECT_EQ(res.breakdown.migration, 0);
  // All 32768 free pages get zeroed by the oblivious allocator path.
  EXPECT_EQ(res.breakdown.zeroing, cost_.ZeroPages(kPagesPerBlock));
  EXPECT_GT(res.breakdown.rest, 0);
  EXPECT_EQ(memmap_->block_state(0), BlockState::kOffline);
  EXPECT_EQ(zone_->managed_pages(), 0u);
}

TEST_F(HotplugTest, SkipZeroingEliminatesZeroCost) {
  AddOnline(0);
  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(),
                                               OfflineOptions{/*skip_zeroing=*/true,
                                                              /*allow_migration=*/true});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.breakdown.zeroing, 0);
}

TEST_F(HotplugTest, OfflineMigratesOccupiedFolios) {
  AddOnline(0);
  AddOnline(1);
  // Put two folios in block 0.
  const Pfn a = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0);
  const Pfn b = zone_->Alloc(0, PageKind::kAnon, 1, 1);
  ASSERT_LT(a, kPagesPerBlock);
  ASSERT_LT(b, kPagesPerBlock);

  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(), OfflineOptions{});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.pages_migrated, (1u << kThpOrder) + 1u);
  EXPECT_EQ(res.folios_migrated, 2u);
  EXPECT_GT(res.breakdown.migration, 0);
  // The two folios now live in block 1, still allocated.
  EXPECT_EQ(zone_->allocated_pages(), (1u << kThpOrder) + 1u);
  EXPECT_EQ(memmap_->BlockOccupied(1), (1u << kThpOrder) + 1u);
}

TEST_F(HotplugTest, OfflineForbidMigrationFailsOnOccupiedBlock) {
  AddOnline(0);
  zone_->Alloc(0, PageKind::kAnon, 1, 0);
  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(),
                                               OfflineOptions{/*skip_zeroing=*/false,
                                                              /*allow_migration=*/false});
  EXPECT_FALSE(res.ok);
  // Block restored to online, zone intact.
  EXPECT_EQ(memmap_->block_state(0), BlockState::kOnline);
  EXPECT_EQ(zone_->free_pages(), kPagesPerBlock - 1u);
  EXPECT_TRUE(zone_->CheckFreeLists());
}

TEST_F(HotplugTest, OfflineFailsWhenNowhereToMigrate) {
  AddOnline(0);  // Single block: migration has no target space.
  zone_->Alloc(0, PageKind::kAnon, 1, 0);
  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(), OfflineOptions{});
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(memmap_->block_state(0), BlockState::kOnline);
  EXPECT_TRUE(zone_->CheckFreeLists());
  // The allocation is still usable afterwards.
  EXPECT_NE(zone_->Alloc(0, PageKind::kAnon, 1, 1), kInvalidPfn);
}

TEST_F(HotplugTest, OfflineFailsOnPinnedKernelPage) {
  AddOnline(0);
  AddOnline(1);
  const Pfn pinned = zone_->Alloc(0, PageKind::kKernel, kNoOwner, 0);
  ASSERT_LT(pinned, kPagesPerBlock);
  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(), OfflineOptions{});
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(memmap_->block_state(0), BlockState::kOnline);
}

TEST_F(HotplugTest, HotRemoveReleasesHostBacking) {
  AddOnline(0);
  // Touch some memory so the host backs it.
  const Pfn pfn = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0);
  for (uint32_t i = 0; i < (1u << kThpOrder); ++i) {
    memmap_->page(pfn + i).host_populated = true;
  }
  hv_->NestedFaultPopulate(vm_, 1, PagesToBytes(1u << kThpOrder), 0);

  zone_->Free(pfn);
  const OfflineResult res = mgr_->OfflineBlock(0, zone_.get(), zone_.get(), OfflineOptions{});
  ASSERT_TRUE(res.ok);

  UnplugBreakdown bd;
  mgr_->HotRemoveBlock(0, &bd, Sec(1));
  EXPECT_EQ(bd.vm_exits, cost_.block_unplug_exit);
  EXPECT_EQ(memmap_->block_state(0), BlockState::kAbsent);
  EXPECT_EQ(mgr_->blocks_removed(), 1u);
  // Host backing flags cleared.
  EXPECT_FALSE(memmap_->page(pfn).host_populated);
}

TEST_F(HotplugTest, FullCycleAddOnlineOfflineRemoveRepeats) {
  for (int round = 0; round < 3; ++round) {
    AddOnline(2);
    EXPECT_EQ(zone_->free_pages(), static_cast<uint64_t>(kPagesPerBlock));
    const OfflineResult res = mgr_->OfflineBlock(2, zone_.get(), zone_.get(), OfflineOptions{});
    ASSERT_TRUE(res.ok);
    UnplugBreakdown bd;
    mgr_->HotRemoveBlock(2, &bd, 0);
    EXPECT_EQ(memmap_->block_state(2), BlockState::kAbsent);
    EXPECT_EQ(zone_->free_pages(), 0u);
  }
  EXPECT_EQ(mgr_->blocks_added(), 3u);
  EXPECT_EQ(mgr_->blocks_removed(), 3u);
}

TEST_F(HotplugTest, BreakdownTotalSumsSlices) {
  UnplugBreakdown bd;
  bd.zeroing = 1;
  bd.migration = 2;
  bd.vm_exits = 3;
  bd.rest = 4;
  EXPECT_EQ(bd.total(), 10);
  UnplugBreakdown other;
  other.zeroing = 10;
  bd.Add(other);
  EXPECT_EQ(bd.zeroing, 11);
  EXPECT_EQ(bd.total(), 20);
}

}  // namespace
}  // namespace squeezy
