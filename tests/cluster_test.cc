// Cluster subsystem tests: shared-clock wiring, placement determinism,
// host-memory conservation, and memory-aware routing beating memory-blind
// routing under skewed load.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/faas/function.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

FunctionSpec TinySpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;
  return s;
}

ClusterConfig BaseConfig(size_t hosts, PlacementPolicy placement, uint64_t capacity) {
  ClusterConfig cfg;
  cfg.nr_hosts = hosts;
  cfg.placement = placement;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = capacity;
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.seed = 42;
  return cfg;
}

ClusterTraceConfig SkewedTrace() {
  ClusterTraceConfig t;
  t.duration = Minutes(6);
  t.nr_functions = 4;
  t.total_base_rate_per_sec = 2.0;
  t.zipf_s = 1.2;
  t.bursty_fraction = 0.5;
  t.burst_multiplier = 30.0;
  t.mean_burst_len = Sec(20);
  t.mean_gap = Sec(60);
  return t;
}

TEST(ClusterTest, PlacementPolicyNames) {
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kRoundRobin), "RoundRobin");
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kLeastCommitted), "LeastCommitted");
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kMemoryAwareBinPack), "MemBinPack");
}

TEST(ClusterTest, HostsShareOneVirtualClock) {
  Cluster cluster(BaseConfig(4, PlacementPolicy::kRoundRobin, GiB(8)));
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    EXPECT_EQ(&cluster.host(h).events(), &cluster.events());
  }
  const int fn = cluster.AddFunction(TinySpec("clock"), 4);
  cluster.SubmitTrace({{Sec(1), fn}, {Sec(2), fn}});
  cluster.RunUntil(Minutes(1));
  EXPECT_EQ(cluster.events().now(), Minutes(1));
  uint64_t completed = 0;
  for (const Replica& r : cluster.replicas(fn)) {
    completed += cluster.host(r.host).agent(r.local_fn).requests().size();
  }
  EXPECT_EQ(completed, 2u);
}

// Required test 1: placement determinism under a fixed seed.  The whole
// routing stream (and therefore every latency sample) must be a pure
// function of (config, seed); a different seed must diverge.
TEST(ClusterTest, PlacementDeterministicUnderFixedSeed) {
  auto run = [](uint64_t seed, PlacementPolicy placement) {
    ClusterConfig cfg = BaseConfig(4, placement, GiB(3));
    cfg.host.seed = seed;
    Cluster cluster(cfg);
    ClusterTraceConfig tcfg = SkewedTrace();
    for (int32_t f = 0; f < tcfg.nr_functions; ++f) {
      cluster.AddFunction(TinySpec("det"), 6);
    }
    cluster.SubmitTrace(GenerateClusterTrace(tcfg, seed));
    cluster.RunUntil(Minutes(8));
    const FleetSummary s = cluster.Summarize(Minutes(8));
    return std::make_tuple(cluster.routing_hash(), s.completed_requests,
                           s.latency_p99, s.committed_gib_seconds);
  };
  for (const PlacementPolicy p :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastCommitted,
        PlacementPolicy::kMemoryAwareBinPack}) {
    EXPECT_EQ(run(7, p), run(7, p)) << PlacementPolicyName(p);
    EXPECT_NE(std::get<0>(run(7, p)), std::get<0>(run(8, p))) << PlacementPolicyName(p);
  }
}

// Required test 2: host-memory conservation across scale-up/down.  No host
// ever exceeds its capacity, and once the fleet quiesces (all instances
// evicted, all unplugs drained) every host's committed book returns
// exactly to its boot-time commitment.
TEST(ClusterTest, HostMemoryConservedAcrossScaleUpDown) {
  ClusterConfig cfg = BaseConfig(4, PlacementPolicy::kLeastCommitted, GiB(3));
  Cluster cluster(cfg);
  const FunctionSpec spec = TinySpec("conserve");
  std::vector<int> fns;
  for (int f = 0; f < 3; ++f) {
    fns.push_back(cluster.AddFunction(spec, 6));
  }
  // Boot-time commitment per host: sum over the replicas placed there.
  std::vector<uint64_t> boot(cluster.host_count(), 0);
  for (const int fn : fns) {
    for (const Replica& r : cluster.replicas(fn)) {
      boot[r.host] += FaasRuntime::BootCommitment(cfg.host, spec, 6);
    }
  }
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    EXPECT_EQ(cluster.host(h).committed(), boot[h]) << "host " << h;
  }

  ClusterTraceConfig tcfg = SkewedTrace();
  tcfg.nr_functions = static_cast<int32_t>(fns.size());
  cluster.SubmitTrace(GenerateClusterTrace(tcfg, 42));
  cluster.RunAll();  // Drain: every keep-alive expiry and unplug completes.

  for (size_t h = 0; h < cluster.host_count(); ++h) {
    const FaasRuntime& host = cluster.host(h);
    // Commitment never exceeded capacity at any point in the run.
    EXPECT_LE(host.host().committed_series().Max(),
              static_cast<double>(host.host_capacity()))
        << "host " << h;
    // Populated never exceeds committed at quiescence; commitments from
    // every scale-up were matched by scale-down releases.
    EXPECT_EQ(host.committed(), boot[h]) << "host " << h;
    EXPECT_LE(host.host().populated(), host.committed()) << "host " << h;
    for (size_t fn = 0; fn < host.function_count(); ++fn) {
      EXPECT_EQ(host.agent(static_cast<int>(fn)).live_instances(), 0u);
    }
  }
}

// Required test 3: memory-aware bin-packing beats round-robin on pending
// (memory-starved) scale-ups under a skewed trace.  Round-robin keeps
// routing flash crowds into hosts that are still reclaiming; the
// bin-packer only targets hosts that can admit immediately.
TEST(ClusterTest, BinPackBeatsRoundRobinOnPendingScaleups) {
  auto pending_total = [](PlacementPolicy placement) {
    // Tight fleet: each host fits boot plus only a few extra instances.
    ClusterConfig cfg = BaseConfig(4, placement, MiB(2176));
    Cluster cluster(cfg);
    ClusterTraceConfig tcfg = SkewedTrace();
    for (int32_t f = 0; f < tcfg.nr_functions; ++f) {
      cluster.AddFunction(TinySpec("skew"), 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(tcfg, 42));
    cluster.RunUntil(Minutes(8));
    return cluster.Summarize(Minutes(8)).pending_scaleups_total;
  };
  const uint64_t round_robin = pending_total(PlacementPolicy::kRoundRobin);
  const uint64_t bin_pack = pending_total(PlacementPolicy::kMemoryAwareBinPack);
  EXPECT_LT(bin_pack, round_robin);
}

// Round-robin registration must stay fair when host eligibility flaps.
// The old code rotated the cursor over the FILTERED candidate list, so a
// host dropping out (full or draining) shifted which hosts later cursor
// positions mapped to: with host 3 eligible only on even calls, the old
// rotation placed 10/4/10/0 across hosts 0-3 over 24 single-replica
// registrations — host 3 starved even when eligible, low-index hosts
// overloaded.  The cursor now advances in stable host-index space.
TEST(ClusterTest, RoundRobinPlacementFairUnderFlappingEligibility) {
  RuntimeConfig rc;
  rc.host_capacity = GiB(4);
  std::vector<std::unique_ptr<FaasRuntime>> hosts;
  std::vector<HostControl*> raw;
  for (int h = 0; h < 4; ++h) {
    hosts.push_back(std::make_unique<FaasRuntime>(rc));
    raw.push_back(hosts.back().get());
  }
  ClusterScheduler sched(PlacementPolicy::kRoundRobin, raw);
  std::vector<int> placed_on(4, 0);
  for (int i = 0; i < 24; ++i) {
    if (i % 2 == 1) {
      hosts[3]->Drain();  // Host 3 ineligible on odd calls.
    }
    const std::vector<size_t> placed = sched.PlaceFunction(MiB(1), MiB(1), 1);
    ASSERT_EQ(placed.size(), 1u);
    ++placed_on[placed[0]];
    hosts[3]->Undrain();
  }
  // Hosts 0-2 were always eligible, host 3 half the time: everybody gets
  // a fair share (the exact stable-cursor sequence gives 7/6/6/5).
  for (int h = 0; h < 4; ++h) {
    EXPECT_GE(placed_on[h], 5) << "host " << h;
    EXPECT_LE(placed_on[h], 7) << "host " << h;
  }
}

// Registration placement: the bin-packer fills busy hosts first, so with
// one replica per function and more functions than one host can hold, it
// still never over-commits a host at boot.
TEST(ClusterTest, SingleReplicaPlacementRespectsCapacity) {
  ClusterConfig cfg = BaseConfig(4, PlacementPolicy::kMemoryAwareBinPack, GiB(2));
  cfg.replicas_per_function = 1;
  Cluster cluster(cfg);
  for (int f = 0; f < 8; ++f) {
    const int fn = cluster.AddFunction(TinySpec("solo"), 4);
    ASSERT_EQ(cluster.replicas(fn).size(), 1u);
  }
  size_t used_hosts = 0;
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    EXPECT_LE(cluster.host(h).committed(), cluster.host(h).host_capacity());
    used_hosts += cluster.host(h).function_count() > 0 ? 1 : 0;
  }
  // 8 VMs x 384 MiB boot do not fit one 2 GiB host: placement spilled.
  EXPECT_GT(used_hosts, 1u);
}

}  // namespace
}  // namespace squeezy
