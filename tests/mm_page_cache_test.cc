// Unit tests for the guest page cache.
#include <gtest/gtest.h>

#include "src/mm/page_cache.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

TEST(PageCacheTest, RegisterFileSizesPages) {
  PageCache cache;
  const int32_t f = cache.RegisterFile("rootfs", MiB(1));
  EXPECT_EQ(f, 0);
  EXPECT_EQ(cache.FilePages(f), MiB(1) / kPageSize);
  EXPECT_EQ(cache.file_size(f), MiB(1));
  EXPECT_EQ(cache.file_name(f), "rootfs");
  EXPECT_EQ(cache.file_count(), 1u);
}

TEST(PageCacheTest, RegisterOddSizeRoundsUp) {
  PageCache cache;
  const int32_t f = cache.RegisterFile("x", kPageSize + 1);
  EXPECT_EQ(cache.FilePages(f), 2u);
}

TEST(PageCacheTest, InsertLookupRemove) {
  PageCache cache;
  const int32_t f = cache.RegisterFile("lib.so", MiB(1));
  EXPECT_FALSE(cache.Cached(f, 0));
  EXPECT_EQ(cache.Lookup(f, 0), kInvalidPfn);

  cache.Insert(f, 0, 100);
  cache.Insert(f, 5, 105);
  EXPECT_TRUE(cache.Cached(f, 0));
  EXPECT_EQ(cache.Lookup(f, 5), 105u);
  EXPECT_EQ(cache.cached_pages(f), 2u);
  EXPECT_EQ(cache.total_cached_pages(), 2u);
  EXPECT_EQ(cache.total_cached_bytes(), 2 * kPageSize);

  EXPECT_EQ(cache.Remove(f, 0), 100u);
  EXPECT_FALSE(cache.Cached(f, 0));
  EXPECT_EQ(cache.cached_pages(f), 1u);
}

TEST(PageCacheTest, RelocateUpdatesMapping) {
  PageCache cache;
  const int32_t f = cache.RegisterFile("bin", MiB(1));
  cache.Insert(f, 3, 200);
  cache.Relocate(f, 3, 999);
  EXPECT_EQ(cache.Lookup(f, 3), 999u);
  EXPECT_EQ(cache.cached_pages(f), 1u);  // Count unchanged.
}

TEST(PageCacheTest, MultipleFilesIndependent) {
  PageCache cache;
  const int32_t a = cache.RegisterFile("a", MiB(1));
  const int32_t b = cache.RegisterFile("b", MiB(2));
  cache.Insert(a, 0, 1);
  cache.Insert(b, 0, 2);
  EXPECT_EQ(cache.Lookup(a, 0), 1u);
  EXPECT_EQ(cache.Lookup(b, 0), 2u);
  EXPECT_EQ(cache.total_cached_pages(), 2u);
  cache.Remove(a, 0);
  EXPECT_TRUE(cache.Cached(b, 0));
}

}  // namespace
}  // namespace squeezy
