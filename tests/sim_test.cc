// Unit tests for the simulation kernel: time, RNG, event queue, CPU
// accounting, cost model helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace squeezy {
namespace {

// --- Time -----------------------------------------------------------------

TEST(TimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(Sec(1.0), kSecond);
  EXPECT_EQ(Msec(1.0), kMillisecond);
  EXPECT_EQ(Usec(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(ToSec(Sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMsec(Msec(617)), 617.0);
  EXPECT_DOUBLE_EQ(ToUsec(Usec(3.5)), 3.5);
}

TEST(TimeTest, FormatPicksNaturalUnit) {
  EXPECT_EQ(FormatDuration(Sec(1.27)), "1.27 s");
  EXPECT_EQ(FormatDuration(Msec(617)), "617.00 ms");
  EXPECT_EQ(FormatDuration(Usec(42)), "42.00 us");
  EXPECT_EQ(FormatDuration(5), "5 ns");
}

TEST(CostModelTest, ByteAndPageConversions) {
  EXPECT_EQ(BytesToPages(1), 1u);
  EXPECT_EQ(BytesToPages(kPageSize), 1u);
  EXPECT_EQ(BytesToPages(kPageSize + 1), 2u);
  EXPECT_EQ(PagesToBytes(kPagesPerBlock), kMemoryBlockBytes);
  EXPECT_EQ(BytesToBlocks(GiB(2)), 16u);
  EXPECT_EQ(BytesToBlocks(MiB(768)), 6u);
  EXPECT_EQ(BytesToBlocks(1), 1u);
}

TEST(CostModelTest, DerivedHelpers) {
  const CostModel m = CostModel::Default();
  EXPECT_EQ(m.BalloonPerPage(), m.balloon_guest_page + m.balloon_exit_page);
  EXPECT_EQ(m.MigrateFolio(512), m.migrate_folio_fixed + 512 * m.migrate_page);
  EXPECT_EQ(m.ZeroPages(1000), 1000 * m.zero_page);
  EXPECT_EQ(CostModel::NoZeroing().zero_page, 0);
}

// --- RNG -------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next());
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, PoissonMeanConvergesSmall) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanConvergesLarge) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(100.0));
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalMeanConverges) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(4.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.08);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v.begin(), v.end());
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Chance(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// --- EventQueue ----------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Sec(3), [&] { order.push_back(3); });
  q.ScheduleAt(Sec(1), [&] { order.push_back(1); });
  q.ScheduleAt(Sec(2), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Sec(3));
}

TEST(EventQueueTest, SameInstantFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(Sec(1), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  TimeNs fired_at = -1;
  q.ScheduleAt(Sec(5), [&] { q.ScheduleAfter(Sec(2), [&] { fired_at = q.now(); }); });
  q.RunAll();
  EXPECT_EQ(fired_at, Sec(7));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(Sec(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel is a no-op.
  q.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueueTest, CancelAfterRunReturnsFalseAndConservesPending) {
  EventQueue q;
  const EventId ran = q.ScheduleAt(Sec(1), [] {});
  const EventId live = q.ScheduleAt(Sec(5), [] {});
  q.RunUntil(Sec(2));
  ASSERT_EQ(q.pending(), 1u);
  // The documented contract: cancelling an already-run id must fail and
  // leave the books alone (the old lazy-tombstone set decremented
  // live_count_ here, making pending()/empty() lie forever after).
  EXPECT_FALSE(q.Cancel(ran));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_TRUE(q.Cancel(live));
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelBogusIdDoesNotCorruptBooks) {
  EventQueue q;
  bool ran = false;
  q.ScheduleAt(Sec(1), [&] { ran = true; });
  EXPECT_FALSE(q.Cancel(424242));  // Never issued.
  EXPECT_EQ(q.pending(), 1u);
  q.RunAll();
  EXPECT_TRUE(ran);  // A bogus cancel must not tombstone a real event.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, DoubleCancelSecondFails) {
  EventQueue q;
  const EventId a = q.ScheduleAt(Sec(1), [] {});
  q.ScheduleAt(Sec(2), [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.Cancel(a));  // Second cancel: no-op, books unchanged.
  EXPECT_EQ(q.pending(), 1u);
  q.RunAll();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, PendingStaysConservedAcrossMixedOps) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.ScheduleAt(Sec(i + 1), [] {}));
  }
  EXPECT_EQ(q.pending(), 8u);
  EXPECT_TRUE(q.Cancel(ids[3]));
  EXPECT_TRUE(q.Cancel(ids[6]));
  EXPECT_FALSE(q.Cancel(ids[3]));
  EXPECT_EQ(q.pending(), 6u);
  q.RunUntil(Sec(4));  // Runs 1, 2, 3 (4 was cancelled).
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_FALSE(q.Cancel(ids[0]));  // Already ran.
  EXPECT_FALSE(q.Cancel(ids[6]));  // Already cancelled.
  EXPECT_FALSE(q.Cancel(999999));  // Never issued.
  EXPECT_EQ(q.pending(), 3u);
  q.RunAll();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Sec(1), [&] { order.push_back(1); });
  q.ScheduleAt(Sec(10), [&] { order.push_back(10); });
  q.RunUntil(Sec(5));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(q.now(), Sec(5));
  EXPECT_EQ(q.pending(), 1u);
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(EventQueueTest, EventsScheduledWhileDrainingRun) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      q.ScheduleAfter(Sec(1), chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), Sec(4));
}

TEST(EventQueueTest, AdvanceByMovesClockWithoutRunning) {
  EventQueue q;
  bool ran = false;
  q.ScheduleAt(Sec(1), [&] { ran = true; });
  q.AdvanceBy(Sec(2));
  EXPECT_EQ(q.now(), Sec(2));
  EXPECT_FALSE(ran);
  q.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), Sec(2));  // Past-due event runs at current time.
}

TEST(EventQueueTest, PastDeadlineScheduleClampsToNow) {
  EventQueue q;
  q.AdvanceBy(Sec(10));
  TimeNs fired = -1;
  q.ScheduleAt(Sec(1), [&] { fired = q.now(); });
  q.RunAll();
  EXPECT_EQ(fired, Sec(10));
}

TEST(EventQueueTest, CancelHeavyWorkloadKeepsStorageBounded) {
  // Lazy cancellation must not grow the queue without bound: tombstones
  // (and the closures they own) are compacted once they outnumber live
  // entries, instead of lingering until naturally popped.  The old
  // behavior kept every cancelled entry until its timestamp drained, so
  // this loop would have held ~200k dead closures (and their payloads).
  EventQueue q;
  auto payload = std::make_shared<int>(7);  // Owned by every dead closure.
  std::vector<EventId> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(q.ScheduleAt(Minutes(60) + Sec(i), [] {}));
  }
  for (int i = 0; i < 200000; ++i) {
    const EventId id =
        q.ScheduleAt(Sec(1) + Msec(i % 50000), [payload] { ++*payload; });
    ASSERT_TRUE(q.Cancel(id));
    // Live set and storage stay bounded at every step, not just at the end.
    ASSERT_EQ(q.pending(), 16u);
    ASSERT_LE(q.stored_entries(), 2 * q.pending() + 64);
  }
  // All but the last (not-yet-compacted) few dead closures were freed;
  // without compaction this would be ~200001.
  EXPECT_LE(payload.use_count(), 65);
  q.RunAll();
  EXPECT_EQ(*payload, 7);  // None of the cancelled events ever ran.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stored_entries(), 0u);
}

TEST(EventQueueTest, CompactionPreservesFiringOrder) {
  // Force compactions mid-stream and check survivors still fire in exact
  // (when, seq) order across wheel slots and the overflow heap.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 512; ++i) {
    // Mix of near-window and far-future timestamps.
    const TimeNs when = (i % 3 == 0) ? Msec(10 + i) : Sec(30) + Msec(i);
    ids.push_back(q.ScheduleAt(when, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 512; i += 2) {
    ASSERT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  ASSERT_LE(q.stored_entries(), 2 * q.pending() + 64);
  q.RunAll();
  ASSERT_EQ(fired.size(), 256u);
  // Survivors (odd i) must appear in (when, seq) order: rebuild expected.
  std::vector<std::pair<std::pair<TimeNs, int>, int>> expect;
  for (int i = 1; i < 512; i += 2) {
    const TimeNs when = (i % 3 == 0) ? Msec(10 + i) : Sec(30) + Msec(i);
    expect.push_back({{when, i}, i});
  }
  std::sort(expect.begin(), expect.end());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(fired[i], expect[i].second) << i;
  }
}

TEST(EventQueueTest, SuperWheelOrdersMultiHourTimestamps) {
  // Timestamps far beyond the coarse wheel's ~36 min horizon land in the
  // third (super) wheel level; mixed near/coarse/super/overflow schedules
  // must still fire in exact (when, seq) order.  Before the super level,
  // every multi-hour event sat in the overflow heap — multi-hour traces
  // degenerated to the pre-wheel kernel.
  EventQueue q;
  std::vector<int> fired;
  std::vector<TimeNs> whens;
  int tag = 0;
  for (int i = 0; i < 40; ++i) {
    whens.push_back(Msec(5 + 17 * i));             // Fine wheel.
    whens.push_back(Sec(40) + Msec(13 * i));       // Coarse wheel.
    whens.push_back(Minutes(90) + Sec(7 * i));     // Super wheel.
    whens.push_back(Minutes(60 * 30) + Sec(3 * i));  // Deep super (30 h).
  }
  for (const TimeNs when : whens) {
    const int t = tag++;
    q.ScheduleAt(when, [&fired, t] { fired.push_back(t); });
  }
  q.RunAll();
  ASSERT_EQ(fired.size(), whens.size());
  std::vector<std::pair<TimeNs, int>> expect;
  for (size_t i = 0; i < whens.size(); ++i) {
    expect.push_back({whens[i], static_cast<int>(i)});
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(fired[i], expect[i].second) << i;
  }
  EXPECT_EQ(q.now(), whens.back());
}

TEST(EventQueueTest, SuperWheelHandlerChainsAcrossHorizons) {
  // A handler firing hours in scheduling more work near and far keeps
  // working: the super wheel dumps into coarse, coarse into fine, and
  // freshly scheduled events route against the advanced cursor.
  EventQueue q;
  std::vector<std::pair<int, TimeNs>> fired;
  q.ScheduleAt(Minutes(100), [&] {
    fired.push_back({0, q.now()});
    q.ScheduleAfter(Msec(2), [&] { fired.push_back({1, q.now()}); });
    q.ScheduleAfter(Minutes(200), [&] { fired.push_back({2, q.now()}); });
  });
  q.ScheduleAt(Minutes(250), [&] { fired.push_back({3, q.now()}); });
  q.RunAll();
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], (std::pair<int, TimeNs>{0, Minutes(100)}));
  EXPECT_EQ(fired[1], (std::pair<int, TimeNs>{1, Minutes(100) + Msec(2)}));
  EXPECT_EQ(fired[2], (std::pair<int, TimeNs>{3, Minutes(250)}));
  EXPECT_EQ(fired[3], (std::pair<int, TimeNs>{2, Minutes(300)}));
}

TEST(EventQueueTest, SuperWheelCancelAndCompactStayBounded) {
  // Cancel-heavy churn across all three wheel levels: lazy deletion plus
  // compaction keeps storage proportional to live events even when the
  // dead ones sit hours out.
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 4096; ++i) {
    const TimeNs when = Minutes(30 + i) + Msec(i);
    ids.push_back(q.ScheduleAt(when, [&fired] { ++fired; }));
    if (i % 2 == 1) {
      ASSERT_TRUE(q.Cancel(ids.back()));
    }
    ASSERT_LE(q.stored_entries(), 2 * q.pending() + 64);
  }
  q.RunAll();
  EXPECT_EQ(fired, 2048);
  EXPECT_EQ(q.stored_entries(), 0u);
}

TEST(EventQueueTest, PeekNextAndSyncNowCoordinatorContract) {
  // The sharded coordinator's primitives: PeekNext reports the exact
  // (when, seq) head without running it, RunOne fires precisely one
  // event, and SyncNow only ever moves the clock forward.
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(Msec(5), [&] { fired.push_back(0); });
  q.ScheduleAt(Msec(5), [&] { fired.push_back(1); });
  q.ScheduleAt(Sec(2), [&] { fired.push_back(2); });
  TimeNs when = 0;
  uint64_t seq = 0;
  ASSERT_TRUE(q.PeekNext(&when, &seq));
  EXPECT_EQ(when, Msec(5));
  const uint64_t first_seq = seq;
  ASSERT_TRUE(q.RunOne());
  EXPECT_EQ(fired, (std::vector<int>{0}));
  ASSERT_TRUE(q.PeekNext(&when, &seq));
  EXPECT_EQ(when, Msec(5));
  EXPECT_GT(seq, first_seq);  // Same instant, later seq: FIFO tiebreak.
  q.SyncNow(Sec(1));
  EXPECT_EQ(q.now(), Sec(1));
  q.SyncNow(Msec(1));  // Never backwards.
  EXPECT_EQ(q.now(), Sec(1));
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(q.PeekNext(&when, &seq));
  EXPECT_FALSE(q.RunOne());
}

// --- CpuAccountant ----------------------------------------------------------------

TEST(CpuAccountantTest, SingleWindowUtilization) {
  CpuAccountant cpu(Sec(1));
  cpu.AddBusy("t", Msec(100), Msec(500));
  EXPECT_DOUBLE_EQ(cpu.UtilizationAt("t", Msec(200)), 50.0);
  EXPECT_DOUBLE_EQ(cpu.UtilizationAt("t", Sec(2)), 0.0);
  EXPECT_DOUBLE_EQ(cpu.UtilizationAt("other", 0), 0.0);
}

TEST(CpuAccountantTest, BusySpanSplitsAcrossWindows) {
  CpuAccountant cpu(Sec(1));
  // 0.5s..2.5s busy: windows get 50%, 100%, 50%.
  cpu.AddBusy("t", Msec(500), Sec(2));
  const std::vector<double> series = cpu.Series("t");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 50.0);
  EXPECT_DOUBLE_EQ(series[1], 100.0);
  EXPECT_DOUBLE_EQ(series[2], 50.0);
  EXPECT_EQ(cpu.TotalBusy("t"), Sec(2));
}

TEST(CpuAccountantTest, MultipleThreadsIndependent) {
  CpuAccountant cpu(Sec(1));
  cpu.AddBusy("a", 0, Msec(250));
  cpu.AddBusy("b", 0, Msec(750));
  EXPECT_DOUBLE_EQ(cpu.UtilizationAt("a", 0), 25.0);
  EXPECT_DOUBLE_EQ(cpu.UtilizationAt("b", 0), 75.0);
  EXPECT_EQ(cpu.threads().size(), 2u);
}

TEST(CpuAccountantTest, AccumulatesWithinWindow) {
  CpuAccountant cpu(Sec(1));
  cpu.AddBusy("t", 0, Msec(100));
  cpu.AddBusy("t", Msec(500), Msec(100));
  EXPECT_DOUBLE_EQ(cpu.UtilizationAt("t", 0), 20.0);
}

}  // namespace
}  // namespace squeezy
