// Cross-host shared dependency cache (src/cluster/dep_cache.*).
//
// Four behaviors are locked:
//   * registry bookkeeping — intern/pin/refcount/evict conservation;
//   * boot dedup — deps_region charged once per host per image for
//     sharing drivers, while Static/VirtioMem stay BIT-IDENTICAL with
//     the cache attached (the policy_parity_test-style lock: the same
//     churn scenario with and without the registry must agree exactly);
//   * cold-start cold-IO skip — a host whose peer holds the image warm
//     fetches it at wire speed (and a sibling VM adopts it for free);
//   * migration wire skip — a destination holding the image receives
//     only the anonymous state, priced strictly cheaper than the PR 3
//     full-transfer baseline, and drain eviction flows the image's
//     commitment back through the driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/dep_cache.h"
#include "src/cluster/migration_planner.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

FunctionSpec DepSpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;
  return s;
}

uint64_t DepsRegion(const FunctionSpec& s) {
  return BytesToBlocks(s.file_deps_bytes) * kMemoryBlockBytes;
}

// --- Registry bookkeeping ------------------------------------------------------------

TEST(DepCacheRegistryTest, InternIsIdempotentPerKey) {
  DepCache cache(2);
  const DepImageId a = cache.Intern("fn-a/64", MiB(128));
  const DepImageId b = cache.Intern("fn-b/64", MiB(128));
  EXPECT_NE(a, b);
  EXPECT_EQ(cache.Intern("fn-a/64", MiB(128)), a);
  EXPECT_EQ(cache.image_count(), 2u);
  EXPECT_EQ(cache.region_bytes(a), MiB(128));
}

TEST(DepCacheRegistryTest, PinDedupEvictConservation) {
  DepCache cache(2);
  const DepImageId img = cache.Intern("fn/64", MiB(128));
  EXPECT_FALSE(cache.Resident(0, img));
  EXPECT_FALSE(cache.PinImage(0, img));  // First pin: the caller charges.
  EXPECT_TRUE(cache.Resident(0, img));
  EXPECT_TRUE(cache.PinImage(0, img));  // Joining pin: dedup hit.
  EXPECT_EQ(cache.stats().boot_dedup_hits, 1u);
  EXPECT_EQ(cache.stats().boot_bytes_saved, MiB(128));
  EXPECT_EQ(cache.charged_bytes(0), MiB(128));  // Once, not twice.
  EXPECT_EQ(cache.charged_bytes(1), 0u);

  cache.AddRef(0, img);
  EXPECT_EQ(cache.RefCount(0, img), 1u);
  cache.ReleaseRef(0, img);
  EXPECT_EQ(cache.RefCount(0, img), 0u);

  EXPECT_EQ(cache.EvictImage(0, img), MiB(128));
  EXPECT_FALSE(cache.Resident(0, img));
  EXPECT_EQ(cache.EvictImage(0, img), 0u);  // Second evict: nothing charged.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.charged_bytes(0), 0u);
}

TEST(DepCacheRegistryTest, PopulationIsPerHost) {
  DepCache cache(3);
  const DepImageId img = cache.Intern("fn/64", MiB(128));
  cache.PinImage(0, img);
  cache.PinImage(1, img);
  EXPECT_FALSE(cache.PopulatedElsewhere(1, img));
  cache.MarkPopulated(0, img);
  EXPECT_TRUE(cache.Populated(0, img));
  EXPECT_FALSE(cache.Populated(1, img));
  EXPECT_TRUE(cache.PopulatedElsewhere(1, img));
  EXPECT_FALSE(cache.PopulatedElsewhere(0, img));  // Only host 0 holds it.
  // Eviction drops population with residency.
  EXPECT_EQ(cache.EvictImage(0, img), MiB(128));
  EXPECT_FALSE(cache.Populated(0, img));
  EXPECT_FALSE(cache.PopulatedElsewhere(1, img));
}

// --- Boot dedup (once per host per image) --------------------------------------------

TEST(DepCacheBootTest, SqueezyChargesDepsOncePerHostPerImage) {
  const FunctionSpec spec = DepSpec("dedup");
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(32);
  cfg.vm_base_memory = MiB(128);

  FaasRuntime plain(cfg);
  plain.AddFunction(spec, 4);
  plain.AddFunction(spec, 4);

  DepCache cache(1);
  FaasRuntime shared(cfg);
  shared.AttachDepRegistry(&cache, 0);
  shared.AddFunction(spec, 4);
  shared.AddFunction(spec, 4);

  // The second VM of the same image skips its deps share of the boot
  // commitment — exactly one region less than the per-VM baseline.
  EXPECT_EQ(shared.committed() + DepsRegion(spec), plain.committed());
  EXPECT_EQ(cache.stats().boot_dedup_hits, 1u);
  EXPECT_EQ(cache.charged_bytes(0), DepsRegion(spec));
  EXPECT_NE(shared.dep_image(0), kNoDepImage);
  EXPECT_EQ(shared.dep_image(0), shared.dep_image(1));

  // Distinct specs are distinct images: both charge.
  FunctionSpec other = DepSpec("other");
  shared.AddFunction(other, 4);
  EXPECT_EQ(cache.charged_bytes(0), 2 * DepsRegion(spec));
}

// --- Parity lock: non-sharing drivers are bit-identical with the cache attached ------

struct ChurnSummary {
  uint64_t completed = 0;
  int64_t latency_sum = 0;
  uint64_t pending_total = 0;
  uint64_t evictions = 0;
  uint64_t committed_peak = 0;
  uint64_t committed_final = 0;

  bool operator==(const ChurnSummary& o) const {
    return completed == o.completed && latency_sum == o.latency_sum &&
           pending_total == o.pending_total && evictions == o.evictions &&
           committed_peak == o.committed_peak && committed_final == o.committed_final;
  }
};

ChurnSummary RunChurn(ReclaimPolicy policy, DepImageRegistry* registry) {
  RuntimeConfig cfg;
  cfg.host_capacity = policy == ReclaimPolicy::kStatic ? GiB(6) : MiB(1280);
  cfg.policy = policy;
  cfg.keep_alive = Sec(30);
  cfg.seed = 42;
  cfg.vm_base_memory = MiB(128);
  cfg.unplug_timeout = Msec(100);
  cfg.pressure_check_period = Msec(500);
  FaasRuntime rt(cfg);
  if (registry != nullptr) {
    rt.AttachDepRegistry(registry, 0);
  }
  const int kFunctions = 3;
  for (int f = 0; f < kFunctions; ++f) {
    rt.AddFunction(DepSpec("parity"), 6);
  }
  ClusterTraceConfig trace;
  trace.duration = Minutes(4);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  rt.SubmitTrace(GenerateClusterTrace(trace, 42));
  rt.RunUntil(Minutes(6));

  ChurnSummary g;
  for (int f = 0; f < kFunctions; ++f) {
    const Agent& a = rt.agent(f);
    g.completed += a.requests().size();
    for (const RequestRecord& r : a.requests()) {
      g.latency_sum += r.latency();
    }
    g.evictions += a.total_evictions();
  }
  g.pending_total = rt.total_pending_scaleups();
  g.committed_peak = static_cast<uint64_t>(rt.host().committed_series().Max());
  g.committed_final = rt.committed();
  return g;
}

TEST(DepCacheParityTest, StaticAndVirtioMemBitIdenticalWithCacheAttached) {
  // Non-sharing drivers never register an image, so attaching the
  // registry must not perturb a single number — the whole churn run is
  // compared, not a summary statistic.
  for (const ReclaimPolicy policy :
       {ReclaimPolicy::kStatic, ReclaimPolicy::kVirtioMem, ReclaimPolicy::kHarvestOpts}) {
    DepCache cache(1);
    const ChurnSummary with = RunChurn(policy, &cache);
    const ChurnSummary without = RunChurn(policy, nullptr);
    EXPECT_TRUE(with == without) << ReclaimPolicyName(policy);
    EXPECT_EQ(cache.image_count(), 0u) << ReclaimPolicyName(policy);
    EXPECT_EQ(cache.stats().pins, 0u) << ReclaimPolicyName(policy);
  }
}

TEST(DepCacheParityTest, SqueezySharesAndStillCompletesTheChurn) {
  DepCache cache(1);
  const ChurnSummary with = RunChurn(ReclaimPolicy::kSqueezy, &cache);
  const ChurnSummary without = RunChurn(ReclaimPolicy::kSqueezy, nullptr);
  // Same image for the three VMs: two boot dedups, a full region freed.
  EXPECT_EQ(cache.stats().boot_dedup_hits, 2u);
  EXPECT_EQ(cache.stats().boot_bytes_saved, 2 * DepsRegion(DepSpec("parity")));
  // The freed commitment loosens the whole run: the shared host can only
  // sit at or below the per-VM book, and never loses work to it.  (More
  // headroom admits more instances, so pending/eviction churn may go
  // either way — only the book and the served work are ordered.)
  EXPECT_LE(with.committed_peak, without.committed_peak);
  EXPECT_LE(with.committed_final, without.committed_final);
  EXPECT_GE(with.completed, without.completed);
}

// --- Cold-start cold-IO skip ---------------------------------------------------------

// Two hosts, one function replicated on both.  Host 0 cold-starts from
// disk; once its image is warm, host 1's cold start fetches the bytes
// from host 0 at wire speed instead of paying cold backing-store IO.
TEST(DepCacheColdStartTest, PeerResidentImageSkipsColdIo) {
  auto run = [](bool with_cache) {
    ClusterConfig cfg;
    cfg.nr_hosts = 2;
    cfg.placement = PlacementPolicy::kRoundRobin;
    cfg.shared_dep_cache = with_cache;
    cfg.host.policy = ReclaimPolicy::kSqueezy;
    cfg.host.host_capacity = GiB(8);
    cfg.host.vm_base_memory = MiB(128);
    cfg.host.keep_alive = Minutes(5);
    cfg.host.seed = 7;
    auto cluster = std::make_unique<Cluster>(cfg);
    const int fn = cluster->AddFunction(DepSpec("coldio"), 4);
    const std::vector<Replica>& reps = cluster->replicas(fn);
    EXPECT_EQ(reps.size(), 2u);
    // Two invocations on host 0 (the second acquire observes the first
    // instance's fully-cached image and marks host 0 populated), then a
    // cold start on host 1.
    Cluster& c = *cluster;
    c.events().ScheduleAt(Sec(1), [&c, reps] { c.host(reps[0].host).agent(reps[0].local_fn).Submit(); });
    c.events().ScheduleAt(Sec(30), [&c, reps] { c.host(reps[0].host).agent(reps[0].local_fn).Submit(); });
    c.events().ScheduleAt(Sec(60), [&c, reps] { c.host(reps[1].host).agent(reps[1].local_fn).Submit(); });
    c.RunUntil(Minutes(2));
    return cluster;
  };

  const auto with = run(true);
  const auto without = run(false);

  const Cluster::DepIoTotals io_with = with->DepIo();
  const Cluster::DepIoTotals io_without = without->DepIo();
  // Host 0's first cold start still reads from disk; host 1's reads the
  // peer-resident image over the wire.
  EXPECT_GT(io_with.disk_read_bytes, 0u);
  EXPECT_GT(io_with.remote_read_bytes, 0u);
  EXPECT_EQ(io_without.remote_read_bytes, 0u);
  EXPECT_GT(io_without.disk_read_bytes, io_with.disk_read_bytes);
  // Every byte fetched remotely is a byte of cold IO avoided.
  EXPECT_EQ(io_with.cold_io_avoided(), io_with.remote_read_bytes);

  // Host 1's cold start is strictly faster: wire beats backing store.
  const std::vector<Replica>& rw = with->replicas(0);
  const std::vector<Replica>& ro = without->replicas(0);
  const auto& cold_with = with->host(rw[1].host).agent(rw[1].local_fn).cold_starts();
  const auto& cold_without = without->host(ro[1].host).agent(ro[1].local_fn).cold_starts();
  ASSERT_EQ(cold_with.size(), 1u);
  ASSERT_EQ(cold_without.size(), 1u);
  EXPECT_LT(cold_with[0].total(), cold_without[0].total());
}

// A second VM of the same image on the SAME host adopts the sibling's
// warm pages outright — no reads at all, disk or wire.
TEST(DepCacheColdStartTest, SiblingVmAdoptsHostResidentImage) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(16);
  cfg.vm_base_memory = MiB(128);
  cfg.keep_alive = Minutes(5);
  DepCache cache(1);
  FaasRuntime rt(cfg);
  rt.AttachDepRegistry(&cache, 0);
  const FunctionSpec spec = DepSpec("sibling");
  const int a = rt.AddFunction(spec, 4);
  const int b = rt.AddFunction(spec, 4);

  rt.events().ScheduleAt(Sec(1), [&rt, a] { rt.agent(a).Submit(); });
  rt.events().ScheduleAt(Sec(30), [&rt, a] { rt.agent(a).Submit(); });  // Marks populated.
  rt.events().ScheduleAt(Sec(60), [&rt, b] { rt.agent(b).Submit(); });
  rt.RunUntil(Minutes(2));

  const PageCache& pc = static_cast<const FaasRuntime&>(rt).guest(b).page_cache();
  const int32_t file = rt.agent(b).deps_file();
  EXPECT_GT(pc.adopted_bytes(file), 0u);
  EXPECT_EQ(pc.disk_read_bytes(file), 0u);  // The sibling already paid the IO.
  EXPECT_EQ(pc.remote_read_bytes(file), 0u);
}

// --- Migration wire skip -------------------------------------------------------------

TEST(DepCachePricingTest, DepHitPricesStrictlyCheaperThanFullTransfer) {
  RuntimeConfig cfg;
  FaasRuntime host(cfg);
  MigrationPlanner planner({static_cast<HostControl*>(&host)}, cfg.cost);

  ReplicaMigrationState full;
  full.warm_instances = 2;
  full.state_bytes = MiB(64);
  full.deps_bytes = MiB(128);
  full.busy_fraction = 0.5;
  ReplicaMigrationState hit = full;
  hit.deps_bytes = 0;

  const StateTransferCost c_full = planner.TransferCost(full);
  const StateTransferCost c_hit = planner.TransferCost(hit, /*dep_cache_hit=*/true);
  EXPECT_LT(c_hit.total(), c_full.total());
  EXPECT_LT(c_hit.bytes_sent, c_full.bytes_sent);
  EXPECT_GE(c_full.bytes_sent - c_hit.bytes_sent, MiB(128));  // Deps never resent either.
}

struct DrainOutcome {
  uint64_t bytes_sent = 0;
  TimeNs transfer_ns = 0;
  size_t migrations = 0;
  uint64_t wire_bytes_saved = 0;
};

DrainOutcome RunDrainMigration(bool with_cache) {
  ClusterConfig cfg;
  cfg.nr_hosts = 2;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.shared_dep_cache = with_cache;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = GiB(8);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Minutes(5);
  cfg.host.seed = 11;
  Cluster cluster(cfg);
  const int fn = cluster.AddFunction(DepSpec("migrate"), 4);
  const std::vector<Replica> reps = cluster.replicas(fn);

  // Warm BOTH replicas (two instances on the source, one on the
  // destination so its image is populated), then drain the source.
  Cluster* c = &cluster;
  for (const TimeNs t : {Sec(1), Sec(20)}) {
    c->events().ScheduleAt(t, [c, reps] { c->host(reps[0].host).agent(reps[0].local_fn).Submit(); });
  }
  c->events().ScheduleAt(Sec(1), [c, reps] { c->host(reps[1].host).agent(reps[1].local_fn).Submit(); });
  cluster.RunUntil(Minutes(1));
  cluster.DrainHost(reps[0].host);
  cluster.RunUntil(Minutes(2));

  DrainOutcome out;
  out.migrations = cluster.migrations().size();
  for (const MigrationRecord& m : cluster.migrations()) {
    out.bytes_sent += m.bytes_sent;
    out.transfer_ns += m.done_at - m.started_at;
  }
  if (cluster.dep_cache() != nullptr) {
    out.wire_bytes_saved = cluster.dep_cache()->stats().wire_bytes_saved;
  }
  return out;
}

TEST(DepCacheMigrationTest, CacheOnWithNonSharingDriverMigratesAtFullPrice) {
  // shared_dep_cache with a driver that does not share: no image is ever
  // registered (fn_dep_image == kNoDepImage), so drain migration must run
  // the PR 3 full-price path instead of touching the registry.
  ClusterConfig cfg;
  cfg.nr_hosts = 2;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.shared_dep_cache = true;
  cfg.host.policy = ReclaimPolicy::kVirtioMem;
  cfg.host.host_capacity = GiB(8);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Minutes(5);
  cfg.host.seed = 13;
  Cluster cluster(cfg);
  const int fn = cluster.AddFunction(DepSpec("nonsharing"), 4);
  const std::vector<Replica> reps = cluster.replicas(fn);
  EXPECT_EQ(cluster.host(reps[0].host).dep_image(reps[0].local_fn), kNoDepImage);

  Cluster* c = &cluster;
  c->events().ScheduleAt(Sec(1), [c, reps] { c->host(reps[0].host).agent(reps[0].local_fn).Submit(); });
  cluster.RunUntil(Minutes(1));
  cluster.DrainHost(reps[0].host);  // Crashed here before the kNoDepImage guard.
  cluster.RunUntil(Minutes(2));

  ASSERT_EQ(cluster.migrations().size(), 1u);
  EXPECT_EQ(cluster.dep_cache()->stats().wire_hits, 0u);
  // Full price: the image crossed the wire with the anonymous state.
  EXPECT_GE(cluster.migrations()[0].bytes_sent, DepSpec("nonsharing").file_deps_bytes);
}

TEST(DepCacheMigrationTest, DestinationResidentImageSkipsTheWire) {
  const DrainOutcome with = RunDrainMigration(true);
  const DrainOutcome without = RunDrainMigration(false);
  ASSERT_GT(with.migrations, 0u);
  ASSERT_EQ(with.migrations, without.migrations);
  // The image never crossed the wire on the hit, and the transfer is
  // strictly cheaper than the PR 3 full-transfer baseline.
  EXPECT_GT(with.wire_bytes_saved, 0u);
  EXPECT_LT(with.bytes_sent, without.bytes_sent);
  EXPECT_GE(without.bytes_sent - with.bytes_sent, with.wire_bytes_saved);
  EXPECT_LT(with.transfer_ns, without.transfer_ns);
}

// --- Eviction: drain flows the image commitment back ---------------------------------

TEST(DepCacheEvictionTest, DrainReleasesImageCommitmentThroughDriver) {
  ClusterConfig cfg;
  cfg.nr_hosts = 2;
  cfg.placement = PlacementPolicy::kRoundRobin;
  cfg.shared_dep_cache = true;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = GiB(8);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.seed = 5;
  Cluster cluster(cfg);
  const FunctionSpec spec = DepSpec("evict");
  const int fn = cluster.AddFunction(spec, 4);
  const std::vector<Replica> reps = cluster.replicas(fn);
  const size_t victim = reps[0].host;

  // Resident and charged at boot.
  EXPECT_EQ(cluster.host(victim).committed(), MiB(128) + DepsRegion(spec));
  Cluster* c = &cluster;
  c->events().ScheduleAt(Sec(1), [c, reps] { c->host(reps[0].host).agent(reps[0].local_fn).Submit(); });
  cluster.RunUntil(Sec(20));
  const DepImageId img = cluster.host(victim).dep_image(reps[0].local_fn);
  EXPECT_EQ(cluster.dep_cache()->RefCount(victim, img), 1u);

  cluster.DrainHost(victim);
  cluster.RunAll();  // Keep-alive expires, instances reap, image evicts.

  // Refcount conservation: every grant released, residency gone, and the
  // deps commitment flowed back through the driver — only base remains.
  EXPECT_EQ(cluster.dep_cache()->RefCount(victim, img), 0u);
  EXPECT_FALSE(cluster.dep_cache()->Resident(victim, img));
  EXPECT_EQ(cluster.dep_cache()->charged_bytes(victim), 0u);
  EXPECT_EQ(cluster.host(victim).committed(), MiB(128));
  EXPECT_GE(cluster.dep_cache()->stats().evictions, 1u);

  // Undrain: the next cold start re-charges the image before any
  // instance maps it (conserving the book in the other direction).
  cluster.UndrainHost(victim);
  c->events().ScheduleAt(cluster.events().now() + Sec(1),
                         [c, reps] { c->host(reps[0].host).agent(reps[0].local_fn).Submit(); });
  cluster.RunUntil(cluster.events().now() + Sec(20));
  EXPECT_TRUE(cluster.dep_cache()->Resident(victim, img));
  EXPECT_EQ(cluster.host(victim).committed(),
            MiB(128) + DepsRegion(spec) + BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes);
}

}  // namespace
}  // namespace squeezy
