// Unit/integration tests for the guest kernel: processes, fault paths,
// fork/exit, OOM, vanilla hot(un)plug policy.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

class GuestTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = std::make_unique<HostMemory>(GiB(32));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
    GuestConfig cfg;
    cfg.name = "test-vm";
    cfg.vcpus = 2;
    cfg.base_memory = MiB(512);
    cfg.hotplug_region = GiB(2);
    cfg.shuffle_allocator = false;  // Deterministic placement for tests.
    guest_ = std::make_unique<GuestKernel>(cfg, hv_.get());
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<GuestKernel> guest_;
};

TEST_F(GuestTest, BootBringsUpNormalZone) {
  // 512 MiB base minus the pinned kernel footprint is allocatable.
  EXPECT_EQ(guest_->normal_zone().managed_pages(), MiB(512) / kPageSize);
  EXPECT_GT(guest_->normal_zone().allocated_pages(), 0u);  // Kernel tax.
  EXPECT_EQ(guest_->movable_zone().managed_pages(), 0u);   // Nothing plugged.
  EXPECT_EQ(guest_->hotplug_first_block(), 4u);
  EXPECT_EQ(guest_->hotplug_nr_blocks(), 16u);
}

TEST_F(GuestTest, PlugGrowsMovableZone) {
  const PlugOutcome out = guest_->PlugMemory(MiB(768), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(guest_->movable_zone().managed_pages(), MiB(768) / kPageSize);
  EXPECT_EQ(guest_->online_bytes(), MiB(512) + MiB(768));
}

TEST_F(GuestTest, TouchAnonFaultsThpFolios) {
  guest_->PlugMemory(MiB(256), 0);
  const Pid pid = guest_->CreateProcess();
  const TouchResult r = guest_->TouchAnon(pid, MiB(64), 0);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.bytes, MiB(64));
  EXPECT_EQ(guest_->process(pid).anon_bytes(), MiB(64));
  EXPECT_GT(r.latency, 0);
  EXPECT_GT(r.nested, 0);  // Freshly plugged memory needs host backing.
  // THP-sized folios: 32 folios for 64 MiB.
  EXPECT_EQ(guest_->process(pid).folios().size(), 32u);
}

TEST_F(GuestTest, SecondTouchHasNoNestedFaults) {
  guest_->PlugMemory(MiB(256), 0);
  const Pid a = guest_->CreateProcess();
  guest_->TouchAnon(a, MiB(64), 0);
  guest_->Exit(a);
  // Same memory re-touched: host backing already present.
  const Pid b = guest_->CreateProcess();
  const TouchResult r = guest_->TouchAnon(b, MiB(64), 0);
  EXPECT_EQ(r.nested, 0);
}

TEST_F(GuestTest, SubPageRoundingAndSmallTouches) {
  guest_->PlugMemory(MiB(128), 0);
  const Pid pid = guest_->CreateProcess();
  const TouchResult r = guest_->TouchAnon(pid, 1, 0);  // One byte -> one page.
  EXPECT_EQ(r.bytes, kPageSize);
  const TouchResult r2 = guest_->TouchAnon(pid, kPageSize * 3, 0);
  EXPECT_EQ(r2.bytes, kPageSize * 3);
  EXPECT_EQ(guest_->process(pid).anon_bytes(), kPageSize * 4);
}

TEST_F(GuestTest, AnonSpillsToNormalZoneWhenMovableFull) {
  guest_->PlugMemory(kMemoryBlockBytes, 0);  // 128 MiB movable.
  const Pid pid = guest_->CreateProcess();
  const TouchResult r = guest_->TouchAnon(pid, MiB(192), 0);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(guest_->process(pid).anon_bytes(), MiB(192));
  EXPECT_GT(guest_->normal_zone().allocated_pages(), MiB(64) / kPageSize);
}

TEST_F(GuestTest, OomKillsProcessWhenEverythingFull) {
  guest_->PlugMemory(kMemoryBlockBytes, 0);
  const Pid pid = guest_->CreateProcess();
  // Demand far beyond base + plugged.
  const TouchResult r = guest_->TouchAnon(pid, GiB(1), 0);
  EXPECT_TRUE(r.oom);
  EXPECT_EQ(guest_->process(pid).state(), ProcessState::kOomKilled);
  EXPECT_FALSE(guest_->Alive(pid));
  // Its memory was released.
  EXPECT_EQ(guest_->process(pid).anon_bytes(), 0u);
}

TEST_F(GuestTest, ExitFreesAllAnonMemory) {
  guest_->PlugMemory(MiB(256), 0);
  const Pid pid = guest_->CreateProcess();
  guest_->TouchAnon(pid, MiB(100), 0);
  const uint64_t allocated_before = guest_->movable_zone().allocated_pages();
  EXPECT_GT(allocated_before, 0u);
  guest_->Exit(pid);
  EXPECT_EQ(guest_->movable_zone().allocated_pages(), 0u);
  EXPECT_EQ(guest_->live_process_count(), 0u);
  EXPECT_TRUE(guest_->movable_zone().CheckFreeLists());
}

TEST_F(GuestTest, FreeAnonPartialRelease) {
  guest_->PlugMemory(MiB(256), 0);
  const Pid pid = guest_->CreateProcess();
  guest_->TouchAnon(pid, MiB(100), 0);
  const uint64_t freed = guest_->FreeAnon(pid, MiB(40));
  EXPECT_GE(freed, MiB(40));
  EXPECT_LE(freed, MiB(42));  // Folio granularity.
  EXPECT_EQ(guest_->process(pid).anon_bytes(), MiB(100) - freed);
}

TEST_F(GuestTest, TouchFilePopulatesSharedCacheOnce) {
  guest_->PlugMemory(MiB(256), 0);
  const int32_t file = guest_->CreateFile("deps", MiB(32));
  const Pid a = guest_->CreateProcess();
  const TouchResult first = guest_->TouchFile(a, file, MiB(32), 0);
  EXPECT_EQ(guest_->page_cache().cached_pages(file), MiB(32) / kPageSize);

  const Pid b = guest_->CreateProcess();
  const TouchResult second = guest_->TouchFile(b, file, MiB(32), 0);
  // Cache hit: no IO, dramatically cheaper (this is the N:1 sharing win).
  EXPECT_LT(second.latency, first.latency / 10);
  // Cache population is not duplicated.
  EXPECT_EQ(guest_->page_cache().cached_pages(file), MiB(32) / kPageSize);
}

TEST_F(GuestTest, FileRereadCostsScaleWithSize) {
  guest_->PlugMemory(MiB(512), 0);
  const int32_t small = guest_->CreateFile("small", MiB(8));
  const int32_t large = guest_->CreateFile("large", MiB(64));
  const Pid pid = guest_->CreateProcess();
  const DurationNs small_cost = guest_->TouchFile(pid, small, MiB(8), 0).latency;
  const DurationNs large_cost = guest_->TouchFile(pid, large, MiB(64), 0).latency;
  EXPECT_NEAR(static_cast<double>(large_cost) / static_cast<double>(small_cost), 8.0, 0.5);
}

TEST_F(GuestTest, ForkSharesPartitionAndFiles) {
  const int32_t file = guest_->CreateFile("lib", MiB(1));
  const Pid parent = guest_->CreateProcess();
  guest_->process(parent).MapFile(file);
  const Pid child = guest_->Fork(parent);
  EXPECT_EQ(guest_->process(child).parent(), parent);
  EXPECT_EQ(guest_->process(child).files().size(), 1u);
  EXPECT_EQ(guest_->live_process_count(), 2u);
}

TEST_F(GuestTest, VanillaUnplugAfterProcessExitMigratesSurvivors) {
  guest_->PlugMemory(MiB(512), 0);
  // Two processes interleave (ascending allocation interleaves at folio
  // granularity as they alternate), filling 3 of the 4 plugged blocks.
  const Pid a = guest_->CreateProcess();
  const Pid b = guest_->CreateProcess();
  for (int i = 0; i < 24; ++i) {
    guest_->TouchAnon(a, MiB(8), 0);
    guest_->TouchAnon(b, MiB(8), 0);
  }
  // Kill A; reclaim more than the fully-free spare block so at least one
  // half-occupied block must be evacuated.
  guest_->Exit(a);
  const UnplugOutcome out = guest_->UnplugMemory(MiB(256), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_GT(out.pages_migrated, 0u);
  // B's memory is intact after the migration.
  EXPECT_EQ(guest_->process(b).anon_bytes(), MiB(192));
  // Every folio B owns is still allocated and owned by B.
  for (const FolioRef& f : guest_->process(b).folios()) {
    if (f.head == kInvalidPfn) {
      continue;
    }
    const Page& p = guest_->memmap().page(f.head);
    EXPECT_EQ(p.state, PageState::kAllocated);
    EXPECT_EQ(p.owner, b);
  }
}

TEST_F(GuestTest, BalloonReclaimShrinksMovable) {
  guest_->PlugMemory(MiB(256), 0);
  const BalloonOutcome out = guest_->BalloonReclaim(MiB(64), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(guest_->balloon().held_bytes(), MiB(64));
}

TEST_F(GuestTest, AllocatedBytesAccountsAllZones) {
  guest_->PlugMemory(MiB(256), 0);
  const uint64_t boot = guest_->allocated_bytes();
  const Pid pid = guest_->CreateProcess();
  guest_->TouchAnon(pid, MiB(32), 0);
  EXPECT_EQ(guest_->allocated_bytes(), boot + MiB(32));
}

TEST_F(GuestTest, NestedFaultLatencyMatchesBackingGranules) {
  guest_->PlugMemory(MiB(256), 0);
  const Pid pid = guest_->CreateProcess();
  const TouchResult r = guest_->TouchAnon(pid, MiB(64), 0);
  // One exit per backing granule of freshly plugged memory.
  const int64_t granules = static_cast<int64_t>(MiB(64) / cost_.host_thp_bytes);
  EXPECT_EQ(r.nested, granules * cost_.nested_fault_exit);
}

TEST_F(GuestTest, HostPopulationGrowsWithTouches) {
  guest_->PlugMemory(MiB(256), 0);
  const uint64_t before = host_->populated();
  const Pid pid = guest_->CreateProcess();
  guest_->TouchAnon(pid, MiB(64), 0);
  EXPECT_EQ(host_->populated(), before + MiB(64));
  // Unplug after exit releases it back.
  guest_->Exit(pid);
  guest_->UnplugMemory(MiB(256), 0);
  EXPECT_EQ(host_->populated(), before);
}

}  // namespace
}  // namespace squeezy
