// Unit tests for host memory accounting and the hypervisor model.
#include <gtest/gtest.h>

#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu_accountant.h"

namespace squeezy {
namespace {

TEST(HostMemoryTest, ReserveWithinCapacity) {
  HostMemory host(GiB(4));
  EXPECT_TRUE(host.TryReserve(GiB(3), 0));
  EXPECT_EQ(host.committed(), GiB(3));
  EXPECT_EQ(host.available(), GiB(1));
  EXPECT_FALSE(host.TryReserve(GiB(2), 0));  // Would exceed capacity.
  EXPECT_EQ(host.committed(), GiB(3));       // Unchanged on failure.
  EXPECT_TRUE(host.TryReserve(GiB(1), 0));   // Exact fit.
  EXPECT_EQ(host.available(), 0u);
}

TEST(HostMemoryTest, ReleaseReservation) {
  HostMemory host(GiB(4));
  ASSERT_TRUE(host.TryReserve(GiB(2), 0));
  host.ReleaseReservation(GiB(1), Sec(1));
  EXPECT_EQ(host.committed(), GiB(1));
}

TEST(HostMemoryTest, PopulationTracksPeak) {
  HostMemory host(GiB(4));
  host.Populate(GiB(1), 0);
  host.Populate(GiB(2), Sec(1));
  EXPECT_EQ(host.populated(), GiB(3));
  host.Unpopulate(GiB(2), Sec(2));
  EXPECT_EQ(host.populated(), GiB(1));
  EXPECT_EQ(host.populated_peak(), GiB(3));
}

TEST(HostMemoryTest, SeriesRecordTimestamps) {
  HostMemory host(GiB(4));
  host.Populate(MiB(100), Sec(1));
  host.Populate(MiB(100), Sec(2));
  host.Unpopulate(MiB(50), Sec(3));
  const StepSeries& s = host.populated_series();
  EXPECT_DOUBLE_EQ(s.At(Sec(1)), static_cast<double>(MiB(100)));
  EXPECT_DOUBLE_EQ(s.At(Sec(2)), static_cast<double>(MiB(200)));
  EXPECT_DOUBLE_EQ(s.At(Sec(4)), static_cast<double>(MiB(150)));
}

class HypervisorTest : public testing::Test {
 protected:
  HostMemory host_{GiB(8)};
  CostModel cost_ = CostModel::Default();
  CpuAccountant cpu_{Sec(1)};
  Hypervisor hv_{&host_, &cost_, &cpu_};
};

TEST_F(HypervisorTest, RegisterVmAssignsIds) {
  const VmId a = hv_.RegisterVm("vm-a", 2);
  const VmId b = hv_.RegisterVm("vm-b", 4);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(hv_.stats(a).name, "vm-a");
  EXPECT_EQ(hv_.stats(b).vcpus, 4u);
}

TEST_F(HypervisorTest, NestedFaultPopulates) {
  const VmId vm = hv_.RegisterVm("vm", 1);
  const DurationNs lat = hv_.NestedFaultPopulate(vm, 3, MiB(6), 0);
  EXPECT_EQ(lat, 3 * cost_.nested_fault_exit);
  EXPECT_EQ(hv_.stats(vm).nested_faults, 3u);
  EXPECT_EQ(hv_.stats(vm).populated_bytes, MiB(6));
  EXPECT_EQ(host_.populated(), MiB(6));
}

TEST_F(HypervisorTest, AckUnplugReleasesBacking) {
  const VmId vm = hv_.RegisterVm("vm", 1);
  hv_.NestedFaultPopulate(vm, 64, kMemoryBlockBytes, 0);
  const DurationNs lat = hv_.AckUnplugBlock(vm, kMemoryBlockBytes, Sec(1));
  EXPECT_EQ(lat, cost_.block_unplug_exit);
  EXPECT_EQ(hv_.stats(vm).populated_bytes, 0u);
  EXPECT_EQ(host_.populated(), 0u);
}

TEST_F(HypervisorTest, BalloonReleaseAccountsPages) {
  const VmId vm = hv_.RegisterVm("vm", 1);
  hv_.NestedFaultPopulate(vm, 1, PagesToBytes(100), 0);
  const DurationNs lat = hv_.BalloonRelease(vm, 100, 0);
  EXPECT_EQ(lat, 100 * cost_.balloon_exit_page);
  EXPECT_EQ(host_.populated(), 0u);
}

TEST_F(HypervisorTest, ReleaseAllPopulatedOnTeardown) {
  const VmId vm = hv_.RegisterVm("vm", 1);
  hv_.NestedFaultPopulate(vm, 10, MiB(20), 0);
  hv_.ReleaseAllPopulated(vm, Sec(2));
  EXPECT_EQ(hv_.stats(vm).populated_bytes, 0u);
  EXPECT_EQ(host_.populated(), 0u);
}

TEST_F(HypervisorTest, HostThreadCpuCharged) {
  const VmId vm = hv_.RegisterVm("vm-x", 1);
  hv_.NestedFaultPopulate(vm, 1000, MiB(2), 0);
  EXPECT_GT(cpu_.TotalBusy("vmm/vm-x"), 0);
}

}  // namespace
}  // namespace squeezy
