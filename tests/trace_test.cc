// Unit tests for trace generation, churn analysis, and memhog.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/trace/churn.h"
#include "src/trace/memhog.h"
#include "src/trace/trace_gen.h"

namespace squeezy {
namespace {

TEST(TraceGenTest, SortedAndWithinDuration) {
  Rng rng(1);
  BurstyTraceConfig cfg;
  cfg.duration = Minutes(5);
  const auto trace = GenerateBurstyTrace(cfg, rng);
  ASSERT_FALSE(trace.empty());
  for (size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace[i].at, trace[i - 1].at);
  }
  EXPECT_LT(trace.back().at, cfg.duration);
  EXPECT_GE(trace.front().at, 0);
}

TEST(TraceGenTest, DeterministicForSeed) {
  BurstyTraceConfig cfg;
  Rng a(5);
  Rng b(5);
  const auto ta = GenerateBurstyTrace(cfg, a);
  const auto tb = GenerateBurstyTrace(cfg, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].at, tb[i].at);
  }
}

TEST(TraceGenTest, BurstsRaiseArrivalDensity) {
  Rng rng(2);
  BurstyTraceConfig cfg;
  cfg.duration = Minutes(30);
  cfg.base_rate_per_sec = 0.2;
  cfg.burst_rate_per_sec = 20.0;
  const auto trace = GenerateBurstyTrace(cfg, rng);
  // Count arrivals per 10-second bin; bursty traces must show both very
  // quiet and very hot bins.
  std::map<int64_t, int> bins;
  for (const Invocation& inv : trace) {
    bins[inv.at / Sec(10)]++;
  }
  int hot = 0;
  for (const auto& [bin, count] : bins) {
    (void)bin;
    if (count > 50) {
      ++hot;
    }
  }
  EXPECT_GT(hot, 0) << "expected at least one burst-dense bin";
  // Quiet bins exist too (bins absent from the map count as quiet).
  EXPECT_LT(bins.size(), static_cast<size_t>(cfg.duration / Sec(10)));
}

TEST(TraceGenTest, FunctionTagPropagates) {
  Rng rng(3);
  BurstyTraceConfig cfg;
  cfg.function = 7;
  const auto trace = GenerateBurstyTrace(cfg, rng);
  for (const Invocation& inv : trace) {
    ASSERT_EQ(inv.function, 7);
  }
}

TEST(TraceGenTest, MergeInterleavesSorted) {
  std::vector<Invocation> a = {{Sec(1), 0}, {Sec(3), 0}};
  std::vector<Invocation> b = {{Sec(2), 1}, {Sec(4), 1}};
  const auto merged = MergeTraces({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].function, 0);
  EXPECT_EQ(merged[1].function, 1);
  EXPECT_EQ(merged[2].function, 0);
  EXPECT_EQ(merged[3].function, 1);
}

// --- Churn -----------------------------------------------------------------

TEST(ChurnTest, SingleRequestCreatesThenEvicts) {
  ChurnConfig cfg;
  cfg.keep_alive = Minutes(5);
  cfg.exec_time = Sec(1);
  const auto minutes = AnalyzeChurn({{Sec(30), 0}}, cfg);
  ASSERT_GE(minutes.size(), 6u);
  EXPECT_EQ(minutes[0].creations, 1u);
  EXPECT_EQ(minutes[0].evictions, 0u);
  // Eviction lands one keep-alive after completion: minute 5.
  EXPECT_EQ(minutes[5].evictions, 1u);
  EXPECT_EQ(minutes[5].alive, 0u);
}

TEST(ChurnTest, ReuseWithinKeepAliveAvoidsCreation) {
  ChurnConfig cfg;
  cfg.keep_alive = Minutes(5);
  cfg.exec_time = Sec(1);
  // Second request arrives while the first instance idles.
  const auto minutes = AnalyzeChurn({{Sec(10), 0}, {Minutes(2), 0}}, cfg);
  uint64_t total_creations = 0;
  for (const auto& m : minutes) {
    total_creations += m.creations;
  }
  EXPECT_EQ(total_creations, 1u);
}

TEST(ChurnTest, ConcurrentRequestsForceParallelInstances) {
  ChurnConfig cfg;
  cfg.exec_time = Sec(10);
  // Three near-simultaneous requests: all need their own instance.
  const auto minutes = AnalyzeChurn({{Sec(1), 0}, {Sec(2), 0}, {Sec(3), 0}}, cfg);
  EXPECT_EQ(minutes[0].creations, 3u);
}

TEST(ChurnTest, BurstyTraceProducesChurn) {
  Rng rng(4);
  BurstyTraceConfig tcfg;
  tcfg.duration = Minutes(20);
  tcfg.burst_rate_per_sec = 30.0;
  const auto trace = GenerateBurstyTrace(tcfg, rng);
  ChurnConfig cfg;
  cfg.keep_alive = Minutes(5);
  cfg.exec_time = Sec(2);
  const auto minutes = AnalyzeChurn(trace, cfg);
  uint64_t creations = 0;
  uint64_t evictions = 0;
  for (const auto& m : minutes) {
    creations += m.creations;
    evictions += m.evictions;
  }
  EXPECT_GT(creations, 10u);
  EXPECT_EQ(creations, evictions);  // Everything eventually evicts.
}

// --- Memhog -----------------------------------------------------------------

class MemhogTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = std::make_unique<HostMemory>(GiB(16));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
    GuestConfig cfg;
    cfg.base_memory = MiB(512);
    cfg.hotplug_region = GiB(2);
    cfg.seed = 11;
    guest_ = std::make_unique<GuestKernel>(cfg, hv_.get());
    guest_->PlugMemory(GiB(2), 0);
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<GuestKernel> guest_;
};

TEST_F(MemhogTest, StartReachesResidentTarget) {
  MemhogConfig cfg;
  cfg.bytes = MiB(256);
  Memhog hog(guest_.get(), cfg);
  ASSERT_TRUE(hog.Start(0));
  EXPECT_TRUE(hog.running());
  EXPECT_EQ(hog.resident_bytes(), MiB(256));
}

TEST_F(MemhogTest, ChurnKeepsResidentStable) {
  MemhogConfig cfg;
  cfg.bytes = MiB(128);
  Memhog hog(guest_.get(), cfg);
  ASSERT_TRUE(hog.Start(0));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(hog.Churn(0));
    EXPECT_EQ(hog.resident_bytes(), MiB(128));
  }
}

TEST_F(MemhogTest, ChurnScattersFootprintAcrossBlocks) {
  MemhogConfig cfg;
  cfg.bytes = MiB(256);
  cfg.warmup_cycles = 8;
  Memhog hog(guest_.get(), cfg);
  ASSERT_TRUE(hog.Start(0));
  std::set<BlockIndex> blocks;
  for (const FolioRef& f : guest_->process(hog.pid()).folios()) {
    if (f.head != kInvalidPfn) {
      blocks.insert(MemMap::BlockOf(f.head));
    }
  }
  // 256 MiB fits in 2 blocks; churn + shuffle must spread it wider.
  EXPECT_GT(blocks.size(), 2u);
}

TEST_F(MemhogTest, StopReleasesEverything) {
  MemhogConfig cfg;
  cfg.bytes = MiB(64);
  Memhog hog(guest_.get(), cfg);
  ASSERT_TRUE(hog.Start(0));
  const uint64_t allocated = guest_->movable_zone().allocated_pages();
  EXPECT_GT(allocated, 0u);
  hog.Stop();
  EXPECT_FALSE(hog.running());
  EXPECT_EQ(guest_->movable_zone().allocated_pages(), 0u);
}

TEST_F(MemhogTest, OomWhenTargetExceedsMemory) {
  MemhogConfig cfg;
  cfg.bytes = GiB(4);  // VM only has ~2.5 GiB.
  Memhog hog(guest_.get(), cfg);
  EXPECT_FALSE(hog.Start(0));
  EXPECT_FALSE(hog.running());
}

}  // namespace
}  // namespace squeezy
