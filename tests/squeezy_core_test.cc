// Unit/integration tests for the Squeezy partition manager — the paper's
// core mechanisms: partition layout, syscall assignment, waitqueue, fork
// refcounting, migration-free unplug, isolation invariants.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

class SqueezyCoreTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = std::make_unique<HostMemory>(GiB(64));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);

    squeezy_cfg_.partition_bytes = MiB(256);  // 2 blocks each.
    squeezy_cfg_.nr_partitions = 4;
    squeezy_cfg_.shared_bytes = MiB(256);

    GuestConfig cfg;
    cfg.name = "sqz-vm";
    cfg.base_memory = MiB(512);
    cfg.hotplug_region = squeezy_cfg_.region_bytes();
    cfg.shuffle_allocator = false;
    guest_ = std::make_unique<GuestKernel>(cfg, hv_.get());
    sqz_ = std::make_unique<SqueezyManager>(guest_.get(), squeezy_cfg_);
  }

  // Plugs one partition's worth and returns the plug outcome.
  PlugOutcome PlugOnePartition(TimeNs now = 0) {
    return guest_->PlugMemory(squeezy_cfg_.partition_bytes, now);
  }

  CostModel cost_ = CostModel::Default();
  SqueezyConfig squeezy_cfg_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<GuestKernel> guest_;
  std::unique_ptr<SqueezyManager> sqz_;
};

TEST_F(SqueezyCoreTest, BootPlugsSharedPartitionOnly) {
  EXPECT_EQ(sqz_->shared_zone()->managed_pages(), MiB(256) / kPageSize);
  EXPECT_EQ(sqz_->populated_partitions(), 0u);
  EXPECT_EQ(sqz_->ready_partitions(), 0u);
  for (size_t i = 0; i < sqz_->partition_count(); ++i) {
    EXPECT_EQ(sqz_->partition(static_cast<int32_t>(i)).state, PartitionState::kUnplugged);
  }
  // File faults are routed at the shared partition.
  EXPECT_EQ(guest_->file_zone(), sqz_->shared_zone());
}

TEST_F(SqueezyCoreTest, PartitionOfBlockLayout) {
  const BlockIndex first = guest_->hotplug_first_block();
  // Shared partition: first 2 blocks.
  EXPECT_EQ(sqz_->PartitionOfBlock(first), -1);
  EXPECT_EQ(sqz_->PartitionOfBlock(first + 1), -1);
  EXPECT_EQ(sqz_->PartitionOfBlock(first + 2), 0);
  EXPECT_EQ(sqz_->PartitionOfBlock(first + 3), 0);
  EXPECT_EQ(sqz_->PartitionOfBlock(first + 4), 1);
  EXPECT_EQ(sqz_->PartitionOfBlock(first + 9), 3);
}

TEST_F(SqueezyCoreTest, PlugPopulatesOnePartition) {
  const PlugOutcome out = PlugOnePartition();
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(sqz_->ready_partitions(), 1u);
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kReady);
  EXPECT_EQ(sqz_->partition(0).populated_blocks, 2u);
  EXPECT_EQ(sqz_->partition(0).zone->managed_pages(), MiB(256) / kPageSize);
}

TEST_F(SqueezyCoreTest, SqueezyEnableAssignsReadyPartition) {
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  const std::optional<int32_t> part = sqz_->SqueezyEnable(pid);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(*part, 0);
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kAssigned);
  EXPECT_EQ(sqz_->partition(0).users, 1u);
  EXPECT_EQ(guest_->process(pid).partition_id(), 0);
  EXPECT_EQ(guest_->process(pid).anon_zone(), sqz_->partition(0).zone);
}

TEST_F(SqueezyCoreTest, SqueezyEnableFailsWithoutPlug) {
  const Pid pid = guest_->CreateProcess();
  EXPECT_FALSE(sqz_->SqueezyEnable(pid).has_value());
}

TEST_F(SqueezyCoreTest, WaitqueueServedOnPlug) {
  const Pid pid = guest_->CreateProcess();
  int32_t assigned = -1;
  sqz_->SqueezyEnableAsync(pid, [&](int32_t part) { assigned = part; });
  EXPECT_EQ(assigned, -1);
  EXPECT_EQ(sqz_->waitqueue_depth(), 1u);
  PlugOnePartition();
  EXPECT_EQ(assigned, 0);
  EXPECT_EQ(sqz_->waitqueue_depth(), 0u);
  EXPECT_EQ(sqz_->stats().waitqueue_parks, 1u);
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kAssigned);
}

TEST_F(SqueezyCoreTest, WaitqueueIsFifo) {
  const Pid p1 = guest_->CreateProcess();
  const Pid p2 = guest_->CreateProcess();
  std::vector<Pid> order;
  sqz_->SqueezyEnableAsync(p1, [&](int32_t) { order.push_back(p1); });
  sqz_->SqueezyEnableAsync(p2, [&](int32_t) { order.push_back(p2); });
  PlugOnePartition();
  PlugOnePartition();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], p1);
  EXPECT_EQ(order[1], p2);
}

TEST_F(SqueezyCoreTest, AnonymousMemoryConfinedToPartition) {
  PlugOnePartition();
  PlugOnePartition();
  const Pid a = guest_->CreateProcess();
  const Pid b = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(a).has_value());
  ASSERT_TRUE(sqz_->SqueezyEnable(b).has_value());
  guest_->TouchAnon(a, MiB(200), 0);
  guest_->TouchAnon(b, MiB(200), 0);

  // Isolation invariant: every anon folio of a process lives inside its
  // partition's block span — never interleaved (paper Fig 3b).
  for (const Pid pid : {a, b}) {
    const Partition& part = sqz_->partition(guest_->process(pid).partition_id());
    for (const FolioRef& f : guest_->process(pid).folios()) {
      if (f.head == kInvalidPfn) {
        continue;
      }
      const BlockIndex blk = MemMap::BlockOf(f.head);
      EXPECT_GE(blk, part.first_block);
      EXPECT_LT(blk, part.first_block + part.nr_blocks);
    }
  }
}

TEST_F(SqueezyCoreTest, PartitionCapEnforcedByOom) {
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
  // Partition is 256 MiB; ask for more.
  const TouchResult r = guest_->TouchAnon(pid, MiB(300), 0);
  EXPECT_TRUE(r.oom);
  EXPECT_EQ(guest_->process(pid).state(), ProcessState::kOomKilled);
  // The OOM kill drained the partition: it is ready again.
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kReady);
}

TEST_F(SqueezyCoreTest, FilePagesGoToSharedPartition) {
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
  const int32_t file = guest_->CreateFile("deps", MiB(64));
  guest_->TouchFile(pid, file, MiB(64), 0);
  EXPECT_EQ(sqz_->shared_zone()->allocated_pages(), MiB(64) / kPageSize);
  // Private partition holds no file pages.
  EXPECT_EQ(sqz_->partition(0).zone->allocated_pages(), 0u);
}

TEST_F(SqueezyCoreTest, ForkBumpsRefcountAndExitDrops) {
  PlugOnePartition();
  const Pid parent = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(parent).has_value());
  const Pid child = guest_->Fork(parent);
  EXPECT_EQ(sqz_->partition(0).users, 2u);
  EXPECT_EQ(guest_->process(child).partition_id(), 0);

  guest_->Exit(parent);
  EXPECT_EQ(sqz_->partition(0).users, 1u);
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kAssigned);

  guest_->Exit(child);
  EXPECT_EQ(sqz_->partition(0).users, 0u);
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kReady);
}

TEST_F(SqueezyCoreTest, UnplugReclaimsDrainedPartitionWithZeroMigrations) {
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
  guest_->TouchAnon(pid, MiB(200), 0);
  guest_->Exit(pid);

  const UnplugOutcome out = guest_->UnplugMemory(squeezy_cfg_.partition_bytes, 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.pages_migrated, 0u);       // The headline invariant.
  EXPECT_EQ(out.breakdown.migration, 0);   // No migration cost either.
  EXPECT_EQ(out.breakdown.zeroing, 0);     // Zeroing skipped.
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kUnplugged);
  EXPECT_EQ(sqz_->stats().partitions_reclaimed, 1u);
}

TEST_F(SqueezyCoreTest, UnplugSkipsAssignedPartitions) {
  PlugOnePartition();
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
  guest_->TouchAnon(pid, MiB(100), 0);
  // Partition 0 assigned+busy, partition 1 ready: unplug must take 1.
  const UnplugOutcome out = guest_->UnplugMemory(squeezy_cfg_.partition_bytes, 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(sqz_->partition(0).state, PartitionState::kAssigned);
  EXPECT_EQ(sqz_->partition(1).state, PartitionState::kUnplugged);
  // The running process is untouched.
  EXPECT_EQ(guest_->process(pid).anon_bytes(), MiB(100));
}

TEST_F(SqueezyCoreTest, UnplugNothingAvailableWhenAllAssigned) {
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
  const UnplugOutcome out = guest_->UnplugMemory(squeezy_cfg_.partition_bytes, 0);
  EXPECT_FALSE(out.complete);
  EXPECT_EQ(out.blocks_unplugged, 0u);
}

TEST_F(SqueezyCoreTest, DrainedPartitionReusedWithoutReplug) {
  PlugOnePartition();
  const Pid a = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(a).has_value());
  guest_->TouchAnon(a, MiB(64), 0);

  // A waiter queues while the only partition is busy.
  const Pid b = guest_->CreateProcess();
  int32_t b_part = -1;
  sqz_->SqueezyEnableAsync(b, [&](int32_t p) { b_part = p; });
  EXPECT_EQ(sqz_->waitqueue_depth(), 1u);

  // A exits -> the drained partition goes straight to B, no replug.
  guest_->Exit(a);
  EXPECT_EQ(b_part, 0);
  EXPECT_EQ(sqz_->stats().reuse_without_replug, 1u);
  EXPECT_EQ(sqz_->partition(0).users, 1u);
  // And B can allocate from it immediately.
  EXPECT_FALSE(guest_->TouchAnon(b, MiB(64), 0).oom);
}

TEST_F(SqueezyCoreTest, ReplugAfterReclaimCycle) {
  for (int round = 0; round < 3; ++round) {
    PlugOnePartition();
    const Pid pid = guest_->CreateProcess();
    ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
    guest_->TouchAnon(pid, MiB(128), 0);
    guest_->Exit(pid);
    const UnplugOutcome out = guest_->UnplugMemory(squeezy_cfg_.partition_bytes, 0);
    ASSERT_TRUE(out.complete);
    ASSERT_EQ(out.pages_migrated, 0u);
  }
  EXPECT_EQ(sqz_->stats().partitions_reclaimed, 3u);
}

TEST_F(SqueezyCoreTest, SqueezyUnplugFasterThanVanillaOrderOfMagnitude) {
  // Head-to-head on identical footprints: Squeezy partitioned VM vs. a
  // vanilla VM with interleaved movable memory (mini Fig 5).
  PlugOnePartition();
  const Pid pid = guest_->CreateProcess();
  ASSERT_TRUE(sqz_->SqueezyEnable(pid).has_value());
  guest_->TouchAnon(pid, MiB(200), 0);
  guest_->Exit(pid);
  const UnplugOutcome squeezy_out = guest_->UnplugMemory(MiB(256), 0);
  ASSERT_TRUE(squeezy_out.complete);

  // Vanilla twin.
  HostMemory host2(GiB(64));
  Hypervisor hv2(&host2, &cost_);
  GuestConfig cfg;
  cfg.name = "vanilla-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(2);
  cfg.shuffle_allocator = true;
  GuestKernel vanilla(cfg, &hv2);
  vanilla.PlugMemory(MiB(512), 0);
  // Two interleaving tenants fill most of the plugged span; one exits.
  const Pid v1 = vanilla.CreateProcess();
  const Pid v2 = vanilla.CreateProcess();
  for (int i = 0; i < 25; ++i) {
    vanilla.TouchAnon(v1, MiB(8), 0);
    vanilla.TouchAnon(v2, MiB(8), 0);
  }
  vanilla.Exit(v1);
  const UnplugOutcome vanilla_out = vanilla.UnplugMemory(MiB(256), 0);
  ASSERT_TRUE(vanilla_out.complete);
  EXPECT_GT(vanilla_out.pages_migrated, 0u);
  // Order-of-magnitude gap (paper: 10.9x mean).
  EXPECT_GT(static_cast<double>(vanilla_out.latency()) /
                static_cast<double>(squeezy_out.latency()),
            5.0);
}

TEST_F(SqueezyCoreTest, AssignmentsStatCounts) {
  PlugOnePartition();
  PlugOnePartition();
  const Pid a = guest_->CreateProcess();
  const Pid b = guest_->CreateProcess();
  sqz_->SqueezyEnable(a);
  sqz_->SqueezyEnable(b);
  EXPECT_EQ(sqz_->stats().assignments, 2u);
  EXPECT_EQ(sqz_->partition(0).users + sqz_->partition(1).users, 2u);
}

TEST_F(SqueezyCoreTest, PartitionStateNames) {
  EXPECT_STREQ(PartitionStateName(PartitionState::kUnplugged), "Unplugged");
  EXPECT_STREQ(PartitionStateName(PartitionState::kPopulating), "Populating");
  EXPECT_STREQ(PartitionStateName(PartitionState::kReady), "Ready");
  EXPECT_STREQ(PartitionStateName(PartitionState::kAssigned), "Assigned");
}

}  // namespace
}  // namespace squeezy
