// Cross-module integration tests: end-to-end lifecycle invariants,
// accounting reconciliation between guest/host books, multi-VM interplay
// and whole-experiment determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/squeezy.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/trace/memhog.h"
#include "src/trace/trace_gen.h"

namespace squeezy {
namespace {

// --- Accounting reconciliation ----------------------------------------------

class AccountingTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = std::make_unique<HostMemory>(GiB(64));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
  }

  // Host populated bytes must equal the per-page host_populated flags.
  void ExpectPopulatedConsistent(GuestKernel& guest) {
    uint64_t flagged = 0;
    for (Pfn pfn = 0; pfn < guest.memmap().span_pages(); ++pfn) {
      flagged += guest.memmap().page(pfn).host_populated;
    }
    EXPECT_EQ(PagesToBytes(flagged), hv_->stats(guest.vm_id()).populated_bytes);
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
};

TEST_F(AccountingTest, HostPopulationMatchesPageFlagsThroughLifecycle) {
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(2);
  cfg.seed = 3;
  GuestKernel guest(cfg, hv_.get());
  ExpectPopulatedConsistent(guest);

  guest.PlugMemory(GiB(1), 0);
  const Pid a = guest.CreateProcess();
  const Pid b = guest.CreateProcess();
  guest.TouchAnon(a, MiB(200), 0);
  const int32_t f = guest.CreateFile("deps", MiB(64));
  guest.TouchFile(b, f, MiB(64), 0);
  ExpectPopulatedConsistent(guest);

  guest.Exit(a);
  guest.UnplugMemory(MiB(512), 0);
  ExpectPopulatedConsistent(guest);

  guest.BalloonReclaim(MiB(64), 0);
  ExpectPopulatedConsistent(guest);
}

TEST_F(AccountingTest, MigrationPreservesPopulationBooks) {
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(1);
  cfg.seed = 5;
  GuestKernel guest(cfg, hv_.get());
  guest.PlugMemory(MiB(512), 0);
  const Pid a = guest.CreateProcess();
  const Pid b = guest.CreateProcess();
  for (int i = 0; i < 20; ++i) {
    guest.TouchAnon(a, MiB(8), 0);
    guest.TouchAnon(b, MiB(8), 0);
  }
  guest.Exit(a);
  const UnplugOutcome out = guest.UnplugMemory(MiB(256), 0);
  ASSERT_TRUE(out.complete);
  ASSERT_GT(out.pages_migrated, 0u);  // Interleaved: must migrate.
  ExpectPopulatedConsistent(guest);
}

TEST_F(AccountingTest, ZonePagesConservedAcrossPlugCycles) {
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(1);
  GuestKernel guest(cfg, hv_.get());
  for (int round = 0; round < 5; ++round) {
    guest.PlugMemory(MiB(512), 0);
    EXPECT_EQ(guest.movable_zone().managed_pages(), MiB(512) / kPageSize);
    EXPECT_TRUE(guest.movable_zone().CheckFreeLists());
    const UnplugOutcome out = guest.UnplugMemory(MiB(512), 0);
    ASSERT_TRUE(out.complete);
    EXPECT_EQ(guest.movable_zone().managed_pages(), 0u);
  }
}

// --- End-to-end Squeezy lifecycle invariants ---------------------------------

TEST(SqueezyLifecycleTest, HundredInstanceChurnNeverMigrates) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = MiB(256);
  scfg.nr_partitions = 8;
  scfg.shared_bytes = MiB(128);
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 17;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);
  const int32_t deps = guest.CreateFile("deps", MiB(100));

  Rng rng(99);
  std::vector<Pid> live;
  for (int step = 0; step < 100; ++step) {
    if (live.size() < 8 && (live.empty() || rng.Chance(0.6))) {
      guest.PlugMemory(scfg.partition_bytes, 0);
      const Pid pid = guest.CreateProcess();
      ASSERT_TRUE(sqz.SqueezyEnable(pid).has_value());
      guest.TouchFile(pid, deps, MiB(100), 0);
      const uint64_t bytes = static_cast<uint64_t>(rng.UniformInt(16, 200)) * MiB(1);
      ASSERT_FALSE(guest.TouchAnon(pid, bytes, 0).oom);
      live.push_back(pid);
    } else {
      const size_t idx =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      guest.Exit(live[idx]);
      live[idx] = live.back();
      live.pop_back();
      const UnplugOutcome out = guest.UnplugMemory(scfg.partition_bytes, 0);
      ASSERT_TRUE(out.complete);
      ASSERT_EQ(out.pages_migrated, 0u);  // The paper's core invariant.
    }
  }
  EXPECT_EQ(guest.hotplug().total_pages_migrated(), 0u);
  // Shared partition never reclaimed; file cache intact.
  EXPECT_EQ(guest.page_cache().cached_pages(deps), MiB(100) / kPageSize);
}

TEST(SqueezyLifecycleTest, PartitionIsolationHoldsUnderChurn) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = MiB(256);
  scfg.nr_partitions = 6;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);

  std::vector<Pid> pids;
  for (int i = 0; i < 6; ++i) {
    guest.PlugMemory(scfg.partition_bytes, 0);
    const Pid pid = guest.CreateProcess();
    ASSERT_TRUE(sqz.SqueezyEnable(pid).has_value());
    guest.TouchAnon(pid, MiB(100 + 20 * i), 0);
    pids.push_back(pid);
  }
  // Churn: free and re-touch to shuffle in-partition placement.
  for (int round = 0; round < 4; ++round) {
    for (const Pid pid : pids) {
      guest.FreeAnon(pid, MiB(40));
      guest.TouchAnon(pid, MiB(40), 0);
    }
  }
  // Isolation: every anon folio of pid i lives inside partition i's span.
  for (size_t i = 0; i < pids.size(); ++i) {
    const Partition& part = sqz.partition(static_cast<int32_t>(i));
    for (const FolioRef& folio : guest.process(pids[i]).folios()) {
      if (folio.head == kInvalidPfn) {
        continue;
      }
      const BlockIndex blk = MemMap::BlockOf(folio.head);
      ASSERT_GE(blk, part.first_block);
      ASSERT_LT(blk, part.first_block + part.nr_blocks);
    }
  }
}

// --- Runtime-level determinism and conservation ------------------------------

TEST(RuntimeIntegrationTest, FullTraceDeterministicAcrossReruns) {
  auto run = [] {
    RuntimeConfig cfg;
    cfg.policy = ReclaimPolicy::kSqueezy;
    cfg.host_capacity = GiB(24);
    cfg.keep_alive = Sec(30);
    cfg.seed = 5;
    FaasRuntime rt(cfg);
    const int a = rt.AddFunction(HtmlSpec(), 6);
    const int b = rt.AddFunction(BfsSpec(), 6);
    Rng rng(71);
    BurstyTraceConfig t1;
    t1.duration = Minutes(4);
    t1.function = a;
    BurstyTraceConfig t2 = t1;
    t2.function = b;
    rt.SubmitTrace(MergeTraces({GenerateBurstyTrace(t1, rng), GenerateBurstyTrace(t2, rng)}));
    rt.RunUntil(Minutes(6));
    // A composite fingerprint of the whole run.
    return std::tuple<DurationNs, uint64_t, uint64_t, uint64_t>(
        rt.agent(a).latencies().Sum() + rt.agent(b).latencies().Sum(),
        rt.agent(a).total_evictions() + rt.agent(b).total_evictions(),
        rt.host().populated_peak(), rt.guest(a).hotplug().blocks_removed());
  };
  EXPECT_EQ(run(), run());
}

TEST(RuntimeIntegrationTest, CommittedNeverExceedsCapacity) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(8);
  cfg.keep_alive = Sec(20);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(HtmlSpec(), 8);
  std::vector<Invocation> trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back({Sec(1) + Msec(200) * i, fn});
  }
  rt.SubmitTrace(trace);
  for (TimeNs t = 0; t < Minutes(3); t += Sec(1)) {
    rt.events().ScheduleAt(t, [&rt] {
      ASSERT_LE(rt.host().committed(), rt.host().capacity());
      ASSERT_LE(rt.host().populated(), rt.host().committed());
    });
  }
  rt.RunUntil(Minutes(3));
  EXPECT_GT(rt.agent(fn).requests().size(), 0u);
}

TEST(RuntimeIntegrationTest, AllPoliciesDrainSameTrace) {
  // Every policy must serve the identical trace completely; only timing
  // differs.
  const ReclaimPolicy policies[] = {ReclaimPolicy::kStatic, ReclaimPolicy::kVirtioMem,
                                    ReclaimPolicy::kSqueezy, ReclaimPolicy::kHarvestOpts};
  for (const ReclaimPolicy policy : policies) {
    RuntimeConfig cfg;
    cfg.policy = policy;
    cfg.host_capacity = GiB(32);
    cfg.keep_alive = Sec(30);
    FaasRuntime rt(cfg);
    const int fn = rt.AddFunction(CnnSpec(), 6);
    std::vector<Invocation> trace;
    for (int i = 0; i < 25; ++i) {
      trace.push_back({Sec(1) + Sec(2) * i, fn});
    }
    rt.SubmitTrace(trace);
    rt.RunUntil(Minutes(5));
    EXPECT_EQ(rt.agent(fn).requests().size(), 25u) << ReclaimPolicyName(policy);
    EXPECT_EQ(rt.pending_scaleups(), 0u) << ReclaimPolicyName(policy);
  }
}

TEST(RuntimeIntegrationTest, SqueezyNeverMigratesAcrossWholeWorkload) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(16);
  cfg.keep_alive = Sec(15);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(BfsSpec(), 6);
  Rng rng(13);
  BurstyTraceConfig tcfg;
  tcfg.duration = Minutes(4);
  tcfg.function = fn;
  rt.SubmitTrace(GenerateBurstyTrace(tcfg, rng));
  rt.RunUntil(Minutes(6));
  EXPECT_GT(rt.agent(fn).total_evictions(), 0u);
  EXPECT_EQ(rt.guest(fn).hotplug().total_pages_migrated(), 0u);
}

TEST(RuntimeIntegrationTest, VanillaAndSqueezyServeSameRequestCount) {
  auto count = [](ReclaimPolicy policy) {
    RuntimeConfig cfg;
    cfg.policy = policy;
    cfg.host_capacity = GiB(32);
    cfg.seed = 21;
    FaasRuntime rt(cfg);
    const int fn = rt.AddFunction(HtmlSpec(), 8);
    Rng rng(55);
    BurstyTraceConfig tcfg;
    tcfg.duration = Minutes(3);
    tcfg.function = fn;
    rt.SubmitTrace(GenerateBurstyTrace(tcfg, rng));
    rt.RunUntil(Minutes(6));
    return rt.agent(fn).requests().size();
  };
  EXPECT_EQ(count(ReclaimPolicy::kVirtioMem), count(ReclaimPolicy::kSqueezy));
}

}  // namespace
}  // namespace squeezy
