// Unit tests for the virtio-mem device with a vanilla-style hook policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/hotplug/virtio_mem.h"
#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

// Minimal vanilla policy over a single movable zone.
class TestHooks : public VirtioMemHooks {
 public:
  TestHooks(MemMap* memmap, Zone* zone, BlockIndex first, uint32_t count)
      : memmap_(memmap), zone_(zone), first_(first), count_(count) {}

  std::vector<BlockIndex> SelectPlugBlocks(uint64_t max_blocks) override {
    std::vector<BlockIndex> out;
    for (BlockIndex b = first_; b < first_ + count_ && out.size() < max_blocks; ++b) {
      if (memmap_->block_state(b) == BlockState::kAbsent) {
        out.push_back(b);
      }
    }
    return out;
  }
  Zone* OnlineTargetZone(BlockIndex) override { return zone_; }
  void OnBlockOnline(BlockIndex b) override { online_events.push_back(b); }
  std::vector<BlockIndex> SelectUnplugBlocks(uint64_t) override {
    std::vector<BlockIndex> out;
    for (BlockIndex b = first_; b < first_ + count_; ++b) {
      if (memmap_->block_state(b) == BlockState::kOnline) {
        out.push_back(b);
      }
    }
    std::stable_sort(out.begin(), out.end(), [this](BlockIndex a, BlockIndex b) {
      return memmap_->BlockOccupied(a) < memmap_->BlockOccupied(b);
    });
    return out;
  }
  OfflineOptions OfflineOptionsFor(BlockIndex) override { return OfflineOptions{}; }
  Zone* BlockZone(BlockIndex) override { return zone_; }
  Zone* MigrationTarget(BlockIndex) override { return zone_; }
  void OnBlockUnplugged(BlockIndex b) override { unplug_events.push_back(b); }

  std::vector<BlockIndex> online_events;
  std::vector<BlockIndex> unplug_events;

 private:
  MemMap* memmap_;
  Zone* zone_;
  BlockIndex first_;
  uint32_t count_;
};

class VirtioMemTest : public testing::Test {
 protected:
  void SetUp() override {
    memmap_ = std::make_unique<MemMap>(GiB(1));  // 8 blocks, all device-managed.
    zone_ = std::make_unique<Zone>(0, ZoneType::kMovable, "mv", memmap_.get());
    host_ = std::make_unique<HostMemory>(GiB(8));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
    vm_ = hv_->RegisterVm("vm", 1);
    mgr_ = std::make_unique<HotplugManager>(memmap_.get(), &cost_, hv_.get(), vm_, nullptr);
    hooks_ = std::make_unique<TestHooks>(memmap_.get(), zone_.get(), 0, 8);
    VirtioMemConfig cfg;
    cfg.first_block = 0;
    cfg.nr_blocks = 8;
    device_ = std::make_unique<VirtioMemDevice>(cfg, mgr_.get(), hooks_.get());
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<MemMap> memmap_;
  std::unique_ptr<Zone> zone_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  VmId vm_ = 0;
  std::unique_ptr<HotplugManager> mgr_;
  std::unique_ptr<TestHooks> hooks_;
  std::unique_ptr<VirtioMemDevice> device_;
};

TEST_F(VirtioMemTest, PlugRoundsUpToBlocks) {
  const PlugOutcome out = device_->Plug(MiB(200), 0);  // 2 blocks.
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.bytes_plugged, 2 * kMemoryBlockBytes);
  EXPECT_EQ(device_->plugged_blocks(), 2u);
  EXPECT_EQ(zone_->managed_pages(), 2u * kPagesPerBlock);
  EXPECT_EQ(hooks_->online_events.size(), 2u);
}

TEST_F(VirtioMemTest, PlugLatencyMatchesModel) {
  const PlugOutcome out = device_->Plug(MiB(768), 0);  // 6 blocks.
  EXPECT_EQ(out.latency,
            cost_.plug_request_fixed + 6 * (cost_.block_hotadd + cost_.block_online));
  // Paper §6.2.1: plugging a function's memory costs 35-45 ms.
  EXPECT_GE(out.latency, Msec(30));
  EXPECT_LE(out.latency, Msec(48));
}

TEST_F(VirtioMemTest, PlugBeyondRegionIsPartial) {
  const PlugOutcome out = device_->Plug(GiB(2), 0);  // Region only holds 1 GiB.
  EXPECT_FALSE(out.complete);
  EXPECT_EQ(out.bytes_plugged, GiB(1));
  EXPECT_EQ(device_->plugged_bytes(), GiB(1));
}

TEST_F(VirtioMemTest, UnplugEmptyMemoryIsFast) {
  device_->Plug(GiB(1), 0);
  const UnplugOutcome out = device_->Unplug(MiB(256), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.blocks_unplugged, 2u);
  EXPECT_EQ(out.pages_migrated, 0u);
  EXPECT_EQ(device_->plugged_blocks(), 6u);
  EXPECT_EQ(hooks_->unplug_events.size(), 2u);
}

TEST_F(VirtioMemTest, UnplugPrefersEmptiestBlocks) {
  device_->Plug(GiB(1), 0);
  // Occupy block 0 heavily (zone allocates ascending), leave the rest free.
  for (int i = 0; i < 60; ++i) {
    ASSERT_NE(zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0), kInvalidPfn);
  }
  ASSERT_GT(memmap_->BlockOccupied(0), 0u);
  const UnplugOutcome out = device_->Unplug(kMemoryBlockBytes, 0);
  ASSERT_TRUE(out.complete);
  // The occupied block 0 must have been skipped.
  EXPECT_EQ(memmap_->block_state(0), BlockState::kOnline);
  EXPECT_EQ(out.pages_migrated, 0u);
}

TEST_F(VirtioMemTest, UnplugMigratesWhenAllBlocksOccupied) {
  device_->Plug(GiB(1), 0);
  // Fill the whole region with THP folios, then free every other one:
  // every block ends up ~50% occupied, so any unplug must migrate.
  std::vector<Pfn> folios;
  while (true) {
    const Pfn pfn = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0);
    if (pfn == kInvalidPfn) {
      break;
    }
    folios.push_back(pfn);
  }
  for (size_t i = 0; i < folios.size(); i += 2) {
    zone_->Free(folios[i]);
  }
  for (BlockIndex b = 0; b < 8; ++b) {
    ASSERT_GT(memmap_->BlockOccupied(b), 0u);
  }
  const UnplugOutcome out = device_->Unplug(kMemoryBlockBytes, 0);
  ASSERT_TRUE(out.complete);
  EXPECT_GT(out.pages_migrated, 0u);
  EXPECT_GT(out.breakdown.migration, 0);
}

TEST_F(VirtioMemTest, UnplugTimesOutUnderPressure) {
  VirtioMemConfig cfg;
  cfg.first_block = 0;
  cfg.nr_blocks = 8;
  cfg.unplug_timeout = Msec(1);  // Absurdly tight.
  VirtioMemDevice tight(cfg, mgr_.get(), hooks_.get());
  tight.Plug(GiB(1), 0);
  const UnplugOutcome out = tight.Unplug(GiB(1), 0);
  EXPECT_TRUE(out.timed_out);
  EXPECT_FALSE(out.complete);
  EXPECT_LT(out.blocks_unplugged, 8u);
}

TEST_F(VirtioMemTest, UnplugZeroingDominatedByFreePages) {
  device_->Plug(kMemoryBlockBytes, 0);
  const UnplugOutcome out = device_->Unplug(kMemoryBlockBytes, 0);
  ASSERT_TRUE(out.complete);
  EXPECT_EQ(out.breakdown.zeroing, cost_.ZeroPages(kPagesPerBlock));
}

TEST_F(VirtioMemTest, LifetimeStatsAccumulate) {
  device_->Plug(GiB(1), 0);
  device_->Unplug(MiB(256), 0);
  device_->Unplug(MiB(128), 0);
  EXPECT_EQ(device_->total_unplugged_bytes(), MiB(384));
  EXPECT_GT(device_->total_unplug_time(), 0);
}

TEST_F(VirtioMemTest, ReplugAfterUnplug) {
  device_->Plug(GiB(1), 0);
  device_->Unplug(GiB(1), 0);
  EXPECT_EQ(device_->plugged_blocks(), 0u);
  const PlugOutcome out = device_->Plug(MiB(384), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(device_->plugged_blocks(), 3u);
  EXPECT_EQ(zone_->managed_pages(), 3u * kPagesPerBlock);
}

}  // namespace
}  // namespace squeezy
