// Per-function snapshot registry (src/snapshot/snapshot_store.*, REAP-style
// record/restore through src/faas/runtime.cc).
//
// Locked behaviors:
//   * store bookkeeping — intern dedup, record-once, invalidate/re-record
//     and the stale-tail threshold;
//   * restore-after-evict — a recorded function's next cold start skips
//     the serial container/function-init phases (container_init == 0) and
//     lands strictly faster than its first cold start;
//   * working-set-vs-full commitment per driver — only Squeezy reports
//     SnapshotRestoreSupported() and a RestoredCommitment below the plug
//     unit; Static/VirtioMem/Harvest keep full-unit commitment AND stay
//     bit-identical under the dep-cache-style parity churn with the
//     registry attached;
//   * book conservation — the commitment discount taken at restore time
//     unwinds exactly at unplug completion, with the DepCache attached;
//   * the fig11 regression lock — Snapshot+DepC first-start speedup
//     strictly beats the PR 4 N:1+DepC row (~1.16x).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/dep_cache.h"
#include "src/cluster/migration_planner.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/metrics/latency_recorder.h"
#include "src/policy/driver_factory.h"
#include "src/snapshot/snapshot_store.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

FunctionSpec SnapSpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(512);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;
  return s;
}

uint64_t DepsRegion(const FunctionSpec& s) {
  return BytesToBlocks(s.file_deps_bytes) * kMemoryBlockBytes;
}

// --- Store bookkeeping ---------------------------------------------------------------

TEST(SnapshotStoreTest, InternDedupsAndRecordsOnce) {
  SnapshotStore store;
  const SnapshotId a = store.Intern("fn-a/64/96");
  const SnapshotId b = store.Intern("fn-b/64/96");
  EXPECT_NE(a, b);
  EXPECT_EQ(store.Intern("fn-a/64/96"), a);
  EXPECT_EQ(store.stats().functions, 2u);
  EXPECT_FALSE(store.Recorded(a));

  SnapshotImage img;
  img.heap_bytes = MiB(96);
  img.deps_pages = 64;
  img.working_set_pages = 64 + BytesToPages(MiB(96));
  EXPECT_TRUE(store.Record(a, img));
  EXPECT_TRUE(store.Recorded(a));
  EXPECT_EQ(store.Image(a).heap_bytes, MiB(96));
  // Record-once: a second recording is a no-op while the first is valid.
  SnapshotImage bigger = img;
  bigger.heap_bytes = MiB(200);
  EXPECT_FALSE(store.Record(a, bigger));
  EXPECT_EQ(store.Image(a).heap_bytes, MiB(96));
  EXPECT_EQ(store.stats().recordings, 1u);
  EXPECT_EQ(store.stats().re_recordings, 0u);

  // Invalidate reopens the slot; the next recording counts as a re-record.
  store.Invalidate(a);
  EXPECT_FALSE(store.Recorded(a));
  EXPECT_TRUE(store.Record(a, bigger));
  EXPECT_EQ(store.Image(a).heap_bytes, MiB(200));
  EXPECT_EQ(store.stats().invalidations, 1u);
  EXPECT_EQ(store.stats().re_recordings, 1u);
}

TEST(SnapshotStoreTest, TailAboveThresholdFractionInvalidates) {
  SnapshotStore store(SnapshotStoreConfig{/*stale_tail_fraction=*/0.25});
  const SnapshotId s = store.Intern("fn/64/96");
  SnapshotImage img;
  img.heap_bytes = MiB(100);
  EXPECT_TRUE(store.Record(s, img));
  // At the threshold exactly: still fresh (strict comparison).
  EXPECT_FALSE(store.NoteTail(s, MiB(25)));
  EXPECT_TRUE(store.Recorded(s));
  // Above it: stale, recording dropped.
  EXPECT_TRUE(store.NoteTail(s, MiB(25) + 1));
  EXPECT_FALSE(store.Recorded(s));
  EXPECT_EQ(store.stats().invalidations, 1u);
  EXPECT_EQ(store.stats().tail_bytes, MiB(50) + 1);
}

TEST(SnapshotStoreTest, RecordedHeapBytesSafeOnAnySlotState) {
  SnapshotStore store;
  const SnapshotId s = store.Intern("fn/64/96");
  // Unrecorded: 0, no assert (unlike Image(), which requires a recording).
  EXPECT_EQ(store.RecordedHeapBytes(s), 0u);
  SnapshotImage img;
  img.heap_bytes = MiB(96);
  ASSERT_TRUE(store.Record(s, img));
  EXPECT_EQ(store.RecordedHeapBytes(s), MiB(96));
  store.Invalidate(s);
  EXPECT_EQ(store.RecordedHeapBytes(s), 0u);
}

TEST(SnapshotStoreTest, RecordMigrationHitAccumulatesStats) {
  SnapshotStore store;
  store.RecordMigrationHit(MiB(192), 2);
  store.RecordMigrationHit(MiB(96), 1);
  EXPECT_EQ(store.stats().migration_hits, 2u);
  EXPECT_EQ(store.stats().migration_restores, 3u);
  EXPECT_EQ(store.stats().migration_wire_saved_bytes, MiB(288));
}

// --- Migration transfer pricing ------------------------------------------------------

// The planner only reads hosts through Snapshot(); TransferCost never
// touches them, so an inert stub satisfies the constructor.
class InertHost : public HostControl {
 public:
  HostSnapshot Snapshot(int) const override { return HostSnapshot{}; }
  uint64_t ProactiveReclaim(uint64_t) override { return 0; }
  void Drain() override {}
  void Undrain() override {}
  ReplicaMigrationState EvictReplica(int) override { return {}; }
  size_t AdoptableReplicas(int, size_t) const override { return 0; }
  size_t AdoptReplica(int, const ReplicaMigrationState&, TimeNs) override { return 0; }
};

// Locks the price ladder across the three transfer generations: the PR 3
// full transfer > the PR 4 dep-cache hit > this PR's snapshot + dep hit —
// on total time AND on wire bytes.  The snapshot hit prefetches the
// recorded portion at 0.85 ns/B in one pass instead of wiring it at
// ~1.04 ns/B per pre-copy round, so it wins whenever the recording
// outweighs the fixed restore setup.
TEST(SnapshotMigrationCostTest, SnapshotHitPricesBelowDepHitBelowFull) {
  InertHost host;
  const MigrationPlanner planner({&host}, CostModel::Default());

  ReplicaMigrationState full;
  full.warm_instances = 4;
  full.state_bytes = MiB(384);
  full.deps_bytes = MiB(64);
  full.busy_fraction = 0.25;
  const StateTransferCost full_cost = planner.TransferCost(full);

  // Dep-cache hit (PR 4 shape): the caller zeroes deps_bytes.
  ReplicaMigrationState dep = full;
  dep.deps_bytes = 0;
  const StateTransferCost dep_cost = planner.TransferCost(dep, /*dep_cache_hit=*/true);

  // Snapshot + dep hit (this PR's shape): the caller additionally moves
  // the recorded portion out of state_bytes — only the delta ships.
  ReplicaMigrationState snap = dep;
  snap.recorded_bytes = MiB(288);  // 3 of the 4 instances fully recorded.
  snap.state_bytes -= snap.recorded_bytes;
  const StateTransferCost snap_cost =
      planner.TransferCost(snap, /*dep_cache_hit=*/true, /*snapshot_hit=*/true);

  EXPECT_LT(dep_cost.total(), full_cost.total());
  EXPECT_LT(snap_cost.total(), dep_cost.total());
  EXPECT_LT(dep_cost.bytes_sent, full_cost.bytes_sent);
  EXPECT_LT(snap_cost.bytes_sent, dep_cost.bytes_sent);
  // The discounts are attach terms, not freebies: both hit prices carry
  // their fixed costs on top of the delta's wire time.
  const CostModel cost = CostModel::Default();
  const StateTransferCost delta_only = planner.TransferCost(snap);
  EXPECT_EQ(snap_cost.total(), delta_only.total() + cost.dep_cache_hit_fixed +
                                   cost.SnapshotAttach(snap.recorded_bytes));
  EXPECT_EQ(snap_cost.bytes_sent, delta_only.bytes_sent);
}

// --- Restore after evict -------------------------------------------------------------

TEST(SnapshotRestoreTest, RecordedFunctionRestoresAfterEvict) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(8);
  cfg.vm_base_memory = MiB(128);
  cfg.keep_alive = Sec(30);
  SnapshotStore store;
  FaasRuntime rt(cfg);
  rt.AttachSnapshotRegistry(&store);
  const int fn = rt.AddFunction(SnapSpec("restore"), 4);
  ASSERT_NE(rt.snapshot_id(fn), kNoSnapshot);

  // Cold start 1 records at first fully-warm idle; keep-alive evicts the
  // instance; cold start 2 (well past the eviction) restores.
  rt.events().ScheduleAt(Sec(1), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.events().ScheduleAt(Minutes(2), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.RunUntil(Minutes(4));

  EXPECT_EQ(store.stats().recordings, 1u);
  EXPECT_EQ(store.stats().restores, 1u);
  EXPECT_EQ(store.Image(rt.snapshot_id(fn)).heap_bytes, SnapSpec("restore").anon_working_set);

  const std::vector<ColdStartBreakdown>& colds = rt.agent(fn).cold_starts();
  ASSERT_EQ(colds.size(), 2u);
  // The restore replaces the serial container/function-init phases with
  // one bulk prefetch (billed as function_init).
  EXPECT_GT(colds[0].container_init, 0);
  EXPECT_EQ(colds[1].container_init, 0);
  EXPECT_GT(colds[1].function_init, 0);
  EXPECT_LT(colds[1].total(), colds[0].total());
  // The restored pages were prefetched, not demand-faulted: the first
  // exec finds the whole working set warm, so no tail was reported.
  EXPECT_EQ(store.stats().tail_bytes, 0u);
  EXPECT_TRUE(store.Recorded(rt.snapshot_id(fn)));
}

// --- Working-set vs full commitment per driver (locked table) ------------------------

TEST(SnapshotCommitmentTest, OnlySqueezyExploitsWorkingSetSizedCommitment) {
  DriverSizing sizing;
  sizing.plug_unit = GiB(1);
  sizing.deps_region = MiB(256);
  sizing.max_concurrency = 8;
  const uint64_t working_set = MiB(300);

  for (const ReclaimPolicy rp : {ReclaimPolicy::kStatic, ReclaimPolicy::kVirtioMem,
                                 ReclaimPolicy::kHarvestOpts}) {
    RuntimeConfig cfg;
    cfg.policy = rp;
    const std::unique_ptr<ReclaimDriver> driver = MakeReclaimDriver(cfg);
    EXPECT_FALSE(driver->SnapshotRestoreSupported()) << ReclaimPolicyName(rp);
    EXPECT_EQ(driver->RestoredCommitment(sizing, working_set), sizing.plug_unit)
        << ReclaimPolicyName(rp);
  }

  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  const std::unique_ptr<ReclaimDriver> squeezy = MakeReclaimDriver(cfg);
  EXPECT_TRUE(squeezy->SnapshotRestoreSupported());
  // 300 MiB block-rounds to 3 x 128 MiB: well under the 1 GiB unit.
  EXPECT_EQ(squeezy->RestoredCommitment(sizing, working_set), MiB(384));
  // Never above the unit, never below one block.
  EXPECT_EQ(squeezy->RestoredCommitment(sizing, GiB(2)), sizing.plug_unit);
  EXPECT_EQ(squeezy->RestoredCommitment(sizing, 1), kMemoryBlockBytes);
}

TEST(SnapshotCommitmentTest, SqueezyReservesRestoredCommitmentAndUnwinds) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(8);
  cfg.vm_base_memory = MiB(128);
  cfg.keep_alive = Sec(30);
  SnapshotStore store;
  FaasRuntime rt(cfg);
  rt.AttachSnapshotRegistry(&store);
  const FunctionSpec spec = SnapSpec("commit");
  const int fn = rt.AddFunction(spec, 4);
  const uint64_t boot = cfg.vm_base_memory + DepsRegion(spec);
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  EXPECT_EQ(rt.committed(), boot);

  // First (recording) cold start commits the FULL plug unit: no recording
  // existed when its memory was acquired.
  uint64_t committed_first = 0;
  rt.events().ScheduleAt(Sec(1), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.events().ScheduleAt(Sec(10), [&] { committed_first = rt.committed(); });
  // Second (restored) cold start commits only the block-rounded working
  // set — MiB(96) rounds to one 128 MiB block.
  uint64_t committed_restored = 0;
  rt.events().ScheduleAt(Minutes(2), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.events().ScheduleAt(Minutes(2) + Sec(10), [&] { committed_restored = rt.committed(); });
  rt.RunUntil(Minutes(5));

  EXPECT_EQ(committed_first, boot + plug_unit);
  EXPECT_EQ(committed_restored, boot + kMemoryBlockBytes);
  EXPECT_LT(committed_restored, committed_first);
  // Both evictions fully unwound — including the un-reserved shortfall of
  // the discounted plug — so the book is back at exactly boot.
  EXPECT_EQ(rt.agent(fn).live_instances(), 0u);
  EXPECT_EQ(rt.committed(), boot);
}

// --- Parity: non-supporting drivers bit-identical with the registry attached ---------

struct ChurnSummary {
  uint64_t completed = 0;
  int64_t latency_sum = 0;
  uint64_t pending_total = 0;
  uint64_t evictions = 0;
  uint64_t committed_peak = 0;
  uint64_t committed_final = 0;

  bool operator==(const ChurnSummary& o) const {
    return completed == o.completed && latency_sum == o.latency_sum &&
           pending_total == o.pending_total && evictions == o.evictions &&
           committed_peak == o.committed_peak && committed_final == o.committed_final;
  }
};

ChurnSummary RunChurn(ReclaimPolicy policy, SnapshotRegistry* registry,
                      DepImageRegistry* deps = nullptr) {
  RuntimeConfig cfg;
  cfg.host_capacity = policy == ReclaimPolicy::kStatic ? GiB(6) : MiB(1536);
  cfg.policy = policy;
  cfg.keep_alive = Sec(30);
  cfg.seed = 42;
  cfg.vm_base_memory = MiB(128);
  cfg.unplug_timeout = Msec(100);
  cfg.pressure_check_period = Msec(500);
  FaasRuntime rt(cfg);
  if (deps != nullptr) {
    rt.AttachDepRegistry(deps, 0);
  }
  if (registry != nullptr) {
    rt.AttachSnapshotRegistry(registry);
  }
  const int kFunctions = 3;
  FunctionSpec spec = SnapSpec("parity");
  spec.memory_limit = MiB(256);
  for (int f = 0; f < kFunctions; ++f) {
    rt.AddFunction(spec, 6);
  }
  ClusterTraceConfig trace;
  trace.duration = Minutes(4);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  rt.SubmitTrace(GenerateClusterTrace(trace, 42));
  rt.RunUntil(Minutes(6));

  ChurnSummary g;
  for (int f = 0; f < kFunctions; ++f) {
    const Agent& a = rt.agent(f);
    g.completed += a.requests().size();
    for (const RequestRecord& r : a.requests()) {
      g.latency_sum += r.latency();
    }
    g.evictions += a.total_evictions();
  }
  g.pending_total = rt.total_pending_scaleups();
  g.committed_peak = static_cast<uint64_t>(rt.host().committed_series().Max());
  g.committed_final = rt.committed();
  return g;
}

TEST(SnapshotParityTest, NonSupportingDriversBitIdenticalWithRegistryAttached) {
  // Drivers without SnapshotRestoreSupported() never intern a slot, so
  // attaching the registry must not perturb a single number of the run.
  for (const ReclaimPolicy policy :
       {ReclaimPolicy::kStatic, ReclaimPolicy::kVirtioMem, ReclaimPolicy::kHarvestOpts}) {
    SnapshotStore store;
    const ChurnSummary with = RunChurn(policy, &store);
    const ChurnSummary without = RunChurn(policy, nullptr);
    EXPECT_TRUE(with == without) << ReclaimPolicyName(policy);
    EXPECT_EQ(store.stats().functions, 0u) << ReclaimPolicyName(policy);
    EXPECT_EQ(store.stats().recordings, 0u) << ReclaimPolicyName(policy);
  }
}

TEST(SnapshotParityTest, SqueezyRestoresAndConservesBooksWithDepCache) {
  // Both registries attached: the three same-spec VMs share one dep image
  // AND one snapshot slot; restores fire across the churn, and at
  // quiescence the book is exactly bases + the dep cache's charge — every
  // restore-time commitment discount unwound at its unplug.
  SnapshotStore store;
  DepCache cache(1);
  const ChurnSummary with = RunChurn(ReclaimPolicy::kSqueezy, &store, &cache);
  EXPECT_EQ(store.stats().functions, 1u);  // Same spec: one shared slot.
  EXPECT_GE(store.stats().recordings, 1u);
  EXPECT_GT(store.stats().restores, 0u);
  EXPECT_GT(store.stats().prefetch_bytes, 0u);
  EXPECT_EQ(with.committed_final, 3 * MiB(128) + cache.charged_bytes(0));
  // Restored cold starts only speed the run up: the discounted book can
  // never lose completed work against the snapshot-less baseline.
  const ChurnSummary without = RunChurn(ReclaimPolicy::kSqueezy, nullptr, nullptr);
  EXPECT_GE(with.completed, without.completed);
}

// --- Stale recording: post-restore tail forces a re-record ---------------------------

TEST(SnapshotStaleTest, OversizedTailInvalidatesAndReRecords) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(8);
  cfg.vm_base_memory = MiB(128);
  cfg.keep_alive = Sec(30);
  SnapshotStore store;
  FaasRuntime rt(cfg);
  rt.AttachSnapshotRegistry(&store);
  const FunctionSpec spec = SnapSpec("stale");
  const int fn = rt.AddFunction(spec, 4);
  const SnapshotId snap = rt.snapshot_id(fn);
  ASSERT_NE(snap, kNoSnapshot);

  // A stale recording: the function's resident set grew well past what
  // was recorded (8 MiB recorded vs a 96 MiB working set — the restored
  // start demand-faults an 88 MiB tail, >> 25% of the recording).
  SnapshotImage stale;
  stale.heap_bytes = MiB(8);
  stale.working_set_pages = BytesToPages(MiB(8));
  ASSERT_TRUE(store.Record(snap, stale));

  rt.events().ScheduleAt(Sec(1), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.RunUntil(Minutes(1));

  // The restore happened, the tail blew the threshold, the recording was
  // invalidated, and the instance's fully-warm idle re-recorded the true
  // working set — so the next restore prefetches all of it.
  EXPECT_EQ(store.stats().restores, 1u);
  EXPECT_GE(store.stats().tail_bytes, MiB(88));
  EXPECT_EQ(store.stats().invalidations, 1u);
  EXPECT_EQ(store.stats().re_recordings, 1u);
  EXPECT_TRUE(store.Recorded(snap));
  EXPECT_EQ(store.Image(snap).heap_bytes, spec.anon_working_set);
}

// --- fig11 regression lock: Snapshot+DepC beats the PR 4 N:1+DepC row ----------------

// First cold start of a fresh Squeezy host, optionally with a peer-warm
// dependency cache and/or a pre-recorded snapshot (mirrors fig11's RunN1).
DurationNs FirstStart(const FunctionSpec& spec, bool dep, bool snap) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(128);
  cfg.keep_alive = Sec(30);
  SnapshotStore store;
  if (snap) {
    FaasRuntime recorder(cfg);
    recorder.AttachSnapshotRegistry(&store);
    const int rfn = recorder.AddFunction(spec, 4);
    recorder.events().ScheduleAt(Sec(1), [&recorder, rfn] { recorder.agent(rfn).Submit(); });
    recorder.RunUntil(Minutes(1));
  }
  DepCache cache(2);
  FaasRuntime rt(cfg);
  if (dep) {
    rt.AttachDepRegistry(&cache, 1);
  }
  if (snap) {
    rt.AttachSnapshotRegistry(&store);
  }
  const int fn = rt.AddFunction(spec, 4);
  if (dep) {
    cache.PinImage(0, rt.dep_image(fn));
    cache.MarkPopulated(0, rt.dep_image(fn));
  }
  rt.events().ScheduleAt(Sec(5), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.RunUntil(Minutes(1));
  const std::vector<ColdStartBreakdown>& colds = rt.agent(fn).cold_starts();
  EXPECT_EQ(colds.size(), 1u);
  return colds.front().total();
}

TEST(SnapshotSpeedupLockTest, SnapshotPlusDepCacheBeatsDepCacheAlone) {
  std::vector<double> dep_speedups;
  std::vector<double> snap_dep_speedups;
  for (const FunctionSpec& spec : PaperFunctions()) {
    const double base = static_cast<double>(FirstStart(spec, false, false));
    dep_speedups.push_back(base / static_cast<double>(FirstStart(spec, true, false)));
    snap_dep_speedups.push_back(base /
                                static_cast<double>(FirstStart(spec, true, true)));
  }
  const double dep_geomean = Geomean(dep_speedups);
  const double snap_dep_geomean = Geomean(snap_dep_speedups);
  // The PR 4 dep-cache row landed ~1.16x; the snapshot row must strictly
  // beat it (bulk prefetch replaces the serial phases the dep cache can
  // only shave IO from).
  EXPECT_GT(dep_geomean, 1.0);
  EXPECT_GT(snap_dep_geomean, dep_geomean);
  EXPECT_GT(snap_dep_geomean, 1.16);
}

}  // namespace
}  // namespace squeezy
