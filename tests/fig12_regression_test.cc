// Recorded-constants lock for the fig12 cluster headline (PR 2/PR 3).
//
// The co-design result the ROADMAP advertises — kHintedBinPack drops the
// 4-host fig12 sweep's memory-starved scale-ups from 156 (plain
// MemBinPack) to 121 under Squeezy — is a deterministic function of
// (bench config, seed).  The constants below were captured from
// bench/fig12_cluster_scale.cc at the PR 2 tree; this test replays the
// bench configuration — shared verbatim through bench/fig12_config.h, so
// the two cannot drift apart — and any divergence fails here first and
// must be re-recorded as an INTENTIONAL behavior change.
//
// Re-recording: PARITY_DUMP=1 ./fig12_regression_test prints the
// constants in source form.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>

#include "bench/fig12_config.h"
#include "src/cluster/cluster.h"
#include "src/faas/function.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

// Recorded on the PR 2 tree (fig12 4-host sweep, restricted capacity).
constexpr uint64_t kGoldenTraceInvocations = 7297;
constexpr uint64_t kGoldenHintedAdmitted = 7297;
constexpr uint64_t kGoldenHintedPending = 121;
constexpr uint64_t kGoldenBinPackPending = 156;

struct SweepPoint {
  uint64_t trace_size = 0;
  uint64_t admitted = 0;
  uint64_t routing_hash = 0;
  FleetSummary fleet;
};

SweepPoint RunCombo(PlacementPolicy placement, uint64_t host_capacity,
                    PlacementImpl impl = PlacementImpl::kDefault) {
  ClusterConfig cfg =
      fig12::SweepConfig(ReclaimPolicy::kSqueezy, placement, host_capacity);
  cfg.placement_impl = impl;
  Cluster cluster(cfg);
  for (const FunctionSpec& spec : PaperFunctions()) {
    cluster.AddFunction(spec, fig12::kConcurrency);
  }
  const std::vector<Invocation> trace =
      GenerateClusterTrace(fig12::TraceConfig(), fig12::kSeed);
  cluster.SubmitTrace(trace);
  cluster.RunUntil(fig12::kHorizon);
  SweepPoint p;
  p.trace_size = trace.size();
  p.routing_hash = cluster.routing_hash();
  p.fleet = cluster.Summarize(fig12::kHorizon);
  p.admitted = trace.size() - p.fleet.unplaced_invocations;
  return p;
}

TEST(Fig12RegressionTest, HintedBinPackHeadlineIsLocked) {
  // The restricted capacity derives from the abundant-memory committed
  // peak, exactly as the bench computes it.
  const SweepPoint abundant = RunCombo(PlacementPolicy::kRoundRobin, GiB(512));
  const uint64_t cap = static_cast<uint64_t>(
      fig12::kCapacityFraction *
      static_cast<double>(abundant.fleet.committed_peak / fig12::kHosts));

  const SweepPoint binpack = RunCombo(PlacementPolicy::kMemoryAwareBinPack, cap);
  const SweepPoint hinted = RunCombo(PlacementPolicy::kHintedBinPack, cap);

  if (std::getenv("PARITY_DUMP") != nullptr) {
    std::cout << "constexpr uint64_t kGoldenTraceInvocations = " << abundant.trace_size
              << ";\nconstexpr uint64_t kGoldenHintedAdmitted = " << hinted.admitted
              << ";\nconstexpr uint64_t kGoldenHintedPending = "
              << hinted.fleet.pending_scaleups_total
              << ";\nconstexpr uint64_t kGoldenBinPackPending = "
              << binpack.fleet.pending_scaleups_total << ";\n";
  }

  EXPECT_EQ(abundant.trace_size, kGoldenTraceInvocations);
  EXPECT_EQ(hinted.admitted, kGoldenHintedAdmitted);
  EXPECT_EQ(hinted.fleet.pending_scaleups_total, kGoldenHintedPending);
  EXPECT_EQ(binpack.fleet.pending_scaleups_total, kGoldenBinPackPending);
  // The co-design relation itself, independent of the exact constants:
  // hints must never make starvation worse than the plain bin-packer.
  EXPECT_LE(hinted.fleet.pending_scaleups_total, binpack.fleet.pending_scaleups_total);
  EXPECT_EQ(hinted.fleet.unplug_failures, 0u);  // Squeezy never times out here.
}

TEST(Fig12RegressionTest, PlacementImplsBothReproduceTheGoldenConstants) {
  // The golden headline must hold under BOTH placement machineries,
  // explicitly — not just under whatever SQUEEZY_PLACEMENT_IMPL resolves
  // the default to.  The indexed path's exactness contract
  // (src/cluster/host_index.h) says the recorded constants are a property
  // of the *decisions*, never of the implementation that computes them.
  const SweepPoint abundant = RunCombo(PlacementPolicy::kRoundRobin, GiB(512));
  const uint64_t cap = static_cast<uint64_t>(
      fig12::kCapacityFraction *
      static_cast<double>(abundant.fleet.committed_peak / fig12::kHosts));

  const SweepPoint scan =
      RunCombo(PlacementPolicy::kHintedBinPack, cap, PlacementImpl::kScan);
  const SweepPoint indexed =
      RunCombo(PlacementPolicy::kHintedBinPack, cap, PlacementImpl::kIndexed);

  EXPECT_EQ(scan.admitted, kGoldenHintedAdmitted);
  EXPECT_EQ(scan.fleet.pending_scaleups_total, kGoldenHintedPending);
  EXPECT_EQ(indexed.admitted, kGoldenHintedAdmitted);
  EXPECT_EQ(indexed.fleet.pending_scaleups_total, kGoldenHintedPending);
  // Bit-identical all the way down: the order-sensitive routing digest
  // and the fleet book, not just the headline counters.
  EXPECT_EQ(scan.routing_hash, indexed.routing_hash);
  EXPECT_EQ(scan.fleet.completed_requests, indexed.fleet.completed_requests);
  EXPECT_EQ(scan.fleet.committed_peak, indexed.fleet.committed_peak);
}

}  // namespace
}  // namespace squeezy
