// Insertion-order invariance of the shared registries' sim-visible output
// (the determinism lock behind the ordered by_key_ indexes).
//
// DepCache and SnapshotStore key their images by string; the key index is
// an ORDERED map precisely so that every dump path (ChargedImages,
// RecordedKeys, the BenchJson rows built from them) is a pure function of
// the inserted SET — never of insertion order, which varies with host
// count, placement policy, and future event-queue sharding.  This test
// drives both registries through every permutation of a key set, applying
// a fixed per-key operation script, and asserts that stats, dump output,
// and the BenchJson file bytes are identical across permutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/dep_cache.h"
#include "src/sim/cost_model.h"
#include "src/snapshot/snapshot_store.h"

namespace squeezy {
namespace {

constexpr size_t kHosts = 3;

// Key set: deliberately NOT in insertion-friendly order anywhere.
const std::vector<std::string> kKeys = {"llm-bert", "alu", "img-resize", "web"};

// --- DepCache ---------------------------------------------------------------

// Applies a fixed operation script for key index `k` (an index into the
// CANONICAL kKeys order, so the logical operation set is the same no
// matter which order the keys were interned in).
void DriveDepKey(DepCache* cache, DepImageId img, size_t k) {
  const size_t h0 = k % kHosts;
  const size_t h1 = (k + 1) % kHosts;
  cache->PinImage(h0, img);
  cache->AddRef(h0, img);
  cache->AddRef(h0, img);
  cache->PinImage(h0, img);  // Second pin on h0: boot dedup hit.
  cache->PinImage(h1, img);
  if (k % 2 == 0) {
    cache->MarkPopulated(h0, img);
    cache->RecordWireHit(MiB(16) * (k + 1));
  }
  if (k % 3 == 0) {
    cache->EvictImage(h1, img);
  }
  cache->ReleaseRef(h0, img);
}

struct DepOutcome {
  DepCacheStats stats;
  std::vector<std::vector<std::pair<std::string, uint64_t>>> charged;
  std::vector<uint64_t> charged_bytes;
  std::string json;

  bool operator==(const DepOutcome& o) const {
    return stats.images == o.stats.images && stats.pins == o.stats.pins &&
           stats.boot_dedup_hits == o.stats.boot_dedup_hits &&
           stats.boot_bytes_saved == o.stats.boot_bytes_saved &&
           stats.evictions == o.stats.evictions &&
           stats.evicted_bytes == o.stats.evicted_bytes &&
           stats.wire_hits == o.stats.wire_hits &&
           stats.wire_bytes_saved == o.stats.wire_bytes_saved &&
           charged == o.charged && charged_bytes == o.charged_bytes &&
           json == o.json;
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

// Runs one full scenario with keys interned in `order` (indices into
// kKeys), then captures every sim-visible output.
DepOutcome RunDepScenario(const std::vector<size_t>& order) {
  DepCache cache(kHosts);
  std::vector<DepImageId> ids(kKeys.size(), kNoDepImage);
  for (const size_t k : order) {
    ids[k] = cache.Intern(kKeys[k], MiB(64) * (k + 1));
  }
  for (const size_t k : order) {
    DriveDepKey(&cache, ids[k], k);
  }

  DepOutcome out;
  out.stats = cache.stats();
  BenchJson json("determinism_order_fixture");
  json.Metric("images", static_cast<uint64_t>(cache.image_count()));
  json.SetColumns({"host", "key", "region_bytes"});
  for (size_t h = 0; h < kHosts; ++h) {
    out.charged.push_back(cache.ChargedImages(h));
    out.charged_bytes.push_back(cache.charged_bytes(h));
    for (const auto& [key, bytes] : out.charged.back()) {
      json.AddRow({std::to_string(h), key, std::to_string(bytes)});
    }
  }
  const std::string path = json.Write();
  EXPECT_FALSE(path.empty());
  out.json = ReadFile(path);
  EXPECT_FALSE(out.json.empty());
  return out;
}

TEST(DeterminismOrderTest, DepCacheOutputInvariantUnderInsertionOrder) {
  std::vector<size_t> order(kKeys.size());
  std::iota(order.begin(), order.end(), 0);
  const DepOutcome baseline = RunDepScenario(order);

  // Sanity: the scenario actually exercises the interesting paths.
  EXPECT_EQ(baseline.stats.images, kKeys.size());
  EXPECT_GT(baseline.stats.boot_dedup_hits, 0u);
  EXPECT_GT(baseline.stats.evictions, 0u);
  EXPECT_GT(baseline.stats.wire_hits, 0u);

  size_t permutations = 0;
  while (std::next_permutation(order.begin(), order.end())) {
    const DepOutcome got = RunDepScenario(order);
    ASSERT_TRUE(got == baseline)
        << "DepCache output depends on insertion order (permutation "
        << permutations << ")";
    ++permutations;
  }
  EXPECT_EQ(permutations, 23u);  // 4! - 1 non-identity orders.
}

// --- SnapshotStore ----------------------------------------------------------

void DriveSnapKey(SnapshotStore* store, SnapshotId snap, size_t k) {
  SnapshotImage img;
  img.working_set_pages = 1000 * (k + 1);
  img.deps_pages = 200 * (k + 1);
  img.heap_bytes = MiB(8) * (k + 1);
  store->Record(snap, img);
  store->NoteRestore(snap, MiB(4) * (k + 1), k % 2 == 0 ? MiB(1) : 0);
  if (k % 3 == 1) {
    // Tail far above the staleness threshold: invalidates, then
    // re-records with a grown heap.
    store->NoteTail(snap, img.heap_bytes);
    SnapshotImage regrown = img;
    regrown.heap_bytes += MiB(2);
    store->Record(snap, regrown);
  } else {
    store->NoteTail(snap, 0);
  }
}

struct SnapOutcome {
  SnapshotStats stats;
  std::vector<std::string> keys;

  bool operator==(const SnapOutcome& o) const {
    return stats.functions == o.stats.functions &&
           stats.recordings == o.stats.recordings &&
           stats.re_recordings == o.stats.re_recordings &&
           stats.invalidations == o.stats.invalidations &&
           stats.restores == o.stats.restores &&
           stats.prefetch_bytes == o.stats.prefetch_bytes &&
           stats.deps_bytes_zeroed == o.stats.deps_bytes_zeroed &&
           stats.tail_bytes == o.stats.tail_bytes &&
           stats.restored_heap_bytes == o.stats.restored_heap_bytes &&
           keys == o.keys;
  }
};

SnapOutcome RunSnapScenario(const std::vector<size_t>& order) {
  SnapshotStore store{SnapshotStoreConfig{}};
  std::vector<SnapshotId> ids(kKeys.size(), kNoSnapshot);
  for (const size_t k : order) {
    ids[k] = store.Intern(kKeys[k]);
  }
  for (const size_t k : order) {
    DriveSnapKey(&store, ids[k], k);
  }
  SnapOutcome out;
  out.stats = store.stats();
  out.keys = store.RecordedKeys();
  return out;
}

TEST(DeterminismOrderTest, SnapshotStoreOutputInvariantUnderInsertionOrder) {
  std::vector<size_t> order(kKeys.size());
  std::iota(order.begin(), order.end(), 0);
  const SnapOutcome baseline = RunSnapScenario(order);

  EXPECT_EQ(baseline.stats.functions, kKeys.size());
  EXPECT_GT(baseline.stats.invalidations, 0u);
  EXPECT_GT(baseline.stats.re_recordings, 0u);
  // Every key ends with a valid recording, listed in key order.
  std::vector<std::string> sorted_keys = kKeys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  EXPECT_EQ(baseline.keys, sorted_keys);

  size_t permutations = 0;
  while (std::next_permutation(order.begin(), order.end())) {
    const SnapOutcome got = RunSnapScenario(order);
    ASSERT_TRUE(got == baseline)
        << "SnapshotStore output depends on insertion order (permutation "
        << permutations << ")";
    ++permutations;
  }
  EXPECT_EQ(permutations, 23u);
}

}  // namespace
}  // namespace squeezy
