// Unit + property tests for the buddy allocator and zone accounting.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/mm/memmap.h"
#include "src/mm/page.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"
#include "src/sim/rng.h"

namespace squeezy {
namespace {

class ZoneTest : public testing::Test {
 protected:
  void SetUp() override {
    memmap_ = std::make_unique<MemMap>(GiB(1));  // 8 blocks.
    zone_ = std::make_unique<Zone>(0, ZoneType::kMovable, "test", memmap_.get());
    for (BlockIndex b = 0; b < 8; ++b) {
      memmap_->InitBlock(b);
    }
  }

  void OnlineBlocks(uint32_t n) {
    for (BlockIndex b = 0; b < n; ++b) {
      zone_->AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
      memmap_->set_block_state(b, BlockState::kOnline);
    }
  }

  std::unique_ptr<MemMap> memmap_;
  std::unique_ptr<Zone> zone_;
};

TEST_F(ZoneTest, AddFreeRangePopulatesStats) {
  OnlineBlocks(2);
  EXPECT_EQ(zone_->free_pages(), 2u * kPagesPerBlock);
  EXPECT_EQ(zone_->present_pages(), 2u * kPagesPerBlock);
  EXPECT_EQ(zone_->managed_pages(), 2u * kPagesPerBlock);
  EXPECT_EQ(zone_->allocated_pages(), 0u);
  EXPECT_TRUE(zone_->CheckFreeLists());
  // A whole block is 32 max-order chunks.
  EXPECT_EQ(zone_->free_chunks(kMaxPageOrder), 64u);
}

TEST_F(ZoneTest, AllocReturnsAlignedHead) {
  OnlineBlocks(1);
  for (uint8_t order = 0; order <= kMaxPageOrder; ++order) {
    const Pfn pfn = zone_->Alloc(order, PageKind::kAnon, 1, 0);
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_EQ(pfn & ((1u << order) - 1), 0u) << "order " << int{order};
    const Page& p = memmap_->page(pfn);
    EXPECT_EQ(p.state, PageState::kAllocated);
    EXPECT_TRUE(p.head);
    EXPECT_EQ(p.order, order);
    EXPECT_EQ(p.owner, 1);
  }
  EXPECT_TRUE(zone_->CheckFreeLists());
}

TEST_F(ZoneTest, AllocSetsTailPages) {
  OnlineBlocks(1);
  const Pfn pfn = zone_->Alloc(3, PageKind::kAnon, 5, 7);
  ASSERT_NE(pfn, kInvalidPfn);
  for (uint32_t i = 1; i < 8; ++i) {
    const Page& p = memmap_->page(pfn + i);
    EXPECT_EQ(p.state, PageState::kAllocated);
    EXPECT_FALSE(p.head);
  }
}

TEST_F(ZoneTest, FreeCoalescesBackToMaxOrder) {
  OnlineBlocks(1);
  std::vector<Pfn> folios;
  // Drain the zone at order 0, then free everything.
  while (true) {
    const Pfn pfn = zone_->Alloc(0, PageKind::kAnon, 1, 0);
    if (pfn == kInvalidPfn) {
      break;
    }
    folios.push_back(pfn);
  }
  EXPECT_EQ(folios.size(), kPagesPerBlock);
  EXPECT_EQ(zone_->free_pages(), 0u);
  for (const Pfn pfn : folios) {
    zone_->Free(pfn);
  }
  EXPECT_EQ(zone_->free_pages(), static_cast<uint64_t>(kPagesPerBlock));
  // Full coalescing: only max-order chunks remain.
  for (uint8_t order = 0; order < kMaxPageOrder; ++order) {
    EXPECT_EQ(zone_->free_chunks(order), 0u) << "order " << int{order};
  }
  EXPECT_EQ(zone_->free_chunks(kMaxPageOrder), kPagesPerBlock >> kMaxPageOrder);
  EXPECT_TRUE(zone_->CheckFreeLists());
}

TEST_F(ZoneTest, AllocFailsWhenEmptyZone) {
  EXPECT_EQ(zone_->Alloc(0, PageKind::kAnon, 1, 0), kInvalidPfn);
}

TEST_F(ZoneTest, AllocFailsWhenExhausted) {
  OnlineBlocks(1);
  const uint64_t chunks = kPagesPerBlock >> kMaxPageOrder;
  for (uint64_t i = 0; i < chunks; ++i) {
    ASSERT_NE(zone_->Alloc(kMaxPageOrder, PageKind::kAnon, 1, 0), kInvalidPfn);
  }
  EXPECT_EQ(zone_->Alloc(0, PageKind::kAnon, 1, 0), kInvalidPfn);
  EXPECT_EQ(zone_->free_pages(), 0u);
}

TEST_F(ZoneTest, SplitProducesBuddyHalves) {
  OnlineBlocks(1);
  const uint64_t before = zone_->free_chunks(kMaxPageOrder);
  const Pfn pfn = zone_->Alloc(0, PageKind::kAnon, 1, 0);
  ASSERT_NE(pfn, kInvalidPfn);
  EXPECT_EQ(zone_->free_chunks(kMaxPageOrder), before - 1);
  // Splitting a max-order chunk to order 0 leaves one chunk per order.
  for (uint8_t order = 0; order < kMaxPageOrder; ++order) {
    EXPECT_EQ(zone_->free_chunks(order), 1u) << "order " << int{order};
  }
  EXPECT_TRUE(zone_->CheckFreeLists());
}

TEST_F(ZoneTest, OccupancyCounterMatchesScan) {
  OnlineBlocks(2);
  Rng rng(3);
  std::vector<Pfn> folios;
  for (int i = 0; i < 200; ++i) {
    const uint8_t order = static_cast<uint8_t>(rng.UniformInt(0, kThpOrder));
    const Pfn pfn = zone_->Alloc(order, PageKind::kAnon, 1, 0);
    if (pfn != kInvalidPfn) {
      folios.push_back(pfn);
    }
  }
  for (size_t i = 0; i < folios.size(); i += 2) {
    zone_->Free(folios[i]);
  }
  for (BlockIndex b = 0; b < 2; ++b) {
    EXPECT_EQ(memmap_->BlockOccupied(b), memmap_->CountBlockPages(b, PageState::kAllocated));
  }
}

TEST_F(ZoneTest, IsolateFreeRangeRemovesFromAllocator) {
  OnlineBlocks(2);
  const uint64_t isolated = zone_->IsolateFreeRange(MemMap::BlockStart(0), kPagesPerBlock);
  EXPECT_EQ(isolated, static_cast<uint64_t>(kPagesPerBlock));
  EXPECT_EQ(zone_->free_pages(), static_cast<uint64_t>(kPagesPerBlock));
  // Allocations can no longer land in block 0.
  for (int i = 0; i < 32; ++i) {
    const Pfn pfn = zone_->Alloc(kMaxPageOrder, PageKind::kAnon, 1, 0);
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_GE(pfn, kPagesPerBlock);
  }
  EXPECT_TRUE(zone_->CheckFreeLists());
}

TEST_F(ZoneTest, IsolateSkipsAllocatedPages) {
  OnlineBlocks(1);
  const Pfn held = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0);
  ASSERT_NE(held, kInvalidPfn);
  const uint64_t isolated = zone_->IsolateFreeRange(0, kPagesPerBlock);
  EXPECT_EQ(isolated, kPagesPerBlock - (1u << kThpOrder));
  EXPECT_EQ(memmap_->page(held).state, PageState::kAllocated);
}

TEST_F(ZoneTest, UndoIsolationRestoresFreePages) {
  OnlineBlocks(1);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  EXPECT_EQ(zone_->free_pages(), 0u);
  zone_->UndoIsolation(0, kPagesPerBlock);
  EXPECT_EQ(zone_->free_pages(), static_cast<uint64_t>(kPagesPerBlock));
  EXPECT_TRUE(zone_->CheckFreeLists());
  // And allocation works again.
  EXPECT_NE(zone_->Alloc(kMaxPageOrder, PageKind::kAnon, 1, 0), kInvalidPfn);
}

TEST_F(ZoneTest, UndoIsolationCoalesces) {
  OnlineBlocks(1);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  zone_->UndoIsolation(0, kPagesPerBlock);
  EXPECT_EQ(zone_->free_chunks(kMaxPageOrder), kPagesPerBlock >> kMaxPageOrder);
}

TEST_F(ZoneTest, FreeIntoIsolationBypassesFreeLists) {
  OnlineBlocks(1);
  const Pfn held = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  const uint64_t free_before = zone_->free_pages();
  zone_->FreeIntoIsolation(held);
  EXPECT_EQ(zone_->free_pages(), free_before);  // Not returned to buddy.
  EXPECT_EQ(memmap_->page(held).state, PageState::kIsolated);
  EXPECT_EQ(memmap_->BlockOccupied(0), 0u);
}

TEST_F(ZoneTest, RetireRangeShrinksZone) {
  OnlineBlocks(2);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  zone_->RetireRange(0, kPagesPerBlock);
  EXPECT_EQ(zone_->present_pages(), static_cast<uint64_t>(kPagesPerBlock));
  EXPECT_EQ(zone_->managed_pages(), static_cast<uint64_t>(kPagesPerBlock));
  EXPECT_EQ(memmap_->page(0).state, PageState::kOffline);
  EXPECT_EQ(memmap_->page(0).zone_id, -1);
}

TEST_F(ZoneTest, ShuffledZoneScattersAllocations) {
  // With a shuffle RNG, consecutive allocations should not be contiguous.
  Rng rng(7);
  Zone shuffled(1, ZoneType::kMovable, "shuffled", memmap_.get(), &rng);
  for (BlockIndex b = 0; b < 8; ++b) {
    shuffled.AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
  }
  std::set<BlockIndex> blocks_hit;
  for (int i = 0; i < 64; ++i) {
    const Pfn pfn = shuffled.Alloc(kThpOrder, PageKind::kAnon, 1, 0);
    ASSERT_NE(pfn, kInvalidPfn);
    blocks_hit.insert(MemMap::BlockOf(pfn));
  }
  // 64 THP folios = 128 MiB = could fit in 1 block; shuffling should
  // spread them over several.
  EXPECT_GT(blocks_hit.size(), 2u);
  EXPECT_TRUE(shuffled.CheckFreeLists());
}

// Property test: random alloc/free sequences conserve pages and keep the
// free lists well-formed, across different folio-order mixes.
class ZoneChurnPropertyTest : public testing::TestWithParam<std::tuple<uint64_t, uint8_t>> {};

TEST_P(ZoneChurnPropertyTest, ConservationUnderChurn) {
  const auto [seed, max_order] = GetParam();
  MemMap memmap(MiB(512));
  Zone zone(0, ZoneType::kMovable, "churn", &memmap);
  const uint32_t nblocks = 4;
  for (BlockIndex b = 0; b < nblocks; ++b) {
    memmap.InitBlock(b);
    zone.AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
  }
  const uint64_t total = zone.free_pages();

  Rng rng(seed);
  std::vector<Pfn> live;
  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.Chance(0.55)) {
      const uint8_t order = static_cast<uint8_t>(rng.UniformInt(0, max_order));
      const Pfn pfn = zone.Alloc(order, PageKind::kAnon, 1, 0);
      if (pfn != kInvalidPfn) {
        live.push_back(pfn);
      }
    } else {
      const size_t idx = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      zone.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(zone.free_pages() + zone.allocated_pages(), total);
  }
  ASSERT_TRUE(zone.CheckFreeLists());
  // Free everything: the zone must return to fully-coalesced emptiness.
  for (const Pfn pfn : live) {
    zone.Free(pfn);
  }
  EXPECT_EQ(zone.free_pages(), total);
  EXPECT_EQ(zone.allocated_pages(), 0u);
  EXPECT_EQ(zone.free_chunks(kMaxPageOrder), total >> kMaxPageOrder);
  EXPECT_TRUE(zone.CheckFreeLists());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ZoneChurnPropertyTest,
    testing::Combine(testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                     testing::Values(uint8_t{0}, uint8_t{4}, kThpOrder, kMaxPageOrder)),
    [](const testing::TestParamInfo<std::tuple<uint64_t, uint8_t>>& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_maxorder" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(ZoneTypeTest, Names) {
  EXPECT_STREQ(ZoneTypeName(ZoneType::kNormal), "Normal");
  EXPECT_STREQ(ZoneTypeName(ZoneType::kMovable), "Movable");
  EXPECT_STREQ(ZoneTypeName(ZoneType::kSqueezyPrivate), "SqueezyPrivate");
  EXPECT_STREQ(ZoneTypeName(ZoneType::kSqueezyShared), "SqueezyShared");
}

}  // namespace
}  // namespace squeezy
