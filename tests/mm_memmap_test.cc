// Unit tests for the memory map and block state machine.
#include <gtest/gtest.h>

#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

TEST(MemMapTest, SpanRoundsUpToBlocks) {
  MemMap m(kMemoryBlockBytes + 1);
  EXPECT_EQ(m.block_count(), 2u);
  EXPECT_EQ(m.span_pages(), 2u * kPagesPerBlock);
}

TEST(MemMapTest, BlocksStartAbsentWithHolePages) {
  MemMap m(GiB(1));
  EXPECT_EQ(m.block_count(), 8u);
  for (BlockIndex b = 0; b < 8; ++b) {
    EXPECT_EQ(m.block_state(b), BlockState::kAbsent);
  }
  EXPECT_EQ(m.page(0).state, PageState::kHole);
  EXPECT_EQ(m.page(m.span_pages() - 1).state, PageState::kHole);
}

TEST(MemMapTest, InitBlockMakesPagesOffline) {
  MemMap m(GiB(1));
  m.InitBlock(3);
  EXPECT_EQ(m.block_state(3), BlockState::kPresent);
  const Pfn start = MemMap::BlockStart(3);
  EXPECT_EQ(m.page(start).state, PageState::kOffline);
  EXPECT_EQ(m.page(start + kPagesPerBlock - 1).state, PageState::kOffline);
  // Neighbours untouched.
  EXPECT_EQ(m.page(start - 1).state, PageState::kHole);
  EXPECT_EQ(m.page(start + kPagesPerBlock).state, PageState::kHole);
}

TEST(MemMapTest, TeardownBlockRestoresHoles) {
  MemMap m(GiB(1));
  m.InitBlock(0);
  m.set_block_state(0, BlockState::kOffline);
  m.TeardownBlock(0);
  EXPECT_EQ(m.block_state(0), BlockState::kAbsent);
  EXPECT_EQ(m.page(0).state, PageState::kHole);
}

TEST(MemMapTest, BlockIndexMath) {
  EXPECT_EQ(MemMap::BlockOf(0), 0u);
  EXPECT_EQ(MemMap::BlockOf(kPagesPerBlock - 1), 0u);
  EXPECT_EQ(MemMap::BlockOf(kPagesPerBlock), 1u);
  EXPECT_EQ(MemMap::BlockStart(2), 2u * kPagesPerBlock);
}

TEST(MemMapTest, CountBlockPagesByState) {
  MemMap m(GiB(1));
  m.InitBlock(0);
  EXPECT_EQ(m.CountBlockPages(0, PageState::kOffline), static_cast<uint64_t>(kPagesPerBlock));
  EXPECT_EQ(m.CountBlockPages(0, PageState::kFree), 0u);
  EXPECT_EQ(m.CountBlockPages(1, PageState::kHole), static_cast<uint64_t>(kPagesPerBlock));
}

TEST(MemMapTest, CountBlocksByState) {
  MemMap m(GiB(1));
  m.InitBlock(0);
  m.InitBlock(5);
  EXPECT_EQ(m.CountBlocks(BlockState::kAbsent), 6u);
  EXPECT_EQ(m.CountBlocks(BlockState::kPresent), 2u);
}

TEST(MemMapTest, FolioHeadResolvesFromTail) {
  MemMap m(GiB(1));
  Zone zone(0, ZoneType::kMovable, "z", &m);
  m.InitBlock(0);
  zone.AddFreeRange(0, kPagesPerBlock);
  const Pfn head = zone.Alloc(kThpOrder, PageKind::kAnon, 1, 0);
  ASSERT_NE(head, kInvalidPfn);
  for (uint32_t i = 0; i < (1u << kThpOrder); i += 37) {
    EXPECT_EQ(m.FolioHead(head + i), head);
  }
}

TEST(MemMapTest, HostPopulatedSurvivesTeardown) {
  // The hypervisor owns host backing; guest-side teardown must not lose it
  // (it is released explicitly via the unplug acknowledgement).
  MemMap m(GiB(1));
  m.InitBlock(0);
  m.page(17).host_populated = true;
  m.set_block_state(0, BlockState::kOffline);
  m.TeardownBlock(0);
  EXPECT_TRUE(m.page(17).host_populated);
}

TEST(MemMapTest, ConstReadsNeverMaterialize) {
  MemMap m(GiB(1));
  const MemMap& cm = m;
  // A fresh map holds no chunks at all: span RSS is bounded by touch, not
  // by span size.
  EXPECT_EQ(m.materialized_blocks(), 0u);
  for (Pfn pfn = 0; pfn < cm.span_pages(); pfn += kPagesPerBlock / 3) {
    EXPECT_EQ(cm.page(pfn).state, PageState::kHole);
    EXPECT_FALSE(cm.page(pfn).host_populated);
  }
  EXPECT_EQ(m.materialized_blocks(), 0u);
  EXPECT_EQ(m.materialized_bytes(), 0u);
  for (BlockIndex b = 0; b < m.block_count(); ++b) {
    EXPECT_FALSE(m.BlockMaterialized(b));
  }
}

TEST(MemMapTest, MutableTouchMaterializesOneChunk) {
  MemMap m(GiB(1));
  Page& p = m.page(MemMap::BlockStart(3) + 7);
  // First mutable touch sees the flat array's initial state.
  EXPECT_EQ(p.state, PageState::kHole);
  EXPECT_EQ(m.materialized_blocks(), 1u);
  EXPECT_TRUE(m.BlockMaterialized(3));
  EXPECT_FALSE(m.BlockMaterialized(2));
  EXPECT_EQ(m.materialized_bytes(), MemMap::ChunkBytes());
  EXPECT_EQ(m.materialized_peak_blocks(), 1u);
}

TEST(MemMapTest, TeardownFreesChunkWhenNothingPopulated) {
  // The real unplug path (HotRemoveBlock) clears every host_populated
  // flag before tearing down — the chunk's sim memory must come back.
  MemMap m(GiB(1));
  m.InitBlock(0);
  EXPECT_EQ(m.materialized_blocks(), 1u);
  m.set_block_state(0, BlockState::kOffline);
  m.TeardownBlock(0);
  EXPECT_FALSE(m.BlockMaterialized(0));
  EXPECT_EQ(m.materialized_blocks(), 0u);
  EXPECT_EQ(m.materialized_peak_blocks(), 1u);  // Peak is sticky.
  // The freed block reads as holes again and can be re-initialized.
  const MemMap& cm = m;
  EXPECT_EQ(cm.page(0).state, PageState::kHole);
  m.InitBlock(0);
  EXPECT_EQ(m.page(0).state, PageState::kOffline);
}

TEST(MemMapTest, TeardownKeepsChunkWhileHostBackingSurvives) {
  // Population flags must survive guest-side teardown (see
  // HostPopulatedSurvivesTeardown) — the chunk cannot be freed then.
  MemMap m(GiB(1));
  m.InitBlock(0);
  m.page(17).host_populated = true;
  m.set_block_state(0, BlockState::kOffline);
  m.TeardownBlock(0);
  EXPECT_TRUE(m.BlockMaterialized(0));
  EXPECT_EQ(m.materialized_blocks(), 1u);
}

TEST(MemMapTest, CountBlockPagesOnAbsentChunk) {
  MemMap m(GiB(1));
  EXPECT_EQ(m.CountBlockPages(2, PageState::kHole), static_cast<uint64_t>(kPagesPerBlock));
  EXPECT_EQ(m.CountBlockPages(2, PageState::kOffline), 0u);
  EXPECT_EQ(m.materialized_blocks(), 0u);  // Counting must not materialize.
}

TEST(MemMapTest, OccupancyCounterStartsZero) {
  MemMap m(GiB(1));
  for (BlockIndex b = 0; b < m.block_count(); ++b) {
    EXPECT_EQ(m.BlockOccupied(b), 0u);
  }
  m.AdjustBlockAllocated(0, 5);
  EXPECT_EQ(m.BlockOccupied(0), 5u);
  m.AdjustBlockAllocated(3, -5);  // pfn 3 is still block 0.
  EXPECT_EQ(m.BlockOccupied(0), 0u);
}

}  // namespace
}  // namespace squeezy
