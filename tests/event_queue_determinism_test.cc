// EventQueue same-timestamp ordering determinism.
//
// The whole simulator's bit-reproducibility rests on one contract: events
// scheduled for the same instant fire in SCHEDULING order (stable FIFO),
// independent of heap internals, cancellation churn, or any seed-driven
// noise around them.  Migration makes this load-bearing at the cluster
// layer — a migration completion racing a drain completion at the same
// timestamp must resolve the same way in every run — so the contract is
// locked here directly against the queue.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace squeezy {
namespace {

TEST(EventQueueDeterminismTest, SameInstantFiresInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 64; ++i) {
    q.ScheduleAt(Sec(5), [&fired, i] { fired.push_back(i); });
  }
  q.RunAll();
  ASSERT_EQ(fired.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueDeterminismTest, CancellationDoesNotPerturbSurvivorOrder) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(q.ScheduleAt(Sec(1), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 1; i < 32; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  q.RunAll();
  ASSERT_EQ(fired.size(), 16u);
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(2 * i));
  }
}

TEST(EventQueueDeterminismTest, HandlerSchedulingAtNowRunsAfterQueuedSameInstant) {
  EventQueue q;
  std::vector<std::string> fired;
  q.ScheduleAt(Sec(2), [&] {
    fired.push_back("first");
    // Scheduled DURING the instant: must run after everything already
    // queued for it — scheduling order is global, not per-insertion-time.
    q.ScheduleAt(q.now(), [&] { fired.push_back("nested"); });
  });
  q.ScheduleAt(Sec(2), [&] { fired.push_back("second"); });
  q.RunAll();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], "first");
  EXPECT_EQ(fired[1], "second");
  EXPECT_EQ(fired[2], "nested");
}

TEST(EventQueueDeterminismTest, PastTimestampsClampToNowInFifoOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(Sec(10), [&] {
    q.ScheduleAt(Sec(3), [&fired] { fired.push_back(1); });  // Past: clamps to now.
    q.ScheduleAt(Sec(1), [&fired] { fired.push_back(2); });  // Also past.
    q.ScheduleAfter(0, [&fired] { fired.push_back(3); });
  });
  q.RunAll();
  EXPECT_EQ(q.now(), Sec(10));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
  EXPECT_EQ(fired[2], 3);
}

TEST(EventQueueDeterminismTest, RunUntilBoundaryPreservesSameInstantOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(Sec(4), [&fired, i] { fired.push_back(i); });
  }
  // The deadline lands exactly on the instant: all of it runs, in order,
  // and a later RunAll finds nothing left to reorder.
  q.RunUntil(Sec(4));
  ASSERT_EQ(fired.size(), 8u);
  q.RunAll();
  ASSERT_EQ(fired.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

// The migration race, distilled: a "migration completion" and a "drain
// completion" collide on one timestamp while seed-driven churn (extra
// scheduled-then-cancelled events, varying insertion interleavings)
// rages around them.  Whatever the seed does, the two completions must
// resolve in their scheduling order — the pop order is a pure function
// of (timestamp, scheduling sequence), never of the noise.
TEST(EventQueueDeterminismTest, CollidingCompletionsAreSeedIndependent) {
  auto run = [](uint64_t seed) {
    EventQueue q;
    Rng rng(seed);
    std::vector<std::string> fired;
    const TimeNs collision = Sec(30);
    // Seed-dependent noise BEFORE the contenders enter the heap.
    std::vector<EventId> noise;
    const int64_t pre = rng.UniformInt(0, 20);
    for (int64_t i = 0; i < pre; ++i) {
      noise.push_back(q.ScheduleAt(Sec(rng.UniformInt(0, 60)), [] {}));
    }
    q.ScheduleAt(collision, [&fired] { fired.push_back("migration-done"); });
    // More noise BETWEEN the two contenders, some of it cancelled.
    const int64_t mid = rng.UniformInt(0, 20);
    for (int64_t i = 0; i < mid; ++i) {
      const EventId id = q.ScheduleAt(Sec(rng.UniformInt(0, 60)), [] {});
      if (rng.UniformInt(0, 1) == 0) {
        q.Cancel(id);
      }
    }
    q.ScheduleAt(collision, [&fired] { fired.push_back("drain-done"); });
    for (const EventId id : noise) {
      if (rng.UniformInt(0, 2) == 0) {
        q.Cancel(id);
      }
    }
    q.RunAll();
    std::vector<std::string> order;
    for (const std::string& s : fired) {
      if (s == "migration-done" || s == "drain-done") {
        order.push_back(s);
      }
    }
    return order;
  };
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const std::vector<std::string> order = run(seed);
    ASSERT_EQ(order.size(), 2u) << "seed " << seed;
    EXPECT_EQ(order[0], "migration-done") << "seed " << seed;
    EXPECT_EQ(order[1], "drain-done") << "seed " << seed;
  }
}

}  // namespace
}  // namespace squeezy
