// Integration tests for the FaaS runtime: policies, admission under
// memory pressure, plug/unplug orchestration, end-to-end traces.
#include <gtest/gtest.h>

#include <memory>

#include "src/faas/function.h"
#include "src/faas/microvm.h"
#include "src/faas/runtime.h"
#include "src/trace/trace_gen.h"

namespace squeezy {
namespace {

FunctionSpec SmallSpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;
  return s;
}

TEST(FaasRuntimeTest, PolicyNames) {
  EXPECT_STREQ(ReclaimPolicyName(ReclaimPolicy::kStatic), "Static");
  EXPECT_STREQ(ReclaimPolicyName(ReclaimPolicy::kVirtioMem), "Virtio-mem");
  EXPECT_STREQ(ReclaimPolicyName(ReclaimPolicy::kSqueezy), "Squeezy");
  EXPECT_STREQ(ReclaimPolicyName(ReclaimPolicy::kHarvestOpts), "HarvestVM-opts");
}

TEST(FaasRuntimeTest, SqueezyEndToEndScaleUpDown) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(32);
  cfg.keep_alive = Sec(30);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(SmallSpec("s"), 4);

  // Burst of 3 -> 3 instances; after keep-alive everything is reclaimed.
  rt.SubmitTrace({{Sec(1), fn}, {Sec(1), fn}, {Sec(1), fn}});
  rt.RunUntil(Sec(20));
  EXPECT_EQ(rt.agent(fn).requests().size(), 3u);
  EXPECT_EQ(rt.agent(fn).live_instances(), 3u);
  const uint64_t committed_peak = rt.host().committed();

  rt.RunUntil(Minutes(3));
  EXPECT_EQ(rt.agent(fn).live_instances(), 0u);
  // All three instances' commitments were released by unplug.
  EXPECT_LT(rt.host().committed(), committed_peak);
  EXPECT_EQ(rt.squeezy(fn)->stats().partitions_reclaimed, 3u);
  // Squeezy invariant: zero migrations on the whole run.
  EXPECT_EQ(rt.guest(fn).hotplug().total_pages_migrated(), 0u);
}

TEST(FaasRuntimeTest, VirtioPolicyMigratesOnReclaim) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kVirtioMem;
  cfg.host_capacity = GiB(32);
  cfg.keep_alive = Sec(30);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(SmallSpec("v"), 4);
  // Enough parallel instances that their footprints interleave.
  rt.SubmitTrace({{Sec(1), fn}, {Sec(1), fn}, {Sec(1), fn}, {Sec(1), fn}});
  rt.RunUntil(Minutes(5));
  EXPECT_EQ(rt.agent(fn).live_instances(), 0u);
  // Vanilla unplug had to migrate pages (interleaved survivors/page cache).
  EXPECT_GT(rt.guest(fn).hotplug().total_pages_migrated(), 0u);
}

TEST(FaasRuntimeTest, StaticPolicyNeverUnplugs) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kStatic;
  cfg.host_capacity = GiB(32);
  cfg.keep_alive = Sec(30);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(SmallSpec("st"), 4);
  const uint64_t committed_boot = rt.host().committed();
  rt.SubmitTrace({{Sec(1), fn}, {Sec(1), fn}});
  rt.RunUntil(Minutes(3));
  EXPECT_EQ(rt.agent(fn).requests().size(), 2u);
  // Commitment never moved: the idle-memory pathology of Fig 1.
  EXPECT_EQ(rt.host().committed(), committed_boot);
  EXPECT_EQ(rt.guest(fn).virtio_mem().total_unplugged_bytes(), 0u);
}

TEST(FaasRuntimeTest, StaticColdStartHasNoVmmDelayAndNoNestedFaults) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kStatic;
  cfg.host_capacity = GiB(32);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(SmallSpec("st"), 2);
  rt.SubmitTrace({{Sec(1), fn}});
  rt.RunUntil(Minutes(1));
  ASSERT_EQ(rt.agent(fn).cold_starts().size(), 1u);
  EXPECT_EQ(rt.agent(fn).cold_starts()[0].vmm, 0);

  // Squeezy twin: plug delay + first-touch nested faults make the cold
  // start slower (paper §6.2.1: 3-35% + 35-45 ms plug).
  RuntimeConfig cfg2 = cfg;
  cfg2.policy = ReclaimPolicy::kSqueezy;
  FaasRuntime rt2(cfg2);
  const int fn2 = rt2.AddFunction(SmallSpec("sq"), 2);
  rt2.SubmitTrace({{Sec(1), fn2}});
  rt2.RunUntil(Minutes(1));
  ASSERT_EQ(rt2.agent(fn2).cold_starts().size(), 1u);
  const ColdStartBreakdown& dynamic = rt2.agent(fn2).cold_starts()[0];
  const ColdStartBreakdown& fixed = rt.agent(fn).cold_starts()[0];
  EXPECT_GE(dynamic.vmm, Msec(25));
  EXPECT_GT(dynamic.total(), fixed.total());
  // But the penalty is bounded (paper: 3-35%).
  EXPECT_LT(static_cast<double>(dynamic.total()),
            1.5 * static_cast<double>(fixed.total()));
}

TEST(FaasRuntimeTest, PendingScaleUpsServedAfterReclaim) {
  // Host fits boot + ~1 instance; the 2nd instance must wait until the
  // 1st is evicted and unplugged.
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.keep_alive = Sec(20);
  FunctionSpec spec = SmallSpec("tight");
  // Boot commit: base 512 + shared 64 MiB; 1 unit = 256 MiB.
  cfg.host_capacity = MiB(512) + MiB(64) + MiB(256) + kMemoryBlockBytes + MiB(256);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(spec, 4);

  // One warm-up request, then a burst of four concurrent ones: the host
  // only fits two additional instances, so the rest become pending and are
  // served once pressure-evicted instances release their memory.
  rt.SubmitTrace(
      {{Sec(1), fn}, {Sec(2), fn}, {Sec(2), fn}, {Sec(2), fn}, {Sec(2), fn}});
  rt.RunUntil(Sec(2) + Msec(500));
  EXPECT_GE(rt.pending_scaleups(), 1u);
  rt.RunUntil(Minutes(4));
  EXPECT_EQ(rt.pending_scaleups(), 0u);
  EXPECT_EQ(rt.agent(fn).requests().size(), 5u);
}

TEST(FaasRuntimeTest, MemoryPressureEvictsIdleInstancesEarly) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.keep_alive = Minutes(10);  // Idle instances would linger...
  FunctionSpec spec = SmallSpec("p");
  cfg.host_capacity = MiB(512) + MiB(64) + MiB(512) + MiB(128);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(spec, 4);
  // Two sequential requests -> up to 2 idle instances (2 x 256 MiB fits).
  rt.SubmitTrace({{Sec(1), fn}, {Sec(2), fn}, {Minutes(1), fn}, {Minutes(1), fn},
                  {Minutes(1), fn}});
  rt.RunUntil(Minutes(5));
  // All requests served: pressure eviction freed room despite keep-alive.
  EXPECT_EQ(rt.agent(fn).requests().size(), 5u);
  EXPECT_GT(rt.agent(fn).total_evictions(), 0u);
}

TEST(FaasRuntimeTest, HarvestBufferMakesSecondColdStartFast) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kHarvestOpts;
  cfg.host_capacity = GiB(32);
  cfg.keep_alive = Sec(10);
  cfg.harvest_buffer_units = 1;
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(SmallSpec("h"), 4);
  // First instance: cold plug.  After eviction its memory goes to the
  // buffer.  Second cold start consumes the buffer: near-zero VMM delay.
  rt.SubmitTrace({{Sec(1), fn}, {Minutes(2), fn}});
  rt.RunUntil(Minutes(4));
  ASSERT_EQ(rt.agent(fn).cold_starts().size(), 2u);
  EXPECT_GE(rt.agent(fn).cold_starts()[0].vmm, Msec(25));
  EXPECT_LE(rt.agent(fn).cold_starts()[1].vmm, Msec(2));
}

TEST(FaasRuntimeTest, ReclaimThroughputSqueezyBeatsVanilla) {
  auto run = [](ReclaimPolicy policy) {
    RuntimeConfig cfg;
    cfg.policy = policy;
    cfg.host_capacity = GiB(64);
    cfg.keep_alive = Sec(20);
    FaasRuntime rt(cfg);
    const int fn = rt.AddFunction(SmallSpec("tp"), 8);
    std::vector<Invocation> trace;
    for (int i = 0; i < 8; ++i) {
      trace.push_back({Sec(1), fn});
    }
    rt.SubmitTrace(trace);
    rt.RunUntil(Minutes(5));
    return rt.ReclaimThroughputMiBps(fn);
  };
  const double vanilla = run(ReclaimPolicy::kVirtioMem);
  const double squeezy = run(ReclaimPolicy::kSqueezy);
  ASSERT_GT(vanilla, 0.0);
  ASSERT_GT(squeezy, 0.0);
  EXPECT_GT(squeezy / vanilla, 3.0);  // Paper Fig 8: ~7x geomean.
}

TEST(FaasRuntimeTest, BurstyTraceEndToEndDeterministic) {
  auto run = [](uint64_t seed) {
    RuntimeConfig cfg;
    cfg.policy = ReclaimPolicy::kSqueezy;
    cfg.host_capacity = GiB(64);
    cfg.seed = seed;
    FaasRuntime rt(cfg);
    const int fn = rt.AddFunction(SmallSpec("d"), 8);
    Rng rng(seed);
    BurstyTraceConfig tcfg;
    tcfg.duration = Minutes(5);
    tcfg.function = fn;
    rt.SubmitTrace(GenerateBurstyTrace(tcfg, rng));
    rt.RunUntil(Minutes(8));
    return rt.agent(fn).latencies().Sum();
  };
  EXPECT_EQ(run(7), run(7));  // Bit-identical reruns.
  EXPECT_NE(run(7), run(8));  // Seeds matter.
}

TEST(MicroVmPoolTest, ColdBootThenWarmReuse) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  CpuAccountant cpu(Sec(1));
  Hypervisor hv(&host, &cost, &cpu);
  EventQueue events;
  MicroVmPoolConfig mcfg;
  mcfg.keep_alive = Sec(30);
  MicroVmPool pool(&events, &hv, &host, SmallSpec("uvm"), mcfg);

  pool.Submit();
  events.RunUntil(Sec(20));
  EXPECT_EQ(pool.vm_count(), 1u);
  EXPECT_EQ(pool.boots(), 1u);
  const auto colds = pool.ColdStarts();
  ASSERT_EQ(colds.size(), 1u);
  EXPECT_EQ(colds[0].vmm, cost.microvm_boot);

  pool.Submit();  // Warm reuse: same VM, no boot.
  events.RunUntil(Sec(25));
  EXPECT_EQ(pool.boots(), 1u);
  EXPECT_EQ(pool.Latencies().count(), 2u);

  // Keep-alive expiry shuts the VM down and releases everything.
  events.RunUntil(Minutes(3));
  EXPECT_EQ(pool.live_vms(), 0u);
  EXPECT_EQ(pool.shutdowns(), 1u);
  EXPECT_EQ(host.populated(), 0u);
  EXPECT_EQ(host.committed(), 0u);
}

TEST(MicroVmPoolTest, ParallelRequestsBootParallelVms) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  EventQueue events;
  MicroVmPool pool(&events, &hv, &host, SmallSpec("uvm"), MicroVmPoolConfig{});
  pool.Submit();
  pool.Submit();
  pool.Submit();
  events.RunUntil(Minutes(1));
  EXPECT_EQ(pool.vm_count(), 3u);
  EXPECT_EQ(pool.Latencies().count(), 3u);
}

TEST(MicroVmPoolTest, FootprintExceedsSharedModel) {
  // 1:1 footprint includes guest OS + deps + anon; the N:1 marginal cost
  // is roughly the anon working set (paper Fig 11b: 2.53x average).
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  EventQueue events;
  const FunctionSpec spec = SmallSpec("fp");
  MicroVmPool pool(&events, &hv, &host, spec, MicroVmPoolConfig{});
  pool.Submit();
  events.RunUntil(Minutes(1));
  const uint64_t footprint = pool.InstanceFootprint(0);
  EXPECT_GT(footprint, spec.anon_working_set + spec.file_deps_bytes);
  EXPECT_GT(static_cast<double>(footprint),
            1.8 * static_cast<double>(spec.anon_working_set));
}

}  // namespace
}  // namespace squeezy
