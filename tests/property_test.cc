// Randomized property tests (parameterized sweeps): the system-wide
// invariants of DESIGN.md §6 must survive arbitrary operation sequences.
#include <gtest/gtest.h>

#include <functional>
#include <ios>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/squeezy.h"
#include "src/faas/function.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

// --- Vanilla guest fuzz: mixed process/file/hotplug/balloon ops ---------------

class GuestFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(GuestFuzzTest, MixedOperationsKeepInvariants) {
  const uint64_t seed = GetParam();
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(2);
  cfg.seed = seed;
  cfg.unplug_timeout = Minutes(1);
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(MiB(512), 0);

  Rng rng(seed * 2654435761ull + 1);
  std::vector<Pid> live;
  std::vector<int32_t> files;
  files.push_back(guest.CreateFile("f0", MiB(32)));

  for (int step = 0; step < 300; ++step) {
    switch (rng.UniformInt(0, 6)) {
      case 0: {  // Spawn + touch.
        const Pid pid = guest.CreateProcess();
        guest.TouchAnon(pid, static_cast<uint64_t>(rng.UniformInt(1, 64)) * MiB(1), 0);
        if (guest.Alive(pid)) {
          live.push_back(pid);
        }
        break;
      }
      case 1: {  // Exit.
        if (!live.empty()) {
          const size_t i =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
          guest.Exit(live[i]);
          live[i] = live.back();
          live.pop_back();
        }
        break;
      }
      case 2: {  // Partial free + re-touch.
        if (!live.empty()) {
          const Pid pid = live[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
          const uint64_t freed = guest.FreeAnon(pid, MiB(8));
          guest.TouchAnon(pid, freed, 0);
          if (!guest.Alive(pid)) {
            for (size_t i = 0; i < live.size(); ++i) {
              if (live[i] == pid) {
                live[i] = live.back();
                live.pop_back();
                break;
              }
            }
          }
        }
        break;
      }
      case 3: {  // File touch (shared cache).
        if (!live.empty()) {
          const Pid pid = live[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
          guest.TouchFile(pid, files[0], MiB(16), 0);
        }
        break;
      }
      case 4:  // Plug.
        guest.PlugMemory(kMemoryBlockBytes, 0);
        break;
      case 5:  // Unplug (may migrate or fail under pressure: both legal).
        guest.UnplugMemory(kMemoryBlockBytes, 0);
        break;
      case 6:  // Balloon round-trip.
        guest.BalloonReclaim(MiB(16), 0);
        guest.balloon().Deflate(MiB(16), guest.memmap(), &guest.movable_zone());
        break;
    }
    // Invariants checked every step.
    ASSERT_TRUE(guest.movable_zone().CheckFreeLists());
    ASSERT_TRUE(guest.normal_zone().CheckFreeLists());
    // Occupancy counters match full scans on a sampled block.
    const BlockIndex b = static_cast<BlockIndex>(
        rng.UniformInt(0, static_cast<int64_t>(guest.memmap().block_count()) - 1));
    if (guest.memmap().block_state(b) == BlockState::kOnline) {
      ASSERT_EQ(guest.memmap().BlockOccupied(b),
                guest.memmap().CountBlockPages(b, PageState::kAllocated));
    }
  }
  // Tear down everything: zones must drain to zero allocations.
  for (const Pid pid : live) {
    guest.Exit(pid);
  }
  guest.balloon().Deflate(GiB(1), guest.memmap(), &guest.movable_zone());
  EXPECT_EQ(guest.movable_zone().allocated_pages(),
            guest.page_cache().total_cached_pages());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestFuzzTest, testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --- Squeezy fuzz across partition geometries ---------------------------------

class SqueezyFuzzTest
    : public testing::TestWithParam<std::tuple<uint64_t /*partition MiB*/, uint32_t /*N*/,
                                               uint64_t /*seed*/>> {};

TEST_P(SqueezyFuzzTest, PartitionStateMachineConsistent) {
  const auto [part_mib, nr, seed] = GetParam();
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = part_mib * MiB(1);
  scfg.nr_partitions = nr;
  scfg.shared_bytes = MiB(128);
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = seed;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);

  Rng rng(seed + 7);
  std::vector<Pid> live;
  for (int step = 0; step < 200; ++step) {
    const int64_t op = rng.UniformInt(0, 3);
    if (op == 0 && sqz.populated_partitions() < nr) {
      guest.PlugMemory(scfg.partition_bytes, 0);
    } else if (op == 1 && sqz.ready_partitions() > 0) {
      const Pid pid = guest.CreateProcess();
      ASSERT_TRUE(sqz.SqueezyEnable(pid).has_value());
      const uint64_t bytes =
          static_cast<uint64_t>(rng.UniformInt(1, static_cast<int64_t>(part_mib) - 32)) *
          MiB(1);
      ASSERT_FALSE(guest.TouchAnon(pid, bytes, 0).oom);
      live.push_back(pid);
    } else if (op == 2 && !live.empty()) {
      const size_t i =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      guest.Exit(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (op == 3 && sqz.ready_partitions() > 0) {
      const UnplugOutcome out = guest.UnplugMemory(scfg.partition_bytes, 0);
      ASSERT_EQ(out.pages_migrated, 0u);
    }

    // State-machine invariants.
    uint32_t assigned = 0;
    for (size_t p = 0; p < sqz.partition_count(); ++p) {
      const Partition& part = sqz.partition(static_cast<int32_t>(p));
      switch (part.state) {
        case PartitionState::kUnplugged:
          ASSERT_EQ(part.populated_blocks, 0u);
          ASSERT_EQ(part.users, 0u);
          break;
        case PartitionState::kPopulating:
          ASSERT_GT(part.populated_blocks, 0u);
          ASSERT_LT(part.populated_blocks, part.nr_blocks);
          break;
        case PartitionState::kReady:
          ASSERT_EQ(part.populated_blocks, part.nr_blocks);
          ASSERT_EQ(part.users, 0u);
          ASSERT_EQ(part.zone->allocated_pages(), 0u);
          break;
        case PartitionState::kAssigned:
          ASSERT_GT(part.users, 0u);
          ++assigned;
          break;
      }
    }
    ASSERT_EQ(assigned, live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SqueezyFuzzTest,
    testing::Combine(testing::Values(128u, 256u, 768u), testing::Values(2u, 4u, 8u),
                     testing::Values(1u, 2u)),
    [](const testing::TestParamInfo<std::tuple<uint64_t, uint32_t, uint64_t>>& param_info) {
      return "p" + std::to_string(std::get<0>(param_info.param)) + "mib_n" +
             std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

// --- Reclaim-latency monotonicity sweep ----------------------------------------

class ReclaimScalingTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ReclaimScalingTest, SqueezyUnplugLinearInBlocks) {
  const uint64_t mib = GetParam();
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = mib * MiB(1);
  scfg.nr_partitions = 2;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);
  guest.PlugMemory(scfg.partition_bytes, 0);
  const UnplugOutcome out = guest.UnplugMemory(scfg.partition_bytes, 0);
  ASSERT_TRUE(out.complete);
  // Latency = request fixed + blocks * (scan + offline + exit).
  const DurationNs per_block = cost.isolate_page * kPagesPerBlock + cost.block_offline_fixed +
                               cost.block_unplug_exit;
  const DurationNs expected =
      cost.unplug_request_fixed + static_cast<DurationNs>(BytesToBlocks(mib * MiB(1))) * per_block;
  EXPECT_EQ(out.latency(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReclaimScalingTest,
                         testing::Values(128u, 256u, 512u, 1024u, 1536u, 2048u),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return std::to_string(param_info.param) + "mib";
                         });

// --- Timer-wheel fuzz: wheel vs the old binary heap, op for op -----------------

// The determinism contract — events fire in pure (timestamp, scheduling
// sequence) order, cancellations only remove their own event, the clock
// advances identically — must hold for ANY interleaving of ScheduleAt /
// ScheduleAfter / Cancel / AdvanceBy / RunUntil, including events that
// schedule and cancel other events from inside their handlers.  The old
// single priority queue survives as EventQueue::Impl::kBinaryHeap, so it
// IS the reference model: both implementations replay one random op
// script and must produce identical ids, cancel results, firing logs,
// clocks and pending counts at every checkpoint.
class EventQueueWheelFuzzTest : public testing::TestWithParam<uint64_t> {};

namespace event_queue_fuzz {

struct Op {
  enum Kind { kSchedule, kCancel, kAdvance, kRunUntil } kind;
  int64_t a = 0;  // kSchedule: delay ns (absolute-from-now); kCancel: id
                  // index; kAdvance/kRunUntil: duration ns.
  int tag = 0;    // kSchedule: handler tag.
};

struct Replay {
  std::vector<std::pair<int, TimeNs>> fired;
  std::vector<EventId> ids;
  std::vector<bool> cancel_results;
  std::vector<TimeNs> clocks;      // now() after every RunUntil.
  std::vector<size_t> pendings;    // pending() after every RunUntil.
};

inline Replay Run(EventQueue::Impl impl, const std::vector<Op>& script) {
  EventQueue q(impl);
  Replay r;
  // Handlers are pure functions of their tag, so both queues behave
  // identically as long as they fire in the same order.
  std::function<void(int)> on_fire = [&](int tag) {
    r.fired.push_back({tag, q.now()});
    if (tag % 7 == 3) {
      // Nested same-instant + near-future scheduling from a handler.
      const int child = tag + 1000000;
      q.ScheduleAfter((tag % 5) * Usec(300), [&on_fire, child] { on_fire(child); });
    }
    if (tag % 11 == 5 && !r.ids.empty()) {
      // Handler-driven cancellation of an arbitrary earlier id.
      r.cancel_results.push_back(
          q.Cancel(r.ids[static_cast<size_t>(tag) % r.ids.size()]));
    }
  };
  for (const Op& op : script) {
    switch (op.kind) {
      case Op::kSchedule: {
        const int tag = op.tag;
        r.ids.push_back(
            q.ScheduleAt(q.now() + op.a, [&on_fire, tag] { on_fire(tag); }));
        break;
      }
      case Op::kCancel:
        if (!r.ids.empty()) {
          r.cancel_results.push_back(
              q.Cancel(r.ids[static_cast<size_t>(op.a) % r.ids.size()]));
        }
        break;
      case Op::kAdvance:
        q.AdvanceBy(op.a);
        break;
      case Op::kRunUntil:
        q.RunUntil(q.now() + op.a);
        r.clocks.push_back(q.now());
        r.pendings.push_back(q.pending());
        break;
    }
  }
  q.RunAll();
  r.clocks.push_back(q.now());
  r.pendings.push_back(q.pending());
  return r;
}

}  // namespace event_queue_fuzz

TEST_P(EventQueueWheelFuzzTest, WheelMatchesHeapReferenceExactly) {
  using event_queue_fuzz::Op;
  const uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 3);
  std::vector<Op> script;
  int next_tag = 0;
  for (int i = 0; i < 600; ++i) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Near-future: lands in the wheel window.
        script.push_back({Op::kSchedule, Msec(rng.UniformInt(0, 2000)), next_tag++});
        break;
      }
      case 4: {  // Far-future: lands in the coarse wheel, cascades in later.
        script.push_back({Op::kSchedule, Sec(rng.UniformInt(3, 120)), next_tag++});
        break;
      }
      case 5: {  // Multi-hour: beyond the ~36 min coarse horizon — lands
                 // in the super wheel (or overflow past its ~26 day span).
        script.push_back({Op::kSchedule, Minutes(rng.UniformInt(30, 2880)), next_tag++});
        break;
      }
      case 6:  // Same-instant pileup: the FIFO contract under load.
        for (int j = 0; j < 4; ++j) {
          script.push_back({Op::kSchedule, Msec(500), next_tag++});
        }
        break;
      case 7:
        script.push_back({Op::kCancel, rng.UniformInt(0, 1 << 20), 0});
        break;
      case 8:  // AdvanceBy can jump the clock past scheduled events.
        script.push_back({Op::kAdvance, Msec(rng.UniformInt(0, 5000)), 0});
        break;
      case 9:
        script.push_back({Op::kRunUntil, Msec(rng.UniformInt(0, 30000)), 0});
        break;
    }
  }
  script.push_back({Op::kRunUntil, Minutes(3), 0});

  const event_queue_fuzz::Replay wheel =
      event_queue_fuzz::Run(EventQueue::Impl::kTimerWheel, script);
  const event_queue_fuzz::Replay heap =
      event_queue_fuzz::Run(EventQueue::Impl::kBinaryHeap, script);

  EXPECT_EQ(wheel.ids, heap.ids);
  EXPECT_EQ(wheel.cancel_results, heap.cancel_results);
  EXPECT_EQ(wheel.clocks, heap.clocks);
  EXPECT_EQ(wheel.pendings, heap.pendings);
  ASSERT_EQ(wheel.fired.size(), heap.fired.size());
  for (size_t i = 0; i < wheel.fired.size(); ++i) {
    EXPECT_EQ(wheel.fired[i], heap.fired[i]) << "divergence at event " << i;
  }
  // Sanity on the scenario itself: events fired and some were cancelled.
  EXPECT_GT(wheel.fired.size(), 100u);
  EXPECT_FALSE(wheel.cancel_results.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueWheelFuzzTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --- Cluster migration fuzz: drain/migrate/undrain sequences -------------------

// Fleet-wide memory conservation must survive ARBITRARY interleavings of
// drains, undrains and pressure migrations while a skewed trace runs:
//   * per host and at every step, committed + free == capacity with
//     committed <= capacity (an unbalanced EvictReplica/AdoptReplica pair
//     would underflow or overflow the book) and populated <= committed;
//   * no replica is double-counted mid-flight: the live instances of a
//     function across the whole fleet never exceed its replica count
//     times the concurrency cap, even while transfers are in flight;
//   * when everything quiesces, every host is back at exactly its
//     boot-time commitment, nothing is in flight, and no instance leaks.
class ClusterMigrationFuzzTest
    : public testing::TestWithParam<std::tuple<ReclaimPolicy, uint64_t /*seed*/>> {};

TEST_P(ClusterMigrationFuzzTest, RandomDrainMigrateUndrainConservesFleetMemory) {
  const auto [reclaim, seed] = GetParam();
  constexpr int kFunctions = 4;
  constexpr uint32_t kConcurrency = 8;

  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.pressure_migrate_min_pending = 1;
  cfg.host.policy = reclaim;
  cfg.host.host_capacity = MiB(2560);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = seed;
  Cluster cluster(cfg);

  FunctionSpec spec;
  spec.name = "fuzz";
  spec.vcpu_shares = 1.0;
  spec.memory_limit = MiB(256);
  spec.anon_working_set = MiB(96);
  spec.file_deps_bytes = MiB(64);
  spec.container_init_cpu = Msec(80);
  spec.function_init_cpu = Msec(120);
  spec.exec_cpu_mean = Msec(100);
  spec.exec_cv = 0.0;

  std::vector<uint64_t> boot(cluster.host_count(), 0);
  for (int f = 0; f < kFunctions; ++f) {
    const int fn = cluster.AddFunction(spec, kConcurrency);
    for (const Replica& r : cluster.replicas(fn)) {
      boot[r.host] += FaasRuntime::BootCommitment(cfg.host, spec, kConcurrency);
    }
  }

  ClusterTraceConfig trace;
  trace.duration = Minutes(6);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  cluster.SubmitTrace(GenerateClusterTrace(trace, seed));

  Rng rng(seed * 1099511628211ull + 17);
  TimeNs t = 0;
  for (int step = 0; step < 30; ++step) {
    t += Sec(rng.UniformInt(2, 20));
    cluster.RunUntil(t);
    const size_t h =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(cluster.host_count()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        cluster.DrainHost(h);  // Migrates warm replicas off, then drains.
        break;
      case 1:
        cluster.UndrainHost(h);
        break;
      case 2:
        cluster.MigratePressured();
        break;
      case 3:
        break;  // Let the trace run.
    }
    // Invariants at every step, mid-flight transfers included.
    for (size_t i = 0; i < cluster.host_count(); ++i) {
      const FaasRuntime& host = cluster.host(i);
      ASSERT_LE(host.committed(), host.host_capacity()) << "step " << step;
      ASSERT_EQ(host.host_capacity() - host.committed(), host.host().available());
      ASSERT_LE(host.host().populated(), host.committed()) << "step " << step;
    }
    for (int fn = 0; fn < kFunctions; ++fn) {
      size_t live = 0;
      for (const Replica& r : cluster.replicas(fn)) {
        live += cluster.host(r.host).agent(r.local_fn).live_instances();
      }
      ASSERT_LE(live, cluster.replicas(fn).size() * kConcurrency)
          << "replica double-counted at step " << step;
    }
  }

  // Quiesce: undrain nothing further, let keep-alives expire, transfers
  // land, and every unplug complete.
  cluster.RunAll();
  EXPECT_EQ(cluster.migrations_in_flight(), 0u);
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    const FaasRuntime& host = cluster.host(h);
    // HarvestVM slack would stay plugged at quiescence on non-drained
    // hosts; this fuzz sticks to the slackless drivers, so the book must
    // return to exactly boot.
    EXPECT_EQ(host.committed(), boot[h]) << ReclaimPolicyName(reclaim) << " host " << h;
    EXPECT_LE(host.host().populated(), host.committed());
    for (size_t fn = 0; fn < host.function_count(); ++fn) {
      EXPECT_EQ(host.agent(static_cast<int>(fn)).live_instances(), 0u);
    }
  }
  // Migration accounting closed out: everything captured was either
  // adopted somewhere or explicitly dropped.
  uint64_t captured = 0;
  uint64_t adopted = 0;
  for (const MigrationRecord& m : cluster.migrations()) {
    captured += m.captured;
    adopted += m.adopted;
  }
  EXPECT_EQ(adopted, cluster.migrated_instances());
  EXPECT_LE(adopted, captured);
}

INSTANTIATE_TEST_SUITE_P(
    DrainMigrate, ClusterMigrationFuzzTest,
    testing::Combine(testing::Values(ReclaimPolicy::kVirtioMem, ReclaimPolicy::kSqueezy),
                     testing::Values(1u, 2u, 3u, 4u)),
    [](const testing::TestParamInfo<std::tuple<ReclaimPolicy, uint64_t>>& param_info) {
      return std::string(ReclaimPolicyName(std::get<0>(param_info.param))) == "Squeezy"
                 ? "squeezy_s" + std::to_string(std::get<1>(param_info.param))
                 : "virtio_s" + std::to_string(std::get<1>(param_info.param));
    });

// --- Dep-cache fuzz: image residency invariants under drain/migrate churn -------

// Same drain/migrate/undrain storm, now with the cluster-wide shared
// dependency cache on.  Every function uses the SAME spec, so all four
// cluster functions intern to ONE image per host — the boot-dedup,
// sibling-adoption and eviction/re-charge paths all fire.  Invariants:
//   * book conservation per host at every step, including
//     populated <= committed (an image eviction that released commitment
//     without dropping its host backing would break this);
//   * refcount conservation: an image's refcount on a host equals the
//     memory-granted instances of every VM pinned to it, at every step;
//   * population implies residency;
//   * at quiescence the host book is exactly VM bases + plugged units
//     (none) + the registry's charged bytes — nothing leaked in either
//     direction across boot dedups, evictions and re-charges.
class DepCacheFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DepCacheFuzzTest, ResidencyRefcountsAndBooksConserved) {
  const uint64_t seed = GetParam();
  constexpr int kFunctions = 4;
  constexpr uint32_t kConcurrency = 8;

  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.pressure_migrate_min_pending = 1;
  cfg.shared_dep_cache = true;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = MiB(2560);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = seed;
  Cluster cluster(cfg);

  FunctionSpec spec;
  spec.name = "depfuzz";
  spec.vcpu_shares = 1.0;
  spec.memory_limit = MiB(256);
  spec.anon_working_set = MiB(96);
  spec.file_deps_bytes = MiB(64);
  spec.container_init_cpu = Msec(80);
  spec.function_init_cpu = Msec(120);
  spec.exec_cpu_mean = Msec(100);
  spec.exec_cv = 0.0;

  std::vector<uint64_t> base_commit(cluster.host_count(), 0);
  for (int f = 0; f < kFunctions; ++f) {
    const int fn = cluster.AddFunction(spec, kConcurrency);
    for (const Replica& r : cluster.replicas(fn)) {
      base_commit[r.host] += cfg.host.vm_base_memory;
    }
  }
  const DepCache& cache = *cluster.dep_cache();

  ClusterTraceConfig trace;
  trace.duration = Minutes(6);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  cluster.SubmitTrace(GenerateClusterTrace(trace, seed));

  auto check_residency = [&](int step) {
    for (size_t h = 0; h < cluster.host_count(); ++h) {
      const FaasRuntime& host = cluster.host(h);
      ASSERT_LE(host.committed(), host.host_capacity()) << "step " << step;
      ASSERT_LE(host.host().populated(), host.committed()) << "step " << step;
      // Refcount conservation per image on this host: the image's refs
      // must equal the granted instances of every VM pinned to it.
      std::map<DepImageId, uint64_t> granted;
      for (size_t fn = 0; fn < host.function_count(); ++fn) {
        const DepImageId img = host.dep_image(static_cast<int>(fn));
        ASSERT_NE(img, kNoDepImage);
        granted[img] += host.agent(static_cast<int>(fn)).memory_granted_instances();
      }
      for (const auto& [img, want] : granted) {
        ASSERT_EQ(cache.RefCount(h, img), want) << "host " << h << " step " << step;
        if (cache.Populated(h, img)) {
          ASSERT_TRUE(cache.Resident(h, img)) << "host " << h << " step " << step;
        }
        if (want > 0) {
          ASSERT_TRUE(cache.Resident(h, img))
              << "granted instances on an unresident image, host " << h;
        }
      }
    }
  };

  Rng rng(seed * 6364136223846793005ull + 29);
  TimeNs t = 0;
  for (int step = 0; step < 30; ++step) {
    t += Sec(rng.UniformInt(2, 20));
    cluster.RunUntil(t);
    const size_t h =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(cluster.host_count()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        cluster.DrainHost(h);
        break;
      case 1:
        cluster.UndrainHost(h);
        break;
      case 2:
        cluster.MigratePressured();
        break;
      case 3:
        break;
    }
    check_residency(step);
  }

  cluster.RunAll();
  check_residency(999);
  EXPECT_EQ(cluster.migrations_in_flight(), 0u);
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    const FaasRuntime& host = cluster.host(h);
    // Quiescence: every instance reaped, every unplug done — the book is
    // exactly the VM bases plus whatever image residencies survived.
    EXPECT_EQ(host.committed(), base_commit[h] + cache.charged_bytes(h))
        << "host " << h;
    EXPECT_LE(host.host().populated(), host.committed());
    for (size_t fn = 0; fn < host.function_count(); ++fn) {
      EXPECT_EQ(host.agent(static_cast<int>(fn)).live_instances(), 0u);
      EXPECT_EQ(cache.RefCount(h, host.dep_image(static_cast<int>(fn))), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepCacheFuzzTest, testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --- Snapshot fuzz: record/evict/restore churn with both registries on -----------

// The DepCacheFuzzTest storm with the snapshot registry on too: every
// cold start after the first fully-warm idle restores from the shared
// slot, so Squeezy plugs full units while reserving only the recorded
// working set (the snapshot_unreserved shortfall pool).  Invariants:
//   * the host book never exceeds capacity and populated <= committed at
//     every step — a restore that discounted commitment without bounding
//     what it populates would break the second;
//   * recorded images describe the spec (heap == anon working set) unless
//     a stale recording is mid-re-record;
//   * at quiescence every discount has unwound through its unplug: the
//     book is exactly VM bases + the dep cache's charged bytes, same as
//     with snapshots off — the discount is a loan, not a leak.
class SnapshotFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotFuzzTest, RestoreDiscountsUnwindUnderDrainMigrateChurn) {
  const uint64_t seed = GetParam();
  constexpr int kFunctions = 4;
  constexpr uint32_t kConcurrency = 8;

  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.pressure_migrate_min_pending = 1;
  cfg.shared_dep_cache = true;
  cfg.shared_snapshots = true;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = MiB(2560);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = seed;
  Cluster cluster(cfg);

  FunctionSpec spec;
  spec.name = "snapfuzz";
  spec.vcpu_shares = 1.0;
  spec.memory_limit = MiB(256);
  spec.anon_working_set = MiB(96);
  spec.file_deps_bytes = MiB(64);
  spec.container_init_cpu = Msec(80);
  spec.function_init_cpu = Msec(120);
  spec.exec_cpu_mean = Msec(100);
  spec.exec_cv = 0.0;

  std::vector<uint64_t> base_commit(cluster.host_count(), 0);
  for (int f = 0; f < kFunctions; ++f) {
    const int fn = cluster.AddFunction(spec, kConcurrency);
    for (const Replica& r : cluster.replicas(fn)) {
      base_commit[r.host] += cfg.host.vm_base_memory;
    }
  }
  const DepCache& cache = *cluster.dep_cache();
  const SnapshotStore& store = *cluster.snapshot_store();

  ClusterTraceConfig trace;
  trace.duration = Minutes(6);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  cluster.SubmitTrace(GenerateClusterTrace(trace, seed));

  auto check_books = [&](int step) {
    for (size_t h = 0; h < cluster.host_count(); ++h) {
      const FaasRuntime& host = cluster.host(h);
      ASSERT_LE(host.committed(), host.host_capacity()) << "step " << step;
      ASSERT_LE(host.host().populated(), host.committed()) << "step " << step;
      for (size_t fn = 0; fn < host.function_count(); ++fn) {
        const SnapshotId snap = host.snapshot_id(static_cast<int>(fn));
        ASSERT_NE(snap, kNoSnapshot) << "step " << step;
        if (store.Recorded(snap)) {
          ASSERT_EQ(store.Image(snap).heap_bytes, spec.anon_working_set)
              << "step " << step;
        }
      }
    }
  };

  Rng rng(seed * 6364136223846793005ull + 31);
  TimeNs t = 0;
  for (int step = 0; step < 30; ++step) {
    t += Sec(rng.UniformInt(2, 20));
    cluster.RunUntil(t);
    const size_t h =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(cluster.host_count()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        cluster.DrainHost(h);
        break;
      case 1:
        cluster.UndrainHost(h);
        break;
      case 2:
        cluster.MigratePressured();
        break;
      case 3:
        break;
    }
    check_books(step);
  }

  cluster.RunAll();
  check_books(999);
  // All four cluster functions share one spec, so one snapshot slot; the
  // churn is long enough that it recorded and restored at least once.
  EXPECT_EQ(store.stats().functions, 1u);
  EXPECT_GE(store.stats().recordings, 1u);
  EXPECT_GT(store.stats().restores, 0u);
  EXPECT_GT(store.stats().prefetch_bytes, 0u);
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    const FaasRuntime& host = cluster.host(h);
    EXPECT_EQ(host.committed(), base_commit[h] + cache.charged_bytes(h))
        << "host " << h;
    EXPECT_LE(host.host().populated(), host.committed());
    for (size_t fn = 0; fn < host.function_count(); ++fn) {
      EXPECT_EQ(host.agent(static_cast<int>(fn)).live_instances(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzzTest, testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --- Snapshot + migration compose fuzz: delta transfers under churn --------------

// Drain/migrate/undrain churn with BOTH registries on and a drain-heavy
// op mix, so snapshot-hit transfers (recorded portion skips the wire, the
// destination bulk-restores it) interleave with dep-cache hits, stale
// fallbacks and partial adoptions.  Invariants on top of SnapshotFuzzTest:
//   * migration restore accounting never outruns the migrations: every
//     bulk-restored instance is an adopted one, and the wire-saved bytes
//     never exceed the anonymous state the captures actually held —
//     recorded state is discounted once, never double-counted against the
//     dep cache's separate deps_bytes discount;
//   * the fleet books conserve at every step and at quiescence the host
//     book is exactly VM bases + the dep cache's charged images — a
//     migration restore that leaked its bulk-populated pages into the
//     commitment book would break the identity.
class SnapshotMigrationFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotMigrationFuzzTest, DeltaTransfersConserveBooksUnderChurn) {
  const uint64_t seed = GetParam();
  constexpr int kFunctions = 4;
  constexpr uint32_t kConcurrency = 8;

  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.pressure_migrate_min_pending = 1;
  cfg.shared_dep_cache = true;
  cfg.shared_snapshots = true;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = MiB(2560);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(45);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = seed;
  Cluster cluster(cfg);

  FunctionSpec spec;
  spec.name = "snapmigfuzz";
  spec.vcpu_shares = 1.0;
  spec.memory_limit = MiB(256);
  spec.anon_working_set = MiB(96);
  spec.file_deps_bytes = MiB(64);
  spec.container_init_cpu = Msec(80);
  spec.function_init_cpu = Msec(120);
  spec.exec_cpu_mean = Msec(100);
  spec.exec_cv = 0.0;

  std::vector<uint64_t> base_commit(cluster.host_count(), 0);
  for (int f = 0; f < kFunctions; ++f) {
    const int fn = cluster.AddFunction(spec, kConcurrency);
    for (const Replica& r : cluster.replicas(fn)) {
      base_commit[r.host] += cfg.host.vm_base_memory;
    }
  }
  const DepCache& cache = *cluster.dep_cache();
  const SnapshotStore& store = *cluster.snapshot_store();

  ClusterTraceConfig trace;
  trace.duration = Minutes(6);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  cluster.SubmitTrace(GenerateClusterTrace(trace, seed));

  auto check_invariants = [&](int step) {
    for (size_t h = 0; h < cluster.host_count(); ++h) {
      const FaasRuntime& host = cluster.host(h);
      ASSERT_LE(host.committed(), host.host_capacity()) << "step " << step;
      ASSERT_LE(host.host().populated(), host.committed()) << "step " << step;
    }
    // Migration restore accounting: every bulk-restored instance was an
    // adopted one, and the recorded bytes that skipped the wire never
    // exceed the anonymous state the captures held (each instance's
    // recorded share is bounded by its working set — counting it twice,
    // or counting deps_bytes as recorded, would overflow this bound).
    const SnapshotStats& s = store.stats();
    ASSERT_LE(s.migration_restores, cluster.migrated_instances()) << "step " << step;
    uint64_t captured_anon_cap = 0;
    for (const MigrationRecord& m : cluster.migrations()) {
      captured_anon_cap += static_cast<uint64_t>(m.captured) * spec.anon_working_set;
    }
    ASSERT_LE(s.migration_wire_saved_bytes, captured_anon_cap) << "step " << step;
    ASSERT_GE(s.migration_restores, s.migration_hits) << "step " << step;
  };

  Rng rng(seed * 2862933555777941757ull + 17);
  TimeNs t = 0;
  for (int step = 0; step < 30; ++step) {
    t += Sec(rng.UniformInt(2, 16));
    cluster.RunUntil(t);
    const size_t h =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(cluster.host_count()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:
      case 1:
        cluster.DrainHost(h);  // Drain-heavy: the snapshot-hit path's trigger.
        break;
      case 2:
        cluster.UndrainHost(h);
        break;
      case 3:
        cluster.MigratePressured();
        break;
    }
    check_invariants(step);
  }

  cluster.RunAll();
  check_invariants(999);
  // The churn migrated warm state, and at least one transfer shipped only
  // the delta (4 hosts share one recording slot, so destinations hold a
  // valid recording whenever the source's capture is fresh).
  EXPECT_GT(cluster.migrated_instances(), 0u);
  EXPECT_GT(store.stats().migration_hits, 0u);
  EXPECT_GT(store.stats().migration_wire_saved_bytes, 0u);
  // Quiescence: every keep-alive expired and every discount unwound — the
  // book is exactly VM bases + charged dep images, bit-for-bit the same
  // identity the snapshot-off and migration-off fuzzes lock.
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    const FaasRuntime& host = cluster.host(h);
    EXPECT_EQ(host.committed(), base_commit[h] + cache.charged_bytes(h)) << "host " << h;
    for (size_t fn = 0; fn < host.function_count(); ++fn) {
      EXPECT_EQ(host.agent(static_cast<int>(fn)).live_instances(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotMigrationFuzzTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --- Sharded kernel fuzz: per-host shards vs the single global queue ------------

// The sharded kernel's whole contract is "bit-identical to the single
// queue at any thread count" (src/sim/sharded_event_queue.h).  One random
// churn script — drain/undrain/pressure-migrate while a skewed trace runs
// — is replayed under the single-queue wheel and under kSharded at 1, 2
// and 8 threads, with the shared registries both attached (serial
// lockstep: handlers touch cross-host state) and detached (parallel
// epochs: the fast path).  Every replay must produce a byte-identical
// fleet digest: per-request firing logs, cold-start breakdowns, host
// books, migration records, the routing hash and the fleet summary.
class ShardedVsSingleQueueFuzzTest
    : public testing::TestWithParam<std::tuple<bool /*registries*/, uint64_t /*seed*/>> {};

namespace sharded_fuzz {

// Byte-comparable dump of everything observable about a finished run.
// Doubles print as hexfloat so equal digests mean bit-equal values.
inline std::string FleetDigest(Cluster& cluster, TimeNs horizon) {
  std::ostringstream os;
  os << std::hexfloat;
  os << "hash " << cluster.routing_hash() << " unplaced "
     << cluster.unplaced_invocations() << " migrated "
     << cluster.migrated_instances() << " reaped "
     << cluster.migration_reaped_instances() << " inflight "
     << cluster.migrations_in_flight() << "\n";
  for (const MigrationRecord& m : cluster.migrations()) {
    os << "mig " << m.cluster_fn << " " << m.src_host << ">" << m.dst_host << " cap "
       << m.captured << " ad " << m.adopted << " bytes " << m.bytes_sent << " down "
       << m.downtime << " t " << m.started_at << ".." << m.done_at << "\n";
  }
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    const FaasRuntime& host = cluster.host(h);
    os << "host " << h << " committed " << host.committed() << " populated "
       << host.host().populated() << " routed " << cluster.routed_to(h) << " pending "
       << host.total_pending_scaleups() << "\n";
    for (size_t fn = 0; fn < host.function_count(); ++fn) {
      const Agent& agent = host.agent(static_cast<int>(fn));
      os << " fn " << fn << " spawns " << agent.total_spawns() << " evict "
         << agent.total_evictions() << " live " << agent.live_instances() << "\n";
      for (const RequestRecord& r : agent.requests()) {
        os << "  req " << r.arrival << " " << r.done << " " << r.cold << "\n";
      }
      for (const ColdStartBreakdown& c : agent.cold_starts()) {
        os << "  cold " << c.vmm << " " << c.container_init << " " << c.function_init
           << " " << c.first_exec << "\n";
      }
    }
  }
  const FleetSummary s = cluster.Summarize(horizon);
  os << "sum req " << s.completed_requests << " cold " << s.cold_starts << " evict "
     << s.evictions << " pend " << s.pending_scaleups_total << " unplug "
     << s.unplug_failures << " p50 " << s.latency_p50 << " p99 " << s.latency_p99
     << " mean " << s.latency_mean << " peak " << s.committed_peak << " gibs "
     << s.committed_gib_seconds << "\n";
  return os.str();
}

// One full churn run: build the fleet, run the trace with random
// drain/undrain/pressure churn, quiesce, digest.  Every input is a pure
// function of (impl, threads, registries, seed, placement knobs) — and
// the digest must be a pure function of (registries, seed, policy) alone:
// neither the kernel impl, the thread count, nor the placement impl may
// leak into it.
inline std::string RunChurn(EventQueue::Impl impl, size_t threads, bool registries,
                            uint64_t seed,
                            PlacementImpl placement_impl = PlacementImpl::kDefault,
                            PlacementPolicy policy = PlacementPolicy::kMemoryAwareBinPack) {
  constexpr int kFunctions = 4;
  constexpr uint32_t kConcurrency = 8;
  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = policy;
  cfg.placement_impl = placement_impl;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.pressure_migrate_min_pending = 1;
  cfg.shared_dep_cache = registries;
  cfg.shared_snapshots = registries;
  cfg.queue_impl = impl;
  cfg.sim_threads = threads;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.host_capacity = MiB(2560);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = seed;
  Cluster cluster(cfg);

  FunctionSpec spec;
  spec.name = "shard_fuzz";
  spec.vcpu_shares = 1.0;
  spec.memory_limit = MiB(256);
  spec.anon_working_set = MiB(96);
  spec.file_deps_bytes = MiB(64);
  spec.container_init_cpu = Msec(80);
  spec.function_init_cpu = Msec(120);
  spec.exec_cpu_mean = Msec(100);
  spec.exec_cv = 0.0;
  for (int f = 0; f < kFunctions; ++f) {
    cluster.AddFunction(spec, kConcurrency);
  }

  ClusterTraceConfig trace;
  trace.duration = Minutes(4);
  trace.nr_functions = kFunctions;
  trace.total_base_rate_per_sec = 2.0;
  trace.zipf_s = 1.2;
  trace.bursty_fraction = 0.5;
  trace.burst_multiplier = 30.0;
  trace.mean_burst_len = Sec(20);
  trace.mean_gap = Sec(60);
  cluster.SubmitTrace(GenerateClusterTrace(trace, seed));

  Rng rng(seed * 1099511628211ull + 29);
  TimeNs t = 0;
  for (int step = 0; step < 24; ++step) {
    t += Sec(rng.UniformInt(2, 15));
    cluster.RunUntil(t);
    const size_t h = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(cluster.host_count()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        cluster.DrainHost(h);
        break;
      case 1:
        cluster.UndrainHost(h);
        break;
      case 2:
        cluster.MigratePressured();
        break;
      case 3:
        break;  // Let the trace run.
    }
  }
  cluster.RunAll();
  return FleetDigest(cluster, Minutes(6));
}

}  // namespace sharded_fuzz

TEST_P(ShardedVsSingleQueueFuzzTest, ShardedMatchesSingleQueueAtAnyThreadCount) {
  const auto [registries, seed] = GetParam();
  const std::string reference =
      sharded_fuzz::RunChurn(EventQueue::Impl::kTimerWheel, 1, registries, seed);
  for (const size_t threads : {1u, 2u, 8u}) {
    const std::string sharded =
        sharded_fuzz::RunChurn(EventQueue::Impl::kSharded, threads, registries, seed);
    EXPECT_EQ(reference, sharded)
        << "sharded kernel diverged from the single queue at " << threads
        << " threads (registries " << (registries ? "on" : "off") << ", seed " << seed
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ShardedVsSingleQueueFuzzTest,
    testing::Combine(testing::Bool(), testing::Values(1u, 2u, 3u)),
    [](const testing::TestParamInfo<std::tuple<bool, uint64_t>>& param_info) {
      return std::string(std::get<0>(param_info.param) ? "registries" : "plain") +
             "_s" + std::to_string(std::get<1>(param_info.param));
    });

// --- Indexed placement fuzz: HostIndex decisions vs the snapshot scan ------------
//
// The placement index's whole contract is "bit-identical decisions to the
// full O(hosts) snapshot scan" (src/cluster/host_index.h).  The same churn
// script as the sharded fuzz — drains, undrains and pressure migrations
// interleaved with a skewed trace, i.e. every operation that mutates the
// index mid-run — is replayed op-for-op under PlacementImpl::kScan and
// PlacementImpl::kIndexed for every placement policy, with the shared
// registries both on (snapshot restores + dep-cache adoption change which
// hosts can admit) and off.  The byte-identical fleet digest covers every
// placement consequence: per-request logs, routing hash, migration
// records, host books and the fleet summary.
class IndexedVsScanPlacementFuzzTest
    : public testing::TestWithParam<std::tuple<PlacementPolicy, bool /*registries*/>> {};

TEST_P(IndexedVsScanPlacementFuzzTest, IndexedMatchesScanThroughChurn) {
  const auto [policy, registries] = GetParam();
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const std::string scan =
        sharded_fuzz::RunChurn(EventQueue::Impl::kTimerWheel, 1, registries, seed,
                               PlacementImpl::kScan, policy);
    const std::string indexed =
        sharded_fuzz::RunChurn(EventQueue::Impl::kTimerWheel, 1, registries, seed,
                               PlacementImpl::kIndexed, policy);
    EXPECT_EQ(scan, indexed)
        << "indexed placement diverged from the snapshot scan under "
        << PlacementPolicyName(policy) << " (registries "
        << (registries ? "on" : "off") << ", seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Placements, IndexedVsScanPlacementFuzzTest,
    testing::Combine(testing::Values(PlacementPolicy::kRoundRobin,
                                     PlacementPolicy::kLeastCommitted,
                                     PlacementPolicy::kMemoryAwareBinPack,
                                     PlacementPolicy::kHintedBinPack),
                     testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<PlacementPolicy, bool>>& param_info) {
      return std::string(PlacementPolicyName(std::get<0>(param_info.param))) + "_" +
             (std::get<1>(param_info.param) ? "registries" : "plain");
    });

}  // namespace
}  // namespace squeezy
