// Live replica migration tests (MigrationPlanner + EvictReplica/
// AdoptReplica + the state-transfer CostModel).
//
// Migration contract (ClusterConfig::migration == kMigrateOnDrain):
//   * DrainHost moves the victim's warm replicas to planner-chosen
//     destination hosts instead of reaping them — post-drain invocations
//     hit warm instances, so the fleet pays FEWER cold starts than under
//     kReapOnDrain on the same trace;
//   * the donor's committed book still returns at its reclaim driver's
//     speed (Squeezy donors free memory faster than virtio-mem donors);
//   * destinations admit through the normal CanAdmit sizing — a
//     memory-tight destination adopts only what fits, never overcommits;
//   * the transfer is priced by CostModel::StateTransfer: pre-copy +
//     stop-and-copy proportional to the touched footprint and dirty rate.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/migration_planner.h"
#include "src/faas/function.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

FunctionSpec TinySpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;
  return s;
}

ClusterConfig BaseConfig(ReclaimPolicy reclaim, MigrationMode mode) {
  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.migration = mode;
  cfg.host.policy = reclaim;
  cfg.host.host_capacity = MiB(2560);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = 42;
  return cfg;
}

ClusterTraceConfig SkewedTrace() {
  ClusterTraceConfig t;
  t.duration = Minutes(6);
  t.nr_functions = 4;
  t.total_base_rate_per_sec = 2.0;
  t.zipf_s = 1.2;
  t.bursty_fraction = 0.5;
  t.burst_multiplier = 30.0;
  t.mean_burst_len = Sec(20);
  t.mean_gap = Sec(60);
  return t;
}

size_t DrainMostCommitted(Cluster& cluster, TimeNs drain_at) {
  cluster.RunUntil(drain_at);
  size_t victim = 0;
  for (size_t h = 1; h < cluster.host_count(); ++h) {
    if (cluster.host(h).committed() > cluster.host(victim).committed()) {
      victim = h;
    }
  }
  cluster.DrainHost(victim);
  return victim;
}

// Cold-start executions whose request arrived at or after `since`.
uint64_t ColdStartsSince(const Cluster& cluster, TimeNs since) {
  uint64_t cold = 0;
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    for (size_t fn = 0; fn < cluster.host(h).function_count(); ++fn) {
      for (const RequestRecord& r :
           cluster.host(h).agent(static_cast<int>(fn)).requests()) {
        cold += (r.cold && r.arrival >= since);
      }
    }
  }
  return cold;
}

// --- CostModel: the state-transfer price ------------------------------------------

TEST(StateTransferCostTest, CleanStateCollapsesToOneRound) {
  const CostModel cost = CostModel::Default();
  const StateTransferCost c = cost.StateTransfer(MiB(256), 0.0);
  EXPECT_EQ(c.rounds, 1u);
  EXPECT_EQ(c.bytes_sent, MiB(256));
  // Empty stop-and-copy: only the control round-trip pauses the replica.
  EXPECT_EQ(c.downtime, cost.migrate_round_fixed);
  EXPECT_GT(c.precopy, cost.NetBytes(MiB(256)));
}

TEST(StateTransferCostTest, DirtyStatePaysResendAndDowntime) {
  const CostModel cost = CostModel::Default();
  const StateTransferCost clean = cost.StateTransfer(MiB(256), 0.0);
  const StateTransferCost dirty = cost.StateTransfer(MiB(256), 0.25);
  EXPECT_GT(dirty.bytes_sent, clean.bytes_sent);
  EXPECT_GT(dirty.downtime, clean.downtime);
  EXPECT_EQ(dirty.rounds, cost.migrate_precopy_rounds);
  // Pre-copy shrinks the pause: downtime covers only the residual dirty
  // state, a fraction of one full round.
  EXPECT_LT(dirty.downtime, dirty.precopy);
}

TEST(StateTransferCostTest, CostScalesWithTouchedFootprintNotAFlatConstant) {
  const CostModel cost = CostModel::Default();
  DurationNs prev = 0;
  for (const uint64_t mib : {64u, 128u, 256u, 512u, 1024u}) {
    const StateTransferCost c = cost.StateTransfer(MiB(mib), 0.25);
    EXPECT_GT(c.total(), prev) << mib << " MiB";
    prev = c.total();
  }
  // The redirty fraction never diverges the series, even when callers pass
  // a nonsense dirty rate.
  const StateTransferCost capped = cost.StateTransfer(MiB(256), 5.0);
  EXPECT_LT(capped.total(), Sec(10));
}

// --- Drain migration: warm replicas land elsewhere --------------------------------

TEST(ClusterMigrationTest, DrainMigratesWarmReplicasToOtherHosts) {
  Cluster cluster(BaseConfig(ReclaimPolicy::kSqueezy, MigrationMode::kMigrateOnDrain));
  for (int f = 0; f < 4; ++f) {
    cluster.AddFunction(TinySpec("migrate"), 8);
  }
  cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
  const size_t victim = DrainMostCommitted(cluster, Minutes(3));
  const uint64_t routed_at_drain = cluster.routed_to(victim);

  // Warm state moved: at least one transfer started, every adopted
  // instance landed on a non-draining destination.
  ASSERT_FALSE(cluster.migrations().empty());
  EXPECT_GT(cluster.migrated_instances(), 0u);
  for (const MigrationRecord& m : cluster.migrations()) {
    EXPECT_EQ(m.src_host, victim);
    EXPECT_NE(m.dst_host, victim);
    EXPECT_GT(m.adopted, 0u);
    EXPECT_LE(m.adopted, m.captured);
    EXPECT_GT(m.bytes_sent, 0u);
    EXPECT_GT(m.done_at, m.started_at);
  }

  cluster.RunUntil(Minutes(8));
  // The drained host got no further routes, transfers completed, and the
  // fleet kept serving.
  EXPECT_EQ(cluster.routed_to(victim), routed_at_drain);
  EXPECT_EQ(cluster.migrations_in_flight(), 0u);
  EXPECT_GT(cluster.Summarize(Minutes(8)).completed_requests, 0u);
}

// Reclamation speed IS maintenance speed, with migration too: the donor's
// committed book returns to boot level faster under Squeezy than under
// virtio-mem, because evicted replica state flows back through the active
// reclaim driver.
TEST(ClusterMigrationTest, DonorCommittedMemoryReturnsAtDriverSpeed) {
  auto reclaim_time = [](ReclaimPolicy reclaim) {
    ClusterConfig cfg = BaseConfig(reclaim, MigrationMode::kMigrateOnDrain);
    Cluster cluster(cfg);
    const FunctionSpec spec = TinySpec("migratespeed");
    uint64_t boot_commit = 0;
    for (int f = 0; f < 4; ++f) {
      cluster.AddFunction(spec, 8);
      boot_commit += FaasRuntime::BootCommitment(cfg.host, spec, 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
    const TimeNs drain_at = Minutes(3);
    const size_t victim = DrainMostCommitted(cluster, drain_at);
    EXPECT_GT(cluster.host(victim).committed(), boot_commit);
    cluster.RunUntil(Minutes(10));
    for (const StepSeries::Point& p :
         cluster.host(victim).host().committed_series().points()) {
      if (p.t >= drain_at && static_cast<uint64_t>(p.value) <= boot_commit) {
        return p.t - drain_at;
      }
    }
    ADD_FAILURE() << "donor never returned to boot commitment under "
                  << ReclaimPolicyName(reclaim);
    return DurationNs{0};
  };
  const DurationNs squeezy = reclaim_time(ReclaimPolicy::kSqueezy);
  const DurationNs virtio = reclaim_time(ReclaimPolicy::kVirtioMem);
  EXPECT_LT(squeezy, virtio);
  EXPECT_GT(squeezy, 0);
}

// The headline: on the same trace and the same drain instant, migrating
// warm replicas beats reaping them on post-drain cold starts.
TEST(ClusterMigrationTest, FewerPostDrainColdStartsThanReapOnly) {
  auto run = [](MigrationMode mode, uint64_t* migrated) {
    Cluster cluster(BaseConfig(ReclaimPolicy::kSqueezy, mode));
    for (int f = 0; f < 4; ++f) {
      cluster.AddFunction(TinySpec("coldcount"), 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
    const TimeNs drain_at = Minutes(3);
    DrainMostCommitted(cluster, drain_at);
    cluster.RunUntil(Minutes(8));
    if (migrated != nullptr) {
      *migrated = cluster.migrated_instances();
    }
    return ColdStartsSince(cluster, drain_at);
  };
  uint64_t migrated = 0;
  const uint64_t cold_migrate = run(MigrationMode::kMigrateOnDrain, &migrated);
  const uint64_t cold_reap = run(MigrationMode::kReapOnDrain, nullptr);
  EXPECT_GT(migrated, 0u);
  EXPECT_LT(cold_migrate, cold_reap);
}

// --- Destination admission: CanAdmit sizing is never bypassed ---------------------

TEST(ClusterMigrationTest, DestinationAdoptsOnlyWhatItsMemoryAdmits) {
  // Two hosts sharing one clock.  Host 0 warms up `kWarm` instances; host
  // 1's capacity leaves headroom for exactly `kFits` plug units beyond its
  // boot footprint, so adoption must stop there.
  constexpr uint32_t kWarm = 6;
  constexpr uint32_t kFits = 2;
  const FunctionSpec spec = TinySpec("tightdst");
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.vm_base_memory = MiB(128);
  cfg.keep_alive = Minutes(5);
  cfg.seed = 7;
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const uint64_t boot = FaasRuntime::BootCommitment(cfg, spec, 8);

  EventQueue events;
  RuntimeConfig src_cfg = cfg;
  src_cfg.host_capacity = boot + 8 * plug_unit;
  FaasRuntime src(src_cfg, &events);
  RuntimeConfig dst_cfg = cfg;
  dst_cfg.host_capacity = boot + kFits * plug_unit;
  FaasRuntime dst(dst_cfg, &events);
  const int src_fn = src.AddFunction(spec, 8);
  const int dst_fn = dst.AddFunction(spec, 8);

  std::vector<Invocation> warmup;
  for (uint32_t i = 0; i < kWarm; ++i) {
    warmup.push_back({Msec(10) * i, src_fn});
  }
  src.SubmitTrace(warmup);
  events.RunUntil(Minutes(1));
  ASSERT_EQ(src.agent(src_fn).idle_instances(), kWarm);

  const ReplicaMigrationState state = src.EvictReplica(src_fn);
  EXPECT_EQ(state.warm_instances, kWarm);
  EXPECT_GT(state.state_bytes, 0u);
  EXPECT_EQ(state.deps_bytes, spec.file_deps_bytes);

  const size_t adopted = dst.AdoptReplica(dst_fn, state, events.now() + Sec(1));
  EXPECT_EQ(adopted, kFits);  // Admission stopped exactly at the headroom.
  EXPECT_LE(dst.committed(), dst.host_capacity());
  events.RunAll();
  // The adopted instances are live and warm at the destination; the rest
  // of the captured state was dropped, never overcommitted.
  EXPECT_LE(dst.committed(), dst.host_capacity());
  EXPECT_EQ(dst.total_adopted_instances(), kFits);
  // Keep-alive eventually reaps them; nothing leaks (RunAll above expired
  // the 5-minute keep-alive already).
  EXPECT_EQ(dst.agent(dst_fn).live_instances(), 0u);
}

TEST(ClusterMigrationTest, AdoptedInstancesServeWarmAfterTransferCompletes) {
  const FunctionSpec spec = TinySpec("warmserve");
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.vm_base_memory = MiB(128);
  cfg.host_capacity = GiB(8);
  cfg.keep_alive = Minutes(5);
  cfg.seed = 9;
  EventQueue events;
  FaasRuntime src(cfg, &events);
  FaasRuntime dst(cfg, &events);
  const int src_fn = src.AddFunction(spec, 8);
  const int dst_fn = dst.AddFunction(spec, 8);

  src.SubmitTrace({{Msec(0), src_fn}, {Msec(10), src_fn}});
  events.RunUntil(Minutes(1));
  const ReplicaMigrationState state = src.EvictReplica(src_fn);
  ASSERT_EQ(state.warm_instances, 2u);

  const TimeNs available_at = events.now() + Sec(3);
  ASSERT_EQ(dst.AdoptReplica(dst_fn, state, available_at), 2u);
  // Before the transfer completes the instances are not serveable.
  events.RunUntil(available_at - Sec(1));
  EXPECT_EQ(dst.agent(dst_fn).idle_instances(), 0u);
  events.RunUntil(available_at + Msec(1));
  EXPECT_EQ(dst.agent(dst_fn).idle_instances(), 2u);

  // A request now dispatches onto the adopted instance with NO cold start.
  const size_t cold_before = dst.agent(dst_fn).cold_starts().size();
  dst.agent(dst_fn).Submit();
  events.RunUntil(available_at + Minutes(1));
  ASSERT_EQ(dst.agent(dst_fn).requests().size(), 1u);
  EXPECT_FALSE(dst.agent(dst_fn).requests().back().cold);
  EXPECT_EQ(dst.agent(dst_fn).cold_starts().size(), cold_before);
}

// A draining destination refuses adoption outright.
TEST(ClusterMigrationTest, DrainingDestinationRefusesAdoption) {
  const FunctionSpec spec = TinySpec("refuse");
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(8);
  cfg.seed = 3;
  EventQueue events;
  FaasRuntime src(cfg, &events);
  FaasRuntime dst(cfg, &events);
  const int src_fn = src.AddFunction(spec, 8);
  const int dst_fn = dst.AddFunction(spec, 8);
  src.SubmitTrace({{Msec(0), src_fn}});
  events.RunUntil(Minutes(1));
  const ReplicaMigrationState state = src.EvictReplica(src_fn);
  ASSERT_EQ(state.warm_instances, 1u);
  dst.Drain();
  EXPECT_EQ(dst.AdoptReplica(dst_fn, state, events.now()), 0u);
}

// --- Pressure-triggered migration -------------------------------------------------

TEST(ClusterMigrationTest, PressureMigrationFreesDonorForStarvedScaleups) {
  // Host layout (2 hosts, every function on both): "idle" warms 4
  // instances on host 0 and goes quiet; "burst" then floods host 0 past
  // its capacity while host 1 sits at boot with 6 free plug units.  Load
  // is driven at the host agents directly so the asymmetry is exact.
  // MigratePressured must pick host 0 (the starved donor), move the idle
  // warm replicas to host 1, and thereby free the donor's commitment for
  // the burst scale-ups it is starving on.
  ClusterConfig cfg;
  cfg.nr_hosts = 2;
  cfg.placement = PlacementPolicy::kRoundRobin;
  cfg.migration = MigrationMode::kMigrateOnDrain;
  cfg.pressure_migrate_min_pending = 1;
  cfg.host.policy = ReclaimPolicy::kSqueezy;
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Minutes(10);  // The idle replicas stay warm.
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = 5;
  const FunctionSpec spec = TinySpec("pressure");
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const uint64_t boot = FaasRuntime::BootCommitment(cfg.host, spec, 8);
  // Room for boot x2 (both functions) + 6 plug units per host.
  cfg.host.host_capacity = 2 * boot + 6 * plug_unit;

  Cluster cluster(cfg);
  const int idle_fn = cluster.AddFunction(spec, 8);
  const int burst_fn = cluster.AddFunction(spec, 8);
  ASSERT_EQ(cluster.replicas(idle_fn).size(), 2u);
  const int idle_local = cluster.replicas(idle_fn)[0].local_fn;
  const int burst_local = cluster.replicas(burst_fn)[0].local_fn;
  for (int i = 0; i < 4; ++i) {
    cluster.events().ScheduleAt(Sec(1) + Msec(20) * i,
                                [&cluster, idle_local] {
                                  cluster.host(0).agent(idle_local).Submit();
                                });
  }
  for (int i = 0; i < 8; ++i) {
    cluster.events().ScheduleAt(Sec(60) + Msec(5) * i,
                                [&cluster, burst_local] {
                                  cluster.host(0).agent(burst_local).Submit();
                                });
  }
  // Stop at pressure ONSET: the first starved scale-up has just parked
  // (and its MakeRoom evicted one idle instance), but the donor still
  // holds warm state — the window where migrating beats local eviction.
  cluster.RunUntil(Sec(60) + Msec(12));

  ASSERT_GE(cluster.host(0).agent(idle_local).idle_instances(), 1u);
  ASSERT_GE(cluster.host(0).pending_scaleups(), 1u)
      << "burst must starve scale-ups on the donor";
  ASSERT_EQ(cluster.host(1).committed(), 2 * boot);

  const size_t started = cluster.MigratePressured();
  EXPECT_GT(started, 0u);
  EXPECT_GT(cluster.migrated_instances(), 0u);
  ASSERT_FALSE(cluster.migrations().empty());
  EXPECT_EQ(cluster.migrations().front().src_host, 0u);
  EXPECT_EQ(cluster.migrations().front().dst_host, 1u);

  cluster.RunUntil(Minutes(5));
  // The starved scale-ups were eventually served: every invocation
  // completed, and no host overcommitted while doing so.
  uint64_t completed = 0;
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    EXPECT_LE(cluster.host(h).committed(), cluster.host(h).host_capacity());
    for (size_t fn = 0; fn < cluster.host(h).function_count(); ++fn) {
      completed += cluster.host(h).agent(static_cast<int>(fn)).requests().size();
    }
    EXPECT_EQ(cluster.host(h).pending_scaleups(), 0u);
  }
  EXPECT_EQ(completed, 12u);
  // The warm state survived on host 1 until its keep-alive expires.
  EXPECT_GE(cluster.host(1).agent(idle_local).idle_instances(),
            cluster.migrated_instances());
}

// --- AdoptableReplicas contract: the quote IS the adoption ------------------------

// Satellite regression (partial-adopt mispricing): the transfer is priced
// on AdoptableReplicas' quote, so an AdoptReplica immediately after (same
// books, no intervening event) must admit exactly that many — across
// every headroom from "nothing fits" to "everything fits".
TEST(ClusterMigrationTest, AdoptableQuoteMatchesImmediateAdoption) {
  constexpr uint32_t kWarm = 6;
  const FunctionSpec spec = TinySpec("quote");
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.vm_base_memory = MiB(128);
  cfg.keep_alive = Minutes(5);
  cfg.seed = 11;
  const uint64_t plug_unit = BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes;
  const uint64_t boot = FaasRuntime::BootCommitment(cfg, spec, 8);

  for (uint32_t fits = 0; fits <= kWarm + 1; ++fits) {
    EventQueue events;
    RuntimeConfig src_cfg = cfg;
    src_cfg.host_capacity = boot + 8 * plug_unit;
    FaasRuntime src(src_cfg, &events);
    RuntimeConfig dst_cfg = cfg;
    dst_cfg.host_capacity = boot + fits * plug_unit;
    FaasRuntime dst(dst_cfg, &events);
    const int src_fn = src.AddFunction(spec, 8);
    const int dst_fn = dst.AddFunction(spec, 8);
    std::vector<Invocation> warmup;
    for (uint32_t i = 0; i < kWarm; ++i) {
      warmup.push_back({Msec(10) * i, src_fn});
    }
    src.SubmitTrace(warmup);
    events.RunUntil(Minutes(1));
    const ReplicaMigrationState state = src.EvictReplica(src_fn);
    ASSERT_EQ(state.warm_instances, kWarm);

    const size_t quoted = dst.AdoptableReplicas(dst_fn, state.warm_instances);
    const size_t adopted = dst.AdoptReplica(dst_fn, state, events.now() + Sec(1));
    EXPECT_EQ(quoted, adopted) << "headroom " << fits << " plug units";
    EXPECT_EQ(adopted, std::min<size_t>(fits, kWarm)) << "headroom " << fits;
  }
}

// --- DrainHost idempotence --------------------------------------------------------

// Satellite regression (drain-check race): the draining() check, the
// migration sweep, and Drain() now sit in one lock scope — a second
// DrainHost on an already-draining host is a no-op, never a second sweep.
TEST(ClusterMigrationTest, DrainHostIsIdempotent) {
  Cluster cluster(BaseConfig(ReclaimPolicy::kSqueezy, MigrationMode::kMigrateOnDrain));
  for (int f = 0; f < 4; ++f) {
    cluster.AddFunction(TinySpec("idem"), 8);
  }
  cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
  const size_t victim = DrainMostCommitted(cluster, Minutes(3));
  ASSERT_TRUE(cluster.host(victim).draining());
  const size_t migrations_after_first = cluster.migrations().size();
  ASSERT_GT(migrations_after_first, 0u);
  cluster.DrainHost(victim);  // Second drain: no second migration sweep.
  EXPECT_EQ(cluster.migrations().size(), migrations_after_first);
  cluster.RunUntil(Minutes(8));
  EXPECT_EQ(cluster.migrations().size(), migrations_after_first);
  EXPECT_EQ(cluster.migrations_in_flight(), 0u);
}

// --- MigrationPlanner decision plane (mocked hosts) -------------------------------

// A scriptable HostControl: the planner judges hosts purely through
// Snapshot(), so the mock only has to stage those.
class MockHost : public HostControl {
 public:
  explicit MockHost(HostSnapshot snap) : snap_(snap) {}
  HostSnapshot Snapshot(int) const override { return snap_; }
  uint64_t ProactiveReclaim(uint64_t) override { return 0; }
  void Drain() override { snap_.draining = true; }
  void Undrain() override { snap_.draining = false; }
  ReplicaMigrationState EvictReplica(int) override { return {}; }
  size_t AdoptableReplicas(int, size_t) const override { return 0; }
  size_t AdoptReplica(int, const ReplicaMigrationState&, TimeNs) override { return 0; }

 private:
  HostSnapshot snap_;
};

HostSnapshot PressureSnap(size_t pending, bool draining = false) {
  HostSnapshot s;
  s.capacity = GiB(4);
  s.committed = GiB(1);
  s.available = s.capacity - s.committed;
  s.pending_scaleups = pending;
  s.draining = draining;
  return s;
}

// Satellite regression (min_pending off-by-one): the old `worst =
// min_pending - 1` seed made 0 behave like 1, so an all-idle fleet
// returned -1 where the threshold-0 contract promises host 0.
TEST(MigrationPlannerTest, MostPressuredHostHonorsZeroThreshold) {
  std::vector<std::unique_ptr<MockHost>> owned;
  std::vector<HostControl*> hosts;
  for (const size_t pending : {0u, 0u, 0u}) {
    owned.push_back(std::make_unique<MockHost>(PressureSnap(pending)));
    hosts.push_back(owned.back().get());
  }
  const MigrationPlanner planner(hosts, CostModel::Default());
  // Threshold 0: every non-draining host qualifies; ties -> lowest index.
  EXPECT_EQ(planner.MostPressuredHost(0), 0);
  // Threshold 1: nobody is starved, so nobody qualifies.
  EXPECT_EQ(planner.MostPressuredHost(1), -1);
}

TEST(MigrationPlannerTest, MostPressuredHostPicksMaxAboveThreshold) {
  std::vector<std::unique_ptr<MockHost>> owned;
  std::vector<HostControl*> hosts;
  for (const size_t pending : {2u, 7u, 7u, 4u}) {
    owned.push_back(std::make_unique<MockHost>(PressureSnap(pending)));
    hosts.push_back(owned.back().get());
  }
  const MigrationPlanner planner(hosts, CostModel::Default());
  EXPECT_EQ(planner.MostPressuredHost(1), 1);  // Max pending, tie -> lowest.
  EXPECT_EQ(planner.MostPressuredHost(5), 1);
  EXPECT_EQ(planner.MostPressuredHost(8), -1);  // Nobody meets the bar.
  // A draining host never becomes the victim, even at max pressure.
  hosts[1]->Drain();
  EXPECT_EQ(planner.MostPressuredHost(1), 2);
}

// The snapshot dimension slots below the dep-cache one: fits-all first,
// then dep-populated, then snapshot-restorable, then most committed.
TEST(MigrationPlannerTest, RankDestinationsPrefersSnapshotRestorableHosts) {
  auto snap_with = [](bool dep, bool snap, uint64_t committed) {
    HostSnapshot s;
    s.capacity = GiB(8);
    s.committed = committed;
    s.available = s.capacity - committed;
    s.dep_image_populated = dep;
    s.snapshot_restorable = snap;
    return s;
  };
  std::vector<std::unique_ptr<MockHost>> owned;
  std::vector<HostControl*> hosts;
  owned.push_back(std::make_unique<MockHost>(PressureSnap(0)));  // src (host 0).
  owned.push_back(std::make_unique<MockHost>(snap_with(false, false, GiB(3))));
  owned.push_back(std::make_unique<MockHost>(snap_with(false, true, GiB(1))));
  owned.push_back(std::make_unique<MockHost>(snap_with(false, true, GiB(2))));
  owned.push_back(std::make_unique<MockHost>(snap_with(true, false, GiB(1))));
  for (auto& h : owned) {
    hosts.push_back(h.get());
  }
  const MigrationPlanner planner(hosts, CostModel::Default());
  std::vector<Replica> reps;
  for (size_t h = 0; h < hosts.size(); ++h) {
    reps.push_back(Replica{h, 0});
  }
  const std::vector<size_t> ranked =
      planner.RankDestinations(/*src_host=*/0, reps, MiB(256), 2);
  ASSERT_EQ(ranked.size(), 4u);
  // Dep-populated host 4 first (deps outweigh the snapshot), then the
  // snapshot-restorable pair by committed (host 3 over host 2), then the
  // plain host 1 despite being the most committed overall.
  EXPECT_EQ(reps[ranked[0]].host, 4u);
  EXPECT_EQ(reps[ranked[1]].host, 3u);
  EXPECT_EQ(reps[ranked[2]].host, 2u);
  EXPECT_EQ(reps[ranked[3]].host, 1u);
}

// --- Snapshot-hit migration transfer (end to end) ---------------------------------

// The tentpole: with the cluster snapshot store on and the destination
// holding a valid recording, a drain migration ships only the delta
// beyond the recording — the recorded portion skips the wire and the
// adopted instances bulk-restore it on arrival, then serve warm.
TEST(ClusterMigrationTest, SnapshotHitMigrationShipsOnlyTheDelta) {
  auto run = [](bool snapshots, uint64_t* wire_bytes) {
    ClusterConfig cfg = BaseConfig(ReclaimPolicy::kSqueezy, MigrationMode::kMigrateOnDrain);
    cfg.shared_snapshots = snapshots;
    Cluster cluster(cfg);
    for (int f = 0; f < 4; ++f) {
      cluster.AddFunction(TinySpec("snapmig"), 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
    const TimeNs drain_at = Minutes(3);
    const size_t victim = DrainMostCommitted(cluster, drain_at);
    uint64_t migrated = cluster.migrated_instances();
    *wire_bytes = 0;
    for (const MigrationRecord& m : cluster.migrations()) {
      *wire_bytes += m.bytes_sent;
    }
    if (snapshots) {
      const SnapshotStats& s = cluster.snapshot_store()->stats();
      // At least one transfer hit a recording: the recorded bytes skipped
      // the wire, and exactly the adopted instances restore on arrival.
      EXPECT_GT(s.migration_hits, 0u);
      EXPECT_GT(s.migration_wire_saved_bytes, 0u);
      // Every restore belongs to an adopted instance (stale-tail captures
      // fall back to full transfers, so <= rather than ==).
      EXPECT_GT(s.migration_restores, 0u);
      EXPECT_LE(s.migration_restores, migrated);
      // Adopted instances still turn warm and serve after the transfer.
      cluster.RunUntil(Minutes(8));
      EXPECT_EQ(cluster.migrations_in_flight(), 0u);
      for (const MigrationRecord& m : cluster.migrations()) {
        EXPECT_NE(m.dst_host, victim);
        EXPECT_GT(m.adopted, 0u);
      }
      EXPECT_GT(cluster.Summarize(Minutes(8)).completed_requests, 0u);
    }
    return migrated;
  };
  uint64_t wire_full = 0;
  uint64_t wire_snap = 0;
  const uint64_t migrated_full = run(false, &wire_full);
  const uint64_t migrated_snap = run(true, &wire_snap);
  ASSERT_GT(migrated_full, 0u);
  ASSERT_GT(migrated_snap, 0u);
  // The snapshot-hit run puts strictly fewer bytes on the wire per
  // migrated instance — the recorded working set travels via the store.
  EXPECT_LT(static_cast<double>(wire_snap) / static_cast<double>(migrated_snap),
            static_cast<double>(wire_full) / static_cast<double>(migrated_full));
}

// Reap-only clusters never migrate, by construction.
TEST(ClusterMigrationTest, ReapOnlyModeNeverMigrates) {
  Cluster cluster(BaseConfig(ReclaimPolicy::kSqueezy, MigrationMode::kReapOnDrain));
  for (int f = 0; f < 4; ++f) {
    cluster.AddFunction(TinySpec("reaponly"), 8);
  }
  cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
  DrainMostCommitted(cluster, Minutes(3));
  EXPECT_EQ(cluster.MigratePressured(), 0u);
  cluster.RunUntil(Minutes(8));
  EXPECT_TRUE(cluster.migrations().empty());
  EXPECT_EQ(cluster.migrated_instances(), 0u);
}

}  // namespace
}  // namespace squeezy
