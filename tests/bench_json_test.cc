// BenchJson must emit valid JSON even for non-finite inputs: bare
// nan/inf tokens are not JSON, and an unquoted "nan" cell silently
// poisons every downstream consumer of bench_results/BENCH_*.json.  (CI
// additionally runs python3 -m json.tool over every uploaded artifact.)
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/bench_util.h"

namespace squeezy {
namespace {

std::string WriteAndRead(BenchJson& json) {
  const std::string path = json.Write();
  EXPECT_FALSE(path.empty());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BenchJsonTest, NonFiniteMetricsBecomeNull) {
  BenchJson json("json_fixture_metrics");
  json.Metric("ratio_nan", std::nan(""));
  json.Metric("ratio_inf", std::numeric_limits<double>::infinity());
  json.Metric("ratio_neg_inf", -std::numeric_limits<double>::infinity());
  json.Metric("ratio_ok", 1.5);
  const std::string out = WriteAndRead(json);
  EXPECT_NE(out.find("\"ratio_nan\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ratio_inf\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ratio_neg_inf\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ratio_ok\": 1.5"), std::string::npos) << out;
}

TEST(BenchJsonTest, NonFiniteLookingCellsStayQuoted) {
  BenchJson json("json_fixture_cells");
  json.SetColumns({"name", "value"});
  json.AddRow({"nan", "inf"});
  json.AddRow({"-inf", "1.5"});
  const std::string out = WriteAndRead(json);
  // istream happily parses nan/inf as doubles; the numeric sniff must
  // still quote them because they are not JSON number tokens.
  EXPECT_NE(out.find("[\"nan\", \"inf\"]"), std::string::npos) << out;
  EXPECT_NE(out.find("[\"-inf\", 1.5]"), std::string::npos) << out;
  // No bare nan/inf token anywhere: every occurrence is inside quotes.
  for (const char* bad : {": nan", ": inf", " nan,", " inf,", "[nan", "[inf"}) {
    EXPECT_EQ(out.find(bad), std::string::npos) << bad << " in " << out;
  }
}

}  // namespace
}  // namespace squeezy
