// Unit tests for the virtio-balloon device.
#include <gtest/gtest.h>

#include <memory>

#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/hotplug/balloon.h"
#include "src/mm/memmap.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

class BalloonTest : public testing::Test {
 protected:
  void SetUp() override {
    memmap_ = std::make_unique<MemMap>(GiB(1));
    zone_ = std::make_unique<Zone>(0, ZoneType::kMovable, "mv", memmap_.get());
    for (BlockIndex b = 0; b < 8; ++b) {
      memmap_->InitBlock(b);
      zone_->AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
    }
    host_ = std::make_unique<HostMemory>(GiB(8));
    hv_ = std::make_unique<Hypervisor>(host_.get(), &cost_);
    vm_ = hv_->RegisterVm("vm", 1);
    balloon_ = std::make_unique<BalloonDevice>(memmap_.get(), &cost_, hv_.get(), vm_);
  }

  CostModel cost_ = CostModel::Default();
  std::unique_ptr<MemMap> memmap_;
  std::unique_ptr<Zone> zone_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<Hypervisor> hv_;
  VmId vm_ = 0;
  std::unique_ptr<BalloonDevice> balloon_;
};

TEST_F(BalloonTest, InflateReservesPages) {
  const BalloonOutcome out = balloon_->Inflate(MiB(4), zone_.get(), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.pages, MiB(4) / kPageSize);
  EXPECT_EQ(balloon_->held_pages(), out.pages);
  EXPECT_EQ(zone_->allocated_pages(), out.pages);
}

TEST_F(BalloonTest, PerPageCostDominatedByExits) {
  const BalloonOutcome out = balloon_->Inflate(MiB(8), zone_.get(), 0);
  const uint64_t pages = MiB(8) / kPageSize;
  EXPECT_EQ(out.breakdown.rest, static_cast<DurationNs>(pages) * cost_.balloon_guest_page);
  EXPECT_EQ(out.breakdown.vm_exits, static_cast<DurationNs>(pages) * cost_.balloon_exit_page);
  // Paper Fig 5: ~81% of balloon reclaim is exit/host work.
  const double exit_frac =
      static_cast<double>(out.breakdown.vm_exits) / static_cast<double>(out.latency());
  EXPECT_GT(exit_frac, 0.75);
  EXPECT_LT(exit_frac, 0.90);
}

TEST_F(BalloonTest, InflatedPagesAreUnmovableKernelPages) {
  balloon_->Inflate(kPageSize * 10, zone_.get(), 0);
  uint64_t kernel_pages = 0;
  for (Pfn pfn = 0; pfn < memmap_->span_pages(); ++pfn) {
    const Page& p = memmap_->page(pfn);
    if (p.state == PageState::kAllocated && p.kind == PageKind::kKernel) {
      ++kernel_pages;
    }
  }
  EXPECT_EQ(kernel_pages, 10u);
}

TEST_F(BalloonTest, InflateReleasesHostBacking) {
  // Pre-populate host backing for the first block.
  hv_->NestedFaultPopulate(vm_, 1, kMemoryBlockBytes, 0);
  for (Pfn pfn = 0; pfn < kPagesPerBlock; ++pfn) {
    memmap_->page(pfn).host_populated = true;
  }
  const uint64_t populated_before = host_->populated();
  balloon_->Inflate(MiB(4), zone_.get(), 0);
  EXPECT_EQ(host_->populated(), populated_before - MiB(4));
}

TEST_F(BalloonTest, InflateStallsWhenZoneExhausted) {
  // Drain the zone except a sliver.
  while (zone_->free_pages() > 100) {
    if (zone_->Alloc(kMaxPageOrder, PageKind::kAnon, 1, 0) == kInvalidPfn) {
      break;
    }
  }
  while (zone_->Alloc(0, PageKind::kAnon, 1, 0) != kInvalidPfn && zone_->free_pages() > 10) {
  }
  const BalloonOutcome out = balloon_->Inflate(MiB(1), zone_.get(), 0);
  EXPECT_FALSE(out.complete);
  EXPECT_LT(out.pages, MiB(1) / kPageSize);
}

TEST_F(BalloonTest, DeflateReturnsPages) {
  balloon_->Inflate(MiB(2), zone_.get(), 0);
  const uint64_t held = balloon_->held_pages();
  const DurationNs lat = balloon_->Deflate(MiB(1), *memmap_, zone_.get());
  EXPECT_GT(lat, 0);
  EXPECT_EQ(balloon_->held_pages(), held - MiB(1) / kPageSize);
  EXPECT_EQ(zone_->allocated_pages(), balloon_->held_pages());
}

TEST_F(BalloonTest, DeflateMoreThanHeldClamp) {
  balloon_->Inflate(MiB(1), zone_.get(), 0);
  balloon_->Deflate(MiB(100), *memmap_, zone_.get());
  EXPECT_EQ(balloon_->held_pages(), 0u);
  EXPECT_EQ(zone_->allocated_pages(), 0u);
  EXPECT_TRUE(zone_->CheckFreeLists());
}

TEST_F(BalloonTest, BatchingReducesNothingOnReleaseAccounting) {
  // Batching (HarvestVM-style ablation knob) changes exit counts, not the
  // amount of memory released.
  CostModel batched = cost_;
  batched.balloon_batch_pages = 256;
  BalloonDevice dev(memmap_.get(), &batched, hv_.get(), vm_);
  const BalloonOutcome out = dev.Inflate(MiB(4), zone_.get(), 0);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.pages, MiB(4) / kPageSize);
}

TEST_F(BalloonTest, ScalingIsLinearInSize) {
  const BalloonOutcome small = balloon_->Inflate(MiB(8), zone_.get(), 0);
  BalloonDevice dev2(memmap_.get(), &cost_, hv_.get(), vm_);
  const BalloonOutcome big = dev2.Inflate(MiB(32), zone_.get(), 0);
  EXPECT_NEAR(static_cast<double>(big.latency()) / static_cast<double>(small.latency()), 4.0,
              0.01);
}

}  // namespace
}  // namespace squeezy
