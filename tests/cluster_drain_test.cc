// Host drain + placement–reclaim co-design tests (the HostControl plane).
//
// Drain contract: once Cluster::DrainHost(h) fires mid-trace,
//   * no subsequent invocation routes to host h (any placement policy),
//   * h's idle instances are reaped and their memory unplugged per the
//     host's reclaim driver — so SqueezyDriver returns the committed book
//     to its boot-time level faster than VirtioMemDriver,
//   * fleet-wide host-memory accounting is conserved: after the run
//     drains, EVERY host (drained or not) sits exactly at its boot-time
//     commitment.
// Co-design contract (kHintedBinPack): when a burst outruns reclamation,
// the scheduler's ProactiveReclaim hints actually reach the donor hosts'
// drivers, and the whole decision stream stays deterministic.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/faas/function.h"
#include "src/policy/harvest_driver.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

FunctionSpec TinySpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.0;
  return s;
}

ClusterConfig BaseConfig(PlacementPolicy placement, ReclaimPolicy reclaim) {
  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = placement;
  cfg.host.policy = reclaim;
  cfg.host.host_capacity = MiB(2176);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = 42;
  return cfg;
}

ClusterTraceConfig SkewedTrace() {
  ClusterTraceConfig t;
  t.duration = Minutes(6);
  t.nr_functions = 4;
  t.total_base_rate_per_sec = 2.0;
  t.zipf_s = 1.2;
  t.bursty_fraction = 0.5;
  t.burst_multiplier = 30.0;
  t.mean_burst_len = Sec(20);
  t.mean_gap = Sec(60);
  return t;
}

// Builds the cluster, runs to `drain_at`, drains the most-committed host.
// Returns the victim host index.
size_t DrainMostCommitted(Cluster& cluster, TimeNs drain_at) {
  cluster.RunUntil(drain_at);
  size_t victim = 0;
  for (size_t h = 1; h < cluster.host_count(); ++h) {
    if (cluster.host(h).committed() > cluster.host(victim).committed()) {
      victim = h;
    }
  }
  cluster.DrainHost(victim);
  return victim;
}

TEST(ClusterDrainTest, DrainingHostStopsReceivingRoutes) {
  for (const PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kMemoryAwareBinPack,
        PlacementPolicy::kHintedBinPack}) {
    Cluster cluster(BaseConfig(placement, ReclaimPolicy::kSqueezy));
    for (int f = 0; f < 4; ++f) {
      cluster.AddFunction(TinySpec("drainroute"), 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
    const size_t victim = DrainMostCommitted(cluster, Minutes(3));
    const uint64_t routed_at_drain = cluster.routed_to(victim);
    EXPECT_GT(routed_at_drain, 0u) << PlacementPolicyName(placement);
    cluster.RunUntil(Minutes(8));
    // Every post-drain invocation went elsewhere.
    EXPECT_EQ(cluster.routed_to(victim), routed_at_drain)
        << PlacementPolicyName(placement);
    EXPECT_TRUE(cluster.host(victim).draining());
    // The fleet kept serving: other hosts picked the load up.
    uint64_t routed_elsewhere = 0;
    for (size_t h = 0; h < cluster.host_count(); ++h) {
      if (h != victim) {
        routed_elsewhere += cluster.routed_to(h);
      }
    }
    EXPECT_GT(routed_elsewhere, routed_at_drain) << PlacementPolicyName(placement);
  }
}

// Reclamation speed IS maintenance speed: the drained host's committed
// book returns to its boot-time commitment faster under SqueezyDriver
// than under VirtioMemDriver (same trace, same drain instant).
TEST(ClusterDrainTest, SqueezyDrainsCommittedMemoryFasterThanVirtio) {
  auto reclaim_time = [](ReclaimPolicy reclaim) {
    ClusterConfig cfg = BaseConfig(PlacementPolicy::kMemoryAwareBinPack, reclaim);
    Cluster cluster(cfg);
    const FunctionSpec spec = TinySpec("drainspeed");
    uint64_t boot_commit = 0;
    for (int f = 0; f < 4; ++f) {
      cluster.AddFunction(spec, 8);
      boot_commit += FaasRuntime::BootCommitment(cfg.host, spec, 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
    const TimeNs drain_at = Minutes(3);
    const size_t victim = DrainMostCommitted(cluster, drain_at);
    // The victim was carrying scale-ups beyond its boot commitment.
    EXPECT_GT(cluster.host(victim).committed(), boot_commit);
    cluster.RunUntil(Minutes(10));
    for (const StepSeries::Point& p :
         cluster.host(victim).host().committed_series().points()) {
      if (p.t >= drain_at && static_cast<uint64_t>(p.value) <= boot_commit) {
        return p.t - drain_at;
      }
    }
    ADD_FAILURE() << "drained host never returned to boot commitment under "
                  << ReclaimPolicyName(reclaim);
    return DurationNs{0};
  };
  const DurationNs squeezy = reclaim_time(ReclaimPolicy::kSqueezy);
  const DurationNs virtio = reclaim_time(ReclaimPolicy::kVirtioMem);
  EXPECT_LT(squeezy, virtio);
  EXPECT_GT(squeezy, 0);
}

// Fleet-wide conservation across a mid-trace drain: when everything
// quiesces, every host — drained or not — is back at exactly its
// boot-time commitment, with no live instances anywhere.
TEST(ClusterDrainTest, DrainConservesFleetHostMemoryAccounting) {
  for (const ReclaimPolicy reclaim :
       {ReclaimPolicy::kVirtioMem, ReclaimPolicy::kSqueezy,
        ReclaimPolicy::kHarvestOpts}) {
    ClusterConfig cfg = BaseConfig(PlacementPolicy::kMemoryAwareBinPack, reclaim);
    Cluster cluster(cfg);
    const FunctionSpec spec = TinySpec("drainbook");
    std::vector<int> fns;
    for (int f = 0; f < 4; ++f) {
      fns.push_back(cluster.AddFunction(spec, 8));
    }
    std::vector<uint64_t> boot(cluster.host_count(), 0);
    for (const int fn : fns) {
      for (const Replica& r : cluster.replicas(fn)) {
        boot[r.host] += FaasRuntime::BootCommitment(cfg.host, spec, 8);
      }
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
    const size_t victim = DrainMostCommitted(cluster, Minutes(3));
    cluster.RunAll();  // Every keep-alive expiry, drain tick and unplug completes.
    for (size_t h = 0; h < cluster.host_count(); ++h) {
      // HarvestVM slack buffers legitimately stay plugged+committed at
      // quiescence (they drain only under low memory or a host drain);
      // account for them through the driver's introspection.
      uint64_t slack = 0;
      if (const auto* harvest =
              dynamic_cast<const HarvestDriver*>(&cluster.host(h).driver())) {
        for (size_t fn = 0; fn < cluster.host(h).function_count(); ++fn) {
          slack += static_cast<uint64_t>(harvest->buffer_units(static_cast<int>(fn))) *
                   (BytesToBlocks(spec.memory_limit) * kMemoryBlockBytes);
        }
      }
      EXPECT_EQ(cluster.host(h).committed(), boot[h] + slack)
          << ReclaimPolicyName(reclaim) << " host " << h
          << (h == victim ? " (drained)" : "");
      if (h == victim) {
        EXPECT_EQ(slack, 0u) << "drained host must not hold slack";
      }
      EXPECT_LE(cluster.host(h).host().populated(), cluster.host(h).committed());
      for (size_t fn = 0; fn < cluster.host(h).function_count(); ++fn) {
        EXPECT_EQ(cluster.host(h).agent(static_cast<int>(fn)).live_instances(), 0u);
      }
    }
  }
}

// Undrain restores the host to rotation: routes flow to it again.
TEST(ClusterDrainTest, UndrainRestoresRouting) {
  Cluster cluster(BaseConfig(PlacementPolicy::kRoundRobin, ReclaimPolicy::kSqueezy));
  for (int f = 0; f < 4; ++f) {
    cluster.AddFunction(TinySpec("undrain"), 8);
  }
  cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), 42));
  const size_t victim = DrainMostCommitted(cluster, Minutes(2));
  cluster.RunUntil(Minutes(3));
  const uint64_t routed_while_drained = cluster.routed_to(victim);
  cluster.UndrainHost(victim);
  cluster.RunUntil(Minutes(8));
  EXPECT_FALSE(cluster.host(victim).draining());
  EXPECT_GT(cluster.routed_to(victim), routed_while_drained);
}

// kHintedBinPack's ProactiveReclaim hints reach donor hosts' drivers, and
// the hinted decision stream is deterministic under a fixed seed.
TEST(ClusterDrainTest, HintedBinPackFiresProactiveReclaimsDeterministically) {
  auto run = [](uint64_t seed) {
    ClusterConfig cfg =
        BaseConfig(PlacementPolicy::kHintedBinPack, ReclaimPolicy::kSqueezy);
    cfg.host.seed = seed;
    Cluster cluster(cfg);
    for (int f = 0; f < 4; ++f) {
      cluster.AddFunction(TinySpec("hinted"), 8);
    }
    cluster.SubmitTrace(GenerateClusterTrace(SkewedTrace(), seed));
    cluster.RunUntil(Minutes(8));
    uint64_t proactive = 0;
    for (size_t h = 0; h < cluster.host_count(); ++h) {
      proactive += cluster.host(h).total_proactive_reclaims();
    }
    return std::make_tuple(cluster.routing_hash(), cluster.scheduler().hints_fired(),
                           proactive, cluster.Summarize(Minutes(8)).completed_requests);
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));
  // The tight fleet forced at least one hint, and every hint reached a
  // donor host's driver.
  EXPECT_GT(std::get<1>(a), 0u);
  EXPECT_EQ(std::get<1>(a), std::get<2>(a));
  EXPECT_GT(std::get<3>(a), 0u);
}

}  // namespace
}  // namespace squeezy
