// Unit tests for page migration: the operation Squeezy eliminates.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/mm/memmap.h"
#include "src/mm/migration.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

class RecordingRegistry : public OwnerRegistry {
 public:
  void RelocateFolio(PageKind kind, int32_t owner, uint32_t owner_slot, Pfn new_head) override {
    moves.push_back({kind, owner, owner_slot, new_head});
  }
  struct Move {
    PageKind kind;
    int32_t owner;
    uint32_t slot;
    Pfn to;
  };
  std::vector<Move> moves;
};

class MigrationTest : public testing::Test {
 protected:
  void SetUp() override {
    memmap_ = std::make_unique<MemMap>(GiB(1));
    zone_ = std::make_unique<Zone>(0, ZoneType::kMovable, "z", memmap_.get());
    for (BlockIndex b = 0; b < 4; ++b) {
      memmap_->InitBlock(b);
      zone_->AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
      memmap_->set_block_state(b, BlockState::kOnline);
    }
  }

  std::unique_ptr<MemMap> memmap_;
  std::unique_ptr<Zone> zone_;
  CostModel cost_ = CostModel::Default();
  RecordingRegistry registry_;
};

TEST_F(MigrationTest, EmptyRangeMigratesNothing) {
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.pages_moved, 0u);
  EXPECT_EQ(out.cost, 0);
  EXPECT_TRUE(registry_.moves.empty());
}

TEST_F(MigrationTest, MovesFolioOutAndPatchesOwner) {
  // Allocate one THP folio in block 0 (fresh zone allocates low-first).
  const Pfn head = zone_->Alloc(kThpOrder, PageKind::kAnon, /*owner=*/42, /*slot=*/7);
  ASSERT_LT(head, kPagesPerBlock);
  zone_->IsolateFreeRange(0, kPagesPerBlock);

  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.folios_moved, 1u);
  EXPECT_EQ(out.pages_moved, 1u << kThpOrder);
  EXPECT_EQ(out.cost, cost_.MigrateFolio(1u << kThpOrder));

  ASSERT_EQ(registry_.moves.size(), 1u);
  EXPECT_EQ(registry_.moves[0].owner, 42);
  EXPECT_EQ(registry_.moves[0].slot, 7u);
  const Pfn new_head = registry_.moves[0].to;
  EXPECT_GE(new_head, kPagesPerBlock);  // Left the isolating block.
  const Page& p = memmap_->page(new_head);
  EXPECT_EQ(p.state, PageState::kAllocated);
  EXPECT_EQ(p.owner, 42);
  EXPECT_EQ(p.owner_slot, 7u);
  EXPECT_EQ(p.order, kThpOrder);
  // Source frames are isolated, not free.
  EXPECT_EQ(memmap_->page(head).state, PageState::kIsolated);
  // Block 0 has no occupied pages left.
  EXPECT_EQ(memmap_->BlockOccupied(0), 0u);
}

TEST_F(MigrationTest, TargetHostBackingIsPopulated) {
  const Pfn head = zone_->Alloc(0, PageKind::kAnon, 1, 0);
  (void)head;
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  ASSERT_EQ(registry_.moves.size(), 1u);
  EXPECT_TRUE(memmap_->page(registry_.moves[0].to).host_populated);
}

TEST_F(MigrationTest, KernelPageAbortsOffline) {
  const Pfn pinned = zone_->Alloc(0, PageKind::kKernel, kNoOwner, 0);
  ASSERT_LT(pinned, kPagesPerBlock);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(memmap_->page(pinned).state, PageState::kAllocated);
}

TEST_F(MigrationTest, FailsWhenTargetZoneExhausted) {
  // Fill the whole zone, then try to evacuate block 0: nowhere to go.
  std::vector<Pfn> folios;
  while (true) {
    const Pfn pfn = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 0);
    if (pfn == kInvalidPfn) {
      break;
    }
    folios.push_back(pfn);
  }
  zone_->IsolateFreeRange(0, kPagesPerBlock);  // Isolates nothing (all used).
  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  EXPECT_FALSE(out.ok);
}

TEST_F(MigrationTest, MixedFolioSizesAllMove) {
  std::vector<std::tuple<Pfn, uint8_t>> folios;
  // A mix of orders in block 0.
  const uint8_t orders[] = {0, 3, static_cast<uint8_t>(kThpOrder), 1, 5};
  for (const uint8_t order : orders) {
    const Pfn pfn = zone_->Alloc(order, PageKind::kFile, /*owner=*/3, /*slot=*/order);
    ASSERT_LT(pfn, kPagesPerBlock);
    folios.push_back({pfn, order});
  }
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.folios_moved, folios.size());
  uint64_t expected_pages = 0;
  for (const auto& [pfn, order] : folios) {
    expected_pages += 1u << order;
  }
  EXPECT_EQ(out.pages_moved, expected_pages);
  // Every frame of block 0 is now isolated.
  EXPECT_EQ(memmap_->CountBlockPages(0, PageState::kIsolated),
            static_cast<uint64_t>(kPagesPerBlock));
}

TEST_F(MigrationTest, CostScalesWithPagesMoved) {
  const Pfn a = zone_->Alloc(0, PageKind::kAnon, 1, 0);
  const Pfn b = zone_->Alloc(kThpOrder, PageKind::kAnon, 1, 1);
  ASSERT_LT(a, kPagesPerBlock);
  ASSERT_LT(b, kPagesPerBlock);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, &registry_);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.cost, cost_.MigrateFolio(1) + cost_.MigrateFolio(1u << kThpOrder));
}

TEST_F(MigrationTest, NullRegistryIsAllowed) {
  zone_->Alloc(0, PageKind::kAnon, 1, 0);
  zone_->IsolateFreeRange(0, kPagesPerBlock);
  const MigrateOutcome out =
      MigrateOutOfRange(*memmap_, *zone_, *zone_, 0, kPagesPerBlock, cost_, nullptr);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.folios_moved, 1u);
}

TEST_F(MigrationTest, CrossZoneMigration) {
  // Target zone is a different zone (e.g. movable -> movable of another
  // span); folios land there and carry ownership.
  MemMap memmap(GiB(1));
  Zone src(0, ZoneType::kMovable, "src", &memmap);
  Zone dst(1, ZoneType::kMovable, "dst", &memmap);
  memmap.InitBlock(0);
  memmap.InitBlock(1);
  src.AddFreeRange(MemMap::BlockStart(0), kPagesPerBlock);
  dst.AddFreeRange(MemMap::BlockStart(1), kPagesPerBlock);

  const Pfn head = src.Alloc(4, PageKind::kAnon, 9, 2);
  ASSERT_NE(head, kInvalidPfn);
  src.IsolateFreeRange(0, kPagesPerBlock);
  RecordingRegistry reg;
  const MigrateOutcome out =
      MigrateOutOfRange(memmap, src, dst, 0, kPagesPerBlock, CostModel::Default(), &reg);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(reg.moves.size(), 1u);
  EXPECT_EQ(memmap.page(reg.moves[0].to).zone_id, 1);
  EXPECT_EQ(dst.allocated_pages(), 16u);
  // The source range is fully isolated and can be retired, emptying src.
  src.RetireRange(0, kPagesPerBlock);
  EXPECT_EQ(src.managed_pages(), 0u);
}

}  // namespace
}  // namespace squeezy
