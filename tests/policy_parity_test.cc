// Recorded-constants parity lock for the ReclaimDriver refactor.
//
// The numbers below were captured on the pre-refactor runtime (commit
// 3dd7427, where the four reclamation policies were `switch` branches in
// src/faas/runtime.cc).  Every scenario is a deterministic simulation, so
// the new driver-based runtime must reproduce them bit-identically: any
// divergence means the refactor changed policy behavior, not just its
// packaging.
//
// Three layers are locked:
//   * guest layer  — the fig05 unplug-latency breakdown per method
//     (balloon / vanilla virtio-mem / Squeezy), mean over 8 steps;
//   * host layer   — a single-host fig12-style churn run per policy
//     (admission, pending scale-ups, unplug failures, committed peak);
//   * fleet layer  — a 4-host cluster run per policy under memory-aware
//     bin-packing (routing hash locks every placement decision).
//
// Re-recording (only after an INTENTIONAL behavior change):
//   PARITY_DUMP=1 ./policy_parity_test
// prints the constants in source form.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/squeezy.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/trace/cluster_trace.h"
#include "src/trace/memhog.h"

namespace squeezy {
namespace {

bool DumpMode() { return std::getenv("PARITY_DUMP") != nullptr; }

// --- Guest layer (fig05 headline, scaled to 8 steps) -------------------------------

struct BreakdownGolden {
  int64_t zeroing = 0;
  int64_t migration = 0;
  int64_t vm_exits = 0;
  int64_t rest = 0;
};

constexpr int kSteps = 8;
constexpr uint64_t kReclaimBytes = MiB(512);

BreakdownGolden MeanOf(const UnplugBreakdown& sum) {
  BreakdownGolden g;
  g.zeroing = sum.zeroing / kSteps;
  g.migration = sum.migration / kSteps;
  g.vm_exits = sum.vm_exits / kSteps;
  g.rest = sum.rest / kSteps;
  return g;
}

// Mirrors bench/fig05_reclaim_latency.cc RunVanilla, 8 memhog steps.
BreakdownGolden RunVanillaGuest(bool balloon) {
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.name = balloon ? "balloon-vm" : "virtio-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = static_cast<uint64_t>(kSteps) * kReclaimBytes;
  cfg.seed = 1234 + kReclaimBytes / MiB(1);
  cfg.unplug_timeout = Minutes(5);
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(cfg.hotplug_region, 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());

  std::vector<std::unique_ptr<Memhog>> hogs;
  MemhogConfig mcfg;
  mcfg.bytes = kReclaimBytes - MiB(8);
  mcfg.churn_fraction = 0.2;
  mcfg.warmup_cycles = 3;
  for (int i = 0; i < kSteps; ++i) {
    hogs.push_back(std::make_unique<Memhog>(&guest, mcfg));
    EXPECT_TRUE(hogs.back()->Start(0));
  }
  UnplugBreakdown sum;
  for (int step = 0; step < kSteps; ++step) {
    hogs[static_cast<size_t>(step)]->Stop();
    if (balloon) {
      sum.Add(guest.BalloonReclaim(kReclaimBytes, 0).breakdown);
    } else {
      sum.Add(guest.UnplugMemory(kReclaimBytes, 0).breakdown);
    }
  }
  return MeanOf(sum);
}

// Mirrors bench/fig05_reclaim_latency.cc RunSqueezy, 8 partitions.
BreakdownGolden RunSqueezyGuest() {
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = kReclaimBytes;
  scfg.nr_partitions = kSteps;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.name = "squeezy-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 99;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);

  std::vector<Pid> pids;
  for (int i = 0; i < kSteps; ++i) {
    guest.PlugMemory(kReclaimBytes, 0);
    const Pid pid = guest.CreateProcess();
    EXPECT_TRUE(sqz.SqueezyEnable(pid).has_value());
    guest.TouchAnon(pid, kReclaimBytes - MiB(8), 0);
    pids.push_back(pid);
  }
  UnplugBreakdown sum;
  for (int step = 0; step < kSteps; ++step) {
    guest.Exit(pids[static_cast<size_t>(step)]);
    const UnplugOutcome out = guest.UnplugMemory(kReclaimBytes, 0);
    EXPECT_EQ(out.pages_migrated, 0u);
    sum.Add(out.breakdown);
  }
  return MeanOf(sum);
}

void ExpectBreakdown(const BreakdownGolden& got, const BreakdownGolden& want,
                     const char* method) {
  if (DumpMode()) {
    std::cout << "  // " << method << "\n  {" << got.zeroing << ", " << got.migration
              << ", " << got.vm_exits << ", " << got.rest << "},\n";
    return;
  }
  EXPECT_EQ(got.zeroing, want.zeroing) << method;
  EXPECT_EQ(got.migration, want.migration) << method;
  EXPECT_EQ(got.vm_exits, want.vm_exits) << method;
  EXPECT_EQ(got.rest, want.rest) << method;
}

// --- Host + fleet layers ------------------------------------------------------------

FunctionSpec ParitySpec(const char* name) {
  FunctionSpec s;
  s.name = name;
  s.vcpu_shares = 1.0;
  s.memory_limit = MiB(256);
  s.anon_working_set = MiB(96);
  s.file_deps_bytes = MiB(64);
  s.container_init_cpu = Msec(80);
  s.function_init_cpu = Msec(120);
  s.exec_cpu_mean = Msec(100);
  s.exec_cv = 0.20;
  return s;
}

ClusterTraceConfig ParityTrace(int32_t nr_functions) {
  ClusterTraceConfig t;
  t.duration = Minutes(4);
  t.nr_functions = nr_functions;
  t.total_base_rate_per_sec = 2.0;
  t.zipf_s = 1.2;
  t.bursty_fraction = 0.5;
  t.burst_multiplier = 30.0;
  t.mean_burst_len = Sec(20);
  t.mean_gap = Sec(60);
  return t;
}

struct HostGolden {
  uint64_t completed = 0;
  int64_t latency_sum = 0;
  uint64_t pending_total = 0;
  uint64_t unplug_failures = 0;
  uint64_t evictions = 0;
  uint64_t committed_peak = 0;
  uint64_t committed_final = 0;
};

HostGolden RunHostScenario(ReclaimPolicy policy) {
  RuntimeConfig cfg;
  // Static must fit 3 fully-committed VMs at boot; dynamic policies get a
  // tight host so pending scale-ups / MakeRoom / timeouts are exercised.
  cfg.host_capacity = policy == ReclaimPolicy::kStatic ? GiB(6) : MiB(1280);
  cfg.policy = policy;
  cfg.keep_alive = Sec(30);
  cfg.seed = 42;
  cfg.vm_base_memory = MiB(128);
  // Tight enough that loaded vanilla unplugs time out (locks the
  // incomplete-unplug / spare_plugged path), loose enough for Squeezy.
  cfg.unplug_timeout = Msec(100);
  cfg.pressure_check_period = Msec(500);
  FaasRuntime rt(cfg);

  const int kFunctions = 3;
  for (int f = 0; f < kFunctions; ++f) {
    rt.AddFunction(ParitySpec("parity"), 6);
  }
  rt.SubmitTrace(GenerateClusterTrace(ParityTrace(kFunctions), 42));
  rt.RunUntil(Minutes(6));

  HostGolden g;
  for (int f = 0; f < kFunctions; ++f) {
    const Agent& a = rt.agent(f);
    g.completed += a.requests().size();
    for (const RequestRecord& r : a.requests()) {
      g.latency_sum += r.latency();
    }
    g.evictions += a.total_evictions();
  }
  g.pending_total = rt.total_pending_scaleups();
  g.unplug_failures = rt.total_unplug_failures();
  g.committed_peak = static_cast<uint64_t>(rt.host().committed_series().Max());
  g.committed_final = rt.committed();
  return g;
}

struct FleetGolden {
  uint64_t routing_hash = 0;
  uint64_t completed = 0;
  uint64_t pending_total = 0;
  uint64_t unplaced = 0;
  uint64_t committed_peak = 0;
};

FleetGolden RunFleetScenario(ReclaimPolicy policy) {
  ClusterConfig cfg;
  cfg.nr_hosts = 4;
  cfg.placement = PlacementPolicy::kMemoryAwareBinPack;
  cfg.host.policy = policy;
  cfg.host.host_capacity = MiB(2176);
  cfg.host.vm_base_memory = MiB(128);
  cfg.host.keep_alive = Sec(30);
  cfg.host.unplug_timeout = Msec(400);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = 42;
  Cluster cluster(cfg);
  const int kFunctions = 4;
  for (int f = 0; f < kFunctions; ++f) {
    cluster.AddFunction(ParitySpec("fleet"), 8);
  }
  cluster.SubmitTrace(GenerateClusterTrace(ParityTrace(kFunctions), 42));
  cluster.RunUntil(Minutes(6));

  const FleetSummary s = cluster.Summarize(Minutes(6));
  FleetGolden g;
  g.routing_hash = cluster.routing_hash();
  g.completed = s.completed_requests;
  g.pending_total = s.pending_scaleups_total;
  g.unplaced = s.unplaced_invocations;
  g.committed_peak = s.committed_peak;
  return g;
}

void ExpectHost(const HostGolden& got, const HostGolden& want, const char* policy) {
  if (DumpMode()) {
    std::cout << "  // " << policy << "\n  {" << got.completed << "u, " << got.latency_sum
              << ", " << got.pending_total << "u, " << got.unplug_failures << "u, "
              << got.evictions << "u, " << got.committed_peak << "u, "
              << got.committed_final << "u},\n";
    return;
  }
  EXPECT_EQ(got.completed, want.completed) << policy;
  EXPECT_EQ(got.latency_sum, want.latency_sum) << policy;
  EXPECT_EQ(got.pending_total, want.pending_total) << policy;
  EXPECT_EQ(got.unplug_failures, want.unplug_failures) << policy;
  EXPECT_EQ(got.evictions, want.evictions) << policy;
  EXPECT_EQ(got.committed_peak, want.committed_peak) << policy;
  EXPECT_EQ(got.committed_final, want.committed_final) << policy;
}

void ExpectFleet(const FleetGolden& got, const FleetGolden& want, const char* policy) {
  if (DumpMode()) {
    std::cout << "  // " << policy << "\n  {" << got.routing_hash << "u, " << got.completed
              << "u, " << got.pending_total << "u, " << got.unplaced << "u, "
              << got.committed_peak << "u},\n";
    return;
  }
  EXPECT_EQ(got.routing_hash, want.routing_hash) << policy;
  EXPECT_EQ(got.completed, want.completed) << policy;
  EXPECT_EQ(got.pending_total, want.pending_total) << policy;
  EXPECT_EQ(got.unplaced, want.unplaced) << policy;
  EXPECT_EQ(got.committed_peak, want.committed_peak) << policy;
}

// --- Recorded constants (pre-refactor, commit 3dd7427) ------------------------------

// {zeroing, migration, vm_exits, rest} mean ns over 8 steps of 512 MiB.
const BreakdownGolden kBalloonGolden = {0, 0, 1074790400, 209715200};
const BreakdownGolden kVirtioGolden = {131072000, 243006400, 12000000, 21753600};
const BreakdownGolden kSqueezyGolden = {0, 0, 12000000, 21753600};

// {completed, latency_sum, pending, unplug_fail, evictions, peak, final}.
// Virtio and Harvest coincide here (the tight host keeps pending_ nonempty,
// so harvest slack buffers never accumulate); the fleet scenario below
// separates them by routing hash.
const HostGolden kHostGolden[4] = {
    {6338u, 669898478822, 0u, 0u, 31u, 5637144576u, 5637144576u},       // Static
    {6233u, 284153138250577, 17u, 2u, 7u, 1342177280u, 1207959552u},    // Virtio-mem
    {6338u, 256518381384741, 17u, 0u, 17u, 1342177280u, 1342177280u},   // Squeezy
    {6233u, 284153138250577, 17u, 2u, 7u, 1342177280u, 1207959552u},    // HarvestVM-opts
};

// {routing_hash, completed, pending, unplaced, peak}.  Static VMs do not
// fit the 2176 MiB hosts at boot, so every invocation is unplaced — that
// rejection stream is itself part of the locked behavior.
const FleetGolden kFleetGolden[4] = {
    {14695981039346656037u, 0u, 0u, 3127u, 0u},              // Static
    {8044875401778037024u, 3127u, 35u, 0u, 8589934592u},     // Virtio-mem
    {7528701497569249483u, 3127u, 34u, 0u, 8589934592u},     // Squeezy
    {726163197883999753u, 3127u, 34u, 0u, 8589934592u},      // HarvestVM-opts
};

constexpr ReclaimPolicy kAllPolicies[4] = {
    ReclaimPolicy::kStatic,
    ReclaimPolicy::kVirtioMem,
    ReclaimPolicy::kSqueezy,
    ReclaimPolicy::kHarvestOpts,
};

TEST(PolicyParityTest, Fig05GuestBreakdownsMatchPreRefactor) {
  if (DumpMode()) std::cout << "// fig05 guest breakdowns {zeroing, migration, vm_exits, rest}\n";
  ExpectBreakdown(RunVanillaGuest(/*balloon=*/true), kBalloonGolden, "Balloon");
  ExpectBreakdown(RunVanillaGuest(/*balloon=*/false), kVirtioGolden, "Virtio-mem");
  ExpectBreakdown(RunSqueezyGuest(), kSqueezyGolden, "Squeezy");
}

TEST(PolicyParityTest, SingleHostChurnMatchesPreRefactor) {
  if (DumpMode())
    std::cout << "// host {completed, latency_sum, pending, unplug_fail, evictions, "
                 "peak, final}\n";
  for (int i = 0; i < 4; ++i) {
    ExpectHost(RunHostScenario(kAllPolicies[i]), kHostGolden[i],
               ReclaimPolicyName(kAllPolicies[i]));
  }
}

TEST(PolicyParityTest, FleetBinPackRoutingMatchesPreRefactor) {
  if (DumpMode())
    std::cout << "// fleet {routing_hash, completed, pending, unplaced, peak}\n";
  for (int i = 0; i < 4; ++i) {
    ExpectFleet(RunFleetScenario(kAllPolicies[i]), kFleetGolden[i],
                ReclaimPolicyName(kAllPolicies[i]));
  }
}

}  // namespace
}  // namespace squeezy
