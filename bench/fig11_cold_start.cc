// Fig 11: the N:1 model (dynamically resized with Squeezy) vs. the 1:1
// microVM model.
//   (a) cold-start breakdown: VMM delays (boot vs. plug), container init,
//       function init, function exec — N:1 is ~1.6x faster on average;
//   (b) per-instance memory footprint — 1:1 instances occupy ~2.53x more.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/dep_cache.h"
#include "src/faas/function.h"
#include "src/faas/microvm.h"
#include "src/faas/runtime.h"
#include "src/metrics/csv.h"
#include "src/metrics/latency_recorder.h"
#include "src/metrics/table.h"
#include "src/snapshot/snapshot_store.h"

namespace squeezy {
namespace {

constexpr int kColdStarts = 6;  // Per function; the first (cold-cache) one
                                // in the N:1 VM is kept — it is a real cold
                                // start too, matching the paper's mean.

struct ModelResult {
  ColdStartBreakdown mean;
  ColdStartBreakdown first;  // The cold-cache first start (deps not yet cached).
  uint64_t footprint = 0;    // Marginal host bytes per instance.
  uint64_t dep_remote_bytes = 0;  // Deps bytes served from the peer, not disk.
};

ColdStartBreakdown MeanOf(const std::vector<ColdStartBreakdown>& v, size_t skip = 0) {
  ColdStartBreakdown sum;
  size_t n = 0;
  for (size_t i = skip; i < v.size(); ++i) {
    sum.vmm += v[i].vmm;
    sum.container_init += v[i].container_init;
    sum.function_init += v[i].function_init;
    sum.first_exec += v[i].first_exec;
    ++n;
  }
  if (n > 0) {
    sum.vmm /= static_cast<DurationNs>(n);
    sum.container_init /= static_cast<DurationNs>(n);
    sum.function_init /= static_cast<DurationNs>(n);
    sum.first_exec /= static_cast<DurationNs>(n);
  }
  return sum;
}

// N:1: one Squeezy VM; cold starts spaced past keep-alive so every request
// spawns a fresh instance in the warm VM.  With `peer_cache`, the host
// joins a 2-host dependency cache whose OTHER host already holds the
// function's image warm: the first cold start fetches the dependencies at
// wire speed instead of paying cold backing-store IO (TrEnv-X-style).
ModelResult RunN1(const FunctionSpec& spec, DepCache* peer_cache = nullptr,
                  SnapshotStore* snapshots = nullptr) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(128);
  cfg.keep_alive = Sec(30);
  FaasRuntime rt(cfg);
  if (peer_cache != nullptr) {
    rt.AttachDepRegistry(peer_cache, 1);
  }
  if (snapshots != nullptr) {
    rt.AttachSnapshotRegistry(snapshots);
  }
  const int fn = rt.AddFunction(spec, 4);
  if (peer_cache != nullptr) {
    // The peer (host 0) holds the image resident and warm.
    peer_cache->PinImage(0, rt.dep_image(fn));
    peer_cache->MarkPopulated(0, rt.dep_image(fn));
  }

  std::vector<Invocation> trace;
  for (int i = 0; i < kColdStarts; ++i) {
    trace.push_back({Minutes(2) * i + Sec(5), fn});
  }
  rt.SubmitTrace(trace);

  // Marginal footprint: host-populated delta across one instance's
  // lifetime, measured around the 3rd cold start (VM fully warm).
  uint64_t populated_before = 0;
  uint64_t populated_after = 0;
  const VmId vm = rt.guest(fn).vm_id();
  rt.events().ScheduleAt(Minutes(2) * 2 + Sec(4),
                         [&] { populated_before = rt.hypervisor().stats(vm).populated_bytes; });
  rt.events().ScheduleAt(Minutes(2) * 2 + Sec(30),
                         [&] { populated_after = rt.hypervisor().stats(vm).populated_bytes; });
  rt.RunUntil(Minutes(2) * kColdStarts + Minutes(2));

  ModelResult result;
  result.mean = MeanOf(rt.agent(fn).cold_starts(), /*skip=*/1);  // Skip the cold-cache first.
  result.first = rt.agent(fn).cold_starts().front();
  result.footprint = populated_after - populated_before;
  const PageCache& pc = static_cast<const FaasRuntime&>(rt).guest(fn).page_cache();
  const int32_t deps = rt.agent(fn).deps_file();
  result.dep_remote_bytes = pc.remote_read_bytes(deps) + pc.adopted_bytes(deps);
  return result;
}

// Records the function's snapshot into `snapshots` by warming one
// instance on a separate "recorder" host: snapshots live on shared
// storage, so the measured host below restores from the very first start
// (the REAP model — another host in the fleet already ran the function).
void PreRecordSnapshot(const FunctionSpec& spec, SnapshotStore* snapshots) {
  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kSqueezy;
  cfg.host_capacity = GiB(128);
  cfg.keep_alive = Sec(30);
  FaasRuntime rt(cfg);
  rt.AttachSnapshotRegistry(snapshots);
  const int fn = rt.AddFunction(spec, 4);
  rt.events().ScheduleAt(Sec(1), [&rt, fn] { rt.agent(fn).Submit(); });
  rt.RunUntil(Minutes(1));  // First fully-warm idle records.
}

// 1:1: every cold start boots a dedicated microVM with a cold page cache.
ModelResult Run11(const FunctionSpec& spec) {
  HostMemory host(GiB(128));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  EventQueue events;
  MicroVmPoolConfig mcfg;
  mcfg.keep_alive = Sec(30);
  MicroVmPool pool(&events, &hv, &host, spec, mcfg);

  for (int i = 0; i < kColdStarts; ++i) {
    events.ScheduleAt(Minutes(2) * i + Sec(5), [&pool] { pool.Submit(); });
  }
  events.RunUntil(Minutes(2) * kColdStarts + Minutes(2));

  ModelResult result;
  result.mean = MeanOf(pool.ColdStarts());
  uint64_t footprint_sum = 0;
  // Footprint right after each VM's first request (before shutdown): use
  // the peak populated bytes per VM; the last VM may still be alive.
  size_t counted = 0;
  for (size_t i = 0; i < pool.vm_count(); ++i) {
    if (pool.InstanceFootprint(i) > 0) {
      footprint_sum += pool.InstanceFootprint(i);
      ++counted;
    }
  }
  result.footprint = counted > 0 ? footprint_sum / counted : 0;
  return result;
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 11 (a+b)",
              "N:1 (Squeezy-resized) vs 1:1 microVMs: cold starts 1.6x faster on average "
              "(up to 2.35x), instance footprints 2.53x smaller on average");

  TablePrinter table({"Function", "Model", "VMM (ms)", "Container (ms)", "FuncInit (ms)",
                      "Exec (ms)", "Total (ms)", "Footprint (MiB)"});
  CsvWriter csv("bench_results/fig11_cold_start.csv",
                {"function", "model", "vmm_ms", "container_ms", "funcinit_ms", "exec_ms",
                 "total_ms", "footprint_mib"});
  BenchJson json("fig11_cold_start");
  json.SetColumns({"function", "model", "vmm_ms", "container_ms", "funcinit_ms",
                   "exec_ms", "total_ms", "footprint_mib"});

  std::vector<double> speedups;
  std::vector<double> footprint_ratios;
  std::vector<double> dep_speedups;
  std::vector<double> snap_speedups;
  std::vector<double> snap_dep_speedups;
  uint64_t dep_cold_io_avoided = 0;
  uint64_t snapshot_prefetch_bytes = 0;
  uint64_t snap_tail_bytes = 0;
  uint64_t snap_restored_heap = 0;
  for (const FunctionSpec& spec : PaperFunctions()) {
    const ModelResult n1 = RunN1(spec);
    DepCache cache(2);
    const ModelResult n1_dep = RunN1(spec, &cache);
    // Snapshot rows: another host already recorded the working set, so the
    // measured host's FIRST start is one bulk prefetch instead of serial
    // container/function init + demand faults; with the dependency cache
    // on top, the peer-resident image drops the deps bytes from the
    // prefetch too.
    SnapshotStore snap_store;
    PreRecordSnapshot(spec, &snap_store);
    const ModelResult n1_snap = RunN1(spec, nullptr, &snap_store);
    SnapshotStore snap_dep_store;
    DepCache snap_cache(2);
    PreRecordSnapshot(spec, &snap_dep_store);
    const ModelResult n1_snap_dep = RunN1(spec, &snap_cache, &snap_dep_store);
    const ModelResult one1 = Run11(spec);
    // Only the cold-cache FIRST start reads the dependencies at all (the
    // later ones hit the warm page cache), so the dep-cache win is
    // first-start vs first-start: peer fetch at wire speed vs cold IO.
    // Avoided IO is MEASURED from the run's page-cache counters, not
    // asserted from the spec.
    dep_speedups.push_back(static_cast<double>(n1.first.total()) /
                           static_cast<double>(n1_dep.first.total()));
    dep_cold_io_avoided += n1_dep.dep_remote_bytes;
    snap_speedups.push_back(static_cast<double>(n1.first.total()) /
                            static_cast<double>(n1_snap.first.total()));
    snap_dep_speedups.push_back(static_cast<double>(n1.first.total()) /
                                static_cast<double>(n1_snap_dep.first.total()));
    snapshot_prefetch_bytes +=
        snap_store.stats().prefetch_bytes + snap_dep_store.stats().prefetch_bytes;
    snap_tail_bytes += snap_store.stats().tail_bytes + snap_dep_store.stats().tail_bytes;
    snap_restored_heap +=
        snap_store.stats().restored_heap_bytes + snap_dep_store.stats().restored_heap_bytes;

    struct Row {
      const char* model;
      const ModelResult* r;
    };
    const Row rows[] = {{"1:1", &one1},
                        {"N:1", &n1},
                        {"N:1+DepC", &n1_dep},
                        {"Snapshot", &n1_snap},
                        {"Snapshot+DepC", &n1_snap_dep}};
    for (const Row& row : rows) {
      const ColdStartBreakdown& c = row.r->mean;
      table.AddRow({spec.name, row.model, TablePrinter::Num(ToMsec(c.vmm), 0),
                    TablePrinter::Num(ToMsec(c.container_init), 0),
                    TablePrinter::Num(ToMsec(c.function_init), 0),
                    TablePrinter::Num(ToMsec(c.first_exec), 0),
                    TablePrinter::Num(ToMsec(c.total()), 0),
                    TablePrinter::Num(static_cast<double>(row.r->footprint) /
                                          static_cast<double>(MiB(1)),
                                      0)});
      const std::vector<std::string> cells = {
          spec.name, row.model, TablePrinter::Num(ToMsec(c.vmm), 1),
          TablePrinter::Num(ToMsec(c.container_init), 1),
          TablePrinter::Num(ToMsec(c.function_init), 1),
          TablePrinter::Num(ToMsec(c.first_exec), 1),
          TablePrinter::Num(ToMsec(c.total()), 1),
          TablePrinter::Num(static_cast<double>(row.r->footprint) /
                                static_cast<double>(MiB(1)),
                            1)};
      csv.AddRow(cells);
      json.AddRow(cells);
    }
    table.AddRule();
    speedups.push_back(static_cast<double>(one1.mean.total()) /
                       static_cast<double>(n1.mean.total()));
    footprint_ratios.push_back(static_cast<double>(one1.footprint) /
                               static_cast<double>(n1.footprint));
  }
  table.Print(std::cout);

  double max_speedup = 0;
  for (const double s : speedups) {
    max_speedup = std::max(max_speedup, s);
  }
  json.Metric("coldstart_speedup_geomean", Geomean(speedups));
  json.Metric("coldstart_speedup_max", max_speedup);
  json.Metric("footprint_inflation_geomean", Geomean(footprint_ratios));
  json.Metric("dep_cache_first_start_speedup_geomean", Geomean(dep_speedups));
  json.Metric("dep_cold_io_avoided_bytes", dep_cold_io_avoided);
  json.Metric("snapshot_restore_speedup_geomean", Geomean(snap_speedups));
  json.Metric("snapshot_depc_restore_speedup_geomean", Geomean(snap_dep_speedups));
  json.Metric("snapshot_prefetch_bytes", snapshot_prefetch_bytes);
  json.Metric("snapshot_tail_fault_rate_pct",
              snap_restored_heap == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(snap_tail_bytes) /
                        static_cast<double>(snap_restored_heap));
  json.Metric("paper_speedup_target", 1.6);
  json.Metric("paper_footprint_target", 2.53);
  const std::string json_path = json.Write();
  std::cout << "\nN:1 cold-start speedup over 1:1 (mean): " << Ratio(Geomean(speedups))
            << "  (paper: 1.6x, up to 2.35x; here max " << Ratio(max_speedup) << ")\n"
            << "1:1 footprint inflation (mean):         " << Ratio(Geomean(footprint_ratios))
            << "  (paper: 2.53x)\n"
            << "Dep-cache first-start speedup (mean):   " << Ratio(Geomean(dep_speedups))
            << "  (peer fetch vs cold IO on the cold-cache start)\n"
            << "Snapshot first-start speedup (mean):    " << Ratio(Geomean(snap_speedups))
            << "  (bulk prefetch vs serial cold phases)\n"
            << "Snapshot+DepC first-start speedup:      " << Ratio(Geomean(snap_dep_speedups))
            << "  (deps dropped from the prefetch via peer residency)\n"
            << "CSV: bench_results/fig11_cold_start.csv\nJSON: " << json_path << "\n";
  return 0;
}
