// Fig 9: CNN request latency around a scale-down event of co-located
// HTML instances.  Vanilla virtio-mem's migration work steals a vCPU from
// the running CNN instances and more than doubles their latency; Squeezy
// reclaims without migrations and leaves them untouched.
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/faas/agent.h"
#include "src/faas/function.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"
#include "src/sim/event_queue.h"

namespace squeezy {
namespace {

constexpr int kHtmlTenants = 4;
constexpr uint64_t kUnit = MiB(768);
constexpr TimeNs kScaleDownAt = Sec(125);
constexpr TimeNs kEnd = Sec(170);

// Per-second mean CNN latency between 100 s and 170 s.
std::map<int64_t, double> RunVariant(bool use_squeezy) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  EventQueue events;

  FunctionSpec cnn = CnnSpec();
  cnn.exec_cv = 0.0;  // Deterministic latencies: the spike is the signal.

  // The shared file region must hold the CNN deps AND the HTML tenants'
  // 200 MiB of file pages (they share the VM's page cache).
  const uint64_t deps_region =
      BytesToBlocks(cnn.file_deps_bytes + MiB(200) + MiB(64)) * kMemoryBlockBytes;
  GuestConfig gcfg;
  gcfg.name = use_squeezy ? "sqz" : "vanilla";
  gcfg.base_memory = MiB(512);
  gcfg.seed = 5;
  gcfg.unplug_timeout = Sec(30);

  SqueezyConfig scfg;
  scfg.partition_bytes = kUnit;
  scfg.nr_partitions = 8;  // 2 CNN + 4 HTML + slack.
  scfg.shared_bytes = deps_region;
  gcfg.hotplug_region = use_squeezy ? scfg.region_bytes() : 8 * kUnit + deps_region;

  GuestKernel guest(gcfg, &hv);
  std::unique_ptr<SqueezyManager> sqz;
  if (use_squeezy) {
    sqz = std::make_unique<SqueezyManager>(&guest, scfg);
    for (int i = 0; i < 8; ++i) {
      guest.PlugMemory(kUnit, 0);  // Populate every partition up front.
    }
  } else {
    guest.PlugMemory(gcfg.hotplug_region, 0);
    guest.movable_zone().ShuffleFreeLists(guest.rng());
  }

  // HTML tenants: anonymous + file footprints that (in the vanilla VM)
  // interleave with CNN memory in the movable zone.
  const int32_t html_file = guest.CreateFile("html-deps", MiB(200));
  std::vector<Pid> html;
  for (int i = 0; i < kHtmlTenants; ++i) {
    const Pid pid = guest.CreateProcess();
    if (use_squeezy) {
      sqz->SqueezyEnable(pid);
    }
    guest.TouchFile(pid, html_file, MiB(200), 0);
    guest.TouchAnon(pid, MiB(420), 0);
    html.push_back(pid);
  }

  // CNN agent: 2 instances on 2 vCPUs, driven to near saturation.
  AgentConfig acfg;
  acfg.max_concurrency = 2;
  acfg.vcpus = 2;
  acfg.keep_alive = Minutes(10);
  acfg.use_squeezy = use_squeezy;
  AgentCallbacks cbs;
  cbs.acquire_memory = [&events](std::function<void(DurationNs)> ready) {
    events.ScheduleAfter(Msec(40), [ready = std::move(ready)] { ready(Msec(40)); });
  };
  cbs.release_memory = [] {};
  Agent agent(&events, &guest, sqz.get(), cnn, acfg, std::move(cbs), 77);

  // Steady arrivals: one every 250 ms keeps both instances ~90% busy.
  for (TimeNs t = Sec(60); t < kEnd; t += Msec(250)) {
    events.ScheduleAt(t, [&agent] { agent.Submit(); });
  }

  // The scale-down event: all HTML tenants retire at once and the runtime
  // reclaims their memory.
  events.ScheduleAt(kScaleDownAt, [&] {
    for (const Pid pid : html) {
      guest.Exit(pid);
    }
    const UnplugOutcome out =
        guest.UnplugMemory(static_cast<uint64_t>(kHtmlTenants) * kUnit, events.now());
    // The virtio-mem worker's guest-side CPU time competes with CNN.
    agent.AddKernelInterference(out.breakdown.total() - out.breakdown.vm_exits);
  });

  events.RunUntil(kEnd);

  // Bin request latencies by completion second.
  std::map<int64_t, std::pair<double, int>> bins;
  for (const RequestRecord& r : agent.requests()) {
    if (r.done >= Sec(100) && !r.cold) {
      auto& [sum, n] = bins[r.done / Sec(1)];
      sum += ToMsec(r.latency());
      n += 1;
    }
  }
  std::map<int64_t, double> out;
  for (const auto& [second, acc] : bins) {
    out[second] = acc.first / acc.second;
  }
  return out;
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 9",
              "during an HTML scale-down, vanilla virtio-mem migrations slow co-located CNN "
              "requests by >2x; Squeezy does not interfere");

  const std::map<int64_t, double> vanilla = RunVariant(/*use_squeezy=*/false);
  const std::map<int64_t, double> squeezy = RunVariant(/*use_squeezy=*/true);

  CsvWriter csv("bench_results/fig09_interference.csv",
                {"second", "virtio_ms", "squeezy_ms"});
  BenchJson json("fig09_interference");
  json.SetColumns({"second", "virtio_ms", "squeezy_ms"});
  TablePrinter table({"t (s)", "Virtio-mem (ms)", "Squeezy (ms)"});
  double base_vanilla = 0;
  int base_n = 0;
  double peak_vanilla = 0;
  double peak_squeezy = 0;
  for (int64_t s = 100; s < 170; ++s) {
    const double v = vanilla.count(s) ? vanilla.at(s) : 0.0;
    const double q = squeezy.count(s) ? squeezy.at(s) : 0.0;
    const std::vector<std::string> row = {std::to_string(s), TablePrinter::Num(v, 1),
                                          TablePrinter::Num(q, 1)};
    csv.AddRow(row);
    json.AddRow(row);
    if (s % 5 == 0) {
      table.AddRow({std::to_string(s), TablePrinter::Num(v, 1), TablePrinter::Num(q, 1)});
    }
    if (s < 125 && v > 0) {
      base_vanilla += v;
      ++base_n;
    }
    if (s >= 125 && s < 145) {
      peak_vanilla = std::max(peak_vanilla, v);
      peak_squeezy = std::max(peak_squeezy, q);
    }
  }
  table.Print(std::cout);
  const double base = base_n > 0 ? base_vanilla / base_n : 1.0;
  std::cout << "\nCNN baseline latency:                " << TablePrinter::Num(base, 1) << " ms\n"
            << "Virtio-mem peak during scale-down:   " << TablePrinter::Num(peak_vanilla, 1)
            << " ms (" << Ratio(peak_vanilla / base) << " vs baseline; paper: >2x)\n"
            << "Squeezy peak during scale-down:      " << TablePrinter::Num(peak_squeezy, 1)
            << " ms (" << Ratio(peak_squeezy / base) << ")\n";
  json.Metric("cnn_baseline_ms", base);
  json.Metric("virtio_peak_ms", peak_vanilla);
  json.Metric("squeezy_peak_ms", peak_squeezy);
  json.Metric("virtio_slowdown", base > 0 ? peak_vanilla / base : 0.0);
  json.Metric("squeezy_slowdown", base > 0 ? peak_squeezy / base : 0.0);
  const std::string json_path = json.Write();
  std::cout << "CSV: bench_results/fig09_interference.csv\nJSON: " << json_path << "\n";
  return 0;
}
