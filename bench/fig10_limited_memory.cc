// Fig 10: end-to-end execution when host memory is limited to ~70% of the
// abundant-memory peak.  Scale-ups must reuse memory released by
// scale-downs, so reclamation speed gates tail latency.
//
// Left pane: normalized P99 latency per function per method (paper:
// virtio-mem 3.15x, HarvestVM-opts 1.36x, Squeezy ~1.1x on average).
// Right pane: memory-utilization timelines and the GiB*s footprint
// (paper: Squeezy cuts the footprint by ~45%/42.5% vs HarvestVM-opts /
// virtio-mem).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/metrics/csv.h"
#include "src/metrics/latency_recorder.h"
#include "src/metrics/table.h"
#include "src/trace/trace_gen.h"

namespace squeezy {
namespace {

constexpr TimeNs kDuration = Minutes(20);
constexpr uint32_t kConcurrency = 12;

// Phase-offset bursty load: each function's bursts land while the others
// idle, so under restricted memory every spike must actively reclaim the
// memory of other functions' idle instances (the paper's §6.2.2 setup,
// emulating Fig 2's spawn/reclaim churn at small scale).
std::vector<Invocation> PhaseOffsetTrace(int fn, size_t nr_functions, Rng& rng) {
  std::vector<Invocation> out;
  const DurationNs period = Sec(200);
  const DurationNs burst_len = Sec(30);
  const DurationNs offset = Sec(200 / static_cast<int64_t>(nr_functions)) * fn;
  for (TimeNs t = 0; t < kDuration - Minutes(2); t += Sec(1)) {
    const TimeNs phase = (t + period - offset) % period;
    const double rate = phase < burst_len ? 6.0 : 0.15;
    const int64_t n = rng.Poisson(rate);
    for (int64_t i = 0; i < n; ++i) {
      out.push_back({t + static_cast<DurationNs>(rng.Uniform(0, 1e9)), fn});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Invocation& a, const Invocation& b) { return a.at < b.at; });
  return out;
}

struct RunResult {
  std::vector<DurationNs> p99;       // Per function.
  double gib_seconds = 0;            // Committed-memory integral.
  uint64_t peak_committed = 0;
  std::vector<double> util_timeline; // Committed bytes sampled per 5 s.
  uint64_t unplug_failures = 0;
};

RunResult RunOnce(ReclaimPolicy policy, uint64_t capacity, uint64_t seed) {
  RuntimeConfig cfg;
  cfg.policy = policy;
  cfg.host_capacity = capacity;
  cfg.keep_alive = Sec(45);
  cfg.seed = seed;
  // FaaS-grade latency bound on reclamation: requests that virtio-mem
  // cannot finish in time complete partially (paper: "reclamation
  // timeouts lead virtio-mem to reclaim less memory than targeted").
  cfg.unplug_timeout = Sec(1);
  cfg.pressure_check_period = Msec(500);
  FaasRuntime rt(cfg);

  const std::vector<FunctionSpec> specs = PaperFunctions();
  std::vector<std::vector<Invocation>> traces;
  Rng rng(2024 + seed);  // Same seeds across policies: identical workloads.
  for (size_t i = 0; i < specs.size(); ++i) {
    const int fn = rt.AddFunction(specs[i], kConcurrency);
    traces.push_back(PhaseOffsetTrace(fn, specs.size(), rng));
  }
  rt.SubmitTrace(MergeTraces(std::move(traces)));
  rt.RunUntil(kDuration);

  RunResult result;
  for (size_t i = 0; i < specs.size(); ++i) {
    LatencyRecorder& lat = rt.agent(static_cast<int>(i)).latencies();
    result.p99.push_back(lat.empty() ? 0 : lat.Percentile(99));
  }
  const StepSeries& committed = rt.host().committed_series();
  result.gib_seconds = committed.IntegralSec(0, kDuration) / static_cast<double>(GiB(1));
  result.peak_committed = static_cast<uint64_t>(committed.Max());
  for (TimeNs t = 0; t <= kDuration; t += Sec(5)) {
    result.util_timeline.push_back(committed.At(t));
  }
  result.unplug_failures = rt.total_unplug_failures();
  return result;
}

// Five seeds, per-function P99 averaged; memory stats from the first.
RunResult Run(ReclaimPolicy policy, uint64_t capacity) {
  RunResult agg = RunOnce(policy, capacity, 11);
  const uint64_t extra_seeds[] = {29, 47, 83, 131};
  for (const uint64_t seed : extra_seeds) {
    const RunResult r = RunOnce(policy, capacity, seed);
    for (size_t i = 0; i < agg.p99.size(); ++i) {
      agg.p99[i] += r.p99[i];
    }
    agg.unplug_failures += r.unplug_failures;
  }
  for (DurationNs& p : agg.p99) {
    p /= 5;
  }
  return agg;
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 10",
              "with host memory capped at ~70% of the abundant peak: virtio-mem P99 ~3.15x, "
              "HarvestVM-opts ~1.36x, Squeezy ~1.1x; Squeezy's GiB*s footprint ~45%/42.5% "
              "below HarvestVM-opts / virtio-mem");

  // Abundant baseline (dynamic Squeezy resizing, memory never scarce).
  const RunResult abundant = Run(ReclaimPolicy::kSqueezy, GiB(512));
  const uint64_t cap = static_cast<uint64_t>(0.55 * static_cast<double>(abundant.peak_committed));
  std::cout << "Abundant-memory peak: "
            << TablePrinter::Num(static_cast<double>(abundant.peak_committed) /
                                 static_cast<double>(GiB(1)))
            << " GiB -> restricted capacity: "
            << TablePrinter::Num(static_cast<double>(cap) / static_cast<double>(GiB(1)))
            << " GiB\n\n";

  const RunResult virtio = Run(ReclaimPolicy::kVirtioMem, cap);
  const RunResult harvest = Run(ReclaimPolicy::kHarvestOpts, cap);
  const RunResult squeezy = Run(ReclaimPolicy::kSqueezy, cap);

  const std::vector<FunctionSpec> specs = PaperFunctions();
  TablePrinter table({"Function", "Abundant P99(ms)", "Virtio-mem", "HarvestVM-opts", "Squeezy"});
  CsvWriter csv("bench_results/fig10_p99.csv",
                {"function", "abundant_ms", "virtio_norm", "harvest_norm", "squeezy_norm"});
  BenchJson json("fig10_limited_memory");
  json.SetColumns({"function", "abundant_ms", "virtio_norm", "harvest_norm", "squeezy_norm"});
  std::vector<double> virtio_norms;
  std::vector<double> harvest_norms;
  std::vector<double> squeezy_norms;
  for (size_t i = 0; i < specs.size(); ++i) {
    const double base = static_cast<double>(abundant.p99[i]);
    const double nv = static_cast<double>(virtio.p99[i]) / base;
    const double nh = static_cast<double>(harvest.p99[i]) / base;
    const double ns = static_cast<double>(squeezy.p99[i]) / base;
    virtio_norms.push_back(nv);
    harvest_norms.push_back(nh);
    squeezy_norms.push_back(ns);
    table.AddRow({specs[i].name, TablePrinter::Num(ToMsec(abundant.p99[i]), 0), Ratio(nv),
                  Ratio(nh), Ratio(ns)});
    const std::vector<std::string> row = {
        specs[i].name, TablePrinter::Num(ToMsec(abundant.p99[i]), 1),
        TablePrinter::Num(nv), TablePrinter::Num(nh), TablePrinter::Num(ns)};
    csv.AddRow(row);
    json.AddRow(row);
  }
  table.AddRule();
  table.AddRow({"Geomean", "1.00x", Ratio(Geomean(virtio_norms)), Ratio(Geomean(harvest_norms)),
                Ratio(Geomean(squeezy_norms))});
  table.Print(std::cout);
  std::cout << "(paper geomeans: virtio-mem 3.15x, HarvestVM-opts 1.36x, Squeezy ~1.1x)\n\n";

  TablePrinter mem({"Method", "GiB*s", "vs Squeezy"});
  mem.AddRow({"Virtio-mem", TablePrinter::Num(virtio.gib_seconds, 0),
              Pct(1.0 - squeezy.gib_seconds / virtio.gib_seconds) + " saved"});
  mem.AddRow({"HarvestVM-opts", TablePrinter::Num(harvest.gib_seconds, 0),
              Pct(1.0 - squeezy.gib_seconds / harvest.gib_seconds) + " saved"});
  mem.AddRow({"Squeezy", TablePrinter::Num(squeezy.gib_seconds, 0), "-"});
  mem.Print(std::cout);
  std::cout << "(paper: Squeezy saves 45% vs HarvestVM-opts, 42.5% vs virtio-mem)\n"
            << "Virtio-mem unplug timeouts/partials during the run: " << virtio.unplug_failures
            << "\n\n";

  CsvWriter tl("bench_results/fig10_memory_timeline.csv",
               {"second", "virtio_gib", "harvest_gib", "squeezy_gib", "abundant_gib"});
  for (size_t i = 0; i < squeezy.util_timeline.size(); ++i) {
    const double gib = static_cast<double>(GiB(1));
    tl.AddRow({std::to_string(i * 5),
               TablePrinter::Num(virtio.util_timeline[i] / gib),
               TablePrinter::Num(harvest.util_timeline[i] / gib),
               TablePrinter::Num(squeezy.util_timeline[i] / gib),
               TablePrinter::Num(abundant.util_timeline[i] / gib)});
  }
  json.Metric("virtio_p99_geomean", Geomean(virtio_norms));
  json.Metric("harvest_p99_geomean", Geomean(harvest_norms));
  json.Metric("squeezy_p99_geomean", Geomean(squeezy_norms));
  json.Metric("squeezy_gib_s", squeezy.gib_seconds);
  json.Metric("gib_s_saved_vs_virtio_pct",
              virtio.gib_seconds > 0
                  ? 100.0 * (1.0 - squeezy.gib_seconds / virtio.gib_seconds)
                  : 0.0);
  json.Metric("gib_s_saved_vs_harvest_pct",
              harvest.gib_seconds > 0
                  ? 100.0 * (1.0 - squeezy.gib_seconds / harvest.gib_seconds)
                  : 0.0);
  json.Metric("virtio_unplug_failures", virtio.unplug_failures);
  const std::string json_path = json.Write();
  std::cout << "CSV: bench_results/fig10_p99.csv, bench_results/fig10_memory_timeline.csv\n"
            << "JSON: " << json_path << "\n";
  return 0;
}
