// Fig 5: average latency to reclaim memory of different sizes from a
// guest with memhog-loaded CPUs, broken down into zeroing / migration /
// VM-exit / rest slices, for balloon vs. vanilla virtio-mem vs. Squeezy.
//
// Paper setup (§6.1.1): a 32:1 VM whose memory is fully occupied by 32
// memhog instances; instances are killed one by one and the host reclaims
// one instance's memory per step; the figure reports the mean of the 32
// steps per reclaim size.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/csv.h"
#include "src/metrics/latency_recorder.h"
#include "src/metrics/table.h"
#include "src/trace/memhog.h"

namespace squeezy {
namespace {

constexpr int kInstances = 32;

struct MethodResult {
  UnplugBreakdown mean;  // Mean per-step breakdown.
  DurationNs total() const { return mean.total(); }
};

// Balloon / vanilla virtio-mem on an interleaved movable zone.
MethodResult RunVanilla(uint64_t reclaim_bytes, bool balloon) {
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.name = balloon ? "balloon-vm" : "virtio-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = static_cast<uint64_t>(kInstances) * reclaim_bytes;
  cfg.seed = 1234 + reclaim_bytes / MiB(1);
  cfg.unplug_timeout = Minutes(5);  // No timeouts in the microbenchmark.
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(cfg.hotplug_region, 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());  // Steady-state scatter.

  // 32 memhogs fully occupy the VM; churn scatters their footprints.
  std::vector<std::unique_ptr<Memhog>> hogs;
  MemhogConfig mcfg;
  mcfg.bytes = reclaim_bytes - MiB(8);  // Small slack for churn headroom.
  mcfg.churn_fraction = 0.2;
  mcfg.warmup_cycles = 3;
  for (int i = 0; i < kInstances; ++i) {
    hogs.push_back(std::make_unique<Memhog>(&guest, mcfg));
    const bool ok = hogs.back()->Start(0);
    if (!ok) {
      std::cerr << "memhog start failed\n";
      std::exit(1);
    }
  }

  MethodResult result;
  UnplugBreakdown sum;
  for (int step = 0; step < kInstances; ++step) {
    hogs[static_cast<size_t>(step)]->Stop();
    if (balloon) {
      const BalloonOutcome out = guest.BalloonReclaim(reclaim_bytes, 0);
      sum.Add(out.breakdown);
    } else {
      const UnplugOutcome out = guest.UnplugMemory(reclaim_bytes, 0);
      sum.Add(out.breakdown);
    }
  }
  result.mean.zeroing = sum.zeroing / kInstances;
  result.mean.migration = sum.migration / kInstances;
  result.mean.vm_exits = sum.vm_exits / kInstances;
  result.mean.rest = sum.rest / kInstances;
  return result;
}

MethodResult RunSqueezy(uint64_t reclaim_bytes) {
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);

  SqueezyConfig scfg;
  scfg.partition_bytes = reclaim_bytes;
  scfg.nr_partitions = kInstances;
  scfg.shared_bytes = 0;  // memhog is purely anonymous.

  GuestConfig cfg;
  cfg.name = "squeezy-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 99;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);

  // Plug every partition and run one memhog per partition.
  std::vector<Pid> pids;
  for (int i = 0; i < kInstances; ++i) {
    guest.PlugMemory(reclaim_bytes, 0);
    const Pid pid = guest.CreateProcess();
    const bool ok = sqz.SqueezyEnable(pid).has_value();
    if (!ok) {
      std::cerr << "squeezy enable failed\n";
      std::exit(1);
    }
    guest.TouchAnon(pid, reclaim_bytes - MiB(8), 0);
    pids.push_back(pid);
  }

  MethodResult result;
  UnplugBreakdown sum;
  for (int step = 0; step < kInstances; ++step) {
    guest.Exit(pids[static_cast<size_t>(step)]);
    const UnplugOutcome out = guest.UnplugMemory(reclaim_bytes, 0);
    sum.Add(out.breakdown);
    if (out.pages_migrated != 0) {
      std::cerr << "BUG: Squeezy unplug migrated pages\n";
      std::exit(1);
    }
  }
  result.mean.zeroing = sum.zeroing / kInstances;
  result.mean.migration = sum.migration / kInstances;
  result.mean.vm_exits = sum.vm_exits / kInstances;
  result.mean.rest = sum.rest / kInstances;
  return result;
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 5 (+§6.1.1 text)",
              "balloon is VM-exit bound (81%); virtio-mem is 2.34x faster than balloon but "
              "dominated by migration (61.5%) + zeroing (24%); Squeezy is ~10.9x faster than "
              "virtio-mem, e.g. ~127 ms for 2 GiB");

  const std::vector<uint64_t> sizes = {MiB(128), MiB(256), MiB(512), MiB(1024), MiB(2048)};
  TablePrinter table({"Reclaimed", "Method", "Zeroing(ms)", "Migration(ms)", "VMExits(ms)",
                      "Rest(ms)", "Total(ms)"});
  CsvWriter csv("bench_results/fig05_reclaim_latency.csv",
                {"size_mib", "method", "zeroing_ms", "migration_ms", "vmexits_ms", "rest_ms",
                 "total_ms"});
  BenchJson json("fig05_reclaim_latency");
  json.SetColumns({"size_mib", "method", "zeroing_ms", "migration_ms", "vmexits_ms",
                   "rest_ms", "total_ms"});

  std::vector<double> balloon_over_virtio;
  std::vector<double> virtio_over_squeezy;
  DurationNs squeezy_2gib = 0;

  for (const uint64_t size : sizes) {
    const MethodResult balloon = RunVanilla(size, /*balloon=*/true);
    const MethodResult virtio = RunVanilla(size, /*balloon=*/false);
    const MethodResult squeezy = RunSqueezy(size);
    if (size == MiB(2048)) {
      squeezy_2gib = squeezy.total();
    }

    struct Row {
      const char* name;
      const MethodResult* r;
    };
    const Row rows[] = {{"Balloon", &balloon}, {"Virtio-mem", &virtio}, {"Squeezy", &squeezy}};
    for (const Row& row : rows) {
      const UnplugBreakdown& b = row.r->mean;
      table.AddRow({std::to_string(size / MiB(1)) + " MiB", row.name,
                    TablePrinter::Num(ToMsec(b.zeroing)), TablePrinter::Num(ToMsec(b.migration)),
                    TablePrinter::Num(ToMsec(b.vm_exits)), TablePrinter::Num(ToMsec(b.rest)),
                    TablePrinter::Num(ToMsec(b.total()))});
      const std::vector<std::string> cells = {
          std::to_string(size / MiB(1)), row.name, TablePrinter::Num(ToMsec(b.zeroing)),
          TablePrinter::Num(ToMsec(b.migration)), TablePrinter::Num(ToMsec(b.vm_exits)),
          TablePrinter::Num(ToMsec(b.rest)), TablePrinter::Num(ToMsec(b.total()))};
      csv.AddRow(cells);
      json.AddRow(cells);
    }
    table.AddRule();
    balloon_over_virtio.push_back(static_cast<double>(balloon.total()) /
                                  static_cast<double>(virtio.total()));
    virtio_over_squeezy.push_back(static_cast<double>(virtio.total()) /
                                  static_cast<double>(squeezy.total()));
  }

  table.Print(std::cout);
  std::cout << "\nvirtio-mem speedup over balloon (mean):      "
            << Ratio(Geomean(balloon_over_virtio)) << "  (paper: 2.34x)\n"
            << "Squeezy speedup over virtio-mem (mean):      "
            << Ratio(Geomean(virtio_over_squeezy)) << "  (paper: 10.9x)\n"
            << "Squeezy latency to reclaim 2 GiB:            " << FormatDuration(squeezy_2gib)
            << "  (paper: ~127 ms)\n"
            << "CSV: bench_results/fig05_reclaim_latency.csv\n";
  json.Metric("virtio_speedup_over_balloon", Geomean(balloon_over_virtio));
  json.Metric("squeezy_speedup_over_virtio", Geomean(virtio_over_squeezy));
  json.Metric("squeezy_2gib_ms", ToMsec(squeezy_2gib));
  std::cout << "JSON: " << json.Write() << "\n";
  return 0;
}
