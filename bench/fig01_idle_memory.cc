// Fig 1: an over-provisioned N:1 VM serving a bursty trace.  The guest's
// allocated memory follows the instance count up and down, but the host
// keeps backing the high-watermark — idle memory stays tied down because
// nothing ever unplugs it.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"
#include "src/trace/trace_gen.h"

namespace squeezy {
namespace {

constexpr TimeNs kDuration = Sec(500);
constexpr uint32_t kConcurrency = 50;  // Paper: 50:1 VM.

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 1",
              "the N:1 model reserves memory for N instances even when the load is low: guest "
              "usage tracks the instance count; host usage stays at the high watermark");

  // A compact function so 50 instances fit comfortably in simulation.
  FunctionSpec spec;
  spec.name = "fig1-fn";
  spec.vcpu_shares = 0.25;
  spec.memory_limit = MiB(256);
  spec.anon_working_set = MiB(128);
  spec.file_deps_bytes = MiB(128);
  spec.container_init_cpu = Msec(300);
  spec.function_init_cpu = Msec(400);
  spec.exec_cpu_mean = Msec(250);

  RuntimeConfig cfg;
  cfg.policy = ReclaimPolicy::kStatic;  // Over-provisioned: never unplugs.
  cfg.host_capacity = GiB(64);
  cfg.keep_alive = Sec(60);
  // Start cold so the host line visibly climbs to its high watermark.
  cfg.warm_static_backing = false;
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(spec, kConcurrency);

  Rng rng(42);
  BurstyTraceConfig tcfg;
  tcfg.duration = kDuration - Sec(60);
  tcfg.base_rate_per_sec = 0.4;
  tcfg.burst_rate_per_sec = 35.0;
  tcfg.mean_burst_len = Sec(25);
  tcfg.mean_gap = Sec(90);
  tcfg.function = fn;
  rt.SubmitTrace(GenerateBurstyTrace(tcfg, rng));

  // Sample guest-allocated and host-populated bytes every second.
  struct Sample {
    double guest_gib;
    double host_gib;
    uint64_t instances;
  };
  std::vector<Sample> samples;
  for (TimeNs t = 0; t < kDuration; t += Sec(1)) {
    rt.events().ScheduleAt(t, [&rt, &samples, fn] {
      const double gib = static_cast<double>(GiB(1));
      samples.push_back(
          {static_cast<double>(rt.guest(fn).allocated_bytes()) / gib,
           static_cast<double>(rt.hypervisor().stats(rt.guest(fn).vm_id()).populated_bytes) / gib,
           rt.agent(fn).live_instances()});
    });
  }
  rt.RunUntil(kDuration);

  CsvWriter csv("bench_results/fig01_idle_memory.csv",
                {"second", "guest_gib", "host_gib", "instances"});
  BenchJson json("fig01_idle_memory");
  json.SetColumns({"second", "guest_gib", "host_gib", "instances"});
  double guest_peak = 0;
  for (size_t s = 0; s < samples.size(); ++s) {
    const std::vector<std::string> row = {
        std::to_string(s), TablePrinter::Num(samples[s].guest_gib),
        TablePrinter::Num(samples[s].host_gib),
        TablePrinter::Int(static_cast<int64_t>(samples[s].instances))};
    csv.AddRow(row);
    json.AddRow(row);
    guest_peak = std::max(guest_peak, samples[s].guest_gib);
  }

  TablePrinter table({"t (s)", "Guest (GiB)", "Host (GiB)", "#Instances"});
  for (size_t s = 0; s < samples.size(); s += 25) {
    table.AddRow({std::to_string(s), TablePrinter::Num(samples[s].guest_gib),
                  TablePrinter::Num(samples[s].host_gib),
                  TablePrinter::Int(static_cast<int64_t>(samples[s].instances))});
  }
  table.Print(std::cout);

  const Sample& last = samples.back();
  json.Metric("guest_end_gib", last.guest_gib);
  json.Metric("guest_peak_gib", guest_peak);
  json.Metric("host_end_gib", last.host_gib);
  json.Metric("idle_tied_down_gib", last.host_gib - last.guest_gib);
  const std::string json_path = json.Write();
  std::cout << "\nGuest usage at end:  " << TablePrinter::Num(last.guest_gib)
            << " GiB (load has dropped)\n"
            << "Host usage at end:   " << TablePrinter::Num(last.host_gib)
            << " GiB (stuck at the high watermark; guest peak was "
            << TablePrinter::Num(guest_peak) << " GiB)\n"
            << "Idle memory tied down: "
            << TablePrinter::Num(last.host_gib - last.guest_gib) << " GiB\n"
            << "CSV: bench_results/fig01_idle_memory.csv\nJSON: " << json_path << "\n";
  return 0;
}
