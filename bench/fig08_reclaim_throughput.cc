// Fig 8: memory reclamation throughput (MiB/s, log scale) while the FaaS
// runtime evicts instances under a realistic bursty load, per function,
// vanilla virtio-mem vs. Squeezy.  Paper: Squeezy achieves ~7x higher
// reclamation throughput on average.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/metrics/csv.h"
#include "src/metrics/latency_recorder.h"
#include "src/metrics/table.h"
#include "src/trace/trace_gen.h"

namespace squeezy {
namespace {

constexpr TimeNs kDuration = Minutes(10);

std::vector<double> RunPolicy(ReclaimPolicy policy) {
  RuntimeConfig cfg;
  cfg.policy = policy;
  cfg.host_capacity = GiB(192);  // Abundant memory (paper §6.2.1).
  cfg.keep_alive = Minutes(2);
  cfg.seed = 7;
  FaasRuntime rt(cfg);

  const std::vector<FunctionSpec> specs = PaperFunctions();
  std::vector<std::vector<Invocation>> traces;
  Rng rng(1337);
  for (size_t i = 0; i < specs.size(); ++i) {
    const int fn = rt.AddFunction(specs[i], /*max_concurrency=*/12);
    BurstyTraceConfig tcfg;
    tcfg.duration = kDuration - Minutes(3);
    tcfg.function = fn;
    tcfg.base_rate_per_sec = 0.25;
    tcfg.burst_rate_per_sec = 6.0;
    tcfg.mean_burst_len = Sec(25);
    tcfg.mean_gap = Sec(70);
    traces.push_back(GenerateBurstyTrace(tcfg, rng));
  }
  rt.SubmitTrace(MergeTraces(std::move(traces)));
  rt.RunUntil(kDuration);

  std::vector<double> throughput;
  for (size_t i = 0; i < specs.size(); ++i) {
    throughput.push_back(rt.ReclaimThroughputMiBps(static_cast<int>(i)));
  }
  return throughput;
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 8",
              "reclamation throughput per function under realistic FaaS load: Squeezy ~7x "
              "higher than vanilla virtio-mem (geomean)");

  const std::vector<double> vanilla = RunPolicy(ReclaimPolicy::kVirtioMem);
  const std::vector<double> squeezy = RunPolicy(ReclaimPolicy::kSqueezy);
  const std::vector<FunctionSpec> specs = PaperFunctions();

  TablePrinter table({"Function", "Virtio-mem (MiB/s)", "Squeezy (MiB/s)", "Speedup"});
  CsvWriter csv("bench_results/fig08_reclaim_throughput.csv",
                {"function", "virtio_mibps", "squeezy_mibps", "speedup"});
  BenchJson json("fig08_reclaim_throughput");
  json.SetColumns({"function", "virtio_mibps", "squeezy_mibps", "speedup"});
  std::vector<double> speedups;
  for (size_t i = 0; i < specs.size(); ++i) {
    const double ratio = vanilla[i] > 0 ? squeezy[i] / vanilla[i] : 0.0;
    speedups.push_back(ratio);
    table.AddRow({specs[i].name, TablePrinter::Num(vanilla[i], 0),
                  TablePrinter::Num(squeezy[i], 0), Ratio(ratio)});
    const std::vector<std::string> row = {specs[i].name, TablePrinter::Num(vanilla[i], 1),
                                          TablePrinter::Num(squeezy[i], 1),
                                          TablePrinter::Num(ratio)};
    csv.AddRow(row);
    json.AddRow(row);
  }
  table.AddRule();
  table.AddRow({"Geomean", "", "", Ratio(Geomean(speedups))});
  table.Print(std::cout);
  json.Metric("throughput_speedup_geomean", Geomean(speedups));
  const std::string json_path = json.Write();
  std::cout << "\n(paper geomean: ~7x)\nCSV: bench_results/fig08_reclaim_throughput.csv\nJSON: "
            << json_path << "\n";
  return 0;
}
