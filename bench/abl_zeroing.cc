// Ablation: the two Squeezy unplug-path optimizations in isolation.
//   1. Partitioning (zero migrations) with zeroing still on.
//   2. Zeroing skip (hot(un)plug-aware allocator) on vanilla virtio-mem.
// The paper attributes 61.5% of vanilla unplug latency to migrations and
// 24% to zeroing (Fig 5); this ablation shows how much each mechanism
// contributes independently.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/table.h"
#include "src/trace/memhog.h"

namespace squeezy {
namespace {

constexpr uint64_t kReclaim = GiB(1);
constexpr int kTenants = 8;

// Vanilla VM, one tenant exits, reclaim its share.
DurationNs VanillaUnplug(bool zeroing_enabled) {
  HostMemory host(GiB(32));
  CostModel cost = zeroing_enabled ? CostModel::Default() : CostModel::NoZeroing();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.name = "v";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = kTenants * kReclaim;
  cfg.seed = 31;
  cfg.unplug_timeout = Minutes(5);
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(cfg.hotplug_region, 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());
  std::vector<std::unique_ptr<Memhog>> hogs;
  for (int i = 0; i < kTenants; ++i) {
    hogs.push_back(std::make_unique<Memhog>(&guest, MemhogConfig{kReclaim - MiB(16), 0.25, 3}));
    hogs.back()->Start(0);
  }
  hogs[0]->Stop();
  return guest.UnplugMemory(kReclaim, 0).latency();
}

// Squeezy partitions, optionally with the zeroing skip disabled (i.e.
// partitioning alone).
DurationNs SqueezyUnplug(bool skip_zeroing) {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  if (!skip_zeroing) {
    // Disable the optimization by treating offlined pages like any other
    // allocator-touched pages: model via a manual offline pass.
  }
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = kReclaim;
  scfg.nr_partitions = kTenants;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.name = "s";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 32;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);
  std::vector<Pid> pids;
  for (int i = 0; i < kTenants; ++i) {
    guest.PlugMemory(kReclaim, 0);
    const Pid pid = guest.CreateProcess();
    sqz.SqueezyEnable(pid);
    guest.TouchAnon(pid, kReclaim - MiB(16), 0);
    pids.push_back(pid);
  }
  guest.Exit(pids[0]);
  if (skip_zeroing) {
    return guest.UnplugMemory(kReclaim, 0).latency();
  }
  // Partitioning-only variant: run the offline pipeline with zeroing
  // charged (what Squeezy would cost without the allocator patch).
  const Partition& part = sqz.partition(0);
  UnplugBreakdown bd;
  for (BlockIndex b = part.first_block; b < part.first_block + part.nr_blocks; ++b) {
    const OfflineResult res = guest.hotplug().OfflineBlock(
        b, part.zone, part.zone, OfflineOptions{/*skip_zeroing=*/false, /*allow_migration=*/false});
    bd.Add(res.breakdown);
    guest.hotplug().HotRemoveBlock(b, &bd, 0);
  }
  return bd.total();
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Ablation: partitioning vs zeroing-skip",
              "how much of Squeezy's unplug win comes from eliminating migrations vs from "
              "skipping the oblivious zeroing (Fig 5 slices: 61.5% / 24%)");

  const DurationNs vanilla = VanillaUnplug(/*zeroing_enabled=*/true);
  const DurationNs vanilla_nozero = VanillaUnplug(/*zeroing_enabled=*/false);
  const DurationNs partition_only = SqueezyUnplug(/*skip_zeroing=*/false);
  const DurationNs full = SqueezyUnplug(/*skip_zeroing=*/true);

  TablePrinter table({"Variant", "Unplug 1 GiB (ms)", "Speedup vs vanilla"});
  table.AddRow({"Vanilla virtio-mem", TablePrinter::Num(ToMsec(vanilla)), "1.00x"});
  table.AddRow({"Vanilla + zeroing skip", TablePrinter::Num(ToMsec(vanilla_nozero)),
                Ratio(static_cast<double>(vanilla) / static_cast<double>(vanilla_nozero))});
  table.AddRow({"Partitioning only (zeroing on)", TablePrinter::Num(ToMsec(partition_only)),
                Ratio(static_cast<double>(vanilla) / static_cast<double>(partition_only))});
  table.AddRow({"Squeezy (partitioning + skip)", TablePrinter::Num(ToMsec(full)),
                Ratio(static_cast<double>(vanilla) / static_cast<double>(full))});
  table.Print(std::cout);
  std::cout << "\nTakeaway: partitioning removes the dominant migration cost; the zeroing skip "
               "removes most of the remainder.\n";
  return 0;
}
