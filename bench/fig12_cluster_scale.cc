// Fig 12 (beyond-paper): fleet-level capacity under memory-constrained
// multi-host operation — the 4 reclamation drivers (src/policy/) crossed
// with the 4 cluster placement policies (src/cluster/), including the
// placement–reclaim co-design policy kHintedBinPack, plus a host-drain
// scenario driven through the HostControl plane — crossed reap-vs-migrate
// (MigrationPlanner live-migrates the victim's warm replicas, trading a
// state transfer priced by CostModel::StateTransfer for the cold starts
// the reap-only drain pays).
//
// Setup: K hosts, the paper's four functions replicated cluster-wide, a
// Zipf-skewed Azure-style churn trace (src/trace/cluster_trace.*), and
// per-host capacity restricted to a fraction of the abundant-memory peak.
// Under that restriction:
//   * kStatic VMs (over-provisioned, fully committed at boot) stop
//     fitting: functions lose replicas or become unplaceable, so their
//     invocations are rejected — reclamation speed IS fleet capacity;
//   * dynamic policies all register everything, but slow unplug keeps
//     committed memory high long after load passes, so the bin-packing
//     signal goes stale and scale-ups starve (pending) behind reclaim;
//   * Squeezy's sub-second unplug keeps the committed book fresh, which
//     both admits every invocation and lets kMemoryAwareBinPack pack the
//     fleet densely (fewest pending scale-ups at the lowest p99).
//
// Expected outcome printed by the table: Squeezy + MemBinPack admits >=
// as many invocations as every other reclaim x placement combination,
// with fleet p99 close to the unconstrained baseline.
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig12_config.h"
#include "src/cluster/cluster.h"
#include "src/faas/function.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"
#include "src/policy/driver_factory.h"
#include "src/sim/rng.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace {

// Shared with tests/fig12_regression_test.cc (which locks this sweep's
// recorded headline constants) — all knobs live in bench/fig12_config.h.
using fig12::kConcurrency;
using fig12::kDuration;
using fig12::kHorizon;
using fig12::kHosts;
using fig12::kSeed;
using fig12::TraceConfig;

struct ComboResult {
  ReclaimPolicy reclaim;
  PlacementPolicy placement;
  uint64_t admitted = 0;      // Invocations that reached a host (not rejected).
  uint64_t events = 0;        // Events the sim kernel executed for this run.
  uint64_t routing_hash = 0;  // Order-sensitive digest of every routing decision.
  double setup_sec = 0;       // Cluster build + trace gen + SubmitTrace.
  double wall_sec = 0;        // Wall-clock spent inside RunUntil only.
  std::vector<uint64_t> shard_events;  // Per-shard counts (kSharded runs).
  // Placement-path instrumentation (deterministic: identical under either
  // placement_impl and any thread count, so all BENCH-safe).
  uint64_t decisions = 0;          // Routing decisions the scheduler took.
  uint64_t index_updates = 0;      // Host deltas the HostIndex absorbed.
  size_t index_max_replicas = 0;   // Widest per-function candidate tree.
  uint64_t memmap_peak_bytes = 0;  // Sum of per-VM extent-chunk peaks.
  FleetSummary fleet;

  // Depth of the widest per-function ordered index — the comparisons one
  // indexed placement decision costs, vs a full O(hosts) snapshot scan.
  uint64_t index_depth() const {
    uint64_t depth = 0;
    for (size_t n = index_max_replicas; n > 0; n >>= 1) {
      ++depth;
    }
    return depth;
  }

  double events_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(events) / wall_sec : 0.0;
  }
  // min/max balance across shards, in percent (100 = perfectly even).
  double shard_balance_pct() const {
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const uint64_t e : shard_events) {
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
    return hi > 0 ? 100.0 * static_cast<double>(lo) / static_cast<double>(hi) : 0.0;
  }
};

// Optional knobs beyond the sweep's (reclaim, placement, capacity, hosts)
// axes: the queue implementation A/Bs and the sharded scale-out rows.
struct ComboOpts {
  EventQueue::Impl impl = EventQueue::Impl::kTimerWheel;
  size_t sim_threads = 0;  // kSharded pool width; 0 = SQUEEZY_SIM_THREADS env.
  const ClusterTraceConfig* trace = nullptr;  // nullptr = fig12::TraceConfig().
  TimeNs horizon = kHorizon;
  // Shard-sweep sizing (see fig12_config.h): nullptr/0 = the paper
  // functions at the sweep's concurrency and default VM base.
  const std::vector<FunctionSpec>* functions = nullptr;
  uint32_t concurrency = kConcurrency;
  uint64_t vm_base = 0;
  // Which placement machinery decides (identical decisions either way);
  // kDefault = SQUEEZY_PLACEMENT_IMPL env, like sim_threads above.
  PlacementImpl placement = PlacementImpl::kDefault;
};

ComboResult RunCombo(ReclaimPolicy reclaim, PlacementPolicy placement,
                     uint64_t host_capacity, size_t hosts, uint64_t* trace_size,
                     uint64_t* hints_fired = nullptr, const ComboOpts& opts = {}) {
  WallTimer wall;
  ClusterConfig cfg = fig12::SweepConfig(reclaim, placement, host_capacity, hosts);
  cfg.queue_impl = opts.impl;
  cfg.sim_threads = opts.sim_threads;
  cfg.placement_impl = opts.placement;
  if (opts.vm_base > 0) {
    cfg.host.vm_base_memory = opts.vm_base;
  }
  Cluster cluster(cfg);

  const std::vector<FunctionSpec> fns =
      opts.functions != nullptr ? *opts.functions : PaperFunctions();
  for (const FunctionSpec& spec : fns) {
    cluster.AddFunction(spec, opts.concurrency);
  }
  const std::vector<Invocation> trace = GenerateClusterTrace(
      opts.trace != nullptr ? *opts.trace : TraceConfig(), kSeed);
  if (trace_size != nullptr) {
    *trace_size = trace.size();
  }
  cluster.SubmitTrace(trace);

  ComboResult r;
  r.setup_sec = wall.Lap();  // Events/sec below excludes all of the above.
  cluster.RunUntil(opts.horizon);
  r.wall_sec = wall.Lap();

  r.reclaim = reclaim;
  r.placement = placement;
  r.events = cluster.processed_events();
  r.routing_hash = cluster.routing_hash();
  if (cluster.sharded() != nullptr) {
    r.shard_events = cluster.sharded()->ShardProcessed();
  }
  r.fleet = cluster.Summarize(opts.horizon);
  r.admitted = trace.size() - r.fleet.unplaced_invocations;
  r.decisions = cluster.scheduler().decisions();
  const HostIndexStats index_stats = cluster.host_index().stats();
  r.index_updates = index_stats.updates;
  r.index_max_replicas = index_stats.max_fn_replicas;
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    for (size_t fn = 0; fn < cluster.host(h).function_count(); ++fn) {
      r.memmap_peak_bytes =
          r.memmap_peak_bytes +
          cluster.host(h).guest(static_cast<int>(fn)).memmap().materialized_peak_bytes();
    }
  }
  if (hints_fired != nullptr) {
    *hints_fired = cluster.scheduler().hints_fired();
  }
  return r;
}

// Process-wide peak RSS in MiB (ru_maxrss is KiB on Linux).  Monotonic
// over the process lifetime and wall-clock-adjacent, so TIMING-only.
double PeakRssMib() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

// Event-kernel throughput at fleet scale, isolated from handler work: a
// 64-host-shaped storm — per-host repeating pressure ticks, the full
// cluster trace replicated per host, each arrival expanding into a
// grant (+1 ms) and completion (+25..250 ms) chain, completions arming
// 45 s keep-alive timers of which half get cancelled (warm-reuse churn)
// — replayed through the timer wheel and the old single binary heap
// with no-op handler bodies.  Both implementations fire the identical
// event sequence (the determinism contract), so events match exactly
// and the wall-clock difference is pure queue cost.
struct QueueStormResult {
  uint64_t events = 0;
  double best_events_per_sec = 0;
};

struct StormContext {
  EventQueue* q = nullptr;
  Rng rng{kSeed * 31};
  std::vector<EventId> keepalive;

  void Complete() {
    keepalive.push_back(q->ScheduleAfter(Sec(45), [] {}));
    if (rng.Chance(0.5)) {
      q->Cancel(keepalive[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(keepalive.size()) - 1))]);
    }
  }
  void Grant() {
    q->ScheduleAfter(Msec(rng.UniformInt(25, 250)), [this] { Complete(); });
  }
  void Arrive() {
    q->ScheduleAfter(Msec(1), [this] { Grant(); });
  }
};

QueueStormResult RunQueueStorm(EventQueue::Impl impl, size_t hosts,
                               const std::vector<Invocation>& trace) {
  QueueStormResult r;
  for (int rep = 0; rep < 3; ++rep) {  // Best-of-3: wall clock is noisy.
    EventQueue q(impl);
    StormContext ctx;
    ctx.q = &q;
    ctx.keepalive.reserve(trace.size() * hosts);
    for (size_t h = 0; h < hosts; ++h) {
      for (const Invocation& inv : trace) {
        // A small per-host skew spreads the replicas off the exact same
        // instants, like per-host routing does in the real cluster.
        q.ScheduleAt(inv.at + Usec(static_cast<int64_t>(h) * 13),
                     [c = &ctx] { c->Arrive(); });
      }
    }
    std::vector<std::unique_ptr<RepeatingTimer>> ticks;
    for (size_t h = 0; h < hosts; ++h) {
      ticks.push_back(std::make_unique<RepeatingTimer>(
          &q, Msec(500), [qp = &q] { return qp->now() < kDuration; }));
      ticks.back()->Start();
    }
    const WallTimer timer;
    q.RunUntil(kHorizon);
    const double wall = timer.Seconds();
    r.events = q.processed_events();
    if (wall > 0) {
      r.best_events_per_sec =
          std::max(r.best_events_per_sec, static_cast<double>(r.events) / wall);
    }
  }
  return r;
}

// Host-drain scenario (HostControl plane): drain the most-committed host
// mid-trace and report how long its committed book takes to return to the
// boot-time commitment — reclamation speed IS maintenance speed — crossed
// with what happens to the victim's warm replicas: reaped in place
// (kReapOnDrain) or live-migrated to planner-chosen hosts
// (kMigrateOnDrain), where the migrated warm state spares the fleet
// post-drain cold starts.
struct DrainResult {
  size_t drained_host = 0;
  uint64_t routed_before = 0;   // Routes to the host up to the drain.
  uint64_t routed_after = 0;    // Routes to it after (should be ~0 extra).
  double reclaim_seconds = -1;  // Drain -> committed back at boot commit.
  uint64_t cold_after = 0;      // Fleet cold starts arriving post-drain.
  uint64_t migrated = 0;        // Warm instances adopted by destinations.
  uint64_t reaped = 0;          // Warm instances captured but dropped.
  // Shared dependency cache (dep_cache runs only).
  uint64_t wire_bytes_saved = 0;    // deps_bytes that skipped the wire.
  uint64_t wire_hits = 0;           // Migrations that hit the cache.
  uint64_t cold_io_avoided = 0;     // Deps bytes served without disk IO.
  uint64_t dep_disk_bytes = 0;      // Deps bytes that still paid disk IO.
  // Snapshot registry (shared_snapshots runs only): post-drain cold
  // starts restore the recorded working set instead of re-running the
  // serial cold phases the reap threw the fleet back onto.
  uint64_t snap_restores = 0;        // Cold starts served from a snapshot.
  uint64_t snap_prefetch_bytes = 0;  // Bytes bulk-prefetched across them.
  double snap_tail_rate_pct = 0;     // Post-restore demand-fault tail.
  // Snapshot-hit migration transfers (shared_snapshots runs only): the
  // recorded portion of migrated state never crosses the wire — the
  // destination bulk-restores it from the cluster store on arrival.
  uint64_t snap_mig_wire_saved = 0;  // Recorded bytes that skipped the wire.
  uint64_t snap_mig_restores = 0;    // Adopted instances bulk-restored.
  uint64_t mig_wire_bytes = 0;       // Total migration wire bytes this run.
};

DrainResult RunDrain(ReclaimPolicy reclaim, MigrationMode mode, uint64_t host_capacity,
                     bool dep_cache = false, bool snapshots = false) {
  ClusterConfig cfg =
      fig12::SweepConfig(reclaim, PlacementPolicy::kHintedBinPack, host_capacity);
  cfg.migration = mode;
  cfg.shared_dep_cache = dep_cache;
  cfg.shared_snapshots = snapshots;
  cfg.host.unplug_timeout = Sec(5);
  Cluster cluster(cfg);
  uint64_t boot_commit = 0;
  for (const FunctionSpec& spec : PaperFunctions()) {
    cluster.AddFunction(spec, kConcurrency);
    boot_commit += FaasRuntime::BootCommitment(cfg.host, spec, kConcurrency);
  }
  cluster.SubmitTrace(GenerateClusterTrace(TraceConfig(), kSeed));

  const TimeNs drain_at = kDuration / 2;
  cluster.RunUntil(drain_at);
  size_t victim = 0;
  for (size_t h = 1; h < cluster.host_count(); ++h) {
    if (cluster.host(h).committed() > cluster.host(victim).committed()) {
      victim = h;
    }
  }
  DrainResult r;
  r.drained_host = victim;
  r.routed_before = cluster.routed_to(victim);
  cluster.DrainHost(victim);
  cluster.RunUntil(kHorizon);
  r.routed_after = cluster.routed_to(victim) - r.routed_before;
  r.migrated = cluster.migrated_instances();
  r.reaped = cluster.migration_reaped_instances();
  // Cold-start executions whose request arrived after the drain: the cost
  // of the warm state the drain threw away (or saved, under migration).
  for (size_t h = 0; h < cluster.host_count(); ++h) {
    for (size_t fn = 0; fn < cluster.host(h).function_count(); ++fn) {
      for (const RequestRecord& rec :
           cluster.host(h).agent(static_cast<int>(fn)).requests()) {
        r.cold_after += (rec.cold && rec.arrival >= drain_at);
      }
    }
  }
  // First instant after the drain where the host's committed book was back
  // at its boot-time commitment (every replica lives on every host here).
  // (Under the dep cache a drained host can dip BELOW boot: evicted image
  // residencies return their commitment too.)
  for (const StepSeries::Point& p :
       cluster.host(victim).host().committed_series().points()) {
    if (p.t >= drain_at && static_cast<uint64_t>(p.value) <= boot_commit) {
      r.reclaim_seconds = ToSec(p.t - drain_at);
      break;
    }
  }
  if (cluster.dep_cache() != nullptr) {
    r.wire_bytes_saved = cluster.dep_cache()->stats().wire_bytes_saved;
    r.wire_hits = cluster.dep_cache()->stats().wire_hits;
    const Cluster::DepIoTotals io = cluster.DepIo();
    r.cold_io_avoided = io.cold_io_avoided();
    r.dep_disk_bytes = io.disk_read_bytes;
  }
  if (cluster.snapshot_store() != nullptr) {
    const SnapshotStats& s = cluster.snapshot_store()->stats();
    r.snap_restores = s.restores;
    r.snap_prefetch_bytes = s.prefetch_bytes;
    r.snap_tail_rate_pct = s.tail_fault_rate_pct();
    r.snap_mig_wire_saved = s.migration_wire_saved_bytes;
    r.snap_mig_restores = s.migration_restores;
  }
  for (const MigrationRecord& m : cluster.migrations()) {
    r.mig_wire_bytes += m.bytes_sent;
  }
  return r;
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 12 (cluster scale-out, beyond the paper)",
              "under restricted per-host memory, Squeezy + memory-aware bin-packing "
              "admits >= as many invocations as every other reclaim x placement combo, "
              "with the fewest memory-starved scale-ups");

  // Abundant-memory baseline fixes the restricted capacity: the fleet
  // committed peak of dynamic Squeezy with memory to spare.
  uint64_t trace_size = 0;
  const ComboResult abundant = RunCombo(ReclaimPolicy::kSqueezy,
                                        PlacementPolicy::kRoundRobin, GiB(512),
                                        kHosts, &trace_size);
  const uint64_t abundant_peak_per_host = abundant.fleet.committed_peak / kHosts;
  const uint64_t cap = static_cast<uint64_t>(fig12::kCapacityFraction *
                                             static_cast<double>(abundant_peak_per_host));
  std::cout << "Hosts: " << kHosts << ", trace: " << trace_size
            << " invocations over " << TablePrinter::Num(ToSec(kDuration) / 60.0, 0)
            << " min\nAbundant fleet committed peak: "
            << TablePrinter::Num(static_cast<double>(abundant.fleet.committed_peak) /
                                 static_cast<double>(GiB(1)))
            << " GiB -> restricted per-host capacity: "
            << TablePrinter::Num(static_cast<double>(cap) / static_cast<double>(GiB(1)))
            << " GiB\n\n";

  const ReclaimPolicy reclaims[] = {ReclaimPolicy::kStatic, ReclaimPolicy::kVirtioMem,
                                    ReclaimPolicy::kHarvestOpts, ReclaimPolicy::kSqueezy};
  const PlacementPolicy placements[] = {PlacementPolicy::kRoundRobin,
                                        PlacementPolicy::kLeastCommitted,
                                        PlacementPolicy::kMemoryAwareBinPack,
                                        PlacementPolicy::kHintedBinPack};

  TablePrinter table({"Reclaim", "Placement", "Admitted", "Completed", "P50(ms)",
                      "P99(ms)", "PeakGiB", "GiB*s", "PendingUps", "UnplugFail",
                      "Hints"});
  CsvWriter csv("bench_results/fig12_cluster_scale.csv",
                {"reclaim", "placement", "admitted", "completed", "p50_ms", "p99_ms",
                 "peak_gib", "gib_s", "pending_scaleups", "unplug_failures", "hints"});
  // BENCH json holds deterministic metrics only (CI byte-diffs it across
  // SQUEEZY_SIM_THREADS values); everything wall-clock-derived goes into
  // the TIMING sibling the determinism diff never reads.
  BenchJson json("fig12_cluster_scale");
  BenchJson timing("fig12_cluster_scale", "TIMING");
  json.SetColumns({"reclaim", "placement", "admitted", "completed", "p50_ms", "p99_ms",
                   "peak_gib", "gib_s", "pending_scaleups", "unplug_failures", "hints"});

  uint64_t best_other = 0;
  uint64_t squeezy_binpack_admitted = 0;
  uint64_t squeezy_hinted_admitted = 0;
  uint64_t squeezy_binpack_pending = 0;
  uint64_t squeezy_hinted_pending = 0;
  for (const ReclaimPolicy rp : reclaims) {
    for (const PlacementPolicy pp : placements) {
      uint64_t hints = 0;
      const ComboResult r = RunCombo(rp, pp, cap, kHosts, nullptr, &hints);
      const double peak_gib = static_cast<double>(r.fleet.committed_peak) /
                              static_cast<double>(GiB(1));
      table.AddRow({ReclaimPolicyName(rp), PlacementPolicyName(pp),
                    TablePrinter::Int(static_cast<int64_t>(r.admitted)),
                    TablePrinter::Int(static_cast<int64_t>(r.fleet.completed_requests)),
                    TablePrinter::Num(ToMsec(r.fleet.latency_p50), 0),
                    TablePrinter::Num(ToMsec(r.fleet.latency_p99), 0),
                    TablePrinter::Num(peak_gib),
                    TablePrinter::Num(r.fleet.committed_gib_seconds, 0),
                    TablePrinter::Int(static_cast<int64_t>(r.fleet.pending_scaleups_total)),
                    TablePrinter::Int(static_cast<int64_t>(r.fleet.unplug_failures)),
                    TablePrinter::Int(static_cast<int64_t>(hints))});
      const std::vector<std::string> row = {
          ReclaimPolicyName(rp), PlacementPolicyName(pp), std::to_string(r.admitted),
          std::to_string(r.fleet.completed_requests),
          TablePrinter::Num(ToMsec(r.fleet.latency_p50), 1),
          TablePrinter::Num(ToMsec(r.fleet.latency_p99), 1), TablePrinter::Num(peak_gib),
          TablePrinter::Num(r.fleet.committed_gib_seconds, 1),
          std::to_string(r.fleet.pending_scaleups_total),
          std::to_string(r.fleet.unplug_failures), std::to_string(hints)};
      csv.AddRow(row);
      json.AddRow(row);
      if (rp == ReclaimPolicy::kSqueezy && pp == PlacementPolicy::kMemoryAwareBinPack) {
        squeezy_binpack_admitted = r.admitted;
        squeezy_binpack_pending = r.fleet.pending_scaleups_total;
      } else if (rp == ReclaimPolicy::kSqueezy && pp == PlacementPolicy::kHintedBinPack) {
        squeezy_hinted_admitted = r.admitted;
        squeezy_hinted_pending = r.fleet.pending_scaleups_total;
      } else {
        best_other = std::max(best_other, r.admitted);
      }
    }
    table.AddRule();
  }
  table.Print(std::cout);

  const bool binpack_pass = squeezy_binpack_admitted >= best_other;
  const bool hinted_pass = squeezy_hinted_admitted >= squeezy_binpack_admitted;
  std::cout << "\nCheck: Squeezy+MemBinPack admitted " << squeezy_binpack_admitted
            << " vs best other combination " << best_other << " -> "
            << (binpack_pass ? "PASS (>=)" : "FAIL") << "\n"
            << "Check: Squeezy+HintedBinPack admitted " << squeezy_hinted_admitted
            << " vs Squeezy+MemBinPack " << squeezy_binpack_admitted << " -> "
            << (hinted_pass ? "PASS (>=)" : "FAIL") << "  (pending scale-ups "
            << squeezy_hinted_pending << " vs " << squeezy_binpack_pending << ")\n";

  // Host drain through the HostControl plane: the drained host stops
  // receiving routes and its committed memory comes back at the driver's
  // reclamation speed — and under kMigrateOnDrain the victim's warm
  // replicas are live-migrated to planner-chosen hosts instead of reaped,
  // so the fleet pays fewer post-drain cold starts.
  std::cout << "\nHost drain at t=4min (most-committed host, HintedBinPack), "
               "reap vs migrate vs migrate+dep-cache vs migrate+snapshots:\n";
  TablePrinter drain_table({"Reclaim", "Mode", "Host", "RoutedBefore", "RoutedAfter",
                            "ReclaimSec", "ColdAfter", "Migrated", "Reaped",
                            "WireSavedMiB", "SnapWireSavedMiB", "ColdIOSavedMiB",
                            "Restores", "PrefetchMiB"});
  bool drain_pass = true;
  bool dep_pass = true;
  bool snap_pass = true;
  bool snap_wire_pass = true;
  double snap_tail_rate_pct = 0;
  uint64_t wire_dep_only = 0;   // Migration wire bytes, dep cache alone.
  uint64_t wire_with_snap = 0;  // Migration wire bytes, dep cache + snapshots.
  const double mib = static_cast<double>(MiB(1));
  for (const ReclaimPolicy rp : {ReclaimPolicy::kVirtioMem, ReclaimPolicy::kSqueezy}) {
    uint64_t cold_reap = 0;
    uint64_t cold_migrate = 0;
    // Reap, migrate, and (for the sharing driver) migrate with the
    // cluster dependency cache on: migrations to populated destinations
    // skip deps_bytes on the wire and cold starts fetch peer-resident
    // images instead of paying backing-store IO.  The last Squeezy run
    // adds the snapshot registry: post-drain cold starts restore the
    // recorded working set (one bulk prefetch) instead of re-running the
    // serial phases the reap threw away — restore vs reap, measured.
    struct ModeRun {
      MigrationMode mode;
      bool dep_cache;
      bool snapshots;
    };
    std::vector<ModeRun> runs = {{MigrationMode::kReapOnDrain, false, false},
                                 {MigrationMode::kMigrateOnDrain, false, false}};
    if (rp == ReclaimPolicy::kSqueezy) {
      runs.push_back({MigrationMode::kMigrateOnDrain, true, false});
      runs.push_back({MigrationMode::kMigrateOnDrain, true, true});
    }
    for (const ModeRun& run : runs) {
      const DrainResult d = RunDrain(rp, run.mode, cap, run.dep_cache, run.snapshots);
      const std::string mode_name = std::string(MigrationModeName(run.mode)) +
                                    (run.dep_cache ? "+DepC" : "") +
                                    (run.snapshots ? "+Snap" : "");
      drain_table.AddRow({ReclaimPolicyName(rp), mode_name,
                          TablePrinter::Int(static_cast<int64_t>(d.drained_host)),
                          TablePrinter::Int(static_cast<int64_t>(d.routed_before)),
                          TablePrinter::Int(static_cast<int64_t>(d.routed_after)),
                          TablePrinter::Num(d.reclaim_seconds),
                          TablePrinter::Int(static_cast<int64_t>(d.cold_after)),
                          TablePrinter::Int(static_cast<int64_t>(d.migrated)),
                          TablePrinter::Int(static_cast<int64_t>(d.reaped)),
                          TablePrinter::Num(static_cast<double>(d.wire_bytes_saved) / mib, 0),
                          TablePrinter::Num(
                              static_cast<double>(d.snap_mig_wire_saved) / mib, 0),
                          TablePrinter::Num(static_cast<double>(d.cold_io_avoided) / mib, 0),
                          TablePrinter::Int(static_cast<int64_t>(d.snap_restores)),
                          TablePrinter::Num(static_cast<double>(d.snap_prefetch_bytes) / mib,
                                            0)});
      const std::string tag = std::string(ReclaimPolicyName(rp)) + "_" +
                              MigrationModeName(run.mode) +
                              (run.dep_cache ? "_DepCache" : "") +
                              (run.snapshots ? "_Snapshots" : "");
      if (d.reclaim_seconds >= 0) {
        json.Metric("drain_reclaim_sec_" + tag, d.reclaim_seconds);
      } else {
        json.Text("drain_reclaim_sec_" + tag, "never (window ended first)");
      }
      json.Metric("drain_cold_after_" + tag, d.cold_after);
      json.Metric("drain_migrated_" + tag, d.migrated);
      if (run.snapshots) {
        // The snapshot headline: every post-drain cold start on the
        // surviving hosts restores from the registry, and the demand-fault
        // tail stays small (recordings are fresh).
        json.Metric("snapshot_restores", d.snap_restores);
        json.Metric("snapshot_prefetch_bytes", d.snap_prefetch_bytes);
        json.Metric("snapshot_tail_fault_rate_pct", d.snap_tail_rate_pct);
        // Snapshot-hit migration transfer: the recorded portion of the
        // drained host's warm state never crossed the wire — destinations
        // bulk-restored it from the cluster store on arrival.
        json.Metric("snapshot_migration_wire_saved_bytes", d.snap_mig_wire_saved);
        json.Metric("snapshot_migration_restores", d.snap_mig_restores);
        json.Metric("migration_wire_bytes_" + tag, d.mig_wire_bytes);
        snap_tail_rate_pct = d.snap_tail_rate_pct;
        wire_with_snap = d.mig_wire_bytes;
        snap_pass = d.snap_restores > 0 && d.snap_prefetch_bytes > 0 &&
                    d.snap_mig_wire_saved > 0 && d.snap_mig_restores > 0;
      } else if (run.dep_cache) {
        // The dep-cache headline: bytes that never crossed the wire and
        // dependency bytes served without cold IO, plus the hit rate of
        // dependency reads against the fleet-wide cache.
        json.Metric("dep_wire_bytes_saved", d.wire_bytes_saved);
        json.Metric("dep_wire_hits", d.wire_hits);
        json.Metric("dep_cold_io_avoided_bytes", d.cold_io_avoided);
        const uint64_t dep_reads = d.cold_io_avoided + d.dep_disk_bytes;
        json.Metric("dep_read_hit_rate_pct",
                    dep_reads > 0 ? 100.0 * static_cast<double>(d.cold_io_avoided) /
                                        static_cast<double>(dep_reads)
                                  : 0.0);
        json.Metric("migration_wire_bytes_" + tag, d.mig_wire_bytes);
        wire_dep_only = d.mig_wire_bytes;
        dep_pass = d.wire_bytes_saved > 0 && d.cold_io_avoided > 0;
      } else if (run.mode == MigrationMode::kReapOnDrain) {
        cold_reap = d.cold_after;
      } else {
        cold_migrate = d.cold_after;
      }
    }
    json.Metric(std::string("drain_cold_starts_avoided_") + ReclaimPolicyName(rp),
                cold_reap > cold_migrate ? cold_reap - cold_migrate : 0);
    drain_pass = drain_pass && cold_migrate < cold_reap;
    drain_table.AddRule();
  }
  drain_table.Print(std::cout);
  // The snapshot-hit transfer headline: with the registry on, migrations
  // off the drained host ship only the delta beyond the recording, so the
  // +Snap run puts strictly fewer bytes on the wire than dep-cache-only.
  snap_wire_pass = wire_with_snap < wire_dep_only;
  std::cout << "Check: migrate-on-drain pays fewer post-drain cold starts than "
               "reap-on-drain -> "
            << (drain_pass ? "PASS" : "FAIL") << "\n"
            << "Check: dep cache saves wire bytes AND cold IO on the Squeezy drain -> "
            << (dep_pass ? "PASS" : "FAIL") << "\n"
            << "Check: snapshot registry serves post-drain cold starts by restore -> "
            << (snap_pass ? "PASS" : "FAIL") << " (tail fault rate "
            << TablePrinter::Num(snap_tail_rate_pct) << "%)\n"
            << "Check: snapshot-hit migration ships fewer wire bytes than "
               "dep-cache-only -> "
            << (snap_wire_pass ? "PASS" : "FAIL") << " ("
            << TablePrinter::Num(static_cast<double>(wire_with_snap) / mib, 0)
            << " MiB vs "
            << TablePrinter::Num(static_cast<double>(wire_dep_only) / mib, 0)
            << " MiB)\n";
  json.Text("drain_migrate_check", drain_pass ? "PASS" : "FAIL");
  json.Text("dep_cache_check", dep_pass ? "PASS" : "FAIL");
  json.Text("snapshot_restore_check", snap_pass ? "PASS" : "FAIL");
  json.Text("snapshot_migration_wire_check", snap_wire_pass ? "PASS" : "FAIL");

  // Which reclaim drivers exploit working-set-sized commitment after a
  // snapshot restore (RestoredCommitment < plug unit)?  Squeezy can: its
  // restored instances live inside plug-unit-confined partitions, so the
  // recorded working set bounds what the host must back.  The vanilla
  // drivers keep full-unit commitment — locked by snapshot_registry_test.
  std::cout << "\nDriver commitment for a restored instance (plug unit "
            << TablePrinter::Num(static_cast<double>(GiB(1)) / mib, 0) << " MiB, "
            << "recorded working set " << TablePrinter::Num(300.0, 0) << " MiB):\n";
  TablePrinter commit_table({"Reclaim", "RestoreExploited", "CommitMiB"});
  for (const ReclaimPolicy rp : reclaims) {
    RuntimeConfig dcfg;
    dcfg.policy = rp;
    const std::unique_ptr<ReclaimDriver> driver = MakeReclaimDriver(dcfg);
    DriverSizing sizing;
    sizing.plug_unit = GiB(1);
    sizing.deps_region = MiB(256);
    sizing.max_concurrency = kConcurrency;
    const uint64_t commit = driver->RestoredCommitment(sizing, MiB(300));
    commit_table.AddRow({ReclaimPolicyName(rp),
                         driver->SnapshotRestoreSupported() ? "yes" : "no",
                         TablePrinter::Num(static_cast<double>(commit) / mib, 0)});
    json.Metric(std::string("restored_commitment_mib_") + ReclaimPolicyName(rp),
                static_cast<double>(commit) / mib);
  }
  commit_table.Print(std::cout);

  json.Metric("trace_invocations", trace_size);
  json.Metric("restricted_host_capacity_gib",
              static_cast<double>(cap) / static_cast<double>(GiB(1)));
  json.Metric("squeezy_binpack_admitted", squeezy_binpack_admitted);
  json.Metric("squeezy_hinted_admitted", squeezy_hinted_admitted);
  json.Metric("squeezy_binpack_pending", squeezy_binpack_pending);
  json.Metric("squeezy_hinted_pending", squeezy_hinted_pending);
  json.Metric("best_other_admitted", best_other);
  json.Text("binpack_check", binpack_pass ? "PASS" : "FAIL");
  json.Text("hinted_check", hinted_pass ? "PASS" : "FAIL");

  // Scale-out: does the memory-aware packer keep its edge as the fleet
  // grows?  (Same per-host capacity; the trace stays fixed, so bigger
  // fleets are progressively less constrained.)  Each row also reports
  // the sim kernel's whole-run events/sec on the timer wheel, and the
  // 64-host point re-runs HintedBinPack on the legacy single binary heap
  // — the two implementations must produce IDENTICAL results (the
  // determinism contract), differing only in wall-clock.
  std::cout << "\nScale-out (Squeezy): pending scale-ups by host count\n";
  TablePrinter scale({"Hosts", "RoundRobin", "MemBinPack", "HintedBinPack", "Events",
                      "Wheel Ev/s"});
  bool queue_identical = true;
  for (const size_t hosts : fig12::kScaleHostCounts) {
    const ComboResult rr = RunCombo(ReclaimPolicy::kSqueezy,
                                    PlacementPolicy::kRoundRobin, cap, hosts, nullptr);
    const ComboResult bp = RunCombo(ReclaimPolicy::kSqueezy,
                                    PlacementPolicy::kMemoryAwareBinPack, cap, hosts,
                                    nullptr);
    const ComboResult hb = RunCombo(ReclaimPolicy::kSqueezy,
                                    PlacementPolicy::kHintedBinPack, cap, hosts,
                                    nullptr);
    scale.AddRow({TablePrinter::Int(static_cast<int64_t>(hosts)),
                  TablePrinter::Int(static_cast<int64_t>(rr.fleet.pending_scaleups_total)),
                  TablePrinter::Int(static_cast<int64_t>(bp.fleet.pending_scaleups_total)),
                  TablePrinter::Int(static_cast<int64_t>(hb.fleet.pending_scaleups_total)),
                  TablePrinter::Int(static_cast<int64_t>(hb.events)),
                  TablePrinter::Num(hb.events_per_sec(), 0)});
    const std::string tag = std::to_string(hosts) + "h";
    json.Metric("scale_pending_hinted_" + tag, hb.fleet.pending_scaleups_total);
    json.Metric("sim_events_" + tag, hb.events);
    timing.Metric("sim_events_per_sec_" + tag, hb.events_per_sec());
    if (hosts == fig12::kQueueBenchHosts) {
      ComboOpts heap_opts;
      heap_opts.impl = EventQueue::Impl::kBinaryHeap;
      const ComboResult heap = RunCombo(ReclaimPolicy::kSqueezy,
                                        PlacementPolicy::kHintedBinPack, cap, hosts,
                                        nullptr, nullptr, heap_opts);
      queue_identical = heap.admitted == hb.admitted &&
                        heap.events == hb.events &&
                        heap.routing_hash == hb.routing_hash &&
                        heap.fleet.pending_scaleups_total ==
                            hb.fleet.pending_scaleups_total &&
                        heap.fleet.completed_requests == hb.fleet.completed_requests;
      timing.Metric("sim_events_per_sec_heap_" + tag, heap.events_per_sec());
    }
  }
  scale.Print(std::cout);

  // Sharded-kernel scale-out: per-host shards on a thread pool in
  // deterministic lockstep epochs carry the fleet to 256/512/1024 hosts
  // (load scaled with the fleet, arrivals quantized into fat parallel
  // phases).  All deterministic outputs — admitted, events, per-shard
  // counts, routing hash — are thread-count-invariant; the identity gate
  // at kShardIdentityHosts replays the same run on the single-queue
  // wheel and requires bit-identical results.
  std::cout << "\nSharded kernel scale-out (Squeezy + HintedBinPack, paper-sized "
               "functions, load scaled with hosts):\n";
  TablePrinter shard_scale({"Hosts", "Admitted", "PendingUps", "Events", "Decisions",
                            "IdxDepth", "MemMapGiB", "Balance%", "Ev/s"});
  bool sharded_identical = true;
  bool placement_identical = true;
  const std::vector<FunctionSpec> shard_fns = fig12::ShardFunctions();
  for (const size_t hosts : fig12::kShardScaleHostCounts) {
    const ClusterTraceConfig shard_trace = fig12::ShardTraceConfig(hosts);
    ComboOpts shard_opts;
    shard_opts.impl = EventQueue::Impl::kSharded;
    shard_opts.trace = &shard_trace;
    shard_opts.horizon = fig12::kShardHorizon;
    shard_opts.functions = &shard_fns;
    shard_opts.concurrency = fig12::kShardConcurrency;
    shard_opts.vm_base = fig12::kShardVmBase;
    const ComboResult sh = RunCombo(ReclaimPolicy::kSqueezy,
                                    PlacementPolicy::kHintedBinPack,
                                    fig12::kShardHostCapacity, hosts,
                                    nullptr, nullptr, shard_opts);
    shard_scale.AddRow(
        {TablePrinter::Int(static_cast<int64_t>(hosts)),
         TablePrinter::Int(static_cast<int64_t>(sh.admitted)),
         TablePrinter::Int(static_cast<int64_t>(sh.fleet.pending_scaleups_total)),
         TablePrinter::Int(static_cast<int64_t>(sh.events)),
         TablePrinter::Int(static_cast<int64_t>(sh.decisions)),
         TablePrinter::Int(static_cast<int64_t>(sh.index_depth())),
         TablePrinter::Num(static_cast<double>(sh.memmap_peak_bytes) /
                           static_cast<double>(GiB(1))),
         TablePrinter::Num(sh.shard_balance_pct()),
         TablePrinter::Num(sh.events_per_sec(), 0)});
    const std::string tag = std::to_string(hosts) + "h";
    json.Metric("shard_admitted_" + tag, sh.admitted);
    json.Metric("shard_pending_" + tag, sh.fleet.pending_scaleups_total);
    json.Metric("shard_events_" + tag, sh.events);
    json.Metric("shard_balance_pct_" + tag, sh.shard_balance_pct());
    // Placement-path instrumentation: how many routing decisions the row
    // took, how many host deltas the index absorbed maintaining its
    // trees, and the depth an indexed decision walks instead of scanning
    // `hosts` snapshots.  All deterministic -> BENCH.
    json.Metric("shard_route_decisions_" + tag, sh.decisions);
    json.Metric("shard_index_updates_" + tag, sh.index_updates);
    json.Metric("shard_index_depth_" + tag, sh.index_depth());
    // Extent-MemMap footprint: peak materialized chunk bytes across every
    // VM in the fleet (the flat page array made this hosts x guest span —
    // the per-host figure is what lets paper-sized functions run at 1024
    // hosts).  Deterministic -> BENCH.
    const double memmap_peak_mib =
        static_cast<double>(sh.memmap_peak_bytes) / static_cast<double>(MiB(1));
    json.Metric("shard_memmap_peak_mib_" + tag, memmap_peak_mib);
    json.Metric("shard_memmap_peak_per_host_mib_" + tag,
                memmap_peak_mib / static_cast<double>(hosts));
    timing.Metric("shard_events_per_sec_" + tag, sh.events_per_sec());
    timing.Metric("shard_setup_sec_" + tag, sh.setup_sec);
    timing.Metric("shard_run_sec_" + tag, sh.wall_sec);
    timing.Metric("process_peak_rss_mib_" + tag, PeakRssMib());

    if (hosts == fig12::kShardIdentityHosts) {
      // Per-shard event counts for the gate point (deterministic, so
      // they belong in BENCH; one compact line, not 256 metrics).
      std::string per_shard;
      for (const uint64_t e : sh.shard_events) {
        per_shard += (per_shard.empty() ? "" : ",") + std::to_string(e);
      }
      json.Text("shard_per_shard_events_" + tag, per_shard);

      // Bit-identity gate: same config and seed on the single-queue
      // wheel must reproduce the sharded run exactly.
      ComboOpts ref_opts = shard_opts;
      ref_opts.impl = EventQueue::Impl::kTimerWheel;
      const ComboResult ref = RunCombo(ReclaimPolicy::kSqueezy,
                                       PlacementPolicy::kHintedBinPack,
                                       fig12::kShardHostCapacity, hosts,
                                       nullptr, nullptr, ref_opts);
      sharded_identical =
          ref.admitted == sh.admitted && ref.events == sh.events &&
          ref.routing_hash == sh.routing_hash &&
          ref.fleet.pending_scaleups_total == sh.fleet.pending_scaleups_total &&
          ref.fleet.completed_requests == sh.fleet.completed_requests &&
          ref.fleet.committed_peak == sh.fleet.committed_peak;
      std::cout << "Check: sharded kernel bit-identical to single-queue wheel at "
                << hosts << " hosts -> " << (sharded_identical ? "PASS" : "FAIL")
                << "\n";
      timing.Metric("shard_ref_single_queue_run_sec_" + tag, ref.wall_sec);

      // Thread scaling at the gate point: explicit 1-thread vs 4-thread
      // pools over the identical run.  Results are bit-identical by
      // construction; only the wall-clock may differ, so the >=2x check
      // is reported but never gates the exit code.
      ComboOpts t1 = shard_opts;
      t1.sim_threads = 1;
      ComboOpts t4 = shard_opts;
      t4.sim_threads = 4;
      const ComboResult r1 = RunCombo(ReclaimPolicy::kSqueezy,
                                      PlacementPolicy::kHintedBinPack,
                                      fig12::kShardHostCapacity, hosts,
                                      nullptr, nullptr, t1);
      const ComboResult r4 = RunCombo(ReclaimPolicy::kSqueezy,
                                      PlacementPolicy::kHintedBinPack,
                                      fig12::kShardHostCapacity, hosts,
                                      nullptr, nullptr, t4);
      const bool threads_identical =
          r1.events == r4.events && r1.routing_hash == r4.routing_hash &&
          r1.admitted == r4.admitted;
      sharded_identical = sharded_identical && threads_identical;
      const double shard_speedup =
          r1.events_per_sec() > 0 ? r4.events_per_sec() / r1.events_per_sec() : 0.0;
      std::cout << "Check: sharded results identical at 1 vs 4 threads -> "
                << (threads_identical ? "PASS" : "FAIL") << "\n"
                << "Check: 4-thread sharded >= 2x 1-thread events/sec at " << hosts
                << " hosts -> "
                << (shard_speedup >= 2.0 ? "PASS" : "FAIL (timing-sensitive)")
                << " (" << Ratio(shard_speedup) << ", "
                << TablePrinter::Num(r1.events_per_sec() / 1e6) << " -> "
                << TablePrinter::Num(r4.events_per_sec() / 1e6) << " M events/s)\n";
      timing.Metric("shard_events_per_sec_1t_" + tag, r1.events_per_sec());
      timing.Metric("shard_events_per_sec_4t_" + tag, r4.events_per_sec());
      timing.Metric("shard_thread_speedup_4t_" + tag, shard_speedup);

      // Placement-impl identity gate: the indexed path must reproduce the
      // full-snapshot scan BIT-IDENTICALLY — same admissions, same event
      // stream, same order-sensitive routing hash, same fleet book.  Both
      // legs are explicit (the env knob only picks the default), so this
      // gate holds on every CI leg regardless of SQUEEZY_PLACEMENT_IMPL.
      ComboOpts scan_opts = shard_opts;
      scan_opts.placement = PlacementImpl::kScan;
      ComboOpts idx_opts = shard_opts;
      idx_opts.placement = PlacementImpl::kIndexed;
      const ComboResult scan = RunCombo(ReclaimPolicy::kSqueezy,
                                        PlacementPolicy::kHintedBinPack,
                                        fig12::kShardHostCapacity, hosts,
                                        nullptr, nullptr, scan_opts);
      const ComboResult idx = RunCombo(ReclaimPolicy::kSqueezy,
                                       PlacementPolicy::kHintedBinPack,
                                       fig12::kShardHostCapacity, hosts,
                                       nullptr, nullptr, idx_opts);
      placement_identical =
          scan.admitted == idx.admitted && scan.events == idx.events &&
          scan.routing_hash == idx.routing_hash &&
          scan.decisions == idx.decisions &&
          scan.fleet.pending_scaleups_total == idx.fleet.pending_scaleups_total &&
          scan.fleet.completed_requests == idx.fleet.completed_requests &&
          scan.fleet.committed_peak == idx.fleet.committed_peak;
      const double placement_speedup =
          scan.events_per_sec() > 0 ? idx.events_per_sec() / scan.events_per_sec()
                                    : 0.0;
      std::cout << "Check: indexed placement bit-identical to snapshot scan at "
                << hosts << " hosts -> " << (placement_identical ? "PASS" : "FAIL")
                << " (" << scan.decisions << " decisions, index depth "
                << idx.index_depth() << " vs scan width " << hosts << ")\n"
                << "Indexed vs scan events/sec at " << hosts << " hosts: "
                << Ratio(placement_speedup) << " ("
                << TablePrinter::Num(scan.events_per_sec() / 1e6) << " -> "
                << TablePrinter::Num(idx.events_per_sec() / 1e6)
                << " M events/s, timing-sensitive, never gates)\n";
      timing.Metric("placement_events_per_sec_scan_" + tag, scan.events_per_sec());
      timing.Metric("placement_events_per_sec_indexed_" + tag, idx.events_per_sec());
      timing.Metric("placement_indexed_speedup_" + tag, placement_speedup);
    }
  }
  shard_scale.Print(std::cout);
  json.Text("placement_identical_results_check",
            placement_identical ? "PASS" : "FAIL");

  // The event-kernel headline: queue-storm throughput at 64 hosts, wheel
  // vs the old heap, with no-op handlers so the measurement is the queue
  // itself (the whole-sim numbers above are diluted by guest/memory
  // simulation work).  Both replays execute the identical event count.
  const std::vector<Invocation> storm_trace = GenerateClusterTrace(TraceConfig(), kSeed);
  const QueueStormResult wheel_storm = RunQueueStorm(
      EventQueue::Impl::kTimerWheel, fig12::kQueueBenchHosts, storm_trace);
  const QueueStormResult heap_storm = RunQueueStorm(
      EventQueue::Impl::kBinaryHeap, fig12::kQueueBenchHosts, storm_trace);
  queue_identical = queue_identical && wheel_storm.events == heap_storm.events;
  const double queue_speedup =
      heap_storm.best_events_per_sec > 0
          ? wheel_storm.best_events_per_sec / heap_storm.best_events_per_sec
          : 0.0;
  std::cout << "\nEvent-kernel A/B at " << fig12::kQueueBenchHosts << " hosts ("
            << wheel_storm.events << " events, no-op handlers):\n"
            << "  timer wheel: "
            << TablePrinter::Num(wheel_storm.best_events_per_sec / 1e6)
            << " M events/s\n  binary heap: "
            << TablePrinter::Num(heap_storm.best_events_per_sec / 1e6)
            << " M events/s\n  speedup:     " << Ratio(queue_speedup) << "\n"
            << "Check: wheel and heap execute identical event streams -> "
            << (queue_identical ? "PASS" : "FAIL") << "\n"
            << "Check: wheel >= 2x heap events/sec at 64 hosts -> "
            << (queue_speedup >= 2.0 ? "PASS" : "FAIL (timing-sensitive)") << "\n";
  // The headline throughput goes to TIMING (wall-clock); the heap
  // baseline is recorded next to it so the speedup is measured, not
  // claimed.  The identical-event-count check is deterministic and
  // stays in BENCH.
  timing.Metric("events_per_sec", wheel_storm.best_events_per_sec);
  timing.Metric("queue_events_per_sec_wheel_64h", wheel_storm.best_events_per_sec);
  timing.Metric("queue_events_per_sec_heap_64h", heap_storm.best_events_per_sec);
  timing.Metric("event_queue_speedup_64h", queue_speedup);
  json.Metric("queue_storm_events_64h", wheel_storm.events);
  json.Text("queue_identical_results_check", queue_identical ? "PASS" : "FAIL");
  json.Text("sharded_identical_results_check", sharded_identical ? "PASS" : "FAIL");

  const std::string json_path = json.Write();
  const std::string timing_path = timing.Write();
  std::cout << "CSV: bench_results/fig12_cluster_scale.csv\nJSON: " << json_path
            << "\nTiming: " << timing_path << "\n";
  return binpack_pass && hinted_pass && drain_pass && dep_pass && snap_pass &&
                 snap_wire_pass && queue_identical && sharded_identical &&
                 placement_identical
             ? 0
             : 1;
}
