// Micro-benchmarks (google-benchmark) for the hot paths of the MM
// substrate: buddy allocation, fault paths, isolation and migration.
// These gate the simulator's own performance, not the paper's results.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/mm/memmap.h"
#include "src/mm/migration.h"
#include "src/mm/zone.h"
#include "src/sim/cost_model.h"

namespace squeezy {
namespace {

void BM_BuddyAllocFree(benchmark::State& state) {
  const uint8_t order = static_cast<uint8_t>(state.range(0));
  MemMap memmap(GiB(1));
  Zone zone(0, ZoneType::kMovable, "z", &memmap);
  for (BlockIndex b = 0; b < 8; ++b) {
    memmap.InitBlock(b);
    zone.AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
  }
  for (auto _ : state) {
    const Pfn pfn = zone.Alloc(order, PageKind::kAnon, 1, 0);
    benchmark::DoNotOptimize(pfn);
    zone.Free(pfn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(4)->Arg(9)->Arg(10);

void BM_BuddyChurn(benchmark::State& state) {
  MemMap memmap(GiB(1));
  Rng rng(3);
  Zone zone(0, ZoneType::kMovable, "z", &memmap, &rng);
  for (BlockIndex b = 0; b < 8; ++b) {
    memmap.InitBlock(b);
    zone.AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
  }
  std::vector<Pfn> live;
  Rng op_rng(4);
  for (auto _ : state) {
    if (live.empty() || op_rng.Chance(0.55)) {
      const Pfn pfn = zone.Alloc(static_cast<uint8_t>(op_rng.UniformInt(0, 9)),
                                 PageKind::kAnon, 1, 0);
      if (pfn != kInvalidPfn) {
        live.push_back(pfn);
      }
    } else {
      const size_t i =
          static_cast<size_t>(op_rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      zone.Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (const Pfn pfn : live) {
    zone.Free(pfn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuddyChurn);

void BM_AnonFaultPath(benchmark::State& state) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(8);
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(GiB(8), 0);
  for (auto _ : state) {
    const Pid pid = guest.CreateProcess();
    guest.TouchAnon(pid, MiB(64), 0);
    guest.Exit(pid);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * MiB(64));
}
BENCHMARK(BM_AnonFaultPath);

void BM_IsolateUndo(benchmark::State& state) {
  MemMap memmap(GiB(1));
  Zone zone(0, ZoneType::kMovable, "z", &memmap);
  memmap.InitBlock(0);
  zone.AddFreeRange(0, kPagesPerBlock);
  for (auto _ : state) {
    zone.IsolateFreeRange(0, kPagesPerBlock);
    zone.UndoIsolation(0, kPagesPerBlock);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IsolateUndo);

void BM_MigrateBlock(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MemMap memmap(GiB(1));
    Zone zone(0, ZoneType::kMovable, "z", &memmap);
    for (BlockIndex b = 0; b < 4; ++b) {
      memmap.InitBlock(b);
      zone.AddFreeRange(MemMap::BlockStart(b), kPagesPerBlock);
    }
    // Half-occupy block 0 with THP folios.
    for (int i = 0; i < 32; ++i) {
      zone.Alloc(kThpOrder, PageKind::kAnon, 1, static_cast<uint32_t>(i));
    }
    zone.IsolateFreeRange(0, kPagesPerBlock);
    state.ResumeTiming();
    const MigrateOutcome out =
        MigrateOutOfRange(memmap, zone, zone, 0, kPagesPerBlock, CostModel::Default(), nullptr);
    benchmark::DoNotOptimize(out.pages_moved);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MigrateBlock);

void BM_SqueezyUnplugPartition(benchmark::State& state) {
  HostMemory host(GiB(64));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.base_memory = MiB(512);
  SqueezyConfig scfg;
  scfg.partition_bytes = MiB(768);
  scfg.nr_partitions = 2;
  scfg.shared_bytes = 0;
  cfg.hotplug_region = scfg.region_bytes();
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);
  for (auto _ : state) {
    guest.PlugMemory(MiB(768), 0);
    const Pid pid = guest.CreateProcess();
    sqz.SqueezyEnable(pid);
    guest.TouchAnon(pid, MiB(512), 0);
    guest.Exit(pid);
    const UnplugOutcome out = guest.UnplugMemory(MiB(768), 0);
    benchmark::DoNotOptimize(out.bytes_unplugged);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * MiB(768));
}
BENCHMARK(BM_SqueezyUnplugPartition);

}  // namespace
}  // namespace squeezy

BENCHMARK_MAIN();
