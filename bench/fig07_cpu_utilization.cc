// Fig 7: CPU utilization of the kernel threads serving downsizing
// requests, in the guest (left pane) and in the host/VMM (right pane),
// while 512 MiB of guest memory is repeatedly reclaimed (and re-plugged)
// over a 200-second window.
//
// Expected: the balloon's *host* thread spikes while serving per-page
// exits; vanilla virtio-mem's *guest* thread burns a vCPU migrating
// pages; Squeezy needs negligible CPU on either side.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"
#include "src/sim/event_queue.h"
#include "src/trace/memhog.h"

namespace squeezy {
namespace {

constexpr uint64_t kReclaim = MiB(512);
constexpr TimeNs kExperiment = Sec(200);
constexpr DurationNs kCycle = Sec(10);

struct Series {
  std::vector<double> guest;
  std::vector<double> host;
};

// Pads/truncates a utilization series to the experiment length
// (500 ms windows) and drops the boot-time setup spike.
constexpr size_t kWarmupWindows = 10;  // First 5 s: VM setup, not steady state.
std::vector<double> FitSeries(std::vector<double> s) {
  s.resize(static_cast<size_t>(kExperiment / Msec(500)), 0.0);
  for (size_t i = 0; i < kWarmupWindows && i < s.size(); ++i) {
    s[i] = 0.0;
  }
  return s;
}

Series RunBalloon() {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  CpuAccountant cpu(Msec(500));
  Hypervisor hv(&host, &cost, &cpu);
  GuestConfig cfg;
  cfg.name = "vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(8);
  cfg.seed = 7;
  GuestKernel guest(cfg, &hv, &cpu);
  guest.PlugMemory(GiB(8), 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());
  Memhog hog(&guest, MemhogConfig{GiB(4), 0.25, 3});
  hog.Start(0);

  EventQueue events;
  for (TimeNs t = Sec(5); t < kExperiment; t += kCycle) {
    events.ScheduleAt(t, [&guest, &events] {
      guest.BalloonReclaim(kReclaim, events.now());
    });
    events.ScheduleAt(t + kCycle / 2, [&guest, &events] {
      guest.balloon().Deflate(kReclaim, guest.memmap(), &guest.movable_zone());
      (void)events;
    });
  }
  events.RunUntil(kExperiment);
  return Series{FitSeries(cpu.Series("vm/balloon-guest")), FitSeries(cpu.Series("vm/balloon-host"))};
}

Series RunVirtio() {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  CpuAccountant cpu(Msec(500));
  Hypervisor hv(&host, &cost, &cpu);
  GuestConfig cfg;
  cfg.name = "vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(8);
  cfg.seed = 8;
  cfg.unplug_timeout = Sec(30);
  GuestKernel guest(cfg, &hv, &cpu);
  guest.PlugMemory(GiB(8), 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());
  Memhog hog(&guest, MemhogConfig{static_cast<uint64_t>(6.5 * GiB(1)), 0.25, 3});
  hog.Start(0);

  EventQueue events;
  for (TimeNs t = Sec(5); t < kExperiment; t += kCycle) {
    events.ScheduleAt(t, [&guest, &events] { guest.UnplugMemory(kReclaim, events.now()); });
    events.ScheduleAt(t + kCycle / 2,
                      [&guest, &events] { guest.PlugMemory(kReclaim, events.now()); });
  }
  events.RunUntil(kExperiment);
  return Series{FitSeries(cpu.Series("vm/virtio_mem-guest")),
                FitSeries(cpu.Series("vm/virtio_mem-host"))};
}

Series RunSqueezy() {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  CpuAccountant cpu(Msec(500));
  Hypervisor hv(&host, &cost, &cpu);

  SqueezyConfig scfg;
  scfg.partition_bytes = kReclaim;
  scfg.nr_partitions = 16;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.name = "vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 9;
  GuestKernel guest(cfg, &hv, &cpu);
  SqueezyManager sqz(&guest, scfg);

  // Half the partitions host live tenants (load); one cycles plug/unplug.
  for (int i = 0; i < 8; ++i) {
    guest.PlugMemory(kReclaim, 0);
    const Pid pid = guest.CreateProcess();
    sqz.SqueezyEnable(pid);
    guest.TouchAnon(pid, kReclaim - MiB(16), 0);
  }

  EventQueue events;
  for (TimeNs t = Sec(5); t < kExperiment; t += kCycle) {
    events.ScheduleAt(t, [&guest, &sqz, &events] {
      // Spawn + retire one tenant, then reclaim its partition.
      guest.PlugMemory(kReclaim, events.now());
      const Pid pid = guest.CreateProcess();
      sqz.SqueezyEnable(pid);
      guest.TouchAnon(pid, kReclaim - MiB(16), events.now());
      guest.Exit(pid);
      guest.UnplugMemory(kReclaim, events.now());
    });
  }
  events.RunUntil(kExperiment);
  return Series{FitSeries(cpu.Series("vm/virtio_mem-guest")),
                FitSeries(cpu.Series("vm/virtio_mem-host"))};
}

double MaxOf(const std::vector<double>& v) {
  double best = 0;
  for (const double x : v) {
    best = std::max(best, x);
  }
  return best;
}

double MeanOf(const std::vector<double>& v) {
  double sum = 0;
  for (const double x : v) {
    sum += x;
  }
  return v.empty() ? 0 : sum / static_cast<double>(v.size());
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 7",
              "balloon: host-side CPU spikes; virtio-mem: guest kernel thread burns a vCPU "
              "migrating pages; Squeezy: negligible CPU on both sides");

  const Series balloon = RunBalloon();
  const Series virtio = RunVirtio();
  const Series squeezy = RunSqueezy();

  CsvWriter csv("bench_results/fig07_cpu_utilization.csv",
                {"half_second", "balloon_guest", "balloon_host", "virtio_guest", "virtio_host",
                 "squeezy_guest", "squeezy_host"});
  BenchJson json("fig07_cpu_utilization");
  json.SetColumns({"half_second", "balloon_guest", "balloon_host", "virtio_guest",
                   "virtio_host", "squeezy_guest", "squeezy_host"});
  for (size_t s = 0; s < balloon.guest.size(); ++s) {
    const std::vector<std::string> row = {
        std::to_string(s), TablePrinter::Num(balloon.guest[s], 1),
        TablePrinter::Num(balloon.host[s], 1), TablePrinter::Num(virtio.guest[s], 1),
        TablePrinter::Num(virtio.host[s], 1), TablePrinter::Num(squeezy.guest[s], 1),
        TablePrinter::Num(squeezy.host[s], 1)};
    csv.AddRow(row);
    json.AddRow(row);
  }

  TablePrinter table({"Method", "Guest mean%", "Guest peak%", "Host mean%", "Host peak%"});
  table.AddRow({"Balloon", TablePrinter::Num(MeanOf(balloon.guest), 1),
                TablePrinter::Num(MaxOf(balloon.guest), 1), TablePrinter::Num(MeanOf(balloon.host), 1),
                TablePrinter::Num(MaxOf(balloon.host), 1)});
  table.AddRow({"Virtio-mem", TablePrinter::Num(MeanOf(virtio.guest), 1),
                TablePrinter::Num(MaxOf(virtio.guest), 1), TablePrinter::Num(MeanOf(virtio.host), 1),
                TablePrinter::Num(MaxOf(virtio.host), 1)});
  table.AddRow({"Squeezy", TablePrinter::Num(MeanOf(squeezy.guest), 1),
                TablePrinter::Num(MaxOf(squeezy.guest), 1),
                TablePrinter::Num(MeanOf(squeezy.host), 1),
                TablePrinter::Num(MaxOf(squeezy.host), 1)});
  table.Print(std::cout);
  json.Metric("balloon_host_peak_pct", MaxOf(balloon.host));
  json.Metric("virtio_guest_peak_pct", MaxOf(virtio.guest));
  json.Metric("virtio_guest_mean_pct", MeanOf(virtio.guest));
  json.Metric("squeezy_guest_peak_pct", MaxOf(squeezy.guest));
  json.Metric("squeezy_host_peak_pct", MaxOf(squeezy.host));
  const std::string json_path = json.Write();
  std::cout << "\nPer-second timelines: bench_results/fig07_cpu_utilization.csv\nJSON: "
            << json_path << "\n";
  return 0;
}
