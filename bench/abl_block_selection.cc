// Ablation: vanilla virtio-mem unplug block-selection policy.
//
// Linux walks the device region by address (highest block first).  A
// smarter baseline could rank candidate blocks by occupancy (fewest pages
// to migrate first).  This ablation quantifies how much of Squeezy's win
// a better vanilla heuristic could recover — and how much is structural
// (interleaving means *every* block holds someone else's pages).
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/table.h"
#include "src/trace/memhog.h"

namespace squeezy {
namespace {

constexpr uint64_t kReclaim = GiB(1);
constexpr int kTenants = 8;

DurationNs VanillaUnplug(UnplugSelection selection, double occupancy) {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.name = "v";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = kTenants * kReclaim;
  cfg.seed = 41;
  cfg.unplug_timeout = Minutes(5);
  cfg.unplug_selection = selection;
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(cfg.hotplug_region, 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());
  std::vector<std::unique_ptr<Memhog>> hogs;
  const uint64_t per_tenant =
      static_cast<uint64_t>(static_cast<double>(kReclaim) * occupancy) - MiB(16);
  for (int i = 0; i < kTenants; ++i) {
    hogs.push_back(std::make_unique<Memhog>(&guest, MemhogConfig{per_tenant, 0.25, 3}));
    hogs.back()->Start(0);
  }
  hogs[0]->Stop();
  return guest.UnplugMemory(kReclaim, 0).latency();
}

DurationNs SqueezyUnplug() {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = kReclaim;
  scfg.nr_partitions = kTenants;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.name = "s";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 42;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);
  guest.PlugMemory(kReclaim, 0);
  const Pid pid = guest.CreateProcess();
  sqz.SqueezyEnable(pid);
  guest.TouchAnon(pid, kReclaim - MiB(16), 0);
  guest.Exit(pid);
  return guest.UnplugMemory(kReclaim, 0).latency();
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Ablation: unplug block selection",
              "an occupancy-aware vanilla heuristic narrows but cannot close the gap: "
              "interleaving leaves no empty blocks to pick");

  TablePrinter table({"Occupancy", "Linux addr-order (ms)", "Emptiest-first (ms)",
                      "Squeezy (ms)"});
  const DurationNs squeezy = SqueezyUnplug();
  for (const double occ : {0.35, 0.6, 0.9}) {
    const DurationNs addr = VanillaUnplug(UnplugSelection::kAddressDescending, occ);
    const DurationNs empt = VanillaUnplug(UnplugSelection::kEmptiestFirst, occ);
    table.AddRow({Pct(occ), TablePrinter::Num(ToMsec(addr)), TablePrinter::Num(ToMsec(empt)),
                  TablePrinter::Num(ToMsec(squeezy))});
  }
  table.Print(std::cout);
  std::cout << "\nEven the oracle-ish emptiest-first baseline migrates: partitioning is what "
               "removes migration entirely.\n";
  return 0;
}
