// Fig 2: instance churn of the 10 most popular functions over one hour,
// assuming 5-minute keep-alive: thousands of instance creations and
// evictions per minute — the demand signal for agile VM resizing.
//
// The Azure production traces are not redistributable; the synthetic
// generator reproduces their observable structure (heavy-tailed function
// popularity, bursty arrivals).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"
#include "src/trace/churn.h"
#include "src/trace/trace_gen.h"

int main() {
  using namespace squeezy;
  PrintBanner("Fig 2",
              "top-10 functions, 1 hour, 5-min keep-alive: thousands of instance creations "
              "and evictions per minute");

  // Heavy-tailed popularity: function i gets ~1/i of the top rate.
  Rng rng(2021);
  std::vector<std::vector<Invocation>> traces;
  for (int i = 0; i < 10; ++i) {
    BurstyTraceConfig cfg;
    cfg.duration = Minutes(60);
    cfg.function = i;
    // Bursts taller than the standing pool and gaps longer than the
    // keep-alive window are what drive the churn: most of a burst's
    // instances are created fresh and evicted 5 minutes later.
    const double scale = 1.0 / (1.0 + i);
    cfg.base_rate_per_sec = 1.5 * scale;
    cfg.burst_rate_per_sec = 450.0 * scale;
    cfg.mean_burst_len = Sec(35);
    cfg.mean_gap = Sec(400);
    traces.push_back(GenerateBurstyTrace(cfg, rng));
  }

  // Churn per function, aggregated per minute.
  ChurnConfig ccfg;
  ccfg.keep_alive = Minutes(5);
  ccfg.exec_time = Sec(1);
  std::vector<uint64_t> creations(61, 0);
  std::vector<uint64_t> evictions(61, 0);
  uint64_t invocations = 0;
  for (const auto& trace : traces) {
    invocations += trace.size();
    for (const ChurnMinute& m : AnalyzeChurn(trace, ccfg)) {
      if (m.minute < 61) {
        creations[static_cast<size_t>(m.minute)] += m.creations;
        evictions[static_cast<size_t>(m.minute)] += m.evictions;
      }
    }
  }

  CsvWriter csv("bench_results/fig02_azure_churn.csv", {"minute", "creations", "evictions"});
  BenchJson json("fig02_azure_churn");
  json.SetColumns({"minute", "creations", "evictions"});
  TablePrinter table({"Minute", "Creations", "Evictions"});
  uint64_t peak_creations = 0;
  uint64_t total_creations = 0;
  for (size_t m = 0; m <= 60; ++m) {
    const std::vector<std::string> row = {std::to_string(m), std::to_string(creations[m]),
                                          std::to_string(evictions[m])};
    csv.AddRow(row);
    json.AddRow(row);
    if (m % 5 == 0) {
      table.AddRow({std::to_string(m), std::to_string(creations[m]),
                    std::to_string(evictions[m])});
    }
    peak_creations = std::max(peak_creations, creations[m]);
    total_creations += creations[m];
  }
  table.Print(std::cout);
  json.Metric("invocations", invocations);
  json.Metric("total_creations", total_creations);
  json.Metric("peak_creations_per_min", peak_creations);
  const std::string json_path = json.Write();
  std::cout << "\nTotal invocations (1h, 10 functions): " << invocations << "\n"
            << "Total instance creations:              " << total_creations << "\n"
            << "Peak creations per minute:             " << peak_creations
            << "  (paper: fluctuates up to ~1500/min)\n"
            << "CSV: bench_results/fig02_azure_churn.csv\nJSON: " << json_path << "\n";
  return 0;
}
