// Ablation: reclamation batching (paper §8).
//   * Balloon: reporting more pages per virtqueue kick amortizes exits —
//     the optimization HarvestVM applies to ballooning.
//   * Squeezy: the per-chunk VM-exit cost (~3 ms per 128 MiB) bounds how
//     much batching multi-partition unplugs could still save.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/table.h"

namespace squeezy {
namespace {

constexpr uint64_t kReclaim = GiB(2);

DurationNs BalloonWithBatch(uint32_t batch_pages) {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  cost.balloon_batch_pages = batch_pages;
  // Batching amortizes the exit round-trip but not the per-page host-side
  // release (MADV_DONTNEED on 4 KiB): model the kick as the fixed part.
  cost.balloon_exit_page = Usec(2.0) + Usec(6.2) / batch_pages;
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.name = "b";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = GiB(4);
  cfg.seed = 61;
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(GiB(4), 0);
  return guest.BalloonReclaim(kReclaim, 0).latency();
}

DurationNs SqueezyUnplugLatency() {
  HostMemory host(GiB(32));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);
  SqueezyConfig scfg;
  scfg.partition_bytes = kReclaim;
  scfg.nr_partitions = 2;
  scfg.shared_bytes = 0;
  GuestConfig cfg;
  cfg.name = "s";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 62;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);
  guest.PlugMemory(kReclaim, 0);
  return guest.UnplugMemory(kReclaim, 0).latency();
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Ablation: reclamation batching (§8)",
              "batching page reports shrinks balloon's exit bill, but even an idealized "
              "balloon stays far behind Squeezy's block-granular reclaim");

  TablePrinter table({"Method", "Reclaim 2 GiB (ms)"});
  for (const uint32_t batch : {1u, 32u, 256u, 512u}) {
    table.AddRow({"Balloon, batch=" + std::to_string(batch),
                  TablePrinter::Num(ToMsec(BalloonWithBatch(batch)))});
  }
  const DurationNs squeezy = SqueezyUnplugLatency();
  table.AddRow({"Squeezy (16 chunk exits @~3ms)", TablePrinter::Num(ToMsec(squeezy))});
  table.Print(std::cout);
  std::cout << "\nPaper §8: batching is future work for Squeezy; the VM-exit share of its "
               "unplug is already only ~3 ms per 128 MiB chunk.\n";
  return 0;
}
