// Shared helpers for the figure-reproduction benchmarks.
#ifndef SQUEEZY_BENCH_BENCH_UTIL_H_
#define SQUEEZY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace squeezy {

// THE one sanctioned wall-clock in the tree (tools/determinism_lint.py
// allowlists exactly this file): benches time their own execution to
// report events/sec.  Wall time is reported, never fed back into the
// simulation — sim results stay a pure function of (config, seed).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()), lap_(start_) {}

  // Seconds since construction (monotonic; immune to NTP steps).
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  // Seconds since the last Lap() (or construction), then starts a new
  // lap.  Phase timing: lap once after setup (cluster build, trace
  // generation, SubmitTrace) and once after the run, so events/sec is
  // computed over the run phase alone — setup and teardown excluded.
  double Lap() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lap_;
};

// Banner printed by every bench binary: which paper artifact it
// regenerates and what to look for.
inline void PrintBanner(const std::string& figure, const std::string& claim) {
  std::cout << "==============================================================\n"
            << "Reproduces: " << figure << "\n"
            << "Paper claim: " << claim << "\n"
            << "==============================================================\n";
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
  return buf;
}

inline std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

// Machine-readable bench output: headline metrics plus the result table,
// written to bench_results/BENCH_<name>.json alongside the existing CSV so
// the perf trajectory across PRs can be diffed/plotted by tooling instead
// of scraped from stdout.  Degrades to a no-op on unwritable filesystems,
// like CsvWriter.
class BenchJson {
 public:
  // `file_prefix` selects the artifact family: "BENCH" (default) holds
  // ONLY deterministic metrics — CI byte-diffs BENCH_*.json across
  // SQUEEZY_SIM_THREADS values, so anything wall-clock-derived
  // (events/sec, speedups) must go into a separate "TIMING" file that
  // the determinism diff never sees.
  explicit BenchJson(const std::string& bench_name,
                     const std::string& file_prefix = "BENCH")
      : name_(bench_name), prefix_(file_prefix) {}

  // Headline scalars ("admitted", "speedup_vs_virtio", ...).  JSON has no
  // NaN/Infinity literals, so non-finite values (a speedup ratio dividing
  // by zero on an empty sweep) become null instead of invalid output.
  void Metric(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      metrics_.emplace_back(key, "null");
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    metrics_.emplace_back(key, buf);
  }
  void Metric(const std::string& key, int64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
  }
  void Metric(const std::string& key, uint64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
  }
  void Text(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, Quote(value));
  }

  // Tabular results (mirrors the CSV: one columns list, then rows).
  void SetColumns(std::vector<std::string> columns) { columns_ = std::move(columns); }
  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Writes bench_results/<prefix>_<name>.json; returns the path ("" on error).
  std::string Write() const {
    const std::string path = "bench_results/" + prefix_ + "_" + name_ + ".json";
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    std::ofstream out(path);
    if (!out.good()) {
      return "";
    }
    out << "{\n  \"bench\": " << Quote(name_) << ",\n  \"metrics\": {";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out << (i ? "," : "") << "\n    " << Quote(metrics_[i].first) << ": "
          << metrics_[i].second;
    }
    out << "\n  },\n  \"columns\": " << CellArray(columns_) << ",\n  \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << (i ? "," : "") << "\n    " << CellArray(rows_[i]);
    }
    out << "\n  ]\n}\n";
    return out.good() ? path : "";
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        q += '\\';
        q += c;
      } else if (c == '\n') {
        q += "\\n";
      } else {
        q += c;
      }
    }
    return q + "\"";
  }

  // Cells that parse as finite numbers are emitted bare, the rest quoted.
  // The finiteness check matters: istream happily parses "nan"/"inf",
  // which are not JSON number tokens and must stay quoted.
  static std::string CellArray(const std::vector<std::string>& cells) {
    std::string out = "[";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) {
        out += ", ";
      }
      double v;
      std::istringstream in(cells[i]);
      if (in >> v && in.eof() && std::isfinite(v)) {
        out += cells[i];
      } else {
        out += Quote(cells[i]);
      }
    }
    return out + "]";
  }

  std::string name_;
  std::string prefix_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace squeezy

#endif  // SQUEEZY_BENCH_BENCH_UTIL_H_
