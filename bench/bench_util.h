// Shared helpers for the figure-reproduction benchmarks.
#ifndef SQUEEZY_BENCH_BENCH_UTIL_H_
#define SQUEEZY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

namespace squeezy {

// Banner printed by every bench binary: which paper artifact it
// regenerates and what to look for.
inline void PrintBanner(const std::string& figure, const std::string& claim) {
  std::cout << "==============================================================\n"
            << "Reproduces: " << figure << "\n"
            << "Paper claim: " << claim << "\n"
            << "==============================================================\n";
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
  return buf;
}

inline std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

}  // namespace squeezy

#endif  // SQUEEZY_BENCH_BENCH_UTIL_H_
