// Fig 6: latency to unplug 2 GiB from a 64 GiB VM while the utilization
// of the rest of the memory grows.  Vanilla virtio-mem latency rises with
// utilization (more occupied pages per reclaimed block -> more
// migrations) and fluctuates due to random placement; Squeezy stays flat
// at ~125 ms because it only ever unplugs empty partitions.
//
// As in the paper, page zeroing is disabled for vanilla virtio-mem here
// to isolate the migration effect.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/squeezy.h"
#include "src/guest/guest_kernel.h"
#include "src/host/host_memory.h"
#include "src/host/hypervisor.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"
#include "src/trace/memhog.h"

namespace squeezy {
namespace {

constexpr uint64_t kVmMemory = GiB(64);
constexpr uint64_t kReclaim = GiB(2);

DurationNs VanillaUnplugAtUtilization(double utilization, uint64_t seed) {
  HostMemory host(GiB(96));
  CostModel cost = CostModel::NoZeroing();  // Isolate migrations (paper).
  Hypervisor hv(&host, &cost);
  GuestConfig cfg;
  cfg.name = "virtio-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = kVmMemory;
  cfg.seed = seed;
  cfg.unplug_timeout = Minutes(10);
  GuestKernel guest(cfg, &hv);
  guest.PlugMemory(kVmMemory, 0);
  guest.movable_zone().ShuffleFreeLists(guest.rng());  // Steady-state scatter.

  // Occupy `utilization` of the VM with churning memhogs (1 GiB each).
  const uint64_t target = static_cast<uint64_t>(static_cast<double>(kVmMemory) * utilization);
  std::vector<std::unique_ptr<Memhog>> hogs;
  MemhogConfig mcfg;
  mcfg.bytes = GiB(1);
  mcfg.churn_fraction = 0.25;
  mcfg.warmup_cycles = 2;
  uint64_t occupied = 0;
  while (occupied + mcfg.bytes <= target) {
    hogs.push_back(std::make_unique<Memhog>(&guest, mcfg));
    if (!hogs.back()->Start(0)) {
      break;
    }
    occupied += mcfg.bytes;
  }

  const UnplugOutcome out = guest.UnplugMemory(kReclaim, 0);
  if (!out.complete) {
    std::cerr << "warning: vanilla unplug incomplete at utilization " << utilization << "\n";
  }
  return out.latency();
}

DurationNs SqueezyUnplugAtUtilization(double utilization) {
  HostMemory host(GiB(96));
  CostModel cost = CostModel::Default();
  Hypervisor hv(&host, &cost);

  SqueezyConfig scfg;
  scfg.partition_bytes = kReclaim;  // 2 GiB partitions: one per "tenant".
  scfg.nr_partitions = static_cast<uint32_t>(kVmMemory / kReclaim);
  scfg.shared_bytes = 0;

  GuestConfig cfg;
  cfg.name = "squeezy-vm";
  cfg.base_memory = MiB(512);
  cfg.hotplug_region = scfg.region_bytes();
  cfg.seed = 4;
  GuestKernel guest(cfg, &hv);
  SqueezyManager sqz(&guest, scfg);

  // Populate all partitions; occupy a fraction of them with live tenants,
  // leave (at least) one drained for the reclaim.
  const uint32_t total = scfg.nr_partitions;
  const uint32_t busy =
      std::min(total - 1, static_cast<uint32_t>(utilization * static_cast<double>(total)));
  for (uint32_t i = 0; i < total; ++i) {
    guest.PlugMemory(kReclaim, 0);
  }
  for (uint32_t i = 0; i < busy; ++i) {
    const Pid pid = guest.CreateProcess();
    sqz.SqueezyEnable(pid);
    guest.TouchAnon(pid, kReclaim - MiB(16), 0);
  }

  const UnplugOutcome out = guest.UnplugMemory(kReclaim, 0);
  if (out.pages_migrated != 0 || !out.complete) {
    std::cerr << "BUG: Squeezy unplug migrated or failed\n";
    std::exit(1);
  }
  return out.latency();
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("Fig 6",
              "vanilla virtio-mem unplug latency climbs (and jitters) with memory utilization; "
              "Squeezy reclaims 2 GiB in ~125 ms regardless of load");

  TablePrinter table({"Utilization", "Virtio-mem (ms)", "Squeezy (ms)"});
  CsvWriter csv("bench_results/fig06_util_sensitivity.csv",
                {"utilization_pct", "virtio_ms", "squeezy_ms"});
  BenchJson json("fig06_util_sensitivity");
  json.SetColumns({"utilization_pct", "virtio_ms", "squeezy_ms"});

  double virtio_worst_ms = 0;
  double squeezy_worst_ms = 0;
  for (int pct = 0; pct <= 90; pct += 10) {
    const double util = pct / 100.0;
    const DurationNs vanilla = VanillaUnplugAtUtilization(util, 1000 + pct);
    const DurationNs squeezy = SqueezyUnplugAtUtilization(util);
    virtio_worst_ms = std::max(virtio_worst_ms, ToMsec(vanilla));
    squeezy_worst_ms = std::max(squeezy_worst_ms, ToMsec(squeezy));
    table.AddRow({std::to_string(pct) + "%", TablePrinter::Num(ToMsec(vanilla)),
                  TablePrinter::Num(ToMsec(squeezy))});
    const std::vector<std::string> row = {std::to_string(pct),
                                          TablePrinter::Num(ToMsec(vanilla)),
                                          TablePrinter::Num(ToMsec(squeezy))};
    csv.AddRow(row);
    json.AddRow(row);
  }
  table.Print(std::cout);
  json.Metric("virtio_worst_unplug_ms", virtio_worst_ms);
  json.Metric("squeezy_worst_unplug_ms", squeezy_worst_ms);
  json.Metric("worst_case_speedup", squeezy_worst_ms > 0
                                        ? virtio_worst_ms / squeezy_worst_ms
                                        : 0.0);
  const std::string json_path = json.Write();
  std::cout << "\nExpected shape: virtio-mem rises steeply past ~20% utilization; Squeezy flat.\n"
            << "CSV: bench_results/fig06_util_sensitivity.csv\nJSON: " << json_path << "\n";
  return 0;
}
