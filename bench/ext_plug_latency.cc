// §6.2.1 (scaling up): plug operations cost 35-45 ms for all function
// sizes, and cold starts on a dynamically resized VM run 3-35% slower
// than on a static over-provisioned VM because first touches of freshly
// plugged memory take nested page faults.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/faas/function.h"
#include "src/faas/runtime.h"
#include "src/metrics/csv.h"
#include "src/metrics/table.h"

namespace squeezy {
namespace {

ColdStartBreakdown FirstColdStart(ReclaimPolicy policy, const FunctionSpec& spec) {
  RuntimeConfig cfg;
  cfg.policy = policy;
  cfg.host_capacity = GiB(128);
  FaasRuntime rt(cfg);
  const int fn = rt.AddFunction(spec, 4);
  // Warm the shared cache with one throwaway instance, then measure the
  // second cold start (paper §6.2.1 compares warm-VM cold starts).
  rt.SubmitTrace({{Sec(1), fn}, {Minutes(3), fn}});
  rt.RunUntil(Minutes(5));
  return rt.agent(fn).cold_starts().size() >= 2 ? rt.agent(fn).cold_starts()[1]
                                                : ColdStartBreakdown{};
}

}  // namespace
}  // namespace squeezy

int main() {
  using namespace squeezy;
  PrintBanner("§6.2.1 scale-up costs (text claims)",
              "plug costs 35-45 ms for all function sizes; dynamic resizing makes cold starts "
              "3-35% slower than a static over-provisioned VM (nested faults)");

  TablePrinter table({"Function", "Plug (ms)", "Static cold (ms)", "Dynamic cold (ms)",
                      "Penalty"});
  CsvWriter csv("bench_results/ext_plug_latency.csv",
                {"function", "plug_ms", "static_ms", "dynamic_ms", "penalty_pct"});

  for (const FunctionSpec& spec : PaperFunctions()) {
    const ColdStartBreakdown dynamic = FirstColdStart(ReclaimPolicy::kSqueezy, spec);
    const ColdStartBreakdown fixed = FirstColdStart(ReclaimPolicy::kStatic, spec);
    const double penalty = static_cast<double>(dynamic.total()) /
                               static_cast<double>(fixed.total()) -
                           1.0;
    table.AddRow({spec.name, TablePrinter::Num(ToMsec(dynamic.vmm), 1),
                  TablePrinter::Num(ToMsec(fixed.total()), 0),
                  TablePrinter::Num(ToMsec(dynamic.total()), 0), Pct(penalty)});
    csv.AddRow({spec.name, TablePrinter::Num(ToMsec(dynamic.vmm), 1),
                TablePrinter::Num(ToMsec(fixed.total()), 1),
                TablePrinter::Num(ToMsec(dynamic.total()), 1),
                TablePrinter::Num(100 * penalty, 1)});
  }
  table.Print(std::cout);
  std::cout << "\n(paper: plug 35-45 ms for every size; penalty 3-35%)\n"
            << "CSV: bench_results/ext_plug_latency.csv\n";
  return 0;
}
