// The fig12 cluster-scale experiment configuration, shared between
// bench/fig12_cluster_scale.cc and tests/fig12_regression_test.cc.
//
// The regression test locks recorded constants (pending scale-ups,
// admitted invocations) captured from the bench; both MUST run the exact
// same configuration or the lock silently guards a stale setup.  Any
// knob the two share lives here — edit it once and both move together.
#ifndef SQUEEZY_BENCH_FIG12_CONFIG_H_
#define SQUEEZY_BENCH_FIG12_CONFIG_H_

#include <cstdint>

#include "src/cluster/cluster.h"
#include "src/faas/function.h"
#include "src/trace/cluster_trace.h"

namespace squeezy {
namespace fig12 {

inline constexpr size_t kHosts = 4;
inline constexpr uint32_t kConcurrency = 8;
inline constexpr TimeNs kDuration = Minutes(8);
inline constexpr TimeNs kHorizon = Minutes(10);  // Drain window after the trace.
inline constexpr uint64_t kSeed = 2026;
// Restricted per-host capacity = this fraction of the abundant-memory
// fleet committed peak per host.
inline constexpr double kCapacityFraction = 0.62;
// Scale-out sweep host counts.  The top end carries the event-kernel
// wheel-vs-heap A/B (whole-sim and queue-storm events/sec).
inline constexpr size_t kScaleHostCounts[] = {4, 8, 16, 32, 64};
inline constexpr size_t kQueueBenchHosts = 64;
// Sharded-kernel scale-out: host counts beyond the single-queue sweep,
// load scaled linearly with hosts the WHOLE way (rate = base * hosts /
// kHosts).  The former cap at the identity point existed because
// placement was an O(hosts) snapshot scan per dispatch — scaling load
// and hosts together made the sweep O(hosts^2) wall-clock; the indexed
// placement path (src/cluster/host_index.*) decides in O(log hosts), so
// the rows now measure a genuinely growing fleet serving genuinely
// growing traffic.  Arrivals are quantized so concurrent per-host work
// lands between cross-shard barriers in fat parallel phases — still a
// pure function of (config, seed), so any thread count fires the
// identical sequence.
inline constexpr size_t kShardScaleHostCounts[] = {256, 512, 1024};
inline constexpr size_t kShardIdentityHosts = 256;  // Sharded-vs-single gate.
inline constexpr TimeNs kShardArrivalQuantum = Msec(1);
// The sharded rows run the PAPER-sized functions: the extent MemMap
// materializes per-page chunks only where blocks are touched, so sim RSS
// goes as the fleet's actually-faulted footprint, not hosts x guest span
// (the flat per-page array needed >200 GiB at 1024 hosts — the reason
// this sweep used to shrink functions to 64 MiB).
inline constexpr TimeNs kShardDuration = Minutes(2);
inline constexpr TimeNs kShardHorizon = Minutes(3);
inline constexpr uint32_t kShardConcurrency = 2;
inline constexpr uint64_t kShardVmBase = MiB(128);
inline constexpr uint64_t kShardHostCapacity = GiB(4);

inline ClusterTraceConfig TraceConfig() {
  ClusterTraceConfig t;
  t.duration = kDuration;
  t.nr_functions = static_cast<int32_t>(PaperFunctions().size());
  t.total_base_rate_per_sec = 3.0;
  t.zipf_s = 1.1;
  t.bursty_fraction = 0.5;
  t.burst_multiplier = 25.0;
  t.mean_burst_len = Sec(25);
  t.mean_gap = Sec(70);
  return t;
}

// Trace for the sharded-kernel scale-out rows: same shape as the base
// sweep, shorter, rate scaled linearly with the fleet (no cap — see
// kShardScaleHostCounts above), arrivals quantized.
inline ClusterTraceConfig ShardTraceConfig(size_t hosts) {
  ClusterTraceConfig t = TraceConfig();
  t.duration = kShardDuration;
  t.total_base_rate_per_sec *= static_cast<double>(hosts) / static_cast<double>(kHosts);
  t.arrival_quantum = kShardArrivalQuantum;
  return t;
}

// The sharded rows run the paper's four functions at full size (the
// extent MemMap keeps per-host sim RSS bounded by touched blocks).
inline std::vector<FunctionSpec> ShardFunctions() { return PaperFunctions(); }

// The sweep's cluster configuration (RunCombo).  The drain scenario
// overrides unplug_timeout and migration mode on top of this.
inline ClusterConfig SweepConfig(ReclaimPolicy reclaim, PlacementPolicy placement,
                                 uint64_t host_capacity, size_t hosts = kHosts) {
  ClusterConfig cfg;
  cfg.nr_hosts = hosts;
  cfg.placement = placement;
  cfg.host.policy = reclaim;
  cfg.host.host_capacity = host_capacity;
  cfg.host.keep_alive = Sec(45);
  cfg.host.unplug_timeout = Sec(1);
  cfg.host.pressure_check_period = Msec(500);
  cfg.host.seed = kSeed;
  return cfg;
}

}  // namespace fig12
}  // namespace squeezy

#endif  // SQUEEZY_BENCH_FIG12_CONFIG_H_
